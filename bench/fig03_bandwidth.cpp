// Figure 3: memory bandwidth usage over time for In-memory Analytics
// (left) and Graph Analytics / PageRank (right).
//
// Paper findings to reproduce in shape: In-memory Analytics shows periodic
// bandwidth waves (one per ALS iteration) peaking near 100 GiB/s; PageRank
// bursts during the initial data load then fluctuates downwards during the
// rank iterations.  Absolute GiB/s are lower at our dataset scale; the
// temporal *shape* (periodicity / front-loaded burst) is the result.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "core/session.hpp"
#include "workloads/inmem_als.hpp"
#include "workloads/pagerank.hpp"

namespace {

void run_bandwidth(const char* title, nmo::wl::Workload& workload, double paper_span_s) {
  nmo::core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = nmo::core::Mode::kBandwidth;

  nmo::sim::EngineConfig engine;
  engine.threads = 32;
  engine.machine.hierarchy.cores = 32;
  engine.machine.hierarchy.slc.size_bytes = 4 * nmo::kMiB;  // container share
  engine.tick_interval_ns = 100'000;

  nmo::core::ProfileSession session(nmo, engine);
  session.profile(workload, /*with_baseline=*/false);

  const auto& bw = session.profiler().bandwidth();
  const auto& series = bw.series();
  std::printf("\n-- %s --\n", title);
  if (series.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  const double span_ns = static_cast<double>(series.back().time_ns);
  const double tscale = span_ns > 0 ? paper_span_s / (span_ns * 1e-9) : 1.0;
  const double peak = bw.peak_gib_per_s();
  nmo::bench::print_row({"time(s,scaled)", "bandwidth(GiB/s)", "bar"}, 18);
  const std::size_t stride = std::max<std::size_t>(1, series.size() / 32);
  for (std::size_t i = 0; i < series.size(); i += stride) {
    char t[32], g[32];
    std::snprintf(t, sizeof(t), "%.1f",
                  static_cast<double>(series[i].time_ns) * 1e-9 * tscale);
    std::snprintf(g, sizeof(g), "%.1f", series[i].gib_per_s);
    std::string bar(
        static_cast<std::size_t>(peak > 0 ? series[i].gib_per_s / peak * 44.0 : 0.0), '#');
    nmo::bench::print_row({t, g, bar}, 18);
  }
  std::printf("peak bandwidth       : %.1f GiB/s\n", peak);
  std::printf("arithmetic intensity : %.3f FLOP/byte (Roofline, section III-A)\n",
              bw.arithmetic_intensity());
}

}  // namespace

int main() {
  nmo::bench::banner("Figure 3", "temporal memory bandwidth usage (CloudSuite workloads)");

  nmo::wl::AlsConfig als_cfg;
  als_cfg.users = 24'000;
  als_cfg.ratings_per_user = 50;
  als_cfg.iterations = 4;
  nmo::wl::InMemAnalytics als(als_cfg);
  run_bandwidth("In-memory Analytics (ALS)   [paper: periodic waves, ~100 GiB/s peak]", als,
                121.0);

  nmo::wl::PageRankConfig pr_cfg;
  pr_cfg.nodes_log2 = 18;
  pr_cfg.edges_per_node = 14;
  pr_cfg.iterations = 8;
  nmo::wl::PageRank pr(pr_cfg);
  run_bandwidth("Graph Analytics (Page Rank) [paper: load burst ~120 GiB/s, then decay]", pr,
                25.0);
  return 0;
}
