// Table I: the supported environment variables and their defaults.
//
// Prints the configuration surface, verifies the documented defaults by
// parsing an empty environment, and demonstrates a fully-specified one.
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "core/config.hpp"

int main() {
  nmo::bench::banner("Table I", "supported environment variables and defaults");

  const auto defaults = nmo::core::NmoConfig::from_env(
      nmo::Env(std::map<std::string, std::string>{}));

  nmo::bench::print_row({"Option", "Description", "Default", "Parsed"}, 22);
  nmo::bench::print_row({"NMO_ENABLE", "Enable profile collection", "off",
                         defaults.enable ? "on" : "off"},
                        22);
  nmo::bench::print_row({"NMO_NAME", "Base name of output files", "\"nmo\"", defaults.name}, 22);
  nmo::bench::print_row({"NMO_MODE", "Profile collection mode", "none",
                         defaults.mode == nmo::core::Mode::kNone ? "none" : "?"},
                        22);
  nmo::bench::print_row(
      {"NMO_PERIOD", "Sampling period", "0", std::to_string(defaults.period)}, 22);
  nmo::bench::print_row({"NMO_TRACK_RSS", "Capture working set size", "off",
                         defaults.track_rss ? "on" : "off"},
                        22);
  nmo::bench::print_row({"NMO_BUFSIZE", "Ring buffer size [MiB]", "1",
                         nmo::format_size(defaults.bufsize_bytes)},
                        22);
  nmo::bench::print_row({"NMO_AUXBUFSIZE", "Aux buffer size [MiB]", "1",
                         nmo::format_size(defaults.auxbufsize_bytes)},
                        22);

  std::printf("\nExample configured environment:\n");
  const auto cfg = nmo::core::NmoConfig::from_env(nmo::Env(std::map<std::string, std::string>{
      {"NMO_ENABLE", "1"},
      {"NMO_MODE", "all"},
      {"NMO_PERIOD", "4096"},
      {"NMO_TRACK_RSS", "on"},
      {"NMO_BUFSIZE", "1"},
      {"NMO_AUXBUFSIZE", "2"},
  }));
  std::printf("  enable=%d mode=all period=%llu track_rss=%d bufsize=%s auxbufsize=%s\n",
              cfg.enable ? 1 : 0, static_cast<unsigned long long>(cfg.period),
              cfg.track_rss ? 1 : 0, nmo::format_size(cfg.bufsize_bytes).c_str(),
              nmo::format_size(cfg.auxbufsize_bytes).c_str());
  return 0;
}
