// Multi-tenant scheduler fairness: weighted admission shares, proportional
// shed, bounded per-tenant queue waits, and budget-overrun truncation.
//
// Not a paper figure: it gates the fairness contract of the multi-tenant
// scheduler (store/scheduler.hpp) the way a shared always-on profiler
// needs it to hold at fleet scale.  Four legs, each a pass/fail gate:
//
//   shares      three tenants with weights 4/2/1 keep one worker
//               saturated; the first 700 admissions must split
//               400/200/100 within +-10% (stride scheduling).
//   shed        round-robin overload of a depth-70 shed-oldest queue must
//               leave surviving entries proportional to weight
//               (40/20/10 within +-10%), with zero tenants starved.
//   scale       thousands of queued submissions across the tenant mix:
//               every task completes and no tenant's p99 queue wait
//               strays past 4x the pool-wide p99 (log2-bucket estimate;
//               4x = two buckets of slack).
//   budget      a profiled session with a 1 ns time budget must finalize
//               a verify-clean truncated trace with fewer samples than
//               its unbudgeted twin (cooperative preemption).
//
//   ./bench_fig17_sched_fairness [--json FILE]
//
// --json writes the measured shares and gate outcomes for the CI artifact
// trail.  Exit 0 iff every gate holds.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "store/scheduler.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "workloads/stream.hpp"

namespace {

namespace fs = std::filesystem;
using nmo::store::AdmissionPolicy;
using nmo::store::Scheduler;
using nmo::store::SchedulerConfig;
using nmo::store::SubmitOptions;
using nmo::store::TaskStatus;

constexpr const char* kTenants[3] = {"gold", "silver", "bronze"};
constexpr std::uint32_t kWeights[3] = {4, 2, 1};

/// A manually released gate: holds the single worker busy so submissions
/// pile up deterministically before any admission decision is made.
class Gate {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

SchedulerConfig three_tenant_config() {
  SchedulerConfig config;
  config.max_workers = 1;
  for (int t = 0; t < 3; ++t) config.tenants.push_back({kTenants[t], kWeights[t], 0});
  return config;
}

/// +-10% acceptance band around the expected count.
bool within_10pct(std::uint64_t actual, std::uint64_t expected) {
  const double lo = 0.9 * static_cast<double>(expected);
  const double hi = 1.1 * static_cast<double>(expected);
  return static_cast<double>(actual) >= lo && static_cast<double>(actual) <= hi;
}

struct ShareLeg {
  std::uint64_t counts[3] = {0, 0, 0};
  bool pass = true;
};

/// Leg 1: stride-scheduling admission shares under sustained overload.
ShareLeg run_share_leg() {
  constexpr int kPerTenant = 700;
  Gate gate;
  Scheduler scheduler(three_tenant_config());
  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  while (!running.load()) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<int> order;
  order.reserve(3 * kPerTenant);
  for (int i = 0; i < kPerTenant; ++i) {
    for (int t = 0; t < 3; ++t) {
      SubmitOptions options;
      options.tenant = kTenants[t];
      scheduler.submit(
          [&order, &order_mutex, t](const TaskStatus&) {
            std::lock_guard<std::mutex> lock(order_mutex);
            order.push_back(t);
          },
          options);
    }
  }
  gate.open();
  scheduler.wait_idle();

  ShareLeg leg;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kPerTenant); ++i) {
    ++leg.counts[static_cast<std::size_t>(order[i])];
  }
  const std::uint64_t expected[3] = {400, 200, 100};
  for (int t = 0; t < 3; ++t) leg.pass = leg.pass && within_10pct(leg.counts[t], expected[t]);
  return leg;
}

/// Leg 2: proportional shed of a bounded queue under round-robin overload.
ShareLeg run_shed_leg() {
  constexpr int kPerTenant = 200;
  Gate gate;
  auto config = three_tenant_config();
  config.queue_depth = 70;
  config.policy = AdmissionPolicy::kShedOldest;
  Scheduler scheduler(config);
  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  while (!running.load()) std::this_thread::yield();

  std::atomic<std::uint64_t> survived[3] = {{0}, {0}, {0}};
  for (int i = 0; i < kPerTenant; ++i) {
    for (int t = 0; t < 3; ++t) {
      SubmitOptions options;
      options.tenant = kTenants[t];
      auto* const counter = &survived[t];
      scheduler.submit([counter](const TaskStatus&) { ++*counter; }, options);
    }
  }
  gate.open();
  scheduler.wait_idle();

  ShareLeg leg;
  const std::uint64_t expected[3] = {40, 20, 10};
  for (int t = 0; t < 3; ++t) {
    leg.counts[t] = survived[t].load();
    leg.pass = leg.pass && within_10pct(leg.counts[t], expected[t]) && leg.counts[t] > 0;
  }
  return leg;
}

struct ScaleLeg {
  std::uint64_t tasks = 0;
  std::uint64_t completed = 0;
  std::uint64_t overall_p99_ns = 0;
  std::uint64_t tenant_p99_ns[3] = {0, 0, 0};
  bool pass = true;
};

/// Leg 3: thousands of queued submissions; nobody starves, no tenant's
/// tail wait strays far from the pool-wide tail.
ScaleLeg run_scale_leg() {
  constexpr int kPerTenant = 1000;
  auto config = three_tenant_config();
  config.max_workers = 4;
  Scheduler scheduler(config);

  std::atomic<std::uint64_t> ran{0};
  for (int i = 0; i < kPerTenant; ++i) {
    for (int t = 0; t < 3; ++t) {
      SubmitOptions options;
      options.tenant = kTenants[t];
      scheduler.submit([&ran](const TaskStatus&) { ++ran; }, options);
    }
  }
  scheduler.wait_idle();
  const auto stats = scheduler.stats();

  ScaleLeg leg;
  leg.tasks = 3 * kPerTenant;
  leg.completed = ran.load();
  leg.overall_p99_ns = stats.queue_wait_p99_ns;
  leg.pass = leg.completed == leg.tasks && stats.shed == 0 && stats.rejected == 0;
  for (int t = 0; t < 3; ++t) {
    leg.tenant_p99_ns[t] = stats.tenants[static_cast<std::size_t>(t)].queue_wait_p99_ns;
    // 4x = two log2 buckets of slack over the pool-wide estimate.
    leg.pass = leg.pass && leg.tenant_p99_ns[t] <= 4 * leg.overall_p99_ns &&
               stats.tenants[static_cast<std::size_t>(t)].completed ==
                   static_cast<std::uint64_t>(kPerTenant);
  }
  return leg;
}

struct BudgetLeg {
  std::uint64_t full_samples = 0;
  std::uint64_t truncated_samples = 0;
  bool verify_clean = false;
  bool pass = false;
};

/// Leg 4: cooperative preemption end to end through run_sessions - the
/// truncated trace must verify clean and be strictly shorter than the
/// unbudgeted run's.
BudgetLeg run_budget_leg() {
  const fs::path root = fs::temp_directory_path() / "nmo_bench_sched_fairness";
  fs::remove_all(root);

  nmo::store::SessionJob job;
  job.name = "budgeted";
  job.nmo.enable = true;
  job.nmo.mode = nmo::core::Mode::kSample;
  job.nmo.period = 256;
  job.engine.threads = 2;
  job.engine.machine.hierarchy.cores = 2;
  job.engine.seed = 17;
  job.make_workload = [] {
    nmo::wl::StreamConfig cfg;
    cfg.array_elems = 1 << 16;
    cfg.iterations = 4;
    return std::make_unique<nmo::wl::Stream>(cfg);
  };

  BudgetLeg leg;
  nmo::store::SessionStore full_store((root / "full").string());
  const auto full = nmo::store::run_sessions(full_store, {job});
  if (full.results.size() != 1 || !full.results[0].error.empty()) return leg;
  leg.full_samples = full.results[0].samples;

  auto budgeted = job;
  budgeted.limits.budget_ns = 1;  // overruns at the first checkpoint poll
  nmo::store::SessionStore truncated_store((root / "truncated").string());
  const auto truncated = nmo::store::run_sessions(truncated_store, {budgeted});
  if (truncated.results.size() != 1) return leg;
  const auto& r = truncated.results[0];
  leg.truncated_samples = r.samples;

  nmo::store::TraceReader reader(r.session.trace_path);
  const auto trace = reader.read_all();
  leg.verify_clean = reader.ok() && trace.fingerprint() == r.fingerprint;
  leg.pass = r.error.empty() && r.budget_state == "truncated" && leg.verify_clean &&
             leg.truncated_samples < leg.full_samples;
  fs::remove_all(root);
  return leg;
}

void print_share_row(const char* leg, const ShareLeg& r, const std::uint64_t (&expected)[3]) {
  for (int t = 0; t < 3; ++t) {
    char actual[32], want[32];
    std::snprintf(actual, sizeof(actual), "%llu",
                  static_cast<unsigned long long>(r.counts[t]));
    std::snprintf(want, sizeof(want), "%llu",
                  static_cast<unsigned long long>(expected[t]));
    nmo::bench::print_row({leg, kTenants[t], actual, want, r.pass ? "ok" : "FAIL"}, 12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  nmo::bench::banner("sched-fairness",
                     "multi-tenant scheduler: weighted shares, shed, waits, budgets");

  const auto shares = run_share_leg();
  const auto shed = run_shed_leg();
  const auto scale = run_scale_leg();
  const auto budget = run_budget_leg();

  nmo::bench::print_row({"leg", "tenant", "actual", "expected", "gate"}, 12);
  const std::uint64_t share_expected[3] = {400, 200, 100};
  const std::uint64_t shed_expected[3] = {40, 20, 10};
  print_share_row("shares", shares, share_expected);
  print_share_row("shed", shed, shed_expected);
  std::printf("\nscale: %llu/%llu completed, overall p99 wait %.3f ms (gate: %s)\n",
              static_cast<unsigned long long>(scale.completed),
              static_cast<unsigned long long>(scale.tasks),
              static_cast<double>(scale.overall_p99_ns) / 1e6,
              scale.pass ? "ok" : "FAIL");
  for (int t = 0; t < 3; ++t) {
    std::printf("  %-8s p99 wait %.3f ms\n", kTenants[t],
                static_cast<double>(scale.tenant_p99_ns[t]) / 1e6);
  }
  std::printf("budget: %llu -> %llu samples, truncated trace %s (gate: %s)\n",
              static_cast<unsigned long long>(budget.full_samples),
              static_cast<unsigned long long>(budget.truncated_samples),
              budget.verify_clean ? "verify-clean" : "CORRUPT",
              budget.pass ? "ok" : "FAIL");

  const bool pass = shares.pass && shed.pass && scale.pass && budget.pass;

  if (!json_path.empty()) {
    nmo::bench::JsonWriter json;
    json.begin_object();
    const auto share_block = [&](const char* name, const ShareLeg& leg,
                                 const std::uint64_t (&expected)[3]) {
      json.key(name).begin_object();
      for (int t = 0; t < 3; ++t) {
        json.key(kTenants[t]).begin_object();
        json.key("actual").value(leg.counts[t]);
        json.key("expected").value(expected[t]);
        json.end_object();
      }
      json.key("pass").value(leg.pass);
      json.end_object();
    };
    share_block("shares", shares, share_expected);
    share_block("shed", shed, shed_expected);
    json.key("scale").begin_object();
    json.key("tasks").value(scale.tasks);
    json.key("completed").value(scale.completed);
    json.key("overall_p99_ns").value(scale.overall_p99_ns);
    for (int t = 0; t < 3; ++t) {
      json.key(std::string(kTenants[t]) + "_p99_ns").value(scale.tenant_p99_ns[t]);
    }
    json.key("pass").value(scale.pass);
    json.end_object();
    json.key("budget").begin_object();
    json.key("full_samples").value(budget.full_samples);
    json.key("truncated_samples").value(budget.truncated_samples);
    json.key("verify_clean").value(budget.verify_clean);
    json.key("pass").value(budget.pass);
    json.end_object();
    json.key("pass").value(pass);
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json -> %s\n", json_path.c_str());
  }

  std::printf("\nfairness gates: %s\n", pass ? "ALL PASS" : "FAILED");
  return pass ? 0 : 1;
}
