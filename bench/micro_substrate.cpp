// google-benchmark microbenchmarks of the substrate hot paths: SPE packet
// codec, cache hierarchy access, sampler decode loop, MD5 throughput.
// These bound the simulator's own performance, not the paper's results.
#include <benchmark/benchmark.h>

#include "common/md5.hpp"
#include "common/rng.hpp"
#include "kernel/perf_event.hpp"
#include "mem/hierarchy.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/packet.hpp"
#include "spe/sampler.hpp"

namespace {

void BM_PacketEncode(benchmark::State& state) {
  nmo::spe::Record rec;
  rec.vaddr = 0x7fff1234;
  rec.timestamp = 42;
  rec.level = nmo::MemLevel::kDRAM;
  rec.events = nmo::spe::events_for_level(rec.level, false);
  std::array<std::byte, nmo::spe::kRecordSize> wire{};
  for (auto _ : state) {
    nmo::spe::encode(rec, wire);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          nmo::spe::kRecordSize);
}
BENCHMARK(BM_PacketEncode);

void BM_PacketDecode(benchmark::State& state) {
  nmo::spe::Record rec;
  rec.vaddr = 0x7fff1234;
  rec.timestamp = 42;
  std::array<std::byte, nmo::spe::kRecordSize> wire{};
  nmo::spe::encode(rec, wire);
  for (auto _ : state) {
    auto result = nmo::spe::decode(wire);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          nmo::spe::kRecordSize);
}
BENCHMARK(BM_PacketDecode);

void BM_HierarchyAccess(benchmark::State& state) {
  nmo::mem::HierarchyConfig cfg;
  cfg.cores = 4;
  nmo::mem::Hierarchy h(cfg);
  nmo::Rng rng(1);
  const std::uint64_t footprint = 1ull << state.range(0);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const nmo::MemAccess a{rng.uniform(footprint), nmo::MemOp::kLoad, 8};
    benchmark::DoNotOptimize(h.access(0, a));
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_HierarchyAccess)->Arg(16)->Arg(22)->Arg(28);

void BM_SamplerMemOp(benchmark::State& state) {
  nmo::kern::PerfEventAttr attr;
  attr.type = nmo::kern::kPerfTypeArmSpe;
  attr.config = nmo::kern::kSpeConfigLoadsAndStores;
  attr.sample_period = static_cast<std::uint64_t>(state.range(0));
  attr.disabled = false;
  auto ev = nmo::kern::open_event(attr, 0, 4, 64 * 1024, 1 << 20,
                                  nmo::kern::TimeConv::from_frequency(3e9), nullptr);
  nmo::spe::Sampler sampler(ev.get(), nmo::Rng(7));
  nmo::spe::OpInfo op;
  op.cls = nmo::spe::OpClass::kLoad;
  op.vaddr = 0x1000;
  op.latency = 4;
  std::uint64_t now = 0;
  for (auto _ : state) {
    op.now_cycles = now += 3;
    sampler.on_mem_op(op);
    if (ev->aux().free_space() < 4096) ev->consume_aux(ev->aux().head());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SamplerMemOp)->Arg(512)->Arg(4096)->Arg(65536);

void BM_AuxDrain(benchmark::State& state) {
  nmo::kern::PerfEventAttr attr;
  attr.type = nmo::kern::kPerfTypeArmSpe;
  attr.config = nmo::kern::kSpeConfigLoadsAndStores;
  attr.sample_period = 1024;
  attr.aux_watermark = 1 << 19;
  attr.disabled = false;
  auto ev = nmo::kern::open_event(attr, 0, 4, 64 * 1024, 1 << 20,
                                  nmo::kern::TimeConv::from_frequency(3e9), nullptr);
  nmo::spe::Record rec;
  rec.vaddr = 0x1234;
  rec.timestamp = 9;
  std::array<std::byte, nmo::spe::kRecordSize> wire{};
  nmo::spe::encode(rec, wire);
  nmo::spe::AuxConsumer consumer;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) ev->aux_write(wire, 0);
    ev->flush_aux(0);
    benchmark::DoNotOptimize(consumer.drain(*ev));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024 *
                          nmo::spe::kRecordSize);
}
BENCHMARK(BM_AuxDrain);

void BM_Md5(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(nmo::Md5::hex(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(4096)->Arg(1 << 20);

}  // namespace
