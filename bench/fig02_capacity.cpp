// Figure 2: memory capacity usage over time for the two CloudSuite
// workloads - In-memory Analytics (ALS, left panel) and Graph Analytics
// (PageRank, right panel).
//
// Paper findings to reproduce in shape: usage ramps during data ingest and
// saturates (52.3 GiB for In-memory Analytics, 123.8 GiB for PageRank);
// peak utilisation of the 256 GiB node is 20.4% and 48.4% respectively.
// The dataset is laptop-scale; allocation sizes are reported through a
// scale factor and the time axis is normalised to the paper's span
// (DESIGN.md section 6).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "core/session.hpp"
#include "workloads/inmem_als.hpp"
#include "workloads/pagerank.hpp"

namespace {

constexpr std::uint64_t kNodeBudget = 256ull << 30;  // Table II: 256 GB.

void run_capacity(const char* title, nmo::wl::Workload& workload, double paper_span_s) {
  nmo::core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = nmo::core::Mode::kCapacity;
  nmo.track_rss = true;

  nmo::sim::EngineConfig engine;
  engine.threads = 32;  // paper: 32 cores per CloudSuite container
  engine.machine.hierarchy.cores = 32;
  // Container share of the 16 MiB system-level cache (32 of 128 cores).
  engine.machine.hierarchy.slc.size_bytes = 4 * nmo::kMiB;
  engine.tick_interval_ns = 100'000;

  nmo::core::ProfileSession session(nmo, engine);
  session.profile(workload, /*with_baseline=*/false);

  const auto& cap = session.profiler().capacity();
  const auto& series = cap.series();
  std::printf("\n-- %s --\n", title);
  if (series.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  const double span_ns = static_cast<double>(series.back().time_ns);
  const double tscale = span_ns > 0 ? paper_span_s / (span_ns * 1e-9) : 1.0;
  nmo::bench::print_row({"time(s,scaled)", "usage(GiB)", "bar"}, 18);
  const std::size_t stride = std::max<std::size_t>(1, series.size() / 24);
  for (std::size_t i = 0; i < series.size(); i += stride) {
    char t[32], g[32];
    std::snprintf(t, sizeof(t), "%.1f",
                  static_cast<double>(series[i].time_ns) * 1e-9 * tscale);
    const double gib = static_cast<double>(series[i].live_bytes) /
                       static_cast<double>(1ull << 30);
    std::snprintf(g, sizeof(g), "%.1f", gib);
    std::string bar(static_cast<std::size_t>(std::min(gib / 3.0, 45.0)), '#');
    nmo::bench::print_row({t, g, bar}, 18);
  }
  std::printf("peak usage      : %.1f GiB\n",
              static_cast<double>(cap.peak_bytes()) / static_cast<double>(1ull << 30));
  std::printf("peak utilisation: %s of the 256 GiB node\n",
              nmo::bench::pct(cap.peak_utilization(kNodeBudget)).c_str());
}

}  // namespace

int main() {
  nmo::bench::banner("Figure 2", "temporal memory capacity usage (CloudSuite workloads)");

  nmo::wl::AlsConfig als_cfg;
  als_cfg.users = 24'000;
  als_cfg.ratings_per_user = 50;
  als_cfg.iterations = 4;
  als_cfg.report_scale = 1630;  // maps the dataset onto the paper's 52.3 GiB
  nmo::wl::InMemAnalytics als(als_cfg);
  run_capacity("In-memory Analytics (ALS)   [paper: saturates at 52.3 GiB, 20.4%]", als, 121.0);

  nmo::wl::PageRankConfig pr_cfg;
  pr_cfg.nodes_log2 = 18;
  pr_cfg.edges_per_node = 14;
  pr_cfg.iterations = 8;
  pr_cfg.report_scale = 6200;  // maps the dataset onto the paper's 123.8 GiB
  nmo::wl::PageRank pr(pr_cfg);
  run_capacity("Graph Analytics (Page Rank) [paper: saturates at 123.8 GiB, 48.4%]", pr, 25.0);
  return 0;
}
