// Ablation + future work (paper section IX): sampling bias.
//
// The paper's future work plans to "continue the evaluation of the bias
// when sampling the same event in different positions of code".  SPE adds
// random perturbation to the interval counter precisely to avoid bias
// (Figure 1); this harness quantifies that design choice:
//
//  * a synthetic loop touches K equally-hot code sites in a fixed rotation
//    whose length divides the sampling period - the worst case for a
//    deterministic counter (aliasing locks sampling onto a subset of
//    sites);
//  * with jitter disabled, the per-site sample distribution is strongly
//    skewed; with jitter enabled it converges to uniform.
//
// Printed metric: max/min per-site sample ratio (1.0 = unbiased) and the
// chi-square-like imbalance.
#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "kernel/perf_abi.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/sampler.hpp"

namespace {

constexpr std::size_t kSites = 8;
constexpr std::uint64_t kPeriod = 1024;  // divisible by kSites -> aliasing

struct BiasResult {
  double max_min_ratio = 0;
  double imbalance = 0;  // normalized stddev of site shares
  std::uint64_t samples = 0;
};

BiasResult run(bool jitter) {
  nmo::kern::PerfEventAttr attr;
  attr.type = nmo::kern::kPerfTypeArmSpe;
  attr.config = nmo::kern::kSpeConfigLoadsAndStores |
                (jitter ? nmo::kern::kSpeJitter : 0);
  attr.sample_period = kPeriod;
  attr.disabled = false;
  auto ev = nmo::kern::open_event(attr, 0, 4, 64 * 1024, 16ull << 20,
                                  nmo::kern::TimeConv::from_frequency(3e9), nullptr);
  nmo::spe::Sampler sampler(ev.get(), nmo::Rng(17));

  // The loop body: kSites memory operations at distinct PCs, repeated.
  std::uint64_t now = 0;
  constexpr std::uint64_t kIterations = 2'000'000;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    nmo::spe::OpInfo op;
    op.cls = nmo::spe::OpClass::kLoad;
    op.pc = 0x400000 + (i % kSites) * 4;     // code site identity
    op.vaddr = 0x10000 + (i % kSites) * 64;
    op.latency = 4;
    op.now_cycles = now += 3;
    sampler.on_mem_op(op);
  }
  sampler.flush(now + 100);
  ev->flush_aux(0);

  std::array<std::uint64_t, kSites> per_site{};
  nmo::spe::AuxConsumer consumer([&](const nmo::spe::Record& r, nmo::CoreId) {
    per_site[(r.pc - 0x400000) / 4 % kSites]++;
  });
  consumer.drain(*ev);

  BiasResult res;
  res.samples = consumer.counts().records_ok;
  std::uint64_t mx = 0, mn = ~0ull;
  double mean = static_cast<double>(res.samples) / kSites, var = 0;
  for (auto c : per_site) {
    mx = std::max(mx, c);
    mn = std::min(mn, c);
    var += (static_cast<double>(c) - mean) * (static_cast<double>(c) - mean);
  }
  res.max_min_ratio = mn > 0 ? static_cast<double>(mx) / static_cast<double>(mn) : 1e9;
  res.imbalance = mean > 0 ? std::sqrt(var / kSites) / mean : 0;
  return res;
}

}  // namespace

int main() {
  nmo::bench::banner("Ablation / future work (section IX)",
                     "per-code-site sampling bias with and without perturbation");
  std::printf("%u code sites in rotation, period %llu (divisible -> aliasing risk)\n\n",
              static_cast<unsigned>(kSites), static_cast<unsigned long long>(kPeriod));
  nmo::bench::print_row({"perturbation", "samples", "max/min ratio", "imbalance"}, 16);
  const auto off = run(false);
  const auto on = run(true);
  char s1[32], r1[32], i1[32];
  std::snprintf(s1, sizeof(s1), "%llu", static_cast<unsigned long long>(off.samples));
  std::snprintf(r1, sizeof(r1), "%.2f", off.max_min_ratio);
  std::snprintf(i1, sizeof(i1), "%.3f", off.imbalance);
  nmo::bench::print_row({"off", s1, r1, i1}, 16);
  std::snprintf(s1, sizeof(s1), "%llu", static_cast<unsigned long long>(on.samples));
  std::snprintf(r1, sizeof(r1), "%.2f", on.max_min_ratio);
  std::snprintf(i1, sizeof(i1), "%.3f", on.imbalance);
  nmo::bench::print_row({"on", s1, r1, i1}, 16);
  std::printf("\n(A deterministic interval counter aliases with the loop body and\n"
              " samples a subset of sites; SPE's random perturbation restores a\n"
              " near-uniform distribution - the bias mechanism of section IX.)\n");
  return 0;
}
