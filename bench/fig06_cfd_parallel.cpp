// Figure 6: high-resolution memory tracing of the CFD benchmark at 32
// OpenMP threads.
//
// Paper findings: with 32 threads, only the `normals` array splits into
// per-thread slices of similar length; the other regions show irregular
// access (indirect neighbour gathers spanning the whole arrays), visible
// in the high-resolution trace and invisible at low resolution because the
// kernel finishes quickly.  Quantified here: locality/regularity drop
// sharply from the 1-thread run (Figure 5) to 32 threads, and a
// high-resolution (zoomed) window shows cross-slice gathers.
#include <cstdio>

#include "analysis/pattern.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "workloads/cfd.hpp"

namespace {

double run(std::uint32_t threads, double* gather_spread_out) {
  nmo::core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = nmo::core::Mode::kSample;
  nmo.period = 512;

  nmo::sim::EngineConfig engine;
  engine.threads = threads;
  engine.machine.hierarchy.cores = threads;

  nmo::wl::CfdConfig ccfg;
  ccfg.num_cells = 48 * 1024;
  ccfg.iterations = 20;
  nmo::wl::Cfd cfd(ccfg);

  nmo::core::ProfileSession session(nmo, engine);
  session.profile(cfd, /*with_baseline=*/false);
  const auto& profiler = session.profiler();
  const auto loop = nmo::analysis::samples_in_phase(profiler.trace(), profiler.regions(),
                                                    "computation loop");

  // High-resolution view: samples hitting the density region; measure how
  // far each thread's gathered addresses spread beyond its own slice.
  const auto& regions = profiler.regions().regions();
  std::size_t density_idx = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].name == "density") density_idx = i;
  }
  auto density = loop;
  std::erase_if(density, [&](const nmo::core::TraceSample& s) {
    return s.region != static_cast<std::int32_t>(density_idx);
  });
  const auto& reg = regions[density_idx];
  const double span = static_cast<double>(reg.end - reg.start);
  const double slice = span / threads;
  std::uint64_t outside = 0;
  for (const auto& s : density) {
    const double own_lo = static_cast<double>(reg.start) + slice * s.core;
    const double own_hi = own_lo + slice;
    const auto a = static_cast<double>(s.vaddr);
    if (a < own_lo || a >= own_hi) ++outside;
  }
  *gather_spread_out =
      density.empty() ? 0.0 : static_cast<double>(outside) / static_cast<double>(density.size());
  return nmo::analysis::locality_fraction(loop, 64 * 1024);
}

}  // namespace

int main() {
  nmo::bench::banner("Figure 6", "CFD high-resolution access pattern at 32 threads");
  double spread1 = 0, spread32 = 0;
  const double loc1 = run(1, &spread1);
  const double loc32 = run(32, &spread32);

  nmo::bench::print_row({"threads", "locality(64K)", "cross-slice gathers(density)"}, 24);
  char a[32], b[32];
  std::snprintf(a, sizeof(a), "%.1f%%", loc1 * 100);
  std::snprintf(b, sizeof(b), "%.1f%%", spread1 * 100);
  nmo::bench::print_row({"1", a, b}, 24);
  std::snprintf(a, sizeof(a), "%.1f%%", loc32 * 100);
  std::snprintf(b, sizeof(b), "%.1f%%", spread32 * 100);
  nmo::bench::print_row({"32", a, b}, 24);

  std::printf("\n(paper: at 32 threads only `normals` splits cleanly per thread; the\n"
              " other regions show irregular cross-thread gathers -> locality drops\n"
              " and cross-slice gather fraction rises vs the 1-thread run)\n");
  return 0;
}
