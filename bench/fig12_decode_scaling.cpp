// Decode-pipeline scaling: records/sec of the sharded parallel decode
// (spe/decode_pool.hpp) for 1..N shards against the serial inline decode
// of spe/aux_consumer.hpp.
//
// This is not a paper figure: it characterizes the reproduction's own
// scaling beachhead.  The paper's period/aux-buffer sweeps (Figs. 7-9)
// exist because decode throughput bounds how fast the monitor can drain
// the aux buffer; this harness measures that bound directly and how it
// moves when decode fans out across shards.
//
//   ./bench_fig12_decode_scaling [records_per_core] [trials] [--json [FILE]]
//
// --json writes machine-readable results (default BENCH_decode_scaling.json)
// so the perf trajectory accumulates comparable numbers per PR.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "spe/decode_pool.hpp"
#include "spe/packet.hpp"

namespace {

using nmo::spe::kRecordSize;
using nmo::spe::Record;

constexpr nmo::CoreId kCores = 8;

/// One core's raw aux stream: encoded records, ~3% of them invalid (the
/// collision-corrupted records NMO's validation skips).
std::vector<std::byte> make_stream(nmo::CoreId core, std::size_t records) {
  std::vector<std::byte> raw(records * kRecordSize);
  for (std::size_t i = 0; i < records; ++i) {
    Record r;
    r.vaddr = 0x4000'0000 + core * 0x100'0000 + i * 8;
    r.pc = 0x400000 + (i & 0xffff);
    r.timestamp = 1 + i;
    r.op = (i & 1) ? nmo::MemOp::kStore : nmo::MemOp::kLoad;
    r.level = static_cast<nmo::MemLevel>(i & 3);
    r.total_latency = static_cast<std::uint16_t>(10 + (i & 255));
    nmo::spe::encode(r, std::span<std::byte, kRecordSize>(raw.data() + i * kRecordSize,
                                                          kRecordSize));
    if (i % 33 == 32) raw[i * kRecordSize + nmo::spe::kTsHeaderOffset] = std::byte{0x00};
  }
  return raw;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The serial baseline: the inline decode loop of AuxConsumer::drain, sink
/// included (per-core accumulation, as the profiler's trace append).
double serial_records_per_sec(const std::vector<std::vector<std::byte>>& streams,
                              std::uint64_t* checksum) {
  std::vector<Record> sunk;
  std::uint64_t ok = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& raw : streams) {
    for (std::size_t off = 0; off + kRecordSize <= raw.size(); off += kRecordSize) {
      const auto result =
          nmo::spe::decode(std::span<const std::byte>(raw).subspan(off, kRecordSize));
      if (result.ok()) {
        sunk.push_back(*result.record);
        ++ok;
      }
    }
  }
  const double dt = seconds_since(t0);
  for (const auto& r : sunk) *checksum ^= r.vaddr;
  return static_cast<double>(ok) / dt;
}

double pool_records_per_sec(const std::vector<std::vector<std::byte>>& streams,
                            std::uint32_t shards, std::uint64_t* checksum) {
  std::vector<std::vector<Record>> sunk(shards);
  nmo::spe::DecodePool pool(
      shards, [&](std::span<const Record> records, nmo::CoreId, std::uint32_t shard) {
        sunk[shard].insert(sunk[shard].end(), records.begin(), records.end());
      });
  const auto t0 = std::chrono::steady_clock::now();
  for (nmo::CoreId core = 0; core < streams.size(); ++core) {
    pool.submit(streams[core], core);
  }
  pool.sync();
  const double dt = seconds_since(t0);
  for (const auto& shard : sunk) {
    for (const auto& r : shard) *checksum ^= r.vaddr;
  }
  return static_cast<double>(pool.counts().records_ok) / dt;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t records_per_core = 1 << 18;
  int trials = 5;
  bool json = false;
  std::string json_path = "BENCH_decode_scaling.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (argv[i][0] != '-' && positional == 0) {
      records_per_core = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else if (argv[i][0] != '-' && positional == 1) {
      trials = std::atoi(argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr, "usage: %s [records_per_core > 0] [trials > 0] [--json [FILE]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (records_per_core == 0 || trials <= 0) {
    std::fprintf(stderr, "usage: %s [records_per_core > 0] [trials > 0] [--json [FILE]]\n",
                 argv[0]);
    return 2;
  }

  nmo::bench::banner("fig12", "parallel sharded SPE decode: records/sec vs shards");
  std::printf("%zu records/core x %u cores, %d trials, hw threads %u\n\n", records_per_core,
              kCores, trials, std::thread::hardware_concurrency());

  std::vector<std::vector<std::byte>> streams;
  streams.reserve(kCores);
  for (nmo::CoreId core = 0; core < kCores; ++core) {
    streams.push_back(make_stream(core, records_per_core));
  }

  std::uint64_t checksum = 0;
  nmo::RunningStats serial;
  for (int t = 0; t < trials; ++t) serial.add(serial_records_per_sec(streams, &checksum));

  nmo::bench::print_row({"config", "records/sec", "speedup"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", serial.mean());
  nmo::bench::print_row({"serial", buf, "1.00x"});

  double at4 = 0.0;
  struct ShardResult {
    std::uint32_t shards;
    double rate;
    double speedup;
  };
  std::vector<ShardResult> results;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    nmo::RunningStats stats;
    for (int t = 0; t < trials; ++t) {
      stats.add(pool_records_per_sec(streams, shards, &checksum));
    }
    const double speedup = stats.mean() / serial.mean();
    if (shards == 4) at4 = speedup;
    results.push_back({shards, stats.mean(), speedup});
    char rate[64], sp[64];
    std::snprintf(rate, sizeof(rate), "%.3g", stats.mean());
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    char name[32];
    std::snprintf(name, sizeof(name), "%u shard%s", shards, shards == 1 ? "" : "s");
    nmo::bench::print_row({name, rate, sp});
  }

  // The >= 2x gate only means something when 4 shards can actually run in
  // parallel; on smaller machines the bench is informational.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gated = hw >= 4;

  if (json) {
    nmo::bench::JsonWriter w;
    w.begin_object();
    w.key("bench").value("decode_scaling");
    w.key("records_per_core").value(static_cast<std::uint64_t>(records_per_core));
    w.key("cores").value(static_cast<std::uint32_t>(kCores));
    w.key("trials").value(trials);
    w.key("hw_threads").value(hw);
    w.key("serial_records_per_sec").value(serial.mean());
    w.key("shards").begin_array();
    for (const auto& r : results) {
      w.begin_object();
      w.key("shards").value(r.shards);
      w.key("records_per_sec").value(r.rate);
      w.key("speedup").value(r.speedup);
      w.end_object();
    }
    w.end_array();
    w.key("speedup_at_4_shards").value(at4);
    w.key("gate_applied").value(gated);
    w.end_object();
    if (!w.write_file(json_path)) {
      // Exit 3 like the other deterministic failures: CI treats exit 1 as
      // the advisory speedup gate and must not swallow a lost artifact.
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 3;
    }
    std::printf("json -> %s\n", json_path.c_str());
  }

  std::printf("\nchecksum %016llx\n", static_cast<unsigned long long>(checksum));
  if (!gated) {
    std::printf("4-shard speedup %.2fx (gate skipped: only %u hardware thread%s)\n", at4, hw,
                hw == 1 ? "" : "s");
    return 0;
  }
  std::printf("4-shard speedup %.2fx (acceptance: >= 2x)\n", at4);
  return at4 >= 2.0 ? 0 : 1;
}
