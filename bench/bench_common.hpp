// Shared helpers for the figure-reproduction harnesses: trial loops,
// mean +- stddev formatting, aligned table printing, and a minimal JSON
// emitter for the --json artifact trail (BENCH_*.json per PR).
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace nmo::bench {

/// The JSON emitter moved to common/json.hpp so tools can emit --json
/// output too; the alias keeps existing bench code source-compatible.
using JsonWriter = nmo::JsonWriter;

/// Prints a header banner naming the figure/table being reproduced.
inline void banner(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("==============================================================\n");
}

/// mean +- stddev with engineering-style formatting.
inline std::string mean_std(const RunningStats& s, const char* fmt = "%.3g") {
  char buf[96];
  char m[32], d[32];
  std::snprintf(m, sizeof(m), fmt, s.mean());
  std::snprintf(d, sizeof(d), fmt, s.stddev());
  std::snprintf(buf, sizeof(buf), "%s +- %s", m, d);
  return buf;
}

/// Percentage with two decimals.
inline std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

/// Simple fixed-width row printer.
inline void print_row(const std::vector<std::string>& cells, int width = 16) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

}  // namespace nmo::bench
