// Figure 5: execution phases tagged with sampled memory accesses in the
// CFD benchmark at one OpenMP thread (20 iterations, "computation loop"
// tag).
//
// Paper finding: single-threaded CFD shows a continuous traverse of the
// mesh arrays - high stride regularity per region, accesses sweeping each
// array in order, iteration after iteration.
#include <cstdio>

#include "analysis/pattern.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "workloads/cfd.hpp"

int main() {
  nmo::bench::banner("Figure 5", "CFD access pattern, 1 OpenMP thread, 20 iterations");

  nmo::core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = nmo::core::Mode::kSample;
  nmo.period = 512;

  nmo::sim::EngineConfig engine;
  engine.threads = 1;
  engine.machine.hierarchy.cores = 1;

  nmo::wl::CfdConfig ccfg;
  ccfg.num_cells = 48 * 1024;
  ccfg.iterations = 20;
  nmo::wl::Cfd cfd(ccfg);

  nmo::core::ProfileSession session(nmo, engine);
  const auto report = session.profile(cfd, /*with_baseline=*/false);
  const auto& profiler = session.profiler();

  std::printf("samples collected: %llu\n",
              static_cast<unsigned long long>(report.processed_samples));

  const auto loop = nmo::analysis::samples_in_phase(profiler.trace(), profiler.regions(),
                                                    "computation loop");
  std::printf("samples in 'computation loop': %zu\n", loop.size());

  std::printf("\nPer-region breakdown inside the computation loop:\n");
  nmo::bench::print_row({"region", "samples", "loads", "stores"}, 22);
  const auto breakdown = nmo::analysis::region_breakdown(profiler.trace(), profiler.regions());
  for (const auto& r : breakdown) {
    if (r.samples == 0) continue;
    nmo::bench::print_row({r.name, std::to_string(r.samples), std::to_string(r.loads),
                           std::to_string(r.stores)},
                          22);
  }

  std::printf("\nPattern metrics (paper: continuous traverse at 1 thread):\n");
  std::printf("  aggregate locality (64 KiB window): %.1f%%  (7 interleaved region streams)\n",
              nmo::analysis::locality_fraction(loop, 64 * 1024) * 100.0);
  // Per-region view: each array is traversed in cell order, so the
  // within-region scatter is a continuous ramp.
  const auto& regions = profiler.regions().regions();
  for (std::size_t idx = 0; idx < regions.size(); ++idx) {
    auto only = loop;
    std::erase_if(only, [&](const nmo::core::TraceSample& s) {
      return s.region != static_cast<std::int32_t>(idx);
    });
    if (only.size() < 50) continue;
    std::printf("  %-22s locality: %5.1f%%\n", regions[idx].name.c_str(),
                nmo::analysis::locality_fraction(only, 64 * 1024) * 100.0);
  }
  return 0;
}
