// Table II: hardware specification of the simulated ARM platform, plus a
// measured STREAM-style peak-bandwidth check against the modelled
// 200 GB/s.
#include <cstdio>

#include "bench_common.hpp"
#include "common/units.hpp"
#include "core/session.hpp"
#include "sim/machine.hpp"
#include "workloads/stream.hpp"

int main() {
  nmo::bench::banner("Table II", "simulated platform specification (Ampere Altra Max class)");

  const nmo::sim::MachineConfig mc;
  nmo::bench::print_row({"CPU", "ARM Ampere(R) Altra(R) Max class (simulated)"}, 18);
  nmo::bench::print_row({"Cores", std::to_string(mc.hierarchy.cores) + " Armv8.2+ cores"}, 18);
  nmo::bench::print_row({"Frequency", std::to_string(mc.freq_ghz) + " GHz"}, 18);
  nmo::bench::print_row({"Mem. capacity", "256 GB (node budget)"}, 18);
  nmo::bench::print_row({"Mem. technology", "DDR4 (modelled latency/bandwidth)"}, 18);
  char bw[64];
  std::snprintf(bw, sizeof(bw), "%.0f GB/s",
                mc.hierarchy.dram_bytes_per_cycle * mc.freq_ghz);
  nmo::bench::print_row({"Peak bandwidth", bw}, 18);
  nmo::bench::print_row({"L1i / L1d", nmo::format_size(mc.hierarchy.l1.size_bytes) + " per core"},
                        18);
  nmo::bench::print_row({"L2", nmo::format_size(mc.hierarchy.l2.size_bytes) + " per core"}, 18);
  nmo::bench::print_row({"SLC", nmo::format_size(mc.hierarchy.slc.size_bytes)}, 18);
  nmo::bench::print_row({"Page size", nmo::format_size(mc.page_size)}, 18);

  // Measured check: STREAM triad bandwidth through the simulated hierarchy.
  nmo::core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = nmo::core::Mode::kBandwidth;
  nmo::sim::EngineConfig engine;
  engine.threads = 32;
  engine.machine.hierarchy.cores = 32;
  engine.tick_interval_ns = 100'000;
  nmo::wl::StreamConfig scfg;
  scfg.array_elems = 1 << 21;
  scfg.iterations = 3;
  nmo::wl::Stream stream(scfg);
  nmo::core::ProfileSession session(nmo, engine);
  session.profile(stream, false);
  std::printf("\nMeasured STREAM (32 threads) sustained bus bandwidth: %.1f GiB/s "
              "(model peak %.0f GB/s)\n",
              session.profiler().bandwidth().peak_gib_per_s(),
              mc.hierarchy.dram_bytes_per_cycle * mc.freq_ghz);
  return 0;
}
