// Figure 4: execution phases tagged with sampled memory accesses in the
// STREAM benchmark on 8 OpenMP threads (5 iterations, tagged triad kernel,
// arrays a/b/c tagged).
//
// Paper finding: each thread sweeps a contiguous slice of each array, so
// the (time, address) scatter forms "regular incremental small line
// segments" inside the tagged ranges.
#include <cstdio>

#include "analysis/pattern.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "workloads/stream.hpp"

int main() {
  nmo::bench::banner("Figure 4", "tagged access scatter: STREAM triad, 8 threads, 5 iterations");

  nmo::core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = nmo::core::Mode::kSample;
  nmo.period = 512;

  nmo::sim::EngineConfig engine;
  engine.threads = 8;
  engine.machine.hierarchy.cores = 8;

  nmo::wl::StreamConfig scfg;
  scfg.array_elems = 1 << 20;
  scfg.iterations = 5;
  nmo::wl::Stream stream(scfg);

  nmo::core::ProfileSession session(nmo, engine);
  const auto report = session.profile(stream, /*with_baseline=*/false);
  const auto& profiler = session.profiler();

  std::printf("samples collected: %llu (period %llu)\n",
              static_cast<unsigned long long>(report.processed_samples),
              static_cast<unsigned long long>(nmo.period));

  // Region legend (the a/b/c tags of Listing 1).
  std::printf("\nTagged regions:\n");
  const auto breakdown = nmo::analysis::region_breakdown(profiler.trace(), profiler.regions());
  nmo::bench::print_row({"tag", "samples", "loads", "stores"}, 14);
  for (const auto& r : breakdown) {
    if (r.samples == 0) continue;
    nmo::bench::print_row({r.name, std::to_string(r.samples), std::to_string(r.loads),
                           std::to_string(r.stores)},
                          14);
  }

  // Per-phase sample counts (the "triad" execution windows).
  std::printf("\nSamples inside the tagged triad windows:\n");
  const auto triad =
      nmo::analysis::samples_in_phase(profiler.trace(), profiler.regions(), "triad");
  std::printf("  triad samples: %zu of %zu total\n", triad.size(), profiler.trace().size());

  // Regularity: per-array sweeps are sequential.
  auto triad_a = triad;
  std::erase_if(triad_a, [](const nmo::core::TraceSample& s) { return s.region != 0; });
  std::printf("  per-array locality (64 KiB window): %.1f%% (paper: regular segments)\n",
              nmo::analysis::locality_fraction(triad_a, 64 * 1024) * 100.0);

  // Scatter sample: the first rows of what the paper plots.
  std::printf("\nScatter excerpt (time_ns, vaddr, tag):\n");
  int shown = 0;
  for (const auto& s : triad) {
    if (shown >= 20) break;
    const char* tag = s.region >= 0
                          ? profiler.regions().regions()[static_cast<std::size_t>(s.region)]
                                .name.c_str()
                          : "-";
    std::printf("  %12llu  0x%llx  %s\n", static_cast<unsigned long long>(s.time_ns),
                static_cast<unsigned long long>(s.vaddr), tag);
    ++shown;
  }
  return 0;
}
