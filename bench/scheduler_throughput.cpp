// Scheduler throughput: sessions/sec of the bounded worker pool
// (store/scheduler.hpp) vs the thread-per-session baseline.
//
// Not a paper figure: it characterizes the admission-controlled session
// runner this repo adds for fleet-scale profiled job counts.  The
// questions that matter at "millions of users" scale are (a) how many
// profiled sessions per second the pool sustains at each worker count,
// (b) what the thread-per-session baseline costs in comparison, and (c)
// that both paths persist byte-identical session traces (asserted every
// trial via the per-session fingerprints).
//
//   ./bench_scheduler_throughput [sessions] [trials] [--json FILE]
//
// --json writes machine-readable results (one object per mode) for the CI
// artifact trail.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "store/session_store.hpp"
#include "workloads/stream.hpp"

namespace {

namespace fs = std::filesystem;

std::vector<nmo::store::SessionJob> make_jobs(std::size_t sessions) {
  std::vector<nmo::store::SessionJob> jobs(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    jobs[i].name = "job-" + std::to_string(i);
    jobs[i].nmo.enable = true;
    jobs[i].nmo.mode = nmo::core::Mode::kSample;
    jobs[i].nmo.period = 512;
    jobs[i].engine.threads = 2;
    jobs[i].engine.machine.hierarchy.cores = 2;
    jobs[i].engine.seed = i + 1;
    jobs[i].make_workload = [] {
      nmo::wl::StreamConfig cfg;
      cfg.array_elems = 1 << 13;
      cfg.iterations = 1;
      return std::make_unique<nmo::wl::Stream>(cfg);
    };
  }
  return jobs;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct ModeResult {
  std::string mode;          // "threaded" or "pool"
  std::uint32_t workers = 0; // 0 for threaded (= one thread per session)
  double sessions_per_sec = 0.0;
  double seconds_mean = 0.0;
};

/// Per-session fingerprints in job order; the identity every mode must
/// reproduce.  A failed session contributes its error text, so two modes
/// failing differently can never compare as identical.
std::vector<std::string> fingerprints_of(const std::vector<nmo::store::SessionResult>& results) {
  std::vector<std::string> fps;
  fps.reserve(results.size());
  for (const auto& r : results) {
    fps.push_back(r.error.empty() ? r.fingerprint : "FAILED: " + r.error);
  }
  return fps;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 24;
  int trials = 3;
  std::string json_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (argv[i][0] != '-' && positional == 0) {
      sessions = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else if (argv[i][0] != '-' && positional == 1) {
      trials = std::atoi(argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr, "usage: %s [sessions > 0] [trials > 0] [--json FILE]\n", argv[0]);
      return 2;
    }
  }
  if (sessions == 0 || trials <= 0) {
    std::fprintf(stderr, "usage: %s [sessions > 0] [trials > 0] [--json FILE]\n", argv[0]);
    return 2;
  }

  nmo::bench::banner("scheduler", "bounded session scheduler vs thread-per-session");
  std::printf("%zu sessions per run, %d trials\n\n", sessions, trials);

  const fs::path root = fs::temp_directory_path() / "nmo_bench_scheduler";
  const auto jobs = make_jobs(sessions);

  std::vector<std::uint32_t> worker_counts = {1, 2, 4};
  const std::uint32_t hw = nmo::store::default_max_workers();
  if (hw > 4) worker_counts.push_back(hw);

  std::vector<ModeResult> modes;
  std::vector<std::string> reference_fps;
  bool identical = true;

  nmo::bench::print_row({"mode", "workers", "sessions/s", "seconds"}, 14);

  const auto record = [&](const std::string& mode, std::uint32_t workers,
                          const nmo::RunningStats& secs) {
    ModeResult r;
    r.mode = mode;
    r.workers = workers;
    r.seconds_mean = secs.mean();
    r.sessions_per_sec = static_cast<double>(sessions) / secs.mean();
    modes.push_back(r);
    char sps[32], sec[32];
    std::snprintf(sps, sizeof(sps), "%.1f", r.sessions_per_sec);
    std::snprintf(sec, sizeof(sec), "%.3f", r.seconds_mean);
    nmo::bench::print_row(
        {mode, workers == 0 ? std::string("n/a") : std::to_string(workers), sps, sec}, 14);
  };

  // Every trial of every mode must reproduce the reference fingerprints
  // (trial 0 of the threaded baseline); this is the bench's divergence
  // gate, not just its banner.
  const auto check_parity = [&](const std::vector<nmo::store::SessionResult>& results,
                                const char* mode, std::uint32_t workers, int trial) {
    const auto fps = fingerprints_of(results);
    if (reference_fps.empty()) {
      reference_fps = fps;
    } else if (fps != reference_fps) {
      identical = false;
      std::printf("!! %s(%u) trial %d traces differ from the baseline\n", mode, workers,
                  trial);
    }
  };

  // Thread-per-session baseline.
  {
    nmo::RunningStats secs;
    for (int t = 0; t < trials; ++t) {
      fs::remove_all(root);
      nmo::store::SessionStore store(root.string());
      nmo::store::RunOptions options;
      options.threaded = true;
      const auto t0 = std::chrono::steady_clock::now();
      const auto run = nmo::store::run_sessions(store, jobs, options);
      secs.add(seconds_since(t0));
      check_parity(run.results, "threaded", 0, t);
    }
    record("threaded", 0, secs);
  }

  // The bounded pool at increasing worker counts.
  for (const std::uint32_t workers : worker_counts) {
    nmo::RunningStats secs;
    for (int t = 0; t < trials; ++t) {
      fs::remove_all(root);
      nmo::store::SessionStore store(root.string());
      nmo::store::RunOptions options;
      options.scheduler.max_workers = workers;
      options.scheduler.queue_depth = 0;
      options.scheduler.policy = nmo::store::AdmissionPolicy::kBlock;
      const auto t0 = std::chrono::steady_clock::now();
      const auto run = nmo::store::run_sessions(store, jobs, options);
      secs.add(seconds_since(t0));
      check_parity(run.results, "pool", workers, t);
    }
    record("pool", workers, secs);
  }
  fs::remove_all(root);

  std::printf("\nper-session traces %s the thread-per-session baseline\n",
              identical ? "byte-identical to" : "DIFFER from");

  if (!json_path.empty()) {
    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n  \"sessions\": " << sessions << ",\n  \"trials\": " << trials
         << ",\n  \"traces_identical\": " << (identical ? "true" : "false")
         << ",\n  \"modes\": [\n";
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const auto& m = modes[i];
      json << "    {\"mode\": \"" << m.mode << "\", \"workers\": " << m.workers
           << ", \"sessions_per_sec\": " << m.sessions_per_sec
           << ", \"seconds_mean\": " << m.seconds_mean << "}"
           << (i + 1 < modes.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json -> %s\n", json_path.c_str());
  }
  return identical ? 0 : 1;
}
