// Streaming-capture throughput: blocks/sec and wire MB/s of the
// sender -> nmo-traced collector path over loopback, across 1/4/8
// concurrent senders, against the direct-to-disk TraceWriter baseline.
//
// Not a paper figure: it characterizes the net/ subsystem this repo adds
// on top of the paper's single-host capture workflow.  What matters for
// fleet capture is (a) how much slower shipping blocks over TCP is than
// writing them locally, (b) how ingest scales when several sessions
// stream into one collector, and (c) that the default watermark (the
// bounded ring with the block policy) never drops a block - streamed
// capture must stay lossless, not best-effort.
//
// The throughput numbers are hardware- and kernel-dependent; the
// deterministic gates are not:
//   - zero dropped blocks at the default watermark, every sender count;
//   - every collected trace byte-identical to its sender's local file.
//
//   ./bench_fig16_stream_throughput [samples/sender] [trials] [--json [FILE]]
//
// Exit codes: 0 ok; 1 = gate failure (drops, parity mismatch, or a
// stream/collector error).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/trace.hpp"
#include "net/block_sender.hpp"
#include "net/collector.hpp"
#include "store/trace_file.hpp"

namespace {

namespace fs = std::filesystem;

/// Clustered irregular accesses (the fig13 "cfd" profile): short runs
/// broken by jumps - a realistic, not codec-best-case, wire payload.
nmo::core::SampleTrace make_trace(std::size_t samples, std::uint64_t seed) {
  nmo::core::SampleTrace trace;
  nmo::Rng rng(seed, 5);
  std::uint64_t t = 1000;
  std::vector<nmo::Addr> cursor(8, 0x1000'0000);
  for (std::size_t i = 0; i < samples; ++i) {
    nmo::core::TraceSample s;
    t += 80 + rng.uniform(160);
    s.time_ns = t;
    s.core = static_cast<nmo::CoreId>(rng.uniform(8));
    if (rng.uniform(8) == 0) {
      cursor[s.core] = 0x1000'0000 + rng.uniform(1 << 12) * 0x1'0000;
    } else {
      cursor[s.core] += 8 + 8 * rng.uniform(4);
    }
    s.vaddr = cursor[s.core];
    s.pc = 0x400000 + rng.uniform(64) * 4;
    s.op = rng.uniform(4) == 0 ? nmo::MemOp::kStore : nmo::MemOp::kLoad;
    const unsigned level = static_cast<unsigned>(rng.uniform(4));
    s.level = static_cast<nmo::MemLevel>(level);
    s.latency = static_cast<std::uint16_t>(level == 3 ? 280 + rng.uniform(100) : 4 + level * 9);
    s.region = -1;
    trace.add(s);
  }
  trace.sort_canonical();
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double mib(std::uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct RunResult {
  double blocks_per_sec = 0.0;
  double wire_mbps = 0.0;      ///< framed bytes over the wire / wall time
  double disk_mbps = 0.0;      ///< direct TraceWriter baseline, same traces
  std::uint64_t blocks = 0;
  std::uint64_t dropped = 0;
  bool parity_ok = true;
  bool stream_ok = true;
};

/// One trial at a given sender count: streams every trace through an
/// in-process collector, then writes the same traces straight to disk as
/// the baseline.  Parity compares collected files to the senders' local
/// captures byte for byte.
RunResult run_trial(const std::vector<nmo::core::SampleTrace>& traces, const fs::path& dir) {
  RunResult r;
  const std::size_t senders = traces.size();
  fs::remove_all(dir);
  fs::create_directories(dir);

  nmo::net::CollectorConfig collector_config;
  collector_config.root = (dir / "collected").string();
  collector_config.once = senders;
  nmo::net::Collector collector(collector_config);
  std::string error;
  if (!collector.start(&error)) {
    std::fprintf(stderr, "collector: %s\n", error.c_str());
    r.stream_ok = false;
    return r;
  }

  std::vector<std::string> local(senders);
  std::vector<nmo::net::StreamStats> stats(senders);
  // vector<char>, not vector<bool>: the senders write their slots
  // concurrently, and bit-packed elements would race on shared words.
  std::vector<char> sender_ok(senders, 0);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < senders; ++i) {
      local[i] = (dir / ("local-" + std::to_string(i) + ".nmot")).string();
      threads.emplace_back([&, i] {
        nmo::net::StreamConfig stream;  // default watermark: ring 64, block policy
        stream.port = collector.port();
        nmo::net::StreamingTraceSink sink(stream, "bench-" + std::to_string(i),
                                          nmo::store::TraceWriter::Options{}, i);
        if (!sink.connect()) return;
        nmo::store::TraceWriter writer(local[i]);
        sink.attach(writer);
        writer.write_all(traces[i]);
        const bool closed = writer.close();
        const bool finished =
            sink.finish(writer.samples_written(), writer.fingerprint());
        stats[i] = sink.stats();
        sender_ok[i] = closed && finished && !sink.fallback() ? 1 : 0;
      });
    }
    for (auto& t : threads) t.join();
  }
  if (!collector.wait_done(120'000)) r.stream_ok = false;
  const double stream_seconds = seconds_since(t0);
  collector.stop();

  std::uint64_t wire_bytes = 0;
  for (std::size_t i = 0; i < senders; ++i) {
    r.stream_ok = r.stream_ok && sender_ok[i] != 0;
    r.blocks += stats[i].blocks_sent;
    r.dropped += stats[i].blocks_dropped;
    wire_bytes += stats[i].bytes_sent;
  }
  r.blocks_per_sec = static_cast<double>(r.blocks) / stream_seconds;
  r.wire_mbps = mib(wire_bytes) / stream_seconds;

  // Parity: every collected session file equals the matching local file.
  std::size_t matched = 0;
  for (const auto& entry : fs::directory_iterator(collector_config.root)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    for (std::size_t i = 0; i < senders; ++i) {
      if (name.find("-bench-" + std::to_string(i)) == std::string::npos) continue;
      if (read_file((entry.path() / "trace.nmot").string()) != read_file(local[i])) {
        r.parity_ok = false;
      }
      ++matched;
    }
  }
  r.parity_ok = r.parity_ok && matched == senders;

  // Direct-to-disk baseline: the same traces through plain TraceWriters
  // on the same thread count, no tee.
  std::uint64_t disk_bytes = 0;
  const auto t1 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < senders; ++i) {
      threads.emplace_back([&, i] {
        nmo::store::TraceWriter writer((dir / ("disk-" + std::to_string(i) + ".nmot")).string());
        writer.write_all(traces[i]);
        writer.close();
      });
    }
    for (auto& t : threads) t.join();
  }
  const double disk_seconds = seconds_since(t1);
  for (std::size_t i = 0; i < senders; ++i) {
    disk_bytes += fs::file_size(dir / ("disk-" + std::to_string(i) + ".nmot"));
  }
  r.disk_mbps = mib(disk_bytes) / disk_seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t samples = 1 << 18;
  int trials = 3;
  std::string json_path;
  bool want_json = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (!positional.empty()) samples = std::strtoull(positional[0].c_str(), nullptr, 10);
  if (positional.size() > 1) trials = std::atoi(positional[1].c_str());
  if (samples == 0 || trials <= 0 || positional.size() > 2) {
    std::fprintf(stderr, "usage: %s [samples/sender > 0] [trials > 0] [--json [FILE]]\n",
                 argv[0]);
    return 2;
  }
  if (want_json && json_path.empty()) json_path = "BENCH_stream.json";

  nmo::bench::banner("fig16", "streaming capture: loopback sender->collector vs direct disk");
  std::printf("%zu samples/sender, %d trials, default watermark (ring 64, block policy)\n",
              samples, trials);

  const fs::path dir = fs::temp_directory_path() / "nmo_fig16_stream";
  const std::vector<std::size_t> sender_counts = {1, 4, 8};

  // One trace pool, large enough for the widest fan-out, built once.
  std::vector<nmo::core::SampleTrace> pool;
  for (std::size_t i = 0; i < sender_counts.back(); ++i) {
    pool.push_back(make_trace(samples, 1000 + i));
  }

  bool gate_ok = true;
  nmo::bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("fig16_stream_throughput");
  json.key("samples_per_sender").value(static_cast<std::uint64_t>(samples));
  json.key("trials").value(trials);
  json.key("runs").begin_array();

  nmo::bench::print_row(
      {"senders", "blocks/s", "wire MB/s", "disk MB/s", "drops", "parity"}, 12);
  for (const std::size_t senders : sender_counts) {
    const std::vector<nmo::core::SampleTrace> traces(pool.begin(),
                                                     pool.begin() + static_cast<long>(senders));
    nmo::RunningStats blocks_s, wire_s, disk_s;
    std::uint64_t dropped = 0;
    bool parity_ok = true;
    bool stream_ok = true;
    std::uint64_t blocks = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const RunResult r = run_trial(traces, dir / std::to_string(senders));
      blocks_s.add(r.blocks_per_sec);
      wire_s.add(r.wire_mbps);
      disk_s.add(r.disk_mbps);
      dropped += r.dropped;
      parity_ok = parity_ok && r.parity_ok;
      stream_ok = stream_ok && r.stream_ok;
      blocks = r.blocks;
    }
    const bool row_ok = parity_ok && stream_ok && dropped == 0;
    gate_ok = gate_ok && row_ok;

    char b[32], w[32], d[32], dr[32];
    std::snprintf(b, sizeof(b), "%.0f", blocks_s.mean());
    std::snprintf(w, sizeof(w), "%.1f", wire_s.mean());
    std::snprintf(d, sizeof(d), "%.1f", disk_s.mean());
    std::snprintf(dr, sizeof(dr), "%llu", static_cast<unsigned long long>(dropped));
    nmo::bench::print_row({std::to_string(senders), b, w, d, dr, row_ok ? "ok" : "FAIL"}, 12);

    json.begin_object();
    json.key("senders").value(static_cast<std::uint64_t>(senders));
    json.key("blocks").value(blocks);
    json.key("blocks_per_sec").value(blocks_s.mean());
    json.key("wire_mbps").value(wire_s.mean());
    json.key("disk_mbps").value(disk_s.mean());
    json.key("dropped").value(dropped);
    json.key("parity_ok").value(parity_ok);
    json.key("stream_ok").value(stream_ok);
    json.end_object();
  }
  json.end_array();
  json.key("gate_ok").value(gate_ok);
  json.end_object();
  if (want_json && !json.write_file(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  fs::remove_all(dir);
  std::printf("\ngate (zero drops at default watermark, byte parity): %s\n",
              gate_ok ? "ok" : "FAIL");
  return gate_ok ? 0 : 1;
}
