// Figure 8: measured accuracy (a), time overhead (b) and sample collisions
// (c) of NMO precise sampling on STREAM, CFD and BFS at sampling periods
// 1000..128000.
//
// Paper findings to reproduce in shape:
//  * accuracy rises sharply below period ~3000 and stabilises at 94-96%;
//  * BFS accuracy is markedly higher than STREAM/CFD at small periods
//    because BFS barely collides (cache-resident, short pipeline latency);
//  * collisions at period 1000 reach hundreds (STREAM) / thousands (CFD)
//    and fall towards zero with rising period, BFS stays below ~10;
//  * time overhead spikes for BFS below period 4000 (up to ~11%) while
//    STREAM/CFD stay flat because their collided samples are discarded
//    before any buffer work happens.
#include <cinttypes>
#include <cstdio>

#include "analysis/accuracy.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"

namespace {

constexpr int kTrials = 5;
constexpr std::uint64_t kPeriods[] = {1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000};

struct SeriesPoint {
  nmo::RunningStats accuracy;
  nmo::RunningStats overhead;
  nmo::RunningStats collisions;
};

void run_workload(const nmo::sim::WorkloadProfile& profile, std::uint32_t threads) {
  std::printf("\n-- %s (%u threads, %d trials) --\n", profile.name.c_str(), threads, kTrials);
  nmo::bench::print_row({"period", "accuracy", "overhead", "collisions(AUX)", "hw-collisions"},
                        18);
  for (const auto period : kPeriods) {
    SeriesPoint pt;
    nmo::RunningStats hw;
    for (int trial = 0; trial < kTrials; ++trial) {
      nmo::sim::SweepConfig cfg;
      cfg.threads = threads;
      cfg.period = period;
      cfg.seed = 2000 + static_cast<std::uint64_t>(trial);
      cfg.monitor_round_interval_cycles = 45'000'000;  // responsive monitor: counting mode
      const auto r = nmo::sim::run_with_baseline(profile, nmo::sim::MachineConfig{}, cfg);
      pt.accuracy.add(nmo::analysis::accuracy(r));
      pt.overhead.add(nmo::analysis::time_overhead(r));
      pt.collisions.add(static_cast<double>(r.collision_flags));
      hw.add(static_cast<double>(r.hw_collisions));
    }
    char p[24];
    std::snprintf(p, sizeof(p), "%" PRIu64, period);
    nmo::bench::print_row({p, nmo::bench::pct(pt.accuracy.mean()),
                           nmo::bench::pct(pt.overhead.mean()),
                           nmo::bench::mean_std(pt.collisions, "%.1f"),
                           nmo::bench::mean_std(hw, "%.3g")},
                          18);
  }
}

}  // namespace

int main() {
  nmo::bench::banner("Figure 8", "accuracy / time overhead / sample collisions vs period");
  run_workload(nmo::sim::profiles::stream(), 32);
  run_workload(nmo::sim::profiles::cfd(), 32);
  run_workload(nmo::sim::profiles::bfs(), 32);
  return 0;
}
