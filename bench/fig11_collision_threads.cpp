// Figure 11: sample collisions / sampling throttling on STREAM at an
// increasing number of OpenMP threads (setup of Figure 10).
//
// Paper finding: a substantial increase in sampling throttling at high
// thread counts, which explains the accuracy droop of Figure 10 past 32
// threads.
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"

namespace {

constexpr int kTrials = 5;
constexpr std::uint32_t kThreads[] = {1, 2, 4, 8, 16, 32, 48, 64, 96, 128};
constexpr std::uint64_t kPeriod = 4096;

}  // namespace

int main() {
  nmo::bench::banner("Figure 11", "sample collisions and throttling vs thread count (STREAM)");
  auto profile = nmo::sim::profiles::stream();
  profile.scale_ops(4.0);  // paper-scale run length: total sample bytes rival total buffering
  nmo::bench::print_row(
      {"threads", "hw_collisions", "collision_AUX", "throttle_ev", "throttled_sel"}, 16);
  for (const auto threads : kThreads) {
    nmo::RunningStats hw, flags, throttle, suppressed;
    for (int trial = 0; trial < kTrials; ++trial) {
      nmo::sim::SweepConfig cfg;
      cfg.threads = threads;
      cfg.period = kPeriod;
      cfg.ring_pages = 9;
      cfg.aux_bytes = 16 * nmo::kSimPageSize;
      cfg.seed = 5000 + static_cast<std::uint64_t>(trial);
      const auto r = nmo::sim::run_statistical(profile, nmo::sim::MachineConfig{}, cfg);
      hw.add(static_cast<double>(r.hw_collisions));
      flags.add(static_cast<double>(r.collision_flags));
      throttle.add(static_cast<double>(r.throttle_events));
      suppressed.add(static_cast<double>(r.throttled));
    }
    char t[24];
    std::snprintf(t, sizeof(t), "%u", threads);
    nmo::bench::print_row({t, nmo::bench::mean_std(hw, "%.3g"), nmo::bench::mean_std(flags, "%.3g"),
                           nmo::bench::mean_std(throttle, "%.3g"),
                           nmo::bench::mean_std(suppressed, "%.3g")},
                          16);
  }
  std::printf("(paper: collisions/throttling grow substantially past ~32 threads)\n");
  return 0;
}
