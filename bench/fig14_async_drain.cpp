// Async drain pipeline: staged producer/consumer monitor vs the
// round-synced baseline.
//
// Not a paper figure: it characterizes this reproduction's own async
// beachhead.  The monitor's round loop used to end in a fork/join barrier
// (AuxConsumer::sync()), serializing every round behind its slowest decode
// shard; sim/drain_service.hpp replaces the barrier with a dedicated
// consumer thread and epoch-based completion so decode of round N overlaps
// the drain of round N+1.  Two legs measure the two halves of that claim:
//
//  1. host pipeline: records/sec of round-synced vs async staging across
//     decode shard counts, over the same round structure the monitor
//     produces (bursty, uneven per-core rounds).  A wall-clock aux-buffer
//     emulation reports the dropped-sample (TRUNCATED) rate each mode
//     would suffer at a given device fill rate: the baseline's rounds take
//     longer end-to-end, so its virtual buffers overflow more.
//  2. sim overlap telemetry: a statistical-driver run with async_drain on,
//     reporting EngineStats-style overlapped cycles / epoch lag /
//     retirements (deterministic, machine-independent).
//
//   ./bench_fig14_async_drain [rounds] [trials] [--json [FILE]]
//
// --json writes machine-readable results (default BENCH_async_drain.json)
// so the perf trajectory accumulates comparable numbers per PR.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/drain_service.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/decode_pool.hpp"
#include "spe/packet.hpp"

namespace {

using nmo::spe::kRecordSize;
using nmo::spe::RawChunk;
using nmo::spe::Record;

constexpr nmo::CoreId kCores = 8;
constexpr std::size_t kMeanRecordsPerRound = 64;

/// Virtual aux-buffer emulation: fill rate per core and capacity chosen so
/// that drain latencies in the tens-of-microseconds range matter.
constexpr double kFillRecordsPerSec = 2.0e6;
constexpr double kCapacityRecords = 512.0;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One core's stream for one round: encoded records, ~3% invalid (the
/// collision-corrupted records NMO's validation skips), record counts
/// varied per round so per-round shard load is uneven - the imbalance a
/// round-end barrier serializes on.
struct RoundPlan {
  std::vector<std::size_t> offsets;  ///< Per (round, core): byte offset into the core stream.
  std::vector<std::size_t> lengths;  ///< Per (round, core): bytes this round.
  std::vector<std::vector<std::byte>> streams;  ///< Per core: all rounds concatenated.
  std::uint64_t total_records = 0;
};

RoundPlan make_plan(std::size_t rounds) {
  RoundPlan plan;
  plan.offsets.resize(rounds * kCores);
  plan.lengths.resize(rounds * kCores);
  plan.streams.resize(kCores);
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  for (nmo::CoreId core = 0; core < kCores; ++core) {
    std::size_t total = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      // 16..112 records, mean ~64: bursty rounds.
      const std::size_t records = 16 + next() % (2 * kMeanRecordsPerRound - 32);
      plan.offsets[r * kCores + core] = total * kRecordSize;
      plan.lengths[r * kCores + core] = records * kRecordSize;
      total += records;
    }
    plan.total_records += total;
    auto& raw = plan.streams[core];
    raw.resize(total * kRecordSize);
    for (std::size_t i = 0; i < total; ++i) {
      Record rec;
      rec.vaddr = 0x4000'0000 + core * 0x100'0000 + i * 8;
      rec.pc = 0x400000 + (i & 0xffff);
      rec.timestamp = 1 + i;
      rec.op = (i & 1) ? nmo::MemOp::kStore : nmo::MemOp::kLoad;
      rec.level = static_cast<nmo::MemLevel>(i & 3);
      rec.total_latency = static_cast<std::uint16_t>(10 + (i & 255));
      nmo::spe::encode(rec, std::span<std::byte, kRecordSize>(raw.data() + i * kRecordSize,
                                                              kRecordSize));
      if (i % 33 == 32) raw[i * kRecordSize + nmo::spe::kTsHeaderOffset] = std::byte{0x00};
    }
  }
  return plan;
}

/// Wall-clock TRUNCATED emulation: each core's virtual buffer fills at
/// kFillRecordsPerSec and holds kCapacityRecords; whatever accrues beyond
/// capacity between two drains of that core is dropped.
struct TruncEmu {
  std::vector<std::chrono::steady_clock::time_point> last_drain;
  double kept = 0.0;
  double dropped = 0.0;

  void start() {
    last_drain.assign(kCores, std::chrono::steady_clock::now());
    kept = 0.0;
    dropped = 0.0;
  }
  void on_drain(nmo::CoreId core) {
    const auto now = std::chrono::steady_clock::now();
    const double accrued =
        std::chrono::duration<double>(now - last_drain[core]).count() * kFillRecordsPerSec;
    last_drain[core] = now;
    const double k = std::min(accrued, kCapacityRecords);
    kept += k;
    dropped += accrued - k;
  }
  [[nodiscard]] double rate() const {
    const double total = kept + dropped;
    return total > 0.0 ? dropped / total : 0.0;
  }
};

struct LegResult {
  double records_per_sec = 0.0;
  double truncated_rate = 0.0;
  std::uint64_t records_ok = 0;
};

/// Builds one round's RawChunks (the stage-1 drain: memcpy out of the
/// device buffers) for every core.
void drain_round(const RoundPlan& plan, std::size_t round, std::vector<RawChunk>& out,
                 TruncEmu& emu) {
  for (nmo::CoreId core = 0; core < kCores; ++core) {
    const std::size_t len = plan.lengths[round * kCores + core];
    if (len == 0) continue;
    const std::size_t off = plan.offsets[round * kCores + core];
    RawChunk chunk;
    chunk.core = core;
    chunk.bytes.assign(plan.streams[core].begin() + static_cast<std::ptrdiff_t>(off),
                       plan.streams[core].begin() + static_cast<std::ptrdiff_t>(off + len));
    emu.on_drain(core);
    out.push_back(std::move(chunk));
  }
}

/// Round-synced baseline: every round ends in the fork/join the serial
/// monitor used (decode inline, or pool submit + sync()).
LegResult run_synced(const RoundPlan& plan, std::size_t rounds, std::uint32_t shards) {
  std::unique_ptr<nmo::spe::DecodePool> pool;
  if (shards > 0) pool = std::make_unique<nmo::spe::DecodePool>(shards);
  nmo::spe::AuxConsumer consumer =
      pool ? nmo::spe::AuxConsumer(pool.get())
           : nmo::spe::AuxConsumer(nmo::spe::AuxConsumer::BatchSink{});
  TruncEmu emu;
  emu.start();
  std::vector<RawChunk> chunks;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    chunks.clear();
    drain_round(plan, r, chunks, emu);
    consumer.decode_chunks(chunks);
    consumer.sync();  // the round-end barrier under test
  }
  const double dt = seconds_since(t0);
  LegResult res;
  res.records_ok = consumer.counts().records_ok;
  res.records_per_sec = static_cast<double>(res.records_ok) / dt;
  res.truncated_rate = emu.rate();
  return res;
}

/// Async staging: rounds hand epochs to the DrainService; the only wait is
/// the final barrier.
LegResult run_async(const RoundPlan& plan, std::size_t rounds, std::uint32_t shards) {
  std::unique_ptr<nmo::spe::DecodePool> pool;
  if (shards > 0) pool = std::make_unique<nmo::spe::DecodePool>(shards);
  nmo::spe::AuxConsumer consumer =
      pool ? nmo::spe::AuxConsumer(pool.get())
           : nmo::spe::AuxConsumer(nmo::spe::AuxConsumer::BatchSink{});
  nmo::sim::DrainService service(&consumer, pool.get());
  TruncEmu emu;
  emu.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<RawChunk> chunks;
    drain_round(plan, r, chunks, emu);
    service.submit_epoch(std::move(chunks));
  }
  service.barrier();
  if (consumer.parallel()) consumer.sync();
  const double dt = seconds_since(t0);
  LegResult res;
  res.records_ok = consumer.counts().records_ok;
  res.records_per_sec = static_cast<double>(res.records_ok) / dt;
  res.truncated_rate = emu.rate();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 2000;
  int trials = 5;
  bool json = false;
  std::string json_path = "BENCH_async_drain.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (argv[i][0] != '-' && positional == 0) {
      rounds = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else if (argv[i][0] != '-' && positional == 1) {
      trials = std::atoi(argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr, "usage: %s [rounds > 0] [trials > 0] [--json [FILE]]\n", argv[0]);
      return 2;
    }
  }
  if (rounds == 0 || trials <= 0) {
    std::fprintf(stderr, "usage: %s [rounds > 0] [trials > 0] [--json [FILE]]\n", argv[0]);
    return 2;
  }

  nmo::bench::banner("fig14", "async drain pipeline: staged epochs vs round-synced barrier");
  const auto plan = make_plan(rounds);
  std::printf("%zu rounds x %u cores, %llu records total, %d trials, hw threads %u\n\n",
              rounds, kCores, static_cast<unsigned long long>(plan.total_records), trials,
              std::thread::hardware_concurrency());

  struct Row {
    std::string config;
    std::uint32_t shards;
    double synced_rps, async_rps, speedup, synced_trunc, async_trunc;
  };
  std::vector<Row> rows;
  double speedup_at4 = 0.0;

  nmo::bench::print_row({"config", "synced rec/s", "async rec/s", "speedup", "sync-trunc",
                         "async-trunc"},
                        14);
  for (const std::uint32_t shards : {0u, 1u, 2u, 4u, 8u}) {
    nmo::RunningStats synced_rps, async_rps, synced_tr, async_tr;
    std::uint64_t ok_synced = 0, ok_async = 0;
    for (int t = 0; t < trials; ++t) {
      const LegResult s = run_synced(plan, rounds, shards);
      const LegResult a = run_async(plan, rounds, shards);
      synced_rps.add(s.records_per_sec);
      async_rps.add(a.records_per_sec);
      synced_tr.add(s.truncated_rate);
      async_tr.add(a.truncated_rate);
      ok_synced = s.records_ok;
      ok_async = a.records_ok;
    }
    if (ok_synced != ok_async) {
      // Deterministic failure (exit 3, vs 1 for the advisory wall-clock
      // gate): the async pipeline decoded a different record set.
      std::fprintf(stderr, "!! decoded-record mismatch at %u shards: %llu vs %llu\n", shards,
                   static_cast<unsigned long long>(ok_synced),
                   static_cast<unsigned long long>(ok_async));
      return 3;
    }
    Row row;
    if (shards == 0) {
      row.config = "serial";
    } else {
      row.config = std::to_string(shards) + (shards == 1 ? " shard" : " shards");
    }
    row.shards = shards;
    row.synced_rps = synced_rps.mean();
    row.async_rps = async_rps.mean();
    row.speedup = row.async_rps / row.synced_rps;
    row.synced_trunc = synced_tr.mean();
    row.async_trunc = async_tr.mean();
    if (shards == 4) speedup_at4 = row.speedup;
    rows.push_back(row);
    char s1[32], s2[32], s3[32];
    std::snprintf(s1, sizeof(s1), "%.3g", row.synced_rps);
    std::snprintf(s2, sizeof(s2), "%.3g", row.async_rps);
    std::snprintf(s3, sizeof(s3), "%.2fx", row.speedup);
    nmo::bench::print_row({row.config, s1, s2, s3, nmo::bench::pct(row.synced_trunc),
                           nmo::bench::pct(row.async_trunc)},
                          14);
  }

  // Leg 2: deterministic sim overlap telemetry - a statistical run with
  // async_drain on, dense monitor rounds so several epochs are modeled.
  auto profile = nmo::sim::profiles::stream();
  nmo::sim::SweepConfig sweep;
  sweep.threads = 4;
  sweep.period = 512;
  sweep.monitor_round_interval_cycles = 10'000'000;  // dense rounds
  sweep.decode_shards = 4;
  sweep.async_drain = true;
  const auto stat = nmo::sim::run_statistical(profile, nmo::sim::MachineConfig{}, sweep);
  std::printf("\nsim overlap telemetry (stream profile, 4 threads, async_drain=on):\n");
  std::printf("  overlapped cycles : %llu\n",
              static_cast<unsigned long long>(stat.overlapped_cycles));
  std::printf("  retired epochs    : %llu (monitor rounds: %llu)\n",
              static_cast<unsigned long long>(stat.retired_epochs),
              static_cast<unsigned long long>(stat.monitor_services));
  std::printf("  peak epoch lag    : %llu\n",
              static_cast<unsigned long long>(stat.peak_epoch_lag));

  if (json) {
    nmo::bench::JsonWriter w;
    w.begin_object();
    w.key("bench").value("async_drain");
    w.key("rounds").value(static_cast<std::uint64_t>(rounds));
    w.key("trials").value(trials);
    w.key("total_records").value(plan.total_records);
    w.key("hw_threads").value(std::thread::hardware_concurrency());
    w.key("modes").begin_array();
    for (const Row& row : rows) {
      w.begin_object();
      w.key("config").value(row.config);
      w.key("shards").value(row.shards);
      w.key("synced_records_per_sec").value(row.synced_rps);
      w.key("async_records_per_sec").value(row.async_rps);
      w.key("speedup").value(row.speedup);
      w.key("synced_truncated_rate").value(row.synced_trunc);
      w.key("async_truncated_rate").value(row.async_trunc);
      w.end_object();
    }
    w.end_array();
    w.key("sim").begin_object();
    w.key("overlapped_cycles").value(stat.overlapped_cycles);
    w.key("retired_epochs").value(stat.retired_epochs);
    w.key("monitor_rounds").value(stat.monitor_services);
    w.key("peak_epoch_lag").value(stat.peak_epoch_lag);
    w.end_object();
    w.end_object();
    if (!w.write_file(json_path)) {
      // Exit 3 like the other deterministic failures: CI treats exit 1 as
      // the advisory speedup gate and must not swallow a lost artifact.
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 3;
    }
    std::printf("json -> %s\n", json_path.c_str());
  }

  if (stat.overlapped_cycles == 0 || stat.retired_epochs == 0) {
    std::printf("\nFAIL: async drain modeled no overlap\n");
    return 3;  // deterministic failure, machine-independent
  }
  // The wall-clock gate only means something when the pipeline stages can
  // actually run in parallel; on smaller machines the bench is informational.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::printf("\n4-shard async speedup %.2fx (gate skipped: only %u hardware thread%s)\n",
                speedup_at4, hw, hw == 1 ? "" : "s");
    return 0;
  }
  std::printf("\n4-shard async speedup %.2fx (acceptance: >= 1.1x)\n", speedup_at4);
  return speedup_at4 >= 1.1 ? 0 : 1;
}
