// Figure 7: the number of collected ARM SPE samples of memory accesses in
// STREAM, CFD and BFS at sampling periods 512..131072, five trials each.
//
// Paper finding: samples scale linearly with 1/period (log-log slope -1);
// the smallest periods show high variance and fall off the line because of
// sample collisions.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"

namespace {

constexpr int kTrials = 5;
constexpr std::uint64_t kPeriods[] = {512,   1024,  2048,  4096, 8192,
                                      16384, 32768, 65536, 131072};

void run_workload(const nmo::sim::WorkloadProfile& profile, std::uint32_t threads) {
  std::printf("\n-- %s (%u threads, %d trials per period) --\n", profile.name.c_str(), threads,
              kTrials);
  nmo::bench::print_row({"period", "samples(mean)", "samples(std)", "trial values..."}, 15);

  nmo::LinearFit loglog;
  for (const auto period : kPeriods) {
    nmo::RunningStats samples;
    std::string trials_str;
    for (int trial = 0; trial < kTrials; ++trial) {
      nmo::sim::SweepConfig cfg;
      cfg.threads = threads;
      cfg.period = period;
      cfg.seed = 1000 + static_cast<std::uint64_t>(trial);
      cfg.monitor_round_interval_cycles = 45'000'000;  // responsive monitor: counting mode
      const auto r = nmo::sim::run_statistical(profile, nmo::sim::MachineConfig{}, cfg);
      samples.add(static_cast<double>(r.processed_samples));
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%.3e ", static_cast<double>(r.processed_samples));
      trials_str += buf;
    }
    loglog.add(std::log2(static_cast<double>(period)), std::log2(samples.mean()));
    char p[24], m[24], s[24];
    std::snprintf(p, sizeof(p), "%" PRIu64, period);
    std::snprintf(m, sizeof(m), "%.3e", samples.mean());
    std::snprintf(s, sizeof(s), "%.2e", samples.stddev());
    nmo::bench::print_row({p, m, s, trials_str}, 15);
  }
  std::printf("log-log slope = %.3f (paper: linear scaling, slope -1)\n", loglog.slope());
}

}  // namespace

int main() {
  nmo::bench::banner("Figure 7", "collected SPE samples vs sampling period (5 trials)");
  run_workload(nmo::sim::profiles::stream(), 32);
  run_workload(nmo::sim::profiles::cfd(), 32);
  run_workload(nmo::sim::profiles::bfs(), 32);
  return 0;
}
