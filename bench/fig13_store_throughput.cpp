// Trace-store throughput + density: write/read MB/s and bytes/sample of the
// binary trace format (store/trace_file.hpp), format v1 vs v2, with and
// without the per-block codec, against CSV export.
//
// Not a paper figure: it characterizes the store subsystem this repo adds
// on top of the paper's per-run CSV workflow.  The numbers that matter at
// many-concurrent-sessions scale are (a) how fast a session can persist
// its trace, (b) how fast nmo-trace can stream it back (and, for v2, decode
// it block-parallel off the index), and (c) how dense the cold-archival
// bytes are - ROADMAP's "trace store compression" item: v1 plateaus at
// ~14 B/sample, v2's self-contained blocks + LZ codec must land strictly
// below that on both workload profiles.
//
// Two sample profiles bracket the workloads the paper sweeps:
//   stream  sequential strided accesses at a steady cadence (Fig. 4's
//           STREAM regions) - highly regular deltas, the codec's best case;
//   cfd     clustered irregular accesses with level/latency spread (the
//           CFD solver of Figs. 5-6) - short sequential runs broken by
//           jumps, the codec's adversarial-but-realistic case.
//
//   ./bench_fig13_store_throughput [samples] [trials] [--json [FILE]]
//
// Exit codes: 0 ok; 1 = deterministic failure (round-trip mismatch, or
// v2+codec not strictly below the 14 B/sample v1 plateau).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/trace.hpp"
#include "store/trace_file.hpp"

namespace {

namespace fs = std::filesystem;

constexpr double kV1PlateauBytesPerSample = 14.0;

/// Sequential strided sweeps (8 cores round-robin over private arrays) at a
/// near-constant sample cadence: the shape a STREAM triad leaves in SPE.
nmo::core::SampleTrace make_stream_trace(std::size_t samples) {
  nmo::core::SampleTrace trace;
  nmo::Rng rng(42, 13);
  std::uint64_t t = 1000;
  std::vector<nmo::Addr> cursor(8);
  for (std::size_t c = 0; c < cursor.size(); ++c) cursor[c] = 0x4000'0000 + c * 0x100'0000;
  for (std::size_t i = 0; i < samples; ++i) {
    nmo::core::TraceSample s;
    t += 120 + rng.uniform(8);  // steady sampling cadence, small jitter
    s.time_ns = t;
    s.core = static_cast<nmo::CoreId>(i % 8);
    cursor[s.core] += 64;  // one cache line per sample: constant stride
    s.vaddr = cursor[s.core];
    s.pc = 0x400000 + (i % 4) * 4;  // tight vectorized loop body
    s.op = (i % 4) == 3 ? nmo::MemOp::kStore : nmo::MemOp::kLoad;
    const bool dram = rng.uniform(16) == 0;
    s.level = dram ? nmo::MemLevel::kDRAM : nmo::MemLevel::kL1;
    s.latency = static_cast<std::uint16_t>(dram ? 330 : 4);
    s.region = static_cast<std::int32_t>(s.core % 3);  // a/b/c arrays
    trace.add(s);
  }
  trace.sort_canonical();
  return trace;
}

/// Clustered irregular accesses: short sequential runs inside a working-set
/// cluster, broken by jumps between clusters, with the level/latency spread
/// of a cache-straddling CFD solver.
nmo::core::SampleTrace make_cfd_trace(std::size_t samples) {
  nmo::core::SampleTrace trace;
  nmo::Rng rng(7, 5);
  std::uint64_t t = 1000;
  std::vector<nmo::Addr> cursor(8, 0x1000'0000);
  for (std::size_t i = 0; i < samples; ++i) {
    nmo::core::TraceSample s;
    t += 80 + rng.uniform(160);
    s.time_ns = t;
    s.core = static_cast<nmo::CoreId>(rng.uniform(8));
    if (rng.uniform(8) == 0) {
      // Jump to another mesh cluster.
      cursor[s.core] = 0x1000'0000 + rng.uniform(1 << 12) * 0x1'0000;
    } else {
      cursor[s.core] += 8 + 8 * rng.uniform(4);  // short run, mixed stride
    }
    s.vaddr = cursor[s.core];
    s.pc = 0x400000 + rng.uniform(64) * 4;
    s.op = rng.uniform(4) == 0 ? nmo::MemOp::kStore : nmo::MemOp::kLoad;
    const unsigned level = static_cast<unsigned>(rng.uniform(4));
    s.level = static_cast<nmo::MemLevel>(level);
    s.latency = static_cast<std::uint16_t>(level == 3 ? 280 + rng.uniform(100) : 4 + level * 9);
    s.region = rng.uniform(8) == 0 ? -1 : static_cast<std::int32_t>(rng.uniform(6));
    trace.add(s);
  }
  trace.sort_canonical();
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double mib(std::uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

struct FormatResult {
  std::string name;
  std::uint64_t bytes = 0;
  double bytes_per_sample = 0.0;
  double write_mbps = 0.0;
  double read_mbps = 0.0;
  double read_parallel_mbps = 0.0;  ///< 0 when the format cannot seek (v1).
  bool round_trip_ok = true;
};

FormatResult run_format(const char* name, const nmo::core::SampleTrace& trace,
                        const std::string& path, nmo::store::TraceWriter::Options options,
                        int trials) {
  FormatResult r;
  r.name = name;
  const std::string reference_md5 = trace.fingerprint();
  nmo::RunningStats write_s, read_s, par_s;
  for (int trial = 0; trial < trials; ++trial) {
    auto t0 = std::chrono::steady_clock::now();
    {
      nmo::store::TraceWriter writer(path, options);
      writer.write_all(trace);
      writer.close();
      r.round_trip_ok = r.round_trip_ok && writer.fingerprint() == reference_md5;
    }
    write_s.add(seconds_since(t0));
    r.bytes = fs::file_size(path);

    t0 = std::chrono::steady_clock::now();
    {
      nmo::store::TraceReader reader(path);
      const auto back = reader.read_all();
      r.round_trip_ok = r.round_trip_ok && reader.ok() && back.fingerprint() == reference_md5;
    }
    read_s.add(seconds_since(t0));

    if (options.version >= nmo::store::kTraceVersion2) {
      t0 = std::chrono::steady_clock::now();
      const auto back = nmo::store::read_all_parallel(path, 4);
      par_s.add(seconds_since(t0));
      r.round_trip_ok =
          r.round_trip_ok && back.has_value() && back->fingerprint() == reference_md5;
    }
  }
  r.bytes_per_sample = static_cast<double>(r.bytes) / static_cast<double>(trace.size());
  r.write_mbps = mib(r.bytes) / write_s.mean();
  r.read_mbps = mib(r.bytes) / read_s.mean();
  if (options.version >= nmo::store::kTraceVersion2) {
    r.read_parallel_mbps = mib(r.bytes) / par_s.mean();
  }
  return r;
}

void print_format(const FormatResult& r) {
  char bps[32], w[32], rd[32], par[32];
  std::snprintf(bps, sizeof(bps), "%.2f", r.bytes_per_sample);
  std::snprintf(w, sizeof(w), "%.1f", r.write_mbps);
  std::snprintf(rd, sizeof(rd), "%.1f", r.read_mbps);
  if (r.read_parallel_mbps > 0) {
    std::snprintf(par, sizeof(par), "%.1f", r.read_parallel_mbps);
  } else {
    std::snprintf(par, sizeof(par), "-");
  }
  nmo::bench::print_row({r.name, bps, w, rd, par, r.round_trip_ok ? "ok" : "MISMATCH"}, 14);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t samples = 1 << 20;
  int trials = 3;
  std::string json_path;
  bool want_json = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (!positional.empty()) samples = std::strtoull(positional[0].c_str(), nullptr, 10);
  if (positional.size() > 1) trials = std::atoi(positional[1].c_str());
  if (samples == 0 || trials <= 0 || positional.size() > 2) {
    std::fprintf(stderr, "usage: %s [samples > 0] [trials > 0] [--json [FILE]]\n", argv[0]);
    return 2;
  }
  if (want_json && json_path.empty()) json_path = "BENCH_store_v2.json";

  nmo::bench::banner("fig13", "trace store: format v1 vs v2 (+codec), bytes/sample + MB/s");
  std::printf("%zu samples/profile, %d trials\n", samples, trials);

  const fs::path dir = fs::temp_directory_path() / "nmo_fig13_store";
  fs::create_directories(dir);

  struct Profile {
    const char* name;
    nmo::core::SampleTrace trace;
  };
  std::vector<Profile> profiles;
  profiles.push_back({"stream", make_stream_trace(samples)});
  profiles.push_back({"cfd", make_cfd_trace(samples)});

  using Options = nmo::store::TraceWriter::Options;
  struct Format {
    const char* name;
    Options options;
  };
  const std::vector<Format> formats = {
      {"v1", Options{nmo::store::kTraceVersion1, false}},
      {"v2-raw", Options{nmo::store::kTraceVersion2, false}},
      {"v2-lz", Options{nmo::store::kTraceVersion2, true}},
  };

  bool all_ok = true;
  bool gate_ok = true;
  nmo::bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("fig13_store_throughput");
  json.key("samples").value(static_cast<std::uint64_t>(samples));
  json.key("trials").value(trials);
  json.key("plateau_bytes_per_sample").value(kV1PlateauBytesPerSample);
  json.key("profiles").begin_array();

  for (const auto& profile : profiles) {
    // CSV baseline: the paper's post-processing input format.
    const std::string csv_path = (dir / (std::string(profile.name) + ".csv")).string();
    {
      std::ofstream out(csv_path);
      profile.trace.write_csv(out);
    }
    const auto csv_bytes = static_cast<std::uint64_t>(fs::file_size(csv_path));

    std::printf("\n-- profile %s (csv %.1f MiB, %.1f B/sample) --\n", profile.name,
                mib(csv_bytes),
                static_cast<double>(csv_bytes) / static_cast<double>(profile.trace.size()));
    nmo::bench::print_row({"format", "B/sample", "write MB/s", "read MB/s", "par4 MB/s", "check"},
                          14);

    json.begin_object();
    json.key("profile").value(profile.name);
    json.key("csv_bytes").value(csv_bytes);
    json.key("formats").begin_array();
    double v2lz_bps = 0.0;
    for (const auto& format : formats) {
      const std::string path =
          (dir / (std::string(profile.name) + "_" + format.name + ".nmot")).string();
      const FormatResult r = run_format(format.name, profile.trace, path, format.options, trials);
      print_format(r);
      all_ok = all_ok && r.round_trip_ok;
      if (std::strcmp(format.name, "v2-lz") == 0) v2lz_bps = r.bytes_per_sample;
      json.begin_object();
      json.key("format").value(r.name);
      json.key("bytes").value(r.bytes);
      json.key("bytes_per_sample").value(r.bytes_per_sample);
      json.key("write_mbps").value(r.write_mbps);
      json.key("read_mbps").value(r.read_mbps);
      json.key("read_parallel4_mbps").value(r.read_parallel_mbps);
      json.key("round_trip_ok").value(r.round_trip_ok);
      json.end_object();
    }
    json.end_array();
    json.key("v2_lz_below_plateau").value(v2lz_bps < kV1PlateauBytesPerSample);
    json.end_object();
    if (v2lz_bps >= kV1PlateauBytesPerSample) {
      std::printf("GATE: v2-lz %.2f B/sample is not below the %.1f B/sample v1 plateau\n",
                  v2lz_bps, kV1PlateauBytesPerSample);
      gate_ok = false;
    }
  }
  json.end_array();
  json.key("round_trips_ok").value(all_ok);
  json.key("gate_ok").value(gate_ok);
  json.end_object();
  if (want_json && !json.write_file(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  std::printf("\nround-trip fingerprints: %s\n", all_ok ? "all match" : "MISMATCH");
  std::printf("compression gate (v2-lz < %.1f B/sample on every profile): %s\n",
              kV1PlateauBytesPerSample, gate_ok ? "pass" : "FAIL");

  fs::remove_all(dir);
  return all_ok && gate_ok ? 0 : 1;
}
