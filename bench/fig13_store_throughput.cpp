// Trace-store throughput: write/read/merge MB/s and samples/sec of the
// binary trace format (store/trace_file.hpp) against CSV export.
//
// Not a paper figure: it characterizes the store subsystem this repo adds
// on top of the paper's per-run CSV workflow.  The numbers that matter at
// many-concurrent-sessions scale are (a) how fast a session can persist
// its trace, (b) how fast nmo-trace can stream it back, and (c) how fast
// the k-way merger folds N session files into the canonical trace.
//
//   ./bench_fig13_store_throughput [samples] [trials] [shards]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/trace.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"

namespace {

namespace fs = std::filesystem;

/// A plausible canonical trace: monotone timestamps, clustered addresses.
nmo::core::SampleTrace make_trace(std::size_t samples) {
  nmo::core::SampleTrace trace;
  nmo::Rng rng(42, 13);
  std::uint64_t t = 1000;
  for (std::size_t i = 0; i < samples; ++i) {
    nmo::core::TraceSample s;
    t += 1 + rng.uniform(200);
    s.time_ns = t;
    s.core = static_cast<nmo::CoreId>(rng.uniform(8));
    s.vaddr = 0x4000'0000 + s.core * 0x100'0000 + rng.uniform(1 << 20) * 8;
    s.pc = 0x400000 + rng.uniform(0x10000);
    s.op = rng.uniform(4) == 0 ? nmo::MemOp::kStore : nmo::MemOp::kLoad;
    const unsigned level = static_cast<unsigned>(rng.uniform(4));
    s.level = static_cast<nmo::MemLevel>(level);
    s.latency = static_cast<std::uint16_t>(level == 3 ? 330 : 4 + level * 9);
    s.region = rng.uniform(8) == 0 ? -1 : static_cast<std::int32_t>(rng.uniform(4));
    trace.add(s);
  }
  trace.sort_canonical();
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double mib(std::uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

void report(const char* name, const nmo::RunningStats& seconds, std::uint64_t bytes,
            std::size_t samples) {
  char rate[64], through[64];
  std::snprintf(rate, sizeof(rate), "%.1f MB/s", mib(bytes) / seconds.mean());
  std::snprintf(through, sizeof(through), "%.3g samples/s",
                static_cast<double>(samples) / seconds.mean());
  nmo::bench::print_row({name, rate, through}, 20);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t samples = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1 << 20;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::size_t shards = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  if (samples == 0 || trials <= 0 || shards == 0) {
    std::fprintf(stderr, "usage: %s [samples > 0] [trials > 0] [shards > 0]\n", argv[0]);
    return 2;
  }

  nmo::bench::banner("fig13", "trace store: binary write/read/merge vs CSV export");
  std::printf("%zu samples, %d trials, %zu merge shards\n\n", samples, trials, shards);

  const fs::path dir = fs::temp_directory_path() / "nmo_fig13_store";
  fs::create_directories(dir);
  const std::string bin_path = (dir / "trace.nmot").string();
  const std::string csv_path = (dir / "trace.csv").string();

  const nmo::core::SampleTrace trace = make_trace(samples);
  const std::string reference_md5 = trace.fingerprint();

  nmo::RunningStats write_s, read_s, merge_s, csv_s;
  std::uint64_t bin_bytes = 0, csv_bytes = 0;
  bool round_trip_ok = true;

  for (int trial = 0; trial < trials; ++trial) {
    // Binary write.
    auto t0 = std::chrono::steady_clock::now();
    {
      nmo::store::TraceWriter writer(bin_path);
      writer.write_all(trace);
      writer.close();
      round_trip_ok = round_trip_ok && writer.fingerprint() == reference_md5;
    }
    write_s.add(seconds_since(t0));
    bin_bytes = fs::file_size(bin_path);

    // Binary read (streaming decode of every sample).
    t0 = std::chrono::steady_clock::now();
    {
      nmo::store::TraceReader reader(bin_path);
      const auto back = reader.read_all();
      round_trip_ok = round_trip_ok && reader.ok() && back.fingerprint() == reference_md5;
    }
    read_s.add(seconds_since(t0));

    // CSV export (the paper's post-processing input format).
    t0 = std::chrono::steady_clock::now();
    {
      std::ofstream out(csv_path);
      trace.write_csv(out);
    }
    csv_s.add(seconds_since(t0));
    csv_bytes = fs::file_size(csv_path);
  }

  // k-way merge: split the canonical trace round-robin into sorted shards.
  std::vector<std::string> shard_paths;
  {
    std::vector<std::unique_ptr<nmo::store::TraceWriter>> writers;
    for (std::size_t i = 0; i < shards; ++i) {
      shard_paths.push_back((dir / ("shard" + std::to_string(i) + ".nmot")).string());
      writers.push_back(std::make_unique<nmo::store::TraceWriter>(shard_paths.back()));
    }
    std::size_t i = 0;
    for (const auto& s : trace.samples()) writers[i++ % shards]->add(s);
    for (auto& w : writers) w->close();
  }
  const std::string merged_path = (dir / "merged.nmot").string();
  for (int trial = 0; trial < trials; ++trial) {
    nmo::store::TraceMerger merger;
    for (const auto& p : shard_paths) merger.add_input(p);
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats = merger.merge_to(merged_path);
    merge_s.add(seconds_since(t0));
    round_trip_ok = round_trip_ok && stats && stats->fingerprint == reference_md5;
  }

  nmo::bench::print_row({"path", "throughput", "samples/sec"}, 20);
  report("binary write", write_s, bin_bytes, samples);
  report("binary read", read_s, bin_bytes, samples);
  report("k-way merge", merge_s, bin_bytes, samples);
  report("csv export", csv_s, csv_bytes, samples);
  std::printf("\nbinary size %.1f MiB vs CSV %.1f MiB (%.0f%% of CSV, %.1f B/sample)\n",
              mib(bin_bytes), mib(csv_bytes),
              100.0 * static_cast<double>(bin_bytes) / static_cast<double>(csv_bytes),
              static_cast<double>(bin_bytes) / static_cast<double>(samples));
  std::printf("round-trip fingerprints: %s\n", round_trip_ok ? "all match" : "MISMATCH");

  fs::remove_all(dir);
  return round_trip_ok ? 0 : 1;
}
