// Topology-aware placement: remote-drain reduction in the socket model,
// scheduler home-node placement, and an advisory wall-clock leg on real
// multi-node hosts.
//
// Not a paper figure: it gates the PR's placement contract.  Three legs:
//
//   sim        a 2-socket machine model profiled under every placement
//              policy must emit byte-identical traces (MD5), while the
//              modeled remote-drain cost drops from the unpinned
//              expectation to zero under kNearProducer with one shard
//              per core.  Deterministic: gates the build.
//   sched      home-node submissions against a synthetic 2-node topology
//              must admit with zero misses when a matching worker
//              exists, and must all complete (billed as misses, never
//              starved) when none can match.  Deterministic: gates.
//   host       pinned-vs-unpinned wall clock of a real profile on the
//              discovered host topology.  Advisory: skipped on
//              single-node hosts, never gates the build.
//
//   ./bench_fig18_topology [--json FILE]
//
// Exit 0: all gates pass (host leg advisory-ok or skipped).  Exit 1: a
// deterministic gate failed.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "spe/decode_pool.hpp"
#include "store/scheduler.hpp"
#include "sys/topology.hpp"
#include "workloads/stream.hpp"

namespace {

using nmo::spe::PlacementPolicy;
using nmo::store::Scheduler;
using nmo::store::SchedulerConfig;
using nmo::store::SubmitOptions;
using nmo::store::TaskStatus;
using nmo::sys::CpuTopology;

struct SimRun {
  std::string fingerprint;
  nmo::core::SessionReport report;
};

/// One deterministic profile on a modeled 2-socket, 8-core machine.
SimRun run_sim(PlacementPolicy policy) {
  nmo::core::NmoConfig config;
  config.enable = true;
  config.mode = nmo::core::Mode::kAll;
  config.period = 512;

  nmo::sim::EngineConfig engine;
  engine.threads = 8;
  engine.machine.hierarchy.cores = 8;
  engine.machine.sockets = 2;
  // One decode shard per core: kNearProducer homes every shard on its
  // producer's socket, so the placed run drains fully node-local.
  engine.decode_shards = 8;
  engine.decode_placement = policy;
  engine.seed = 7;

  nmo::wl::StreamConfig scfg;
  scfg.array_elems = 1 << 15;
  scfg.iterations = 2;
  nmo::wl::Stream stream(scfg);

  nmo::core::ProfileSession session(config, engine);
  SimRun run;
  run.report = session.profile(stream, /*with_baseline=*/false);
  run.fingerprint = session.profiler().trace().fingerprint();
  return run;
}

struct SimLeg {
  SimRun none, pack, near;
  bool traces_identical = false;
  bool remote_reduced = false;
  bool pass = false;
};

SimLeg run_sim_leg() {
  SimLeg leg;
  leg.none = run_sim(PlacementPolicy::kNone);
  leg.pack = run_sim(PlacementPolicy::kPackShards);
  leg.near = run_sim(PlacementPolicy::kNearProducer);

  // The acceptance invariant: placement never changes the trace.
  leg.traces_identical = !leg.none.fingerprint.empty() &&
                         leg.none.fingerprint == leg.pack.fingerprint &&
                         leg.none.fingerprint == leg.near.fingerprint;
  // The perf story: the unpinned expectation bills half the drained bytes
  // cross-socket; one-shard-per-core near-producer placement bills none.
  leg.remote_reduced = leg.none.report.remote_drain_bytes > 0 &&
                       leg.near.report.remote_drain_bytes == 0 &&
                       leg.near.report.remote_drain_cycles <
                           leg.none.report.remote_drain_cycles;
  leg.pass = leg.traces_identical && leg.remote_reduced &&
             leg.none.report.placement_nodes == 2;
  return leg;
}

struct SchedLeg {
  std::uint64_t matched_local = 0;
  std::uint64_t matched_misses = 0;
  std::uint64_t starved_completed = 0;
  std::uint64_t starved_misses = 0;
  bool pass = false;
};

SchedLeg run_sched_leg() {
  SchedLeg leg;
  constexpr int kTasks = 8;

  {
    // Matching workers exist: every home-node task lands on its node.
    SchedulerConfig config;
    config.max_workers = 2;
    config.topology = CpuTopology::synthetic(2, 4);
    config.placement_wait_ns = 10'000'000'000ull;
    Scheduler scheduler(config);
    std::atomic<int> ran{0};
    for (int i = 0; i < kTasks; ++i) {
      SubmitOptions options;
      options.home_node = static_cast<std::uint32_t>(i % 2);
      scheduler.submit([&ran](const TaskStatus&) { ++ran; }, options);
    }
    scheduler.wait_idle();
    const auto stats = scheduler.stats();
    leg.matched_local = stats.placement_local;
    leg.matched_misses = stats.placement_misses;
  }
  {
    // No worker can ever match (one worker on node 0, homes on node 1):
    // the bounded wait must fall back - everything completes as a miss.
    SchedulerConfig config;
    config.max_workers = 1;
    config.topology = CpuTopology::synthetic(2, 2);
    config.placement_wait_ns = 1'000'000;  // 1 ms
    Scheduler scheduler(config);
    std::atomic<std::uint64_t> ran{0};
    for (int i = 0; i < kTasks / 2; ++i) {
      SubmitOptions options;
      options.home_node = 1;
      scheduler.submit([&ran](const TaskStatus&) { ++ran; }, options);
    }
    scheduler.wait_idle();
    const auto stats = scheduler.stats();
    leg.starved_completed = ran.load();
    leg.starved_misses = stats.placement_misses;
  }

  leg.pass = leg.matched_local == kTasks && leg.matched_misses == 0 &&
             leg.starved_completed == kTasks / 2 &&
             leg.starved_misses == kTasks / 2;
  return leg;
}

struct HostLeg {
  bool ran = false;  ///< False: single-node host, leg skipped.
  std::uint32_t nodes = 0;
  double unpinned_ms = 0.0;
  double pinned_ms = 0.0;
  bool traces_identical = false;
};

/// Advisory: real-host wall clock, pinned vs unpinned decode shards.
HostLeg run_host_leg() {
  HostLeg leg;
  const auto topology = CpuTopology::discover();
  leg.nodes = topology.num_nodes();
  if (!topology.multi_node()) return leg;  // 1-node host: nothing to place
  leg.ran = true;

  const auto timed = [&](PlacementPolicy policy) {
    nmo::core::NmoConfig config;
    config.enable = true;
    config.mode = nmo::core::Mode::kAll;
    config.period = 512;
    nmo::sim::EngineConfig engine;
    engine.threads = 8;
    engine.machine.hierarchy.cores = 8;
    engine.decode_shards = 4;
    engine.decode_placement = policy;
    engine.topology = topology;
    nmo::wl::StreamConfig scfg;
    scfg.array_elems = 1 << 16;
    scfg.iterations = 4;
    nmo::wl::Stream stream(scfg);
    nmo::core::ProfileSession session(config, engine);
    const auto t0 = std::chrono::steady_clock::now();
    session.profile(stream, /*with_baseline=*/false);
    const auto t1 = std::chrono::steady_clock::now();
    return std::pair{std::chrono::duration<double, std::milli>(t1 - t0).count(),
                     session.profiler().trace().fingerprint()};
  };

  const auto [unpinned_ms, unpinned_md5] = timed(PlacementPolicy::kNone);
  const auto [pinned_ms, pinned_md5] = timed(PlacementPolicy::kNearProducer);
  leg.unpinned_ms = unpinned_ms;
  leg.pinned_ms = pinned_ms;
  leg.traces_identical = unpinned_md5 == pinned_md5;
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  nmo::bench::banner("topology",
                     "topology-aware placement: remote drain, home nodes, host pinning");

  const auto sim = run_sim_leg();
  const auto sched = run_sched_leg();
  const auto host = run_host_leg();

  std::printf("sim: md5 %s across none/pack/near-producer (gate: %s)\n",
              sim.traces_identical ? "identical" : "DIVERGED",
              sim.pass ? "ok" : "FAIL");
  std::printf("  remote drain  none: %llu bytes / %llu cycles\n",
              static_cast<unsigned long long>(sim.none.report.remote_drain_bytes),
              static_cast<unsigned long long>(sim.none.report.remote_drain_cycles));
  std::printf("  remote drain  near: %llu bytes / %llu cycles\n",
              static_cast<unsigned long long>(sim.near.report.remote_drain_bytes),
              static_cast<unsigned long long>(sim.near.report.remote_drain_cycles));
  std::printf("sched: matched %llu local / %llu misses; unmatched %llu ran as %llu misses (gate: %s)\n",
              static_cast<unsigned long long>(sched.matched_local),
              static_cast<unsigned long long>(sched.matched_misses),
              static_cast<unsigned long long>(sched.starved_completed),
              static_cast<unsigned long long>(sched.starved_misses),
              sched.pass ? "ok" : "FAIL");
  if (host.ran) {
    std::printf("host: %u nodes, unpinned %.2f ms vs pinned %.2f ms, traces %s (advisory)\n",
                host.nodes, host.unpinned_ms, host.pinned_ms,
                host.traces_identical ? "identical" : "DIVERGED");
  } else {
    std::printf("host: %u node(s) - wall-clock leg skipped (advisory)\n", host.nodes);
  }

  const bool pass = sim.pass && sched.pass;

  if (!json_path.empty()) {
    nmo::bench::JsonWriter json;
    json.begin_object();
    json.key("sim").begin_object();
    json.key("fingerprint").value(sim.none.fingerprint);
    json.key("traces_identical").value(sim.traces_identical);
    json.key("placement_nodes").value(sim.none.report.placement_nodes);
    json.key("remote_drain_bytes_none").value(sim.none.report.remote_drain_bytes);
    json.key("remote_drain_bytes_pack").value(sim.pack.report.remote_drain_bytes);
    json.key("remote_drain_bytes_near").value(sim.near.report.remote_drain_bytes);
    json.key("remote_drain_cycles_none").value(sim.none.report.remote_drain_cycles);
    json.key("remote_drain_cycles_near").value(sim.near.report.remote_drain_cycles);
    json.key("pass").value(sim.pass);
    json.end_object();
    json.key("sched").begin_object();
    json.key("matched_local").value(sched.matched_local);
    json.key("matched_misses").value(sched.matched_misses);
    json.key("starved_completed").value(sched.starved_completed);
    json.key("starved_misses").value(sched.starved_misses);
    json.key("pass").value(sched.pass);
    json.end_object();
    json.key("host").begin_object();
    json.key("ran").value(host.ran);
    json.key("nodes").value(host.nodes);
    json.key("unpinned_ms").value(host.unpinned_ms);
    json.key("pinned_ms").value(host.pinned_ms);
    json.key("traces_identical").value(host.traces_identical);
    json.end_object();
    json.key("pass").value(pass);
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json -> %s\n", json_path.c_str());
  }

  std::printf("\ntopology gates: %s\n", pass ? "ALL PASS" : "FAILED");
  return pass ? 0 : 1;
}
