// Figure 10: time overhead and accuracy of NMO on STREAM at increasing
// OpenMP thread counts (same setup as Figure 9, aux buffer fixed at 16
// pages).
//
// Paper findings to reproduce in shape:
//  * overhead gradually increases with threads, ~0.86% at 128 threads;
//  * accuracy stays in the 89-93% band: it rises towards a peak around 32
//    threads (more threads = more aggregate buffering for the same total
//    sample volume) and droops at high thread counts where sampling
//    throttling kicks in.
#include <cinttypes>
#include <cstdio>

#include "analysis/accuracy.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"

namespace {

constexpr int kTrials = 5;
constexpr std::uint32_t kThreads[] = {1, 2, 4, 8, 16, 32, 48, 64, 96, 128};
constexpr std::uint64_t kPeriod = 4096;

}  // namespace

int main() {
  nmo::bench::banner("Figure 10", "thread count vs time overhead and accuracy (STREAM)");
  auto profile = nmo::sim::profiles::stream();
  profile.scale_ops(4.0);  // paper-scale run length: total sample bytes rival total buffering
  nmo::bench::print_row({"threads", "accuracy", "overhead", "throttle_ev", "dropped"}, 15);
  for (const auto threads : kThreads) {
    nmo::RunningStats acc, ovh, throttle, dropped;
    for (int trial = 0; trial < kTrials; ++trial) {
      nmo::sim::SweepConfig cfg;
      cfg.threads = threads;
      cfg.period = kPeriod;
      cfg.ring_pages = 9;
      cfg.aux_bytes = 16 * nmo::kSimPageSize;
      cfg.seed = 4000 + static_cast<std::uint64_t>(trial);
      const auto r = nmo::sim::run_with_baseline(profile, nmo::sim::MachineConfig{}, cfg);
      acc.add(nmo::analysis::accuracy(r));
      ovh.add(nmo::analysis::time_overhead(r));
      throttle.add(static_cast<double>(r.throttle_events));
      dropped.add(static_cast<double>(r.dropped_full));
    }
    char t[24];
    std::snprintf(t, sizeof(t), "%u", threads);
    nmo::bench::print_row({t, nmo::bench::pct(acc.mean()), nmo::bench::pct(ovh.mean()),
                           nmo::bench::mean_std(throttle, "%.3g"),
                           nmo::bench::mean_std(dropped, "%.3g")},
                          15);
  }
  std::printf("(paper: accuracy 89-93%% peaking near 32 threads; overhead up to 0.86%%)\n");
  return 0;
}
