// Figure 15 (repo-local): predicate pushdown over the v2 block-index
// metadata - how many blocks selective queries skip without decompressing,
// and what that does to query latency versus a full decode.
//
// The synthetic trace is built to look like a phased HPC run (the shape
// the paper's region/phase analyses target): each 512-sample block phase
// owns a distinct time window and address band, regions rotate across
// phases, and DRAM traffic clusters in the final quarter of the run.  Every
// query below prunes on a different metadata dimension.
//
// Deterministic gates (exit 1 on violation, so CI can run this as a check):
//  * every selective query skips at least one block with pushdown active;
//  * every query's result is byte-for-byte identical (CSV) to filtering a
//    full in-memory decode with the same predicate.
//
//   ./bench_fig15_query_pushdown [phases > 4] [trials > 0] [--json [FILE]]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "store/trace_file.hpp"
#include "store/trace_query.hpp"

namespace fs = std::filesystem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double mib(std::uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

constexpr std::size_t kBlock = nmo::store::TraceWriter::kMaxBlockSamples;
constexpr std::uint64_t kPhaseNs = 1'000'000;

/// One block per phase; phase p owns time [p, p+1) ms and address band
/// 0x1000'0000 + p * 16 MiB, region p % 8 - 1, DRAM only in the last
/// quarter of phases.
nmo::core::SampleTrace phased_trace(std::size_t phases) {
  nmo::core::SampleTrace trace;
  for (std::size_t p = 0; p < phases; ++p) {
    const bool dram_phase = p >= phases - phases / 4;
    for (std::size_t i = 0; i < kBlock; ++i) {
      nmo::core::TraceSample s;
      s.time_ns = p * kPhaseNs + i * (kPhaseNs / kBlock);
      s.core = static_cast<nmo::CoreId>(i % 8);
      s.vaddr = 0x1000'0000ull + p * 0x100'0000ull + i * 64;
      s.pc = 0x400000 + (i % 64) * 4;
      s.op = i % 4 == 0 ? nmo::MemOp::kStore : nmo::MemOp::kLoad;
      s.level = dram_phase && i % 2 == 0 ? nmo::MemLevel::kDRAM
                                         : static_cast<nmo::MemLevel>(i % 3);
      s.latency = static_cast<std::uint16_t>(s.level == nmo::MemLevel::kDRAM ? 250 + i % 64
                                                                             : 4 + i % 16);
      s.region = static_cast<std::int32_t>(p % 8) - 1;
      trace.add(s);
    }
  }
  return trace;
}

std::string csv_of(const nmo::core::SampleTrace& t) {
  std::ostringstream out;
  t.write_csv(out);
  return out.str();
}

struct QueryCase {
  std::string name;
  nmo::store::TraceQuery query;
  nmo::store::QueryStats stats;
  double seconds = 0.0;
  double speedup = 0.0;
  bool parity_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t phases = 64;
  int trials = 3;
  std::string json_path;
  bool want_json = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (!positional.empty()) phases = std::strtoull(positional[0].c_str(), nullptr, 10);
  if (positional.size() > 1) trials = std::atoi(positional[1].c_str());
  if (phases <= 4 || trials <= 0 || positional.size() > 2) {
    std::fprintf(stderr, "usage: %s [phases > 4] [trials > 0] [--json [FILE]]\n", argv[0]);
    return 2;
  }
  if (want_json && json_path.empty()) json_path = "BENCH_query.json";

  nmo::bench::banner("fig15", "indexed queries: blocks skipped + latency vs full decode");

  const fs::path dir = fs::temp_directory_path() / "nmo_fig15_query";
  fs::create_directories(dir);
  const std::string path = (dir / "trace.nmot").string();
  const auto trace = phased_trace(phases);
  {
    nmo::store::TraceWriter writer(path);
    writer.write_all(trace);
    if (!writer.close()) {
      std::fprintf(stderr, "fixture write failed: %s\n", writer.error().c_str());
      return 1;
    }
  }
  const std::uint64_t file_bytes = fs::file_size(path);
  std::printf("%zu phases, %zu samples, %.1f MiB on disk, %d trials\n", phases, trace.size(),
              mib(file_bytes), trials);

  // The baseline every query is timed against: a full sequential decode.
  nmo::RunningStats full_s;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    nmo::store::TraceReader reader(path);
    const auto all = reader.read_all();
    full_s.add(seconds_since(t0));
    if (!reader.ok() || all.size() != trace.size()) {
      std::fprintf(stderr, "full decode failed: %s\n", reader.error().c_str());
      return 1;
    }
  }
  const double full_seconds = full_s.mean();

  const std::uint64_t t_lo = (phases / 2) * kPhaseNs;
  const std::uint64_t t_hi = (phases / 2 + phases / 10) * kPhaseNs - 1;  // ~10% window
  const nmo::Addr a_lo = 0x1000'0000ull + (phases / 4) * 0x100'0000ull;
  const nmo::Addr a_hi = a_lo + 2 * 0x100'0000ull - 1;  // two phases' bands

  std::vector<QueryCase> cases;
  cases.push_back(
      {"time_10pct", nmo::store::query(path).time_between(t_lo, t_hi), {}, 0, 0, false});
  cases.push_back({"region_3", nmo::store::query(path).region(3), {}, 0, 0, false});
  cases.push_back({"addr_band", nmo::store::query(path).address_in(a_lo, a_hi), {}, 0, 0, false});
  cases.push_back(
      {"dram_only", nmo::store::query(path).level(nmo::MemLevel::kDRAM), {}, 0, 0, false});
  cases.push_back({"region_1+time",
                   nmo::store::query(path).region(1).time_between(t_lo, t_hi * 2),
                   {},
                   0,
                   0,
                   false});

  bool gates_ok = true;
  nmo::bench::print_row({"query", "scanned", "skipped", "matched", "ms", "speedup", "parity"}, 12);
  for (auto& c : cases) {
    nmo::RunningStats q_s;
    nmo::store::TraceQuery::Result result;
    for (int t = 0; t < trials; ++t) {
      const auto t0 = std::chrono::steady_clock::now();
      result = c.query.run();
      q_s.add(seconds_since(t0));
      if (!result.ok) {
        std::fprintf(stderr, "%s: query failed: %s\n", c.name.c_str(), result.error.c_str());
        return 1;
      }
    }
    c.stats = result.stats;
    c.seconds = q_s.mean();
    c.speedup = c.seconds > 0 ? full_seconds / c.seconds : 0.0;

    // Gate 1: the pushdown must actually skip blocks on these selective
    // queries (every predicate above rules out whole phases).
    const bool skipped = result.stats.pushdown && result.stats.blocks_skipped > 0;
    // Gate 2: byte-for-byte parity with filtering a full decode.
    nmo::core::SampleTrace expected;
    for (const auto& s : trace.samples()) {
      if (c.query.matches(s)) expected.add(s);
    }
    c.parity_ok = csv_of(result.samples) == csv_of(expected);
    if (!skipped) {
      std::fprintf(stderr, "GATE: %s skipped no blocks (pushdown=%d)\n", c.name.c_str(),
                   result.stats.pushdown ? 1 : 0);
      gates_ok = false;
    }
    if (!c.parity_ok) {
      std::fprintf(stderr, "GATE: %s result differs from full-scan filter\n", c.name.c_str());
      gates_ok = false;
    }

    char scanned[24], skipped_c[24], matched[24], ms[24], speedup[24];
    std::snprintf(scanned, sizeof(scanned), "%llu",
                  static_cast<unsigned long long>(result.stats.blocks_scanned));
    std::snprintf(skipped_c, sizeof(skipped_c), "%llu",
                  static_cast<unsigned long long>(result.stats.blocks_skipped));
    std::snprintf(matched, sizeof(matched), "%llu",
                  static_cast<unsigned long long>(result.stats.samples_matched));
    std::snprintf(ms, sizeof(ms), "%.2f", c.seconds * 1e3);
    std::snprintf(speedup, sizeof(speedup), "%.1fx", c.speedup);
    nmo::bench::print_row(
        {c.name, scanned, skipped_c, matched, ms, speedup, c.parity_ok ? "ok" : "MISMATCH"}, 12);
  }
  std::printf("full decode: %.2f ms (%.1f MB/s); queries prune whole blocks via index metadata\n",
              full_seconds * 1e3, mib(file_bytes) / full_seconds);

  if (want_json) {
    nmo::bench::JsonWriter json;
    json.begin_object();
    json.key("bench").value("fig15_query_pushdown");
    json.key("phases").value(static_cast<std::uint64_t>(phases));
    json.key("samples").value(static_cast<std::uint64_t>(trace.size()));
    json.key("file_bytes").value(file_bytes);
    json.key("trials").value(trials);
    json.key("full_decode_seconds").value(full_seconds);
    json.key("full_decode_mbps").value(mib(file_bytes) / full_seconds);
    json.key("queries").begin_array();
    for (const auto& c : cases) {
      json.begin_object();
      json.key("name").value(c.name);
      json.key("blocks_total").value(static_cast<std::uint64_t>(c.stats.blocks_total));
      json.key("blocks_scanned").value(static_cast<std::uint64_t>(c.stats.blocks_scanned));
      json.key("blocks_skipped").value(static_cast<std::uint64_t>(c.stats.blocks_skipped));
      json.key("samples_scanned").value(c.stats.samples_scanned);
      json.key("samples_matched").value(c.stats.samples_matched);
      json.key("seconds").value(c.seconds);
      json.key("speedup_vs_full_decode").value(c.speedup);
      json.key("pushdown").value(c.stats.pushdown);
      json.key("parity_ok").value(c.parity_ok);
      json.end_object();
    }
    json.end_array();
    json.key("gates_ok").value(gates_ok);
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  fs::remove_all(dir);
  return gates_ok ? 0 : 1;
}
