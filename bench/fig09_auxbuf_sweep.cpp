// Figure 9: impact of the aux buffer size on time overhead and accuracy,
// STREAM triad with 32 threads (ring buffer fixed at 9 pages).
//
// Paper findings to reproduce in shape:
//  * below 4 pages SPE loses every sample (device cannot start): lowest
//    overhead, near-zero accuracy;
//  * overhead rises sharply from 2 to 8 pages, peaks around 8-32 pages,
//    and falls again beyond 32 pages (fewer interrupts);
//  * accuracy increases steadily with size, exceeding 99% at >= 64 pages;
//  * 16 pages is the sweet spot: ~93% accuracy at ~0.1% overhead.
#include <cinttypes>
#include <cstdio>

#include "analysis/accuracy.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"

namespace {

constexpr int kTrials = 5;
constexpr std::uint64_t kPages[] = {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048};
constexpr std::uint32_t kThreads = 32;
constexpr std::uint64_t kPeriod = 4096;

}  // namespace

int main() {
  nmo::bench::banner("Figure 9", "aux buffer size vs time overhead and accuracy (STREAM, 32T)");
  auto profile = nmo::sim::profiles::stream();
  profile.scale_ops(4.0);  // paper-scale run length: total sample bytes rival total buffering
  nmo::bench::print_row({"aux_pages", "aux_bytes", "accuracy", "overhead", "dropped", "wakeups"},
                        14);
  for (const auto pages : kPages) {
    nmo::RunningStats acc, ovh, dropped, wakeups;
    for (int trial = 0; trial < kTrials; ++trial) {
      nmo::sim::SweepConfig cfg;
      cfg.threads = kThreads;
      cfg.period = kPeriod;
      cfg.ring_pages = 9;
      cfg.aux_bytes = pages * nmo::kSimPageSize;
      cfg.seed = 3000 + static_cast<std::uint64_t>(trial);
      const auto r = nmo::sim::run_with_baseline(profile, nmo::sim::MachineConfig{}, cfg);
      acc.add(nmo::analysis::accuracy(r));
      ovh.add(nmo::analysis::time_overhead(r));
      dropped.add(static_cast<double>(r.dropped_full));
      wakeups.add(static_cast<double>(r.wakeups));
    }
    char p[24], b[24];
    std::snprintf(p, sizeof(p), "%" PRIu64, pages);
    std::snprintf(b, sizeof(b), "%s", nmo::format_size(pages * nmo::kSimPageSize).c_str());
    nmo::bench::print_row({p, b, nmo::bench::pct(acc.mean()), nmo::bench::pct(ovh.mean()),
                           nmo::bench::mean_std(dropped, "%.3g"),
                           nmo::bench::mean_std(wakeups, "%.3g")},
                          14);
  }
  std::printf("(paper: dead below 4 pages; overhead peak 8-32 pages; >99%% accuracy at >=64)\n");
  return 0;
}
