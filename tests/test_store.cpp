// The trace store: binary round-trip fidelity, streaming merge parity with
// sort_canonical, corruption rejection, and concurrent session isolation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "store/region_file.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"
#include "workloads/stream.hpp"

namespace nmo::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nmo_store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

/// A randomized trace covering every field's range, including the cases the
/// delta codec must not mangle: time going backwards between cores, region
/// -1, zero addresses, max latency.
core::SampleTrace random_trace(std::size_t n, std::uint64_t seed, bool canonical = true) {
  core::SampleTrace trace;
  Rng rng(seed, 5);
  std::uint64_t t = 50;
  for (std::size_t i = 0; i < n; ++i) {
    core::TraceSample s;
    t += rng.uniform(300);
    s.time_ns = t;
    s.core = static_cast<CoreId>(rng.uniform(16));
    s.vaddr = rng.uniform(64) == 0 ? 0 : 0x1000'0000 + rng.uniform(1 << 24);
    s.pc = 0x400000 + rng.uniform(1 << 16);
    s.op = rng.uniform(2) == 0 ? MemOp::kLoad : MemOp::kStore;
    s.level = static_cast<MemLevel>(rng.uniform(4));
    s.latency = static_cast<std::uint16_t>(rng.uniform(0x10000));
    s.region = static_cast<std::int32_t>(rng.uniform(5)) - 1;
    trace.add(s);
  }
  if (canonical) trace.sort_canonical();
  return trace;
}

std::string csv_of(const core::SampleTrace& t) {
  std::ostringstream out;
  t.write_csv(out);
  return out.str();
}

// ------------------------------------------------------------- round trip --

TEST_F(StoreTest, RoundTripPreservesCsvBytesAndMd5) {
  const auto trace = random_trace(5000, 1);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close()) << writer.error();
  EXPECT_EQ(writer.samples_written(), trace.size());
  EXPECT_EQ(writer.fingerprint(), trace.fingerprint());

  TraceReader reader(path("t.nmot"));
  const auto back = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(csv_of(back), csv_of(trace));
  EXPECT_EQ(back.fingerprint(), trace.fingerprint());
  EXPECT_EQ(reader.info().samples, trace.size());
  EXPECT_EQ(reader.info().fingerprint, trace.fingerprint());
  EXPECT_EQ(reader.info().version, kTraceVersion);
}

TEST_F(StoreTest, RoundTripPreservesArbitraryOrder) {
  // Not canonically sorted: the store must preserve add() order exactly.
  const auto trace = random_trace(2000, 2, /*canonical=*/false);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceReader reader(path("t.nmot"));
  const auto back = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(csv_of(back), csv_of(trace));
}

TEST_F(StoreTest, EmptyTraceRoundTrips) {
  core::SampleTrace empty;
  TraceWriter writer(path("e.nmot"));
  writer.write_all(empty);
  ASSERT_TRUE(writer.close());
  EXPECT_EQ(writer.fingerprint(), empty.fingerprint());

  TraceReader reader(path("e.nmot"));
  const auto back = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(reader.info().samples, 0u);
}

TEST_F(StoreTest, ProbeReadsFooterWithoutScanning) {
  const auto trace = random_trace(1000, 3);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  const auto info = TraceReader::probe(path("t.nmot"));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->samples, trace.size());
  EXPECT_EQ(info->fingerprint, trace.fingerprint());
}

TEST_F(StoreTest, BinaryIsSmallerThanCsv) {
  const auto trace = random_trace(10000, 4);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());
  EXPECT_LT(fs::file_size(path("t.nmot")), csv_of(trace).size());
}

// -------------------------------------------------------------- rejection --

TEST_F(StoreTest, ReaderRejectsBadMagic) {
  std::ofstream out(path("bad.nmot"), std::ios::binary);
  out << "this is not a trace file at all";
  out.close();

  TraceReader reader(path("bad.nmot"));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("magic"), std::string::npos);
  EXPECT_FALSE(TraceReader::probe(path("bad.nmot")).has_value());
}

TEST_F(StoreTest, ReaderRejectsMissingFile) {
  TraceReader reader(path("does_not_exist.nmot"));
  EXPECT_FALSE(reader.ok());
}

TEST_F(StoreTest, ReaderRejectsTruncatedFile) {
  const auto trace = random_trace(3000, 5);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  // Drop the last 10 bytes (footer destroyed).
  const auto size = fs::file_size(path("t.nmot"));
  fs::resize_file(path("t.nmot"), size - 10);

  TraceReader reader(path("t.nmot"));
  core::TraceSample s;
  while (reader.next(s)) {
  }
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(reader.read_all().empty());
}

TEST_F(StoreTest, ReaderRejectsCorruptedPayload) {
  const auto trace = random_trace(3000, 6);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  // Flip one byte in the middle of the sample stream: the footer MD5 (or
  // the block structure) must catch it.
  std::fstream f(path("t.nmot"), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(fs::file_size(path("t.nmot")) / 2));
  f.put('\x7f');
  f.close();

  TraceReader reader(path("t.nmot"));
  core::TraceSample s;
  while (reader.next(s)) {
  }
  EXPECT_FALSE(reader.ok());
}

TEST_F(StoreTest, ReaderRejectsUnsupportedVersion) {
  const auto trace = random_trace(10, 7);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  std::fstream f(path("t.nmot"), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(4);  // version field
  f.put('\x63');
  f.close();

  TraceReader reader(path("t.nmot"));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST_F(StoreTest, ReaderRejectsOutOfRangeCoreId) {
  // A crafted block header with an absurd core id must be rejected, not
  // drive the predictor table into a giant allocation or OOB access.
  std::ofstream out(path("bad.nmot"), std::ios::binary);
  const unsigned char header[] = {0x4e, 0x4d, 0x4f, 0x54, 0x01, 0x00, 0x00, 0x00};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.put(static_cast<char>(kBlockMarker));
  // varint core = 0xffffffff, count = 1.
  const unsigned char block[] = {0xff, 0xff, 0xff, 0xff, 0x0f, 0x01};
  out.write(reinterpret_cast<const char*>(block), sizeof(block));
  out.close();

  TraceReader reader(path("bad.nmot"));
  core::TraceSample s;
  EXPECT_FALSE(reader.next(s));
  EXPECT_FALSE(reader.ok());
}

TEST_F(StoreTest, WriterRejectsOutOfRangeCoreId) {
  TraceWriter writer(path("t.nmot"));
  core::TraceSample s;
  s.core = kMaxCores;
  writer.add(s);
  EXPECT_FALSE(writer.ok());
  // The sticky error withholds the footer: the partial file must not
  // validate as a complete trace.
  EXPECT_FALSE(writer.close());
  TraceReader reader(path("t.nmot"));
  core::TraceSample out;
  while (reader.next(out)) {
  }
  EXPECT_FALSE(reader.ok());
}

// ------------------------------------------------------------- format v2 --

TEST_F(StoreTest, WriterDefaultsToV2AndV1KnobStillWritesV1) {
  const auto trace = random_trace(3000, 21);
  TraceWriter v2(path("v2.nmot"));
  v2.write_all(trace);
  ASSERT_TRUE(v2.close());
  TraceWriter v1(path("v1.nmot"), TraceWriter::Options{kTraceVersion1, false});
  v1.write_all(trace);
  ASSERT_TRUE(v1.close());

  TraceReader r2(path("v2.nmot"));
  const auto back2 = r2.read_all();
  ASSERT_TRUE(r2.ok()) << r2.error();
  EXPECT_EQ(r2.info().version, kTraceVersion2);
  TraceReader r1(path("v1.nmot"));
  const auto back1 = r1.read_all();
  ASSERT_TRUE(r1.ok()) << r1.error();
  EXPECT_EQ(r1.info().version, kTraceVersion1);

  // Same samples, same CSV, same fingerprint - the format version is
  // invisible above the decode layer.
  EXPECT_EQ(csv_of(back1), csv_of(back2));
  EXPECT_EQ(back1.fingerprint(), trace.fingerprint());
  EXPECT_EQ(back2.fingerprint(), trace.fingerprint());
}

TEST_F(StoreTest, V2CompressionIsLosslessAndSmaller) {
  // A stride-regular trace (the codec's target shape): v2+lz must shrink
  // the file and still round-trip byte-exactly.
  core::SampleTrace trace;
  for (std::size_t i = 0; i < 20000; ++i) {
    core::TraceSample s;
    s.time_ns = 1000 + 120 * i;
    s.core = static_cast<CoreId>(i % 8);
    s.vaddr = 0x40000000 + 64 * i;
    s.pc = 0x400000 + 4 * (i % 4);
    s.latency = 10;
    s.region = static_cast<std::int32_t>(i % 3);
    trace.add(s);
  }
  TraceWriter raw(path("raw.nmot"), TraceWriter::Options{kTraceVersion2, false});
  raw.write_all(trace);
  ASSERT_TRUE(raw.close());
  TraceWriter lz(path("lz.nmot"), TraceWriter::Options{kTraceVersion2, true});
  lz.write_all(trace);
  ASSERT_TRUE(lz.close());

  EXPECT_LT(fs::file_size(path("lz.nmot")), fs::file_size(path("raw.nmot")));
  TraceReader reader(path("lz.nmot"));
  const auto back = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(csv_of(back), csv_of(trace));
  EXPECT_EQ(back.fingerprint(), trace.fingerprint());
}

TEST_F(StoreTest, V1ToV2RewriteIsLossless) {
  // The `nmo-trace compress` path at the library level: stream a v1 file
  // into a v2 writer; CSV and fingerprint must be byte-identical, in both
  // codec modes.
  const auto trace = random_trace(5000, 22);
  TraceWriter v1(path("v1.nmot"), TraceWriter::Options{kTraceVersion1, false});
  v1.write_all(trace);
  ASSERT_TRUE(v1.close());

  for (const bool compress : {false, true}) {
    const std::string out = path(compress ? "v2lz.nmot" : "v2raw.nmot");
    TraceReader reader(path("v1.nmot"));
    TraceWriter writer(out, TraceWriter::Options{kTraceVersion2, compress});
    core::TraceSample s;
    while (reader.next(s)) writer.add(s);
    ASSERT_TRUE(reader.ok()) << reader.error();
    ASSERT_TRUE(writer.close()) << writer.error();
    EXPECT_EQ(writer.fingerprint(), reader.info().fingerprint);

    TraceReader back(out);
    const auto rewritten = back.read_all();
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(csv_of(rewritten), csv_of(trace));
    EXPECT_EQ(rewritten.fingerprint(), trace.fingerprint());
  }
}

TEST_F(StoreTest, LoadIndexAndSeekBlockDecodeEveryBlockIndependently) {
  const auto trace = random_trace(2000, 23);  // 16 cores -> several v2 blocks
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceReader indexed(path("t.nmot"));
  ASSERT_TRUE(indexed.load_index()) << indexed.error();
  const auto index = indexed.block_index();
  ASSERT_GT(index.size(), 1u);
  EXPECT_EQ(indexed.info().samples, trace.size());
  EXPECT_EQ(indexed.info().fingerprint, trace.fingerprint());
  std::uint64_t total = 0;
  for (const auto& entry : index) total += entry.samples;
  EXPECT_EQ(total, trace.size());

  // Decode each block via its own seek (out of file order on purpose) and
  // reassemble: must equal the streaming read sample for sample.
  std::vector<core::TraceSample> reassembled(trace.size());
  std::vector<std::uint64_t> starts(index.size(), 0);
  for (std::size_t b = 1; b < index.size(); ++b) {
    starts[b] = starts[b - 1] + index[b - 1].samples;
  }
  for (std::size_t step = 0; step < index.size(); ++step) {
    const std::size_t b = index.size() - 1 - step;  // reverse order
    TraceReader reader(path("t.nmot"));
    ASSERT_TRUE(reader.seek_block(b)) << reader.error();
    core::TraceSample s;
    for (std::uint32_t i = 0; i < index[b].samples; ++i) {
      ASSERT_TRUE(reader.next(s)) << reader.error();
      reassembled[starts[b] + i] = s;
    }
  }
  core::SampleTrace rebuilt;
  for (const auto& s : reassembled) rebuilt.add(s);
  EXPECT_EQ(csv_of(rebuilt), csv_of(trace));
  EXPECT_EQ(rebuilt.fingerprint(), trace.fingerprint());

  // A reader that seeks and then runs off the end of the file still
  // validates the footer structurally (no count/digest: it saw a suffix).
  TraceReader tail(path("t.nmot"));
  ASSERT_TRUE(tail.seek_block(index.size() - 1));
  core::TraceSample s;
  std::uint32_t seen = 0;
  while (tail.next(s)) ++seen;
  EXPECT_TRUE(tail.ok()) << tail.error();
  EXPECT_EQ(seen, index.back().samples);
}

TEST_F(StoreTest, SeekBlockIsRefusedOnV1Traces) {
  const auto trace = random_trace(500, 24);
  TraceWriter writer(path("v1.nmot"), TraceWriter::Options{kTraceVersion1, false});
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceReader reader(path("v1.nmot"));
  EXPECT_FALSE(reader.load_index());
  EXPECT_FALSE(reader.seek_block(0));
  // Refusal is not an error: the reader still streams the file fine.
  ASSERT_TRUE(reader.ok()) << reader.error();
  const auto back = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(back.fingerprint(), trace.fingerprint());
}

TEST_F(StoreTest, ReadAllParallelMatchesStreamingRead) {
  const auto trace = random_trace(6000, 25);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  for (const unsigned threads : {1u, 3u, 4u, 16u}) {
    std::string error;
    const auto back = read_all_parallel(path("t.nmot"), threads, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(csv_of(*back), csv_of(trace));
    EXPECT_EQ(back->fingerprint(), trace.fingerprint());
  }
  // v1 falls back to the streaming path instead of failing.
  TraceWriter v1(path("v1.nmot"), TraceWriter::Options{kTraceVersion1, false});
  v1.write_all(trace);
  ASSERT_TRUE(v1.close());
  std::string error;
  const auto back = read_all_parallel(path("v1.nmot"), 4, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->fingerprint(), trace.fingerprint());
}

TEST_F(StoreTest, CheckedInV1FixtureStaysReadable) {
  // The compat oracle: this fixture was written by the v1 writer and is
  // checked into the repo, so any change that breaks byte-for-byte v1
  // reading fails here - no matter what the current writer emits.
  const std::string fixture = std::string(NMO_TEST_DATA_DIR) + "/fixture_v1.nmot";
  TraceReader reader(fixture);
  const auto trace = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.info().version, kTraceVersion1);
  EXPECT_EQ(trace.size(), 512u);
  // Pinned at fixture-generation time: decoding to any other fingerprint
  // means the v1 decode path changed meaning, not just shape.
  EXPECT_EQ(trace.fingerprint(), "23055a459f9b4cc87cb98dea5d84bb11");
  EXPECT_EQ(trace.fingerprint(), reader.info().fingerprint);
  const auto probed = TraceReader::probe(fixture);
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(probed->fingerprint, reader.info().fingerprint);
}

// ------------------------------------------------------------------ merge --

TEST_F(StoreTest, MergeOfRandomShardsEqualsSortCanonicalOfConcatenation) {
  // Reference: sort_canonical over all samples in memory.
  auto all = random_trace(8000, 8, /*canonical=*/false);
  core::SampleTrace reference;
  reference.append(all);
  reference.sort_canonical();

  // Shards: randomly assign each *canonically sorted* sample to one of 5
  // files; each shard is then itself sorted (a subsequence of sorted data).
  constexpr std::size_t kShards = 5;
  all.sort_canonical();
  std::mt19937 rng(99);
  std::vector<std::unique_ptr<TraceWriter>> writers;
  TraceMerger merger;
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::string p = path("shard" + std::to_string(i) + ".nmot");
    writers.push_back(std::make_unique<TraceWriter>(p));
    merger.add_input(p);
  }
  for (const auto& s : all.samples()) {
    writers[rng() % kShards]->add(s);
  }
  for (auto& w : writers) ASSERT_TRUE(w->close());

  const auto stats = merger.merge_to(path("merged.nmot"));
  ASSERT_TRUE(stats.has_value()) << merger.error();
  EXPECT_EQ(stats->samples, reference.size());
  EXPECT_EQ(stats->inputs, kShards);
  EXPECT_EQ(stats->fingerprint, reference.fingerprint());

  TraceReader reader(path("merged.nmot"));
  const auto merged = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(csv_of(merged), csv_of(reference));
  EXPECT_EQ(merged.fingerprint(), reference.fingerprint());
}

TEST_F(StoreTest, MergeOutputVersionDoesNotChangeTheFingerprint) {
  // Acceptance oracle of ISSUE 5: merged v2 outputs match the v1 merge
  // fingerprint, over mixed-version inputs.
  auto all = random_trace(4000, 20);
  constexpr std::size_t kShards = 4;
  std::mt19937 rng(17);
  std::vector<std::unique_ptr<TraceWriter>> writers;
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::string p = path("shard" + std::to_string(i) + ".nmot");
    // Half the inputs v1, half v2+codec: the merger reads either.
    TraceWriter::Options options;
    if (i % 2 == 0) options.version = kTraceVersion1;
    writers.push_back(std::make_unique<TraceWriter>(p, options));
  }
  for (const auto& s : all.samples()) writers[rng() % kShards]->add(s);
  for (auto& w : writers) ASSERT_TRUE(w->close());

  const auto merge_with = [&](const char* out_name,
                              TraceWriter::Options options) -> std::string {
    TraceMerger merger;
    for (std::size_t i = 0; i < kShards; ++i) {
      merger.add_input(path("shard" + std::to_string(i) + ".nmot"));
    }
    merger.set_writer_options(options);
    const auto stats = merger.merge_to(path(out_name));
    EXPECT_TRUE(stats.has_value()) << merger.error();
    return stats ? stats->fingerprint : std::string();
  };
  const std::string v1_md5 = merge_with("m1.nmot", TraceWriter::Options{kTraceVersion1, false});
  const std::string v2_md5 = merge_with("m2.nmot", TraceWriter::Options{kTraceVersion2, true});
  EXPECT_FALSE(v1_md5.empty());
  EXPECT_EQ(v1_md5, v2_md5);
  EXPECT_EQ(v1_md5, all.fingerprint());

  // And the merged v2 file's own bytes decode back to that fingerprint.
  TraceReader reader(path("m2.nmot"));
  const auto merged = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.info().version, kTraceVersion2);
  EXPECT_EQ(merged.fingerprint(), v1_md5);
}

TEST_F(StoreTest, MergeOfSingleFileIsIdentity) {
  const auto trace = random_trace(1000, 9);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceMerger merger;
  merger.add_input(path("t.nmot"));
  const auto stats = merger.merge_to(path("m.nmot"));
  ASSERT_TRUE(stats.has_value()) << merger.error();
  EXPECT_EQ(stats->fingerprint, trace.fingerprint());
}

TEST_F(StoreTest, MergeIncludesEmptyInputs) {
  const auto trace = random_trace(500, 10);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());
  TraceWriter empty(path("e.nmot"));
  ASSERT_TRUE(empty.close());

  TraceMerger merger;
  merger.add_input(path("e.nmot"));
  merger.add_input(path("t.nmot"));
  const auto stats = merger.merge_to(path("m.nmot"));
  ASSERT_TRUE(stats.has_value()) << merger.error();
  EXPECT_EQ(stats->samples, trace.size());
  EXPECT_EQ(stats->fingerprint, trace.fingerprint());
}

TEST_F(StoreTest, MergeRejectsUnsortedInput) {
  core::SampleTrace unsorted;
  core::TraceSample s;
  s.time_ns = 100;
  unsorted.add(s);
  s.time_ns = 1;  // regression
  unsorted.add(s);
  s.time_ns = 200;
  unsorted.add(s);
  TraceWriter writer(path("u.nmot"));
  writer.write_all(unsorted);
  ASSERT_TRUE(writer.close());

  TraceMerger merger;
  merger.add_input(path("u.nmot"));
  EXPECT_FALSE(merger.merge_to(path("m.nmot")).has_value());
  EXPECT_NE(merger.error().find("canonical"), std::string::npos);
}

TEST_F(StoreTest, MergeReportsMissingInput) {
  TraceMerger merger;
  merger.add_input(path("nope.nmot"));
  EXPECT_FALSE(merger.merge_to(path("m.nmot")).has_value());
  EXPECT_FALSE(merger.error().empty());
}

TEST_F(StoreTest, MergeRefusesOutputThatIsAlsoAnInput) {
  // Truncating-then-removing an input would be data loss; the merger must
  // refuse up front and leave the input untouched.
  const auto trace = random_trace(200, 11);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceMerger merger;
  merger.add_input(path("t.nmot"));
  EXPECT_FALSE(merger.merge_to(path("t.nmot")).has_value());
  EXPECT_NE(merger.error().find("also a merge input"), std::string::npos);

  TraceReader reader(path("t.nmot"));
  const auto back = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(back.fingerprint(), trace.fingerprint());
}

TEST_F(StoreTest, FailedMergeLeavesNoValidOutputFile) {
  // An unsorted input aborts the merge mid-stream; the partial output must
  // not survive as a file that could pass for a complete trace.
  core::SampleTrace unsorted;
  core::TraceSample s;
  s.time_ns = 100;
  unsorted.add(s);
  s.time_ns = 1;
  unsorted.add(s);
  TraceWriter writer(path("u.nmot"));
  writer.write_all(unsorted);
  ASSERT_TRUE(writer.close());

  TraceMerger merger;
  merger.add_input(path("u.nmot"));
  ASSERT_FALSE(merger.merge_to(path("m.nmot")).has_value());
  EXPECT_FALSE(fs::exists(path("m.nmot")));
}

// --------------------------------------------------------------- sessions --

TEST_F(StoreTest, SessionStoreAssignsUniqueIdsAndDirs) {
  SessionStore store(path("store"));
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&store] { store.create_session("job"); });
  }
  for (auto& t : threads) t.join();

  const auto sessions = store.sessions();
  ASSERT_EQ(sessions.size(), static_cast<std::size_t>(kThreads));
  std::set<std::uint32_t> ids;
  std::set<std::string> dirs;
  for (const auto& s : sessions) {
    ids.insert(s.id);
    dirs.insert(s.dir);
    EXPECT_TRUE(fs::is_directory(s.dir));
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(dirs.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(StoreTest, SessionIdsResumeAcrossStoreInstances) {
  // A second store (or process) on the same root must not re-issue ids
  // and truncate the earlier sessions' trace files.
  {
    SessionStore store(path("store"));
    store.create_session("a");
    store.create_session("b");
  }
  SessionStore resumed(path("store"));
  const auto s = resumed.create_session("c");
  EXPECT_EQ(s.id, 2u);
}

TEST_F(StoreTest, HomeNodeSessionsLandUnderNodeRoots) {
  SessionStore store(path("store"));
  const auto flat = store.create_session("flat");
  const auto n0 = store.create_session("local", 0);
  const auto n1 = store.create_session("remote", 1);

  EXPECT_FALSE(flat.home_node.has_value());
  EXPECT_EQ(flat.dir.find(path("store") + "/session-"), 0u);
  ASSERT_TRUE(n0.home_node.has_value());
  EXPECT_EQ(*n0.home_node, 0u);
  EXPECT_EQ(n0.dir.find(path("store") + "/node-0/session-"), 0u);
  EXPECT_EQ(n1.dir.find(path("store") + "/node-1/session-"), 0u);
  EXPECT_TRUE(fs::is_directory(n0.dir));
  EXPECT_TRUE(fs::is_directory(n1.dir));

  // One id sequence across the flat root and every node root.
  EXPECT_EQ(flat.id, 0u);
  EXPECT_EQ(n0.id, 1u);
  EXPECT_EQ(n1.id, 2u);
}

TEST_F(StoreTest, SessionIdsResumePastNodeRootSessions) {
  // The resume scan must look inside node-<k>/ roots too, or a reopened
  // store would re-issue ids claimed by node-homed sessions.
  {
    SessionStore store(path("store"));
    store.create_session("a");
    store.create_session("b", 1);
    store.create_session("c", 0);
  }
  SessionStore resumed(path("store"));
  const auto s = resumed.create_session("d", 1);
  EXPECT_EQ(s.id, 3u);
}

TEST_F(StoreTest, SessionNamesAreSanitizedToSafePathComponents) {
  SessionStore store(path("store"));
  const auto evil = store.create_session("../../escape/me");
  EXPECT_EQ(evil.name, ".._.._escape_me");
  EXPECT_EQ(evil.dir.find(path("store")), 0u);
  EXPECT_TRUE(fs::is_directory(evil.dir));
  const auto empty = store.create_session("");
  EXPECT_EQ(empty.name, "job");
}

TEST_F(StoreTest, ConcurrentSessionsWriteDistinctValidTraces) {
  core::NmoConfig nmo_cfg;
  nmo_cfg.enable = true;
  nmo_cfg.mode = core::Mode::kAll;
  nmo_cfg.period = 512;

  sim::EngineConfig engine;
  engine.threads = 4;
  engine.machine.hierarchy.cores = 4;

  std::vector<SessionJob> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].name = "s" + std::to_string(i);
    jobs[i].nmo = nmo_cfg;
    jobs[i].engine = engine;
    jobs[i].engine.seed = 10 + i;
    jobs[i].make_workload = [] {
      wl::StreamConfig cfg;
      cfg.array_elems = 1 << 14;
      cfg.iterations = 1;
      return std::make_unique<wl::Stream>(cfg);
    };
  }
  // One job runs an uninstrumented baseline pass concurrently with the
  // others' profiled runs: its nullptr binding must not observe (or
  // annotate) any concurrent session's profiler.
  jobs[0].with_baseline = true;

  SessionStore store(path("store"));
  const auto results = run_sessions(store, jobs).results;
  ASSERT_EQ(results.size(), jobs.size());

  core::SampleTrace reference;
  std::set<std::string> paths;
  for (const auto& r : results) {
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_GT(r.samples, 0u);
    paths.insert(r.session.trace_path);

    TraceReader reader(r.session.trace_path);
    const auto trace = reader.read_all();
    ASSERT_TRUE(reader.ok()) << r.session.trace_path << ": " << reader.error();
    EXPECT_EQ(trace.size(), r.samples);
    EXPECT_EQ(trace.fingerprint(), r.fingerprint);
    EXPECT_EQ(r.samples, r.report.processed_samples);
    reference.append(trace);
  }
  // No clobbering: three sessions, three distinct files.
  EXPECT_EQ(paths.size(), jobs.size());

  // Merging the session files equals the canonical concatenation.
  reference.sort_canonical();
  TraceMerger merger;
  for (const auto& r : results) merger.add_input(r.session.trace_path);
  const auto stats = merger.merge_to(path("merged.nmot"));
  ASSERT_TRUE(stats.has_value()) << merger.error();
  EXPECT_EQ(stats->samples, reference.size());
  EXPECT_EQ(stats->fingerprint, reference.fingerprint());
}

// ---------------------------------------------------------- region files --

TEST_F(StoreTest, RegionFileRoundTripsNamesAndEscapes) {
  std::vector<core::AddrRegion> regions;
  regions.push_back({"plain", 0x1000, 0x2000});
  regions.push_back({"with\ttab and\nnewline \\slash", 0, ~Addr{0}});
  regions.push_back({"", 0x42, 0x43});  // empty name survives too

  ASSERT_TRUE(write_region_file(path("t.nmor"), regions));
  const auto back = read_region_file(path("t.nmor"));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    EXPECT_EQ((*back)[i].name, regions[i].name);
    EXPECT_EQ((*back)[i].start, regions[i].start);
    EXPECT_EQ((*back)[i].end, regions[i].end);
  }
}

TEST_F(StoreTest, RegionPathSwapsTraceExtension) {
  EXPECT_EQ(region_path_for("dir/trace.nmot"), "dir/trace.nmor");
  EXPECT_EQ(region_path_for("odd.bin"), "odd.bin.nmor");
}

TEST_F(StoreTest, RegionFileRejectsGarbage) {
  std::ofstream out(path("bad.nmor"));
  out << "not a region file\n";
  out.close();
  std::string error;
  EXPECT_FALSE(read_region_file(path("bad.nmor"), &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(read_region_file(path("missing.nmor")).has_value());
}

TEST_F(StoreTest, RegionUnionDeduplicatesRemapsAndIsOrderIndependent) {
  const std::vector<core::AddrRegion> a = {{"x", 0, 100}, {"y", 100, 200}};
  const std::vector<core::AddrRegion> b = {{"y", 100, 200}, {"z", 200, 300}};
  RegionUnion u;
  const auto ha = u.add(a);
  const auto hb = u.add(b);
  EXPECT_EQ(u.mapping(ha), (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(u.mapping(hb), (std::vector<std::int32_t>{1, 2}));
  ASSERT_EQ(u.regions().size(), 3u);
  EXPECT_EQ(u.regions()[2].name, "z");
  // Same name, different range: a distinct region, not a duplicate; it
  // sorts between x(0,100) and y, shifting later union indices - which is
  // why mappings are only final once every table is added.
  const auto hc = u.add({{"x", 500, 600}});
  EXPECT_EQ(u.mapping(hc), (std::vector<std::int32_t>{1}));
  EXPECT_EQ(u.mapping(ha), (std::vector<std::int32_t>{0, 2}));

  // Order independence: the property that lets CI merge a shell glob in
  // session-id order while the example unions in job order.
  RegionUnion reversed;
  const auto rb = reversed.add(b);
  const auto ra = reversed.add(a);
  EXPECT_EQ(reversed.mapping(ra), (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(reversed.mapping(rb), (std::vector<std::int32_t>{1, 2}));
  EXPECT_EQ(reversed.regions().size(), 3u);
}

TEST_F(StoreTest, MergeUnionsSidecarsAndRemapsSampleIndices) {
  // Input A tags [x, y]; input B tags [y, z].  After the merge every
  // sample must point into the union table [x, y, z].
  const auto write_input = [&](const std::string& name,
                               const std::vector<core::AddrRegion>& regions,
                               std::uint64_t t0) {
    core::SampleTrace trace;
    for (std::int32_t r = 0; r < static_cast<std::int32_t>(regions.size()); ++r) {
      core::TraceSample s;
      s.time_ns = t0 + static_cast<std::uint64_t>(r) * 10;
      s.vaddr = regions[static_cast<std::size_t>(r)].start;
      s.region = r;
      trace.add(s);
    }
    TraceWriter writer(path(name));
    writer.write_all(trace);
    ASSERT_TRUE(writer.close());
    ASSERT_TRUE(write_region_file(region_path_for(path(name)), regions));
  };
  write_input("a.nmot", {{"x", 0, 100}, {"y", 100, 200}}, 10);
  write_input("b.nmot", {{"y", 100, 200}, {"z", 200, 300}}, 15);

  TraceMerger merger;
  merger.add_input(path("a.nmot"));
  merger.add_input(path("b.nmot"));
  const auto stats = merger.merge_to(path("m.nmot"));
  ASSERT_TRUE(stats.has_value()) << merger.error();
  EXPECT_EQ(stats->samples, 4u);
  EXPECT_EQ(stats->regions, 3u);

  const auto merged_table = read_region_file(region_path_for(path("m.nmot")));
  ASSERT_TRUE(merged_table.has_value());
  ASSERT_EQ(merged_table->size(), 3u);
  EXPECT_EQ((*merged_table)[0].name, "x");
  EXPECT_EQ((*merged_table)[1].name, "y");
  EXPECT_EQ((*merged_table)[2].name, "z");

  TraceReader reader(path("m.nmot"));
  const auto merged = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  ASSERT_EQ(merged.size(), 4u);
  // t=10: A/x -> 0; t=15: B/y -> 1; t=20: A/y -> 1; t=25: B/z -> 2.
  EXPECT_EQ(merged.samples()[0].region, 0);
  EXPECT_EQ(merged.samples()[1].region, 1);
  EXPECT_EQ(merged.samples()[2].region, 1);
  EXPECT_EQ(merged.samples()[3].region, 2);

  // Input order must not change a single output byte: the union is
  // sorted, so a shell glob and a job-ordered merge agree exactly.
  TraceMerger reversed;
  reversed.add_input(path("b.nmot"));
  reversed.add_input(path("a.nmot"));
  const auto reversed_stats = reversed.merge_to(path("m2.nmot"));
  ASSERT_TRUE(reversed_stats.has_value()) << reversed.error();
  EXPECT_EQ(reversed_stats->fingerprint, stats->fingerprint);
}

TEST_F(StoreTest, MergeWithoutSidecarsKeepsIndicesAndWritesNoUnion) {
  const auto trace = random_trace(300, 12);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceMerger merger;
  merger.add_input(path("t.nmot"));
  const auto stats = merger.merge_to(path("m.nmot"));
  ASSERT_TRUE(stats.has_value()) << merger.error();
  EXPECT_EQ(stats->regions, 0u);
  EXPECT_EQ(stats->fingerprint, trace.fingerprint());
  EXPECT_FALSE(fs::exists(region_path_for(path("m.nmot"))));
}

TEST_F(StoreTest, MergeRejectsSampleIndexOutsideItsSidecarTable) {
  core::SampleTrace trace;
  core::TraceSample s;
  s.time_ns = 10;
  s.region = 5;  // sidecar below only declares one region
  trace.add(s);
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());
  ASSERT_TRUE(write_region_file(region_path_for(path("t.nmot")), {{"only", 0, 1}}));

  TraceMerger merger;
  merger.add_input(path("t.nmot"));
  EXPECT_FALSE(merger.merge_to(path("m.nmot")).has_value());
  EXPECT_NE(merger.error().find("out of range"), std::string::npos);
  EXPECT_FALSE(fs::exists(path("m.nmot")));
}

// ------------------------------------------------------- block metadata ----

TEST_F(StoreTest, WriterEmitsBlockMetadataMatchingAManualFold) {
  const auto trace = random_trace(1500, 77);  // 3 blocks: 512 + 512 + 476
  TraceWriter writer(path("t.nmot"));
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceReader reader(path("t.nmot"));
  ASSERT_TRUE(reader.load_index()) << reader.error();
  ASSERT_TRUE(reader.has_block_meta());
  const auto& index = reader.block_index();
  const auto& meta = reader.block_meta();
  ASSERT_EQ(meta.size(), index.size());
  ASSERT_EQ(index.size(), 3u);

  // Fold each block's samples by hand; the writer's summaries must match.
  std::size_t at = 0;
  for (std::size_t b = 0; b < index.size(); ++b) {
    BlockMeta expected;
    for (std::uint32_t i = 0; i < index[b].samples; ++i) {
      expected.absorb(trace.samples()[at++]);
    }
    EXPECT_EQ(meta[b], expected) << "block " << b;
    EXPECT_EQ(expected.samples(), index[b].samples) << "block " << b;
  }
  EXPECT_EQ(at, trace.size());
}

TEST_F(StoreTest, IndexMetaOptOutProducesAMetaFreeV2File) {
  const auto trace = random_trace(700, 78);
  TraceWriter::Options options;
  options.index_meta = false;
  TraceWriter writer(path("t.nmot"), options);
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());

  TraceReader reader(path("t.nmot"));
  ASSERT_TRUE(reader.load_index()) << reader.error();
  EXPECT_FALSE(reader.has_block_meta());
  EXPECT_EQ(reader.block_index().size(), 2u);

  TraceReader full(path("t.nmot"));
  const auto back = full.read_all();
  ASSERT_TRUE(full.ok()) << full.error();
  EXPECT_EQ(back.fingerprint(), trace.fingerprint());
}

TEST_F(StoreTest, MergedOutputMetadataEqualsAFromScratchRewrite) {
  // The merger must recompute block metadata for its re-blocked output
  // stream, never splice input summaries: the merged file's metadata has
  // to equal what a fresh writer produces from the merged samples.
  for (std::size_t i = 0; i < 3; ++i) {
    const auto trace = random_trace(600 + i * 100, 90 + i);
    TraceWriter writer(path("in" + std::to_string(i) + ".nmot"));
    writer.write_all(trace);
    ASSERT_TRUE(writer.close());
  }
  TraceMerger merger;
  for (std::size_t i = 0; i < 3; ++i) merger.add_input(path("in" + std::to_string(i) + ".nmot"));
  ASSERT_TRUE(merger.merge_to(path("m.nmot")).has_value()) << merger.error();

  // Full read also cross-checks the metadata against the decoded samples.
  TraceReader merged_reader(path("m.nmot"));
  const auto merged = merged_reader.read_all();
  ASSERT_TRUE(merged_reader.ok()) << merged_reader.error();

  TraceWriter rewriter(path("rewrite.nmot"));
  rewriter.write_all(merged);
  ASSERT_TRUE(rewriter.close());

  TraceReader a(path("m.nmot")), b(path("rewrite.nmot"));
  ASSERT_TRUE(a.load_index()) << a.error();
  ASSERT_TRUE(b.load_index()) << b.error();
  ASSERT_TRUE(a.has_block_meta());
  ASSERT_EQ(a.block_meta().size(), b.block_meta().size());
  for (std::size_t i = 0; i < a.block_meta().size(); ++i) {
    EXPECT_EQ(a.block_meta()[i], b.block_meta()[i]) << "block " << i;
  }
}

TEST_F(StoreTest, IdenticalJobsProduceIdenticalFingerprints) {
  // Concurrency must not leak between sessions: two identical jobs (same
  // seed, same workload) yield byte-identical traces.
  core::NmoConfig nmo_cfg;
  nmo_cfg.enable = true;
  nmo_cfg.mode = core::Mode::kSample;
  nmo_cfg.period = 512;

  sim::EngineConfig engine;
  engine.threads = 4;
  engine.machine.hierarchy.cores = 4;
  engine.seed = 77;

  std::vector<SessionJob> jobs(2);
  for (auto& job : jobs) {
    job.name = "twin";
    job.nmo = nmo_cfg;
    job.engine = engine;
    job.make_workload = [] {
      wl::StreamConfig cfg;
      cfg.array_elems = 1 << 14;
      cfg.iterations = 1;
      return std::make_unique<wl::Stream>(cfg);
    };
  }

  SessionStore store(path("store"));
  const auto results = run_sessions(store, jobs).results;
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].error.empty()) << results[0].error;
  ASSERT_TRUE(results[1].error.empty()) << results[1].error;
  EXPECT_EQ(results[0].fingerprint, results[1].fingerprint);
  EXPECT_NE(results[0].session.trace_path, results[1].session.trace_path);
}

// --- metadata-file parsing (session.meta / scheduler.meta) -------------------

using MetadataTest = StoreTest;

TEST_F(MetadataTest, RoundTripsWrittenKeys) {
  {
    std::ofstream out(path("session.meta"));
    out << "id=3\n"
        << "name=stream-a\n"
        << "state=done\n"
        << "samples=4096\n"
        << "fingerprint=0123456789abcdef0123456789abcdef\n"
        << "error=\n";
  }
  const auto meta = read_metadata_file(path("session.meta"));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->size(), 6u);
  EXPECT_EQ(meta->at("id"), "3");
  EXPECT_EQ(meta->at("name"), "stream-a");
  EXPECT_EQ(meta->at("state"), "done");
  EXPECT_EQ(meta->at("samples"), "4096");
  EXPECT_EQ(meta->at("fingerprint"), "0123456789abcdef0123456789abcdef");
  EXPECT_EQ(meta->at("error"), "");
}

TEST_F(MetadataTest, MissingFileIsNullopt) {
  EXPECT_FALSE(read_metadata_file(path("nonexistent.meta")).has_value());
}

TEST_F(MetadataTest, MalformedLinesAreSkipped) {
  {
    std::ofstream out(path("odd.meta"));
    out << "no equals sign here\n"
        << "\n"
        << "good=value\n"
        << "   \n"
        << "another line without separator\n";
  }
  const auto meta = read_metadata_file(path("odd.meta"));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->size(), 1u);
  EXPECT_EQ(meta->at("good"), "value");
}

TEST_F(MetadataTest, DuplicateKeysLastWins) {
  {
    std::ofstream out(path("dup.meta"));
    out << "state=running\n"
        << "samples=10\n"
        << "state=done\n"
        << "samples=4096\n";
  }
  const auto meta = read_metadata_file(path("dup.meta"));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->size(), 2u);
  EXPECT_EQ(meta->at("state"), "done");
  EXPECT_EQ(meta->at("samples"), "4096");
}

TEST_F(MetadataTest, ValuesMayContainEquals) {
  // Only the FIRST '=' splits: error strings with '=' survive verbatim.
  {
    std::ofstream out(path("eq.meta"));
    out << "error=declared samples=5, got=3\n";
  }
  const auto meta = read_metadata_file(path("eq.meta"));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("error"), "declared samples=5, got=3");
}

TEST_F(MetadataTest, SessionMetaWrittenByRunnerParsesBack) {
  // End-to-end: the session.meta the runner writes must round-trip
  // through read_metadata_file with its numeric fields intact.
  core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = core::Mode::kAll;
  nmo.period = 512;
  sim::EngineConfig engine;
  engine.threads = 2;
  engine.machine.hierarchy.cores = 2;

  std::vector<SessionJob> jobs(1);
  jobs[0].name = "meta-roundtrip";
  jobs[0].nmo = nmo;
  jobs[0].engine = engine;
  jobs[0].with_baseline = false;
  jobs[0].make_workload = [] {
    wl::StreamConfig cfg;
    cfg.array_elems = 1 << 12;
    cfg.iterations = 1;
    return std::make_unique<wl::Stream>(cfg);
  };

  SessionStore store(path("store"));
  const auto results = run_sessions(store, jobs).results;
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].error.empty()) << results[0].error;

  const auto meta = read_metadata_file(results[0].session.dir + "/" +
                                       std::string(kSessionMetaFile));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("state"), "done");
  EXPECT_EQ(meta->at("name"), results[0].session.name);
  EXPECT_EQ(meta->at("samples"), std::to_string(results[0].samples));
  EXPECT_EQ(meta->at("fingerprint"), results[0].fingerprint);
  // A local (non-streamed) run records no streaming keys.
  EXPECT_EQ(meta->count("streamed"), 0u);

  const auto sched = read_metadata_file(store.root() + "/" +
                                        std::string(kSchedulerMetaFile));
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->at("submitted"), "1");
  EXPECT_EQ(sched->at("completed"), "1");
}

}  // namespace
}  // namespace nmo::store
