// Core NMO components: config (Table I), regions/phases, trace, capacity,
// bandwidth, C API routing.
#include <gtest/gtest.h>

#include <sstream>

#include "core/bandwidth.hpp"
#include "core/capacity.hpp"
#include "core/config.hpp"
#include "core/nmo.h"
#include "core/profiler.hpp"
#include "core/regions.hpp"
#include "core/trace.hpp"

namespace nmo::core {
namespace {

// ----------------------------------------------------------------- Config --
TEST(NmoConfig, TableIDefaults) {
  const auto cfg = NmoConfig::from_env(Env(std::map<std::string, std::string>{}));
  EXPECT_FALSE(cfg.enable);
  EXPECT_EQ(cfg.name, "nmo");
  EXPECT_EQ(cfg.mode, Mode::kNone);
  EXPECT_EQ(cfg.period, 0u);
  EXPECT_FALSE(cfg.track_rss);
  EXPECT_EQ(cfg.bufsize_bytes, 1ull << 20);
  EXPECT_EQ(cfg.auxbufsize_bytes, 1ull << 20);
}

TEST(NmoConfig, FullEnvironment) {
  const auto cfg = NmoConfig::from_env(Env(std::map<std::string, std::string>{
      {"NMO_ENABLE", "1"},
      {"NMO_NAME", "run42"},
      {"NMO_MODE", "sample,bandwidth"},
      {"NMO_PERIOD", "4096"},
      {"NMO_TRACK_RSS", "on"},
      {"NMO_BUFSIZE", "2"},
      {"NMO_AUXBUFSIZE", "8"},
  }));
  EXPECT_TRUE(cfg.enable);
  EXPECT_EQ(cfg.name, "run42");
  EXPECT_TRUE(has_mode(cfg.mode, Mode::kSample));
  EXPECT_TRUE(has_mode(cfg.mode, Mode::kBandwidth));
  EXPECT_TRUE(has_mode(cfg.mode, Mode::kCapacity));  // implied by TRACK_RSS
  EXPECT_EQ(cfg.period, 4096u);
  EXPECT_EQ(cfg.bufsize_bytes, 2ull << 20);
  EXPECT_EQ(cfg.auxbufsize_bytes, 8ull << 20);
}

TEST(NmoConfig, ModeAll) {
  EXPECT_EQ(NmoConfig::parse_mode("all"), Mode::kAll);
  EXPECT_EQ(NmoConfig::parse_mode("none"), Mode::kNone);
  EXPECT_EQ(NmoConfig::parse_mode(""), Mode::kNone);
}

TEST(NmoConfig, UnknownModeTokenWarns) {
  std::vector<std::string> warnings;
  NmoConfig::parse_mode("sample,bogus", &warnings);
  ASSERT_EQ(warnings.size(), 1u);
}

TEST(NmoConfig, ModeParsingIsCaseAndSpaceTolerant) {
  EXPECT_EQ(NmoConfig::parse_mode(" Sample , CAPACITY "),
            Mode::kSample | Mode::kCapacity);
}

// ---------------------------------------------------------------- Regions --
TEST(RegionTable, TagAndFind) {
  RegionTable t;
  t.tag_addr("data_a", 0x1000, 0x2000);
  t.tag_addr("data_b", 0x3000, 0x4000);
  EXPECT_EQ(t.find_region(0x1800), 0u);
  EXPECT_EQ(t.find_region(0x3000), 1u);
  EXPECT_FALSE(t.find_region(0x2800).has_value());
  EXPECT_FALSE(t.find_region(0x4000).has_value());  // end exclusive
}

TEST(RegionTable, LaterTagWinsOnOverlap) {
  RegionTable t;
  t.tag_addr("outer", 0x0, 0x10000);
  t.tag_addr("inner", 0x4000, 0x5000);
  EXPECT_EQ(t.find_region(0x4800), 1u);
  EXPECT_EQ(t.find_region(0x100), 0u);
}

TEST(RegionTable, ReversedBoundsNormalised) {
  RegionTable t;
  t.tag_addr("r", 0x2000, 0x1000);
  EXPECT_TRUE(t.find_region(0x1800).has_value());
}

TEST(RegionTable, PhaseNesting) {
  RegionTable t;
  t.phase_start("outer", 100);
  t.phase_start("inner", 200);
  t.phase_stop(300);
  t.phase_stop(400);
  ASSERT_EQ(t.phases().size(), 2u);
  EXPECT_EQ(t.phases()[0].name, "outer");
  EXPECT_EQ(t.phases()[0].t_stop_ns, 400u);
  EXPECT_EQ(t.phases()[1].name, "inner");
  EXPECT_EQ(t.phases()[1].depth, 1u);
  EXPECT_EQ(t.open_phases(), 0u);
}

TEST(RegionTable, PhaseAtPrefersInnermost) {
  RegionTable t;
  t.phase_start("outer", 100);
  t.phase_start("inner", 200);
  t.phase_stop(300);
  t.phase_stop(400);
  EXPECT_EQ(t.phase_at(250), 1u);
  EXPECT_EQ(t.phase_at(350), 0u);
  EXPECT_FALSE(t.phase_at(50).has_value());
  EXPECT_FALSE(t.phase_at(400).has_value());
}

TEST(RegionTable, UnmatchedStopIgnored) {
  RegionTable t;
  t.phase_stop(100);  // no crash, no effect
  EXPECT_TRUE(t.phases().empty());
}

// ------------------------------------------------------------------ Trace --
TEST(SampleTrace, CsvFormat) {
  SampleTrace trace;
  trace.add(TraceSample{.time_ns = 10, .vaddr = 0x100, .pc = 0x400, .op = MemOp::kStore,
                        .level = MemLevel::kDRAM, .latency = 330, .core = 2, .region = 1});
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_EQ(out.str(),
            "time_ns,vaddr,pc,op,level,latency,core,region\n"
            "10,256,1024,store,DRAM,330,2,1\n");
}

TEST(SampleTrace, FingerprintChangesWithContent) {
  SampleTrace a, b;
  a.add(TraceSample{.time_ns = 1, .vaddr = 0x100});
  b.add(TraceSample{.time_ns = 1, .vaddr = 0x101});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(SampleTrace, EmptyFingerprintIsMd5OfNothing) {
  SampleTrace t;
  EXPECT_EQ(t.fingerprint(), "d41d8cd98f00b204e9800998ecf8427e");
}

// --------------------------------------------------------------- Capacity --
TEST(CapacityTracker, TracksLiveAndPeak) {
  CapacityTracker c;
  c.on_alloc(100, 0);
  c.on_alloc(50, 1);
  c.on_free(100, 2);
  EXPECT_EQ(c.live_bytes(), 50u);
  EXPECT_EQ(c.peak_bytes(), 150u);
}

TEST(CapacityTracker, SeriesSampling) {
  CapacityTracker c;
  c.on_alloc(1000, 0);
  c.sample(10);
  c.on_alloc(1000, 11);
  c.sample(20);
  ASSERT_EQ(c.series().size(), 2u);
  EXPECT_EQ(c.series()[0].live_bytes, 1000u);
  EXPECT_EQ(c.series()[1].live_bytes, 2000u);
}

TEST(CapacityTracker, UnderflowClamped) {
  CapacityTracker c;
  c.on_free(10, 0);
  EXPECT_EQ(c.live_bytes(), 0u);
}

TEST(CapacityTracker, PeakUtilization) {
  CapacityTracker c;
  c.on_alloc(128, 0);
  EXPECT_DOUBLE_EQ(c.peak_utilization(256), 0.5);
  EXPECT_DOUBLE_EQ(c.peak_utilization(0), 0.0);
}

// -------------------------------------------------------------- Bandwidth --
TEST(BandwidthEstimator, DifferentiatesCumulativeBytes) {
  BandwidthEstimator b;
  b.tick(0, 0);
  b.tick(1'000'000'000, 1ull << 30);  // 1 GiB in 1 s
  ASSERT_EQ(b.series().size(), 1u);
  EXPECT_NEAR(b.series()[0].gib_per_s, 1.0, 1e-9);
}

TEST(BandwidthEstimator, PeakAndIntensity) {
  BandwidthEstimator b;
  b.tick(0, 0, 0);
  b.tick(1'000'000'000, 1ull << 30, 1ull << 31);
  b.tick(2'000'000'000, (1ull << 30) + (1ull << 29), 1ull << 32);
  EXPECT_NEAR(b.peak_gib_per_s(), 1.0, 1e-9);
  EXPECT_NEAR(b.arithmetic_intensity(), 4.0 * (1ull << 30) / static_cast<double>((1ull << 30) + (1ull << 29)), 1e-9);
}

TEST(BandwidthEstimator, ZeroIntervalIgnored) {
  BandwidthEstimator b;
  b.tick(5, 100);
  b.tick(5, 200);
  EXPECT_TRUE(b.series().empty());
}

// -------------------------------------------------------------- C API -----
TEST(NmoCApi, RoutesToActiveProfiler) {
  NmoConfig cfg;
  cfg.enable = true;
  cfg.mode = Mode::kAll;
  Profiler profiler(cfg);
  std::uint64_t t = 123;
  profiler.set_time_source([&] { return t; });
  Profiler* prev = set_active_profiler(&profiler);

  EXPECT_EQ(nmo_enabled(), 1);
  nmo_tag_addr("obj", 0x1000, 0x2000);
  nmo_start("kernel0");
  t = 456;
  nmo_stop();
  nmo_note_alloc(4096);
  nmo_note_free(1024);

  set_active_profiler(prev);

  ASSERT_EQ(profiler.regions().regions().size(), 1u);
  EXPECT_EQ(profiler.regions().regions()[0].name, "obj");
  ASSERT_EQ(profiler.regions().phases().size(), 1u);
  EXPECT_EQ(profiler.regions().phases()[0].t_start_ns, 123u);
  EXPECT_EQ(profiler.regions().phases()[0].t_stop_ns, 456u);
  EXPECT_EQ(profiler.capacity().live_bytes(), 3072u);
}

TEST(NmoCApi, NoopsWithoutProfiler) {
  Profiler* prev = set_active_profiler(nullptr);
  EXPECT_EQ(nmo_enabled(), 0);
  nmo_tag_addr("x", 0, 1);  // must not crash
  nmo_start("y");
  nmo_stop();
  nmo_note_alloc(1);
  nmo_note_free(1);
  set_active_profiler(prev);
}

TEST(NmoCApi, NullNamesIgnored) {
  NmoConfig cfg;
  cfg.enable = true;
  Profiler profiler(cfg);
  Profiler* prev = set_active_profiler(&profiler);
  nmo_tag_addr(nullptr, 0, 1);
  nmo_start(nullptr);
  set_active_profiler(prev);
  EXPECT_TRUE(profiler.regions().regions().empty());
  EXPECT_TRUE(profiler.regions().phases().empty());
}

// --------------------------------------------------------------- Profiler --
TEST(Profiler, SampleDecodingAndAttribution) {
  NmoConfig cfg;
  cfg.enable = true;
  cfg.mode = Mode::kSample;
  Profiler p(cfg);
  p.set_time_conv(kern::TimeConv::from_frequency(1e9));  // 1 cycle = 1 ns
  p.tag_addr("buf", 0x1000, 0x2000);

  spe::Record rec;
  rec.vaddr = 0x1800;
  rec.timestamp = 777;
  rec.op = MemOp::kStore;
  rec.level = MemLevel::kL2;
  rec.total_latency = 13;
  p.on_sample(rec, /*core=*/3);

  ASSERT_EQ(p.trace().size(), 1u);
  const auto& s = p.trace().samples()[0];
  EXPECT_EQ(s.time_ns, 777u);
  EXPECT_EQ(s.region, 0);
  EXPECT_EQ(s.core, 3u);
  EXPECT_EQ(s.level, MemLevel::kL2);
}

TEST(Profiler, SamplesIgnoredWithoutSampleMode) {
  NmoConfig cfg;
  cfg.mode = Mode::kCapacity;
  Profiler p(cfg);
  spe::Record rec;
  rec.vaddr = 0x1;
  rec.timestamp = 1;
  p.on_sample(rec, 0);
  EXPECT_TRUE(p.trace().empty());
}

}  // namespace
}  // namespace nmo::core
