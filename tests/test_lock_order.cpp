// Tests for the debug-build lock-order validator (common/lock_order.hpp).
//
// The interesting behavior — aborting on a lock-hierarchy inversion — is
// exercised through gtest death tests: the child process establishes one
// acquisition order, then takes the opposite order and must die printing
// both mutex names.  The validator is process-global state, so each death
// test builds its cycle from fresh mutexes inside the child.
//
// When NMO_LOCK_ORDER == 0 (Release), the death tests compile away and the
// suite instead pins that the validator really is compiled out:
// lockorder::kEnabled is false and edge_count() stays 0 no matter how many
// locks are taken.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_safety.hpp"

namespace {

using nmo::core::Mutex;
using nmo::core::MutexLock;

// Take `outer` then `inner`, releasing both: records the edge
// outer -> inner in the global order graph.
void lock_in_order(Mutex& outer, Mutex& inner) {
  const MutexLock a(outer);
  const MutexLock b(inner);
}

// The runtime-validator probes below intentionally violate static locking
// discipline (recursive lock, try-lock against the hierarchy); they are
// excluded from Clang's analysis so -Werror=thread-safety does not reject
// the very violations the *runtime* checks are under test for.
void try_lock_release(Mutex& m, bool* acquired) NMO_NO_THREAD_SAFETY_ANALYSIS {
  *acquired = m.try_lock();
  if (*acquired) m.unlock();
}

[[maybe_unused]] void lock_twice(Mutex& m) NMO_NO_THREAD_SAFETY_ANALYSIS {
  m.lock();
  m.lock();  // recursive: the lock-order validator must abort
}

TEST(LockOrder, ConsistentOrderNeverAborts) {
  Mutex a("order.a");
  Mutex b("order.b");
  Mutex c("order.c");
  // Same hierarchy exercised repeatedly, including from another thread:
  // a -> b -> c is acyclic, so no report fires.
  for (int i = 0; i < 100; ++i) {
    const MutexLock la(a);
    const MutexLock lb(b);
    const MutexLock lc(c);
  }
  std::thread t([&] { lock_in_order(a, b); });
  t.join();
  SUCCEED();
}

TEST(LockOrder, TryLockAgainstHierarchyIsAllowed) {
  Mutex a("trylock.a");
  Mutex b("trylock.b");
  lock_in_order(a, b);  // a -> b on record
  // try_lock in the opposite order is the sanctioned backoff pattern; it
  // must not add a b -> a edge, so a later a-then-b acquisition stays legal.
  {
    const MutexLock lb(b);
    bool acquired = false;
    try_lock_release(a, &acquired);
    ASSERT_TRUE(acquired);
  }
  lock_in_order(a, b);
  SUCCEED();
}

TEST(LockOrder, DestroyedMutexDropsItsOrderConstraints) {
  Mutex a("destroy.a");
  {
    Mutex b("destroy.b");
    lock_in_order(a, b);
  }  // b destroyed: the a -> b edge must die with it.
  {
    // A fresh mutex may reuse b's stack address; it must start clean and
    // accept the opposite order without tripping a stale-edge cycle.
    Mutex b2("destroy.b2");
    lock_in_order(b2, a);
  }
  SUCCEED();
}

#if NMO_LOCK_ORDER

TEST(LockOrder, ValidatorIsCompiledIn) {
  EXPECT_TRUE(nmo::lockorder::kEnabled);
}

TEST(LockOrder, EdgeCountGrowsWithObservedOrders) {
  const std::size_t before = nmo::lockorder::edge_count();
  Mutex a("edges.a");
  Mutex b("edges.b");
  lock_in_order(a, b);
  EXPECT_GE(nmo::lockorder::edge_count(), before + 1);
}

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, AbbaInversionAbortsWithBothNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("abba.first");
        Mutex b("abba.second");
        lock_in_order(a, b);
        lock_in_order(b, a);  // closes the cycle -> abort
      },
      "cycle detected(.|\n)*abba\\.first(.|\n)*abba\\.second");
}

TEST(LockOrderDeathTest, ThreeLockCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("ring.a");
        Mutex b("ring.b");
        Mutex c("ring.c");
        lock_in_order(a, b);
        lock_in_order(b, c);
        lock_in_order(c, a);  // a -> b -> c -> a
      },
      "cycle detected(.|\n)*ring\\.");
}

TEST(LockOrderDeathTest, CycleDetectedWithoutActualDeadlock) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The two orders run strictly sequentially on separate threads — this
  // program can never deadlock, but the inversion is still a bug waiting
  // for contention, and the validator must flag it.
  EXPECT_DEATH(
      {
        Mutex a("seq.a");
        Mutex b("seq.b");
        std::thread t1([&] { lock_in_order(a, b); });
        t1.join();
        std::thread t2([&] { lock_in_order(b, a); });
        t2.join();
      },
      "cycle detected(.|\n)*seq\\.");
}

TEST(LockOrderDeathTest, RecursiveLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("recursive.a");
        lock_twice(a);
      },
      "recursive lock(.|\n)*recursive\\.a");
}

#else  // !NMO_LOCK_ORDER

TEST(LockOrder, ValidatorIsCompiledOut) {
  EXPECT_FALSE(nmo::lockorder::kEnabled);
  Mutex a("release.a");
  Mutex b("release.b");
  lock_in_order(a, b);
  lock_in_order(b, a);  // inversion is invisible in Release...
  EXPECT_EQ(nmo::lockorder::edge_count(), 0u);  // ...because nothing records
}

#endif  // NMO_LOCK_ORDER

}  // namespace
