// The streaming-capture subsystem: wire framing/codec discipline, the
// block observer tee, sender backpressure, and sender -> collector
// end-to-end parity over loopback TCP - including the failure paths the
// design guarantees (local-capture fallback when the collector is
// unreachable, valid truncated traces on mid-stream disconnect).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/block_sender.hpp"
#include "net/collector.hpp"
#include "net/wire.hpp"
#include "store/region_file.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "workloads/stream.hpp"

namespace nmo::net {
namespace {

namespace fs = std::filesystem;

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nmo_net_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

core::SampleTrace make_trace(std::size_t n, std::uint64_t seed) {
  core::SampleTrace trace;
  Rng rng(seed, 7);
  std::uint64_t t = 100;
  for (std::size_t i = 0; i < n; ++i) {
    core::TraceSample s;
    t += rng.uniform(200);
    s.time_ns = t;
    s.core = static_cast<CoreId>(rng.uniform(8));
    s.vaddr = 0x2000'0000 + rng.uniform(1 << 22);
    s.pc = 0x400000 + rng.uniform(1 << 14);
    s.op = rng.uniform(2) == 0 ? MemOp::kLoad : MemOp::kStore;
    s.level = static_cast<MemLevel>(rng.uniform(4));
    s.latency = static_cast<std::uint16_t>(rng.uniform(2000));
    s.region = static_cast<std::int32_t>(rng.uniform(4)) - 1;
    trace.add(s);
  }
  trace.sort_canonical();
  return trace;
}

/// canonical_less is a total order over the full sample content, so
/// "neither is less" is exact equality.
bool same_sample(const core::TraceSample& a, const core::TraceSample& b) {
  return !core::canonical_less(a, b) && !core::canonical_less(b, a);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

/// Collected session directories under a collector root, sorted.
std::vector<fs::path> session_dirs(const std::string& root) {
  std::vector<fs::path> dirs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory() && entry.path().filename().string().rfind("session-", 0) == 0) {
      dirs.push_back(entry.path());
    }
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

// --- wire framing ------------------------------------------------------------

TEST(Crc32, KnownVector) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(FrameParser, RoundTripAcrossArbitraryChunking) {
  std::vector<std::byte> stream;
  append_frame(stream, FrameType::kHeartbeat, encode_heartbeat(7));
  append_frame(stream, FrameType::kSchedMeta, bytes_of("workers=4\n"));
  Hello hello;
  hello.name = "chunked";
  hello.nonce = 99;
  append_frame(stream, FrameType::kHello, encode_hello(hello));

  // Feed in pathological chunk sizes (1 and 3 bytes) to exercise every
  // resume point of the incremental parser.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}}) {
    FrameParser parser;
    std::vector<Frame> frames;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      parser.feed(stream.data() + off, std::min(chunk, stream.size() - off));
      Frame frame;
      while (parser.next(frame) == FrameParser::Result::kFrame) {
        frames.push_back(frame);
      }
    }
    ASSERT_TRUE(parser.ok()) << parser.error();
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, FrameType::kHeartbeat);
    EXPECT_EQ(frames[1].type, FrameType::kSchedMeta);
    EXPECT_EQ(frames[2].type, FrameType::kHello);
    std::uint64_t progress = 0;
    std::string error;
    ASSERT_TRUE(parse_heartbeat(frames[0].payload, progress, error));
    EXPECT_EQ(progress, 7u);
    Hello parsed;
    ASSERT_TRUE(parse_hello(frames[2].payload, parsed, error));
    EXPECT_EQ(parsed.name, "chunked");
    EXPECT_EQ(parsed.nonce, 99u);
    EXPECT_EQ(parser.frames(), 3u);
    EXPECT_EQ(parser.bytes(), stream.size());
  }
}

TEST(FrameParser, CrcMismatchIsTerminal) {
  std::vector<std::byte> stream;
  append_frame(stream, FrameType::kHeartbeat, encode_heartbeat(1));
  stream.back() ^= std::byte{0x01};  // corrupt the payload after the CRC was computed
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  Frame frame;
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kError);
  EXPECT_FALSE(parser.ok());
  EXPECT_NE(parser.error().find("CRC"), std::string::npos);
  // Terminal: more input does not resurrect the connection.
  parser.feed(stream.data(), stream.size());
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kError);
}

TEST(FrameParser, OversizedLengthFailsBeforePayloadArrives) {
  // A corrupt 4 GiB length must fail from the header alone - never report
  // kNeedMore and stall the connection waiting for a payload that big.
  std::vector<std::byte> header;
  header.push_back(static_cast<std::byte>(FrameType::kBlock));
  const std::uint32_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) header.push_back(static_cast<std::byte>((huge >> (8 * i)) & 0xff));
  for (int i = 0; i < 4; ++i) header.push_back(std::byte{0});
  FrameParser parser;
  parser.feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kError);
  EXPECT_NE(parser.error().find("exceeds"), std::string::npos);
}

TEST(FrameParser, UnknownTypeRejected) {
  std::vector<std::byte> header(kFrameHeaderBytes, std::byte{0});
  header[0] = std::byte{0x7F};
  FrameParser parser;
  parser.feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kError);
}

TEST(FrameParser, TruncatedFrameNeedsMore) {
  std::vector<std::byte> stream;
  append_frame(stream, FrameType::kSchedMeta, bytes_of("k=v\n"));
  FrameParser parser;
  parser.feed(stream.data(), stream.size() - 2);
  Frame frame;
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kNeedMore);
  parser.feed(stream.data() + stream.size() - 2, 2);
  EXPECT_EQ(parser.next(frame), FrameParser::Result::kFrame);
  EXPECT_TRUE(parser.ok());
}

// --- control-frame codecs ----------------------------------------------------

TEST(Hello, RoundTripAndRejections) {
  Hello hello;
  hello.trace_version = 2;
  hello.compress = false;
  hello.index_meta = true;
  hello.kind = kHelloKindControl;
  hello.nonce = 0xDEADBEEFCAFEBABEull;
  hello.name = "fleet-42";
  const auto payload = encode_hello(hello);

  Hello parsed;
  std::string error;
  ASSERT_TRUE(parse_hello(payload, parsed, error)) << error;
  EXPECT_EQ(parsed.trace_version, 2u);
  EXPECT_FALSE(parsed.compress);
  EXPECT_TRUE(parsed.index_meta);
  EXPECT_EQ(parsed.kind, kHelloKindControl);
  EXPECT_EQ(parsed.nonce, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(parsed.name, "fleet-42");

  // Bad magic.
  auto bad = payload;
  bad[0] ^= std::byte{0xFF};
  EXPECT_FALSE(parse_hello(bad, parsed, error));
  EXPECT_NE(error.find("magic"), std::string::npos);
  // Unsupported protocol version.
  bad = payload;
  bad[4] = std::byte{0x7F};
  EXPECT_FALSE(parse_hello(bad, parsed, error));
  // Unknown flag bits.
  bad = payload;
  bad[8] = std::byte{0x80};
  EXPECT_FALSE(parse_hello(bad, parsed, error));
  // Unknown kind.
  bad = payload;
  bad[9] = std::byte{9};
  EXPECT_FALSE(parse_hello(bad, parsed, error));
  // Name length disagreeing with the payload.
  bad = payload;
  bad.pop_back();
  EXPECT_FALSE(parse_hello(bad, parsed, error));
  // Truncation at every prefix must fail cleanly.
  for (std::size_t n = 0; n < payload.size(); ++n) {
    EXPECT_FALSE(parse_hello(std::span(payload.data(), n), parsed, error));
  }
}

TEST(RegionDelta, RoundTripAndRejections) {
  RegionDelta delta;
  delta.first = 3;
  delta.regions.push_back({"heap", 0x1000, 0x2000});
  delta.regions.push_back({"graph edges", 0x8000, 0x9999});
  delta.regions.push_back({"", 0, 0});
  const auto payload = encode_region_delta(delta);

  RegionDelta parsed;
  std::string error;
  ASSERT_TRUE(parse_region_delta(payload, parsed, error)) << error;
  EXPECT_EQ(parsed.first, 3u);
  ASSERT_EQ(parsed.regions.size(), 3u);
  EXPECT_EQ(parsed.regions[0].name, "heap");
  EXPECT_EQ(parsed.regions[0].start, 0x1000u);
  EXPECT_EQ(parsed.regions[0].end, 0x2000u);
  EXPECT_EQ(parsed.regions[1].name, "graph edges");
  EXPECT_EQ(parsed.regions[2].name, "");

  // Trailing bytes are a protocol error.
  auto bad = payload;
  bad.push_back(std::byte{0});
  EXPECT_FALSE(parse_region_delta(bad, parsed, error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
  // Truncation at every prefix must fail cleanly.
  for (std::size_t n = 0; n < payload.size(); ++n) {
    EXPECT_FALSE(parse_region_delta(std::span(payload.data(), n), parsed, error));
  }
  // An absurd declared count is corruption, not a big allocation.
  std::vector<std::byte> absurd;
  absurd.push_back(std::byte{0});  // first = 0
  for (int i = 0; i < 5; ++i) absurd.push_back(std::byte{0xFF});
  absurd.push_back(std::byte{0x0F});
  EXPECT_FALSE(parse_region_delta(absurd, parsed, error));
}

TEST(SessionEndFrame, RoundTripAndRejections) {
  SessionEnd end;
  end.samples = 123456789;
  for (std::size_t i = 0; i < end.digest.size(); ++i) {
    end.digest[i] = static_cast<std::uint8_t>(i * 17);
  }
  end.clean = false;
  const auto payload = encode_session_end(end);
  ASSERT_EQ(payload.size(), 25u);

  SessionEnd parsed;
  std::string error;
  ASSERT_TRUE(parse_session_end(payload, parsed, error)) << error;
  EXPECT_EQ(parsed.samples, 123456789u);
  EXPECT_EQ(parsed.digest, end.digest);
  EXPECT_FALSE(parsed.clean);

  auto bad = payload;
  bad.pop_back();
  EXPECT_FALSE(parse_session_end(bad, parsed, error));
  bad = payload;
  bad.back() = std::byte{2};
  EXPECT_FALSE(parse_session_end(bad, parsed, error));
}

TEST(Fingerprint, HexDigestRoundTrip) {
  std::array<std::uint8_t, 16> digest{};
  for (std::size_t i = 0; i < 16; ++i) digest[i] = static_cast<std::uint8_t>(0xF0 + i);
  const std::string hex = fingerprint_hex(digest);
  EXPECT_EQ(hex.size(), 32u);
  std::array<std::uint8_t, 16> back{};
  ASSERT_TRUE(fingerprint_digest(hex, back));
  EXPECT_EQ(back, digest);
  EXPECT_FALSE(fingerprint_digest("short", back));
  EXPECT_FALSE(fingerprint_digest(std::string(32, 'z'), back));
}

// --- block observer + in-memory block decode ---------------------------------

TEST_F(NetTest, ObservedBlocksDecodeBackToTheWrittenSamples) {
  const auto trace = make_trace(1800, 11);  // > 3 blocks, partial tail
  std::vector<std::vector<std::byte>> blocks;
  std::vector<std::uint32_t> counts;
  {
    store::TraceWriter writer(path("a.nmot"));
    writer.set_block_observer(
        [&](std::span<const std::byte> bytes, std::uint32_t samples, CoreId) {
          blocks.emplace_back(bytes.begin(), bytes.end());
          counts.push_back(samples);
        });
    writer.write_all(trace);
    ASSERT_TRUE(writer.close()) << writer.error();
  }
  ASSERT_EQ(blocks.size(), (trace.samples().size() + 511) / 512);

  std::vector<core::TraceSample> decoded;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::string error;
    ASSERT_TRUE(store::decode_v2_block(blocks[b], decoded, &error)) << error;
    EXPECT_EQ(counts[b], b + 1 < blocks.size()
                             ? 512u
                             : static_cast<std::uint32_t>(trace.samples().size() % 512));
  }
  ASSERT_EQ(decoded.size(), trace.samples().size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_TRUE(same_sample(decoded[i], trace.samples()[i])) << "sample " << i;
  }

  // The collector's ingest invariant: re-adding the decoded samples with
  // the same options reproduces the file byte for byte.
  {
    store::TraceWriter writer(path("b.nmot"));
    for (const auto& s : decoded) writer.add(s);
    ASSERT_TRUE(writer.close());
  }
  EXPECT_EQ(read_file(path("a.nmot")), read_file(path("b.nmot")));
}

TEST_F(NetTest, DecodeV2BlockRejectsCorruption) {
  const auto trace = make_trace(512, 13);
  std::vector<std::byte> block;
  {
    store::TraceWriter writer(path("c.nmot"));
    writer.set_block_observer(
        [&](std::span<const std::byte> bytes, std::uint32_t, CoreId) {
          if (block.empty()) block.assign(bytes.begin(), bytes.end());
        });
    writer.write_all(trace);
    ASSERT_TRUE(writer.close());
  }
  ASSERT_FALSE(block.empty());

  std::vector<core::TraceSample> out;
  std::string error;
  // Wrong marker byte.
  auto bad = block;
  bad[0] = std::byte{0x00};
  EXPECT_FALSE(store::decode_v2_block(bad, out, &error));
  EXPECT_TRUE(out.empty());
  // Truncated at several depths (header, core table, payload).
  for (const std::size_t keep : {std::size_t{1}, std::size_t{4}, block.size() / 2,
                                 block.size() - 1}) {
    EXPECT_FALSE(store::decode_v2_block(std::span(block.data(), keep), out, &error))
        << "kept " << keep;
    EXPECT_TRUE(out.empty());
  }
  // Trailing garbage after a whole block.
  bad = block;
  bad.push_back(std::byte{0xAA});
  EXPECT_FALSE(store::decode_v2_block(bad, out, &error));
  // Random interior corruption: must fail or decode - never crash; `out`
  // must stay untouched on failure.
  Rng rng(17, 3);
  for (int trial = 0; trial < 200; ++trial) {
    bad = block;
    bad[1 + rng.uniform(bad.size() - 1)] ^= static_cast<std::byte>(1 + rng.uniform(255));
    out.clear();
    if (!store::decode_v2_block(bad, out, &error)) EXPECT_TRUE(out.empty());
  }
}

// --- sender <-> collector over loopback --------------------------------------

TEST_F(NetTest, LoopbackSessionIsByteIdenticalToLocalCapture) {
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  collector_config.once = 1;
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  const auto trace = make_trace(2600, 23);
  std::vector<core::AddrRegion> regions{{"heap", 0x1000, 0x9000}, {"stack", 0xF000, 0xFFFF}};

  StreamConfig stream;
  stream.port = collector.port();
  StreamingTraceSink sink(stream, "loopback", store::TraceWriter::Options{}, 77);
  ASSERT_TRUE(sink.connect());
  {
    store::TraceWriter writer(path("local.nmot"));
    sink.attach(writer);
    sink.send_regions(regions);
    writer.write_all(trace);
    ASSERT_TRUE(writer.close()) << writer.error();
    EXPECT_TRUE(sink.finish(writer.samples_written(), writer.fingerprint()));
  }
  EXPECT_FALSE(sink.fallback());
  const auto sent = sink.stats();
  EXPECT_EQ(sent.blocks_sent, (trace.samples().size() + 511) / 512);
  EXPECT_EQ(sent.blocks_dropped, 0u);

  ASSERT_TRUE(collector.wait_done(10'000));
  collector.stop();

  const auto dirs = session_dirs(collector_config.root);
  ASSERT_EQ(dirs.size(), 1u);
  const std::string collected_trace = (dirs[0] / "trace.nmot").string();
  // The collected artifact is byte-identical to the sender's local file.
  EXPECT_EQ(read_file(collected_trace), read_file(path("local.nmot")));
  // And the region sidecar round-tripped through the delta frame.
  const auto collected_regions =
      store::read_region_file(store::region_path_for(collected_trace));
  ASSERT_TRUE(collected_regions.has_value());
  ASSERT_EQ(collected_regions->size(), 2u);
  EXPECT_EQ((*collected_regions)[0].name, "heap");
  EXPECT_EQ((*collected_regions)[1].name, "stack");
  // session.meta records a clean stream with the right identity.
  const auto meta =
      store::read_metadata_file((dirs[0] / std::string(store::kSessionMetaFile)).string());
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("state"), "done");
  EXPECT_EQ(meta->at("stream_state"), "clean");
  EXPECT_EQ(meta->at("streamed"), "1");
  EXPECT_EQ(meta->at("stream_nonce"), "77");
  EXPECT_EQ(meta->at("samples"), std::to_string(trace.samples().size()));

  const auto stats = collector.stats();
  EXPECT_EQ(stats.sessions_clean, 1u);
  EXPECT_EQ(stats.sessions_truncated, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(NetTest, ConcurrentSendersAllCollectByteIdentical) {
  constexpr int kSenders = 4;
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  collector_config.once = kSenders;
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  std::vector<std::string> local_paths(kSenders);
  std::vector<std::thread> senders;
  for (int i = 0; i < kSenders; ++i) {
    local_paths[i] = path("local-" + std::to_string(i) + ".nmot");
    senders.emplace_back([&, i] {
      const auto trace = make_trace(1400 + 300 * static_cast<std::size_t>(i),
                                    100 + static_cast<std::uint64_t>(i));
      StreamConfig stream;
      stream.port = collector.port();
      StreamingTraceSink sink(stream, "sender-" + std::to_string(i),
                              store::TraceWriter::Options{},
                              static_cast<std::uint64_t>(i));
      ASSERT_TRUE(sink.connect());
      store::TraceWriter writer(local_paths[static_cast<std::size_t>(i)]);
      sink.attach(writer);
      writer.write_all(trace);
      ASSERT_TRUE(writer.close());
      EXPECT_TRUE(sink.finish(writer.samples_written(), writer.fingerprint()));
      EXPECT_FALSE(sink.fallback());
    });
  }
  for (auto& t : senders) t.join();
  ASSERT_TRUE(collector.wait_done(20'000));
  collector.stop();

  const auto dirs = session_dirs(collector_config.root);
  ASSERT_EQ(dirs.size(), static_cast<std::size_t>(kSenders));
  int matched = 0;
  for (const auto& dir : dirs) {
    const std::string name = dir.filename().string();
    for (int i = 0; i < kSenders; ++i) {
      if (name.find("-sender-" + std::to_string(i)) == std::string::npos) continue;
      EXPECT_EQ(read_file((dir / "trace.nmot").string()),
                read_file(local_paths[static_cast<std::size_t>(i)]))
          << name;
      ++matched;
    }
  }
  EXPECT_EQ(matched, kSenders);
  EXPECT_EQ(collector.stats().sessions_clean, static_cast<std::uint64_t>(kSenders));
}

TEST_F(NetTest, MidStreamDisconnectFinalizesValidTruncatedTrace) {
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  collector_config.once = 1;
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  const auto trace = make_trace(2048, 31);  // exactly 4 full blocks
  {
    StreamConfig stream;
    stream.port = collector.port();
    StreamingTraceSink sink(stream, "dying", store::TraceWriter::Options{}, 5);
    ASSERT_TRUE(sink.connect());
    store::TraceWriter writer(path("local.nmot"));
    sink.attach(writer);
    writer.write_all(trace);
    ASSERT_TRUE(writer.close());
    // Make sure at least one block actually reached the collector (abort
    // condemns anything still queued, hello included), then drop the
    // connection with no end frame - the forced mid-stream disconnect.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (collector.stats().blocks < 1 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(collector.stats().blocks, 1u);
    sink.abort();
  }
  ASSERT_TRUE(collector.wait_done(10'000));
  collector.stop();

  const auto dirs = session_dirs(collector_config.root);
  ASSERT_EQ(dirs.size(), 1u);
  const auto meta =
      store::read_metadata_file((dirs[0] / std::string(store::kSessionMetaFile)).string());
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("stream_state"), "truncated");
  EXPECT_EQ(collector.stats().sessions_truncated, 1u);

  // The truncated artifact is a VALID trace of a prefix of the stream:
  // full read passes (footer count + digest over what arrived).
  store::TraceReader reader((dirs[0] / "trace.nmot").string());
  const auto collected = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  const std::size_t n = collected.samples().size();
  EXPECT_EQ(n % 512, 0u);  // whole blocks only
  EXPECT_LE(n, trace.samples().size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_sample(collected.samples()[i], trace.samples()[i])) << "sample " << i;
  }
}

TEST_F(NetTest, UnreachableCollectorFallsBackToLocalCapture) {
  // Bind-then-close to get a port that refuses connections.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  StreamConfig stream;
  stream.port = dead_port;
  stream.connect_timeout_ms = 300;
  StreamingTraceSink sink(stream, "orphan", store::TraceWriter::Options{});
  EXPECT_FALSE(sink.connect());
  EXPECT_TRUE(sink.fallback());
  EXPECT_FALSE(sink.streaming());

  // The tee is inert; the local capture path is entirely unaffected.
  const auto trace = make_trace(700, 41);
  store::TraceWriter writer(path("local.nmot"));
  sink.attach(writer);
  sink.send_regions({{"heap", 0, 0x1000}});
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());
  EXPECT_FALSE(sink.finish(writer.samples_written(), writer.fingerprint()));

  store::TraceReader reader(path("local.nmot"));
  const auto back = reader.read_all();
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(back.samples().size(), trace.samples().size());
}

TEST_F(NetTest, DropOldestPolicyDropsBlocksUnderBackpressure) {
  // A listener that never accepts: the TCP backlog completes the connect,
  // then nothing drains the socket, so tiny send buffers fill and the
  // bounded ring must evict.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  StreamConfig stream;
  stream.port = ntohs(addr.sin_port);
  stream.ring_capacity = 4;
  stream.policy = StreamConfig::Backpressure::kDropOldest;
  stream.heartbeat_interval_ms = 0;
  stream.send_buffer_bytes = 4096;
  BlockSender sender(stream);
  Hello hello;
  hello.name = "pressure";
  ASSERT_TRUE(sender.connect(hello));

  std::vector<std::byte> block(8 * 1024, std::byte{0x5A});
  for (int i = 0; i < 200; ++i) sender.send_block(block);
  const auto stats = sender.stats();
  EXPECT_GT(stats.blocks_dropped, 0u);
  EXPECT_EQ(stats.blocks_enqueued, 200u);
  sender.abort();
  ::close(listener);
}

TEST_F(NetTest, SchedulerMetaMergesAcrossSenders) {
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  StreamConfig stream;
  stream.port = collector.port();
  EXPECT_TRUE(stream_scheduler_meta(
      stream, "workers=4\npolicy=fifo\nsubmitted=10\ncompleted=9\npeak_occupancy=3\n"
              "queue_wait_ns_max=500\n"));
  EXPECT_TRUE(stream_scheduler_meta(
      stream, "workers=2\npolicy=priority\nsubmitted=5\ncompleted=5\npeak_occupancy=2\n"
              "queue_wait_ns_max=900\n"));

  // The merge happens at ingest; give the poll loop a moment to drain both.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (collector.stats().meta_snapshots < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  collector.stop();

  const auto merged = store::read_metadata_file(collector_config.root + "/" +
                                                std::string(store::kSchedulerMetaFile));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->at("workers"), "6");            // counters sum
  EXPECT_EQ(merged->at("submitted"), "15");
  EXPECT_EQ(merged->at("completed"), "14");
  EXPECT_EQ(merged->at("peak_occupancy"), "3");     // peaks take the max
  EXPECT_EQ(merged->at("queue_wait_ns_max"), "900");
  EXPECT_EQ(merged->at("policy"), "priority");      // labels are last-wins

  const auto meta = store::read_metadata_file(collector_config.root + "/collector.meta");
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("meta_snapshots"), "2");
  EXPECT_EQ(meta->at("protocol_errors"), "0");
}

TEST_F(NetTest, CollectorRejectsGarbageWithoutDyingAndKeepsServing) {
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  collector_config.once = 1;
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  // A non-protocol peer: raw garbage instead of a hello frame.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(collector.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
    ::close(fd);
  }

  // A real session must still collect cleanly afterwards.
  const auto trace = make_trace(600, 55);
  StreamConfig stream;
  stream.port = collector.port();
  StreamingTraceSink sink(stream, "survivor", store::TraceWriter::Options{});
  ASSERT_TRUE(sink.connect());
  store::TraceWriter writer(path("local.nmot"));
  sink.attach(writer);
  writer.write_all(trace);
  ASSERT_TRUE(writer.close());
  EXPECT_TRUE(sink.finish(writer.samples_written(), writer.fingerprint()));

  ASSERT_TRUE(collector.wait_done(10'000));
  collector.stop();
  const auto stats = collector.stats();
  EXPECT_GE(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.sessions_clean, 1u);
  const auto dirs = session_dirs(collector_config.root);
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(read_file((dirs[0] / "trace.nmot").string()), read_file(path("local.nmot")));
}

TEST_F(NetTest, HeartbeatsCarryDecodeProgress) {
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  StreamConfig stream;
  stream.port = collector.port();
  stream.heartbeat_interval_ms = 20;
  StreamingTraceSink sink(stream, "beating", store::TraceWriter::Options{});
  ASSERT_TRUE(sink.connect());
  sink.note_progress(4096);

  // Wait on both ends: the collector can briefly be ahead of the
  // sender's own counter (stats update follows the socket write).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((collector.stats().heartbeats < 2 || sink.stats().heartbeats < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(collector.stats().heartbeats, 2u);
  EXPECT_GE(sink.stats().heartbeats, 2u);
  sink.abort();
  collector.stop();
}

// --- full runner end-to-end --------------------------------------------------

TEST_F(NetTest, RunSessionsStreamedMatchesLocalArtifacts) {
  constexpr int kJobs = 2;
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  collector_config.once = kJobs;
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  core::NmoConfig nmo;
  nmo.enable = true;
  nmo.mode = core::Mode::kAll;
  nmo.period = 512;
  sim::EngineConfig engine;
  engine.threads = 2;
  engine.machine.hierarchy.cores = 2;

  StreamConfig stream;
  stream.port = collector.port();

  std::vector<store::SessionJob> jobs(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    jobs[static_cast<std::size_t>(i)].name = "e2e-" + std::to_string(i);
    jobs[static_cast<std::size_t>(i)].nmo = nmo;
    jobs[static_cast<std::size_t>(i)].engine = engine;
    jobs[static_cast<std::size_t>(i)].with_baseline = false;
    jobs[static_cast<std::size_t>(i)].stream = stream;
    jobs[static_cast<std::size_t>(i)].make_workload = [i] {
      wl::StreamConfig cfg;
      cfg.array_elems = 1u << (13 + i);
      cfg.iterations = 1;
      return std::make_unique<wl::Stream>(cfg);
    };
  }

  store::SessionStore local(path("local-store"));
  const auto results = store::run_sessions(local, jobs).results;
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));
  for (const auto& result : results) {
    ASSERT_TRUE(result.error.empty()) << result.error;
    EXPECT_TRUE(result.stream.streamed);
    EXPECT_FALSE(result.stream.stream_fallback);
    EXPECT_EQ(result.stream.stream_state, "clean");
    EXPECT_GT(result.stream.stream_blocks_sent, 0u);
    EXPECT_EQ(result.stream.stream_blocks_dropped, 0u);
    EXPECT_EQ(result.report.stream_blocks_sent, result.stream.stream_blocks_sent);
    EXPECT_FALSE(result.report.stream_fallback);
    // session.meta surfaces the stream outcome.
    const auto meta = store::read_metadata_file(result.session.dir + "/" +
                                                std::string(store::kSessionMetaFile));
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->at("streamed"), "1");
    EXPECT_EQ(meta->at("stream_state"), "clean");
  }

  ASSERT_TRUE(collector.wait_done(30'000));
  // Let the post-run control stream (scheduler.meta snapshot) land too.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (collector.stats().meta_snapshots < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  collector.stop();

  // Every collected trace is byte-identical to its local counterpart.
  const auto dirs = session_dirs(collector_config.root);
  ASSERT_EQ(dirs.size(), static_cast<std::size_t>(kJobs));
  int matched = 0;
  for (const auto& dir : dirs) {
    const std::string name = dir.filename().string();
    for (const auto& result : results) {
      if (name.find("-" + result.session.name) == std::string::npos) continue;
      EXPECT_EQ(read_file((dir / "trace.nmot").string()), read_file(result.session.trace_path))
          << name;
      const auto meta = store::read_metadata_file(
          (dir / std::string(store::kSessionMetaFile)).string());
      ASSERT_TRUE(meta.has_value());
      EXPECT_EQ(meta->at("fingerprint"), result.fingerprint);
      EXPECT_EQ(meta->at("stream_state"), "clean");
      ++matched;
    }
  }
  EXPECT_EQ(matched, kJobs);

  // The fleet admission view arrived over the control stream.
  const auto merged = store::read_metadata_file(collector_config.root + "/" +
                                                std::string(store::kSchedulerMetaFile));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->at("submitted"), std::to_string(kJobs));
}

TEST_F(NetTest, CollectorStopMidRunLeavesVerifiableTruncatedArtifact) {
  CollectorConfig collector_config;
  collector_config.root = path("collected");
  Collector collector(collector_config);
  std::string error;
  ASSERT_TRUE(collector.start(&error)) << error;

  const auto trace = make_trace(4096, 61);
  StreamConfig stream;
  stream.port = collector.port();
  StreamingTraceSink sink(stream, "interrupted", store::TraceWriter::Options{});
  ASSERT_TRUE(sink.connect());
  store::TraceWriter writer(path("local.nmot"));
  sink.attach(writer);
  writer.write_all(trace);
  // Wait until at least one block has actually been ingested, then kill
  // the collector while the stream is mid-flight (before finish).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (collector.stats().blocks < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(collector.stats().blocks, 1u);
  collector.stop();
  ASSERT_TRUE(writer.close());
  sink.finish(writer.samples_written(), writer.fingerprint());  // may fail; must not hang

  // Local capture is complete regardless of the collector's fate.
  store::TraceReader local_reader(path("local.nmot"));
  const auto local = local_reader.read_all();
  ASSERT_TRUE(local_reader.ok());
  EXPECT_EQ(local.samples().size(), trace.samples().size());

  // Whatever the collector ingested before stop() is a valid trace.
  const auto dirs = session_dirs(collector_config.root);
  ASSERT_EQ(dirs.size(), 1u);
  store::TraceReader reader((dirs[0] / "trace.nmot").string());
  (void)reader.read_all();
  EXPECT_TRUE(reader.ok()) << reader.error();
}

}  // namespace
}  // namespace nmo::net
