// Set-associative LRU cache model.
#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nmo::mem {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 64B lines = 512 B.
  return CacheConfig{.size_bytes = 512, .associativity = 2, .line_size = 64};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x103f, false).hit);   // same line
  EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
}

TEST(Cache, StatsCount) {
  Cache c(small_cache());
  c.access(0, false);
  c.access(0, false);
  c.access(64, true);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_EQ(c.stats().accesses(), 3u);
  EXPECT_NEAR(c.stats().hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Cache, LruEviction) {
  Cache c(small_cache());
  // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256).
  const Addr a = 0x0, b = 0x100, d = 0x200;
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);  // a is MRU, b is LRU
  c.access(d, false);  // evicts b
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionWritesBack) {
  Cache c(small_cache());
  c.access(0x0, true);  // dirty
  c.access(0x100, false);
  const auto out = c.access(0x200, false);  // evicts dirty 0x0
  EXPECT_TRUE(out.writeback);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache c(small_cache());
  c.access(0x0, false);
  c.access(0x100, false);
  const auto out = c.access(0x200, false);
  EXPECT_FALSE(out.writeback);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, StoreHitMarksDirty) {
  Cache c(small_cache());
  c.access(0x0, false);
  c.access(0x0, true);  // hit, now dirty
  c.access(0x100, false);
  c.access(0x200, false);  // evict 0x0
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidateAllCountsDirty) {
  Cache c(small_cache());
  c.access(0x0, true);
  c.access(0x40, false);
  EXPECT_EQ(c.invalidate_all(), 1u);
  EXPECT_FALSE(c.contains(0x0));
  EXPECT_FALSE(c.access(0x0, false).hit);
}

TEST(Cache, ContainsHasNoSideEffects) {
  Cache c(small_cache());
  c.access(0x0, false);
  const auto hits = c.stats().hits;
  EXPECT_TRUE(c.contains(0x0));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_EQ(c.stats().hits, hits);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{.size_bytes = 100, .associativity = 2, .line_size = 60}),
               std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{.size_bytes = 384, .associativity = 2, .line_size = 64}),
               std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{.size_bytes = 512, .associativity = 0, .line_size = 64}),
               std::invalid_argument);
}

TEST(Cache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  Cache c(CacheConfig{.size_bytes = 64 * 1024, .associativity = 4, .line_size = 64});
  const std::size_t lines = 256;  // 16 KiB working set
  for (std::size_t i = 0; i < lines; ++i) c.access(i * 64, false);
  c.reset_stats();
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < lines; ++i) c.access(i * 64, false);
  }
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_EQ(c.stats().hits, 4 * lines);
}

TEST(Cache, WorkingSetLargerThanCacheThrashesWithLru) {
  // Sequential sweep over 2x the cache size with LRU -> every access misses.
  Cache c(CacheConfig{.size_bytes = 4096, .associativity = 4, .line_size = 64});
  const std::size_t lines = 2 * 4096 / 64;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < lines; ++i) c.access(i * 64, false);
  }
  EXPECT_EQ(c.stats().hits, 0u);
}

// Property sweep: hits + misses == accesses for random address streams over
// multiple geometries.
class CacheProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheProperty, CountersAreConsistent) {
  const auto [size_kb, assoc] = GetParam();
  Cache c(CacheConfig{.size_bytes = static_cast<std::uint64_t>(size_kb) * 1024,
                      .associativity = static_cast<std::uint32_t>(assoc),
                      .line_size = 64});
  std::uint64_t x = 12345;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    c.access((x >> 16) % (1 << 20), (x & 1) != 0);
  }
  EXPECT_EQ(c.stats().hits + c.stats().misses, static_cast<std::uint64_t>(n));
  EXPECT_LE(c.stats().writebacks, c.stats().evictions);
  EXPECT_LE(c.stats().evictions, c.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheProperty,
                         ::testing::Combine(::testing::Values(4, 64, 1024),
                                            ::testing::Values(1, 4, 16)));

}  // namespace
}  // namespace nmo::mem
