// Negative-compile test: returning with a capability still held (no scoped
// wrapper, no release on the exit path) must be rejected by
// -Werror=thread-safety.
#include "common/thread_safety.hpp"

nmo::core::Mutex g_mutex{"compile_fail.leak"};

void leak() {
  g_mutex.lock();
  // missing g_mutex.unlock(): mutex is still held at end of function
}

int main() {
  leak();
  return 0;
}
