// Negative-compile test: calling an NMO_REQUIRES function without holding
// the required mutex must be rejected by -Werror=thread-safety.
#include "common/thread_safety.hpp"

class Widget {
 public:
  void touch() { bump(); }  // caller holds nothing: analysis must reject

 private:
  void bump() NMO_REQUIRES(mutex_) { ++count_; }

  nmo::core::Mutex mutex_{"compile_fail.widget"};
  int count_ NMO_GUARDED_BY(mutex_) = 0;
};

int main() {
  Widget w;
  w.touch();
  return 0;
}
