// Negative-compile test: reading an NMO_GUARDED_BY member without holding
// its mutex must be rejected by -Werror=thread-safety.
#include "common/thread_safety.hpp"

class Counter {
 public:
  int read() const { return value_; }  // no lock held: analysis must reject

 private:
  mutable nmo::core::Mutex mutex_{"compile_fail.counter"};
  int value_ NMO_GUARDED_BY(mutex_) = 0;
};

int main() {
  Counter c;
  return c.read();
}
