// Size parsing/formatting used by Table I configuration handling.
#include "common/units.hpp"

#include <gtest/gtest.h>

namespace nmo {
namespace {

TEST(ParseSize, PlainBytes) {
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_EQ(parse_size("0"), 0u);
}

TEST(ParseSize, Suffixes) {
  EXPECT_EQ(parse_size("4K"), 4 * kKiB);
  EXPECT_EQ(parse_size("4k"), 4 * kKiB);
  EXPECT_EQ(parse_size("4KiB"), 4 * kKiB);
  EXPECT_EQ(parse_size("2M"), 2 * kMiB);
  EXPECT_EQ(parse_size("2MB"), 2 * kMiB);
  EXPECT_EQ(parse_size("1G"), kGiB);
  EXPECT_EQ(parse_size("1GiB"), kGiB);
  EXPECT_EQ(parse_size("16B"), 16u);
}

TEST(ParseSize, Whitespace) {
  EXPECT_EQ(parse_size("  8M "), 8 * kMiB);
  EXPECT_EQ(parse_size("8 M"), 8 * kMiB);
}

TEST(ParseSize, Malformed) {
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("abc").has_value());
  EXPECT_FALSE(parse_size("12X").has_value());
  EXPECT_FALSE(parse_size("-5M").has_value());
}

TEST(ParseSize, OverflowRejected) {
  EXPECT_FALSE(parse_size("99999999999999999999G").has_value());
  EXPECT_FALSE(parse_size("18446744073709551615G").has_value());
}

TEST(FormatSize, HumanReadable) {
  EXPECT_EQ(format_size(0), "0 B");
  EXPECT_EQ(format_size(512), "512.0 B");
  EXPECT_EQ(format_size(kKiB), "1.0 KiB");
  EXPECT_EQ(format_size(kMiB + kMiB / 2), "1.5 MiB");
  EXPECT_EQ(format_size(2 * kGiB), "2.0 GiB");
}

TEST(Units, SimPageSizeMatchesPaperTestbed) {
  // Section IV-A: "on ARM processors in this work 64KB pages are used".
  EXPECT_EQ(kSimPageSize, 64 * kKiB);
}

TEST(ParseSize, FractionalValues) {
  EXPECT_EQ(parse_size("1.5M"), kMiB + kMiB / 2);
  EXPECT_EQ(parse_size("0.5G"), kGiB / 2);
  EXPECT_EQ(parse_size("2.0 KiB"), 2 * kKiB);
  EXPECT_FALSE(parse_size("4.K").has_value());
}

TEST(ParseSize, RoundTripThroughFormat) {
  for (std::uint64_t v : {kKiB, 4 * kKiB, kMiB, 64 * kMiB, kGiB}) {
    const auto parsed = parse_size(format_size(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

}  // namespace
}  // namespace nmo
