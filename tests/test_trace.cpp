// SampleTrace edge cases: append/sort_canonical under empty traces,
// duplicate samples, already-sorted input, and self-append.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "core/trace.hpp"

namespace nmo::core {
namespace {

TraceSample sample(std::uint64_t t, CoreId core, Addr vaddr = 0x1000) {
  TraceSample s;
  s.time_ns = t;
  s.core = core;
  s.vaddr = vaddr;
  s.pc = 0x400000 + (vaddr & 0xfff);
  s.latency = 10;
  return s;
}

std::string csv_of(const SampleTrace& t) {
  std::ostringstream out;
  t.write_csv(out);
  return out.str();
}

TEST(SampleTraceEdge, SortCanonicalOnEmptyTrace) {
  SampleTrace t;
  t.sort_canonical();  // must not crash
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.fingerprint(), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(SampleTraceEdge, AppendEmptyToEmpty) {
  SampleTrace a, b;
  a.append(b);
  EXPECT_TRUE(a.empty());
}

TEST(SampleTraceEdge, AppendEmptyLeavesTraceUnchanged) {
  SampleTrace a, empty;
  a.add(sample(1, 0));
  const std::string before = csv_of(a);
  a.append(empty);
  EXPECT_EQ(csv_of(a), before);
}

TEST(SampleTraceEdge, AppendToEmptyCopiesAll) {
  SampleTrace a, b;
  b.add(sample(2, 1));
  b.add(sample(1, 0));
  a.append(b);
  EXPECT_EQ(csv_of(a), csv_of(b));
}

TEST(SampleTraceEdge, SelfAppendDuplicatesSamples) {
  SampleTrace t;
  // Enough samples that insert-into-self would reallocate mid-copy.
  for (std::uint64_t i = 0; i < 100; ++i) t.add(sample(i, static_cast<CoreId>(i % 4)));
  const std::string before = csv_of(t);
  t.append(t);
  ASSERT_EQ(t.size(), 200u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(t.samples()[i].time_ns, t.samples()[100 + i].time_ns);
    EXPECT_EQ(t.samples()[i].core, t.samples()[100 + i].core);
  }
  // The first half is still the original trace.
  SampleTrace head;
  for (std::size_t i = 0; i < 100; ++i) head.add(t.samples()[i]);
  EXPECT_EQ(csv_of(head), before);
}

TEST(SampleTraceEdge, DuplicateSamplesSurviveCanonicalSort) {
  SampleTrace t;
  t.add(sample(5, 1));
  t.add(sample(5, 1));
  t.add(sample(1, 2));
  t.add(sample(5, 1));
  t.sort_canonical();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.samples()[0].time_ns, 1u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(t.samples()[i].time_ns, 5u);
    EXPECT_EQ(t.samples()[i].core, 1u);
  }
}

TEST(SampleTraceEdge, AlreadySortedInputIsUnchanged) {
  SampleTrace t;
  t.add(sample(1, 0));
  t.add(sample(1, 1));
  t.add(sample(2, 0, 0x1000));
  t.add(sample(2, 0, 0x2000));
  const std::string before = csv_of(t);
  const std::string md5_before = t.fingerprint();
  t.sort_canonical();
  EXPECT_EQ(csv_of(t), before);
  EXPECT_EQ(t.fingerprint(), md5_before);
}

TEST(SampleTraceEdge, CanonicalOrderIsPermutationInvariant) {
  std::vector<TraceSample> samples;
  for (std::uint64_t i = 0; i < 64; ++i) {
    samples.push_back(sample(i / 3, static_cast<CoreId>(i % 5), 0x1000 + 8 * (i % 7)));
  }
  SampleTrace a;
  for (const auto& s : samples) a.add(s);
  std::mt19937 rng(7);
  std::shuffle(samples.begin(), samples.end(), rng);
  SampleTrace b;
  for (const auto& s : samples) b.add(s);

  a.sort_canonical();
  b.sort_canonical();
  EXPECT_EQ(csv_of(a), csv_of(b));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(SampleTraceEdge, CanonicalLessIsStrictTotalOrder) {
  const TraceSample a = sample(1, 0);
  const TraceSample b = sample(1, 1);
  EXPECT_FALSE(canonical_less(a, a));
  EXPECT_TRUE(canonical_less(a, b));
  EXPECT_FALSE(canonical_less(b, a));
  // Ties on every field compare equal in both directions.
  const TraceSample c = a;
  EXPECT_FALSE(canonical_less(a, c));
  EXPECT_FALSE(canonical_less(c, a));
}

}  // namespace
}  // namespace nmo::core
