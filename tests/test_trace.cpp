// SampleTrace edge cases (append/sort_canonical under empty traces,
// duplicate samples, already-sorted input, self-append) plus the
// corrupt-trace decode-robustness suite: every flavor of on-disk damage -
// truncation mid-block and mid-sample, overlong varints, out-of-range
// region ids, bad block markers, tampered MD5 footers, appended garbage -
// must fail the read with a message and never silently drop or invent a
// sample, for both format v1 and v2 fixtures, with probe() agreeing with
// the full read on every fixture.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "core/trace.hpp"
#include "store/trace_file.hpp"

namespace nmo::core {
namespace {

TraceSample sample(std::uint64_t t, CoreId core, Addr vaddr = 0x1000) {
  TraceSample s;
  s.time_ns = t;
  s.core = core;
  s.vaddr = vaddr;
  s.pc = 0x400000 + (vaddr & 0xfff);
  s.latency = 10;
  return s;
}

std::string csv_of(const SampleTrace& t) {
  std::ostringstream out;
  t.write_csv(out);
  return out.str();
}

TEST(SampleTraceEdge, SortCanonicalOnEmptyTrace) {
  SampleTrace t;
  t.sort_canonical();  // must not crash
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.fingerprint(), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(SampleTraceEdge, AppendEmptyToEmpty) {
  SampleTrace a, b;
  a.append(b);
  EXPECT_TRUE(a.empty());
}

TEST(SampleTraceEdge, AppendEmptyLeavesTraceUnchanged) {
  SampleTrace a, empty;
  a.add(sample(1, 0));
  const std::string before = csv_of(a);
  a.append(empty);
  EXPECT_EQ(csv_of(a), before);
}

TEST(SampleTraceEdge, AppendToEmptyCopiesAll) {
  SampleTrace a, b;
  b.add(sample(2, 1));
  b.add(sample(1, 0));
  a.append(b);
  EXPECT_EQ(csv_of(a), csv_of(b));
}

TEST(SampleTraceEdge, SelfAppendDuplicatesSamples) {
  SampleTrace t;
  // Enough samples that insert-into-self would reallocate mid-copy.
  for (std::uint64_t i = 0; i < 100; ++i) t.add(sample(i, static_cast<CoreId>(i % 4)));
  const std::string before = csv_of(t);
  t.append(t);
  ASSERT_EQ(t.size(), 200u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(t.samples()[i].time_ns, t.samples()[100 + i].time_ns);
    EXPECT_EQ(t.samples()[i].core, t.samples()[100 + i].core);
  }
  // The first half is still the original trace.
  SampleTrace head;
  for (std::size_t i = 0; i < 100; ++i) head.add(t.samples()[i]);
  EXPECT_EQ(csv_of(head), before);
}

TEST(SampleTraceEdge, DuplicateSamplesSurviveCanonicalSort) {
  SampleTrace t;
  t.add(sample(5, 1));
  t.add(sample(5, 1));
  t.add(sample(1, 2));
  t.add(sample(5, 1));
  t.sort_canonical();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.samples()[0].time_ns, 1u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(t.samples()[i].time_ns, 5u);
    EXPECT_EQ(t.samples()[i].core, 1u);
  }
}

TEST(SampleTraceEdge, AlreadySortedInputIsUnchanged) {
  SampleTrace t;
  t.add(sample(1, 0));
  t.add(sample(1, 1));
  t.add(sample(2, 0, 0x1000));
  t.add(sample(2, 0, 0x2000));
  const std::string before = csv_of(t);
  const std::string md5_before = t.fingerprint();
  t.sort_canonical();
  EXPECT_EQ(csv_of(t), before);
  EXPECT_EQ(t.fingerprint(), md5_before);
}

TEST(SampleTraceEdge, CanonicalOrderIsPermutationInvariant) {
  std::vector<TraceSample> samples;
  for (std::uint64_t i = 0; i < 64; ++i) {
    samples.push_back(sample(i / 3, static_cast<CoreId>(i % 5), 0x1000 + 8 * (i % 7)));
  }
  SampleTrace a;
  for (const auto& s : samples) a.add(s);
  std::mt19937 rng(7);
  std::shuffle(samples.begin(), samples.end(), rng);
  SampleTrace b;
  for (const auto& s : samples) b.add(s);

  a.sort_canonical();
  b.sort_canonical();
  EXPECT_EQ(csv_of(a), csv_of(b));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(SampleTraceEdge, CanonicalLessIsStrictTotalOrder) {
  const TraceSample a = sample(1, 0);
  const TraceSample b = sample(1, 1);
  EXPECT_FALSE(canonical_less(a, a));
  EXPECT_TRUE(canonical_less(a, b));
  EXPECT_FALSE(canonical_less(b, a));
  // Ties on every field compare equal in both directions.
  const TraceSample c = a;
  EXPECT_FALSE(canonical_less(a, c));
  EXPECT_FALSE(canonical_less(c, a));
}

}  // namespace
}  // namespace nmo::core

namespace nmo::store {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------- corrupt-trace fixtures --
//
// Parameterized over the on-disk format version: every corruption must be
// rejected by the v1 and the v2 decode paths alike, and probe() must agree
// with the full read on every fixture (satellite of ISSUE 5: probe used to
// skip the end-of-stream checks read_footer makes).

class CorruptTraceTest : public ::testing::TestWithParam<std::uint16_t> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nmo_corrupt_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::uint16_t version() const { return GetParam(); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Writes a deterministic multi-block trace (several cores interleaved,
  /// enough samples for more than one v2 block) in the parameterized
  /// version.  Compression is off so payload bytes sit at predictable
  /// offsets for surgical corruption.
  std::string write_fixture(const std::string& name, std::size_t samples = 1200) {
    core::SampleTrace trace;
    for (std::size_t i = 0; i < samples; ++i) {
      core::TraceSample s;
      s.time_ns = 1000 + 17 * i;
      s.core = static_cast<CoreId>(i % 4);
      s.vaddr = 0x10000000 + 64 * i;
      s.pc = 0x400000 + 4 * (i % 16);
      s.latency = static_cast<std::uint16_t>(10 + i % 50);
      s.region = static_cast<std::int32_t>(i % 3) - 1;
      trace.add(s);
    }
    const std::string p = path(name);
    TraceWriter writer(p, TraceWriter::Options{version(), false});
    writer.write_all(trace);
    EXPECT_TRUE(writer.close()) << writer.error();
    return p;
  }

  static std::vector<char> slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  static void dump(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// The shared oracle: a corrupt file must fail the full read with a
  /// message, surrender no samples, and fail probe() the same way.
  static void expect_rejected(const std::string& p) {
    TraceReader reader(p);
    const auto all = reader.read_all();
    EXPECT_FALSE(reader.ok()) << p << ": corrupt file read cleanly";
    EXPECT_FALSE(reader.error().empty()) << p << ": rejection carries no message";
    EXPECT_TRUE(all.empty()) << p << ": samples from a corrupt file were not discarded";
    EXPECT_FALSE(TraceReader::probe(p).has_value())
        << p << ": probe accepts what the full read rejects";
  }

  fs::path dir_;
};

TEST_P(CorruptTraceTest, IntactFixtureReadsCleanly) {
  // Baseline: the fixture itself must be valid, or every case below would
  // pass vacuously.
  const std::string p = write_fixture("ok.nmot");
  TraceReader reader(p);
  const auto all = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(all.size(), 1200u);
  EXPECT_EQ(reader.info().version, version());
  const auto probed = TraceReader::probe(p);
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(probed->samples, 1200u);
  EXPECT_EQ(probed->fingerprint, reader.info().fingerprint);
}

TEST_P(CorruptTraceTest, TruncatedMidBlockIsRejected) {
  const std::string p = write_fixture("t.nmot");
  // Cut deep inside the block region (well before the footer): the open
  // block can never complete.
  fs::resize_file(p, fs::file_size(p) / 2);
  expect_rejected(p);
}

TEST_P(CorruptTraceTest, TruncatedMidSampleIsRejected) {
  const std::string p = write_fixture("t.nmot");
  // A handful of bytes past the first block header lands inside the first
  // sample's varints (v1) / inside the block payload (v2).
  fs::resize_file(p, 8 + 6);
  expect_rejected(p);
}

TEST_P(CorruptTraceTest, BadBlockMarkerIsRejected) {
  const std::string p = write_fixture("t.nmot");
  auto bytes = slurp(p);
  bytes[8] = '\x00';  // first block marker follows the 8-byte header
  dump(p, bytes);
  expect_rejected(p);
}

TEST_P(CorruptTraceTest, TamperedMd5FooterIsRejected) {
  const std::string p = write_fixture("t.nmot");
  auto bytes = slurp(p);
  // Footer layout from the end: [marker][count u64][md5 16][v2: index u64]
  // [end magic u32]; flip a digest byte without touching the framing.
  const std::size_t footer = version() == kTraceVersion1 ? 29 : 37;
  const std::size_t md5_at = bytes.size() - footer + 1 + 8;
  bytes[md5_at + 3] = static_cast<char>(bytes[md5_at + 3] ^ 0x5a);
  dump(p, bytes);

  TraceReader reader(p);
  const auto all = reader.read_all();
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("fingerprint"), std::string::npos) << reader.error();
  EXPECT_TRUE(all.empty());
  // probe() is a *structural* check and does not decode samples, so a
  // digest-only tamper passes it - that asymmetry is by design and is why
  // `nmo-trace verify` exists.
  EXPECT_TRUE(TraceReader::probe(p).has_value());
}

TEST_P(CorruptTraceTest, AppendedGarbageFailsProbeAndReadAlike) {
  // The regression this suite pins down: a stale footer (or any garbage
  // whose tail looks like one) appended after a valid trace used to pass
  // probe() - which trusted the last bytes of the file - while the full
  // read rejected it.  Both must reject it now.
  const std::string p = write_fixture("t.nmot");
  auto bytes = slurp(p);
  const std::size_t footer = version() == kTraceVersion1 ? 29 : 37;
  // Append a byte-exact copy of the file's own footer: the strongest decoy.
  bytes.insert(bytes.end(), bytes.end() - static_cast<std::ptrdiff_t>(footer), bytes.end());
  dump(p, bytes);
  expect_rejected(p);
}

TEST_P(CorruptTraceTest, OverlongVarintIsRejected) {
  // Handcrafted minimal file whose first sample's time delta is a 10-byte
  // varint with payload bits above bit 63: the decoded value cannot fit,
  // so accepting it would silently alias the high bits away (the read_varint
  // bug this issue fixes).
  std::vector<unsigned char> bytes = {0x4e, 0x4d, 0x4f, 0x54,  // "NMOT"
                                      0x00, 0x00, 0x00, 0x00};
  bytes[4] = static_cast<unsigned char>(version());
  const std::vector<unsigned char> overlong = {0x80, 0x80, 0x80, 0x80, 0x80,
                                               0x80, 0x80, 0x80, 0x80, 0x7f};
  bytes.push_back(0xb7);  // block marker
  if (version() == kTraceVersion1) {
    bytes.push_back(0x00);  // core 0
    bytes.push_back(0x01);  // count 1
    bytes.insert(bytes.end(), overlong.begin(), overlong.end());  // time delta
  } else {
    bytes.push_back(0x01);                                   // count 1
    bytes.push_back(0x00);                                   // codec raw
    bytes.push_back(0x01);                                   // one core
    bytes.insert(bytes.end(), {0x00, 0x00, 0x00, 0x00});     // core 0, zero bases
    const unsigned char payload_len = 10 + 5;                // overlong time + 5 more fields
    bytes.push_back(payload_len);                            // raw_bytes
    bytes.push_back(payload_len);                            // stored_bytes
    bytes.push_back(0x00);                                   // sample: core slot 0
    bytes.insert(bytes.end(), overlong.begin(), overlong.end());  // time delta
    bytes.insert(bytes.end(), {0x00, 0x00, 0x00, 0x00});     // vaddr, pc, packed, latency
    // (region omitted: the overlong varint fails the read first)
  }
  const std::string p = path("overlong.nmot");
  std::ofstream out(p, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();

  TraceReader reader(p);
  core::TraceSample s;
  EXPECT_FALSE(reader.next(s));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("overlong"), std::string::npos) << reader.error();
  EXPECT_FALSE(TraceReader::probe(p).has_value());
}

TEST_P(CorruptTraceTest, OutOfRangeRegionIsRejected) {
  // A region whose zigzag decodes beyond int32 (here 2^33) used to be cast
  // straight to int32_t, aliasing into a valid-looking id; the reader must
  // fail the sample instead.
  std::vector<unsigned char> bytes = {0x4e, 0x4d, 0x4f, 0x54,
                                      0x00, 0x00, 0x00, 0x00};
  bytes[4] = static_cast<unsigned char>(version());
  // varint of zigzag(2^33) = 2^34: five 0x80s then 0x01.
  const std::vector<unsigned char> big_region = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  // One sample, all-zero deltas: time/vaddr/pc 0, packed 0 (load/L1),
  // latency 0, then the oversized region.
  std::vector<unsigned char> sample = {0x00, 0x00, 0x00, 0x00, 0x00};
  sample.insert(sample.end(), big_region.begin(), big_region.end());
  bytes.push_back(0xb7);
  if (version() == kTraceVersion1) {
    bytes.push_back(0x00);  // core 0
    bytes.push_back(0x01);  // count 1
    bytes.insert(bytes.end(), sample.begin(), sample.end());
  } else {
    bytes.push_back(0x01);                                // count 1
    bytes.push_back(0x00);                                // codec raw
    bytes.push_back(0x01);                                // one core
    bytes.insert(bytes.end(), {0x00, 0x00, 0x00, 0x00});  // core 0, zero bases
    const auto payload_len = static_cast<unsigned char>(1 + sample.size());
    bytes.push_back(payload_len);  // raw_bytes
    bytes.push_back(payload_len);  // stored_bytes
    bytes.push_back(0x00);         // core slot 0
    bytes.insert(bytes.end(), sample.begin(), sample.end());
  }
  const std::string p = path("region.nmot");
  std::ofstream out(p, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();

  TraceReader reader(p);
  core::TraceSample s;
  EXPECT_FALSE(reader.next(s));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("region"), std::string::npos) << reader.error();
}

TEST_P(CorruptTraceTest, FooterCountMismatchIsRejected) {
  const std::string p = write_fixture("t.nmot");
  auto bytes = slurp(p);
  const std::size_t footer = version() == kTraceVersion1 ? 29 : 37;
  // Bump the footer's declared sample count by one.
  bytes[bytes.size() - footer + 1] =
      static_cast<char>(static_cast<unsigned char>(bytes[bytes.size() - footer + 1]) + 1);
  dump(p, bytes);
  expect_rejected(p);
}

INSTANTIATE_TEST_SUITE_P(Formats, CorruptTraceTest,
                         ::testing::Values(kTraceVersion1, kTraceVersion2),
                         [](const ::testing::TestParamInfo<std::uint16_t>& info) {
                           return "v" + std::to_string(info.param);
                         });

// --------------------------------------------- index-metadata tampering ----
//
// The meta section sits between the index and the footer, so tampering is
// done by writing a metadata-free v2 file and splicing hand-built section
// bytes in front of the footer.  Structural damage (bad counts, level sums,
// empty bitmaps, truncation) must fail probe() and the full read alike;
// metadata that is structurally fine but *lies* about the samples can only
// be caught by decoding them, so it fails the full read while passing
// probe() - the same asymmetry as a tampered MD5 footer.

class MetaTamperTest : public CorruptTraceTest {
 protected:
  /// v2, uncompressed, `index_meta` off: a valid file with no meta section,
  /// ready for splicing.
  std::string write_meta_free_fixture(const std::string& name) {
    core::SampleTrace trace;
    for (std::size_t i = 0; i < 1200; ++i) {
      core::TraceSample s;
      s.time_ns = 1000 + 17 * i;
      s.core = static_cast<CoreId>(i % 4);
      s.vaddr = 0x10000000 + 64 * i;
      s.pc = 0x400000 + 4 * (i % 16);
      s.latency = static_cast<std::uint16_t>(10 + i % 50);
      s.region = static_cast<std::int32_t>(i % 3) - 1;
      trace.add(s);
    }
    const std::string p = path(name);
    TraceWriter writer(p, TraceWriter::Options{kTraceVersion2, false, false});
    writer.write_all(trace);
    EXPECT_TRUE(writer.close()) << writer.error();
    return p;
  }

  /// What the writer would have recorded: fold the decoded samples block by
  /// block with the same absorb() the writer uses.
  static std::vector<BlockMeta> true_meta(const std::string& p) {
    std::vector<BlockMeta> meta;
    TraceReader index_reader(p);
    EXPECT_TRUE(index_reader.load_index()) << index_reader.error();
    TraceReader reader(p);
    const auto all = reader.read_all();
    EXPECT_TRUE(reader.ok()) << reader.error();
    std::size_t at = 0;
    for (const auto& entry : index_reader.block_index()) {
      BlockMeta m;
      for (std::uint32_t i = 0; i < entry.samples; ++i) m.absorb(all.samples()[at++]);
      meta.push_back(m);
    }
    return meta;
  }

  static void put_varint(std::vector<char>& out, std::uint64_t v) {
    while (v >= 0x80) {
      out.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out.push_back(static_cast<char>(v));
  }

  /// Encodes a meta section; `declared_count` defaults to entries.size()
  /// (pass something else to lie about it).
  static std::vector<char> encode_meta(const std::vector<BlockMeta>& entries,
                                       std::size_t declared_count = std::size_t(-1)) {
    std::vector<char> out;
    out.push_back(static_cast<char>(0xad));  // kMetaMarker
    put_varint(out, declared_count == std::size_t(-1) ? entries.size() : declared_count);
    for (const auto& m : entries) {
      put_varint(out, m.min_time);
      put_varint(out, m.max_time - m.min_time);
      put_varint(out, m.min_addr);
      put_varint(out, m.max_addr - m.min_addr);
      for (std::size_t l = 0; l < kNumMemLevels; ++l) put_varint(out, m.level_samples[l]);
      put_varint(out, m.region_bits);
    }
    return out;
  }

  /// Splices `meta` bytes between the index and the 37-byte v2 footer.
  static void splice(const std::string& p, const std::vector<char>& meta) {
    auto bytes = slurp(p);
    bytes.insert(bytes.end() - 37, meta.begin(), meta.end());
    dump(p, bytes);
  }
};

TEST_P(MetaTamperTest, SplicedTruthfulMetadataReadsCleanly) {
  // Baseline for every case below: the splicing technique itself must
  // produce a file the reader accepts and reports metadata for.
  const std::string p = write_meta_free_fixture("ok.nmot");
  splice(p, encode_meta(true_meta(p)));
  TraceReader reader(p);
  const auto all = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(all.size(), 1200u);
  TraceReader index_reader(p);
  ASSERT_TRUE(index_reader.load_index()) << index_reader.error();
  EXPECT_TRUE(index_reader.has_block_meta());
}

TEST_P(MetaTamperTest, LyingRegionBitmapFailsReadButPassesProbe) {
  const std::string p = write_meta_free_fixture("t.nmot");
  auto meta = true_meta(p);
  meta[1].region_bits ^= std::uint64_t{1} << 8;  // claim region 7 lives there
  splice(p, encode_meta(meta));

  TraceReader reader(p);
  const auto all = reader.read_all();
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("disagrees with decoded block contents"), std::string::npos)
      << reader.error();
  EXPECT_TRUE(all.empty());
  // Structurally the section is fine; only decoding exposes the lie.
  EXPECT_TRUE(TraceReader::probe(p).has_value());
}

TEST_P(MetaTamperTest, LyingLevelMixFailsReadButPassesProbe) {
  const std::string p = write_meta_free_fixture("t.nmot");
  auto meta = true_meta(p);
  // Move one sample's worth of count between levels: the per-block sum
  // still matches the index, so every structural check passes.
  ASSERT_GT(meta[0].level_samples[0], 0u);
  meta[0].level_samples[0] -= 1;
  meta[0].level_samples[1] += 1;
  splice(p, encode_meta(meta));

  TraceReader reader(p);
  const auto all = reader.read_all();
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("disagrees with decoded block contents"), std::string::npos)
      << reader.error();
  EXPECT_TRUE(all.empty());
  EXPECT_TRUE(TraceReader::probe(p).has_value());
}

TEST_P(MetaTamperTest, BlockCountMismatchIsRejectedByBoth) {
  const std::string p = write_meta_free_fixture("t.nmot");
  auto meta = true_meta(p);
  meta.pop_back();  // one entry short, count encoded to match the lie
  splice(p, encode_meta(meta));
  expect_rejected(p);
}

TEST_P(MetaTamperTest, LevelSumMismatchIsRejectedByBoth) {
  const std::string p = write_meta_free_fixture("t.nmot");
  auto meta = true_meta(p);
  meta[0].level_samples[2] += 1;  // sum no longer equals the block's samples
  splice(p, encode_meta(meta));
  expect_rejected(p);
}

TEST_P(MetaTamperTest, EmptyRegionBitmapIsRejectedByBoth) {
  const std::string p = write_meta_free_fixture("t.nmot");
  auto meta = true_meta(p);
  meta[0].region_bits = 0;  // a non-empty block always touches some region
  splice(p, encode_meta(meta));
  expect_rejected(p);
}

TEST_P(MetaTamperTest, TruncatedMetadataIsRejectedByBoth) {
  const std::string p = write_meta_free_fixture("t.nmot");
  auto meta_bytes = encode_meta(true_meta(p));
  meta_bytes.resize(meta_bytes.size() - 2);  // chop mid-entry
  splice(p, meta_bytes);
  expect_rejected(p);
}

TEST_P(MetaTamperTest, TrailingBytesAfterMetadataAreRejectedByBoth) {
  const std::string p = write_meta_free_fixture("t.nmot");
  auto meta_bytes = encode_meta(true_meta(p));
  meta_bytes.push_back('\x00');  // slack between section end and footer
  splice(p, meta_bytes);
  expect_rejected(p);
}

INSTANTIATE_TEST_SUITE_P(V2, MetaTamperTest, ::testing::Values(kTraceVersion2),
                         [](const ::testing::TestParamInfo<std::uint16_t>& info) {
                           return "v" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace nmo::store
