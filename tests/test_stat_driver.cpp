// End-to-end invariants of the statistical sweep driver (the engine behind
// Figures 7-11).
#include "sim/stat_driver.hpp"

#include <gtest/gtest.h>

#include "analysis/accuracy.hpp"
#include "sim/profile.hpp"

namespace nmo::sim {
namespace {

WorkloadProfile tiny_profile(std::uint64_t ops = 10'000'000) {
  WorkloadProfile p;
  p.name = "tiny";
  p.phases = {PhaseProfile{
      .name = "main",
      .mem_ops = ops,
      .nonmem_per_mem = 2.0,
      .level_mix = {0.90, 0.05, 0.03, 0.02},
      .store_frac = 0.3,
      .tlb_miss_rate = 0.001,
      .parallel = true,
  }};
  return p;
}

SweepConfig fast_cfg() {
  SweepConfig cfg;
  cfg.threads = 4;
  cfg.period = 2048;
  cfg.seed = 42;
  return cfg;
}

TEST(StatDriver, BaselineRunHasNoSamplingActivity) {
  SweepConfig cfg = fast_cfg();
  cfg.spe_enabled = false;
  const auto r = run_statistical(tiny_profile(), MachineConfig{}, cfg);
  EXPECT_EQ(r.processed_samples, 0u);
  EXPECT_EQ(r.selections, 0u);
  EXPECT_GT(r.instrumented_ns, 0u);
  EXPECT_GT(r.mem_counted, 0u);
}

TEST(StatDriver, SamplesApproximateOpsOverPeriod) {
  const auto r = run_statistical(tiny_profile(), MachineConfig{}, fast_cfg());
  const double expected = 10'000'000.0 / 2048.0;
  EXPECT_NEAR(static_cast<double>(r.processed_samples), expected, expected * 0.10);
}

TEST(StatDriver, AccuracyHighAtModeratePeriod) {
  const auto r = run_with_baseline(tiny_profile(), MachineConfig{}, fast_cfg());
  EXPECT_GT(analysis::accuracy(r), 0.90);
  EXPECT_LE(analysis::accuracy(r), 1.0);
}

TEST(StatDriver, OverheadNonNegativeAndBounded) {
  const auto r = run_with_baseline(tiny_profile(), MachineConfig{}, fast_cfg());
  const double ov = analysis::time_overhead(r);
  EXPECT_GE(ov, 0.0);
  EXPECT_LT(ov, 0.5);
}

TEST(StatDriver, DeterministicForSameSeed) {
  const auto a = run_statistical(tiny_profile(), MachineConfig{}, fast_cfg());
  const auto b = run_statistical(tiny_profile(), MachineConfig{}, fast_cfg());
  EXPECT_EQ(a.processed_samples, b.processed_samples);
  EXPECT_EQ(a.selections, b.selections);
  EXPECT_EQ(a.hw_collisions, b.hw_collisions);
  EXPECT_EQ(a.instrumented_ns, b.instrumented_ns);
}

TEST(StatDriver, SeedChangesTrialOutcome) {
  SweepConfig cfg = fast_cfg();
  const auto a = run_statistical(tiny_profile(), MachineConfig{}, cfg);
  cfg.seed = 43;
  const auto b = run_statistical(tiny_profile(), MachineConfig{}, cfg);
  EXPECT_NE(a.processed_samples, b.processed_samples);
}

TEST(StatDriver, MemCountedIncludesOvercount) {
  SweepConfig cfg = fast_cfg();
  cfg.pmu_overcount = 0.10;
  const auto r = run_statistical(tiny_profile(1'000'000), MachineConfig{}, cfg);
  EXPECT_EQ(r.mem_counted, 1'100'000u);
}

TEST(StatDriver, SelectionAccountingConsistent) {
  const auto r = run_statistical(tiny_profile(), MachineConfig{}, fast_cfg());
  // Every selection either collided, was filtered, was written, failed the
  // write, or is the in-flight one completed at flush.
  EXPECT_EQ(r.selections, r.hw_collisions + r.filtered + r.written + r.dropped_full);
  // Every written record is either processed or skipped by the consumer.
  EXPECT_EQ(r.written, r.processed_samples + r.skipped_records);
}

TEST(StatDriver, SerialPhaseRunsOnOneThread) {
  WorkloadProfile p = tiny_profile(2'000'000);
  p.phases[0].parallel = false;
  SweepConfig cfg = fast_cfg();
  const auto serial = run_statistical(p, MachineConfig{}, cfg);
  p.phases[0].parallel = true;
  const auto parallel = run_statistical(p, MachineConfig{}, cfg);
  EXPECT_GT(serial.instrumented_ns, parallel.instrumented_ns);
}

TEST(StatDriver, MorePeriodsFewerSamples) {
  SweepConfig cfg = fast_cfg();
  cfg.period = 1024;
  const auto fine = run_statistical(tiny_profile(), MachineConfig{}, cfg);
  cfg.period = 16384;
  const auto coarse = run_statistical(tiny_profile(), MachineConfig{}, cfg);
  EXPECT_GT(fine.processed_samples, 10 * coarse.processed_samples);
}

TEST(StatDriver, DeadAuxBufferLosesEverything) {
  SweepConfig cfg = fast_cfg();
  cfg.aux_bytes = 2 * 64 * 1024;  // 2 pages: below the functional minimum
  const auto r = run_statistical(tiny_profile(), MachineConfig{}, cfg);
  EXPECT_EQ(r.processed_samples, 0u);
  EXPECT_GT(r.dropped_full, 0u);
}

TEST(StatDriver, BandwidthBoundWorkloadCollidesAtSmallPeriod) {
  // STREAM-like profile saturating DRAM: small periods must collide.
  const auto stream = profiles::stream();
  WorkloadProfile scaled = stream;
  scaled.scale_ops(0.02);  // keep the test fast
  SweepConfig cfg;
  cfg.threads = 32;
  cfg.seed = 7;
  cfg.period = 1024;
  const auto fine = run_statistical(scaled, MachineConfig{}, cfg);
  EXPECT_GT(fine.hw_collisions, 100u);
  cfg.period = 16384;
  const auto coarse = run_statistical(scaled, MachineConfig{}, cfg);
  EXPECT_LT(static_cast<double>(coarse.hw_collisions),
            0.2 * static_cast<double>(fine.hw_collisions));
}

TEST(StatDriver, CacheResidentWorkloadBarelyCollides) {
  auto bfs = profiles::bfs();
  bfs.scale_ops(0.05);
  SweepConfig cfg;
  cfg.threads = 32;
  cfg.period = 1024;
  cfg.seed = 7;
  const auto r = run_statistical(bfs, MachineConfig{}, cfg);
  // BFS is cache-resident: collisions stay tiny relative to selections.
  EXPECT_LT(static_cast<double>(r.hw_collisions),
            0.01 * static_cast<double>(r.selections));
}

TEST(StatDriver, AsyncDrainTalliesIdenticalToSync) {
  // The async drain pipeline keeps the drain schedule mode-invariant, so
  // every StatResult tally must match the synchronous run exactly - for
  // the serial consumer and for the sharded decode pool.
  for (const std::uint32_t shards : {1u, 4u}) {
    SweepConfig cfg = fast_cfg();
    // Short period + small aux buffers + dense rounds so per-thread sample
    // volume crosses the aux watermark: wakeups -> drain rounds -> epochs.
    cfg.period = 512;
    cfg.aux_bytes = 256 * 1024;
    cfg.monitor_round_interval_cycles = 5'000'000;
    cfg.decode_shards = shards;
    const auto sync_r = run_statistical(tiny_profile(), MachineConfig{}, cfg);
    cfg.async_drain = true;
    const auto async_r = run_statistical(tiny_profile(), MachineConfig{}, cfg);
    EXPECT_EQ(async_r.processed_samples, sync_r.processed_samples) << shards;
    EXPECT_EQ(async_r.skipped_records, sync_r.skipped_records) << shards;
    EXPECT_EQ(async_r.written, sync_r.written) << shards;
    EXPECT_EQ(async_r.dropped_full, sync_r.dropped_full) << shards;
    EXPECT_EQ(async_r.truncated_flags, sync_r.truncated_flags) << shards;
    EXPECT_EQ(async_r.collision_flags, sync_r.collision_flags) << shards;
    EXPECT_EQ(async_r.wakeups, sync_r.wakeups) << shards;
    EXPECT_EQ(async_r.aux_records, sync_r.aux_records) << shards;
    EXPECT_EQ(async_r.monitor_services, sync_r.monitor_services) << shards;
    EXPECT_EQ(async_r.instrumented_ns, sync_r.instrumented_ns) << shards;
    // Sync mode models no overlap; async must have retired every epoch.
    EXPECT_EQ(sync_r.overlapped_cycles, 0u) << shards;
    EXPECT_GT(async_r.overlapped_cycles, 0u) << shards;
    EXPECT_GT(async_r.retired_epochs, 0u) << shards;
    EXPECT_GE(async_r.peak_epoch_lag, 1u) << shards;
  }
}

// Property sweep: accuracy in [0,1] and monotone-ish sample scaling across
// periods (linearity of Fig. 7).
class StatDriverPeriods : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatDriverPeriods, InvariantsHold) {
  SweepConfig cfg = fast_cfg();
  cfg.period = GetParam();
  const auto r = run_with_baseline(tiny_profile(), MachineConfig{}, cfg);
  EXPECT_LE(analysis::accuracy(r), 1.0);
  EXPECT_GE(analysis::accuracy(r), 0.0);
  EXPECT_GE(analysis::time_overhead(r), 0.0);
  EXPECT_EQ(r.written, r.processed_samples + r.skipped_records);
}

INSTANTIATE_TEST_SUITE_P(Periods, StatDriverPeriods,
                         ::testing::Values(512, 1024, 4096, 16384, 65536));

}  // namespace
}  // namespace nmo::sim
