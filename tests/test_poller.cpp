// epoll-style poller over perf events.
#include "kernel/poller.hpp"

#include <gtest/gtest.h>

namespace nmo::kern {
namespace {

constexpr std::size_t kPage = 64 * 1024;

std::unique_ptr<PerfEvent> make_event() {
  PerfEventAttr attr;
  attr.type = kPerfTypeArmSpe;
  attr.config = kSpeConfigLoadsAndStores;
  attr.sample_period = 1000;
  attr.aux_watermark = 64;
  attr.disabled = false;
  return open_event(attr, 0, 4, kPage, 16 * kPage, TimeConv::from_frequency(3e9), nullptr);
}

TEST(Poller, EmptyPollReturnsNothing) {
  Poller p;
  auto ev = make_event();
  p.add(ev.get());
  EXPECT_TRUE(p.poll().empty());
  EXPECT_FALSE(p.any_ready());
}

TEST(Poller, ReadyAfterWakeup) {
  Poller p;
  auto ev = make_event();
  p.add(ev.get());
  ev->aux_write(std::vector<std::byte>(64), 0);
  EXPECT_TRUE(p.any_ready());
  const auto ready = p.poll();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], ev.get());
  EXPECT_TRUE(p.poll().empty());  // acked
}

TEST(Poller, MultipleEventsIndependent) {
  Poller p;
  auto a = make_event();
  auto b = make_event();
  p.add(a.get());
  p.add(b.get());
  b->aux_write(std::vector<std::byte>(64), 0);
  const auto ready = p.poll();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], b.get());
}

TEST(Poller, MultipleWakeupsNeedMultiplePolls) {
  Poller p;
  auto ev = make_event();
  p.add(ev.get());
  ev->aux_write(std::vector<std::byte>(64), 0);
  ev->aux_write(std::vector<std::byte>(64), 0);
  EXPECT_EQ(ev->pending_wakeups(), 2u);
  EXPECT_EQ(p.poll().size(), 1u);
  EXPECT_EQ(p.poll().size(), 1u);
  EXPECT_TRUE(p.poll().empty());
}

TEST(Poller, TakeReadyAcksAllCoalescedWakeups) {
  // The drain-round handoff: one call lists every ready fd and consumes
  // every pending wakeup in a batch (vs poll()'s one-ack-per-call).
  Poller p;
  auto a = make_event();
  auto b = make_event();
  auto idle = make_event();
  p.add(a.get());
  p.add(b.get());
  p.add(idle.get());
  a->aux_write(std::vector<std::byte>(64), 0);
  a->aux_write(std::vector<std::byte>(64), 0);
  a->aux_write(std::vector<std::byte>(64), 0);
  b->aux_write(std::vector<std::byte>(64), 0);
  std::vector<PerfEvent*> ready;
  EXPECT_EQ(p.take_ready(ready), 4u);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0], a.get());
  EXPECT_EQ(ready[1], b.get());
  EXPECT_EQ(a->pending_wakeups(), 0u);
  EXPECT_EQ(b->pending_wakeups(), 0u);
  EXPECT_FALSE(p.any_ready());
  // Appends without clearing, so a reused scratch vector accumulates only
  // newly ready fds.
  b->aux_write(std::vector<std::byte>(64), 0);
  EXPECT_EQ(p.take_ready(ready), 1u);
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[2], b.get());
}

TEST(Poller, AckReadyConsumesWithoutListing) {
  // The monitor's variant: batched ack only (it drains the whole fd set
  // per round regardless of readiness).
  Poller p;
  auto a = make_event();
  auto b = make_event();
  p.add(a.get());
  p.add(b.get());
  a->aux_write(std::vector<std::byte>(64), 0);
  a->aux_write(std::vector<std::byte>(64), 0);
  b->aux_write(std::vector<std::byte>(64), 0);
  EXPECT_EQ(p.ack_ready(), 3u);
  EXPECT_EQ(p.ack_ready(), 0u);
  EXPECT_FALSE(p.any_ready());
}

}  // namespace
}  // namespace nmo::kern
