// Fixed-bucket histogram.
#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace nmo {
namespace {

TEST(Histogram, AddAndCount) {
  Histogram h(0, 10, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0, 10, 10);
  h.add(-5);
  h.add(100);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, Weights) {
  Histogram h(0, 4, 4);
  h.add(1.0, 10);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, Edges) {
  Histogram h(0, 100, 10);
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(5), 50.0);
}

TEST(Histogram, MedianOfUniform) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(0, 10, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileClampedInput) {
  Histogram h(0, 10, 10);
  h.add(5);
  EXPECT_GE(h.quantile(-1), 0.0);
  EXPECT_LE(h.quantile(2), 10.0);
}

TEST(Histogram, UpperBoundGoesToLastBucket) {
  Histogram h(0, 10, 10);
  h.add(10.0);  // hi is exclusive -> clamped to last bucket
  EXPECT_EQ(h.count(9), 1u);
}

}  // namespace
}  // namespace nmo
