// MD5 against the RFC 1321 reference vectors plus streaming-equivalence
// properties (NMO fingerprints sample traces with MD5; digests must be
// byte-identical with any conformant implementation).
#include "common/md5.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nmo {
namespace {

TEST(Md5, Rfc1321EmptyString) {
  EXPECT_EQ(Md5::hex(""), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5, Rfc1321SingleChar) {
  EXPECT_EQ(Md5::hex("a"), "0cc175b9c0f1b6a831c399e269772661");
}

TEST(Md5, Rfc1321Abc) {
  EXPECT_EQ(Md5::hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, Rfc1321MessageDigest) {
  EXPECT_EQ(Md5::hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(Md5, Rfc1321Alphabet) {
  EXPECT_EQ(Md5::hex("abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5, Rfc1321AlphaNum) {
  EXPECT_EQ(Md5::hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Md5, Rfc1321Numbers) {
  EXPECT_EQ(Md5::hex("12345678901234567890123456789012345678901234567890123456789012345678901234"
                     "567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, StreamingMatchesOneShot) {
  const std::string text = "The quick brown fox jumps over the lazy dog";
  Md5 h;
  for (char c : text) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.hex_digest(), Md5::hex(text));
}

TEST(Md5, StreamingChunkBoundaries) {
  // Exercise partial-block buffering around the 64-byte block size.
  std::string text(200, 'x');
  for (std::size_t split : {1u, 63u, 64u, 65u, 127u, 128u, 199u}) {
    Md5 h;
    h.update(std::string_view(text).substr(0, split));
    h.update(std::string_view(text).substr(split));
    EXPECT_EQ(h.hex_digest(), Md5::hex(text)) << "split at " << split;
  }
}

TEST(Md5, ExactBlockLength) {
  std::string block(64, 'b');
  std::string two_blocks(128, 'b');
  EXPECT_NE(Md5::hex(block), Md5::hex(two_blocks));
  // Reference digest from coreutils md5sum for 'b' * 64.
  EXPECT_EQ(Md5::hex(block), "0b649bcb5a82868817fec9a6e709d233");
}

TEST(Md5, ResetReusesHasher) {
  Md5 h;
  h.update("abc");
  (void)h.hex_digest();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.hex_digest(), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::hex("trace-a"), Md5::hex("trace-b"));
}

}  // namespace
}  // namespace nmo
