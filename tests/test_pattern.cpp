// Access-pattern analysis helpers.
#include "analysis/pattern.hpp"

#include <gtest/gtest.h>

namespace nmo::analysis {
namespace {

core::TraceSample sample(std::uint64_t t, Addr a, CoreId core = 0,
                         MemOp op = MemOp::kLoad, std::int32_t region = -1) {
  core::TraceSample s;
  s.time_ns = t;
  s.vaddr = a;
  s.core = core;
  s.op = op;
  s.region = region;
  return s;
}

TEST(Pattern, RegionBreakdownCountsAndRanges) {
  core::RegionTable regions;
  regions.tag_addr("a", 0x1000, 0x2000);
  regions.tag_addr("b", 0x3000, 0x4000);
  core::SampleTrace trace;
  trace.add(sample(1, 0x1100, 0, MemOp::kLoad, 0));
  trace.add(sample(2, 0x1200, 0, MemOp::kStore, 0));
  trace.add(sample(3, 0x3100, 0, MemOp::kLoad, 1));
  trace.add(sample(4, 0x9999, 0, MemOp::kLoad, -1));
  const auto breakdown = region_breakdown(trace, regions);
  ASSERT_EQ(breakdown.size(), 3u);
  EXPECT_EQ(breakdown[0].samples, 2u);
  EXPECT_EQ(breakdown[0].loads, 1u);
  EXPECT_EQ(breakdown[0].stores, 1u);
  EXPECT_EQ(breakdown[0].min_addr, 0x1100u);
  EXPECT_EQ(breakdown[0].max_addr, 0x1200u);
  EXPECT_EQ(breakdown[1].samples, 1u);
  EXPECT_EQ(breakdown[2].name, "(untagged)");
  EXPECT_EQ(breakdown[2].samples, 1u);
}

TEST(Pattern, SamplesInPhaseFiltersByTime) {
  core::RegionTable regions;
  regions.phase_start("k0", 100);
  regions.phase_stop(200);
  regions.phase_start("k1", 200);
  regions.phase_stop(300);
  core::SampleTrace trace;
  trace.add(sample(150, 0x1));
  trace.add(sample(250, 0x2));
  trace.add(sample(350, 0x3));
  const auto k0 = samples_in_phase(trace, regions, "k0");
  ASSERT_EQ(k0.size(), 1u);
  EXPECT_EQ(k0[0].vaddr, 0x1u);
  const auto k1 = samples_in_phase(trace, regions, "k1");
  ASSERT_EQ(k1.size(), 1u);
  EXPECT_EQ(k1[0].vaddr, 0x2u);
  EXPECT_TRUE(samples_in_phase(trace, regions, "nope").empty());
}

TEST(Pattern, RepeatedPhaseNameCollectsAllSpans) {
  core::RegionTable regions;
  regions.phase_start("triad", 0);
  regions.phase_stop(10);
  regions.phase_start("triad", 20);
  regions.phase_stop(30);
  core::SampleTrace trace;
  trace.add(sample(5, 0x1));
  trace.add(sample(15, 0x2));
  trace.add(sample(25, 0x3));
  EXPECT_EQ(samples_in_phase(trace, regions, "triad").size(), 2u);
}

TEST(Pattern, StrideRegularityOfSequentialSweep) {
  std::vector<core::TraceSample> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(sample(i, 0x1000 + i * 64));
  EXPECT_DOUBLE_EQ(stride_regularity(samples), 1.0);
}

TEST(Pattern, StrideRegularityOfRandomAccess) {
  std::vector<core::TraceSample> samples;
  std::uint64_t x = 7;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ull + 1;
    samples.push_back(sample(i, (x >> 16) % (1 << 26)));
  }
  EXPECT_LT(stride_regularity(samples), 0.05);
}

TEST(Pattern, StrideRegularityPerCore) {
  // Two cores each sweep their own range: per-core deltas are constant.
  std::vector<core::TraceSample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back(sample(2 * i, 0x1000 + i * 8, 0));
    samples.push_back(sample(2 * i + 1, 0x800000 + i * 8, 1));
  }
  EXPECT_DOUBLE_EQ(stride_regularity(samples), 1.0);
}

TEST(Pattern, LocalityFraction) {
  std::vector<core::TraceSample> samples;
  samples.push_back(sample(0, 1000));
  samples.push_back(sample(1, 1100));   // local
  samples.push_back(sample(2, 999999)); // far
  samples.push_back(sample(3, 999990)); // local again
  EXPECT_DOUBLE_EQ(locality_fraction(samples, 1024), 2.0 / 3.0);
}

TEST(Pattern, EmptyInputsAreSafe) {
  std::vector<core::TraceSample> empty;
  EXPECT_DOUBLE_EQ(stride_regularity(empty), 0.0);
  EXPECT_DOUBLE_EQ(locality_fraction(empty, 64), 0.0);
  core::RegionTable regions;
  core::SampleTrace trace;
  EXPECT_EQ(region_breakdown(trace, regions).size(), 1u);
}

}  // namespace
}  // namespace nmo::analysis
