// Trace diffing: self-diff is exactly zero, behavioral changes (latency
// shift, level-mix shift, phase move, regions appearing/disappearing)
// drift, small regions are not judged, and sidecar names align regions
// across traces whose tables order them differently.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/trace_diff.hpp"
#include "store/region_file.hpp"
#include "store/trace_file.hpp"

namespace nmo::analysis {
namespace {

namespace fs = std::filesystem;

class TraceDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nmo_diff_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

/// A streaming-flavored workload: sequential addresses, cache-friendly
/// latencies, two regions, steady phase structure.
core::SampleTrace stream_trace(std::size_t n = 2048, std::uint64_t latency_base = 4) {
  core::SampleTrace trace;
  for (std::size_t i = 0; i < n; ++i) {
    core::TraceSample s;
    s.time_ns = i * 1000;
    s.core = static_cast<CoreId>(i % 4);
    s.vaddr = 0x1000'0000 + i * 64;
    s.pc = 0x400000;
    s.op = MemOp::kLoad;
    s.level = i % 8 == 0 ? MemLevel::kL2 : MemLevel::kL1;
    s.latency = static_cast<std::uint16_t>(latency_base + i % 6);
    s.region = static_cast<std::int32_t>(i % 2);
    trace.add(s);
  }
  return trace;
}

/// A pointer-chase-flavored workload over the same regions: scattered
/// addresses, DRAM-heavy level mix, fat latency tail, back-loaded phases.
core::SampleTrace cfd_trace(std::size_t n = 2048) {
  core::SampleTrace trace;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    core::TraceSample s;
    // Back-loaded: most samples land in the second half of the run.
    s.time_ns = (i < n / 4 ? i : n / 2 + i) * 1000;
    s.core = static_cast<CoreId>(i % 4);
    s.vaddr = 0x1000'0000 + (x & 0xff'ffff);
    s.pc = 0x400000;
    s.op = MemOp::kLoad;
    s.level = i % 3 == 0 ? MemLevel::kDRAM : MemLevel::kSLC;
    s.latency = static_cast<std::uint16_t>(s.level == MemLevel::kDRAM ? 250 + (x & 63) : 40);
    s.region = static_cast<std::int32_t>(i % 2);
    trace.add(s);
  }
  return trace;
}

void write_trace(const std::string& path, const core::SampleTrace& trace) {
  store::TraceWriter writer(path);
  writer.write_all(trace);
  ASSERT_TRUE(writer.close()) << writer.error();
}

// ------------------------------------------------------------- verdicts ----

TEST_F(TraceDiffTest, SelfDiffIsExactlyZero) {
  write_trace(path("a.nmot"), stream_trace());
  const DiffOptions options;
  std::string error;
  const auto profile = profile_path(path("a.nmot"), options, &error);
  ASSERT_TRUE(profile.has_value()) << error;
  const auto report = diff_profiles(*profile, *profile, options);
  EXPECT_FALSE(report.drift);
  EXPECT_FALSE(report.phase_drift);
  EXPECT_EQ(report.phase_distance, 0.0);
  ASSERT_FALSE(report.regions.empty());
  for (const auto& r : report.regions) {
    EXPECT_EQ(r.ks_latency, 0.0) << r.name;
    EXPECT_EQ(r.level_distance, 0.0) << r.name;
    EXPECT_FALSE(r.drift) << r.name;
    EXPECT_EQ(r.samples_a, r.samples_b) << r.name;
  }
}

TEST_F(TraceDiffTest, StreamVersusChaseDrifts) {
  write_trace(path("stream.nmot"), stream_trace());
  write_trace(path("cfd.nmot"), cfd_trace());
  const DiffOptions options;
  std::string error;
  const auto a = profile_path(path("stream.nmot"), options, &error);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = profile_path(path("cfd.nmot"), options, &error);
  ASSERT_TRUE(b.has_value()) << error;
  const auto report = diff_profiles(*a, *b, options);
  EXPECT_TRUE(report.drift);
  // Both the latency CDFs and the level mixes moved far past threshold.
  for (const auto& r : report.regions) {
    EXPECT_TRUE(r.judged) << r.name;
    EXPECT_GT(r.ks_latency, options.ks_threshold) << r.name;
    EXPECT_GT(r.level_distance, options.level_threshold) << r.name;
    EXPECT_TRUE(r.drift) << r.name;
  }
}

TEST_F(TraceDiffTest, LatencyShiftAloneDrifts) {
  // Same workload shape, latencies uniformly +40: level mix identical, so
  // only the KS term can fire.
  write_trace(path("a.nmot"), stream_trace(2048, 4));
  write_trace(path("b.nmot"), stream_trace(2048, 44));
  const DiffOptions options;
  const auto a = profile_path(path("a.nmot"), options);
  const auto b = profile_path(path("b.nmot"), options);
  ASSERT_TRUE(a && b);
  const auto report = diff_profiles(*a, *b, options);
  EXPECT_TRUE(report.drift);
  EXPECT_FALSE(report.phase_drift);  // timing structure unchanged
  for (const auto& r : report.regions) {
    EXPECT_EQ(r.ks_latency, 1.0) << r.name;  // disjoint latency supports
    EXPECT_EQ(r.level_distance, 0.0) << r.name;
    EXPECT_TRUE(r.drift) << r.name;
  }
}

TEST_F(TraceDiffTest, RegionPresentOnOneSideOnlyDrifts) {
  auto a = stream_trace(512);
  auto b = stream_trace(512);
  for (std::size_t i = 0; i < 256; ++i) {
    core::TraceSample s;
    s.time_ns = 600'000 + i;
    s.core = 0;
    s.vaddr = 0x9000'0000 + i * 8;
    s.pc = 0x400000;
    s.op = MemOp::kStore;
    s.level = MemLevel::kDRAM;
    s.latency = 280;
    s.region = 7;  // only trace b has this region
    b.add(s);
  }
  write_trace(path("a.nmot"), a);
  write_trace(path("b.nmot"), b);
  const DiffOptions options;
  const auto pa = profile_path(path("a.nmot"), options);
  const auto pb = profile_path(path("b.nmot"), options);
  ASSERT_TRUE(pa && pb);
  const auto report = diff_profiles(*pa, *pb, options);
  EXPECT_TRUE(report.drift);
  bool found = false;
  for (const auto& r : report.regions) {
    if (r.name != "region 7") continue;
    found = true;
    EXPECT_EQ(r.samples_a, 0u);
    EXPECT_EQ(r.samples_b, 256u);
    EXPECT_EQ(r.ks_latency, 1.0);  // one-sided region: maximal distance
    EXPECT_TRUE(r.drift);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceDiffTest, SmallRegionsAreNotJudged) {
  auto a = stream_trace(512);
  auto b = stream_trace(512);
  // A 3-sample region with wildly different latencies on each side: below
  // min_samples, so it must not flip the verdict.
  for (std::size_t i = 0; i < 3; ++i) {
    core::TraceSample s;
    s.time_ns = 100'000 + i;
    s.core = 0;
    s.vaddr = 0x8000'0000;
    s.pc = 0x400000;
    s.op = MemOp::kLoad;
    s.level = MemLevel::kL1;
    s.latency = 4;
    s.region = 9;
    a.add(s);
    s.level = MemLevel::kDRAM;
    s.latency = 300;
    b.add(s);
  }
  write_trace(path("a.nmot"), a);
  write_trace(path("b.nmot"), b);
  const DiffOptions options;
  const auto pa = profile_path(path("a.nmot"), options);
  const auto pb = profile_path(path("b.nmot"), options);
  ASSERT_TRUE(pa && pb);
  const auto report = diff_profiles(*pa, *pb, options);
  EXPECT_FALSE(report.drift);
  for (const auto& r : report.regions) {
    if (r.name == "region 9") {
      EXPECT_FALSE(r.judged);
      EXPECT_FALSE(r.drift);
      EXPECT_EQ(r.ks_latency, 1.0);  // the distance is still reported
    }
  }
}

TEST_F(TraceDiffTest, PhaseShiftAloneDrifts) {
  // Identical samples, but trace b compresses all activity into the first
  // tenth of the (same) wall-clock span: per-region distributions match,
  // only the phase timeline moves.
  core::SampleTrace a, b;
  for (std::size_t i = 0; i < 1000; ++i) {
    core::TraceSample s;
    s.core = 0;
    s.vaddr = 0x1000 + i * 64;
    s.pc = 0x400000;
    s.op = MemOp::kLoad;
    s.level = MemLevel::kL1;
    s.latency = 5;
    s.region = 0;
    s.time_ns = i * 1000;  // spread over the full span
    a.add(s);
    s.time_ns = i < 999 ? i : 999'000;  // bunched at the start, same span
    b.add(s);
  }
  write_trace(path("a.nmot"), a);
  write_trace(path("b.nmot"), b);
  const DiffOptions options;
  const auto pa = profile_path(path("a.nmot"), options);
  const auto pb = profile_path(path("b.nmot"), options);
  ASSERT_TRUE(pa && pb);
  const auto report = diff_profiles(*pa, *pb, options);
  EXPECT_TRUE(report.phase_drift);
  EXPECT_TRUE(report.drift);
  for (const auto& r : report.regions) EXPECT_FALSE(r.drift) << r.name;
}

// ---------------------------------------------------------- name matching --

TEST_F(TraceDiffTest, SidecarNamesAlignRegionsAcrossDifferentIndexOrders) {
  // Trace a tags heap=0 / stack=1; trace b tags stack=0 / heap=1.  Same
  // per-name behavior, so with sidecars the diff is clean - and without
  // them, index-based names would cross-compare and drift.
  core::SampleTrace a, b;
  for (std::size_t i = 0; i < 1024; ++i) {
    core::TraceSample s;
    s.time_ns = i * 1000;
    s.core = 0;
    s.pc = 0x400000;
    s.op = MemOp::kLoad;
    const bool heap = i % 2 == 0;
    s.vaddr = heap ? 0x2000'0000 + i * 8 : 0x7fff'0000 + i * 8;
    s.level = heap ? MemLevel::kDRAM : MemLevel::kL1;
    s.latency = static_cast<std::uint16_t>(heap ? 250 : 4);
    s.region = heap ? 0 : 1;
    a.add(s);
    s.region = heap ? 1 : 0;  // b's table lists them in the other order
    b.add(s);
  }
  write_trace(path("a.nmot"), a);
  write_trace(path("b.nmot"), b);
  const std::vector<core::AddrRegion> table_a = {{"heap", 0x2000'0000, 0x3000'0000},
                                                 {"stack", 0x7fff'0000, 0x8000'0000}};
  const std::vector<core::AddrRegion> table_b = {{"stack", 0x7fff'0000, 0x8000'0000},
                                                 {"heap", 0x2000'0000, 0x3000'0000}};
  ASSERT_TRUE(store::write_region_file(store::region_path_for(path("a.nmot")), table_a));
  ASSERT_TRUE(store::write_region_file(store::region_path_for(path("b.nmot")), table_b));

  const DiffOptions options;
  const auto pa = profile_path(path("a.nmot"), options);
  const auto pb = profile_path(path("b.nmot"), options);
  ASSERT_TRUE(pa && pb);
  const auto report = diff_profiles(*pa, *pb, options);
  EXPECT_FALSE(report.drift);
  ASSERT_EQ(report.regions.size(), 2u);
  EXPECT_EQ(report.regions[0].name, "heap");
  EXPECT_EQ(report.regions[1].name, "stack");
  for (const auto& r : report.regions) {
    EXPECT_EQ(r.ks_latency, 0.0) << r.name;
    EXPECT_EQ(r.level_distance, 0.0) << r.name;
  }
}

// ------------------------------------------------------------ inputs -------

TEST_F(TraceDiffTest, SessionRootFoldsEverySessionTrace) {
  // Two sessions under a root; their union must equal one flat trace
  // holding both sample sets.
  const auto root = dir_ / "store";
  fs::create_directories(root / "session-0-alpha");
  fs::create_directories(root / "session-1-beta");
  const auto t0 = stream_trace(512, 4);
  const auto t1 = stream_trace(512, 10);
  write_trace((root / "session-0-alpha" / "trace.nmot").string(), t0);
  write_trace((root / "session-1-beta" / "trace.nmot").string(), t1);

  const DiffOptions options;
  std::string error;
  const auto folded = profile_path(root.string(), options, &error);
  ASSERT_TRUE(folded.has_value()) << error;
  EXPECT_EQ(folded->samples, 1024u);

  core::SampleTrace flat;
  for (const auto& s : t0.samples()) flat.add(s);
  for (const auto& s : t1.samples()) flat.add(s);
  const auto expected = build_profile(flat.samples(), {}, options);
  const auto report = diff_profiles(*folded, expected, options);
  EXPECT_FALSE(report.drift);
  EXPECT_EQ(report.phase_distance, 0.0);
}

TEST_F(TraceDiffTest, EmptySessionRootFails) {
  const auto root = dir_ / "empty_store";
  fs::create_directories(root);
  std::string error;
  const auto profile = profile_path(root.string(), DiffOptions{}, &error);
  EXPECT_FALSE(profile.has_value());
  EXPECT_NE(error.find("no session-"), std::string::npos) << error;
}

TEST_F(TraceDiffTest, MissingFileFails) {
  std::string error;
  const auto profile = profile_path(path("absent.nmot"), DiffOptions{}, &error);
  EXPECT_FALSE(profile.has_value());
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------ ks unit ------

TEST_F(TraceDiffTest, KsDistanceUnitCases) {
  using Hist = std::map<std::uint16_t, std::uint64_t>;
  EXPECT_EQ(ks_distance(Hist{}, Hist{}), 0.0);
  EXPECT_EQ(ks_distance(Hist{{5, 10}}, Hist{}), 1.0);
  EXPECT_EQ(ks_distance(Hist{}, Hist{{5, 10}}), 1.0);
  EXPECT_EQ(ks_distance(Hist{{5, 10}}, Hist{{5, 7}}), 0.0);  // identical CDFs
  EXPECT_EQ(ks_distance(Hist{{1, 1}}, Hist{{2, 1}}), 1.0);   // disjoint supports
  // Half the mass moved from 1 to 2: CDF gap at value 1 is 0.5.
  EXPECT_DOUBLE_EQ(ks_distance(Hist{{1, 2}}, Hist{{1, 1}, {2, 1}}), 0.5);
  // Scale invariance: counts x100 give the same distance.
  EXPECT_DOUBLE_EQ(ks_distance(Hist{{1, 200}}, Hist{{1, 100}, {2, 100}}), 0.5);
}

}  // namespace
}  // namespace nmo::analysis
