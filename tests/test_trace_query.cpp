// TraceQuery: pushdown-vs-full-scan parity for every predicate
// combination, fallback paths (v1 and metadata-free v2), skip-count
// evidence that pruning actually happens, and the legacy wrapper's
// validation guarantees.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "store/trace_file.hpp"
#include "store/trace_query.hpp"

namespace nmo::store {
namespace {

namespace fs = std::filesystem;

class TraceQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nmo_query_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

constexpr std::size_t kBlock = TraceWriter::kMaxBlockSamples;

/// A deterministic trace whose structure rewards pushdown: 8 phases of one
/// block each, every phase in its own time window and address band, region
/// = phase % 4, DRAM confined to the last phase.  add() order is file
/// order, so block b holds exactly phase b.
core::SampleTrace phased_trace(std::size_t phases = 8) {
  core::SampleTrace trace;
  for (std::size_t p = 0; p < phases; ++p) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      core::TraceSample s;
      s.time_ns = p * 1'000'000 + i * 100;
      s.core = static_cast<CoreId>(i % 4);
      s.vaddr = 0x1000'0000 + p * 0x100'0000 + i * 64;
      s.pc = 0x400000 + i * 4;
      s.op = i % 3 == 0 ? MemOp::kStore : MemOp::kLoad;
      s.level = p + 1 == phases ? MemLevel::kDRAM
                                : static_cast<MemLevel>(i % 3);  // L1/L2/SLC elsewhere
      s.latency = static_cast<std::uint16_t>(s.level == MemLevel::kDRAM ? 300 + i % 40
                                                                        : 4 + i % 12);
      s.region = static_cast<std::int32_t>(p % 4) - 1;  // -1..2, phase-aligned
      trace.add(s);
    }
  }
  return trace;
}

void write_trace(const std::string& path, const core::SampleTrace& trace,
                 TraceWriter::Options options = {}) {
  TraceWriter writer(path, options);
  writer.write_all(trace);
  ASSERT_TRUE(writer.close()) << writer.error();
}

std::string csv_of(const core::SampleTrace& t) {
  std::ostringstream out;
  t.write_csv(out);
  return out.str();
}

/// The parity oracle: filter a full in-memory decode with the query's own
/// exact per-sample predicate.
core::SampleTrace filter_full(const core::SampleTrace& full, const TraceQuery& q) {
  core::SampleTrace expected;
  for (const auto& s : full.samples()) {
    if (q.matches(s)) expected.add(s);
  }
  return expected;
}

// ------------------------------------------------------ parity, all combos --

TEST_F(TraceQueryTest, PushdownMatchesFullScanForEveryPredicateCombination) {
  const auto trace = phased_trace();
  write_trace(path("t.nmot"), trace);

  // Every subset of {time, addr, region, level}, each selective enough to
  // prune blocks when present.
  for (unsigned mask = 0; mask < 16; ++mask) {
    for (const unsigned threads : {1u, 4u}) {
      TraceQuery q(path("t.nmot"));
      if (mask & 1) q.time_between(2'000'000, 2'999'999);        // phase 2 only
      if (mask & 2) q.address_in(0x1400'0000, 0x14ff'ffff);      // phase 4's band
      if (mask & 4) q.region(1);                                 // phases 2 and 6
      if (mask & 8) q.level(MemLevel::kDRAM);                    // phase 7 only
      const auto result = q.run(threads);
      ASSERT_TRUE(result.ok) << "mask " << mask << ": " << result.error;
      EXPECT_EQ(csv_of(result.samples), csv_of(filter_full(trace, q)))
          << "mask " << mask << " threads " << threads;
      EXPECT_EQ(result.stats.samples_matched, result.samples.size());
      EXPECT_TRUE(result.stats.pushdown);
      EXPECT_EQ(result.stats.blocks_total, 8u);
      EXPECT_EQ(result.stats.blocks_scanned + result.stats.blocks_skipped, 8u);
      if (mask != 0) {
        // Every single predicate above rules out whole phases, so any
        // non-empty combination must skip at least one block.
        EXPECT_GT(result.stats.blocks_skipped, 0u) << "mask " << mask;
      } else {
        EXPECT_EQ(result.stats.blocks_skipped, 0u);
      }
    }
  }
}

TEST_F(TraceQueryTest, SelectiveTimeWindowSkipsMostBlocks) {
  const auto trace = phased_trace();
  write_trace(path("t.nmot"), trace);
  // ~12.5% time window: one phase of eight.
  const auto result = query(path("t.nmot")).time_between(3'000'000, 3'999'999).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stats.blocks_scanned, 1u);
  EXPECT_EQ(result.stats.blocks_skipped, 7u);
  EXPECT_EQ(result.stats.samples_scanned, kBlock);
  EXPECT_EQ(result.samples.size(), kBlock);
}

TEST_F(TraceQueryTest, UnconstrainedQueryIsAFullDecode) {
  const auto trace = phased_trace(4);
  write_trace(path("t.nmot"), trace);
  const auto result = query(path("t.nmot")).run(3);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(csv_of(result.samples), csv_of(trace));
  EXPECT_EQ(result.stats.blocks_skipped, 0u);
  EXPECT_EQ(result.info.samples, trace.size());
  EXPECT_EQ(result.info.fingerprint, trace.fingerprint());
}

TEST_F(TraceQueryTest, ReversedBoundsNormalize) {
  const auto trace = phased_trace(4);
  write_trace(path("t.nmot"), trace);
  const auto a = query(path("t.nmot")).time_between(1'000'000, 1'999'999).run();
  const auto b = query(path("t.nmot")).time_between(1'999'999, 1'000'000).run();
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(csv_of(a.samples), csv_of(b.samples));
  EXPECT_GT(a.samples.size(), 0u);
}

// ------------------------------------------------------------ fallbacks ----

TEST_F(TraceQueryTest, V2WithoutMetadataFallsBackToFullScan) {
  const auto trace = phased_trace();
  TraceWriter::Options options;
  options.index_meta = false;
  write_trace(path("nometa.nmot"), trace, options);

  TraceReader reader(path("nometa.nmot"));
  ASSERT_TRUE(reader.load_index());
  EXPECT_FALSE(reader.has_block_meta());

  TraceQuery q(path("nometa.nmot"));
  q.time_between(2'000'000, 2'999'999).region(1);
  const auto result = q.run(2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.stats.pushdown);
  EXPECT_EQ(result.stats.blocks_skipped, 0u);  // nothing to prune with
  EXPECT_EQ(result.stats.blocks_scanned, 8u);
  EXPECT_EQ(csv_of(result.samples), csv_of(filter_full(trace, q)));
}

TEST_F(TraceQueryTest, V1FallsBackToStreamingScan) {
  const auto trace = phased_trace(4);
  TraceWriter::Options options;
  options.version = kTraceVersion1;
  write_trace(path("v1.nmot"), trace, options);

  TraceQuery q(path("v1.nmot"));
  q.level(MemLevel::kDRAM);
  const auto result = q.run(4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.stats.pushdown);
  EXPECT_EQ(result.stats.blocks_total, 0u);  // v1 has no index
  EXPECT_EQ(result.stats.samples_scanned, trace.size());
  EXPECT_EQ(csv_of(result.samples), csv_of(filter_full(trace, q)));
  EXPECT_EQ(result.info.version, kTraceVersion1);
}

// ------------------------------------------------------------ region edges --

TEST_F(TraceQueryTest, UntaggedRegionQueriesExactly) {
  const auto trace = phased_trace();
  write_trace(path("t.nmot"), trace);
  TraceQuery q(path("t.nmot"));
  q.region(-1);
  const auto result = q.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(csv_of(result.samples), csv_of(filter_full(trace, q)));
  EXPECT_GT(result.samples.size(), 0u);
  EXPECT_GT(result.stats.blocks_skipped, 0u);  // untagged lives in phases 0/4 only
  for (const auto& s : result.samples.samples()) EXPECT_EQ(s.region, -1);
}

TEST_F(TraceQueryTest, HighRegionIdsShareTheOverflowBitButFilterExactly) {
  // Regions >= 62 collapse onto one bitmap bit: pruning is conservative
  // (a block holding region 200 cannot be skipped when querying 100), but
  // the per-sample filter still returns exactly the asked-for region.
  core::SampleTrace trace;
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      core::TraceSample s;
      s.time_ns = p * 1'000'000 + i;
      s.core = 0;
      s.vaddr = 0x1000 + i;
      s.pc = 0x400000;
      s.op = MemOp::kLoad;
      s.level = MemLevel::kL1;
      s.latency = 4;
      s.region = p == 0 ? 100 : p == 1 ? 200 : 3;  // blocks: {100}, {200}, {3}
      trace.add(s);
    }
  }
  write_trace(path("hi.nmot"), trace);

  TraceQuery q(path("hi.nmot"));
  q.region(100);
  const auto result = q.run();
  ASSERT_TRUE(result.ok) << result.error;
  // Block 2 (region 3, its own bit) prunes; blocks 0 and 1 share bit 63.
  EXPECT_EQ(result.stats.blocks_scanned, 2u);
  EXPECT_EQ(result.stats.blocks_skipped, 1u);
  EXPECT_EQ(result.samples.size(), kBlock);
  for (const auto& s : result.samples.samples()) EXPECT_EQ(s.region, 100);
}

// ------------------------------------------------------------ edge cases ----

TEST_F(TraceQueryTest, EmptyTraceQueries) {
  write_trace(path("e.nmot"), core::SampleTrace{});
  const auto result = query(path("e.nmot")).region(0).run(4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.samples.empty());
  EXPECT_EQ(result.stats.blocks_total, 0u);
  EXPECT_EQ(result.stats.samples_matched, 0u);
}

TEST_F(TraceQueryTest, MissingFileFails) {
  const auto result = query(path("absent.nmot")).run();
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST_F(TraceQueryTest, EmptyResultWhenNoBlockMatches) {
  const auto trace = phased_trace(4);
  write_trace(path("t.nmot"), trace);
  const auto result = query(path("t.nmot")).time_between(9'000'000, 9'999'999).run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.samples.empty());
  EXPECT_EQ(result.stats.blocks_scanned, 0u);
  EXPECT_EQ(result.stats.blocks_skipped, 4u);
  EXPECT_EQ(result.stats.samples_scanned, 0u);
}

// ------------------------------------------------------------ legacy wrapper --

TEST_F(TraceQueryTest, ReadAllParallelStillValidatesCountAndDigest) {
  const auto trace = phased_trace(6);
  write_trace(path("t.nmot"), trace);
  for (const unsigned threads : {1u, 4u}) {
    std::string error;
    const auto back = read_all_parallel(path("t.nmot"), threads, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(csv_of(*back), csv_of(trace));
  }
}

}  // namespace
}  // namespace nmo::store
