// The SPE sampling unit: interval counting, perturbation, collisions,
// filtering, record emission.
#include "spe/sampler.hpp"

#include <gtest/gtest.h>

#include "kernel/perf_abi.hpp"
#include "spe/aux_consumer.hpp"

namespace nmo::spe {
namespace {

constexpr std::size_t kPage = 64 * 1024;

struct Fixture {
  std::unique_ptr<kern::PerfEvent> event;
  std::unique_ptr<Sampler> sampler;

  explicit Fixture(std::uint64_t period, std::uint64_t config = kern::kSpeConfigLoadsAndStores,
                   std::size_t aux_pages = 16) {
    kern::PerfEventAttr attr;
    attr.type = kern::kPerfTypeArmSpe;
    attr.config = config;
    attr.sample_period = period;
    attr.disabled = false;
    event = kern::open_event(attr, 0, 4, kPage, aux_pages * kPage,
                             kern::TimeConv::from_frequency(3e9), nullptr);
    sampler = std::make_unique<Sampler>(event.get(), Rng(77));
  }
};

OpInfo load_at(std::uint64_t now, Cycles latency = 4, Addr addr = 0x1000) {
  OpInfo op;
  op.cls = OpClass::kLoad;
  op.vaddr = addr;
  op.pc = 0x400000;
  op.level = MemLevel::kL1;
  op.latency = latency;
  op.now_cycles = now;
  return op;
}

TEST(SampleFilter, FromConfigBits) {
  const auto f = SampleFilter::from_config(kern::kSpeLoadFilter);
  EXPECT_TRUE(f.loads);
  EXPECT_FALSE(f.stores);
  EXPECT_FALSE(f.branches);
  const auto f2 = SampleFilter::from_config(kern::kSpeConfigLoadsAndStores);
  EXPECT_TRUE(f2.loads);
  EXPECT_TRUE(f2.stores);
}

TEST(SampleFilter, PaperConfigValue) {
  // 0x600000001 = ts_enable | load_filter | store_filter (section IV-A).
  const auto f = SampleFilter::from_config(0x600000001ull);
  EXPECT_TRUE(f.loads);
  EXPECT_TRUE(f.stores);
  EXPECT_FALSE(f.branches);
}

TEST(SampleFilter, MinLatency) {
  const std::uint64_t config =
      kern::kSpeLoadFilter | (std::uint64_t{50} << kern::kSpeMinLatencyShift);
  const auto f = SampleFilter::from_config(config);
  EXPECT_EQ(f.min_latency, 50u);
  EXPECT_FALSE(f.passes(OpClass::kLoad, 49));
  EXPECT_TRUE(f.passes(OpClass::kLoad, 50));
}

TEST(SampleFilter, OtherOpsRejectedWithMemFilters) {
  const auto f = SampleFilter::from_config(kern::kSpeConfigLoadsAndStores);
  EXPECT_FALSE(f.passes(OpClass::kOther, 1000));
  EXPECT_FALSE(f.passes(OpClass::kBranch, 1000));
}

TEST(Sampler, ExactPeriodWithoutJitter) {
  Fixture fx(100);  // no kSpeJitter bit -> deterministic interval
  for (int i = 0; i < 1000; ++i) {
    fx.sampler->on_mem_op(load_at(static_cast<std::uint64_t>(i) * 10));
  }
  // 1000 ops at period 100 -> exactly 10 selections.
  EXPECT_EQ(fx.sampler->stats().selections, 10u);
}

TEST(Sampler, JitteredIntervalStaysNearPeriod) {
  Fixture fx(1000, kern::kSpeConfigLoadsAndStores | kern::kSpeJitter);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto iv = fx.sampler->draw_interval();
    EXPECT_GE(iv, 1000u - 128);
    EXPECT_LE(iv, 1000u + 128);
    sum += static_cast<double>(iv);
  }
  EXPECT_NEAR(sum / n, 1000.0, 3.0);  // unbiased perturbation
}

TEST(Sampler, SampleWrittenAfterCompletion) {
  Fixture fx(10);
  for (int i = 0; i < 100; ++i) {
    fx.sampler->on_mem_op(load_at(static_cast<std::uint64_t>(i) * 100));
  }
  fx.sampler->flush(100 * 100);
  EXPECT_EQ(fx.sampler->stats().written, 10u);
  EXPECT_EQ(fx.event->aux().used(), 10u * kRecordSize);
}

TEST(Sampler, CollisionWhenPipelineBusy) {
  Fixture fx(10);
  // Long-latency op selected first; next selection fires while in flight.
  std::uint64_t now = 0;
  for (int i = 0; i < 10; ++i) fx.sampler->on_mem_op(load_at(now += 1, 100000));
  EXPECT_EQ(fx.sampler->stats().selections, 1u);
  for (int i = 0; i < 10; ++i) fx.sampler->on_mem_op(load_at(now += 1, 100000));
  EXPECT_EQ(fx.sampler->stats().selections, 2u);
  EXPECT_EQ(fx.sampler->stats().collisions, 1u);
}

TEST(Sampler, CollisionFlagReachesAuxRecord) {
  Fixture fx(10);
  std::uint64_t now = 0;
  for (int i = 0; i < 30; ++i) fx.sampler->on_mem_op(load_at(now += 1, 1'000'000));
  EXPECT_GE(fx.sampler->stats().collisions, 1u);
  fx.sampler->flush(now + 2'000'000);
  fx.event->flush_aux(0);
  AuxConsumer consumer;
  consumer.drain(*fx.event);
  EXPECT_GE(consumer.counts().collision_flags, 1u);
}

TEST(Sampler, NoCollisionWhenOpsComplete) {
  Fixture fx(10);
  // Each op finishes long before the next selection.
  for (int i = 0; i < 200; ++i) {
    fx.sampler->on_mem_op(load_at(static_cast<std::uint64_t>(i) * 1000, 4));
  }
  EXPECT_EQ(fx.sampler->stats().collisions, 0u);
  EXPECT_EQ(fx.sampler->stats().selections, 20u);
}

TEST(Sampler, StoreFilteredWhenOnlyLoadsSelected) {
  Fixture fx(1, kern::kSpeLoadFilter);  // sample every op, loads only
  OpInfo store = load_at(10, 4);
  store.cls = OpClass::kStore;
  fx.sampler->on_mem_op(store);
  fx.sampler->flush(1000);
  EXPECT_EQ(fx.sampler->stats().filtered, 1u);
  EXPECT_EQ(fx.sampler->stats().written, 0u);
}

TEST(Sampler, NonMemOpsAdvanceCounter) {
  Fixture fx(100);
  // 99 non-memory ops then a memory op: the memory op is the 100th decode
  // and must be selected.
  fx.sampler->advance_other(99, 0, 1.0);
  EXPECT_EQ(fx.sampler->stats().selections, 0u);
  fx.sampler->on_mem_op(load_at(200));
  EXPECT_EQ(fx.sampler->stats().selections, 1u);
}

TEST(Sampler, NonMemSelectionIsFiltered) {
  Fixture fx(50);
  fx.sampler->advance_other(500, 0, 1.0);  // 10 selections, all ALU ops
  fx.sampler->flush(10000);
  EXPECT_EQ(fx.sampler->stats().selections, 10u);
  EXPECT_EQ(fx.sampler->stats().filtered, 10u);
  EXPECT_EQ(fx.sampler->stats().written, 0u);
}

TEST(Sampler, RecordCarriesOperationDetails) {
  Fixture fx(1);
  OpInfo op = load_at(123, 45, 0xdeadbeef);
  op.level = MemLevel::kSLC;
  op.tlb_miss = true;
  fx.sampler->on_mem_op(op);
  fx.sampler->flush(1000);
  fx.event->flush_aux(0);
  Record seen;
  AuxConsumer consumer([&](const Record& r, CoreId) { seen = r; });
  consumer.drain(*fx.event);
  ASSERT_EQ(consumer.counts().records_ok, 1u);
  EXPECT_EQ(seen.vaddr, 0xdeadbeefu);
  EXPECT_EQ(seen.level, MemLevel::kSLC);
  EXPECT_EQ(seen.total_latency, 45u);
  EXPECT_EQ(seen.timestamp, 123u + 45u);  // completion time
  EXPECT_TRUE(seen.events & kEvtTlbWalk);
}

TEST(Sampler, WriteFailsWhenAuxDead) {
  Fixture fx(1, kern::kSpeConfigLoadsAndStores, /*aux_pages=*/2);  // non-functional
  fx.sampler->on_mem_op(load_at(1));
  fx.sampler->flush(100);
  EXPECT_EQ(fx.sampler->stats().write_failed, 1u);
  EXPECT_EQ(fx.sampler->stats().written, 0u);
}

TEST(Sampler, RequiresSpeEvent) {
  kern::PerfEventAttr attr;
  attr.type = kern::kPerfTypeHardware;
  auto counting = kern::open_event(attr, 0, 0, kPage, 0,
                                   kern::TimeConv::from_frequency(3e9), nullptr);
  EXPECT_THROW(Sampler(counting.get(), Rng(1)), std::invalid_argument);
  EXPECT_THROW(Sampler(nullptr, Rng(1)), std::invalid_argument);
}

// Property: over a long run the number of selections approximates
// total_ops / period for several periods (the linearity behind Fig. 7).
class SamplerLinearity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplerLinearity, SelectionsMatchExpectation) {
  const std::uint64_t period = GetParam();
  Fixture fx(period, kern::kSpeConfigLoadsAndStores | kern::kSpeJitter);
  const std::uint64_t ops = period * 400;
  std::uint64_t now = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    fx.sampler->on_mem_op(load_at(now += 3, 4));
  }
  const double expected = static_cast<double>(ops) / static_cast<double>(period);
  EXPECT_NEAR(static_cast<double>(fx.sampler->stats().selections), expected,
              expected * 0.05 + 2);
}

INSTANTIATE_TEST_SUITE_P(Periods, SamplerLinearity,
                         ::testing::Values(64, 256, 1024, 4096, 16384));

/// Write-combining parity: a sampler staging records in batches must land
/// the identical record stream (and written/write_failed totals) in the
/// aux buffer as the per-record default, once flushed.
TEST(Sampler, WriteBatchingIsRecordIdentical) {
  const auto run = [](std::uint32_t write_batch) {
    Fixture fx(64);
    if (write_batch > 1) fx.sampler->set_write_batch(write_batch);
    std::uint64_t now = 0;
    for (std::uint64_t i = 0; i < 20000; ++i) {
      fx.sampler->on_mem_op(load_at(now += 5, 4, 0x1000 + i * 8));
    }
    fx.sampler->flush(now);
    fx.event->flush_aux(0);
    std::vector<std::pair<Addr, std::uint64_t>> records;
    AuxConsumer consumer([&](const Record& r, CoreId) {
      records.emplace_back(r.vaddr, r.timestamp);
    });
    consumer.drain(*fx.event);
    return std::tuple{fx.sampler->stats().written, fx.sampler->stats().write_failed,
                      records};
  };

  const auto [written1, failed1, records1] = run(1);
  ASSERT_GT(written1, 0u);
  for (const std::uint32_t batch : {8u, 64u}) {
    const auto [written, failed, records] = run(batch);
    EXPECT_EQ(written, written1) << "batch=" << batch;
    EXPECT_EQ(failed, failed1) << "batch=" << batch;
    EXPECT_EQ(records, records1) << "batch=" << batch;
  }
}

}  // namespace
}  // namespace nmo::spe
