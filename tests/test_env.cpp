// Environment-variable parsing (Table I configuration surface).
#include "common/env.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace nmo {
namespace {

Env make_env(std::map<std::string, std::string> vars) { return Env(std::move(vars)); }

TEST(Env, StringDefaults) {
  const auto env = make_env({{"NMO_NAME", "run1"}});
  EXPECT_EQ(env.get_string("NMO_NAME", "nmo"), "run1");
  EXPECT_EQ(env.get_string("NMO_MODE", "none"), "none");
}

TEST(Env, U64ParsesAndDefaults) {
  const auto env = make_env({{"NMO_PERIOD", "4096"}});
  EXPECT_EQ(env.get_u64("NMO_PERIOD", 0), 4096u);
  EXPECT_EQ(env.get_u64("MISSING", 7), 7u);
}

TEST(Env, U64MalformedFallsBackAndRecordsError) {
  const auto env = make_env({{"NMO_PERIOD", "4k96"}});
  EXPECT_EQ(env.get_u64("NMO_PERIOD", 11), 11u);
  ASSERT_EQ(env.parse_errors().size(), 1u);
  EXPECT_EQ(env.parse_errors()[0], "NMO_PERIOD");
}

TEST(Env, BoolVariants) {
  const auto env = make_env({{"A", "1"}, {"B", "true"}, {"C", "YES"}, {"D", "on"},
                             {"E", "0"}, {"F", "false"}, {"G", "No"}, {"H", "off"}});
  EXPECT_TRUE(env.get_bool("A", false));
  EXPECT_TRUE(env.get_bool("B", false));
  EXPECT_TRUE(env.get_bool("C", false));
  EXPECT_TRUE(env.get_bool("D", false));
  EXPECT_FALSE(env.get_bool("E", true));
  EXPECT_FALSE(env.get_bool("F", true));
  EXPECT_FALSE(env.get_bool("G", true));
  EXPECT_FALSE(env.get_bool("H", true));
}

TEST(Env, BoolUnsetAndMalformed) {
  const auto env = make_env({{"X", "maybe"}});
  EXPECT_TRUE(env.get_bool("MISSING", true));
  EXPECT_FALSE(env.get_bool("MISSING", false));
  EXPECT_TRUE(env.get_bool("X", true));  // malformed -> default
  EXPECT_FALSE(env.parse_errors().empty());
}

TEST(Env, SizePlainNumberUsesPlainUnit) {
  // Table I documents NMO_BUFSIZE/NMO_AUXBUFSIZE in MiB: "1" means 1 MiB.
  const auto env = make_env({{"NMO_BUFSIZE", "4"}});
  EXPECT_EQ(env.get_size("NMO_BUFSIZE", kMiB, kMiB), 4 * kMiB);
}

TEST(Env, SizeExplicitSuffixWins) {
  const auto env = make_env({{"NMO_AUXBUFSIZE", "256K"}});
  EXPECT_EQ(env.get_size("NMO_AUXBUFSIZE", kMiB, kMiB), 256 * kKiB);
}

TEST(Env, SizeUnsetDefault) {
  const auto env = make_env({});
  EXPECT_EQ(env.get_size("NMO_AUXBUFSIZE", kMiB, kMiB), kMiB);
}

TEST(Env, SizeMalformed) {
  const auto env = make_env({{"NMO_BUFSIZE", "many"}});
  EXPECT_EQ(env.get_size("NMO_BUFSIZE", 3 * kMiB, kMiB), 3 * kMiB);
  EXPECT_FALSE(env.parse_errors().empty());
}

TEST(Env, ProcessEnvironmentLookup) {
  ::setenv("NMO_TEST_VARIABLE_XYZ", "present", 1);
  const Env env;
  EXPECT_EQ(env.get_string("NMO_TEST_VARIABLE_XYZ", ""), "present");
  ::unsetenv("NMO_TEST_VARIABLE_XYZ");
  EXPECT_EQ(env.get_string("NMO_TEST_VARIABLE_XYZ", "gone"), "gone");
}

}  // namespace
}  // namespace nmo
