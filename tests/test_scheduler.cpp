// The bounded session scheduler: admission-control policies, lifecycle
// accounting, worker-pool hygiene, and byte-identical parity with the
// thread-per-session baseline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/profiler.hpp"
#include "store/region_file.hpp"
#include "store/scheduler.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"
#include "workloads/stream.hpp"

namespace nmo::store {
namespace {

namespace fs = std::filesystem;
using core::SessionState;

/// A manually released gate: lets a test hold a worker busy so submissions
/// pile up in the admission queue deterministically.
class Gate {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Polls until `predicate` holds (bounded); avoids raw sleeps for state
/// that is guaranteed to converge.
template <typename Predicate>
bool eventually(Predicate predicate, std::chrono::milliseconds limit = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nmo_scheduler_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// ---------------------------------------------------------- configuration --

TEST_F(SchedulerTest, ZeroWorkerConfigIsAnError) {
  SchedulerConfig config;
  config.max_workers = 0;
  EXPECT_THROW(Scheduler{config}, std::invalid_argument);
}

TEST_F(SchedulerTest, DefaultWorkerCountIsHardwareConcurrencyAtLeastOne) {
  EXPECT_GE(default_max_workers(), 1u);
  SchedulerConfig config;
  EXPECT_EQ(config.max_workers, default_max_workers());
}

TEST_F(SchedulerTest, AdmissionPolicyNamesRoundTrip) {
  for (const auto policy : {AdmissionPolicy::kBlock, AdmissionPolicy::kReject,
                            AdmissionPolicy::kShedOldest}) {
    EXPECT_EQ(parse_admission_policy(to_string(policy)), policy);
  }
  EXPECT_FALSE(parse_admission_policy("drop-newest").has_value());
}

// --------------------------------------------------------- status ledger --

TEST_F(SchedulerTest, StatusLedgerStaysBoundedByRetention) {
  // The leak this issue fixes: a long-lived pool used to keep one
  // TaskStatus per submission forever unless every caller forgot() its
  // ids.  With a retention bound the ledger reaps terminal statuses
  // oldest-first and stays bounded over arbitrarily many submissions.
  constexpr std::size_t kRetention = 16;
  constexpr int kTasks = 400;
  SchedulerConfig config;
  config.max_workers = 2;
  config.status_retention = kRetention;
  Scheduler scheduler(config);
  std::vector<TaskId> ids;
  for (int i = 0; i < kTasks; ++i) {
    const auto id = scheduler.submit([](const TaskStatus&) {});
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  scheduler.wait_idle();
  EXPECT_LE(scheduler.status_count(), kRetention);
  EXPECT_EQ(scheduler.stats().completed, static_cast<std::uint64_t>(kTasks));
  // The oldest ids were reaped; the most recent terminal one survives.
  EXPECT_FALSE(scheduler.status(ids.front()).has_value());
  EXPECT_TRUE(scheduler.status(ids.back()).has_value());
}

TEST_F(SchedulerTest, ZeroRetentionKeepsEveryStatusUntilForgotten) {
  SchedulerConfig config;
  config.max_workers = 2;
  config.status_retention = 0;  // opt out: the caller promises to forget()
  Scheduler scheduler(config);
  constexpr int kTasks = 64;
  std::vector<TaskId> ids;
  for (int i = 0; i < kTasks; ++i) {
    const auto id = scheduler.submit([](const TaskStatus&) {});
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  scheduler.wait_idle();
  EXPECT_EQ(scheduler.status_count(), static_cast<std::size_t>(kTasks));
  for (const auto id : ids) EXPECT_TRUE(scheduler.forget(id));
  EXPECT_EQ(scheduler.status_count(), 0u);
}

TEST_F(SchedulerTest, RetentionNeverReapsLiveTasks) {
  // Retention 1 with workers parked on a gate: the queued/running tasks
  // must all stay queryable - only *terminal* statuses are reaped.
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 2;
  config.status_retention = 1;
  Scheduler scheduler(config);
  std::vector<TaskId> ids;
  for (int i = 0; i < 8; ++i) {
    const auto id = scheduler.submit([&](const TaskStatus&) { gate.wait(); });
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  for (const auto id : ids) {
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_NE(status->state, SessionState::kDone);
  }
  gate.open();
  scheduler.wait_idle();
  EXPECT_LE(scheduler.status_count(), 1u);
}

// ------------------------------------------------------- basic scheduling --

TEST_F(SchedulerTest, RunsEveryTaskAndAccountsStats) {
  constexpr int kTasks = 50;
  std::atomic<int> ran{0};
  SchedulerConfig config;
  config.max_workers = 4;
  {
    Scheduler scheduler(config);
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_TRUE(scheduler.submit([&ran](const TaskStatus&) { ++ran; }).has_value());
    }
    scheduler.wait_idle();
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.workers, 4u);
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(stats.admitted, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_LE(stats.peak_occupancy, 4u);
    EXPECT_GE(stats.peak_occupancy, 1u);
    EXPECT_GE(stats.queue_wait_ns_total, stats.queue_wait_ns_max);
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST_F(SchedulerTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    SchedulerConfig config;
    config.max_workers = 1;
    Scheduler scheduler(config);
    for (int i = 0; i < 20; ++i) {
      scheduler.submit([&ran](const TaskStatus&) { ++ran; });
    }
    // No wait_idle: the destructor itself must drain.
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST_F(SchedulerTest, TaskStatusReportsLifecycleAndWorker) {
  SchedulerConfig config;
  config.max_workers = 2;
  Scheduler scheduler(config);
  const auto id = scheduler.submit([](const TaskStatus& status) {
    EXPECT_EQ(status.state, SessionState::kRunning);
    EXPECT_LT(status.worker, 2u);
  });
  ASSERT_TRUE(id.has_value());
  scheduler.wait_idle();
  const auto status = scheduler.status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, SessionState::kDone);
  EXPECT_FALSE(scheduler.status(99999).has_value());
}

// ------------------------------------------------------- admission control --

TEST_F(SchedulerTest, QueueFullRejectsWhenPolicyReject) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.queue_depth = 1;
  config.policy = AdmissionPolicy::kReject;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  std::atomic<int> ran{0};
  const auto queued = scheduler.submit([&ran](const TaskStatus&) { ++ran; });
  EXPECT_TRUE(queued.has_value());  // fills the single queue slot
  const auto rejected = scheduler.submit([&ran](const TaskStatus&) { ++ran; });
  EXPECT_FALSE(rejected.has_value());  // queue full -> turned away

  gate.open();
  scheduler.wait_idle();
  EXPECT_EQ(ran.load(), 1);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST_F(SchedulerTest, QueueFullBlocksWhenPolicyBlock) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.queue_depth = 1;
  config.policy = AdmissionPolicy::kBlock;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));
  ASSERT_TRUE(scheduler.submit([](const TaskStatus&) {}).has_value());  // queue now full

  std::atomic<bool> third_submitted{false};
  std::atomic<bool> third_ran{false};
  std::thread submitter([&] {
    const auto id = scheduler.submit([&third_ran](const TaskStatus&) { third_ran = true; });
    EXPECT_TRUE(id.has_value());
    third_submitted = true;
  });

  // The submitter must be backpressured while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_submitted.load());

  gate.open();
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  scheduler.wait_idle();
  EXPECT_TRUE(third_ran.load());
  EXPECT_EQ(scheduler.stats().rejected, 0u);
}

TEST_F(SchedulerTest, ShedOldestDropsOldestLowestPriorityTask) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.queue_depth = 2;
  config.policy = AdmissionPolicy::kShedOldest;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  std::atomic<bool> victim_ran{false};
  std::atomic<int> survivors_ran{0};
  const auto victim =
      scheduler.submit([&victim_ran](const TaskStatus&) { victim_ran = true; }, 0);
  const auto high =
      scheduler.submit([&survivors_ran](const TaskStatus&) { ++survivors_ran; }, 1);
  ASSERT_TRUE(victim.has_value());
  ASSERT_TRUE(high.has_value());
  // Queue is at depth 2: the next submission sheds the oldest entry of the
  // lowest priority class - the victim, not the high-priority task.
  const auto third =
      scheduler.submit([&survivors_ran](const TaskStatus&) { ++survivors_ran; }, 0);
  ASSERT_TRUE(third.has_value());

  gate.open();
  scheduler.wait_idle();
  EXPECT_FALSE(victim_ran.load());
  EXPECT_EQ(survivors_ran.load(), 2);
  const auto victim_status = scheduler.status(*victim);
  ASSERT_TRUE(victim_status.has_value());
  EXPECT_EQ(victim_status->state, SessionState::kShed);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.admitted, 3u);
}

TEST_F(SchedulerTest, ShedOldestRejectsSubmissionRankedBelowEverythingQueued) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.queue_depth = 1;
  config.policy = AdmissionPolicy::kShedOldest;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  std::atomic<bool> high_ran{false};
  ASSERT_TRUE(scheduler.submit([&high_ran](const TaskStatus&) { high_ran = true; }, 2));
  // Queue full with a priority-2 task: a priority-0 submission must NOT
  // displace it - the newcomer is the one turned away.
  std::atomic<bool> low_ran{false};
  const auto low = scheduler.submit([&low_ran](const TaskStatus&) { low_ran = true; }, 0);
  EXPECT_FALSE(low.has_value());

  gate.open();
  scheduler.wait_idle();
  EXPECT_TRUE(high_ran.load());
  EXPECT_FALSE(low_ran.load());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.rejected, 1u);
}

// ------------------------------------------------------------- ordering --

TEST_F(SchedulerTest, FifoOrderWithinOnePriorityClass) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  std::mutex order_mutex;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    scheduler.submit([&, i](const TaskStatus&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
    });
  }
  gate.open();
  scheduler.wait_idle();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_F(SchedulerTest, HigherPriorityClassRunsFirst) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto record = [&](const char* label) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.emplace_back(label);
  };
  scheduler.submit([&](const TaskStatus&) { record("low-0"); }, 0);
  scheduler.submit([&](const TaskStatus&) { record("high-0"); }, 2);
  scheduler.submit([&](const TaskStatus&) { record("mid-0"); }, 1);
  scheduler.submit([&](const TaskStatus&) { record("high-1"); }, 2);

  gate.open();
  scheduler.wait_idle();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "high-0");
  EXPECT_EQ(order[1], "high-1");  // FIFO within the high class
  EXPECT_EQ(order[2], "mid-0");
  EXPECT_EQ(order[3], "low-0");
}

// ------------------------------------------------------------- resilience --

TEST_F(SchedulerTest, FailedTaskDoesNotWedgeThePool) {
  SchedulerConfig config;
  config.max_workers = 2;
  Scheduler scheduler(config);

  std::atomic<int> ran{0};
  std::optional<TaskId> failing;
  for (int i = 0; i < 10; ++i) {
    if (i == 3) {
      failing = scheduler.submit(
          [](const TaskStatus&) { throw std::runtime_error("session exploded"); });
    } else {
      scheduler.submit([&ran](const TaskStatus&) { ++ran; });
    }
  }
  scheduler.wait_idle();

  // The pool survived the throw and kept serving - including new work.
  scheduler.submit([&ran](const TaskStatus&) { ++ran; });
  scheduler.wait_idle();
  EXPECT_EQ(ran.load(), 10);
  ASSERT_TRUE(failing.has_value());
  const auto status = scheduler.status(*failing);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, SessionState::kFailed);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 10u);
}

TEST_F(SchedulerTest, WorkerReuseNeverLeaksProfilerBindingBetweenTasks) {
  SchedulerConfig config;
  config.max_workers = 1;  // both tasks run on the same reused worker
  Scheduler scheduler(config);

  core::Profiler profiler{core::NmoConfig{}};
  scheduler.submit([&profiler](const TaskStatus&) {
    // A misbehaving task that installs a binding and never restores it.
    core::set_active_profiler(&profiler);
  });
  scheduler.wait_idle();

  std::atomic<bool> clean{false};
  scheduler.submit(
      [&clean](const TaskStatus&) { clean = core::active_profiler() == nullptr; });
  scheduler.wait_idle();
  EXPECT_TRUE(clean.load());
}

// --------------------------------------------- run_sessions integration --

std::vector<SessionJob> tiny_jobs(std::size_t n) {
  std::vector<SessionJob> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].name = "job-" + std::to_string(i);
    jobs[i].nmo.enable = true;
    jobs[i].nmo.mode = core::Mode::kSample;
    jobs[i].nmo.period = 512;
    jobs[i].engine.threads = 2;
    jobs[i].engine.machine.hierarchy.cores = 2;
    jobs[i].engine.seed = 100 + i;
    jobs[i].make_workload = [] {
      wl::StreamConfig cfg;
      cfg.array_elems = 1 << 12;
      cfg.iterations = 1;
      return std::make_unique<wl::Stream>(cfg);
    };
  }
  return jobs;
}

TEST_F(SchedulerTest, ThirtyTwoSessionsOnFourWorkersMatchThreadPerSessionBaseline) {
  // The PR's acceptance oracle: a 32-job run capped at 4 workers must
  // produce a merged trace byte-identical (count + MD5) to the
  // thread-per-session baseline.
  const auto jobs = tiny_jobs(32);

  SessionStore baseline_store(path("baseline"));
  RunOptions threaded_options;
  threaded_options.threaded = true;
  const auto baseline = run_sessions(baseline_store, jobs, threaded_options).results;
  ASSERT_EQ(baseline.size(), 32u);

  RunOptions options;
  options.scheduler.max_workers = 4;
  options.scheduler.queue_depth = 8;
  options.scheduler.policy = AdmissionPolicy::kBlock;
  SessionStore pool_store(path("pool"));
  const auto run = run_sessions(pool_store, jobs, options);
  ASSERT_EQ(run.results.size(), 32u);

  TraceMerger baseline_merger;
  TraceMerger pool_merger;
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(baseline[i].error.empty()) << baseline[i].error;
    ASSERT_TRUE(run.results[i].error.empty()) << run.results[i].error;
    // Per-session traces are already byte-identical...
    EXPECT_EQ(run.results[i].fingerprint, baseline[i].fingerprint) << "job " << i;
    baseline_merger.add_input(baseline[i].session.trace_path);
    pool_merger.add_input(run.results[i].session.trace_path);
  }
  // ...and so is the merged trace.
  const auto baseline_stats = baseline_merger.merge_to(path("baseline.nmot"));
  const auto pool_stats = pool_merger.merge_to(path("pool.nmot"));
  ASSERT_TRUE(baseline_stats.has_value()) << baseline_merger.error();
  ASSERT_TRUE(pool_stats.has_value()) << pool_merger.error();
  EXPECT_GT(pool_stats->samples, 0u);
  EXPECT_EQ(pool_stats->samples, baseline_stats->samples);
  EXPECT_EQ(pool_stats->fingerprint, baseline_stats->fingerprint);

  const auto& stats = run.stats;
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.admitted, 32u);
  EXPECT_EQ(stats.completed, 32u);
  EXPECT_LE(stats.peak_occupancy, 4u);
  EXPECT_LE(stats.peak_queue_depth, 8u);
}

TEST_F(SchedulerTest, RunSessionsWritesSessionAndSchedulerMetadata) {
  const auto jobs = tiny_jobs(3);
  SessionStore store(path("store"));
  RunOptions options;
  options.scheduler.max_workers = 2;
  const auto run = run_sessions(store, jobs, options);

  const auto sched_meta =
      read_metadata_file(store.root() + "/" + std::string(kSchedulerMetaFile));
  ASSERT_TRUE(sched_meta.has_value());
  EXPECT_EQ(sched_meta->at("workers"), "2");
  EXPECT_EQ(sched_meta->at("admitted"), "3");
  EXPECT_EQ(sched_meta->at("completed"), "3");
  EXPECT_EQ(sched_meta->at("policy"), "block");
  // The tenant table surfaces even for a tenant-less run: one implicit
  // "default" row whose counters mirror the aggregate.
  EXPECT_EQ(sched_meta->at("tenants"), "1");
  EXPECT_EQ(sched_meta->at("tenant.0.name"), "default");
  EXPECT_EQ(sched_meta->at("tenant.0.weight"), "1");
  EXPECT_EQ(sched_meta->at("tenant.0.admitted"), "3");
  EXPECT_EQ(sched_meta->at("tenant.0.completed"), "3");

  for (const auto& r : run.results) {
    ASSERT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.state, SessionState::kDone);
    EXPECT_EQ(r.tenant, "default");
    EXPECT_EQ(r.report.sched_state, SessionState::kDone);
    EXPECT_LT(r.worker, 2u);
    // Placement must survive into the report (profile() replaces the
    // report wholesale, so these are filled afterwards).
    EXPECT_EQ(r.report.sched_worker, r.worker);
    EXPECT_EQ(r.report.sched_queue_wait_ns, r.queue_wait_ns);
    const auto meta =
        read_metadata_file(r.session.dir + "/" + std::string(kSessionMetaFile));
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->at("state"), "done");
    EXPECT_EQ(meta->at("tenant"), "default");
    EXPECT_EQ(meta->at("fingerprint"), r.fingerprint);
    EXPECT_EQ(meta->at("samples"), std::to_string(r.samples));
    // No budget configured -> no budget keys.
    EXPECT_EQ(meta->count("budget_state"), 0u);
    // The region sidecar rides along with every session trace.
    const auto regions = read_region_file(region_path_for(r.session.trace_path));
    ASSERT_TRUE(regions.has_value());
    EXPECT_EQ(regions->size(), 3u);  // STREAM tags a, b, c
    EXPECT_EQ((*regions)[0].name, "a");
  }
}

TEST_F(SchedulerTest, FailedJobIsReportedAndDoesNotBlockOthers) {
  auto jobs = tiny_jobs(4);
  jobs[1].make_workload = nullptr;  // no workload factory -> job fails
  SessionStore store(path("store"));
  RunOptions options;
  options.scheduler.max_workers = 2;
  const auto run = run_sessions(store, jobs, options);

  ASSERT_EQ(run.results.size(), 4u);
  EXPECT_EQ(run.results[1].state, SessionState::kFailed);
  EXPECT_FALSE(run.results[1].error.empty());
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_EQ(run.results[i].state, SessionState::kDone) << run.results[i].error;
    EXPECT_GT(run.results[i].samples, 0u);
  }
  EXPECT_EQ(run.stats.failed, 1u);
  EXPECT_EQ(run.stats.completed, 3u);
}

TEST_F(SchedulerTest, DefaultedRunOptionsMatchThreadedBaselineByteForByte) {
  // The API-migration oracle: run_sessions with a defaulted RunOptions
  // (the new one-call entry point) must reproduce the legacy behavior -
  // same per-session fingerprints, byte-identical merged trace.
  const auto jobs = tiny_jobs(6);

  SessionStore threaded_store(path("threaded"));
  RunOptions threaded_options;
  threaded_options.threaded = true;
  const auto baseline = run_sessions(threaded_store, jobs, threaded_options).results;

  SessionStore pool_store(path("pool"));
  const auto run = run_sessions(pool_store, jobs);  // everything defaulted

  ASSERT_EQ(run.results.size(), baseline.size());
  TraceMerger baseline_merger;
  TraceMerger pool_merger;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(baseline[i].error.empty()) << baseline[i].error;
    ASSERT_TRUE(run.results[i].error.empty()) << run.results[i].error;
    EXPECT_EQ(run.results[i].fingerprint, baseline[i].fingerprint) << "job " << i;
    baseline_merger.add_input(baseline[i].session.trace_path);
    pool_merger.add_input(run.results[i].session.trace_path);
  }
  const auto baseline_stats = baseline_merger.merge_to(path("baseline.nmot"));
  const auto pool_stats = pool_merger.merge_to(path("pool.nmot"));
  ASSERT_TRUE(baseline_stats.has_value()) << baseline_merger.error();
  ASSERT_TRUE(pool_stats.has_value()) << pool_merger.error();
  EXPECT_EQ(pool_stats->samples, baseline_stats->samples);
  EXPECT_EQ(pool_stats->fingerprint, baseline_stats->fingerprint);
}

TEST_F(SchedulerTest, DeprecatedShimsForwardToTheRunOptionsRunner) {
  // The pre-RunOptions signatures survive as thin shims; both must behave
  // exactly like their RunOptions equivalents.
  const auto jobs = tiny_jobs(2);

  SessionStore config_store(path("config-shim"));
  SchedulerConfig config;
  config.max_workers = 2;
  const auto via_config = run_sessions(config_store, jobs, config);
  ASSERT_EQ(via_config.results.size(), 2u);

  SessionStore threaded_store(path("threaded-shim"));
  const auto via_threaded = run_sessions_threaded(threaded_store, jobs);
  ASSERT_EQ(via_threaded.size(), 2u);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(via_config.results[i].error.empty()) << via_config.results[i].error;
    ASSERT_TRUE(via_threaded[i].error.empty()) << via_threaded[i].error;
    EXPECT_EQ(via_config.results[i].fingerprint, via_threaded[i].fingerprint);
  }
  EXPECT_EQ(via_config.stats.completed, 2u);
}

// ------------------------------------------------------ deadlines / EDF --

TEST_F(SchedulerTest, EdfOrdersByDeadlineWithinOnePriorityClass) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto record = [&](const char* label) {
    return [&, label](const TaskStatus&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.emplace_back(label);
    };
  };
  // Deadlines far enough out that nothing expires; submission order is
  // deliberately NOT deadline order.
  const auto submit_with_deadline = [&](const char* label, std::uint64_t deadline_ns) {
    SubmitOptions options;
    options.deadline_ns = deadline_ns;
    ASSERT_TRUE(scheduler.submit(record(label), options).has_value());
  };
  submit_with_deadline("d-30s", 30'000'000'000ull);
  submit_with_deadline("d-10s", 10'000'000'000ull);
  ASSERT_TRUE(scheduler.submit(record("no-deadline")).has_value());
  submit_with_deadline("d-20s", 20'000'000'000ull);

  gate.open();
  scheduler.wait_idle();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "d-10s");
  EXPECT_EQ(order[1], "d-20s");
  EXPECT_EQ(order[2], "d-30s");
  EXPECT_EQ(order[3], "no-deadline");  // no deadline sorts last in the class
}

TEST_F(SchedulerTest, DeadlineExpiredWhileQueuedBecomesTerminalExpired) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  // A 1 ns relative deadline is necessarily past by the time any worker
  // can pop the entry: the task must become terminal kExpired without
  // ever occupying the worker.
  std::atomic<bool> doomed_ran{false};
  SubmitOptions doomed_options;
  doomed_options.deadline_ns = 1;
  const auto doomed =
      scheduler.submit([&doomed_ran](const TaskStatus&) { doomed_ran = true; },
                       doomed_options);
  ASSERT_TRUE(doomed.has_value());
  std::atomic<bool> survivor_ran{false};
  ASSERT_TRUE(
      scheduler.submit([&survivor_ran](const TaskStatus&) { survivor_ran = true; }));

  gate.open();
  scheduler.wait_idle();
  EXPECT_FALSE(doomed_ran.load());
  EXPECT_TRUE(survivor_ran.load());
  const auto status = scheduler.status(*doomed);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, SessionState::kExpired);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.admitted, 2u);  // the gate task and the survivor
  // Expired is terminal: forget() releases the ledger entry.
  EXPECT_TRUE(scheduler.forget(*doomed));
}

// ------------------------------------------------- multi-tenant fairness --

TEST_F(SchedulerTest, WeightedFairSharesUnderThreeTenantOverload) {
  // Three tenants with weights 4/2/1 keep a single gated worker saturated:
  // stride scheduling must divide the first 70 admissions 40/20/10 (the
  // acceptance gate allows +-10%, but with every entry queued before the
  // gate opens the pick order is fully deterministic).
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.tenants = {{"gold", 4, 0}, {"silver", 2, 0}, {"bronze", 1, 0}};
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  constexpr int kPerTenant = 70;
  std::mutex order_mutex;
  std::vector<std::string> order;
  for (int i = 0; i < kPerTenant; ++i) {
    for (const char* tenant : {"gold", "silver", "bronze"}) {
      SubmitOptions options;
      options.tenant = tenant;
      ASSERT_TRUE(scheduler
                      .submit(
                          [&, tenant](const TaskStatus&) {
                            std::lock_guard<std::mutex> lock(order_mutex);
                            order.emplace_back(tenant);
                          },
                          options)
                      .has_value());
    }
  }
  gate.open();
  scheduler.wait_idle();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(3 * kPerTenant));

  // Shares over the first 70 admissions: 40/20/10 expected, +-10% gate.
  std::map<std::string, int> first70;
  for (std::size_t i = 0; i < 70; ++i) ++first70[order[i]];
  EXPECT_GE(first70["gold"], 36) << "gold share " << first70["gold"];
  EXPECT_LE(first70["gold"], 44);
  EXPECT_GE(first70["silver"], 18) << "silver share " << first70["silver"];
  EXPECT_LE(first70["silver"], 22);
  EXPECT_GE(first70["bronze"], 9) << "bronze share " << first70["bronze"];
  EXPECT_LE(first70["bronze"], 11);

  // No starvation: every tenant completed everything it submitted.
  const auto stats = scheduler.stats();
  ASSERT_GE(stats.tenants.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(stats.tenants[t].completed, static_cast<std::uint64_t>(kPerTenant))
        << stats.tenants[t].name;
    EXPECT_EQ(stats.tenants[t].shed, 0u);
    EXPECT_EQ(stats.tenants[t].expired, 0u);
  }
}

TEST_F(SchedulerTest, ShedOldestShedsProportionallyToTenantWeight) {
  // Round-robin overload of a depth-70 queue: the weighted-overage victim
  // rule must leave surviving queue slots proportional to weight
  // (equilibrium 40/20/10 for weights 4/2/1, +-10% gate).
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.queue_depth = 70;
  config.policy = AdmissionPolicy::kShedOldest;
  config.tenants = {{"gold", 4, 0}, {"silver", 2, 0}, {"bronze", 1, 0}};
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  constexpr int kPerTenant = 200;
  std::atomic<int> gold_ran{0};
  std::atomic<int> silver_ran{0};
  std::atomic<int> bronze_ran{0};
  for (int i = 0; i < kPerTenant; ++i) {
    for (const auto& [tenant, counter] :
         {std::pair<const char*, std::atomic<int>*>{"gold", &gold_ran},
          {"silver", &silver_ran},
          {"bronze", &bronze_ran}}) {
      SubmitOptions options;
      options.tenant = tenant;
      auto* const ran = counter;
      scheduler.submit([ran](const TaskStatus&) { ++*ran; }, options);
    }
  }
  gate.open();
  scheduler.wait_idle();

  const int survivors = gold_ran.load() + silver_ran.load() + bronze_ran.load();
  EXPECT_EQ(survivors, 70);  // the queue never exceeded its depth
  EXPECT_GE(gold_ran.load(), 36) << "gold survivors " << gold_ran.load();
  EXPECT_LE(gold_ran.load(), 44);
  EXPECT_GE(silver_ran.load(), 18) << "silver survivors " << silver_ran.load();
  EXPECT_LE(silver_ran.load(), 22);
  EXPECT_GE(bronze_ran.load(), 9) << "bronze survivors " << bronze_ran.load();
  EXPECT_LE(bronze_ran.load(), 12);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(3 * kPerTenant - 70));
  // Zero cross-tenant starvation: every tenant kept some share.
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_GT(stats.tenants[t].completed, 0u) << stats.tenants[t].name;
  }
}

TEST_F(SchedulerTest, PerTenantQueueCapShedsFromTheSameTenantOnly) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.policy = AdmissionPolicy::kShedOldest;
  config.tenants = {{"capped", 1, 2}, {"free", 1, 0}};
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));

  SubmitOptions capped;
  capped.tenant = "capped";
  SubmitOptions free_tenant;
  free_tenant.tenant = "free";

  std::atomic<bool> free_ran{false};
  ASSERT_TRUE(
      scheduler.submit([&free_ran](const TaskStatus&) { free_ran = true; }, free_tenant));
  std::atomic<bool> victim_ran{false};
  const auto victim =
      scheduler.submit([&victim_ran](const TaskStatus&) { victim_ran = true; }, capped);
  ASSERT_TRUE(victim.has_value());
  std::atomic<int> capped_ran{0};
  ASSERT_TRUE(scheduler.submit([&capped_ran](const TaskStatus&) { ++capped_ran; }, capped));
  // "capped" is at its cap of 2: the third submission must displace the
  // tenant's OWN oldest entry - never the other tenant's.
  ASSERT_TRUE(scheduler.submit([&capped_ran](const TaskStatus&) { ++capped_ran; }, capped));

  gate.open();
  scheduler.wait_idle();
  EXPECT_TRUE(free_ran.load());
  EXPECT_FALSE(victim_ran.load());
  EXPECT_EQ(capped_ran.load(), 2);
  const auto status = scheduler.status(*victim);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, SessionState::kShed);
  const auto stats = scheduler.stats();
  ASSERT_GE(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].shed, 1u);  // "capped"
  EXPECT_EQ(stats.tenants[1].shed, 0u);  // "free"
}

TEST_F(SchedulerTest, RequeueBypassesAdmissionControlAndNeverBlocks) {
  Gate gate;
  SchedulerConfig config;
  config.max_workers = 1;
  config.queue_depth = 1;
  config.policy = AdmissionPolicy::kBlock;
  Scheduler scheduler(config);

  std::atomic<bool> running{false};
  scheduler.submit([&](const TaskStatus&) {
    running = true;
    gate.wait();
  });
  ASSERT_TRUE(eventually([&] { return running.load(); }));
  std::atomic<int> ran{0};
  ASSERT_TRUE(scheduler.submit([&ran](const TaskStatus&) { ++ran; }));  // queue now full

  // submit() would block here; requeue() must enqueue immediately (it is
  // how a budget-overrun session resubmits itself from INSIDE a worker,
  // where blocking on queue space would deadlock the pool).
  const auto requeued = scheduler.requeue([&ran](const TaskStatus&) { ++ran; }, {});
  ASSERT_TRUE(requeued.has_value());

  gate.open();
  scheduler.wait_idle();
  EXPECT_EQ(ran.load(), 2);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.requeued, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

// ------------------------------------------- budgets / overrun policies --

/// One deliberately long job (relative to the tiny_jobs mix): enough
/// accesses that a 1 ns budget trips at the first cooperative checkpoint
/// with most of the replay still ahead.
SessionJob long_job() {
  SessionJob job;
  job.name = "long";
  job.nmo.enable = true;
  job.nmo.mode = core::Mode::kSample;
  job.nmo.period = 256;
  job.engine.threads = 2;
  job.engine.machine.hierarchy.cores = 2;
  job.engine.seed = 42;
  job.make_workload = [] {
    wl::StreamConfig cfg;
    cfg.array_elems = 1 << 16;
    cfg.iterations = 4;
    return std::make_unique<wl::Stream>(cfg);
  };
  return job;
}

TEST_F(SchedulerTest, BudgetOverrunTruncatesTraceButKeepsItVerifiable) {
  // Unbudgeted baseline first: how many samples the full replay yields.
  SessionStore baseline_store(path("baseline"));
  const auto baseline = run_sessions(baseline_store, {long_job()});
  ASSERT_EQ(baseline.results.size(), 1u);
  ASSERT_TRUE(baseline.results[0].error.empty()) << baseline.results[0].error;
  ASSERT_GT(baseline.results[0].samples, 0u);
  EXPECT_EQ(baseline.results[0].budget_state, "");  // no budget -> no state

  // A 1 ns budget has already overrun by the first checkpoint poll: the
  // session must finalize a valid truncated trace and stay kDone under
  // the default kTruncate policy.
  auto job = long_job();
  job.limits.budget_ns = 1;
  SessionStore store(path("store"));
  const auto run = run_sessions(store, {job});
  ASSERT_EQ(run.results.size(), 1u);
  const auto& r = run.results[0];
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.state, SessionState::kDone);
  EXPECT_EQ(r.budget_state, "truncated");
  EXPECT_TRUE(r.report.budget_truncated);
  EXPECT_GT(r.report.budget_checkpoints, 0u);
  EXPECT_LT(r.samples, baseline.results[0].samples);

  // The truncated trace verifies clean and round-trips its fingerprint.
  TraceReader reader(r.session.trace_path);
  const auto trace = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(trace.size(), r.samples);
  EXPECT_EQ(trace.fingerprint(), r.fingerprint);

  // session.meta records the budget outcome.
  const auto meta = read_metadata_file(r.session.dir + "/" + std::string(kSessionMetaFile));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("budget_state"), "truncated");
  EXPECT_GT(std::stoull(meta->at("budget_checkpoints")), 0u);
}

TEST_F(SchedulerTest, BudgetOverrunFailPolicyFailsAfterWritingArtifacts) {
  auto job = long_job();
  job.limits.budget_ns = 1;
  job.limits.on_overrun = OverrunPolicy::kFail;
  SessionStore store(path("store"));
  const auto run = run_sessions(store, {job});
  ASSERT_EQ(run.results.size(), 1u);
  const auto& r = run.results[0];
  EXPECT_EQ(r.state, SessionState::kFailed);
  EXPECT_NE(r.error.find("time budget exceeded"), std::string::npos) << r.error;
  EXPECT_EQ(r.budget_state, "truncated");
  EXPECT_EQ(run.stats.failed, 1u);

  // kFail reports a failure but never discards data: the truncated trace
  // is on disk and verify-clean.
  TraceReader reader(r.session.trace_path);
  const auto trace = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(trace.fingerprint(), r.fingerprint);
}

TEST_F(SchedulerTest, BudgetOverrunRequeuePolicyRetriesOnceThenTruncates) {
  auto job = long_job();
  job.limits.budget_ns = 1;  // both attempts overrun
  job.limits.on_overrun = OverrunPolicy::kRequeue;
  SessionStore store(path("store"));
  const auto run = run_sessions(store, {job});
  ASSERT_EQ(run.results.size(), 1u);
  const auto& r = run.results[0];
  // The second overrun keeps the truncated result instead of looping.
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.state, SessionState::kDone);
  EXPECT_EQ(r.budget_state, "truncated");
  EXPECT_EQ(run.stats.requeued, 1u);
  // Two attempts -> two session directories; the result points at the
  // retry's (fresh) session, and its trace verifies clean.
  EXPECT_EQ(store.sessions().size(), 2u);
  EXPECT_EQ(r.session.id, store.sessions()[1].id);
  TraceReader reader(r.session.trace_path);
  const auto trace = reader.read_all();
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(trace.fingerprint(), r.fingerprint);
}

TEST_F(SchedulerTest, RunSessionsDeadlineExpiredJobNeverRuns) {
  // Two jobs on one worker: the 1 ns deadline is necessarily past by pop
  // time, so that job must come back kExpired - no session directory, no
  // samples - while its peer completes normally.
  std::vector<SessionJob> jobs = {long_job(), long_job()};
  jobs[1].name = "doomed";
  jobs[1].limits.deadline_ns = 1;
  SessionStore store(path("store"));
  RunOptions options;
  options.scheduler.max_workers = 1;
  const auto run = run_sessions(store, jobs, options);
  ASSERT_EQ(run.results.size(), 2u);

  ASSERT_TRUE(run.results[0].error.empty()) << run.results[0].error;
  EXPECT_EQ(run.results[0].state, SessionState::kDone);
  EXPECT_GT(run.results[0].samples, 0u);

  EXPECT_EQ(run.results[1].state, SessionState::kExpired);
  EXPECT_EQ(run.results[1].error, "deadline expired in admission queue");
  EXPECT_EQ(run.results[1].samples, 0u);
  EXPECT_TRUE(run.results[1].session.dir.empty());
  EXPECT_EQ(run.stats.expired, 1u);
  EXPECT_EQ(run.stats.completed, 1u);
  EXPECT_EQ(store.sessions().size(), 1u);  // only the surviving job ran
}

TEST_F(SchedulerTest, RunSessionsBillsJobsToTheirTenants) {
  auto jobs = tiny_jobs(4);
  jobs[0].tenant = "alpha";
  jobs[1].tenant = "alpha";
  jobs[2].tenant = "beta";
  // jobs[3] stays on the default tenant.
  SessionStore store(path("store"));
  RunOptions options;
  options.scheduler.max_workers = 2;
  options.scheduler.tenants = {{"alpha", 2, 0}, {"beta", 1, 0}};
  const auto run = run_sessions(store, jobs, options);

  EXPECT_EQ(run.results[0].tenant, "alpha");
  EXPECT_EQ(run.results[2].tenant, "beta");
  EXPECT_EQ(run.results[3].tenant, "default");
  ASSERT_EQ(run.stats.tenants.size(), 3u);  // alpha, beta + auto-registered default
  EXPECT_EQ(run.stats.tenants[0].name, "alpha");
  EXPECT_EQ(run.stats.tenants[0].weight, 2u);
  EXPECT_EQ(run.stats.tenants[0].completed, 2u);
  EXPECT_EQ(run.stats.tenants[1].completed, 1u);
  EXPECT_EQ(run.stats.tenants[2].name, "default");
  EXPECT_EQ(run.stats.tenants[2].completed, 1u);

  // scheduler.meta carries one row group per tenant.
  const auto sched_meta =
      read_metadata_file(store.root() + "/" + std::string(kSchedulerMetaFile));
  ASSERT_TRUE(sched_meta.has_value());
  EXPECT_EQ(sched_meta->at("tenants"), "3");
  EXPECT_EQ(sched_meta->at("tenant.0.name"), "alpha");
  EXPECT_EQ(sched_meta->at("tenant.0.weight"), "2");
  EXPECT_EQ(sched_meta->at("tenant.0.completed"), "2");
  EXPECT_EQ(sched_meta->at("tenant.1.name"), "beta");
  EXPECT_EQ(sched_meta->at("tenant.2.name"), "default");
  // And each session.meta names the tenant it billed against.
  const auto meta = read_metadata_file(run.results[2].session.dir + "/" +
                                       std::string(kSessionMetaFile));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("tenant"), "beta");
}

// ------------------------------------------------------ topology placement --

TEST_F(SchedulerTest, HomeNodeTasksAdmitOnTheirNodeWhenAWorkerMatches) {
  // 2 workers over a 2-node topology: worker 0 is node 0, worker 1 node 1.
  // With a generous placement window every home-node task must land on its
  // own node - zero misses, and the status carries the node.
  SchedulerConfig config;
  config.max_workers = 2;
  config.topology = sys::CpuTopology::synthetic(2, 4);
  config.placement_wait_ns = 10'000'000'000ull;  // 10 s: never falls back
  Scheduler scheduler(config);

  std::atomic<int> ran{0};
  std::vector<TaskId> ids;
  for (int i = 0; i < 8; ++i) {
    SubmitOptions options;
    options.home_node = static_cast<std::uint32_t>(i % 2);
    const auto id = scheduler.submit(
        [&ran, expect_node = *options.home_node](const TaskStatus& task) {
          EXPECT_EQ(task.node, expect_node);
          ++ran;
        },
        options);
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  scheduler.wait_idle();
  EXPECT_EQ(ran.load(), 8);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.placement_local, 8u);
  EXPECT_EQ(stats.placement_misses, 0u);
  ASSERT_EQ(stats.node_admitted.size(), 2u);
  EXPECT_EQ(stats.node_admitted[0], 4u);
  EXPECT_EQ(stats.node_admitted[1], 4u);
  for (const auto id : ids) {
    const auto status = scheduler.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, SessionState::kDone);
  }
}

TEST_F(SchedulerTest, HomeNodeFallsBackAfterBoundedWaitAndNeverStarves) {
  // One worker (node 0) and tasks homed to node 1: nothing can ever match,
  // so after the short placement window every task must still run - each
  // billed as a placement miss.  This is the no-starvation guarantee.
  SchedulerConfig config;
  config.max_workers = 1;
  config.topology = sys::CpuTopology::synthetic(2, 2);
  config.placement_wait_ns = 1'000'000;  // 1 ms
  Scheduler scheduler(config);

  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    SubmitOptions options;
    options.home_node = 1;
    ASSERT_TRUE(scheduler
                    .submit(
                        [&ran](const TaskStatus& task) {
                          EXPECT_EQ(task.node, 0u);
                          ++ran;
                        },
                        options)
                    .has_value());
  }
  scheduler.wait_idle();
  EXPECT_EQ(ran.load(), 4);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.placement_local, 0u);
  EXPECT_EQ(stats.placement_misses, 4u);
  ASSERT_EQ(stats.node_admitted.size(), 2u);
  EXPECT_EQ(stats.node_admitted[0], 4u);
  EXPECT_EQ(stats.node_admitted[1], 0u);
}

TEST_F(SchedulerTest, HomeNodeIsIgnoredWithoutATopology) {
  // A topology-free pool treats home_node as absent: no placement
  // accounting, single-node admission rows - the pre-topology behavior.
  SchedulerConfig config;
  config.max_workers = 2;
  Scheduler scheduler(config);

  std::atomic<int> ran{0};
  SubmitOptions options;
  options.home_node = 1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler.submit([&ran](const TaskStatus&) { ++ran; }, options)
                    .has_value());
  }
  scheduler.wait_idle();
  EXPECT_EQ(ran.load(), 4);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.placement_local, 0u);
  EXPECT_EQ(stats.placement_misses, 0u);
  ASSERT_EQ(stats.node_admitted.size(), 1u);
  EXPECT_EQ(stats.node_admitted[0], 4u);
}

TEST_F(SchedulerTest, RunSessionsWritesNodeRootsAndPlacementMeta) {
  auto jobs = tiny_jobs(4);
  jobs[0].home_node = 0;
  jobs[1].home_node = 1;
  jobs[2].home_node = 1;
  // jobs[3] has no home: flat layout, node-agnostic scheduling.
  SessionStore store(path("store"));
  RunOptions options;
  options.scheduler.max_workers = 2;
  options.scheduler.topology = sys::CpuTopology::synthetic(2, 4);
  options.scheduler.placement_wait_ns = 10'000'000'000ull;
  const auto run = run_sessions(store, jobs, options);

  for (const auto& result : run.results) {
    EXPECT_EQ(result.state, SessionState::kDone) << result.error;
  }
  // Homed sessions live under their node roots; the flat job stays flat.
  EXPECT_NE(run.results[0].session.dir.find("/node-0/"), std::string::npos);
  EXPECT_NE(run.results[1].session.dir.find("/node-1/"), std::string::npos);
  EXPECT_NE(run.results[2].session.dir.find("/node-1/"), std::string::npos);
  EXPECT_EQ(run.results[3].session.dir.find("/node-"), std::string::npos);
  // Homed jobs admitted on their own node, billed local.
  EXPECT_EQ(run.stats.placement_local, 3u);
  EXPECT_EQ(run.stats.placement_misses, 0u);
  EXPECT_EQ(run.results[0].node, 0u);
  EXPECT_EQ(run.results[1].node, 1u);
  EXPECT_EQ(run.results[2].node, 1u);

  // scheduler.meta carries the placement rows nmo-trace prints back.
  const auto sched_meta =
      read_metadata_file(store.root() + "/" + std::string(kSchedulerMetaFile));
  ASSERT_TRUE(sched_meta.has_value());
  EXPECT_EQ(sched_meta->at("topology.nodes"), "2");
  EXPECT_EQ(sched_meta->at("placement_local"), "3");
  EXPECT_EQ(sched_meta->at("placement_misses"), "0");
  ASSERT_TRUE(sched_meta->count("node.0.admitted"));
  ASSERT_TRUE(sched_meta->count("node.1.admitted"));
  EXPECT_EQ(std::stoi(sched_meta->at("node.0.admitted")) +
                std::stoi(sched_meta->at("node.1.admitted")),
            4);

  // session.meta of a homed job names its node and home.
  const auto meta = read_metadata_file(run.results[1].session.dir + "/" +
                                       std::string(kSessionMetaFile));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->at("home_node"), "1");
  EXPECT_EQ(meta->at("node"), "1");
}

}  // namespace
}  // namespace nmo::store
