// RunningStats (Welford) and LinearFit.
#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace nmo {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of that sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 3;
    (i < 40 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(LinearFit, ExactLine) {
  LinearFit f;
  for (int x = 0; x < 10; ++x) f.add(x, 3.0 * x + 2.0);
  EXPECT_NEAR(f.slope(), 3.0, 1e-12);
  EXPECT_NEAR(f.intercept(), 2.0, 1e-12);
  EXPECT_NEAR(f.correlation(), 1.0, 1e-12);
}

TEST(LinearFit, NegativeSlope) {
  LinearFit f;
  for (int x = 0; x < 10; ++x) f.add(x, -2.0 * x + 7.0);
  EXPECT_NEAR(f.slope(), -2.0, 1e-12);
  EXPECT_NEAR(f.correlation(), -1.0, 1e-12);
}

TEST(LinearFit, NoisyDataStillCorrelated) {
  LinearFit f;
  std::uint64_t x = 7;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ull + 1;
    const double noise = static_cast<double>(x >> 40) / (1 << 24) - 0.5;
    f.add(i, 2.0 * i + noise * 20);
  }
  EXPECT_NEAR(f.slope(), 2.0, 0.05);
  EXPECT_GT(f.correlation(), 0.99);
}

TEST(LinearFit, DegenerateInput) {
  LinearFit f;
  EXPECT_DOUBLE_EQ(f.slope(), 0.0);
  f.add(5, 10);
  EXPECT_DOUBLE_EQ(f.slope(), 0.0);  // single point: denominator zero
}

}  // namespace
}  // namespace nmo
