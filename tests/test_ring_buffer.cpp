// perf data ring buffer: record framing, wraparound, loss accounting.
#include "kernel/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace nmo::kern {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(RingBuffer, WriteThenRead) {
  RingBuffer rb(1, 4096);
  const auto payload = bytes_of("hello");
  ASSERT_TRUE(rb.write(RecordType::kAux, payload));
  const auto rec = rb.read();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->header.type, RecordType::kAux);
  EXPECT_EQ(rec->payload, payload);
}

TEST(RingBuffer, EmptyReadReturnsNothing) {
  RingBuffer rb(1, 4096);
  EXPECT_FALSE(rb.read().has_value());
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer rb(1, 4096);
  rb.write(RecordType::kAux, bytes_of("one"));
  rb.write(RecordType::kThrottle, bytes_of("two"));
  EXPECT_EQ(rb.read()->header.type, RecordType::kAux);
  EXPECT_EQ(rb.read()->header.type, RecordType::kThrottle);
}

TEST(RingBuffer, HeadTailAdvance) {
  RingBuffer rb(1, 4096);
  rb.write(RecordType::kAux, bytes_of("abc"));
  EXPECT_GT(rb.metadata().data_head, 0u);
  EXPECT_EQ(rb.metadata().data_tail, 0u);
  rb.read();
  EXPECT_EQ(rb.metadata().data_tail, rb.metadata().data_head);
}

TEST(RingBuffer, FullBufferDropsAndCountsLost) {
  RingBuffer rb(1, 64);  // tiny: 64 bytes
  const auto big = std::vector<std::byte>(48);
  ASSERT_TRUE(rb.write(RecordType::kAux, big));   // 8 hdr + 48 = 56
  EXPECT_FALSE(rb.write(RecordType::kAux, big));  // no room
  EXPECT_EQ(rb.lost(), 1u);
}

TEST(RingBuffer, SpaceReclaimedAfterRead) {
  RingBuffer rb(1, 64);
  const auto payload = std::vector<std::byte>(40);
  ASSERT_TRUE(rb.write(RecordType::kAux, payload));
  EXPECT_FALSE(rb.write(RecordType::kAux, payload));
  rb.read();
  EXPECT_TRUE(rb.write(RecordType::kAux, payload));
}

TEST(RingBuffer, WrapAroundPreservesPayload) {
  RingBuffer rb(1, 128);
  // Fill and drain repeatedly so records straddle the wrap point.
  for (int i = 0; i < 50; ++i) {
    std::vector<std::byte> payload(33);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::byte>((i + static_cast<int>(j)) & 0xff);
    }
    ASSERT_TRUE(rb.write(RecordType::kAux, payload)) << i;
    const auto rec = rb.read();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->payload, payload) << "iteration " << i;
  }
}

TEST(RingBuffer, ReadableBytes) {
  RingBuffer rb(1, 4096);
  EXPECT_EQ(rb.readable(), 0u);
  rb.write(RecordType::kAux, bytes_of("xy"));
  EXPECT_EQ(rb.readable(), sizeof(RecordHeader) + 2);
}

TEST(RingBuffer, RejectsZeroPages) {
  EXPECT_THROW(RingBuffer(0, 4096), std::invalid_argument);
  EXPECT_THROW(RingBuffer(1, 0), std::invalid_argument);
}

TEST(RingBuffer, ManyRecordsStressWithInterleavedReads) {
  RingBuffer rb(2, 256);
  std::uint64_t written = 0, read = 0, x = 1;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ull + 1;
    std::vector<std::byte> payload((x >> 8) % 32);
    if (rb.write(RecordType::kAux, payload)) ++written;
    if ((x & 3) == 0) {
      while (rb.read().has_value()) ++read;
    }
  }
  while (rb.read().has_value()) ++read;
  EXPECT_EQ(written, read);
}

}  // namespace
}  // namespace nmo::kern
