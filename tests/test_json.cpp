// JsonWriter emission rules - in particular the non-finite double policy:
// JSON has no NaN/Infinity literals, so they must serialize as null (a
// "%g"-rendered "nan" breaks every strict parser reading BENCH_*.json or
// nmo-trace --json output).
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nmo {
namespace {

TEST(JsonWriter, ObjectsArraysAndScalars) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("run");
  w.key("count").value(std::uint64_t{42});
  w.key("ratio").value(0.5);
  w.key("ok").value(true);
  w.key("rows").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\": \"run\", \"count\": 42, \"ratio\": 0.5, "
            "\"ok\": true, \"rows\": [1, 2]}");
}

TEST(JsonWriter, NanSerializesAsNull) {
  JsonWriter w;
  w.begin_object();
  w.key("accuracy").value(std::nan(""));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"accuracy\": null}");
}

TEST(JsonWriter, InfinitySerializesAsNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null, null, 1.5]");
}

TEST(JsonWriter, FiniteDoublesUnaffected) {
  JsonWriter w;
  w.begin_array();
  w.value(0.0);
  w.value(-2.25);
  w.value(std::numeric_limits<double>::max());
  w.end_array();
  // The exact %.6g renderings, unchanged by the finiteness gate.
  EXPECT_EQ(w.str(), "[0, -2.25, 1.79769e+308]");
}

TEST(JsonWriter, NullValueInsideNestedStructure) {
  // The null path must respect comma/key state exactly like any value.
  JsonWriter w;
  w.begin_object();
  w.key("a").value(std::nan(""));
  w.key("b").begin_object();
  w.key("inner").value(std::numeric_limits<double>::infinity());
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\": null, \"b\": {\"inner\": null}}");
}

}  // namespace
}  // namespace nmo
