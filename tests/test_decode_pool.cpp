// DecodePool: sharded parallel decode, SPSC queue behaviour, count parity
// with the serial AuxConsumer, and serial-vs-parallel trace equality.
#include "spe/decode_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/session.hpp"
#include "sim/stat_driver.hpp"
#include "spe/aux_consumer.hpp"
#include "workloads/stream.hpp"

namespace nmo::spe {
namespace {

constexpr std::size_t kPage = 64 * 1024;

std::array<std::byte, kRecordSize> valid_record(Addr vaddr, std::uint64_t ts) {
  Record r;
  r.vaddr = vaddr;
  r.timestamp = ts;
  r.op = MemOp::kLoad;
  r.level = MemLevel::kL2;
  std::array<std::byte, kRecordSize> wire{};
  encode(r, wire);
  return wire;
}

std::vector<std::byte> raw_stream(std::size_t valid, std::size_t invalid, Addr base = 0x1000) {
  std::vector<std::byte> raw;
  raw.reserve((valid + invalid) * kRecordSize);
  for (std::size_t i = 0; i < valid; ++i) {
    const auto wire = valid_record(base + i * 8, 1 + i);
    raw.insert(raw.end(), wire.begin(), wire.end());
  }
  for (std::size_t i = 0; i < invalid; ++i) {
    auto wire = valid_record(base + i * 8, 1 + i);
    wire[kAddrHeaderOffset] = std::byte{0x00};  // corrupt address header
    raw.insert(raw.end(), wire.begin(), wire.end());
  }
  return raw;
}

TEST(SpscBatchQueue, PushPopWrapsAndBounds) {
  SpscBatchQueue q(4);
  RecordBatch b;
  b.records = 1;
  for (int round = 0; round < 3; ++round) {  // exercise wrap-around
    for (std::uint32_t i = 0; i < q.capacity(); ++i) {
      b.core = i;
      EXPECT_TRUE(q.try_push(b));
    }
    EXPECT_FALSE(q.try_push(b));  // full
    RecordBatch out;
    for (std::uint32_t i = 0; i < q.capacity(); ++i) {
      ASSERT_TRUE(q.try_pop(out));
      EXPECT_EQ(out.core, i);
    }
    EXPECT_FALSE(q.try_pop(out));  // empty
    EXPECT_TRUE(q.empty());
  }
}

TEST(DecodePool, DecodesAcrossShardCounts) {
  for (const std::uint32_t shards : {1u, 2u, 8u}) {
    std::atomic<std::uint64_t> sunk{0};
    DecodePool pool(shards, [&](std::span<const Record> records, CoreId core,
                                std::uint32_t shard) {
      EXPECT_EQ(shard, core % shards);
      sunk.fetch_add(records.size(), std::memory_order_relaxed);
    });
    const auto raw = raw_stream(/*valid=*/300, /*invalid=*/17);
    for (CoreId core = 0; core < 16; ++core) pool.submit(raw, core);
    pool.sync();
    const auto counts = pool.counts();
    EXPECT_EQ(counts.records_ok, 300u * 16) << "shards=" << shards;
    EXPECT_EQ(counts.records_skipped, 17u * 16) << "shards=" << shards;
    EXPECT_EQ(sunk.load(), 300u * 16) << "shards=" << shards;
  }
}

TEST(DecodePool, PerCoreOrderIsPreservedWithinAShard) {
  // Both shard workers sink into the shared map; the lock serializes the
  // tree mutation (per-core order within a shard is untouched by it).
  std::mutex seen_mutex;
  std::map<CoreId, std::vector<Addr>> seen;
  DecodePool pool(2, [&](std::span<const Record> records, CoreId core, std::uint32_t) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    for (const Record& r : records) seen[core].push_back(r.vaddr);
  });
  for (CoreId core = 0; core < 4; ++core) {
    const auto raw = raw_stream(/*valid=*/200, /*invalid=*/0, /*base=*/0x1000 * (core + 1));
    pool.submit(raw, core);
  }
  pool.sync();
  for (CoreId core = 0; core < 4; ++core) {
    ASSERT_EQ(seen[core].size(), 200u);
    for (std::size_t i = 0; i < 200; ++i) {
      EXPECT_EQ(seen[core][i], 0x1000u * (core + 1) + i * 8) << "core=" << core;
    }
  }
}

TEST(DecodePool, EmptySyncAndEmptyDrains) {
  DecodePool pool(4);
  pool.sync();  // nothing submitted: must not hang
  pool.sync();
  EXPECT_EQ(pool.counts().records_ok, 0u);

  kern::PerfEventAttr attr;
  attr.type = kern::kPerfTypeArmSpe;
  attr.config = kern::kSpeConfigLoadsAndStores;
  attr.sample_period = 1000;
  attr.disabled = false;
  auto ev = kern::open_event(attr, 0, 4, kPage, 16 * kPage,
                             kern::TimeConv::from_frequency(3e9), nullptr);
  AuxConsumer consumer(&pool);
  EXPECT_EQ(consumer.drain(*ev), 0u);
  consumer.sync();
  EXPECT_EQ(consumer.counts().aux_records, 0u);
  EXPECT_EQ(consumer.counts().records_ok, 0u);
}

TEST(DecodePool, EpochTicketsTrackPerEpochCompletion) {
  // Epoch tickets are the async drain pipeline's completion primitive: a
  // ticket taken after submitting epoch N retires once N's batches decode,
  // independent of batches submitted afterwards.
  DecodePool pool(2);
  const auto empty_ticket = pool.mark_epoch();
  EXPECT_TRUE(pool.epoch_done(empty_ticket));  // nothing submitted yet
  pool.wait_epoch(empty_ticket);               // must not hang

  const auto epoch1 = raw_stream(96, 4, 0x1000);
  pool.submit(epoch1, /*core=*/0);
  const auto ticket1 = pool.mark_epoch();
  pool.wait_epoch(ticket1);
  EXPECT_TRUE(pool.epoch_done(ticket1));
  const auto after_epoch1 = pool.counts();
  EXPECT_EQ(after_epoch1.records_ok, 96u);
  EXPECT_EQ(after_epoch1.records_skipped, 4u);

  // A ticket from epoch 1 stays done while epoch 2 is in flight.
  const auto epoch2 = raw_stream(64, 0, 0x9000);
  pool.submit(epoch2, /*core=*/1);
  EXPECT_TRUE(pool.epoch_done(ticket1));
  const auto ticket2 = pool.mark_epoch();
  pool.wait_epoch(ticket2);
  EXPECT_EQ(pool.counts().records_ok, 160u);
}

/// Feeds the same event stream (valid + invalid records, a collision flag
/// and a truncation episode) to a serial consumer and a pool-mode consumer;
/// every Counts field must agree.
TEST(DecodePool, CountsMatchSerialConsumer) {
  const auto make_event = [] {
    kern::PerfEventAttr attr;
    attr.type = kern::kPerfTypeArmSpe;
    attr.config = kern::kSpeConfigLoadsAndStores;
    attr.sample_period = 1000;
    attr.aux_watermark = 4 * kPage;
    attr.disabled = false;
    return kern::open_event(attr, 2, 4, kPage, 4 * kPage,
                            kern::TimeConv::from_frequency(3e9), nullptr);
  };
  const auto feed = [](kern::PerfEvent& ev) {
    ev.note_collision();
    const std::size_t cap = 4 * kPage / kRecordSize;
    for (std::size_t i = 0; i < cap; ++i) {
      auto wire = valid_record(0x1000 + i * 8, 1 + i);
      if (i % 5 == 0) wire[kTsHeaderOffset] = std::byte{0x00};  // corrupt some
      ASSERT_TRUE(ev.aux_write(wire, 0));
    }
    ASSERT_FALSE(ev.aux_write(valid_record(0x9999, 9), 0));  // truncation
    ev.flush_aux(0);
  };

  auto serial_ev = make_event();
  feed(*serial_ev);
  AuxConsumer serial;
  const auto serial_bytes = serial.drain(*serial_ev);

  for (const std::uint32_t shards : {1u, 2u, 8u}) {
    auto parallel_ev = make_event();
    feed(*parallel_ev);
    DecodePool pool(shards);
    AuxConsumer parallel(&pool);
    const auto parallel_bytes = parallel.drain(*parallel_ev);
    parallel.sync();

    EXPECT_EQ(parallel_bytes, serial_bytes);
    const auto& a = serial.counts();
    const auto& b = parallel.counts();
    EXPECT_EQ(b.records_ok, a.records_ok) << "shards=" << shards;
    EXPECT_EQ(b.records_skipped, a.records_skipped) << "shards=" << shards;
    EXPECT_EQ(b.aux_records, a.aux_records) << "shards=" << shards;
    EXPECT_EQ(b.collision_flags, a.collision_flags) << "shards=" << shards;
    EXPECT_EQ(b.truncated_flags, a.truncated_flags) << "shards=" << shards;
    EXPECT_EQ(b.lost_records, a.lost_records) << "shards=" << shards;
  }
}

/// The acceptance check of the parallel pipeline: an end-to-end profiled
/// run must emit a byte-identical CSV and MD5 fingerprint whether decode
/// runs inline or across N shards.
TEST(DecodePool, SerialAndParallelTracesAreByteIdentical) {
  const auto run = [](std::uint32_t decode_shards) {
    core::NmoConfig config;
    config.enable = true;
    config.mode = core::Mode::kAll;
    config.period = 512;

    sim::EngineConfig engine;
    engine.threads = 8;
    engine.machine.hierarchy.cores = 8;
    engine.decode_shards = decode_shards;

    wl::StreamConfig scfg;
    scfg.array_elems = 1 << 14;
    scfg.iterations = 2;
    wl::Stream stream(scfg);

    core::ProfileSession session(config, engine);
    session.profile(stream, /*with_baseline=*/false);

    std::ostringstream csv;
    session.profiler().trace().write_csv(csv);
    return std::pair{session.profiler().trace().fingerprint(), csv.str()};
  };

  const auto [serial_md5, serial_csv] = run(1);
  EXPECT_NE(serial_csv.find('\n'), std::string::npos);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const auto [md5, csv] = run(shards);
    EXPECT_EQ(md5, serial_md5) << "shards=" << shards;
    EXPECT_EQ(csv, serial_csv) << "shards=" << shards;
  }
}

/// The acceptance invariant of topology placement: pinning shard workers
/// (any policy, any socket count) never changes the canonical trace -
/// placement moves host threads and feeds telemetry, never the core ->
/// shard mapping or the drain schedule.
TEST(DecodePool, PlacementPoliciesKeepTracesByteIdentical) {
  const auto run = [](PlacementPolicy policy, std::uint32_t sockets) {
    core::NmoConfig config;
    config.enable = true;
    config.mode = core::Mode::kAll;
    config.period = 512;

    sim::EngineConfig engine;
    engine.threads = 8;
    engine.machine.hierarchy.cores = 8;
    engine.machine.sockets = sockets;
    engine.decode_shards = 4;
    engine.decode_placement = policy;

    wl::StreamConfig scfg;
    scfg.array_elems = 1 << 14;
    scfg.iterations = 2;
    wl::Stream stream(scfg);

    core::ProfileSession session(config, engine);
    const auto report = session.profile(stream, /*with_baseline=*/false);

    std::ostringstream csv;
    session.profiler().trace().write_csv(csv);
    return std::tuple{session.profiler().trace().fingerprint(), csv.str(), report};
  };

  const auto [base_md5, base_csv, base_report] = run(PlacementPolicy::kNone, 1);
  for (const std::uint32_t sockets : {1u, 2u}) {
    for (const auto policy : {PlacementPolicy::kNone, PlacementPolicy::kPackShards,
                              PlacementPolicy::kNearProducer}) {
      const auto [md5, csv, report] = run(policy, sockets);
      EXPECT_EQ(md5, base_md5)
          << "policy=" << to_string(policy) << " sockets=" << sockets;
      EXPECT_EQ(csv, base_csv)
          << "policy=" << to_string(policy) << " sockets=" << sockets;
      EXPECT_EQ(report.mem_counted, base_report.mem_counted);
      EXPECT_EQ(report.processed_samples, base_report.processed_samples);
    }
  }
}

/// Remote-drain telemetry: the 2-socket model bills cross-socket bytes
/// under kNone and strictly fewer under kNearProducer, while a 1-socket
/// machine bills none - and none of it changes the trace (test above).
TEST(DecodePool, PlacementTelemetryReflectsTopology) {
  const auto run = [](PlacementPolicy policy, std::uint32_t sockets) {
    core::NmoConfig config;
    config.enable = true;
    config.mode = core::Mode::kAll;
    config.period = 512;

    sim::EngineConfig engine;
    engine.threads = 8;
    engine.machine.hierarchy.cores = 8;
    engine.machine.sockets = sockets;
    // One shard per core: kNearProducer puts every shard on its producer's
    // node, so the placed run drains fully node-local.
    engine.decode_shards = 8;
    engine.decode_placement = policy;

    wl::StreamConfig scfg;
    scfg.array_elems = 1 << 14;
    scfg.iterations = 2;
    wl::Stream stream(scfg);

    core::ProfileSession session(config, engine);
    return session.profile(stream, /*with_baseline=*/false);
  };

  const auto single = run(PlacementPolicy::kNone, 1);
  EXPECT_EQ(single.placement_nodes, 1u);
  EXPECT_EQ(single.remote_drain_bytes, 0u);
  EXPECT_EQ(single.remote_drain_cycles, 0u);
  EXPECT_GT(single.local_drain_bytes, 0u);

  const auto unplaced = run(PlacementPolicy::kNone, 2);
  EXPECT_EQ(unplaced.placement_nodes, 2u);
  EXPECT_GT(unplaced.remote_drain_bytes, 0u);
  EXPECT_GT(unplaced.remote_drain_cycles, 0u);

  const auto placed = run(PlacementPolicy::kNearProducer, 2);
  EXPECT_EQ(placed.placement_nodes, 2u);
  EXPECT_EQ(placed.remote_drain_bytes, 0u);
  EXPECT_LT(placed.remote_drain_cycles, unplaced.remote_drain_cycles);
  // Same total drained bytes either way: placement only re-labels them.
  EXPECT_EQ(placed.local_drain_bytes + placed.remote_drain_bytes,
            unplaced.local_drain_bytes + unplaced.remote_drain_bytes);
}

/// The statistical driver reaches identical tallies through the pool.
TEST(DecodePool, StatDriverParityAcrossShards) {
  sim::WorkloadProfile profile = sim::profiles::cfd();
  profile.scale_ops(0.05);
  sim::MachineConfig machine;
  sim::SweepConfig cfg;
  cfg.threads = 8;
  cfg.period = 2048;

  const sim::StatResult serial = sim::run_statistical(profile, machine, cfg);
  cfg.decode_shards = 4;
  const sim::StatResult parallel = sim::run_statistical(profile, machine, cfg);

  EXPECT_EQ(parallel.processed_samples, serial.processed_samples);
  EXPECT_EQ(parallel.skipped_records, serial.skipped_records);
  EXPECT_EQ(parallel.collision_flags, serial.collision_flags);
  EXPECT_EQ(parallel.truncated_flags, serial.truncated_flags);
  EXPECT_EQ(parallel.aux_records, serial.aux_records);
  EXPECT_EQ(parallel.instrumented_ns, serial.instrumented_ns);
}

}  // namespace
}  // namespace nmo::spe
