// TLB model: LRU replacement over page translations.
#include "mem/tlb.hpp"

#include <gtest/gtest.h>

namespace nmo::mem {
namespace {

TEST(Tlb, MissThenHit) {
  Tlb t(4, 4096);
  EXPECT_FALSE(t.access(0x1000));
  EXPECT_TRUE(t.access(0x1fff));  // same page
  EXPECT_FALSE(t.access(0x2000));
  EXPECT_EQ(t.misses(), 2u);
  EXPECT_EQ(t.hits(), 1u);
}

TEST(Tlb, LruReplacement) {
  Tlb t(2, 4096);
  t.access(0x0000);
  t.access(0x1000);
  t.access(0x0000);  // page 0 MRU
  t.access(0x2000);  // evicts page 1
  EXPECT_TRUE(t.access(0x0000));
  EXPECT_FALSE(t.access(0x1000));
}

TEST(Tlb, FlushForgetsAll) {
  Tlb t(4, 4096);
  t.access(0x1000);
  t.flush();
  EXPECT_FALSE(t.access(0x1000));
}

TEST(Tlb, LargeWorkingSetAlwaysMisses) {
  Tlb t(8, 4096);
  for (int round = 0; round < 3; ++round) {
    for (Addr p = 0; p < 16; ++p) {
      t.access(p * 4096);
    }
  }
  EXPECT_EQ(t.hits(), 0u);  // 16 pages through 8 entries, sequential LRU
}

TEST(Tlb, PageSize64K) {
  Tlb t(4, 64 * 1024);
  t.access(0x0);
  EXPECT_TRUE(t.access(0xFFFF));
  EXPECT_FALSE(t.access(0x10000));
}

}  // namespace
}  // namespace nmo::mem
