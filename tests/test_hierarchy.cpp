// Multi-level hierarchy: level attribution, latency, bus counters.
#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

namespace nmo::mem {
namespace {

HierarchyConfig tiny_config() {
  HierarchyConfig c;
  c.cores = 2;
  c.l1 = {.size_bytes = 1024, .associativity = 2, .line_size = 64};
  c.l2 = {.size_bytes = 4096, .associativity = 4, .line_size = 64};
  c.slc = {.size_bytes = 16384, .associativity = 4, .line_size = 64};
  c.tlb_entries = 4;
  c.page_size = 4096;
  return c;
}

TEST(Hierarchy, ColdAccessGoesToDram) {
  Hierarchy h(tiny_config());
  const auto r = h.access(0, MemAccess{.addr = 0x10000, .op = MemOp::kLoad});
  EXPECT_EQ(r.level, MemLevel::kDRAM);
  EXPECT_EQ(h.bus().read_lines, 1u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  Hierarchy h(tiny_config());
  h.access(0, MemAccess{.addr = 0x10000, .op = MemOp::kLoad});
  const auto r = h.access(0, MemAccess{.addr = 0x10008, .op = MemOp::kLoad});
  EXPECT_EQ(r.level, MemLevel::kL1);
}

TEST(Hierarchy, LatencyOrdering) {
  Hierarchy h(tiny_config());
  const auto dram = h.access(0, MemAccess{.addr = 0x20000});
  const auto l1 = h.access(0, MemAccess{.addr = 0x20000});
  EXPECT_GT(dram.latency, l1.latency);
}

TEST(Hierarchy, TlbMissAddsLatency) {
  HierarchyConfig cfg = tiny_config();
  Hierarchy h(cfg);
  const auto first = h.access(0, MemAccess{.addr = 0x30000});
  EXPECT_TRUE(first.tlb_miss);
  // Same page again: TLB hit, and the line is in L1.
  const auto second = h.access(0, MemAccess{.addr = 0x30008});
  EXPECT_FALSE(second.tlb_miss);
  EXPECT_EQ(first.latency, cfg.latency.dram + cfg.latency.tlb_miss);
  EXPECT_EQ(second.latency, cfg.latency.l1);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  // Working set bigger than L1 (1 KiB = 16 lines) but inside L2 (4 KiB).
  Hierarchy h(tiny_config());
  for (Addr a = 0; a < 4096; a += 64) h.access(0, MemAccess{.addr = a});
  // L1 now holds the tail of the sweep; the head is in L2.
  const auto r = h.access(0, MemAccess{.addr = 0});
  EXPECT_EQ(r.level, MemLevel::kL2);
}

TEST(Hierarchy, SlcSharedBetweenCores) {
  Hierarchy h(tiny_config());
  h.access(0, MemAccess{.addr = 0x40000});  // core 0 pulls into SLC
  const auto r = h.access(1, MemAccess{.addr = 0x40000});
  EXPECT_EQ(r.level, MemLevel::kSLC);  // core 1 misses private L1/L2, hits SLC
}

TEST(Hierarchy, PerCoreL1Private) {
  Hierarchy h(tiny_config());
  h.access(0, MemAccess{.addr = 0x50000});
  EXPECT_TRUE(h.l1(0).contains(0x50000));
  EXPECT_FALSE(h.l1(1).contains(0x50000));
}

TEST(Hierarchy, LevelCountsSumToAccesses) {
  Hierarchy h(tiny_config());
  std::uint64_t x = 99;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1;
    h.access(static_cast<CoreId>(x % 2), MemAccess{.addr = (x >> 8) % (1 << 18)});
  }
  std::uint64_t sum = 0;
  for (auto v : h.level_counts()) sum += v;
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
}

TEST(Hierarchy, WritebackTrafficCounted) {
  Hierarchy h(tiny_config());
  // Dirty a large footprint then sweep a disjoint one to force writebacks
  // all the way out of the SLC.
  for (Addr a = 0; a < 64 * 1024; a += 64) h.access(0, MemAccess{.addr = a, .op = MemOp::kStore});
  EXPECT_GT(h.bus().writeback_lines, 0u);
  EXPECT_GT(h.bus().total_bytes(64), h.bus().read_lines * 64);
}

TEST(Hierarchy, ResetClearsEverything) {
  Hierarchy h(tiny_config());
  h.access(0, MemAccess{.addr = 0x1234});
  h.reset();
  EXPECT_EQ(h.bus().read_lines, 0u);
  std::uint64_t sum = 0;
  for (auto v : h.level_counts()) sum += v;
  EXPECT_EQ(sum, 0u);
  const auto r = h.access(0, MemAccess{.addr = 0x1234});
  EXPECT_EQ(r.level, MemLevel::kDRAM);
}

TEST(Hierarchy, RejectsOutOfRangeCore) {
  Hierarchy h(tiny_config());
  EXPECT_THROW(h.access(7, MemAccess{.addr = 0}), std::out_of_range);
}

TEST(Hierarchy, DefaultsMatchTableII) {
  const HierarchyConfig c;
  EXPECT_EQ(c.cores, 128u);
  EXPECT_EQ(c.l1.size_bytes, 64u * 1024);
  EXPECT_EQ(c.l2.size_bytes, 1024u * 1024);
  EXPECT_EQ(c.slc.size_bytes, 16u * 1024 * 1024);
  EXPECT_EQ(c.page_size, 64u * 1024);
}

}  // namespace
}  // namespace nmo::mem
