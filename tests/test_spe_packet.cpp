// SPE record wire format: encode/decode round trips and NMO's skip rules.
#include "spe/packet.hpp"

#include <gtest/gtest.h>

#include <array>

namespace nmo::spe {
namespace {

Record sample_record() {
  Record r;
  r.pc = 0x400123;
  r.vaddr = 0x7fff'1234'5678;
  r.timestamp = 987654321;
  r.op = MemOp::kStore;
  r.level = MemLevel::kSLC;
  r.events = events_for_level(MemLevel::kSLC, true);
  r.total_latency = 45;
  r.issue_latency = 4;
  r.translation_latency = 40;
  return r;
}

TEST(SpePacket, EncodeDecodeRoundTrip) {
  const Record r = sample_record();
  std::array<std::byte, kRecordSize> wire{};
  encode(r, wire);
  const auto result = decode(wire);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.record->pc, r.pc);
  EXPECT_EQ(result.record->vaddr, r.vaddr);
  EXPECT_EQ(result.record->timestamp, r.timestamp);
  EXPECT_EQ(result.record->op, r.op);
  EXPECT_EQ(result.record->level, r.level);
  EXPECT_EQ(result.record->events, r.events);
  EXPECT_EQ(result.record->total_latency, r.total_latency);
  EXPECT_EQ(result.record->issue_latency, r.issue_latency);
  EXPECT_EQ(result.record->translation_latency, r.translation_latency);
}

TEST(SpePacket, PaperLayoutOffsets) {
  // Section IV-A: vaddr is a 64-bit value at offset 31 prefaced by 0xb2;
  // the timestamp is at offset 56 prefaced by 0x71.
  Record r = sample_record();
  r.vaddr = 0x0102030405060708;
  r.timestamp = 0x1112131415161718;
  std::array<std::byte, kRecordSize> wire{};
  encode(r, wire);
  EXPECT_EQ(static_cast<std::uint8_t>(wire[30]), 0xb2);
  EXPECT_EQ(static_cast<std::uint8_t>(wire[31]), 0x08);  // little endian LSB
  EXPECT_EQ(static_cast<std::uint8_t>(wire[38]), 0x01);
  EXPECT_EQ(static_cast<std::uint8_t>(wire[55]), 0x71);
  EXPECT_EQ(static_cast<std::uint8_t>(wire[56]), 0x18);
  EXPECT_EQ(static_cast<std::uint8_t>(wire[63]), 0x11);
}

TEST(SpePacket, RecordIs64Bytes) {
  EXPECT_EQ(kRecordSize, 64u);
}

TEST(SpePacket, SkipsBadAddressHeader) {
  std::array<std::byte, kRecordSize> wire{};
  encode(sample_record(), wire);
  wire[30] = std::byte{0x00};
  const auto result = decode(wire);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kBadAddressHeader);
}

TEST(SpePacket, SkipsBadTimestampHeader) {
  std::array<std::byte, kRecordSize> wire{};
  encode(sample_record(), wire);
  wire[55] = std::byte{0xff};
  const auto result = decode(wire);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kBadTimestampHeader);
}

TEST(SpePacket, SkipsZeroAddress) {
  Record r = sample_record();
  r.vaddr = 0;
  std::array<std::byte, kRecordSize> wire{};
  encode(r, wire);
  const auto result = decode(wire);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kZeroAddress);
}

TEST(SpePacket, SkipsZeroTimestamp) {
  Record r = sample_record();
  r.timestamp = 0;
  std::array<std::byte, kRecordSize> wire{};
  encode(r, wire);
  const auto result = decode(wire);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kZeroTimestamp);
}

TEST(SpePacket, ShortBufferRejected) {
  std::array<std::byte, 32> small{};
  const auto result = decode(std::span<const std::byte>(small));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, DecodeError::kShortBuffer);
}

TEST(SpePacket, LevelFromEventsFallback) {
  EXPECT_EQ(level_from_events(kEvtRetired), MemLevel::kL1);
  EXPECT_EQ(level_from_events(kEvtRetired | kEvtL1Refill), MemLevel::kL2);
  EXPECT_EQ(level_from_events(kEvtRetired | kEvtL1Refill | kEvtLlcAccess), MemLevel::kSLC);
  EXPECT_EQ(level_from_events(kEvtRetired | kEvtL1Refill | kEvtLlcAccess | kEvtLlcMiss),
            MemLevel::kDRAM);
}

TEST(SpePacket, EventsForLevelConsistentWithFallback) {
  for (auto level : {MemLevel::kL1, MemLevel::kL2, MemLevel::kSLC, MemLevel::kDRAM}) {
    EXPECT_EQ(level_from_events(events_for_level(level, false)), level);
  }
}

TEST(SpePacket, TlbWalkBitSet) {
  EXPECT_TRUE(events_for_level(MemLevel::kL1, true) & kEvtTlbWalk);
  EXPECT_FALSE(events_for_level(MemLevel::kL1, false) & kEvtTlbWalk);
}

TEST(SpePacket, LoadStoreEncoding) {
  for (auto op : {MemOp::kLoad, MemOp::kStore}) {
    Record r = sample_record();
    r.op = op;
    std::array<std::byte, kRecordSize> wire{};
    encode(r, wire);
    const auto result = decode(wire);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.record->op, op);
  }
}

// Property: every (level, tlb, op) combination survives the wire format.
class PacketRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, bool, int>> {};

TEST_P(PacketRoundTrip, Lossless) {
  const auto [level, tlb, op] = GetParam();
  Record r;
  r.pc = 0xffff'0000'1111 + static_cast<Addr>(level);
  r.vaddr = 0x1000 + static_cast<Addr>(level) * 64;
  r.timestamp = 1 + static_cast<std::uint64_t>(level);
  r.level = static_cast<MemLevel>(level);
  r.op = static_cast<MemOp>(op);
  r.events = events_for_level(r.level, tlb);
  r.total_latency = static_cast<std::uint16_t>(4 << level);
  std::array<std::byte, kRecordSize> wire{};
  encode(r, wire);
  const auto result = decode(wire);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.record->level, r.level);
  EXPECT_EQ(result.record->op, r.op);
  EXPECT_EQ(result.record->events, r.events);
  EXPECT_EQ(result.record->vaddr, r.vaddr);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PacketRoundTrip,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Bool(),
                                            ::testing::Values(0, 1)));

}  // namespace
}  // namespace nmo::spe
