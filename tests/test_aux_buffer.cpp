// Aux buffer: byte ring with head/tail, full-buffer drops.
#include "kernel/aux_buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace nmo::kern {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((seed + i) & 0xff);
  return v;
}

TEST(AuxBuffer, WriteAdvancesHead) {
  AuxBuffer b(256);
  EXPECT_TRUE(b.write(pattern(64)));
  EXPECT_EQ(b.head(), 64u);
  EXPECT_EQ(b.tail(), 0u);
  EXPECT_EQ(b.used(), 64u);
  EXPECT_EQ(b.free_space(), 192u);
}

TEST(AuxBuffer, ReadAtReturnsWrittenBytes) {
  AuxBuffer b(256);
  const auto data = pattern(64, 7);
  b.write(data);
  std::vector<std::byte> out(64);
  b.read_at(0, out);
  EXPECT_EQ(out, data);
}

TEST(AuxBuffer, FullBufferRejectsWrite) {
  AuxBuffer b(128);
  EXPECT_TRUE(b.write(pattern(128)));
  EXPECT_FALSE(b.write(pattern(1)));
  EXPECT_EQ(b.dropped_bytes(), 1u);
}

TEST(AuxBuffer, TailAdvanceFreesSpace) {
  AuxBuffer b(128);
  b.write(pattern(128));
  b.advance_tail(64);
  EXPECT_EQ(b.free_space(), 64u);
  EXPECT_TRUE(b.write(pattern(64)));
}

TEST(AuxBuffer, WrapAroundContentPreserved) {
  AuxBuffer b(128);
  b.write(pattern(96, 1));
  b.advance_tail(96);
  const auto data = pattern(64, 42);  // wraps: 32 at end + 32 at start
  ASSERT_TRUE(b.write(data));
  std::vector<std::byte> out(64);
  b.read_at(96, out);
  EXPECT_EQ(out, data);
}

TEST(AuxBuffer, TailNeverExceedsHead) {
  AuxBuffer b(128);
  b.write(pattern(10));
  b.advance_tail(999);
  EXPECT_EQ(b.tail(), 10u);
}

TEST(AuxBuffer, TailNeverMovesBackwards) {
  AuxBuffer b(128);
  b.write(pattern(100));
  b.advance_tail(60);
  b.advance_tail(20);
  EXPECT_EQ(b.tail(), 60u);
}

TEST(AuxBuffer, RejectsZeroSize) {
  EXPECT_THROW(AuxBuffer(0), std::invalid_argument);
}

TEST(AuxBuffer, SustainedProducerConsumer) {
  AuxBuffer b(1024);
  std::uint64_t consumed = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(b.write(pattern(64, static_cast<std::uint8_t>(i))));
    if (b.used() >= 512) {
      // Verify the oldest chunk before consuming.
      std::vector<std::byte> out(64);
      b.read_at(b.tail(), out);
      EXPECT_EQ(out, pattern(64, static_cast<std::uint8_t>(consumed)));
      b.advance_tail(b.tail() + 512);
      consumed += 8;
    }
  }
  EXPECT_EQ(b.dropped_bytes(), 0u);
}

}  // namespace
}  // namespace nmo::kern
