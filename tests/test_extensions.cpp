// Extension features beyond the paper's main evaluation: the min-latency
// filter stage (SPE supports filtering by latency; Figure 1's filter
// criteria include latency), branch sampling with its documented Neoverse
// bias (the reason NMO excludes branches, section IV-A), and failure
// injection on the decode path.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernel/perf_abi.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/sampler.hpp"

namespace nmo::spe {
namespace {

constexpr std::size_t kPage = 64 * 1024;

std::unique_ptr<kern::PerfEvent> make_event(std::uint64_t config, std::uint64_t period = 4) {
  kern::PerfEventAttr attr;
  attr.type = kern::kPerfTypeArmSpe;
  attr.config = config;
  attr.sample_period = period;
  attr.disabled = false;
  return kern::open_event(attr, 0, 4, kPage, 16 * kPage,
                          kern::TimeConv::from_frequency(3e9), nullptr);
}

OpInfo op_with(OpClass cls, Cycles latency, std::uint64_t now) {
  OpInfo op;
  op.cls = cls;
  op.vaddr = 0x1000;
  op.latency = latency;
  op.now_cycles = now;
  return op;
}

// --- min-latency filter -------------------------------------------------------
TEST(MinLatencyFilter, DropsFastHitsKeepsMisses) {
  const std::uint64_t config = kern::kSpeConfigLoadsAndStores |
                               (std::uint64_t{50} << kern::kSpeMinLatencyShift);
  auto ev = make_event(config, 1);  // sample every op
  Sampler sampler(ev.get(), Rng(3));
  std::uint64_t now = 0;
  // 10 L1 hits (latency 4) and 10 DRAM misses (latency 330).
  for (int i = 0; i < 10; ++i) sampler.on_mem_op(op_with(OpClass::kLoad, 4, now += 1000));
  for (int i = 0; i < 10; ++i) sampler.on_mem_op(op_with(OpClass::kLoad, 330, now += 1000));
  sampler.flush(now + 1000);
  EXPECT_EQ(sampler.stats().filtered, 10u);
  EXPECT_EQ(sampler.stats().written, 10u);
}

TEST(MinLatencyFilter, ZeroThresholdKeepsEverything) {
  auto ev = make_event(kern::kSpeConfigLoadsAndStores, 1);
  Sampler sampler(ev.get(), Rng(3));
  std::uint64_t now = 0;
  for (int i = 0; i < 20; ++i) sampler.on_mem_op(op_with(OpClass::kLoad, 4, now += 1000));
  sampler.flush(now + 1000);
  EXPECT_EQ(sampler.stats().written, 20u);
}

// --- branch sampling (future-work ablation) ------------------------------------
TEST(BranchSampling, BranchFilterSelectsBranches) {
  auto ev = make_event(kern::kSpeTsEnable | kern::kSpeBranchFilter, 1);
  Sampler sampler(ev.get(), Rng(3));
  std::uint64_t now = 0;
  sampler.on_mem_op(op_with(OpClass::kBranch, 2, now += 100));
  sampler.on_mem_op(op_with(OpClass::kLoad, 4, now += 100));
  sampler.flush(now + 100);
  // Only the branch passes a branch-only filter.
  EXPECT_EQ(sampler.stats().written, 1u);
  EXPECT_EQ(sampler.stats().filtered, 1u);
}

TEST(BranchSampling, DefaultNmoConfigExcludesBranches) {
  // Section IV-A: "The current implementation of NMO excludes branch
  // instructions in sampling" (known Neoverse N1 bias).
  const auto f = SampleFilter::from_config(kern::kSpeConfigLoadsAndStores);
  EXPECT_FALSE(f.branches);
  EXPECT_FALSE(f.passes(OpClass::kBranch, 1000));
}

// --- failure injection on the decode path ---------------------------------------
TEST(DecodeFailureInjection, CorruptedStreamSkipsOnlyBadRecords) {
  auto ev = make_event(kern::kSpeConfigLoadsAndStores);
  // Write 16 records, corrupt a deterministic subset in the aux area via
  // re-encoding with bad fields.
  Rng rng(1234);
  int expected_ok = 0;
  for (int i = 0; i < 16; ++i) {
    Record r;
    const bool corrupt = (i % 4) == 3;
    r.vaddr = corrupt ? 0 : 0x1000 + static_cast<Addr>(i) * 64;  // zero addr -> skip
    r.timestamp = 1 + static_cast<std::uint64_t>(i);
    std::array<std::byte, kRecordSize> wire{};
    encode(r, wire);
    ASSERT_TRUE(ev->aux_write(wire, static_cast<std::uint64_t>(i)));
    if (!corrupt) ++expected_ok;
  }
  ev->flush_aux(99);
  AuxConsumer consumer;
  consumer.drain(*ev);
  EXPECT_EQ(consumer.counts().records_ok, static_cast<std::uint64_t>(expected_ok));
  EXPECT_EQ(consumer.counts().records_skipped, 16u - static_cast<std::uint64_t>(expected_ok));
}

TEST(DecodeFailureInjection, GarbageBytesNeverCrash) {
  auto ev = make_event(kern::kSpeConfigLoadsAndStores);
  Rng rng(99);
  std::array<std::byte, kRecordSize> junk{};
  for (int rec = 0; rec < 64; ++rec) {
    for (auto& b : junk) b = static_cast<std::byte>(rng.uniform(256));
    ev->aux_write(junk, 0);
  }
  ev->flush_aux(0);
  AuxConsumer consumer;
  const auto bytes = consumer.drain(*ev);
  EXPECT_EQ(bytes, 64u * kRecordSize);
  EXPECT_EQ(consumer.counts().records_ok + consumer.counts().records_skipped, 64u);
}

// --- disabled-sampler semantics ------------------------------------------------
TEST(EnableDisable, DisabledEventIgnoresSelections) {
  auto ev = make_event(kern::kSpeConfigLoadsAndStores, 1);
  Sampler sampler(ev.get(), Rng(3));
  ev->disable();
  std::uint64_t now = 0;
  for (int i = 0; i < 10; ++i) sampler.on_mem_op(op_with(OpClass::kLoad, 4, now += 100));
  EXPECT_EQ(sampler.stats().selections, 0u);
  ev->enable();
  for (int i = 0; i < 10; ++i) sampler.on_mem_op(op_with(OpClass::kLoad, 4, now += 100));
  EXPECT_GT(sampler.stats().selections, 0u);
}

}  // namespace
}  // namespace nmo::spe
