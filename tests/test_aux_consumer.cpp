// AuxConsumer: draining AUX records, decoding, flag counting.
#include "spe/aux_consumer.hpp"

#include <gtest/gtest.h>

namespace nmo::spe {
namespace {

constexpr std::size_t kPage = 64 * 1024;

std::unique_ptr<kern::PerfEvent> make_event(std::uint64_t watermark = 128) {
  kern::PerfEventAttr attr;
  attr.type = kern::kPerfTypeArmSpe;
  attr.config = kern::kSpeConfigLoadsAndStores;
  attr.sample_period = 1000;
  attr.aux_watermark = watermark;
  attr.disabled = false;
  return kern::open_event(attr, 3, 4, kPage, 16 * kPage,
                          kern::TimeConv::from_frequency(3e9), nullptr);
}

std::array<std::byte, kRecordSize> valid_record(Addr vaddr, std::uint64_t ts) {
  Record r;
  r.vaddr = vaddr;
  r.timestamp = ts;
  r.op = MemOp::kLoad;
  r.level = MemLevel::kL2;
  std::array<std::byte, kRecordSize> wire{};
  encode(r, wire);
  return wire;
}

TEST(AuxConsumer, DrainsValidRecords) {
  auto ev = make_event();
  ev->aux_write(valid_record(0x1000, 1), 0);
  ev->aux_write(valid_record(0x2000, 2), 0);  // crosses 128-byte watermark
  std::vector<Addr> seen;
  AuxConsumer consumer([&](const Record& r, CoreId core) {
    seen.push_back(r.vaddr);
    EXPECT_EQ(core, 3u);
  });
  const auto bytes = consumer.drain(*ev);
  EXPECT_EQ(bytes, 128u);
  EXPECT_EQ(consumer.counts().records_ok, 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0x1000u);
  EXPECT_EQ(seen[1], 0x2000u);
}

TEST(AuxConsumer, SkipsInvalidRecords) {
  auto ev = make_event();
  auto bad = valid_record(0x1000, 1);
  bad[30] = std::byte{0x00};  // corrupt address header
  ev->aux_write(bad, 0);
  ev->aux_write(valid_record(0x2000, 2), 0);
  AuxConsumer consumer;
  consumer.drain(*ev);
  EXPECT_EQ(consumer.counts().records_ok, 1u);
  EXPECT_EQ(consumer.counts().records_skipped, 1u);
}

TEST(AuxConsumer, AdvancesAuxTail) {
  auto ev = make_event();
  ev->aux_write(valid_record(0x1, 1), 0);
  ev->aux_write(valid_record(0x2, 2), 0);
  AuxConsumer consumer;
  consumer.drain(*ev);
  EXPECT_EQ(ev->aux().tail(), 128u);
  EXPECT_EQ(ev->aux().used(), 0u);
}

TEST(AuxConsumer, CountsCollisionFlags) {
  auto ev = make_event();
  ev->note_collision();
  ev->aux_write(valid_record(0x1, 1), 0);
  ev->aux_write(valid_record(0x2, 2), 0);
  AuxConsumer consumer;
  consumer.drain(*ev);
  EXPECT_EQ(consumer.counts().collision_flags, 1u);
  EXPECT_EQ(consumer.counts().aux_records, 1u);
}

TEST(AuxConsumer, CountsTruncation) {
  auto ev = make_event(/*watermark=*/16 * kPage);  // never auto-emit
  const std::size_t cap = 16 * kPage / kRecordSize;
  for (std::size_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(ev->aux_write(valid_record(1 + i, 1 + i), 0));
  }
  EXPECT_FALSE(ev->aux_write(valid_record(0x9999, 9), 0));
  ev->flush_aux(0);
  AuxConsumer consumer;
  consumer.drain(*ev);
  EXPECT_EQ(consumer.counts().truncated_flags, 1u);
  EXPECT_EQ(consumer.counts().records_ok, cap);
}

TEST(AuxConsumer, EmptyEventDrainsNothing) {
  auto ev = make_event();
  AuxConsumer consumer;
  EXPECT_EQ(consumer.drain(*ev), 0u);
  EXPECT_EQ(consumer.counts().aux_records, 0u);
}

TEST(AuxConsumer, MultipleDrainsAccumulate) {
  auto ev = make_event();
  AuxConsumer consumer;
  ev->aux_write(valid_record(0x1, 1), 0);
  ev->aux_write(valid_record(0x2, 2), 0);
  consumer.drain(*ev);
  ev->aux_write(valid_record(0x3, 3), 0);
  ev->aux_write(valid_record(0x4, 4), 0);
  consumer.drain(*ev);
  EXPECT_EQ(consumer.counts().records_ok, 4u);
  EXPECT_EQ(consumer.counts().aux_records, 2u);
}

TEST(AuxConsumer, ResetCounts) {
  auto ev = make_event();
  AuxConsumer consumer;
  ev->aux_write(valid_record(0x1, 1), 0);
  ev->aux_write(valid_record(0x2, 2), 0);
  consumer.drain(*ev);
  consumer.reset_counts();
  EXPECT_EQ(consumer.counts().records_ok, 0u);
}

TEST(AuxConsumer, DrainRawDefersDecode) {
  // Stage 1 consumes device state and tallies AUX flags but decodes
  // nothing; stage 2 (decode_chunks) completes it to exactly what drain()
  // would have produced.
  auto ev = make_event();
  ev->note_collision();
  ev->aux_write(valid_record(0x1000, 1), 0);
  auto bad = valid_record(0x2000, 2);
  bad[30] = std::byte{0x00};
  ev->aux_write(bad, 0);
  std::vector<Addr> seen;
  AuxConsumer consumer([&](const Record& r, CoreId) { seen.push_back(r.vaddr); });

  std::vector<RawChunk> chunks;
  const auto bytes = consumer.drain_raw(*ev, chunks);
  EXPECT_EQ(bytes, 128u);
  EXPECT_EQ(ev->aux().used(), 0u);  // device space recycled at stage 1
  EXPECT_EQ(consumer.counts().aux_records, 1u);
  EXPECT_EQ(consumer.counts().collision_flags, 1u);
  EXPECT_EQ(consumer.counts().records_ok, 0u);  // nothing decoded yet
  EXPECT_TRUE(seen.empty());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].core, 3u);
  EXPECT_EQ(chunks[0].bytes.size(), 128u);

  consumer.decode_chunks(chunks);
  EXPECT_EQ(consumer.counts().records_ok, 1u);
  EXPECT_EQ(consumer.counts().records_skipped, 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 0x1000u);
}

TEST(AuxConsumer, DecodeRawLeavesCountsUntouched) {
  // decode_raw is the off-thread half: it feeds the sink and reports
  // tallies without mutating counts(), which add_decoded folds in later.
  auto ev = make_event();
  ev->aux_write(valid_record(0xa, 1), 0);
  ev->aux_write(valid_record(0xb, 2), 0);
  std::vector<Addr> seen;
  AuxConsumer consumer([&](const Record& r, CoreId) { seen.push_back(r.vaddr); });
  std::vector<RawChunk> chunks;
  consumer.drain_raw(*ev, chunks);
  ASSERT_EQ(chunks.size(), 1u);

  const DecodedChunk decoded = consumer.decode_raw(chunks[0]);
  EXPECT_EQ(decoded.ok, 2u);
  EXPECT_EQ(decoded.skipped, 0u);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(consumer.counts().records_ok, 0u);

  consumer.add_decoded(decoded.ok, decoded.skipped);
  EXPECT_EQ(consumer.counts().records_ok, 2u);
}

}  // namespace
}  // namespace nmo::spe
