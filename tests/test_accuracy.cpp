// Eq. 1 accuracy and time overhead metrics.
#include "analysis/accuracy.hpp"

#include <gtest/gtest.h>

namespace nmo::analysis {
namespace {

TEST(Accuracy, PerfectReconstruction) {
  EXPECT_DOUBLE_EQ(accuracy(1'000'000, 1000, 1000), 1.0);
}

TEST(Accuracy, UnderSampling) {
  // Half the samples -> 50%.
  EXPECT_DOUBLE_EQ(accuracy(1'000'000, 500, 1000), 0.5);
}

TEST(Accuracy, OverSamplingSymmetric) {
  // 1.1x reconstruction -> 90%, same as 0.9x (the |.| in Eq. 1).
  EXPECT_NEAR(accuracy(1'000'000, 1100, 1000), 0.9, 1e-12);
  EXPECT_NEAR(accuracy(1'000'000, 900, 1000), 0.9, 1e-12);
}

TEST(Accuracy, ZeroSamplesIsZero) {
  EXPECT_DOUBLE_EQ(accuracy(123456, 0, 1000), 0.0);
}

TEST(Accuracy, ZeroCountedGuarded) {
  EXPECT_DOUBLE_EQ(accuracy(0, 10, 10), 0.0);
}

TEST(Accuracy, CanGoNegativeOnWildOvershoot) {
  // Eq. 1 is unbounded below; a 3x overshoot gives -1.
  EXPECT_DOUBLE_EQ(accuracy(1000, 3000, 1), -1.0);
}

TEST(TimeOverhead, Zero) {
  EXPECT_DOUBLE_EQ(time_overhead(100, 100), 0.0);
}

TEST(TimeOverhead, TenPercent) {
  EXPECT_NEAR(time_overhead(1'000'000, 1'100'000), 0.10, 1e-12);
}

TEST(TimeOverhead, GuardsZeroBaseline) {
  EXPECT_DOUBLE_EQ(time_overhead(0, 100), 0.0);
}

TEST(TimeOverhead, NegativePreserved) {
  EXPECT_LT(time_overhead(1000, 990), 0.0);
}

TEST(Accuracy, StatResultAccessors) {
  sim::StatResult r;
  r.mem_counted = 1'000'000;
  r.processed_samples = 980;
  r.period = 1000;
  r.baseline_ns = 1'000'000;
  r.instrumented_ns = 1'020'000;
  EXPECT_NEAR(accuracy(r), 0.98, 1e-12);
  EXPECT_NEAR(time_overhead(r), 0.02, 1e-12);
}

}  // namespace
}  // namespace nmo::analysis
