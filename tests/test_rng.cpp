// Determinism and distribution sanity of the xoshiro256** engine.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace nmo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42, 0);
  Rng b(42, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer) {
  Rng a(42, 0);
  Rng b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SeedsDiffer) {
  Rng a(1, 0);
  Rng b(2, 0);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformZeroBound) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(123);
  std::array<int, 8> buckets{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(8)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 8, n / 8 * 0.08);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsOne) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential();
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(), 0.0);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  // Pin the first output so accidental algorithm changes are caught.
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

TEST(Rng, NormalishMeanAndSpread) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normalish(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  const double var = sq / n - mean * mean;
  EXPECT_GT(var, 0.5);
}

}  // namespace
}  // namespace nmo
