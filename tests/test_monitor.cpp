// Monitor timing model: batched drain rounds, rate limiting, drains, and
// the async (staged producer/consumer) pipeline's parity with them.
#include "sim/monitor.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "sim/drain_service.hpp"
#include "spe/decode_pool.hpp"
#include "spe/packet.hpp"

namespace nmo::sim {
namespace {

constexpr std::size_t kPage = 64 * 1024;

std::unique_ptr<kern::PerfEvent> make_event(std::uint64_t watermark = 64) {
  kern::PerfEventAttr attr;
  attr.type = kern::kPerfTypeArmSpe;
  attr.config = kern::kSpeConfigLoadsAndStores;
  attr.sample_period = 1000;
  attr.aux_watermark = watermark;
  attr.disabled = false;
  return kern::open_event(attr, 0, 4, kPage, 16 * kPage,
                          kern::TimeConv::from_frequency(3e9), nullptr);
}

/// An event whose data ring holds only `ring_bytes` - small enough that
/// coalesced wakeups overflow it and AUX records are lost, the "can no
/// longer raise wakeups" situation the re-arm branch recovers from.
std::unique_ptr<kern::PerfEvent> make_tiny_ring_event(std::size_t ring_bytes,
                                                      std::uint64_t watermark,
                                                      CoreId core = 0) {
  kern::PerfEventAttr attr;
  attr.type = kern::kPerfTypeArmSpe;
  attr.config = kern::kSpeConfigLoadsAndStores;
  attr.sample_period = 1000;
  attr.aux_watermark = watermark;
  attr.disabled = false;
  return kern::open_event(attr, core, 1, ring_bytes, 16 * kPage,
                          kern::TimeConv::from_frequency(3e9), nullptr);
}

std::array<std::byte, spe::kRecordSize> rec(Addr a) {
  spe::Record r;
  r.vaddr = a;
  r.timestamp = 1;
  std::array<std::byte, spe::kRecordSize> wire{};
  spe::encode(r, wire);
  return wire;
}

TEST(Monitor, WakeupArmsRound) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event();
  Monitor mon(cost, &consumer, {ev.get()});
  ev->aux_write(rec(1), 0);
  const auto done = mon.on_wakeup(1000);
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(*done, 1000u + cost.monitor_wake_cycles);
  EXPECT_TRUE(mon.round_armed());
}

TEST(Monitor, SecondWakeupCoalesces) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev1 = make_event();
  auto ev2 = make_event();
  Monitor mon(cost, &consumer, {ev1.get(), ev2.get()});
  ev1->aux_write(rec(1), 0);
  ev2->aux_write(rec(2), 0);
  ASSERT_TRUE(mon.on_wakeup(0).has_value());
  EXPECT_FALSE(mon.on_wakeup(10).has_value());  // round already armed
}

TEST(Monitor, RoundDrainsAllReadyEvents) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev1 = make_event();
  auto ev2 = make_event();
  Monitor mon(cost, &consumer, {ev1.get(), ev2.get()});
  ev1->aux_write(rec(1), 0);
  ev2->aux_write(rec(2), 0);
  const auto t = mon.on_wakeup(0);
  const auto next = mon.on_round_done(*t);
  EXPECT_FALSE(next.has_value());
  EXPECT_EQ(consumer.counts().records_ok, 2u);  // both fds drained in one round
  EXPECT_FALSE(mon.round_armed());
  EXPECT_EQ(mon.rounds(), 1u);
}

TEST(Monitor, RoundsAreRateLimited) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event();
  Monitor mon(cost, &consumer, {ev.get()});
  ev->aux_write(rec(1), 0);
  const auto t1 = mon.on_wakeup(0);
  mon.on_round_done(*t1);
  // Immediately another wakeup: the next round must start no earlier than
  // round_interval after the previous round finished.
  ev->aux_write(rec(2), 0);
  ev->aux_write(rec(3), 0);
  const auto t2 = mon.on_wakeup(*t1 + 1);
  ASSERT_TRUE(t2.has_value());
  EXPECT_GE(*t2, *t1 + cost.monitor_round_interval_cycles);
}

TEST(Monitor, FullBufferGetsFollowUpRound) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event(/*watermark=*/16 * kPage);  // only full-buffer wakeups
  Monitor mon(cost, &consumer, {ev.get()});
  const std::size_t cap = 16 * kPage / spe::kRecordSize;
  for (std::size_t i = 0; i < cap; ++i) ASSERT_TRUE(ev->aux_write(rec(1 + i), 0));
  EXPECT_FALSE(ev->aux_write(rec(9999), 0));  // full -> TRUNCATED wakeup
  EXPECT_GT(ev->pending_wakeups(), 0u);
  const auto t1 = mon.on_wakeup(0);
  ASSERT_TRUE(t1.has_value());
  // Refill the buffer during the drain round so it is full again.
  const auto next = mon.on_round_done(*t1);
  EXPECT_FALSE(next.has_value());  // buffer now empty, no follow-up
  EXPECT_EQ(consumer.counts().records_ok, cap);
}

TEST(Monitor, RoundCostScalesWithBytes) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto small_ev = make_event(/*watermark=*/16 * kPage);
  auto big_ev = make_event(/*watermark=*/16 * kPage);
  small_ev->aux_write(rec(1), 0);
  for (int i = 0; i < 1000; ++i) big_ev->aux_write(rec(2), 0);
  Monitor mon_small(cost, &consumer, {small_ev.get()});
  Monitor mon_big(cost, &consumer, {big_ev.get()});
  const auto t_small = mon_small.on_wakeup(0);
  const auto t_big = mon_big.on_wakeup(0);
  EXPECT_GT(*t_big, *t_small);
}

TEST(Monitor, DrainAllAcksPendingWakeups) {
  // drain_all used to drain buffers but never acknowledge the wakeups the
  // way on_round_done does, leaving stale pending_wakeups() after the
  // end-of-run drain.
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event(/*watermark=*/64);
  Monitor mon(cost, &consumer, {ev.get()});
  for (int i = 0; i < 3; ++i) ev->aux_write(rec(1 + i), 0);
  ASSERT_GT(ev->pending_wakeups(), 0u);
  const std::uint64_t pending = ev->pending_wakeups();
  mon.drain_all();
  EXPECT_EQ(ev->pending_wakeups(), 0u);
  EXPECT_EQ(mon.wakeups_acked(), pending);
  EXPECT_EQ(consumer.counts().records_ok, 3u);
}

TEST(Monitor, FollowUpRoundWhenBufferCannotRaiseWakeups) {
  // While a round is queued, writes keep crossing effective_watermark();
  // each crossing emits an AUX record + wakeup, and a small data ring
  // overflows - those bytes can no longer raise wakeups or be drained, so
  // on_round_done must re-arm a follow-up round (the re-arm branch).
  CostModel cost;
  spe::AuxConsumer consumer;
  // Ring fits 4 AUX records (8 B header + 24 B payload each).
  auto ev = make_tiny_ring_event(/*ring_bytes=*/128, /*watermark=*/64);
  Monitor mon(cost, &consumer, {ev.get()});
  ev->aux_write(rec(1), 0);
  const auto t1 = mon.on_wakeup(0);
  ASSERT_TRUE(t1.has_value());
  // 11 more watermark crossings while the round is queued: 3 more AUX
  // records land in the ring, the rest are lost.
  for (int i = 0; i < 11; ++i) ev->aux_write(rec(2 + i), 0);
  EXPECT_GT(ev->ring().lost(), 0u);
  const auto follow_up = mon.on_round_done(*t1);
  ASSERT_TRUE(follow_up.has_value());  // data is still pending: re-armed
  EXPECT_TRUE(mon.round_armed());
  EXPECT_GE(*follow_up, *t1 + cost.monitor_round_interval_cycles);
  // Only the ring-delivered AUX records could be drained...
  EXPECT_EQ(consumer.counts().records_ok, 4u);
  EXPECT_GE(ev->aux().used(), ev->effective_watermark());
  // ...and every wakeup was still consumed by the round's batched ack.
  EXPECT_EQ(ev->pending_wakeups(), 0u);
}

/// Drives `rounds` wakeup/round-done pairs, writing `writes` records per
/// event per round, and returns the cumulative counts after drain_all.
template <typename WriteFn>
void drive_rounds(Monitor& mon, const std::vector<kern::PerfEvent*>& events, int rounds,
                  int writes, WriteFn&& write_rec) {
  CostModel cost;
  Cycles now = 0;
  for (int r = 0; r < rounds; ++r) {
    for (auto* ev : events) {
      for (int i = 0; i < writes; ++i) write_rec(*ev, r, i);
    }
    const auto done = mon.on_wakeup(now);
    if (done.has_value()) {
      auto next = mon.on_round_done(*done);
      now = *done;
      while (next.has_value()) {
        now = *next;
        next = mon.on_round_done(*next);
      }
    }
    now += cost.monitor_round_interval_cycles;
  }
  mon.drain_all();
}

TEST(Monitor, AsyncSerialMatchesSyncByteForByte) {
  // The async pipeline (DrainService, no decode pool) must produce the
  // same records in the same order as the synchronous inline drain, and
  // the same counts - the serial half of the parity oracle.
  constexpr int kRounds = 5;
  constexpr int kWrites = 7;
  const auto writer = [](kern::PerfEvent& ev, int r, int i) {
    ev.aux_write(rec(1000 * (r + 1) + i), 0);
  };

  std::vector<Addr> sync_order;
  spe::AuxConsumer sync_consumer([&](std::span<const spe::Record> records, CoreId) {
    for (const auto& record : records) sync_order.push_back(record.vaddr);
  });
  auto sync_ev = make_event(/*watermark=*/64);
  Monitor sync_mon(CostModel{}, &sync_consumer, {sync_ev.get()});
  drive_rounds(sync_mon, {sync_ev.get()}, kRounds, kWrites, writer);

  std::vector<Addr> async_order;  // written on the service thread only
  spe::AuxConsumer async_consumer([&](std::span<const spe::Record> records, CoreId) {
    for (const auto& record : records) async_order.push_back(record.vaddr);
  });
  DrainService service(&async_consumer, nullptr);
  auto async_ev = make_event(/*watermark=*/64);
  Monitor async_mon(CostModel{}, &async_consumer, {async_ev.get()}, &service);
  EXPECT_TRUE(async_mon.async());
  drive_rounds(async_mon, {async_ev.get()}, kRounds, kWrites, writer);

  EXPECT_EQ(async_order, sync_order);  // FIFO epochs: even the order matches
  EXPECT_EQ(async_consumer.counts().records_ok, sync_consumer.counts().records_ok);
  EXPECT_EQ(async_consumer.counts().records_skipped, sync_consumer.counts().records_skipped);
  EXPECT_EQ(async_consumer.counts().aux_records, sync_consumer.counts().aux_records);
  EXPECT_EQ(async_mon.rounds(), sync_mon.rounds());
  EXPECT_EQ(async_mon.bytes_drained(), sync_mon.bytes_drained());
  EXPECT_EQ(service.stats().epochs_submitted, service.stats().epochs_retired);
}

TEST(Monitor, AsyncPoolKeepsEpochOrderingPerCore) {
  // Epoch-ordering under async_drain with decode_shards > 1: each shard
  // must observe one core's records in drain (epoch) order even though
  // decode of epoch N overlaps the drain of epoch N+1.
  constexpr std::uint32_t kShards = 4;
  constexpr int kRounds = 6;
  constexpr int kWrites = 9;

  std::map<CoreId, std::vector<Addr>> per_core;
  std::mutex map_mutex;
  spe::DecodePool pool(kShards,
                       [&](std::span<const spe::Record> records, CoreId core, std::uint32_t) {
                         std::lock_guard<std::mutex> lock(map_mutex);
                         auto& out = per_core[core];
                         for (const auto& record : records) out.push_back(record.vaddr);
                       });
  spe::AuxConsumer consumer(&pool);
  DrainService service(&consumer, &pool);

  auto ev0 = make_tiny_ring_event(4 * kPage, /*watermark=*/64, /*core=*/0);
  auto ev1 = make_tiny_ring_event(4 * kPage, /*watermark=*/64, /*core=*/1);
  Monitor mon(CostModel{}, &consumer, {ev0.get(), ev1.get()}, &service);
  drive_rounds(mon, {ev0.get(), ev1.get()}, kRounds, kWrites,
               [](kern::PerfEvent& ev, int r, int i) {
                 ev.aux_write(rec(100'000 * (ev.core() + 1) + 1000 * (r + 1) + i), 0);
               });

  ASSERT_EQ(per_core.size(), 2u);
  for (const auto& [core, order] : per_core) {
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kRounds * kWrites)) << "core " << core;
    // vaddrs were written strictly increasing per core; epoch-ordered
    // decode must preserve that.
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1], order[i]) << "core " << core << " position " << i;
    }
  }
  EXPECT_EQ(consumer.counts().records_ok, static_cast<std::uint64_t>(2 * kRounds * kWrites));
  EXPECT_EQ(service.stats().epochs_submitted, service.stats().epochs_retired);
  EXPECT_GT(service.stats().chunks, 0u);
}

TEST(Monitor, AsyncOverlapTelemetryAccumulates) {
  CostModel cost;
  spe::AuxConsumer consumer;
  DrainService service(&consumer, nullptr);
  auto ev = make_event(/*watermark=*/64);
  Monitor mon(cost, &consumer, {ev.get()}, &service);
  drive_rounds(mon, {ev.get()}, /*rounds=*/4, /*writes=*/5,
               [](kern::PerfEvent& ev2, int r, int i) {
                 ev2.aux_write(rec(1000 * (r + 1) + i), 0);
               });
  const MonitorOverlap& overlap = mon.overlap();
  EXPECT_GT(overlap.overlapped_cycles, 0u);
  EXPECT_GT(overlap.retired_epochs, 0u);
  EXPECT_GE(overlap.peak_epoch_lag, 1u);
  // Each data-carrying epoch overlaps at least its own decode + retirement.
  EXPECT_GE(overlap.overlapped_cycles,
            overlap.retired_epochs * (cost.drain_wake_cycles + cost.epoch_retire_cycles));
}

TEST(Monitor, AsyncOverlapModelsBacklogUnderDenseRounds) {
  // A big epoch followed quickly by small ones outpaces the modeled
  // consumer thread: the big epoch's decode has not retired when the next
  // round's chunks land, so epochs pile up (lag > 1) and the model
  // accumulates wait cycles.  (With evenly sized rounds the consumer can
  // never lag - the timeline charges the same per-byte cost per round.)
  CostModel cost;
  cost.monitor_round_interval_cycles = 1000;  // rounds far denser than decode
  spe::AuxConsumer consumer;
  DrainService service(&consumer, nullptr);
  auto ev = make_event(/*watermark=*/64);
  Monitor mon(cost, &consumer, {ev.get()}, &service);
  Cycles now = 0;
  for (int r = 0; r < 6; ++r) {
    // Even rounds: 500 records = 32 KiB (~96k decode cycles in the
    // model); odd rounds: a single record arriving ~55k cycles later.
    const int writes = (r % 2 == 0) ? 500 : 1;
    for (int i = 0; i < writes; ++i) ev->aux_write(rec(1000 * (r + 1) + i), 0);
    const auto done = mon.on_wakeup(now);
    ASSERT_TRUE(done.has_value());
    EXPECT_FALSE(mon.on_round_done(*done).has_value());
    now = *done + cost.monitor_round_interval_cycles;
  }
  mon.drain_all();
  const MonitorOverlap& overlap = mon.overlap();
  EXPECT_GT(overlap.peak_epoch_lag, 1u);
  EXPECT_GT(overlap.epoch_wait_cycles, 0u);
  EXPECT_EQ(overlap.retired_epochs, 6u);
}

TEST(Monitor, SyncModeReportsNoOverlap) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event();
  Monitor mon(cost, &consumer, {ev.get()});
  ev->aux_write(rec(1), 0);
  const auto t = mon.on_wakeup(0);
  mon.on_round_done(*t);
  mon.drain_all();
  EXPECT_FALSE(mon.async());
  EXPECT_EQ(mon.overlap().overlapped_cycles, 0u);
  EXPECT_EQ(mon.overlap().retired_epochs, 0u);
  EXPECT_EQ(mon.overlap().peak_epoch_lag, 0u);
}

TEST(Monitor, DrainAllFlushesEverything) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev1 = make_event(16 * kPage);
  auto ev2 = make_event(16 * kPage);
  for (int i = 0; i < 5; ++i) ev1->aux_write(rec(1), 0);
  for (int i = 0; i < 7; ++i) ev2->aux_write(rec(2), 0);
  ev1->flush_aux(0);
  ev2->flush_aux(0);
  Monitor mon(cost, &consumer, {ev1.get(), ev2.get()});
  mon.drain_all();
  EXPECT_EQ(consumer.counts().records_ok, 12u);
  EXPECT_FALSE(mon.round_armed());
  EXPECT_EQ(mon.bytes_drained(), 12 * spe::kRecordSize);
}

}  // namespace
}  // namespace nmo::sim
