// Monitor timing model: batched drain rounds, rate limiting, drains.
#include "sim/monitor.hpp"

#include <gtest/gtest.h>

#include "spe/packet.hpp"

namespace nmo::sim {
namespace {

constexpr std::size_t kPage = 64 * 1024;

std::unique_ptr<kern::PerfEvent> make_event(std::uint64_t watermark = 64) {
  kern::PerfEventAttr attr;
  attr.type = kern::kPerfTypeArmSpe;
  attr.config = kern::kSpeConfigLoadsAndStores;
  attr.sample_period = 1000;
  attr.aux_watermark = watermark;
  attr.disabled = false;
  return kern::open_event(attr, 0, 4, kPage, 16 * kPage,
                          kern::TimeConv::from_frequency(3e9), nullptr);
}

std::array<std::byte, spe::kRecordSize> rec(Addr a) {
  spe::Record r;
  r.vaddr = a;
  r.timestamp = 1;
  std::array<std::byte, spe::kRecordSize> wire{};
  spe::encode(r, wire);
  return wire;
}

TEST(Monitor, WakeupArmsRound) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event();
  Monitor mon(cost, &consumer, {ev.get()});
  ev->aux_write(rec(1), 0);
  const auto done = mon.on_wakeup(1000);
  ASSERT_TRUE(done.has_value());
  EXPECT_GT(*done, 1000u + cost.monitor_wake_cycles);
  EXPECT_TRUE(mon.round_armed());
}

TEST(Monitor, SecondWakeupCoalesces) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev1 = make_event();
  auto ev2 = make_event();
  Monitor mon(cost, &consumer, {ev1.get(), ev2.get()});
  ev1->aux_write(rec(1), 0);
  ev2->aux_write(rec(2), 0);
  ASSERT_TRUE(mon.on_wakeup(0).has_value());
  EXPECT_FALSE(mon.on_wakeup(10).has_value());  // round already armed
}

TEST(Monitor, RoundDrainsAllReadyEvents) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev1 = make_event();
  auto ev2 = make_event();
  Monitor mon(cost, &consumer, {ev1.get(), ev2.get()});
  ev1->aux_write(rec(1), 0);
  ev2->aux_write(rec(2), 0);
  const auto t = mon.on_wakeup(0);
  const auto next = mon.on_round_done(*t);
  EXPECT_FALSE(next.has_value());
  EXPECT_EQ(consumer.counts().records_ok, 2u);  // both fds drained in one round
  EXPECT_FALSE(mon.round_armed());
  EXPECT_EQ(mon.rounds(), 1u);
}

TEST(Monitor, RoundsAreRateLimited) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event();
  Monitor mon(cost, &consumer, {ev.get()});
  ev->aux_write(rec(1), 0);
  const auto t1 = mon.on_wakeup(0);
  mon.on_round_done(*t1);
  // Immediately another wakeup: the next round must start no earlier than
  // round_interval after the previous round finished.
  ev->aux_write(rec(2), 0);
  ev->aux_write(rec(3), 0);
  const auto t2 = mon.on_wakeup(*t1 + 1);
  ASSERT_TRUE(t2.has_value());
  EXPECT_GE(*t2, *t1 + cost.monitor_round_interval_cycles);
}

TEST(Monitor, FullBufferGetsFollowUpRound) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev = make_event(/*watermark=*/16 * kPage);  // only full-buffer wakeups
  Monitor mon(cost, &consumer, {ev.get()});
  const std::size_t cap = 16 * kPage / spe::kRecordSize;
  for (std::size_t i = 0; i < cap; ++i) ASSERT_TRUE(ev->aux_write(rec(1 + i), 0));
  EXPECT_FALSE(ev->aux_write(rec(9999), 0));  // full -> TRUNCATED wakeup
  EXPECT_GT(ev->pending_wakeups(), 0u);
  const auto t1 = mon.on_wakeup(0);
  ASSERT_TRUE(t1.has_value());
  // Refill the buffer during the drain round so it is full again.
  const auto next = mon.on_round_done(*t1);
  EXPECT_FALSE(next.has_value());  // buffer now empty, no follow-up
  EXPECT_EQ(consumer.counts().records_ok, cap);
}

TEST(Monitor, RoundCostScalesWithBytes) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto small_ev = make_event(/*watermark=*/16 * kPage);
  auto big_ev = make_event(/*watermark=*/16 * kPage);
  small_ev->aux_write(rec(1), 0);
  for (int i = 0; i < 1000; ++i) big_ev->aux_write(rec(2), 0);
  Monitor mon_small(cost, &consumer, {small_ev.get()});
  Monitor mon_big(cost, &consumer, {big_ev.get()});
  const auto t_small = mon_small.on_wakeup(0);
  const auto t_big = mon_big.on_wakeup(0);
  EXPECT_GT(*t_big, *t_small);
}

TEST(Monitor, DrainAllFlushesEverything) {
  CostModel cost;
  spe::AuxConsumer consumer;
  auto ev1 = make_event(16 * kPage);
  auto ev2 = make_event(16 * kPage);
  for (int i = 0; i < 5; ++i) ev1->aux_write(rec(1), 0);
  for (int i = 0; i < 7; ++i) ev2->aux_write(rec(2), 0);
  ev1->flush_aux(0);
  ev2->flush_aux(0);
  Monitor mon(cost, &consumer, {ev1.get(), ev2.get()});
  mon.drain_all();
  EXPECT_EQ(consumer.counts().records_ok, 12u);
  EXPECT_FALSE(mon.round_armed());
  EXPECT_EQ(mon.bytes_drained(), 12 * spe::kRecordSize);
}

}  // namespace
}  // namespace nmo::sim
