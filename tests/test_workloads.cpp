// Correctness of the five workload implementations: the algorithms must
// compute real, verifiable results (they are not access-pattern stubs).
#include <gtest/gtest.h>

#include <cmath>

#include "workloads/bfs.hpp"
#include "workloads/cfd.hpp"
#include "workloads/graph.hpp"
#include "workloads/inmem_als.hpp"
#include "workloads/linalg.hpp"
#include "workloads/pagerank.hpp"
#include "workloads/stream.hpp"

namespace nmo::wl {
namespace {

/// Minimal executor that runs kernels inline without simulation.
class InlineExecutor final : public Executor {
 public:
  class NullRecorder final : public MemRecorder {
   public:
    void load(Addr, std::uint8_t) override { ++mem; }
    void store(Addr, std::uint8_t) override { ++mem; }
    void alu(std::uint32_t n) override { alu_ops += n; }
    void flop(std::uint32_t n) override { flops += n; }
    std::uint64_t mem = 0, alu_ops = 0, flops = 0;
  };

  explicit InlineExecutor(std::uint32_t nt = 4) : nt_(nt) {}

  [[nodiscard]] std::uint32_t threads() const override { return nt_; }

  void parallel_for(std::string_view, std::size_t n, const KernelBody& body) override {
    const std::size_t chunk = (n + nt_ - 1) / nt_;
    for (std::uint32_t t = 0; t < nt_; ++t) {
      const std::size_t lo = std::min<std::size_t>(t * chunk, n);
      const std::size_t hi = std::min<std::size_t>(lo + chunk, n);
      if (lo < hi) body(t, lo, hi, recorder);
    }
  }
  void serial(std::string_view, const SerialBody& body) override { body(recorder); }
  Addr alloc(std::string_view, std::uint64_t bytes, std::uint64_t) override {
    const Addr base = next_;
    next_ += (bytes + 0xffff) & ~Addr{0xffff};
    return base;
  }
  void dealloc(Addr) override {}
  [[nodiscard]] std::uint64_t now_ns() const override { return 0; }

  NullRecorder recorder;

 private:
  std::uint32_t nt_;
  Addr next_ = 0x10000;
};

// ---------------------------------------------------------------- STREAM --
TEST(StreamWorkload, TriadValuesMatchClosedForm) {
  InlineExecutor exec;
  StreamConfig cfg;
  cfg.array_elems = 4096;
  cfg.iterations = 3;
  Stream s(cfg);
  s.run(exec);
  const double expect = Stream::expected_a(3, cfg.scalar);
  for (std::size_t i = 0; i < cfg.array_elems; i += 777) {
    EXPECT_DOUBLE_EQ(s.a()[i], expect);
  }
}

TEST(StreamWorkload, RecordsThreeAccessesPerTriadElement) {
  InlineExecutor exec;
  StreamConfig cfg;
  cfg.array_elems = 1000;
  cfg.iterations = 1;
  Stream s(cfg);
  s.run(exec);
  // init: 3n stores; copy 2n; scale 2n; add 3n; triad 3n => 13n total.
  EXPECT_EQ(exec.recorder.mem, 13u * cfg.array_elems);
}

TEST(StreamWorkload, DistinctArrayBases) {
  InlineExecutor exec;
  StreamConfig cfg;
  cfg.array_elems = 128;
  Stream s(cfg);
  s.run(exec);
  EXPECT_NE(s.a_base(), s.b_base());
  EXPECT_NE(s.b_base(), s.c_base());
  EXPECT_GT(s.b_base(), s.a_base());
}

// ------------------------------------------------------------------- CFD --
TEST(CfdWorkload, DensityStaysFiniteAndPositive) {
  InlineExecutor exec;
  CfdConfig cfg;
  cfg.num_cells = 2048;
  cfg.iterations = 10;
  Cfd cfd(cfg);
  cfd.run(exec);
  for (double d : cfd.density()) {
    ASSERT_TRUE(std::isfinite(d));
    ASSERT_GT(d, 0.0);
  }
}

TEST(CfdWorkload, MassStaysBounded) {
  InlineExecutor exec;
  CfdConfig cfg;
  cfg.num_cells = 2048;
  cfg.iterations = 10;
  Cfd cfd(cfg);
  cfd.run(exec);
  const double mass = cfd.total_mass();
  const double initial = 1.4 * static_cast<double>(cfg.num_cells);
  EXPECT_NEAR(mass, initial, 0.2 * initial);
}

TEST(CfdWorkload, DeterministicForSeed) {
  InlineExecutor e1, e2;
  CfdConfig cfg;
  cfg.num_cells = 1024;
  cfg.iterations = 5;
  Cfd a(cfg), b(cfg);
  a.run(e1);
  b.run(e2);
  EXPECT_EQ(a.density(), b.density());
}

// ------------------------------------------------------------------- BFS --
TEST(BfsWorkload, MatchesReferenceBfs) {
  InlineExecutor exec;
  BfsConfig cfg;
  cfg.nodes = 4096;
  cfg.edges_per_node = 4;
  Bfs bfs(cfg);
  bfs.run(exec);
  const auto ref = reference_bfs(bfs.graph(), cfg.source);
  ASSERT_EQ(bfs.cost().size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v) {
    EXPECT_EQ(bfs.cost()[v], ref[v]) << "node " << v;
  }
}

TEST(BfsWorkload, SourceHasDistanceZero) {
  InlineExecutor exec;
  BfsConfig cfg;
  cfg.nodes = 1024;
  Bfs bfs(cfg);
  bfs.run(exec);
  EXPECT_EQ(bfs.cost()[cfg.source], 0);
  EXPECT_GE(bfs.levels(), 1u);
}

// ------------------------------------------------------------------ Graph --
TEST(Graph, UniformDegreeAndDeterminism) {
  const auto g1 = make_uniform_graph(1000, 8, 3);
  const auto g2 = make_uniform_graph(1000, 8, 3);
  EXPECT_EQ(g1.num_edges(), 8000u);
  EXPECT_EQ(g1.columns, g2.columns);
  for (std::uint32_t v = 0; v < g1.num_nodes; ++v) EXPECT_EQ(g1.degree(v), 8u);
}

TEST(Graph, RmatIsSkewed) {
  const auto g = make_rmat_graph(12, 8, 5);
  EXPECT_EQ(g.num_nodes, 4096u);
  // Power-law-ish: the max out-degree far exceeds the mean.
  std::uint64_t max_deg = 0;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_GT(max_deg, 8u * 8u);
}

TEST(Graph, CsrOffsetsConsistent) {
  const auto g = make_rmat_graph(10, 4, 9);
  EXPECT_EQ(g.row_offsets.front(), 0u);
  EXPECT_EQ(g.row_offsets.back(), g.num_edges());
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    EXPECT_LE(g.row_offsets[v], g.row_offsets[v + 1]);
  }
  for (auto c : g.columns) EXPECT_LT(c, g.num_nodes);
}

// --------------------------------------------------------------- PageRank --
TEST(PageRankWorkload, RanksSumToOne) {
  InlineExecutor exec;
  PageRankConfig cfg;
  cfg.nodes_log2 = 10;
  cfg.iterations = 8;
  PageRank pr(cfg);
  pr.run(exec);
  EXPECT_NEAR(pr.rank_sum(), 1.0, 1e-6);
}

TEST(PageRankWorkload, Converges) {
  InlineExecutor exec;
  PageRankConfig cfg;
  cfg.nodes_log2 = 10;
  cfg.iterations = 10;
  PageRank pr(cfg);
  pr.run(exec);
  const auto& deltas = pr.iteration_deltas();
  ASSERT_GE(deltas.size(), 3u);
  EXPECT_LT(deltas.back(), deltas.front());
}

TEST(PageRankWorkload, AllRanksPositive) {
  InlineExecutor exec;
  PageRankConfig cfg;
  cfg.nodes_log2 = 9;
  cfg.iterations = 5;
  PageRank pr(cfg);
  pr.run(exec);
  for (double r : pr.ranks()) EXPECT_GT(r, 0.0);
}

// -------------------------------------------------------------------- ALS --
TEST(AlsWorkload, RmseDecreases) {
  InlineExecutor exec;
  AlsConfig cfg;
  cfg.users = 600;
  cfg.movies = 200;
  cfg.ratings_per_user = 20;
  cfg.rank = 8;
  cfg.iterations = 4;
  InMemAnalytics als(cfg);
  als.run(exec);
  const auto& rmse = als.rmse_history();
  ASSERT_EQ(rmse.size(), cfg.iterations);
  EXPECT_LT(rmse.back(), rmse.front());
  for (std::size_t i = 1; i < rmse.size(); ++i) {
    EXPECT_LE(rmse[i], rmse[i - 1] + 1e-9) << "iteration " << i;
  }
}

TEST(AlsWorkload, FitsTheSyntheticRatings) {
  InlineExecutor exec;
  AlsConfig cfg;
  cfg.users = 600;
  cfg.movies = 200;
  cfg.ratings_per_user = 30;
  cfg.rank = 8;
  cfg.iterations = 6;
  InMemAnalytics als(cfg);
  als.run(exec);
  // The ratings were generated from a rank-12 model plus offset; a rank-8
  // fit should still reach a small residual.
  EXPECT_LT(als.rmse_history().back(), 0.5);
}

// ----------------------------------------------------------------- LinAlg --
TEST(LinAlg, CholeskySolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {10, 8};
  ASSERT_TRUE(solve_spd(DenseMatrix{a.data(), 2}, b.data()));
  EXPECT_NEAR(b[0], 1.75, 1e-12);
  EXPECT_NEAR(b[1], 1.5, 1e-12);
}

TEST(LinAlg, RejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(solve_spd(DenseMatrix{a.data(), 2}, b.data()));
}

TEST(LinAlg, IdentitySolve) {
  std::vector<double> a = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<double> b = {3, -2, 7};
  ASSERT_TRUE(solve_spd(DenseMatrix{a.data(), 3}, b.data()));
  EXPECT_DOUBLE_EQ(b[0], 3);
  EXPECT_DOUBLE_EQ(b[1], -2);
  EXPECT_DOUBLE_EQ(b[2], 7);
}

TEST(LinAlg, LargerRandomSpd) {
  // Build SPD as M^T M + I and check A x = b round trip.
  constexpr std::size_t n = 12;
  std::vector<double> m(n * n), a(n * n, 0.0);
  std::uint64_t s = 99;
  for (auto& v : m) {
    s = s * 6364136223846793005ull + 1;
    v = static_cast<double>(s >> 40) / (1 << 24) - 0.5;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) a[i * n + j] += m[k * n + i] * m[k * n + j];
    }
    a[i * n + i] += 1.0;
  }
  std::vector<double> x_true(n, 1.0), b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
  }
  std::vector<double> a_copy = a;
  ASSERT_TRUE(solve_spd(DenseMatrix{a_copy.data(), n}, b.data()));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], 1.0, 1e-8);
}

}  // namespace
}  // namespace nmo::wl
