// PerfEvent: counting mode, SPE aux plumbing, watermark AUX records, flags.
#include "kernel/perf_event.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace nmo::kern {
namespace {

constexpr std::size_t kPage = 64 * 1024;

PerfEventAttr spe_attr(std::uint64_t period = 1024, std::uint64_t watermark = 0) {
  PerfEventAttr attr;
  attr.type = kPerfTypeArmSpe;
  attr.config = kSpeConfigLoadsAndStores;
  attr.sample_period = period;
  attr.aux_watermark = watermark;
  attr.disabled = false;
  return attr;
}

std::unique_ptr<PerfEvent> make_spe(std::size_t aux_pages = 16, std::uint64_t watermark = 0,
                                    Throttler* throttler = nullptr) {
  return open_event(spe_attr(1024, watermark), 0, /*ring_pages=*/4, kPage, aux_pages * kPage,
                    TimeConv::from_frequency(3e9), throttler);
}

std::vector<std::byte> record_bytes() { return std::vector<std::byte>(64); }

AuxRecord read_aux_record(PerfEvent& ev) {
  const auto rec = ev.read_record();
  EXPECT_TRUE(rec.has_value());
  EXPECT_EQ(rec->header.type, RecordType::kAux);
  AuxRecord aux{};
  std::memcpy(&aux, rec->payload.data(), sizeof(aux));
  return aux;
}

TEST(PerfEventCounting, CountsWhenEnabled) {
  PerfEventAttr attr;
  attr.type = kPerfTypeHardware;
  attr.count_event = CountEvent::kMemAccess;
  attr.disabled = false;
  const auto ev = open_event(attr, 0, 0, kPage, 0, TimeConv::from_frequency(3e9), nullptr);
  ev->add_count(10);
  ev->add_count(5);
  EXPECT_EQ(ev->read_count(), 15u);
}

TEST(PerfEventCounting, DisabledIgnoresCounts) {
  PerfEventAttr attr;
  attr.type = kPerfTypeHardware;
  attr.disabled = true;
  const auto ev = open_event(attr, 0, 0, kPage, 0, TimeConv::from_frequency(3e9), nullptr);
  ev->add_count(10);
  EXPECT_EQ(ev->read_count(), 0u);
  ev->enable();
  ev->add_count(3);
  EXPECT_EQ(ev->read_count(), 3u);
}

TEST(PerfEventSpe, DefaultWatermarkIsHalfBuffer) {
  const auto ev = make_spe(16);
  EXPECT_EQ(ev->effective_watermark(), 8 * kPage);
}

TEST(PerfEventSpe, AuxRecordEmittedAtWatermark) {
  const auto ev = make_spe(16, /*watermark=*/128);
  ASSERT_TRUE(ev->aux_write(record_bytes(), 100));
  EXPECT_EQ(ev->stats().aux_records, 0u);  // 64 < 128
  ASSERT_TRUE(ev->aux_write(record_bytes(), 200));
  EXPECT_EQ(ev->stats().aux_records, 1u);  // 128 >= 128
  const auto aux = read_aux_record(*ev);
  EXPECT_EQ(aux.aux_offset, 0u);
  EXPECT_EQ(aux.aux_size, 128u);
  EXPECT_EQ(aux.flags, 0u);
}

TEST(PerfEventSpe, WakeupCallbackFires) {
  const auto ev = make_spe(16, 64);
  int wakeups = 0;
  std::uint64_t seen_ns = 0;
  ev->set_wakeup_callback([&](PerfEvent&, std::uint64_t ns) {
    ++wakeups;
    seen_ns = ns;
  });
  ev->aux_write(record_bytes(), 4242);
  EXPECT_EQ(wakeups, 1);
  EXPECT_EQ(seen_ns, 4242u);
  EXPECT_EQ(ev->pending_wakeups(), 1u);
  ev->ack_wakeup();
  EXPECT_EQ(ev->pending_wakeups(), 0u);
}

TEST(PerfEventSpe, FullAuxDropsAndFlagsTruncated) {
  // Aux of exactly 4 pages; watermark = full buffer so no records are
  // emitted until we force the overflow path.
  const auto ev = make_spe(4, 4 * kPage);
  const std::size_t capacity_records = 4 * kPage / 64;
  for (std::size_t i = 0; i < capacity_records; ++i) {
    ASSERT_TRUE(ev->aux_write(record_bytes(), i));
  }
  EXPECT_FALSE(ev->aux_write(record_bytes(), 999));  // full -> dropped
  EXPECT_EQ(ev->stats().dropped_samples, 1u);
  ev->flush_aux(1000);
  // The filling writes emitted a watermark AUX record; the flush emits a
  // second one carrying the TRUNCATED flag.
  bool saw_truncated = false;
  while (auto rec = ev->read_record()) {
    AuxRecord aux{};
    std::memcpy(&aux, rec->payload.data(), sizeof(aux));
    if (aux.flags & kAuxFlagTruncated) saw_truncated = true;
  }
  EXPECT_TRUE(saw_truncated);
  EXPECT_EQ(ev->stats().truncated_records, 1u);
}

TEST(PerfEventSpe, ConsumeAuxFreesSpaceForDevice) {
  const auto ev = make_spe(4, 4 * kPage);
  const std::size_t capacity_records = 4 * kPage / 64;
  for (std::size_t i = 0; i < capacity_records; ++i) {
    ASSERT_TRUE(ev->aux_write(record_bytes(), i));
  }
  EXPECT_FALSE(ev->aux_write(record_bytes(), 0));
  ev->consume_aux(64 * 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ev->aux_write(record_bytes(), 0)) << i;
  }
  EXPECT_FALSE(ev->aux_write(record_bytes(), 0));
}

TEST(PerfEventSpe, CollisionFlagCarriedOnNextRecord) {
  const auto ev = make_spe(16, 64);
  ev->note_collision();
  ev->aux_write(record_bytes(), 1);
  const auto aux = read_aux_record(*ev);
  EXPECT_TRUE(aux.flags & kAuxFlagCollision);
  EXPECT_EQ(ev->stats().collision_records, 1u);
  // Flag is cleared after being reported once.
  ev->aux_write(record_bytes(), 2);
  const auto aux2 = read_aux_record(*ev);
  EXPECT_FALSE(aux2.flags & kAuxFlagCollision);
}

TEST(PerfEventSpe, TinyAuxBufferIsNonFunctional) {
  // Below 4 pages the device never starts: every write is lost (paper
  // section VII-B: SPE "loses all samples if the Aux buffer is not large
  // enough"; minimum is 4 pages).
  const auto ev = make_spe(2);
  EXPECT_FALSE(ev->aux_functional());
  EXPECT_FALSE(ev->aux_write(record_bytes(), 0));
  EXPECT_EQ(ev->stats().dropped_samples, 1u);
  const auto ev4 = make_spe(4);
  EXPECT_TRUE(ev4->aux_functional());
}

TEST(PerfEventSpe, FlushEmitsPartialData) {
  const auto ev = make_spe(16);  // watermark = 512 KiB, far away
  ev->aux_write(record_bytes(), 1);
  ev->aux_write(record_bytes(), 2);
  EXPECT_EQ(ev->stats().aux_records, 0u);
  ev->flush_aux(3);
  EXPECT_EQ(ev->stats().aux_records, 1u);
  const auto aux = read_aux_record(*ev);
  EXPECT_EQ(aux.aux_size, 128u);
}

TEST(PerfEventSpe, DisabledEventRejectsWrites) {
  const auto ev = make_spe(16);
  ev->disable();
  EXPECT_FALSE(ev->aux_write(record_bytes(), 0));
}

TEST(PerfEventSpe, ThrottleEmitsRecordOnce) {
  Throttler throttler(ThrottleConfig{.enabled = true, .max_samples_per_sec = 10});
  const auto ev = make_spe(16, 0, &throttler);
  EXPECT_TRUE(ev->account_samples(0, 5));
  EXPECT_FALSE(ev->account_samples(1000, 10));  // budget blown
  EXPECT_EQ(ev->stats().throttle_records, 1u);
  EXPECT_FALSE(ev->account_samples(2000, 1));
  EXPECT_EQ(ev->stats().throttle_records, 1u);  // no duplicate
  EXPECT_TRUE(ev->throttled(5000));
  // Next window: unthrottled again.
  EXPECT_FALSE(ev->throttled(1'000'000'001ull));
  EXPECT_TRUE(ev->account_samples(1'000'000'002ull, 1));
}

TEST(PerfEventOpen, Validation) {
  const auto tc = TimeConv::from_frequency(3e9);
  auto attr = spe_attr(0);
  EXPECT_THROW(open_event(attr, 0, 4, kPage, 16 * kPage, tc, nullptr), PerfOpenError);
  attr = spe_attr(1024);
  EXPECT_THROW(open_event(attr, 0, 0, kPage, 16 * kPage, tc, nullptr), PerfOpenError);
  EXPECT_THROW(open_event(attr, 0, 4, kPage, 0, tc, nullptr), PerfOpenError);
  attr = spe_attr(1024, /*watermark=*/17 * kPage);
  EXPECT_THROW(open_event(attr, 0, 4, kPage, 16 * kPage, tc, nullptr), PerfOpenError);
}

TEST(PerfEventSpe, MetadataPagePopulated) {
  const auto ev = make_spe(16);
  const auto& meta = ev->ring().metadata();
  EXPECT_EQ(meta.aux_size, 16 * kPage);
  EXPECT_GT(meta.time_mult, 0u);
  ASSERT_TRUE(ev->aux_write(record_bytes(), 0));
  EXPECT_EQ(ev->ring().metadata().aux_head, 64u);
}

}  // namespace
}  // namespace nmo::kern
