// Property tests pinning the paper's headline findings as invariants of
// the statistical driver.  These are the regression guards for the
// calibration: if a model change breaks a paper shape, these fail.
#include <gtest/gtest.h>

#include "analysis/accuracy.hpp"
#include "common/stats.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"

namespace nmo::sim {
namespace {

SweepConfig counting_cfg(std::uint64_t period, std::uint32_t threads = 32,
                         std::uint64_t seed = 11) {
  SweepConfig cfg;
  cfg.threads = threads;
  cfg.period = period;
  cfg.seed = seed;
  cfg.monitor_round_interval_cycles = 45'000'000;  // responsive monitor
  return cfg;
}

WorkloadProfile scaled(WorkloadProfile p, double f) {
  p.scale_ops(f);
  return p;
}

// --- Figure 7: linearity ----------------------------------------------------
TEST(PaperProperties, SamplesScaleInverselyWithPeriod) {
  const auto profile = scaled(profiles::stream(), 0.25);
  LinearFit loglog;
  for (std::uint64_t period : {4096ull, 16384ull, 65536ull}) {
    const auto r = run_statistical(profile, MachineConfig{}, counting_cfg(period));
    loglog.add(std::log2(static_cast<double>(period)),
               std::log2(static_cast<double>(r.processed_samples)));
  }
  EXPECT_NEAR(loglog.slope(), -1.0, 0.1);
  EXPECT_LT(loglog.correlation(), -0.999);
}

TEST(PaperProperties, SmallestPeriodFallsBelowTheLine) {
  // Collisions push the smallest-period sample count below proportional
  // scaling (Fig. 7's anomaly).
  const auto profile = scaled(profiles::stream(), 0.25);
  const auto fine = run_statistical(profile, MachineConfig{}, counting_cfg(512));
  const auto coarse = run_statistical(profile, MachineConfig{}, counting_cfg(8192));
  const double expected_ratio = 8192.0 / 512.0;
  const double actual_ratio = static_cast<double>(fine.processed_samples) /
                              static_cast<double>(coarse.processed_samples);
  EXPECT_LT(actual_ratio, expected_ratio * 0.95);
}

// --- Figure 8a: accuracy rise and plateau ------------------------------------
TEST(PaperProperties, AccuracyRisesSharplyBelow4000) {
  const auto profile = scaled(profiles::stream(), 0.25);
  const auto a1000 = run_with_baseline(profile, MachineConfig{}, counting_cfg(1000));
  const auto a4000 = run_with_baseline(profile, MachineConfig{}, counting_cfg(4000));
  EXPECT_LT(analysis::accuracy(a1000), 0.93);
  EXPECT_GT(analysis::accuracy(a4000), 0.94);
}

TEST(PaperProperties, PlateauAccuracyAbove94Percent) {
  for (const auto& profile : {profiles::stream(), profiles::cfd(), profiles::bfs()}) {
    auto p = scaled(profile, 0.2);
    for (std::uint64_t period : {4000ull, 16000ull, 64000ull}) {
      const auto r = run_with_baseline(p, MachineConfig{}, counting_cfg(period));
      EXPECT_GT(analysis::accuracy(r), 0.94) << profile.name << " @ " << period;
      EXPECT_LE(analysis::accuracy(r), 1.0) << profile.name << " @ " << period;
    }
  }
}

// --- Figure 8b: overhead ordering --------------------------------------------
TEST(PaperProperties, BfsOverheadSpikesAtSmallPeriods) {
  const auto bfs = scaled(profiles::bfs(), 0.5);
  const auto fine = run_with_baseline(bfs, MachineConfig{}, counting_cfg(1000));
  const auto coarse = run_with_baseline(bfs, MachineConfig{}, counting_cfg(32000));
  EXPECT_GT(analysis::time_overhead(fine), 0.05);   // paper: ~11%
  EXPECT_LT(analysis::time_overhead(coarse), 0.01);
}

TEST(PaperProperties, BfsOverheadExceedsStreamAtSmallPeriod) {
  const auto bfs = run_with_baseline(scaled(profiles::bfs(), 0.5), MachineConfig{},
                                     counting_cfg(1000));
  const auto stream = run_with_baseline(scaled(profiles::stream(), 0.25), MachineConfig{},
                                        counting_cfg(1000));
  EXPECT_GT(analysis::time_overhead(bfs), 2.0 * analysis::time_overhead(stream));
}

TEST(PaperProperties, OverheadMonotoneDecreasingInPeriodForBfs) {
  const auto bfs = scaled(profiles::bfs(), 0.5);
  double prev = 1e9;
  for (std::uint64_t period : {1000ull, 4000ull, 16000ull, 64000ull}) {
    const auto r = run_with_baseline(bfs, MachineConfig{}, counting_cfg(period));
    const double ov = analysis::time_overhead(r);
    EXPECT_LT(ov, prev) << period;
    prev = ov;
  }
}

// --- Figure 8c: collision ordering -------------------------------------------
TEST(PaperProperties, CfdCollidesMoreThanStreamMoreThanBfs) {
  const auto cfd = run_statistical(scaled(profiles::cfd(), 0.2), MachineConfig{},
                                   counting_cfg(1000));
  const auto stream = run_statistical(scaled(profiles::stream(), 0.2), MachineConfig{},
                                      counting_cfg(1000));
  const auto bfs = run_statistical(scaled(profiles::bfs(), 0.2), MachineConfig{},
                                   counting_cfg(1000));
  EXPECT_GT(cfd.hw_collisions, stream.hw_collisions);
  EXPECT_GT(stream.hw_collisions, 100u);
  EXPECT_LT(bfs.hw_collisions, stream.hw_collisions / 10);
}

TEST(PaperProperties, CollisionsVanishAtLargePeriods) {
  const auto r = run_statistical(scaled(profiles::stream(), 0.25), MachineConfig{},
                                 counting_cfg(32000));
  EXPECT_EQ(r.hw_collisions, 0u);
}

// --- Figure 9: aux buffer ----------------------------------------------------
TEST(PaperProperties, TwoPageAuxBufferLosesEverything) {
  SweepConfig cfg = counting_cfg(4096);
  cfg.aux_bytes = 2 * 64 * 1024;
  const auto r = run_statistical(scaled(profiles::stream(), 0.25), MachineConfig{}, cfg);
  EXPECT_EQ(r.processed_samples, 0u);
}

TEST(PaperProperties, AccuracyMonotoneInAuxBufferSize) {
  auto profile = scaled(profiles::stream(), 1.0);
  double first = 0.0, prev = -1.0;
  for (std::uint64_t pages : {4ull, 16ull, 64ull}) {
    SweepConfig cfg;  // loaded-monitor (trace-mode) configuration
    cfg.threads = 32;
    cfg.period = 4096;
    cfg.seed = 5;
    cfg.aux_bytes = pages * 64 * 1024;
    const auto r = run_statistical(profile, MachineConfig{}, cfg);
    const double acc = analysis::accuracy(r);
    EXPECT_GE(acc, prev) << pages << " pages";  // non-decreasing in size
    if (first == 0.0) first = acc;
    prev = acc;
  }
  EXPECT_GT(prev, 0.9);         // large buffers approach full capture
  EXPECT_GT(prev, first + 0.1); // small buffers lose markedly more
}

// --- Figure 11: collisions grow with threads ---------------------------------
TEST(PaperProperties, CollisionsGrowWithThreadCountPastSaturation) {
  auto profile = scaled(profiles::stream(), 0.5);
  SweepConfig c32;
  c32.threads = 32;
  c32.period = 4096;
  c32.seed = 9;
  SweepConfig c128 = c32;
  c128.threads = 128;
  const auto r32 = run_statistical(profile, MachineConfig{}, c32);
  const auto r128 = run_statistical(profile, MachineConfig{}, c128);
  EXPECT_GT(r32.hw_collisions, 0u);
  EXPECT_GT(r128.hw_collisions, 2 * r32.hw_collisions);
}

TEST(PaperProperties, NoCollisionsBelowSaturation) {
  auto profile = scaled(profiles::stream(), 0.5);
  SweepConfig cfg;
  cfg.threads = 4;
  cfg.period = 4096;
  cfg.seed = 9;
  const auto r = run_statistical(profile, MachineConfig{}, cfg);
  EXPECT_EQ(r.hw_collisions, 0u);
}

// --- Throttling (kernel protection; exercised as an ablation) ----------------
TEST(PaperProperties, ThrottlingActivatesUnderTightBudget) {
  auto profile = scaled(profiles::bfs(), 0.5);
  MachineConfig mc;
  mc.throttle.max_samples_per_sec = 50'000;  // artificially tight budget
  const auto r = run_statistical(profile, mc, counting_cfg(1000, 8));
  EXPECT_GT(r.throttle_events, 0u);
  EXPECT_GT(r.throttled, 0u);
  // Throttled runs lose samples -> lower accuracy than unthrottled.
  const auto open = run_statistical(profile, MachineConfig{}, counting_cfg(1000, 8));
  EXPECT_LT(r.processed_samples, open.processed_samples);
}

// --- Recommended operating point ---------------------------------------------
TEST(PaperProperties, RecommendedPeriodsBalanceAccuracyAndOverhead) {
  // "users are supposed to avoid using a small sampling period below 2000
  //  ... Considering time overhead, 10,000 to 50,000 are suggested."
  const auto profile = scaled(profiles::stream(), 0.25);
  const auto r = run_with_baseline(profile, MachineConfig{}, counting_cfg(16000));
  EXPECT_GT(analysis::accuracy(r), 0.94);
  EXPECT_LT(analysis::time_overhead(r), 0.01);
}

}  // namespace
}  // namespace nmo::sim
