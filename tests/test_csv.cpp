// CSV writer quoting and formatting rules.
#include "common/csv.hpp"

#include <gtest/gtest.h>

namespace nmo {
namespace {

TEST(Csv, SimpleRow) {
  CsvWriter w;
  w.row({"a", "b", "c"});
  EXPECT_EQ(w.str(), "a,b,c\n");
}

TEST(Csv, QuotesCommas) {
  CsvWriter w;
  w.row({"x,y", "z"});
  EXPECT_EQ(w.str(), "\"x,y\",z\n");
}

TEST(Csv, QuotesQuotes) {
  CsvWriter w;
  w.row({"say \"hi\""});
  EXPECT_EQ(w.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  CsvWriter w;
  w.row({"two\nlines", "plain"});
  EXPECT_EQ(w.str(), "\"two\nlines\",plain\n");
}

TEST(Csv, VectorRow) {
  CsvWriter w;
  w.row(std::vector<std::string>{"1", "2"});
  EXPECT_EQ(w.str(), "1,2\n");
}

TEST(Csv, NumericRow) {
  CsvWriter w;
  w.numeric_row("series", {1.0, 0.5, 1e6}, 6);
  EXPECT_EQ(w.str(), "series,1,0.5,1e+06\n");
}

TEST(Csv, MultipleRows) {
  CsvWriter w;
  w.row({"h1", "h2"});
  w.row({"v1", "v2"});
  EXPECT_EQ(w.str(), "h1,h2\nv1,v2\n");
}

TEST(Csv, EmptyFields) {
  CsvWriter w;
  w.row({"", "x", ""});
  EXPECT_EQ(w.str(), ",x,\n");
}

}  // namespace
}  // namespace nmo
