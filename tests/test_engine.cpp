// TraceEngine + ProfileSession integration: real workloads through the
// exact simulator with the full NMO stack attached.
#include <gtest/gtest.h>

#include "analysis/pattern.hpp"
#include "core/session.hpp"
#include "workloads/bfs.hpp"
#include "workloads/stream.hpp"

namespace nmo {
namespace {

core::NmoConfig sampling_config(std::uint64_t period = 512) {
  core::NmoConfig cfg;
  cfg.enable = true;
  cfg.mode = core::Mode::kAll;
  cfg.period = period;
  return cfg;
}

sim::EngineConfig small_engine(std::uint32_t threads = 4) {
  sim::EngineConfig cfg;
  cfg.threads = threads;
  cfg.machine.hierarchy.cores = threads;
  return cfg;
}

TEST(TraceEngine, WorkloadStillComputesCorrectly) {
  core::ProfileSession session(sampling_config(), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 20'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  session.profile(stream, /*with_baseline=*/false);
  EXPECT_DOUBLE_EQ(stream.a()[123], wl::Stream::expected_a(2, scfg.scalar));
}

TEST(TraceEngine, SamplesApproximateMemOverPeriod) {
  core::ProfileSession session(sampling_config(512), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 50'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  const auto report = session.profile(stream, false);
  EXPECT_GT(report.mem_ops, 0u);
  const double expected = static_cast<double>(report.mem_ops) / 512.0;
  EXPECT_NEAR(static_cast<double>(report.processed_samples), expected, expected * 0.25);
}

TEST(TraceEngine, AccuracyReasonableAtModeratePeriod) {
  core::ProfileSession session(sampling_config(1024), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 100'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  const auto report = session.profile(stream, true);
  EXPECT_GT(report.accuracy(), 0.80);
  EXPECT_LE(report.accuracy(), 1.0);
  EXPECT_GE(report.time_overhead(), 0.0);
}

TEST(TraceEngine, SamplesAttributedToTaggedArrays) {
  core::ProfileSession session(sampling_config(256), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 50'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  session.profile(stream, false);
  const auto& profiler = session.profiler();
  const auto breakdown = analysis::region_breakdown(profiler.trace(), profiler.regions());
  // Tags a, b, c must all receive samples; untagged should be empty
  // (STREAM touches only the three arrays).
  std::uint64_t tagged = 0, untagged = 0;
  for (const auto& r : breakdown) {
    if (r.name == "(untagged)") {
      untagged = r.samples;
    } else {
      EXPECT_GT(r.samples, 0u) << r.name;
      tagged += r.samples;
    }
  }
  EXPECT_GT(tagged, 0u);
  EXPECT_EQ(untagged, 0u);
}

TEST(TraceEngine, PhaseSpansRecorded) {
  core::ProfileSession session(sampling_config(512), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 10'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  session.profile(stream, false);
  const auto& phases = session.profiler().regions().phases();
  // init + 2 iterations x 4 kernels = 9 phases, all closed.
  ASSERT_EQ(phases.size(), 9u);
  for (const auto& p : phases) {
    EXPECT_GT(p.t_stop_ns, p.t_start_ns) << p.name;
  }
  EXPECT_EQ(session.profiler().regions().open_phases(), 0u);
}

TEST(TraceEngine, TriadSamplesLandInTriadPhase) {
  core::ProfileSession session(sampling_config(256), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 50'000;
  scfg.iterations = 3;
  wl::Stream stream(scfg);
  session.profile(stream, false);
  const auto& profiler = session.profiler();
  const auto triad =
      analysis::samples_in_phase(profiler.trace(), profiler.regions(), "triad");
  EXPECT_GT(triad.size(), 10u);
  // Triad touches all three arrays; samples must span a, b and c ranges.
  std::uint64_t in_a = 0;
  for (const auto& s : triad) {
    if (s.vaddr >= stream.a_base() && s.vaddr < stream.a_base() + scfg.array_elems * 8) ++in_a;
  }
  EXPECT_GT(in_a, 0u);
  EXPECT_LT(in_a, triad.size());
}

TEST(TraceEngine, StreamScatterIsRegular) {
  core::ProfileSession session(sampling_config(256), small_engine(2));
  wl::StreamConfig scfg;
  scfg.array_elems = 80'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  session.profile(stream, false);
  const auto& profiler = session.profiler();
  auto triad = analysis::samples_in_phase(profiler.trace(), profiler.regions(), "triad");
  // Triad interleaves three array streams; within ONE tagged array the
  // sweep is sequential, so per-region same-core deltas are small.
  std::erase_if(triad, [](const core::TraceSample& s) { return s.region != 0; });
  ASSERT_GT(triad.size(), 10u);
  EXPECT_GT(analysis::locality_fraction(triad, 64 * 1024), 0.9);
}

TEST(TraceEngine, CapacityTracksAllocations) {
  core::ProfileSession session(sampling_config(), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 30'000;
  scfg.iterations = 1;
  wl::Stream stream(scfg);
  session.profile(stream, false);
  const auto& cap = session.profiler().capacity();
  EXPECT_EQ(cap.peak_bytes(), 3u * scfg.array_elems * 8);
}

TEST(TraceEngine, BandwidthSeriesNonEmptyAndPositive) {
  sim::EngineConfig ecfg = small_engine();
  ecfg.tick_interval_ns = 100'000;  // dense ticks for a short run
  core::ProfileSession session(sampling_config(), ecfg);
  wl::StreamConfig scfg;
  scfg.array_elems = 200'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  session.profile(stream, false);
  const auto& bw = session.profiler().bandwidth();
  ASSERT_FALSE(bw.series().empty());
  EXPECT_GT(bw.peak_gib_per_s(), 0.0);
  EXPECT_GT(bw.arithmetic_intensity(), 0.0);
}

TEST(TraceEngine, TraceFingerprintIsDeterministic) {
  wl::StreamConfig scfg;
  scfg.array_elems = 20'000;
  scfg.iterations = 1;
  std::string fp1, fp2;
  {
    core::ProfileSession session(sampling_config(512), small_engine());
    wl::Stream stream(scfg);
    session.profile(stream, false);
    fp1 = session.profiler().trace().fingerprint();
  }
  {
    core::ProfileSession session(sampling_config(512), small_engine());
    wl::Stream stream(scfg);
    session.profile(stream, false);
    fp2 = session.profiler().trace().fingerprint();
  }
  EXPECT_EQ(fp1, fp2);
  EXPECT_EQ(fp1.size(), 32u);
}

TEST(TraceEngine, AsyncDrainTraceByteIdenticalToSync) {
  // The parity oracle across all four drain configurations: serial sync,
  // sharded sync, serial async, sharded async must emit byte-identical
  // canonical traces (same MD5 fingerprint) - the async pipeline changes
  // host-side execution, never the drain schedule.
  wl::StreamConfig scfg;
  scfg.array_elems = 200'000;
  scfg.iterations = 2;
  // Small aux buffers + a short period + dense rounds so watermark wakeups
  // and drain rounds (and therefore epochs) happen inside the timing
  // window, not just at the finalize drain.
  core::NmoConfig nmo = sampling_config(256);
  nmo.auxbufsize_bytes = 256 * 1024;
  std::string reference;
  for (const bool async : {false, true}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      sim::EngineConfig ecfg = small_engine();
      ecfg.decode_shards = shards;
      ecfg.async_drain = async;
      ecfg.machine.cost.monitor_round_interval_cycles = 1'000'000;
      core::ProfileSession session(nmo, ecfg);
      wl::Stream stream(scfg);
      const auto report = session.profile(stream, false);
      const std::string fp = session.profiler().trace().fingerprint();
      if (reference.empty()) {
        reference = fp;
      } else {
        EXPECT_EQ(fp, reference) << "async=" << async << " shards=" << shards;
      }
      if (async) {
        EXPECT_GT(report.overlapped_cycles, 0u) << shards;
        EXPECT_GT(report.retired_epochs, 0u) << shards;
        EXPECT_GE(report.peak_epoch_lag, 1u) << shards;
      } else {
        EXPECT_EQ(report.overlapped_cycles, 0u) << shards;
      }
    }
  }
  EXPECT_EQ(reference.size(), 32u);
}

TEST(TraceEngine, AsyncDrainRegionAttributionMatchesSync) {
  // Region tagging happens mid-run (Stream tags its arrays); the quiesce
  // hook must make decode-time attribution identical to the sync path.
  wl::StreamConfig scfg;
  scfg.array_elems = 40'000;
  scfg.iterations = 2;
  auto breakdown_of = [&](bool async) {
    sim::EngineConfig ecfg = small_engine();
    ecfg.decode_shards = 4;
    ecfg.async_drain = async;
    core::ProfileSession session(sampling_config(256), ecfg);
    wl::Stream stream(scfg);
    session.profile(stream, false);
    return analysis::region_breakdown(session.profiler().trace(), session.profiler().regions());
  };
  const auto sync_bd = breakdown_of(false);
  const auto async_bd = breakdown_of(true);
  ASSERT_EQ(sync_bd.size(), async_bd.size());
  for (std::size_t i = 0; i < sync_bd.size(); ++i) {
    EXPECT_EQ(async_bd[i].name, sync_bd[i].name);
    EXPECT_EQ(async_bd[i].samples, sync_bd[i].samples) << sync_bd[i].name;
  }
}

TEST(TraceEngine, DisabledSamplingCollectsNothing) {
  core::NmoConfig cfg;
  cfg.enable = true;
  cfg.mode = core::Mode::kCapacity;  // no sampling mode
  cfg.period = 512;
  core::ProfileSession session(cfg, small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 10'000;
  wl::Stream stream(scfg);
  const auto report = session.profile(stream, false);
  EXPECT_EQ(report.processed_samples, 0u);
  EXPECT_EQ(report.wakeups, 0u);
}

TEST(TraceEngine, BfsThroughFullStack) {
  core::ProfileSession session(sampling_config(512), small_engine());
  wl::BfsConfig bcfg;
  bcfg.nodes = 8192;
  bcfg.edges_per_node = 4;
  wl::Bfs bfs(bcfg);
  const auto report = session.profile(bfs, false);
  // BFS result must still be correct under profiling.
  const auto ref = wl::reference_bfs(bfs.graph(), bcfg.source);
  EXPECT_EQ(bfs.cost(), ref);
  EXPECT_GT(report.processed_samples, 0u);
}

TEST(TraceEngine, InstrumentedNeverFasterThanBaseline) {
  core::ProfileSession session(sampling_config(256), small_engine());
  wl::StreamConfig scfg;
  scfg.array_elems = 60'000;
  scfg.iterations = 2;
  wl::Stream stream(scfg);
  const auto report = session.profile(stream, true);
  EXPECT_GE(report.instrumented_ns, report.baseline_ns);
}

}  // namespace
}  // namespace nmo
