// Kernel-style interrupt-rate throttling.
#include "kernel/throttle.hpp"

#include <gtest/gtest.h>

namespace nmo::kern {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(Throttler, AllowsUnderBudget) {
  Throttler t(ThrottleConfig{.enabled = true, .max_samples_per_sec = 100});
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(t.on_samples(i * 1000, 1));
  EXPECT_EQ(t.throttle_events(), 0u);
}

TEST(Throttler, TripsOverBudget) {
  Throttler t(ThrottleConfig{.enabled = true, .max_samples_per_sec = 100});
  for (int i = 0; i < 100; ++i) t.on_samples(0, 1);
  EXPECT_FALSE(t.on_samples(1, 1));
  EXPECT_TRUE(t.is_throttled(2));
  EXPECT_EQ(t.throttle_events(), 1u);
}

TEST(Throttler, WindowRollsOver) {
  Throttler t(ThrottleConfig{.enabled = true, .max_samples_per_sec = 10});
  t.on_samples(0, 11);
  EXPECT_TRUE(t.is_throttled(kSec - 1));
  EXPECT_FALSE(t.is_throttled(kSec));
  EXPECT_TRUE(t.on_samples(kSec + 1, 1));
}

TEST(Throttler, WindowEndReported) {
  Throttler t;
  t.on_samples(kSec * 3 + 17, 1);
  EXPECT_EQ(t.window_end_ns(), kSec * 4);
}

TEST(Throttler, DisabledNeverThrottles) {
  Throttler t(ThrottleConfig{.enabled = false, .max_samples_per_sec = 1});
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(t.on_samples(0, 100));
  EXPECT_FALSE(t.is_throttled(0));
}

TEST(Throttler, EachWindowCountsOneEpisode) {
  Throttler t(ThrottleConfig{.enabled = true, .max_samples_per_sec = 5});
  t.on_samples(0, 10);
  t.on_samples(10, 10);  // still same window, already throttled
  EXPECT_EQ(t.throttle_events(), 1u);
  t.on_samples(kSec, 10);  // next window trips again
  EXPECT_EQ(t.throttle_events(), 2u);
}

TEST(Throttler, BulkCountTripsImmediately) {
  Throttler t(ThrottleConfig{.enabled = true, .max_samples_per_sec = 100});
  EXPECT_FALSE(t.on_samples(0, 1000));
  EXPECT_EQ(t.throttle_events(), 1u);
}

}  // namespace
}  // namespace nmo::kern
