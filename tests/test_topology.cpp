// sys/topology: cpu-list parsing, synthetic shapes, sysfs discovery
// against fixture trees, and the placement_node mapping used by both the
// decode-pool pinning path and the sim's remote-drain model.
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "spe/decode_pool.hpp"
#include "sys/topology.hpp"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace {

using nmo::spe::PlacementPolicy;
using nmo::spe::placement_node;
using nmo::sys::CpuTopology;
using nmo::sys::parse_cpu_list;

// ---------------------------------------------------------------------------
// parse_cpu_list

TEST(CpuList, ParsesSinglesAndRanges) {
  EXPECT_EQ(parse_cpu_list("0-3,5,8-9"),
            (std::vector<std::uint32_t>{0, 1, 2, 3, 5, 8, 9}));
  EXPECT_EQ(parse_cpu_list("7"), (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(parse_cpu_list("0-0"), (std::vector<std::uint32_t>{0}));
}

TEST(CpuList, SortsAndDedupes) {
  EXPECT_EQ(parse_cpu_list("5,1-3,2,5"), (std::vector<std::uint32_t>{1, 2, 3, 5}));
}

TEST(CpuList, TolerantOfGarbage) {
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list("banana").empty());
  // A reversed range is dropped, valid neighbors survive.
  EXPECT_EQ(parse_cpu_list("3-1,4"), (std::vector<std::uint32_t>{4}));
  // Malformed tokens between valid ones are skipped.
  EXPECT_EQ(parse_cpu_list("0,x,2"), (std::vector<std::uint32_t>{0, 2}));
  // Absurd ranges (DoS guard) are dropped.
  EXPECT_TRUE(parse_cpu_list("0-99999999").empty());
}

// ---------------------------------------------------------------------------
// synthetic topologies

TEST(Topology, SyntheticEvenSplit) {
  const auto topo = CpuTopology::synthetic(2, 8);
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_cpus(), 8u);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.source(), "synthetic");
  EXPECT_EQ(topo.nodes()[0].cpus, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes()[1].cpus, (std::vector<std::uint32_t>{4, 5, 6, 7}));
  EXPECT_EQ(topo.node_of(0), 0u);
  EXPECT_EQ(topo.node_of(3), 0u);
  EXPECT_EQ(topo.node_of(4), 1u);
  EXPECT_EQ(topo.node_of(7), 1u);
  // Unknown cpus map to node 0, never out of range.
  EXPECT_EQ(topo.node_of(99), 0u);
}

TEST(Topology, SyntheticUnevenSplitFrontLoads) {
  // 7 cpus over 2 nodes: first node gets the extra cpu.
  const auto topo = CpuTopology::synthetic(2, 7);
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.nodes()[0].cpus.size(), 4u);
  EXPECT_EQ(topo.nodes()[1].cpus.size(), 3u);
}

TEST(Topology, SyntheticClampsDegenerateShapes) {
  // Zero nodes/cpus clamp to a 1x1 shape rather than an empty topology.
  EXPECT_EQ(CpuTopology::synthetic(0, 0).num_nodes(), 1u);
  // More nodes than cpus: one cpu per node.
  const auto topo = CpuTopology::synthetic(8, 2);
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_cpus(), 2u);
}

TEST(Topology, DefaultIsEmpty) {
  const CpuTopology topo;
  EXPECT_TRUE(topo.empty());
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.num_nodes(), 0u);
  EXPECT_EQ(topo.source(), "none");
}

// ---------------------------------------------------------------------------
// sysfs discovery fixtures

class FixtureDir {
 public:
  explicit FixtureDir(std::string_view tag) {
    root_ = std::filesystem::temp_directory_path() /
            (std::string("nmo-topo-") + std::string(tag) + "-" +
             std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~FixtureDir() { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const auto path = root_ / rel;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path);
    out << text;
  }

  [[nodiscard]] std::string path() const { return root_.string(); }

 private:
  std::filesystem::path root_;
};

TEST(Discover, TwoSocketNodeDirs) {
  FixtureDir fix("2s");
  fix.write("devices/system/cpu/online", "0-7\n");
  fix.write("devices/system/node/node0/cpulist", "0-3\n");
  fix.write("devices/system/node/node1/cpulist", "4-7\n");
  const auto topo = CpuTopology::discover(fix.path());
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.source(), "sysfs");
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.nodes()[0].cpus, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes()[1].cpus, (std::vector<std::uint32_t>{4, 5, 6, 7}));
  EXPECT_EQ(topo.node_of(5), 1u);
}

TEST(Discover, SingleSocket) {
  FixtureDir fix("1s");
  fix.write("devices/system/cpu/online", "0-3\n");
  fix.write("devices/system/node/node0/cpulist", "0-3\n");
  const auto topo = CpuTopology::discover(fix.path());
  ASSERT_EQ(topo.num_nodes(), 1u);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.num_cpus(), 4u);
}

TEST(Discover, PackageIdFallbackWithoutNodeDirs) {
  // No node/ directory at all: group by physical_package_id.
  FixtureDir fix("pkg");
  fix.write("devices/system/cpu/online", "0-3\n");
  fix.write("devices/system/cpu/cpu0/topology/physical_package_id", "0\n");
  fix.write("devices/system/cpu/cpu1/topology/physical_package_id", "0\n");
  fix.write("devices/system/cpu/cpu2/topology/physical_package_id", "1\n");
  fix.write("devices/system/cpu/cpu3/topology/physical_package_id", "1\n");
  const auto topo = CpuTopology::discover(fix.path());
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.nodes()[0].cpus, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(topo.nodes()[1].cpus, (std::vector<std::uint32_t>{2, 3}));
}

TEST(Discover, AsymmetricClusters) {
  // big.LITTLE-style: node ids with a gap, different sizes, cluster ids.
  FixtureDir fix("asym");
  fix.write("devices/system/cpu/online", "0-5\n");
  fix.write("devices/system/node/node0/cpulist", "0-1\n");
  fix.write("devices/system/node/node2/cpulist", "2-5\n");
  fix.write("devices/system/cpu/cpu0/topology/cluster_id", "0\n");
  fix.write("devices/system/cpu/cpu1/topology/cluster_id", "0\n");
  fix.write("devices/system/cpu/cpu2/topology/cluster_id", "1\n");
  fix.write("devices/system/cpu/cpu3/topology/cluster_id", "1\n");
  fix.write("devices/system/cpu/cpu4/topology/cluster_id", "2\n");
  fix.write("devices/system/cpu/cpu5/topology/cluster_id", "2\n");
  const auto topo = CpuTopology::discover(fix.path());
  ASSERT_EQ(topo.num_nodes(), 2u);
  // Dense indices 0/1; the original sysfs id is preserved for display.
  EXPECT_EQ(topo.nodes()[0].id, 0u);
  EXPECT_EQ(topo.nodes()[1].id, 2u);
  EXPECT_EQ(topo.nodes()[0].cpus.size(), 2u);
  EXPECT_EQ(topo.nodes()[1].cpus.size(), 4u);
  EXPECT_EQ(topo.node_of(4), 1u);
  EXPECT_EQ(topo.cluster_of(0), 0u);
  EXPECT_EQ(topo.cluster_of(3), 1u);
  EXPECT_EQ(topo.cluster_of(5), 2u);
}

TEST(Discover, OfflineCpusExcluded) {
  FixtureDir fix("off");
  fix.write("devices/system/cpu/online", "0-2\n");
  fix.write("devices/system/node/node0/cpulist", "0-1\n");
  fix.write("devices/system/node/node1/cpulist", "2-3\n");  // cpu3 offline
  const auto topo = CpuTopology::discover(fix.path());
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.nodes()[1].cpus, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(topo.num_cpus(), 3u);
}

TEST(Discover, MissingRootFallsBackToSingleNode) {
  const auto topo = CpuTopology::discover("/nonexistent/nmo-sysfs");
  ASSERT_EQ(topo.num_nodes(), 1u);
  EXPECT_EQ(topo.source(), "fallback");
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_FALSE(topo.multi_node());
}

TEST(Discover, GarbledFilesFallBackNeverThrow) {
  FixtureDir fix("bad");
  fix.write("devices/system/cpu/online", "!!not a cpu list!!\n");
  fix.write("devices/system/node/node0/cpulist", "\x01\x02\x03\n");
  fix.write("devices/system/cpu/cpu0/topology/physical_package_id", "-7\n");
  CpuTopology topo;
  EXPECT_NO_THROW(topo = CpuTopology::discover(fix.path()));
  // Whatever the parse salvaged, the result is a usable single-or-more
  // node topology with at least one cpu.
  ASSERT_GE(topo.num_nodes(), 1u);
  EXPECT_GE(topo.num_cpus(), 1u);
}

// ---------------------------------------------------------------------------
// thread naming / pinning helpers

#if defined(__linux__)
TEST(Threads, NameRoundTrips) {
  char before[16] = {};
  pthread_getname_np(pthread_self(), before, sizeof(before));
  nmo::sys::set_current_thread_name("nmo-topotest");
  char after[16] = {};
  pthread_getname_np(pthread_self(), after, sizeof(after));
  EXPECT_STREQ(after, "nmo-topotest");
  nmo::sys::set_current_thread_name(before);
}

TEST(Threads, PinToOwnAffinityIsAccepted) {
  // Pinning to the full current topology must succeed (it is a superset
  // of wherever this thread already runs); an empty cpu set must fail
  // without throwing.
  const auto topo = CpuTopology::discover();
  ASSERT_GE(topo.num_nodes(), 1u);
  std::vector<std::uint32_t> all;
  for (const auto& node : topo.nodes())
    all.insert(all.end(), node.cpus.begin(), node.cpus.end());
  EXPECT_TRUE(nmo::sys::pin_current_thread(all));
  EXPECT_FALSE(nmo::sys::pin_current_thread({}));
}
#endif

// ---------------------------------------------------------------------------
// placement_node: the shared shard -> node mapping

TEST(Placement, NoneAlwaysNodeZero) {
  const auto topo = CpuTopology::synthetic(2, 8);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(placement_node(PlacementPolicy::kNone, topo, s, 4), 0u);
  }
}

TEST(Placement, PackShardsFillsByCapacity) {
  // 2 nodes x 4 cpus, 4 shards: shards 0-3 all fit on node 0.
  const auto topo = CpuTopology::synthetic(2, 8);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(placement_node(PlacementPolicy::kPackShards, topo, s, 4), 0u);
  }
  // 8 shards: the second four spill to node 1.
  for (std::uint32_t s = 4; s < 8; ++s) {
    EXPECT_EQ(placement_node(PlacementPolicy::kPackShards, topo, s, 8), 1u);
  }
}

TEST(Placement, NearProducerFollowsMajorityNode) {
  // 2 nodes x 4 cpus, 4 shards: shard s serves cores {s, s+4}; cores 0-3
  // are node 0, cores 4-7 node 1 - a tie, broken to the lowest node.
  const auto topo = CpuTopology::synthetic(2, 8);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(placement_node(PlacementPolicy::kNearProducer, topo, s, 4), 0u);
  }
  // 2 shards over 8 cores: shard 0 serves {0,2,4,6} (2 votes each node,
  // tie -> 0), shard 1 serves {1,3,5,7} (same).
  EXPECT_EQ(placement_node(PlacementPolicy::kNearProducer, topo, 0, 2), 0u);
  EXPECT_EQ(placement_node(PlacementPolicy::kNearProducer, topo, 1, 2), 0u);
  // 8 shards over 8 cores: shard s serves exactly core s, so the upper
  // shards land on node 1 - the only-producer case must follow its node.
  EXPECT_EQ(placement_node(PlacementPolicy::kNearProducer, topo, 5, 8), 1u);
  EXPECT_EQ(placement_node(PlacementPolicy::kNearProducer, topo, 7, 8), 1u);
}

TEST(Placement, SingleNodeOrEmptyTopologyIsAlwaysZero) {
  const auto one = CpuTopology::synthetic(1, 8);
  EXPECT_EQ(placement_node(PlacementPolicy::kNearProducer, one, 3, 4), 0u);
  const CpuTopology none;
  EXPECT_EQ(placement_node(PlacementPolicy::kPackShards, none, 3, 4), 0u);
}

TEST(Placement, PolicyNamesRoundTrip) {
  using nmo::spe::parse_placement_policy;
  using nmo::spe::to_string;
  for (const auto policy : {PlacementPolicy::kNone, PlacementPolicy::kPackShards,
                            PlacementPolicy::kNearProducer}) {
    const auto parsed = parse_placement_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_placement_policy("bogus").has_value());
}

}  // namespace
