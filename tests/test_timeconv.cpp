// Timescale conversion (time_zero/time_shift/time_mult), section IV-A.
#include "kernel/timeconv.hpp"

#include <gtest/gtest.h>

namespace nmo::kern {
namespace {

TEST(TimeConv, ThreeGhzCyclesToNs) {
  const auto tc = TimeConv::from_frequency(3e9);
  // 3 cycles at 3 GHz = 1 ns.
  EXPECT_NEAR(static_cast<double>(tc.to_ns(3'000'000'000ull)), 1e9, 1e3);
  EXPECT_EQ(tc.to_ns(0), 0u);
}

TEST(TimeConv, OneGhzIsIdentityInNs) {
  const auto tc = TimeConv::from_frequency(1e9);
  EXPECT_EQ(tc.to_ns(12345), 12345u);
}

TEST(TimeConv, ZeroOffsetApplied) {
  const auto tc = TimeConv::from_frequency(1e9, 1000);
  EXPECT_EQ(tc.to_ns(0), 1000u);
  EXPECT_EQ(tc.to_ns(10), 1010u);
}

TEST(TimeConv, MetadataRoundTrip) {
  const auto tc = TimeConv::from_frequency(3e9, 777);
  MetadataPage meta;
  tc.fill_metadata(meta);
  const auto back = TimeConv::from_metadata(meta);
  for (std::uint64_t cycles : {0ull, 1ull, 12345678ull, 3'000'000'000ull}) {
    EXPECT_EQ(tc.to_ns(cycles), back.to_ns(cycles));
  }
}

TEST(TimeConv, InverseRoundTripErrorBounded) {
  const auto tc = TimeConv::from_frequency(3e9);
  for (std::uint64_t cycles : {100ull, 99999ull, 123456789ull, 987654321012ull}) {
    const auto ns = tc.to_ns(cycles);
    const auto back = tc.to_cycles(ns);
    // Rounding through the fixed-point mult/shift loses at most a few
    // cycles.
    const auto diff = back > cycles ? back - cycles : cycles - back;
    EXPECT_LE(diff, 8u) << "cycles=" << cycles;
  }
}

TEST(TimeConv, MonotoneInCycles) {
  const auto tc = TimeConv::from_frequency(2.5e9);
  std::uint64_t prev = 0;
  for (std::uint64_t c = 0; c < 1'000'000; c += 7919) {
    const auto ns = tc.to_ns(c);
    EXPECT_GE(ns, prev);
    prev = ns;
  }
}

TEST(TimeConv, LargeValuesNoOverflow) {
  const auto tc = TimeConv::from_frequency(3e9);
  // ~100 days of cycles.
  const std::uint64_t cycles = 3ull * 1000000000 * 86400 * 100;
  const auto ns = tc.to_ns(cycles);
  EXPECT_NEAR(static_cast<double>(ns), 86400.0 * 100 * 1e9, 1e12 * 0.001);
}

TEST(TimeConv, RelativeErrorTiny) {
  const auto tc = TimeConv::from_frequency(3e9);
  const std::uint64_t cycles = 3'000'000'000ull * 60;  // one minute
  const double expect_ns = 60e9;
  const double got = static_cast<double>(tc.to_ns(cycles));
  EXPECT_LT(std::abs(got - expect_ns) / expect_ns, 1e-6);
}

}  // namespace
}  // namespace nmo::kern
