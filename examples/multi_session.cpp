// Multi-session profiling: N concurrent profiled jobs, one trace file each.
//
// The step toward serving many profiled jobs at once (ROADMAP): a
// SessionStore hands each job its own session directory, run_sessions
// profiles every job on its own thread, and each session writes its binary
// trace (store/trace_file.hpp) without touching the others.  Afterwards the
// traces merge back into one canonical trace - here in-process via
// TraceMerger, in scripted workflows via `nmo-trace merge`.
//
// The example prints the per-session results plus the *expected* merged
// sample count and fingerprint, computed independently in memory with
// SampleTrace::append + sort_canonical.  CI's smoke step compares these
// expectations against what `nmo-trace merge` + `nmo-trace info` report,
// closing the loop between the in-memory canonical order and the on-disk
// store.
//
//   ./example_multi_session [store_root]     (default ./nmo_sessions)
#include <cstdio>
#include <memory>

#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"
#include "workloads/bfs.hpp"
#include "workloads/stream.hpp"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "nmo_sessions";

  nmo::core::NmoConfig nmo_cfg;
  nmo_cfg.enable = true;
  nmo_cfg.mode = nmo::core::Mode::kAll;
  nmo_cfg.period = 1024;

  nmo::sim::EngineConfig engine;
  engine.threads = 8;
  engine.machine.hierarchy.cores = 8;

  // Two different jobs profiled concurrently: a STREAM run and a BFS run.
  std::vector<nmo::store::SessionJob> jobs(2);
  jobs[0].name = "stream";
  jobs[0].nmo = nmo_cfg;
  jobs[0].engine = engine;
  jobs[0].engine.seed = 1;
  jobs[0].make_workload = [] {
    nmo::wl::StreamConfig cfg;
    cfg.array_elems = 1 << 17;
    cfg.iterations = 2;
    return std::make_unique<nmo::wl::Stream>(cfg);
  };
  jobs[1].name = "bfs";
  jobs[1].nmo = nmo_cfg;
  jobs[1].engine = engine;
  jobs[1].engine.seed = 2;
  jobs[1].make_workload = [] {
    nmo::wl::BfsConfig cfg;
    cfg.nodes = 1 << 15;
    cfg.edges_per_node = 8;
    return std::make_unique<nmo::wl::Bfs>(cfg);
  };

  nmo::store::SessionStore store(root);
  const auto results = nmo::store::run_sessions(store, jobs);

  std::printf("=== multi-session run (%zu concurrent jobs) ===\n", results.size());
  nmo::core::SampleTrace expected;
  bool ok = true;
  for (const auto& r : results) {
    if (!r.error.empty()) {
      std::printf("session %u (%s): FAILED: %s\n", r.session.id, r.session.name.c_str(),
                  r.error.c_str());
      ok = false;
      continue;
    }
    std::printf("session %u (%s): %llu samples -> %s\n", r.session.id, r.session.name.c_str(),
                static_cast<unsigned long long>(r.samples), r.session.trace_path.c_str());
    std::printf("  fingerprint: %s  accuracy: %.2f%%\n", r.fingerprint.c_str(),
                r.report.accuracy() * 100.0);

    // Re-read the session's file: the round-trip must be lossless.
    nmo::store::TraceReader reader(r.session.trace_path);
    nmo::core::SampleTrace from_disk = reader.read_all();
    if (!reader.ok() || from_disk.fingerprint() != r.fingerprint) {
      std::printf("  round-trip MISMATCH: %s\n", reader.error().c_str());
      ok = false;
    }
    expected.append(from_disk);
  }
  if (!ok) return 1;

  // The independent in-memory reference for the merged trace.
  expected.sort_canonical();
  std::printf("\nmerged samples (expected)    : %zu\n", expected.size());
  std::printf("merged fingerprint (expected): %s\n", expected.fingerprint().c_str());

  // And the store's own streaming merge must agree with it.
  nmo::store::TraceMerger merger;
  for (const auto& r : results) merger.add_input(r.session.trace_path);
  const std::string merged_path = root + "/merged.nmot";
  const auto stats = merger.merge_to(merged_path);
  if (!stats) {
    std::printf("merge failed: %s\n", merger.error().c_str());
    return 1;
  }
  const bool match =
      stats->samples == expected.size() && stats->fingerprint == expected.fingerprint();
  std::printf("streaming merge              : %llu samples, %s -> %s\n",
              static_cast<unsigned long long>(stats->samples), stats->fingerprint.c_str(),
              match ? "matches in-memory canonical order" : "MISMATCH");
  return match ? 0 : 1;
}
