// Multi-session profiling: N profiled jobs admitted onto a bounded
// scheduler, one trace file each.
//
// The step toward serving many profiled jobs at once (ROADMAP): a
// SessionStore hands each job its own session directory, and run_sessions
// schedules every job onto a worker pool of `max_workers` threads behind a
// priority-aware admission queue (store/scheduler.hpp) - N can far exceed
// the worker count without spawning N threads.  Each session writes its
// binary trace (store/trace_file.hpp) plus its region-table sidecar
// (store/region_file.hpp) without touching the others.  Afterwards the
// traces merge back into one canonical trace - here in-process via
// TraceMerger, in scripted workflows via `nmo-trace merge`.
//
// The example prints the per-session results, the scheduler's aggregate
// stats, and the *expected* merged sample count and fingerprint, computed
// independently in memory with SampleTrace::append + sort_canonical (with
// region indices remapped through the same RegionUnion the merger uses).
// CI's smoke step compares these expectations against what `nmo-trace
// merge` + `nmo-trace info` report - for the stress leg with 32 sessions
// capped at 4 workers - closing the loop between the in-memory canonical
// order and the on-disk store.
//
//   ./example_multi_session [store_root] [sessions] [max_workers] [policy]
//   defaults: ./nmo_sessions 8 3 block       (policy: block|reject|shed-oldest)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "store/region_file.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"
#include "workloads/bfs.hpp"
#include "workloads/stream.hpp"

// Digits-only count parse: "-1" must hit the usage message, not wrap
// through strtoull to 2^64-1 and blow up a vector allocation.
std::optional<std::uint64_t> parse_count(const char* text) {
  if (!text || *text < '0' || *text > '9') return std::nullopt;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 10);
  if (*end != '\0') return std::nullopt;
  return value;
}

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "nmo_sessions";
  const auto sessions = argc > 2 ? parse_count(argv[2]) : std::uint64_t{8};
  const auto workers = argc > 3 ? parse_count(argv[3]) : std::uint64_t{3};
  const std::string policy_text = argc > 4 ? argv[4] : "block";
  const auto policy = nmo::store::parse_admission_policy(policy_text);
  if (!sessions || *sessions == 0 || !workers || *workers == 0 || *workers > 0xffffffffULL ||
      !policy) {
    std::fprintf(stderr,
                 "usage: %s [store_root] [sessions > 0] [max_workers > 0] "
                 "[block|reject|shed-oldest]\n",
                 argv[0]);
    return 2;
  }
  const std::size_t n_sessions = static_cast<std::size_t>(*sessions);
  const std::uint32_t n_workers = static_cast<std::uint32_t>(*workers);

  nmo::core::NmoConfig nmo_cfg;
  nmo_cfg.enable = true;
  nmo_cfg.mode = nmo::core::Mode::kAll;
  nmo_cfg.period = 1024;

  nmo::sim::EngineConfig engine;
  engine.threads = 4;
  engine.machine.hierarchy.cores = 4;

  // N jobs, far more than workers: alternating STREAM and BFS runs with
  // distinct seeds, every third job submitted at a higher priority class.
  std::vector<nmo::store::SessionJob> jobs(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    jobs[i].nmo = nmo_cfg;
    jobs[i].engine = engine;
    jobs[i].engine.seed = i + 1;
    jobs[i].priority = i % 3 == 0 ? 1 : 0;
    if (i % 2 == 0) {
      jobs[i].name = "stream-" + std::to_string(i);
      jobs[i].make_workload = [] {
        nmo::wl::StreamConfig cfg;
        cfg.array_elems = 1 << 15;
        cfg.iterations = 2;
        return std::make_unique<nmo::wl::Stream>(cfg);
      };
    } else {
      jobs[i].name = "bfs-" + std::to_string(i);
      jobs[i].make_workload = [] {
        nmo::wl::BfsConfig cfg;
        cfg.nodes = 1 << 13;
        cfg.edges_per_node = 8;
        return std::make_unique<nmo::wl::Bfs>(cfg);
      };
    }
  }

  nmo::store::RunOptions options;
  auto& sched = options.scheduler;
  sched.max_workers = n_workers;
  // Under the block policy a finite queue exercises real backpressure
  // (submission stalls until a worker frees a slot) while still admitting
  // every job eventually; reject/shed-oldest keep the queue unbounded so
  // the example's merge oracle is not at the mercy of timing.
  sched.queue_depth =
      *policy == nmo::store::AdmissionPolicy::kBlock ? std::size_t{2} * n_workers : 0;
  sched.policy = *policy;

  nmo::store::SessionStore store(root);
  const auto run = nmo::store::run_sessions(store, jobs, options);

  std::printf("=== multi-session run (%zu jobs on %u workers, policy %s) ===\n",
              run.results.size(), n_workers, policy_text.c_str());
  nmo::core::SampleTrace expected;
  nmo::store::RegionUnion expected_regions;
  std::vector<std::string> merge_inputs;
  struct PendingTrace {
    nmo::core::SampleTrace samples;
    std::optional<std::size_t> table;  ///< RegionUnion handle, if a sidecar exists.
  };
  std::vector<PendingTrace> pending;
  bool ok = true;
  for (const auto& r : run.results) {
    if (!r.error.empty()) {
      std::printf("session %u (%s): %s: %s\n", r.session.id, r.session.name.c_str(),
                  std::string(nmo::core::to_string(r.state)).c_str(), r.error.c_str());
      ok = false;
      continue;
    }
    std::printf("session %u (%s): %llu samples -> %s\n", r.session.id, r.session.name.c_str(),
                static_cast<unsigned long long>(r.samples), r.session.trace_path.c_str());
    std::printf("  fingerprint: %s  accuracy: %.2f%%  worker: %u  queue wait: %.3f ms\n",
                r.fingerprint.c_str(), r.report.accuracy() * 100.0, r.worker,
                static_cast<double>(r.queue_wait_ns) / 1e6);

    // Re-read the session's file: the round-trip must be lossless.
    nmo::store::TraceReader reader(r.session.trace_path);
    PendingTrace trace;
    trace.samples = reader.read_all();
    if (!reader.ok() || trace.samples.fingerprint() != r.fingerprint) {
      std::printf("  round-trip MISMATCH: %s\n", reader.error().c_str());
      ok = false;
    }
    if (auto table =
            nmo::store::read_region_file(nmo::store::region_path_for(r.session.trace_path))) {
      trace.table = expected_regions.add(std::move(*table));
    }
    pending.push_back(std::move(trace));
    merge_inputs.push_back(r.session.trace_path);
  }
  if (!ok) return 1;

  // Mirror the merger's region handling: remap every session's samples
  // into the (sorted, order-independent) union index space.  Done after
  // the loop because union indices are only final once every table is in.
  for (const auto& trace : pending) {
    if (!trace.table) {
      expected.append(trace.samples);
      continue;
    }
    const auto remap = expected_regions.mapping(*trace.table);
    nmo::core::SampleTrace remapped;
    for (auto s : trace.samples.samples()) {
      if (s.region >= 0 && static_cast<std::size_t>(s.region) < remap.size()) {
        s.region = remap[static_cast<std::size_t>(s.region)];
      }
      remapped.add(s);
    }
    expected.append(remapped);
  }

  const auto& stats = run.stats;
  std::printf("\n=== scheduler stats ===\n");
  std::printf("submitted/admitted/rejected/shed : %llu/%llu/%llu/%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.shed));
  std::printf("completed/failed                 : %llu/%llu\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed));
  std::printf("peak queue depth / occupancy     : %zu / %u of %u workers\n",
              stats.peak_queue_depth, stats.peak_occupancy, stats.workers);
  std::printf("queue wait (avg/max)             : %.3f ms / %.3f ms\n",
              stats.admitted > 0 ? static_cast<double>(stats.queue_wait_ns_total) /
                                       static_cast<double>(stats.admitted) / 1e6
                                 : 0.0,
              static_cast<double>(stats.queue_wait_ns_max) / 1e6);

  // The independent in-memory reference for the merged trace.
  expected.sort_canonical();
  std::printf("\nmerged samples (expected)    : %zu\n", expected.size());
  std::printf("merged fingerprint (expected): %s\n", expected.fingerprint().c_str());

  // And the store's own streaming merge must agree with it.
  nmo::store::TraceMerger merger;
  for (const auto& in : merge_inputs) merger.add_input(in);
  const std::string merged_path = root + "/merged.nmot";
  const auto merge_stats = merger.merge_to(merged_path);
  if (!merge_stats) {
    std::printf("merge failed: %s\n", merger.error().c_str());
    return 1;
  }
  const bool match = merge_stats->samples == expected.size() &&
                     merge_stats->fingerprint == expected.fingerprint();
  std::printf("streaming merge              : %llu samples, %s -> %s\n",
              static_cast<unsigned long long>(merge_stats->samples),
              merge_stats->fingerprint.c_str(),
              match ? "matches in-memory canonical order" : "MISMATCH");
  std::printf("merged region table          : %zu named regions -> %s\n",
              merge_stats->regions,
              nmo::store::region_path_for(merged_path).c_str());
  return match ? 0 : 1;
}
