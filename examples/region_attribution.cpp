// Region attribution: answering the paper's section III-A questions -
// "which memory objects are the most accessed inside a certain function?
// Which objects are seldom read throughout the whole execution?"
//
// Profiles the CFD solver, then breaks samples down by tagged object and
// by execution phase.
#include <algorithm>
#include <cstdio>

#include "analysis/pattern.hpp"
#include "core/session.hpp"
#include "workloads/cfd.hpp"

int main() {
  nmo::core::NmoConfig config;
  config.enable = true;
  config.mode = nmo::core::Mode::kSample;
  config.period = 512;

  nmo::sim::EngineConfig engine;
  engine.threads = 8;
  engine.machine.hierarchy.cores = 8;

  nmo::wl::CfdConfig ccfg;
  ccfg.num_cells = 16 * 1024;
  ccfg.iterations = 10;
  nmo::wl::Cfd cfd(ccfg);

  nmo::core::ProfileSession session(config, engine);
  session.profile(cfd, /*with_baseline=*/false);
  const auto& profiler = session.profiler();

  auto breakdown = nmo::analysis::region_breakdown(profiler.trace(), profiler.regions());
  std::sort(breakdown.begin(), breakdown.end(),
            [](const auto& a, const auto& b) { return a.samples > b.samples; });

  std::printf("Hottest objects in CFD (by SPE samples):\n");
  std::printf("%-24s %10s %10s %10s\n", "object", "samples", "loads", "stores");
  for (const auto& r : breakdown) {
    if (r.samples == 0) continue;
    std::printf("%-24s %10llu %10llu %10llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.samples),
                static_cast<unsigned long long>(r.loads),
                static_cast<unsigned long long>(r.stores));
  }

  // Per-phase view: the flux gather dominates the computation loop.
  const auto loop = nmo::analysis::samples_in_phase(profiler.trace(), profiler.regions(),
                                                    "computation loop");
  std::printf("\n%zu of %zu samples fall inside the 'computation loop' phase.\n", loop.size(),
              profiler.trace().size());

  // Seldom-read objects: lowest load counts.
  std::printf("\nSeldom-read objects (fewest load samples):\n");
  std::sort(breakdown.begin(), breakdown.end(),
            [](const auto& a, const auto& b) { return a.loads < b.loads; });
  int shown = 0;
  for (const auto& r : breakdown) {
    if (r.name == "(untagged)") continue;
    std::printf("  %-24s %llu load samples\n", r.name.c_str(),
                static_cast<unsigned long long>(r.loads));
    if (++shown == 3) break;
  }
  return 0;
}
