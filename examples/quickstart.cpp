// Quickstart: profile a small STREAM run end-to-end with NMO.
//
// Demonstrates the whole public surface in ~60 lines:
//   1. configure NMO through environment variables (Table I) or directly;
//   2. build a ProfileSession over the simulated ARM machine;
//   3. run an annotated workload (Listing 1's nmo_tag_addr / nmo_start);
//   4. read back accuracy, overhead, the sample trace and its fingerprint.
//
// Try:  NMO_PERIOD=1024 NMO_MODE=all NMO_ENABLE=1 ./example_quickstart
#include <cstdio>

#include "core/session.hpp"
#include "workloads/stream.hpp"

int main() {
  // 1. Configuration: environment first (Table I), with sane fallbacks so
  //    the example works without any setup.
  nmo::core::NmoConfig config = nmo::core::NmoConfig::from_env(nmo::Env{});
  if (!config.enable) {
    // The default demo uses a short period and small aux buffers so the
    // run crosses aux watermarks and the monitor's drain rounds (and the
    // async pipeline's epochs, step 6) are visible in a few milliseconds
    // of simulated time.
    std::printf("NMO_ENABLE not set - using built-in defaults "
                "(NMO_ENABLE=1 NMO_MODE=all NMO_PERIOD=256 NMO_AUXBUFSIZE=262144)\n");
    config.enable = true;
    config.mode = nmo::core::Mode::kAll;
    config.period = 256;
    config.auxbufsize_bytes = 256 * 1024;
  }
  if (config.period == 0) config.period = 1024;

  // 2. The simulated machine: 8 cores of the Ampere-class model, with
  //    monitor rounds dense enough to service the small demo buffers.
  nmo::sim::EngineConfig engine;
  engine.threads = 8;
  engine.machine.hierarchy.cores = 8;
  engine.machine.cost.monitor_round_interval_cycles = 1'000'000;

  // 3. Run an annotated workload.
  nmo::wl::StreamConfig scfg;
  scfg.array_elems = 1 << 18;
  scfg.iterations = 3;
  nmo::wl::Stream stream(scfg);

  nmo::core::ProfileSession session(config, engine);
  const auto report = session.profile(stream, /*with_baseline=*/true);

  // 4. Results.
  std::printf("\n=== NMO quickstart report ===\n");
  std::printf("memory ops executed : %llu\n",
              static_cast<unsigned long long>(report.mem_ops));
  std::printf("mem_access counted  : %llu (perf-stat baseline)\n",
              static_cast<unsigned long long>(report.mem_counted));
  std::printf("samples processed   : %llu at period %llu\n",
              static_cast<unsigned long long>(report.processed_samples),
              static_cast<unsigned long long>(report.period));
  std::printf("sampling accuracy   : %.2f%%   (Eq. 1 of the paper)\n",
              report.accuracy() * 100.0);
  std::printf("time overhead       : %.2f%%\n", report.time_overhead() * 100.0);
  std::printf("trace fingerprint   : %s\n",
              session.profiler().trace().fingerprint().c_str());
  std::printf("capacity peak       : %llu bytes\n",
              static_cast<unsigned long long>(session.profiler().capacity().peak_bytes()));
  std::printf("bandwidth peak      : %.2f GiB/s\n",
              session.profiler().bandwidth().peak_gib_per_s());
  std::printf("scheduler placement : %s (queue wait %.3f ms, worker %u) - "
              "see example_multi_session for the bounded pool\n",
              std::string(nmo::core::to_string(report.sched_state)).c_str(),
              static_cast<double>(report.sched_queue_wait_ns) / 1e6, report.sched_worker);
  std::printf("\nSanity: STREAM still computed the right answer: a[0] = %.4f (expect %.4f)\n",
              stream.a()[0], nmo::wl::Stream::expected_a(scfg.iterations, scfg.scalar));

  // 5. The parallel decode pipeline (spe/decode_pool.hpp) must reproduce
  //    the serial trace bit-for-bit: same samples, same canonical order,
  //    same MD5 fingerprint.
  engine.decode_shards = 4;
  nmo::wl::Stream stream_par(scfg);
  nmo::core::ProfileSession session_par(config, engine);
  const auto report_par = session_par.profile(stream_par, /*with_baseline=*/false);
  const std::string serial_md5 = session.profiler().trace().fingerprint();
  const std::string parallel_md5 = session_par.profiler().trace().fingerprint();
  std::printf("parallel decode (4 shards) fingerprint: %s -> %s\n", parallel_md5.c_str(),
              parallel_md5 == serial_md5 ? "matches serial" : "MISMATCH");
  std::printf("decode backpressure : %llu producer queue-full spins\n",
              static_cast<unsigned long long>(report_par.decode_stalls));

  // 6. The async drain pipeline (sim/drain_service.hpp): the monitor hands
  //    each drain round to a dedicated consumer thread as an epoch instead
  //    of ending the round in a fork/join barrier.  The drain schedule is
  //    mode-invariant, so this too must reproduce the serial trace
  //    bit-for-bit while the overlap telemetry shows what the consumer
  //    thread absorbed.
  engine.async_drain = true;
  nmo::wl::Stream stream_async(scfg);
  nmo::core::ProfileSession session_async(config, engine);
  const auto report_async = session_async.profile(stream_async, /*with_baseline=*/false);
  const std::string async_md5 = session_async.profiler().trace().fingerprint();
  std::printf("async drain (4 shards) fingerprint    : %s -> %s\n", async_md5.c_str(),
              async_md5 == serial_md5 ? "matches serial" : "MISMATCH");
  std::printf("drain/decode overlap: %llu cycles over %llu epochs (peak lag %llu)\n",
              static_cast<unsigned long long>(report_async.overlapped_cycles),
              static_cast<unsigned long long>(report_async.retired_epochs),
              static_cast<unsigned long long>(report_async.peak_epoch_lag));

  // 7. Topology-aware placement (sys/topology.hpp): pin each decode shard
  //    near its producer cores on a modeled 2-socket machine.  Placement
  //    only moves threads - the trace stays bit-for-bit identical, while
  //    the remote-drain telemetry shows the cross-socket traffic avoided.
  //    One shard per core lets near-producer placement keep every drained
  //    byte on its producer's socket.
  engine.machine.sockets = 2;
  engine.decode_shards = 8;
  engine.decode_placement = nmo::spe::PlacementPolicy::kNearProducer;
  nmo::wl::Stream stream_pinned(scfg);
  nmo::core::ProfileSession session_pinned(config, engine);
  const auto report_pinned = session_pinned.profile(stream_pinned, /*with_baseline=*/false);
  const std::string pinned_md5 = session_pinned.profiler().trace().fingerprint();
  std::printf("pinned decode (2 sockets) fingerprint : %s -> %s\n", pinned_md5.c_str(),
              pinned_md5 == serial_md5 ? "matches serial" : "MISMATCH");
  std::printf("remote drain avoided: %llu of %llu bytes stayed socket-local "
              "(%u modeled nodes)\n",
              static_cast<unsigned long long>(report_pinned.local_drain_bytes),
              static_cast<unsigned long long>(report_pinned.local_drain_bytes +
                                              report_pinned.remote_drain_bytes),
              report_pinned.placement_nodes);
  return parallel_md5 == serial_md5 && async_md5 == serial_md5 &&
                 pinned_md5 == serial_md5
             ? 0
             : 1;
}
