// Temporal profiling: the capacity/bandwidth view that drives
// right-sizing decisions (paper section III: "a user could take advantage
// of this by reducing the memory allocated to such a job after
// initialization is completed").
//
// Profiles the In-memory Analytics (ALS) workload and prints the phase
// timeline with capacity and bandwidth.
#include <cstdio>

#include "core/session.hpp"
#include "workloads/inmem_als.hpp"

int main() {
  nmo::core::NmoConfig config;
  config.enable = true;
  config.mode = nmo::core::Mode::kBandwidth | nmo::core::Mode::kCapacity;
  config.track_rss = true;

  nmo::sim::EngineConfig engine;
  engine.threads = 16;
  engine.machine.hierarchy.cores = 16;
  engine.tick_interval_ns = 2'000'000;

  nmo::wl::AlsConfig acfg;
  acfg.users = 4000;
  acfg.movies = 1500;
  acfg.iterations = 4;
  nmo::wl::InMemAnalytics als(acfg);

  nmo::core::ProfileSession session(config, engine);
  session.profile(als, /*with_baseline=*/false);
  const auto& profiler = session.profiler();

  std::printf("Phase timeline:\n");
  for (const auto& p : profiler.regions().phases()) {
    std::printf("  %-18s %8.2f ms .. %8.2f ms\n", p.name.c_str(),
                static_cast<double>(p.t_start_ns) * 1e-6,
                static_cast<double>(p.t_stop_ns) * 1e-6);
  }

  std::printf("\nCapacity over time (sampled):\n");
  const auto& cap = profiler.capacity().series();
  const std::size_t cstride = std::max<std::size_t>(1, cap.size() / 12);
  for (std::size_t i = 0; i < cap.size(); i += cstride) {
    std::printf("  t=%8.2f ms  live=%8.2f MiB\n", static_cast<double>(cap[i].time_ns) * 1e-6,
                static_cast<double>(cap[i].live_bytes) / (1 << 20));
  }
  std::printf("  peak: %.2f MiB\n",
              static_cast<double>(profiler.capacity().peak_bytes()) / (1 << 20));

  std::printf("\nBandwidth over time (sampled):\n");
  const auto& bw = profiler.bandwidth().series();
  const std::size_t bstride = std::max<std::size_t>(1, bw.size() / 12);
  for (std::size_t i = 0; i < bw.size(); i += bstride) {
    std::printf("  t=%8.2f ms  %8.2f GiB/s\n", static_cast<double>(bw[i].time_ns) * 1e-6,
                bw[i].gib_per_s);
  }
  std::printf("  arithmetic intensity: %.3f FLOP/byte\n",
              profiler.bandwidth().arithmetic_intensity());

  std::printf("\nALS converged: RMSE %.4f -> %.4f over %zu iterations\n",
              als.rmse_history().front(), als.rmse_history().back(),
              als.rmse_history().size());
  return 0;
}
