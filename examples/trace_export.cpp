// Trace export: the bridge to NMO's post-processing workflow.
//
// The paper's section III describes an "extensible scripting component":
// Python scripts consume the captured performance data.  This example
// profiles BFS, writes the sample trace as CSV (the scripts' input format)
// and prints the MD5 fingerprint the scripts use to verify trace identity.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/session.hpp"
#include "workloads/bfs.hpp"

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "nmo_trace.csv";

  nmo::core::NmoConfig config;
  config.enable = true;
  config.mode = nmo::core::Mode::kSample;
  config.period = 1024;
  config.name = "bfs-trace";

  nmo::sim::EngineConfig engine;
  engine.threads = 8;
  engine.machine.hierarchy.cores = 8;

  nmo::wl::BfsConfig bcfg;
  bcfg.nodes = 1 << 16;
  bcfg.edges_per_node = 8;
  nmo::wl::Bfs bfs(bcfg);

  nmo::core::ProfileSession session(config, engine);
  const auto report = session.profile(bfs, /*with_baseline=*/false);
  const auto& trace = session.profiler().trace();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  trace.write_csv(out);
  out.close();

  std::printf("wrote %zu samples to %s\n", trace.size(), out_path);
  std::printf("trace fingerprint (MD5): %s\n", trace.fingerprint().c_str());
  std::printf("accuracy at period %llu: %.2f%%\n",
              static_cast<unsigned long long>(report.period), report.accuracy() * 100.0);

  // Show the first lines, i.e. what a post-processing script reads.
  std::ostringstream preview;
  trace.write_csv(preview);
  std::istringstream lines(preview.str());
  std::string line;
  std::printf("\nCSV preview:\n");
  for (int i = 0; i < 6 && std::getline(lines, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
