// Period tuning: a user-facing version of the paper's sensitivity result -
// sweep NMO_PERIOD on your workload and pick the accuracy/overhead balance
// (the paper recommends avoiding periods below 2000 and suggests
// 10,000-50,000 when overhead matters most).
//
// Runs the statistical driver over the BFS profile at a range of periods
// and prints the trade-off table.
#include <cstdio>

#include "analysis/accuracy.hpp"
#include "sim/profile.hpp"
#include "sim/stat_driver.hpp"

int main() {
  std::printf("Period tuning on the BFS workload profile (8 threads):\n\n");
  std::printf("%10s %12s %12s %14s\n", "period", "accuracy", "overhead", "samples");

  const auto profile = nmo::sim::profiles::bfs();
  for (std::uint64_t period : {1000ull, 2000ull, 4000ull, 8000ull, 16000ull, 32000ull,
                               64000ull, 128000ull}) {
    nmo::sim::SweepConfig cfg;
    cfg.threads = 8;
    cfg.period = period;
    cfg.seed = 77;
    cfg.monitor_round_interval_cycles = 45'000'000;
    const auto r = nmo::sim::run_with_baseline(profile, nmo::sim::MachineConfig{}, cfg);
    std::printf("%10llu %11.2f%% %11.2f%% %14llu\n",
                static_cast<unsigned long long>(period), nmo::analysis::accuracy(r) * 100.0,
                nmo::analysis::time_overhead(r) * 100.0,
                static_cast<unsigned long long>(r.processed_samples));
  }

  std::printf("\nGuidance (paper section VII-A): avoid periods below 2000; prefer\n"
              "3000-4000 for peak accuracy, or 10000-50000 when overhead matters.\n");
  return 0;
}
