// Streaming capture: N profiled jobs teeing their trace blocks to a
// running nmo-traced collector while writing their local store as usual.
//
// The fleet-capture step (ROADMAP): start `nmo-traced` somewhere, point
// every session's SessionJob::stream at it, and the collector rebuilds a
// byte-identical mirror of each session's trace on its side - local
// capture stays the source of truth, so an unreachable or dying collector
// costs nothing but the mirror.
//
// The example runs the multi_session job mix (alternating STREAM and BFS)
// with streaming enabled, prints the per-session stream outcome, and then
// prints the *expected* merged sample count and fingerprint of the local
// store, computed independently in memory.  CI's streaming smoke step
// compares these expectations against `nmo-trace merge` + `nmo-trace
// info` over the COLLECTED store - if every mirrored trace is
// byte-identical, the two merges cannot disagree.
//
//   ./example_streaming_capture HOST:PORT [store_root] [sessions] [max_workers]
//   defaults: HOST:PORT required, ./nmo_stream_sessions 4 2
//
// Exit codes: 0 ok; 1 = a session failed, fell back to local-only
// capture, or closed its stream unclean; 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/block_sender.hpp"
#include "store/region_file.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"
#include "workloads/bfs.hpp"
#include "workloads/stream.hpp"

namespace {

// Digits-only count parse: "-1" must hit the usage message, not wrap
// through strtoull to 2^64-1 and blow up a vector allocation.
std::optional<std::uint64_t> parse_count(const char* text) {
  if (!text || *text < '0' || *text > '9') return std::nullopt;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 10);
  if (*end != '\0') return std::nullopt;
  return value;
}

/// Splits "host:port"; returns nullopt on a missing/invalid port.
std::optional<nmo::net::StreamConfig> parse_endpoint(const char* text) {
  const std::string s = text ? text : "";
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  const auto port = parse_count(s.c_str() + colon + 1);
  if (!port || *port == 0 || *port > 0xffff) return std::nullopt;
  nmo::net::StreamConfig config;
  config.host = s.substr(0, colon);
  config.port = static_cast<std::uint16_t>(*port);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto stream = argc > 1 ? parse_endpoint(argv[1]) : std::nullopt;
  const std::string root = argc > 2 ? argv[2] : "nmo_stream_sessions";
  const auto sessions = argc > 3 ? parse_count(argv[3]) : std::uint64_t{4};
  const auto workers = argc > 4 ? parse_count(argv[4]) : std::uint64_t{2};
  if (!stream || !sessions || *sessions == 0 || !workers || *workers == 0 ||
      *workers > 0xffffffffULL || argc > 5) {
    std::fprintf(stderr,
                 "usage: %s HOST:PORT [store_root] [sessions > 0] [max_workers > 0]\n",
                 argv[0]);
    return 2;
  }
  const std::size_t n_sessions = static_cast<std::size_t>(*sessions);

  nmo::core::NmoConfig nmo_cfg;
  nmo_cfg.enable = true;
  nmo_cfg.mode = nmo::core::Mode::kAll;
  nmo_cfg.period = 1024;

  nmo::sim::EngineConfig engine;
  engine.threads = 4;
  engine.machine.hierarchy.cores = 4;

  // The multi_session job mix, every job teeing to the collector.
  std::vector<nmo::store::SessionJob> jobs(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    jobs[i].nmo = nmo_cfg;
    jobs[i].engine = engine;
    jobs[i].engine.seed = i + 1;
    jobs[i].stream = *stream;
    if (i % 2 == 0) {
      jobs[i].name = "stream-" + std::to_string(i);
      jobs[i].make_workload = [] {
        nmo::wl::StreamConfig cfg;
        cfg.array_elems = 1 << 15;
        cfg.iterations = 2;
        return std::make_unique<nmo::wl::Stream>(cfg);
      };
    } else {
      jobs[i].name = "bfs-" + std::to_string(i);
      jobs[i].make_workload = [] {
        nmo::wl::BfsConfig cfg;
        cfg.nodes = 1 << 13;
        cfg.edges_per_node = 8;
        return std::make_unique<nmo::wl::Bfs>(cfg);
      };
    }
  }

  nmo::store::RunOptions options;
  options.scheduler.max_workers = static_cast<std::uint32_t>(*workers);

  nmo::store::SessionStore store(root);
  const auto run = nmo::store::run_sessions(store, jobs, options);

  std::printf("=== streaming capture (%zu jobs -> %s:%u, %u workers) ===\n",
              run.results.size(), stream->host.c_str(), stream->port,
              options.scheduler.max_workers);
  nmo::core::SampleTrace expected;
  nmo::store::RegionUnion expected_regions;
  std::vector<std::string> merge_inputs;
  struct PendingTrace {
    nmo::core::SampleTrace samples;
    std::optional<std::size_t> table;
  };
  std::vector<PendingTrace> pending;
  bool ok = true;
  for (const auto& r : run.results) {
    if (!r.error.empty()) {
      std::printf("session %u (%s): FAILED: %s\n", r.session.id, r.session.name.c_str(),
                  r.error.c_str());
      ok = false;
      continue;
    }
    std::printf("session %u (%s): %llu samples, stream %s (%llu blocks, %llu dropped)\n",
                r.session.id, r.session.name.c_str(),
                static_cast<unsigned long long>(r.samples),
                r.stream.streamed ? r.stream.stream_state.c_str() : "OFF",
                static_cast<unsigned long long>(r.stream.stream_blocks_sent),
                static_cast<unsigned long long>(r.stream.stream_blocks_dropped));
    // The smoke contract: every session must have streamed cleanly.  A
    // fallback means the local capture is fine but the mirror is not -
    // exactly what this example exists to prove works.
    if (!r.stream.streamed || r.stream.stream_fallback || r.stream.stream_state != "clean") {
      std::printf("  stream NOT CLEAN: state=%s error=%s\n", r.stream.stream_state.c_str(),
                  r.stream.stream_error.c_str());
      ok = false;
    }

    nmo::store::TraceReader reader(r.session.trace_path);
    PendingTrace trace;
    trace.samples = reader.read_all();
    if (!reader.ok() || trace.samples.fingerprint() != r.fingerprint) {
      std::printf("  round-trip MISMATCH: %s\n", reader.error().c_str());
      ok = false;
    }
    if (auto table =
            nmo::store::read_region_file(nmo::store::region_path_for(r.session.trace_path))) {
      trace.table = expected_regions.add(std::move(*table));
    }
    pending.push_back(std::move(trace));
    merge_inputs.push_back(r.session.trace_path);
  }
  if (!ok) return 1;

  // The independent merge oracle (same remap the on-disk merger applies).
  for (const auto& trace : pending) {
    if (!trace.table) {
      expected.append(trace.samples);
      continue;
    }
    const auto remap = expected_regions.mapping(*trace.table);
    nmo::core::SampleTrace remapped;
    for (auto s : trace.samples.samples()) {
      if (s.region >= 0 && static_cast<std::size_t>(s.region) < remap.size()) {
        s.region = remap[static_cast<std::size_t>(s.region)];
      }
      remapped.add(s);
    }
    expected.append(remapped);
  }
  expected.sort_canonical();
  std::printf("\nmerged samples (expected)    : %zu\n", expected.size());
  std::printf("merged fingerprint (expected): %s\n", expected.fingerprint().c_str());

  // The local store's own merge must agree; CI then holds the COLLECTED
  // store's merge to the same two expectation lines.
  nmo::store::TraceMerger merger;
  for (const auto& in : merge_inputs) merger.add_input(in);
  const std::string merged_path = root + "/merged.nmot";
  const auto merge_stats = merger.merge_to(merged_path);
  if (!merge_stats) {
    std::printf("merge failed: %s\n", merger.error().c_str());
    return 1;
  }
  const bool match = merge_stats->samples == expected.size() &&
                     merge_stats->fingerprint == expected.fingerprint();
  std::printf("local store merge            : %llu samples, %s -> %s\n",
              static_cast<unsigned long long>(merge_stats->samples),
              merge_stats->fingerprint.c_str(),
              match ? "matches in-memory canonical order" : "MISMATCH");
  return match ? 0 : 1;
}
