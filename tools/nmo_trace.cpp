// nmo-trace: merge/query CLI over binary sample trace files.
//
// The user-facing entry point of the trace store (src/store/): where the
// paper's post-processing scripts consume one CSV per run, a multi-session
// deployment leaves behind one .nmot file per session and this tool folds
// and inspects them:
//
//   nmo-trace info FILE...                 header/footer + per-level stats
//   nmo-trace merge -o OUT FILE...         streaming k-way canonical merge
//                                          (unions region sidecars, remaps indices)
//   nmo-trace export-csv FILE [-o OUT]     CSV byte-identical to write_csv
//   nmo-trace compress FILE -o OUT         rewrite into format v2 (self-contained
//                                          blocks + codec + index); --raw disables
//                                          the codec, --v1 pins the legacy format
//   nmo-trace verify FILE...               full decode + footer MD5 + (v2) block
//                                          index cross-check + probe agreement
//   nmo-trace top FILE [--by region|level|core|latency] [-n N]
//                                          (region rows labeled by name when the
//                                          trace's .nmor sidecar is present)
//   nmo-trace sessions ROOT                per-session lifecycle + scheduler stats
//                                          from the store's metadata files
//
// Exit codes: 0 success, 1 operation failed, 2 usage error.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include "core/trace.hpp"
#include "store/region_file.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"

namespace {

using nmo::core::TraceSample;
using nmo::store::TraceReader;
using nmo::store::TraceMerger;

int usage() {
  std::fprintf(stderr,
               "usage: nmo-trace <command> [args]\n"
               "\n"
               "  info FILE...                  validate and summarize trace files\n"
               "  merge -o OUT FILE...          k-way merge into canonical order\n"
               "  export-csv FILE [-o OUT]      write the trace as CSV (stdout default)\n"
               "  compress FILE -o OUT [--raw|--v1]\n"
               "                                rewrite into format v2 (--raw: no codec;\n"
               "                                --v1: legacy format); copies the region sidecar\n"
               "  verify FILE...                full decode + MD5 + block-index check\n"
               "  top FILE [--by KEY] [-n N]    hottest groups; KEY: region|level|core|latency\n"
               "  sessions ROOT                 session lifecycle + scheduler stats of a store\n");
  return 2;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  bool all_ok = true;
  for (const auto& path : args) {
    TraceReader reader(path);
    std::uint64_t samples = 0;
    std::uint64_t per_level[nmo::kNumMemLevels] = {};
    std::uint64_t latency_sum = 0;
    std::uint64_t t_min = ~std::uint64_t{0}, t_max = 0;
    std::map<nmo::CoreId, std::uint64_t> per_core;
    TraceSample s;
    while (reader.next(s)) {
      ++samples;
      ++per_level[static_cast<std::size_t>(s.level)];
      ++per_core[s.core];
      latency_sum += s.latency;
      t_min = std::min(t_min, s.time_ns);
      t_max = std::max(t_max, s.time_ns);
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), reader.error().c_str());
      all_ok = false;
      continue;
    }
    const auto& info = reader.info();
    std::printf("%s\n", path.c_str());
    std::printf("  version    : %u\n", info.version);
    std::printf("  samples    : %" PRIu64 "\n", info.samples);
    std::printf("  fingerprint: %s\n", info.fingerprint.c_str());
    std::printf("  cores      : %zu\n", per_core.size());
    if (samples > 0) {
      std::printf("  time range : %" PRIu64 " .. %" PRIu64 " ns\n", t_min, t_max);
      std::printf("  avg latency: %.1f cycles\n",
                  static_cast<double>(latency_sum) / static_cast<double>(samples));
      std::printf("  levels     :");
      for (std::size_t l = 0; l < nmo::kNumMemLevels; ++l) {
        std::printf(" %s=%" PRIu64, std::string(to_string(static_cast<nmo::MemLevel>(l))).c_str(),
                    per_level[l]);
      }
      std::printf("\n");
    }
  }
  return all_ok ? 0 : 1;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (out_path.empty() || inputs.empty()) return usage();

  TraceMerger merger;
  for (const auto& in : inputs) merger.add_input(in);
  const auto stats = merger.merge_to(out_path);
  if (!stats) {
    std::fprintf(stderr, "merge failed: %s\n", merger.error().c_str());
    return 1;
  }
  std::printf("merged %zu file%s -> %s\n", stats->inputs, stats->inputs == 1 ? "" : "s",
              out_path.c_str());
  std::printf("samples    : %" PRIu64 "\n", stats->samples);
  std::printf("fingerprint: %s\n", stats->fingerprint.c_str());
  if (stats->regions > 0) {
    std::printf("regions    : %zu (union table -> %s)\n", stats->regions,
                nmo::store::region_path_for(out_path).c_str());
  }
  return 0;
}

int cmd_export_csv(const std::vector<std::string>& args) {
  std::string in_path, out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else if (in_path.empty()) {
      in_path = args[i];
    } else {
      return usage();
    }
  }
  if (in_path.empty()) return usage();

  // Opening the output truncates it; refuse when it aliases the input
  // (same guard class as TraceMerger's output-is-input check).
  if (!out_path.empty()) {
    std::error_code ec;
    if (out_path == in_path || (std::filesystem::equivalent(in_path, out_path, ec) && !ec)) {
      std::fprintf(stderr, "%s: output path is also the input trace\n", out_path.c_str());
      return 2;
    }
  }

  // Validate the input before creating the output, so a bad input path
  // never leaves a header-only CSV behind.
  TraceReader reader(in_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
    return 1;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  // On any failure a partial CSV must not be left behind looking like a
  // complete export (the analogue of TraceMerger's cleanup).
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s\n", message.c_str());
    if (!out_path.empty()) {
      file.close();
      std::remove(out_path.c_str());
    }
    return 1;
  };

  out << nmo::core::kTraceCsvHeader;
  TraceSample s;
  while (reader.next(s)) nmo::core::write_csv_row(out, s);
  if (!reader.ok()) return fail(in_path + ": " + reader.error());
  out.flush();
  if (!out) return fail(out_path.empty() ? "write to stdout failed"
                                         : out_path + ": write failed");
  return 0;
}

int cmd_compress(const std::vector<std::string>& args) {
  std::string in_path, out_path;
  nmo::store::TraceWriter::Options options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else if (args[i] == "--raw") {
      options.compress = false;
    } else if (args[i] == "--v1") {
      options.version = nmo::store::kTraceVersion1;
    } else if (in_path.empty()) {
      in_path = args[i];
    } else {
      return usage();
    }
  }
  if (in_path.empty() || out_path.empty()) return usage();

  // Writing the output truncates it; aliasing the input would destroy the
  // trace being rewritten (same guard class as the merger's).
  std::error_code ec;
  if (out_path == in_path ||
      (std::filesystem::equivalent(in_path, out_path, ec) && !ec)) {
    std::fprintf(stderr, "%s: output path is also the input trace\n", out_path.c_str());
    return 2;
  }

  TraceReader reader(in_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
    return 1;
  }
  nmo::store::TraceWriter writer(out_path, options);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.error().c_str());
    return 1;
  }
  TraceSample s;
  while (reader.next(s)) writer.add(s);
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s\n", message.c_str());
    writer.abandon();
    std::remove(out_path.c_str());
    return 1;
  };
  if (!reader.ok()) return fail(in_path + ": " + reader.error());
  if (!writer.close()) return fail(out_path + ": " + writer.error());
  // The rewrite is lossless by construction; the fingerprint (a digest over
  // decoded samples, not file bytes) proves it end to end.
  if (writer.fingerprint() != reader.info().fingerprint) {
    std::remove(out_path.c_str());
    return fail("rewrite fingerprint mismatch: " + writer.fingerprint() + " vs " +
                reader.info().fingerprint);
  }

  // The region sidecar labels the same sample indices either way; a rewrite
  // that silently dropped it would strip names from `top --by region`.
  const std::string in_sidecar = nmo::store::region_path_for(in_path);
  if (std::filesystem::exists(in_sidecar, ec) && !ec) {
    std::error_code copy_ec;
    std::filesystem::copy_file(in_sidecar, nmo::store::region_path_for(out_path),
                               std::filesystem::copy_options::overwrite_existing, copy_ec);
    if (copy_ec) {
      std::remove(out_path.c_str());
      return fail(in_sidecar + ": cannot copy region sidecar: " + copy_ec.message());
    }
  }

  const auto in_size = std::filesystem::file_size(in_path, ec);
  const auto out_size = std::filesystem::file_size(out_path, ec);
  const auto samples = writer.samples_written();
  std::printf("%s (v%u, %ju B) -> %s (v%u, %ju B)\n", in_path.c_str(), reader.info().version,
              static_cast<uintmax_t>(in_size), out_path.c_str(), options.version,
              static_cast<uintmax_t>(out_size));
  std::printf("samples    : %" PRIu64 "\n", samples);
  std::printf("fingerprint: %s (unchanged)\n", writer.fingerprint().c_str());
  if (samples > 0) {
    std::printf("bytes/sample: %.2f -> %.2f (%.0f%% of input)\n",
                static_cast<double>(in_size) / static_cast<double>(samples),
                static_cast<double>(out_size) / static_cast<double>(samples),
                100.0 * static_cast<double>(out_size) / static_cast<double>(in_size));
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  bool all_ok = true;
  for (const auto& path : args) {
    const auto fail = [&](const std::string& message) {
      std::fprintf(stderr, "%s: FAIL: %s\n", path.c_str(), message.c_str());
      all_ok = false;
    };
    // Full decode: validates every block, every sample field, the footer
    // count + MD5 and (v2) that the block index describes exactly the
    // blocks on disk.
    TraceReader reader(path);
    TraceSample s;
    std::uint64_t samples = 0;
    while (reader.next(s)) ++samples;
    if (!reader.ok()) {
      fail(reader.error());
      continue;
    }
    // The O(1)-ish structural probe must agree with the full decode - the
    // two share the corrupt-file test suite, so a divergence here is a bug.
    const auto probed = TraceReader::probe(path);
    if (!probed) {
      fail("full decode passed but probe rejected the file");
      continue;
    }
    if (probed->fingerprint != reader.info().fingerprint || probed->samples != samples) {
      fail("probe and full decode disagree on count/fingerprint");
      continue;
    }
    std::printf("%s: ok\n", path.c_str());
    std::printf("  version    : %u\n", reader.info().version);
    if (reader.info().version >= nmo::store::kTraceVersion2) {
      std::printf("  blocks     : %zu (index verified)\n", reader.block_index().size());
    }
    std::printf("  samples    : %" PRIu64 "\n", samples);
    std::printf("  fingerprint: %s\n", reader.info().fingerprint.c_str());
  }
  return all_ok ? 0 : 1;
}

int cmd_top(const std::vector<std::string>& args) {
  std::string in_path, by = "region";
  std::size_t top_n = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--by") {
      if (i + 1 >= args.size()) return usage();
      by = args[++i];
    } else if (args[i] == "-n") {
      if (i + 1 >= args.size()) return usage();
      const std::string& value = args[++i];
      char* end = nullptr;
      top_n = static_cast<std::size_t>(std::strtoull(value.c_str(), &end, 10));
      // Strict digits-only parse: "-1" would wrap to 2^64-1 and defeat the
      // bounded heap.
      if (value.empty() || end != value.c_str() + value.size() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return usage();
      }
    } else if (in_path.empty()) {
      in_path = args[i];
    } else {
      return usage();
    }
  }
  if (in_path.empty() || top_n == 0) return usage();
  if (by != "region" && by != "level" && by != "core" && by != "latency") return usage();

  // The region sidecar (written by the session runner and by merge) turns
  // bare region indices into names; without it rows keep the index.
  std::vector<nmo::core::AddrRegion> region_names;
  if (by == "region") {
    if (const auto table = nmo::store::read_region_file(nmo::store::region_path_for(in_path))) {
      region_names = *table;
    }
  }

  TraceReader reader(in_path);
  TraceSample s;

  if (by == "latency") {
    // The N highest-latency samples (a bounded min-heap over the stream).
    const auto latency_gt = [](const TraceSample& a, const TraceSample& b) {
      return a.latency > b.latency;
    };
    std::vector<TraceSample> worst;
    while (reader.next(s)) {
      worst.push_back(s);
      std::push_heap(worst.begin(), worst.end(), latency_gt);
      if (worst.size() > top_n) {
        std::pop_heap(worst.begin(), worst.end(), latency_gt);
        worst.pop_back();
      }
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
      return 1;
    }
    std::sort(worst.begin(), worst.end(), latency_gt);
    std::printf("%-12s %-18s %-6s %-6s %-6s %s\n", "latency", "vaddr", "level", "core", "region",
                "time_ns");
    for (const auto& w : worst) {
      std::printf("%-12u 0x%-16" PRIx64 " %-6s %-6u %-6d %" PRIu64 "\n", w.latency, w.vaddr,
                  std::string(to_string(w.level)).c_str(), w.core, w.region, w.time_ns);
    }
    return 0;
  }

  struct Group {
    std::uint64_t count = 0;
    std::uint64_t latency_sum = 0;
    std::uint16_t latency_max = 0;
  };
  std::map<std::int64_t, Group> groups;
  std::uint64_t total = 0;
  while (reader.next(s)) {
    std::int64_t key = 0;
    if (by == "region") {
      key = s.region;
    } else if (by == "level") {
      key = static_cast<std::int64_t>(s.level);
    } else {
      key = static_cast<std::int64_t>(s.core);
    }
    auto& g = groups[key];
    ++g.count;
    g.latency_sum += s.latency;
    g.latency_max = std::max(g.latency_max, s.latency);
    ++total;
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
    return 1;
  }

  std::vector<std::pair<std::int64_t, Group>> rows(groups.begin(), groups.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second.count > b.second.count; });
  if (rows.size() > top_n) rows.resize(top_n);

  std::printf("%-14s %-12s %-8s %-12s %s\n", by.c_str(), "samples", "share", "avg_lat",
              "max_lat");
  for (const auto& [key, g] : rows) {
    char label[64];
    if (by == "level") {
      std::snprintf(label, sizeof(label), "%s",
                    std::string(to_string(static_cast<nmo::MemLevel>(key))).c_str());
    } else if (by == "region" && key < 0) {
      std::snprintf(label, sizeof(label), "untagged");
    } else if (by == "region" && key >= 0 &&
               static_cast<std::size_t>(key) < region_names.size()) {
      std::snprintf(label, sizeof(label), "%s",
                    region_names[static_cast<std::size_t>(key)].name.c_str());
    } else {
      std::snprintf(label, sizeof(label), "%" PRId64, key);
    }
    std::printf("%-14s %-12" PRIu64 " %-8.2f %-12.1f %u\n", label, g.count,
                total > 0 ? 100.0 * static_cast<double>(g.count) / static_cast<double>(total)
                          : 0.0,
                g.count > 0 ? static_cast<double>(g.latency_sum) / static_cast<double>(g.count)
                            : 0.0,
                g.latency_max);
  }
  return 0;
}

int cmd_sessions(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const std::string& root = args[0];
  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec)) {
    std::fprintf(stderr, "%s: not a session store directory\n", root.c_str());
    return 1;
  }

  std::printf("store: %s\n", root.c_str());

  // The pool's aggregate ledger, written by run_sessions.
  const auto sched = nmo::store::read_metadata_file(
      root + "/" + std::string(nmo::store::kSchedulerMetaFile));
  if (sched) {
    const auto field = [&](const char* key) -> std::string {
      const auto it = sched->find(key);
      return it != sched->end() ? it->second : "?";
    };
    std::printf("scheduler: workers=%s queue_depth=%s policy=%s\n",
                field("workers").c_str(), field("queue_depth").c_str(),
                field("policy").c_str());
    std::printf("  submitted=%s admitted=%s rejected=%s shed=%s completed=%s failed=%s\n",
                field("submitted").c_str(), field("admitted").c_str(),
                field("rejected").c_str(), field("shed").c_str(), field("completed").c_str(),
                field("failed").c_str());
    std::printf("  peak_queue_depth=%s peak_occupancy=%s queue_wait_ns_total=%s "
                "queue_wait_ns_max=%s\n",
                field("peak_queue_depth").c_str(), field("peak_occupancy").c_str(),
                field("queue_wait_ns_total").c_str(), field("queue_wait_ns_max").c_str());
  } else {
    std::printf("scheduler: no %s (store predates the scheduler or used the "
                "thread-per-session runner)\n",
                std::string(nmo::store::kSchedulerMetaFile).c_str());
  }

  std::vector<std::filesystem::path> dirs;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("session-", 0) == 0) {
      dirs.push_back(entry.path());
    }
  }
  std::sort(dirs.begin(), dirs.end());

  std::printf("\n%-6s %-16s %-9s %-7s %-12s %-10s %s\n", "id", "name", "state", "worker",
              "wait_ms", "samples", "fingerprint");
  bool all_ok = true;
  for (const auto& dir : dirs) {
    const auto meta = nmo::store::read_metadata_file(
        (dir / std::string(nmo::store::kSessionMetaFile)).string());
    if (!meta) {
      // A store written before session.meta existed is still a valid
      // store (same stance as the missing-scheduler.meta note above);
      // only sessions that *recorded* an error flip the exit code.
      std::printf("%-6s %-16s %s\n", "?", dir.filename().string().c_str(),
                  "(no session.meta - pre-scheduler store or job never ran)");
      continue;
    }
    const auto field = [&](const char* key) -> std::string {
      const auto it = meta->find(key);
      return it != meta->end() ? it->second : "?";
    };
    double wait_ms = 0.0;
    try {
      wait_ms = std::stod(field("queue_wait_ns")) / 1e6;
    } catch (...) {
    }
    std::printf("%-6s %-16s %-9s %-7s %-12.3f %-10s %s\n", field("id").c_str(),
                field("name").c_str(), field("state").c_str(), field("worker").c_str(),
                wait_ms, field("samples").c_str(), field("fingerprint").c_str());
    const std::string error = field("error");
    if (!error.empty() && error != "?") {
      std::printf("       error: %s\n", error.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "info") return cmd_info(args);
  if (command == "merge") return cmd_merge(args);
  if (command == "export-csv") return cmd_export_csv(args);
  if (command == "compress") return cmd_compress(args);
  if (command == "verify") return cmd_verify(args);
  if (command == "top") return cmd_top(args);
  if (command == "sessions") return cmd_sessions(args);
  return usage();
}
