// nmo-trace: merge/query CLI over binary sample trace files.
//
// The user-facing entry point of the trace store (src/store/): where the
// paper's post-processing scripts consume one CSV per run, a multi-session
// deployment leaves behind one .nmot file per session and this tool folds,
// inspects, queries and diffs them:
//
//   nmo-trace info FILE...                 header/footer + per-level stats
//   nmo-trace merge -o OUT FILE...         streaming k-way canonical merge
//                                          (unions region sidecars, remaps indices)
//   nmo-trace export-csv FILE [-o OUT]     CSV byte-identical to write_csv
//   nmo-trace compress FILE -o OUT         rewrite into format v2 (self-contained
//                                          blocks + codec + index); --raw disables
//                                          the codec, --v1 pins the legacy format
//   nmo-trace verify FILE...               full decode + footer MD5 + (v2) block
//                                          index/metadata cross-check + probe agreement
//   nmo-trace top FILE [--by region|level|core|latency] [-n N]
//                                          (region rows labeled by name when the
//                                          trace's .nmor sidecar is present)
//   nmo-trace sessions ROOT                per-session lifecycle + scheduler stats
//                                          from the store's metadata files
//   nmo-trace query FILE [predicates]      predicate-pushdown sample query
//                                          (store/trace_query.hpp); --csv/--json output
//   nmo-trace diff A B                     statistical drift verdict between two
//                                          traces or session roots (exit 3 = drift)
//
// Every subcommand sits on the shared declarative parser (tools/cli.hpp):
// typed flags, arity checks and per-subcommand --help come from the
// command table, not hand-rolled argv walks.
//
// Exit codes: 0 success, 1 operation failed, 2 usage error, 3 drift
// detected (diff only).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include "analysis/trace_diff.hpp"
#include "cli.hpp"
#include "common/json.hpp"
#include "core/trace.hpp"
#include "store/region_file.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "store/trace_merger.hpp"
#include "store/trace_query.hpp"

namespace {

using nmo::cli::Args;
using nmo::cli::Command;
using nmo::cli::Flag;
using nmo::core::TraceSample;
using nmo::store::TraceMerger;
using nmo::store::TraceReader;

constexpr const char* kTool = "nmo-trace";

int cmd_info(const Command&, const Args& args) {
  bool all_ok = true;
  for (const auto& path : args.positionals()) {
    TraceReader reader(path);
    std::uint64_t samples = 0;
    std::uint64_t per_level[nmo::kNumMemLevels] = {};
    std::uint64_t latency_sum = 0;
    std::uint64_t t_min = ~std::uint64_t{0}, t_max = 0;
    std::map<nmo::CoreId, std::uint64_t> per_core;
    TraceSample s;
    while (reader.next(s)) {
      ++samples;
      ++per_level[static_cast<std::size_t>(s.level)];
      ++per_core[s.core];
      latency_sum += s.latency;
      t_min = std::min(t_min, s.time_ns);
      t_max = std::max(t_max, s.time_ns);
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), reader.error().c_str());
      all_ok = false;
      continue;
    }
    const auto& info = reader.info();
    std::printf("%s\n", path.c_str());
    std::printf("  version    : %u\n", info.version);
    std::printf("  samples    : %" PRIu64 "\n", info.samples);
    std::printf("  fingerprint: %s\n", info.fingerprint.c_str());
    std::printf("  cores      : %zu\n", per_core.size());
    if (samples > 0) {
      std::printf("  time range : %" PRIu64 " .. %" PRIu64 " ns\n", t_min, t_max);
      std::printf("  avg latency: %.1f cycles\n",
                  static_cast<double>(latency_sum) / static_cast<double>(samples));
      std::printf("  levels     :");
      for (std::size_t l = 0; l < nmo::kNumMemLevels; ++l) {
        std::printf(" %s=%" PRIu64, std::string(to_string(static_cast<nmo::MemLevel>(l))).c_str(),
                    per_level[l]);
      }
      std::printf("\n");
    }
  }
  return all_ok ? 0 : 1;
}

int cmd_merge(const Command& command, const Args& args) {
  const std::string out_path = args.str("output");
  if (out_path.empty()) return command.usage_error(kTool, "-o OUT is required");

  TraceMerger merger;
  for (const auto& in : args.positionals()) merger.add_input(in);
  const auto stats = merger.merge_to(out_path);
  if (!stats) {
    std::fprintf(stderr, "merge failed: %s\n", merger.error().c_str());
    return 1;
  }
  std::printf("merged %zu file%s -> %s\n", stats->inputs, stats->inputs == 1 ? "" : "s",
              out_path.c_str());
  std::printf("samples    : %" PRIu64 "\n", stats->samples);
  std::printf("fingerprint: %s\n", stats->fingerprint.c_str());
  if (stats->regions > 0) {
    std::printf("regions    : %zu (union table -> %s)\n", stats->regions,
                nmo::store::region_path_for(out_path).c_str());
  }
  return 0;
}

int cmd_export_csv(const Command&, const Args& args) {
  const std::string& in_path = args.positionals()[0];
  const std::string out_path = args.str("output");

  // Opening the output truncates it; refuse when it aliases the input
  // (same guard class as TraceMerger's output-is-input check).
  if (!out_path.empty()) {
    std::error_code ec;
    if (out_path == in_path || (std::filesystem::equivalent(in_path, out_path, ec) && !ec)) {
      std::fprintf(stderr, "%s: output path is also the input trace\n", out_path.c_str());
      return 2;
    }
  }

  // Validate the input before creating the output, so a bad input path
  // never leaves a header-only CSV behind.
  TraceReader reader(in_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
    return 1;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  // On any failure a partial CSV must not be left behind looking like a
  // complete export (the analogue of TraceMerger's cleanup).
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s\n", message.c_str());
    if (!out_path.empty()) {
      file.close();
      std::remove(out_path.c_str());
    }
    return 1;
  };

  out << nmo::core::kTraceCsvHeader;
  TraceSample s;
  while (reader.next(s)) nmo::core::write_csv_row(out, s);
  if (!reader.ok()) return fail(in_path + ": " + reader.error());
  out.flush();
  if (!out) return fail(out_path.empty() ? "write to stdout failed"
                                         : out_path + ": write failed");
  return 0;
}

int cmd_compress(const Command& command, const Args& args) {
  const std::string& in_path = args.positionals()[0];
  const std::string out_path = args.str("output");
  if (out_path.empty()) return command.usage_error(kTool, "-o OUT is required");
  nmo::store::TraceWriter::Options options;
  if (args.has("raw")) options.compress = false;
  if (args.has("v1")) options.version = nmo::store::kTraceVersion1;

  // Writing the output truncates it; aliasing the input would destroy the
  // trace being rewritten (same guard class as the merger's).
  std::error_code ec;
  if (out_path == in_path ||
      (std::filesystem::equivalent(in_path, out_path, ec) && !ec)) {
    std::fprintf(stderr, "%s: output path is also the input trace\n", out_path.c_str());
    return 2;
  }

  TraceReader reader(in_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
    return 1;
  }
  nmo::store::TraceWriter writer(out_path, options);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.error().c_str());
    return 1;
  }
  TraceSample s;
  while (reader.next(s)) writer.add(s);
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s\n", message.c_str());
    writer.abandon();
    std::remove(out_path.c_str());
    return 1;
  };
  if (!reader.ok()) return fail(in_path + ": " + reader.error());
  if (!writer.close()) return fail(out_path + ": " + writer.error());
  // The rewrite is lossless by construction; the fingerprint (a digest over
  // decoded samples, not file bytes) proves it end to end.
  if (writer.fingerprint() != reader.info().fingerprint) {
    std::remove(out_path.c_str());
    return fail("rewrite fingerprint mismatch: " + writer.fingerprint() + " vs " +
                reader.info().fingerprint);
  }

  // The region sidecar labels the same sample indices either way; a rewrite
  // that silently dropped it would strip names from `top --by region`.
  const std::string in_sidecar = nmo::store::region_path_for(in_path);
  if (std::filesystem::exists(in_sidecar, ec) && !ec) {
    std::error_code copy_ec;
    std::filesystem::copy_file(in_sidecar, nmo::store::region_path_for(out_path),
                               std::filesystem::copy_options::overwrite_existing, copy_ec);
    if (copy_ec) {
      std::remove(out_path.c_str());
      return fail(in_sidecar + ": cannot copy region sidecar: " + copy_ec.message());
    }
  }

  const auto in_size = std::filesystem::file_size(in_path, ec);
  const auto out_size = std::filesystem::file_size(out_path, ec);
  const auto samples = writer.samples_written();
  std::printf("%s (v%u, %ju B) -> %s (v%u, %ju B)\n", in_path.c_str(), reader.info().version,
              static_cast<uintmax_t>(in_size), out_path.c_str(), options.version,
              static_cast<uintmax_t>(out_size));
  std::printf("samples    : %" PRIu64 "\n", samples);
  std::printf("fingerprint: %s (unchanged)\n", writer.fingerprint().c_str());
  if (samples > 0) {
    std::printf("bytes/sample: %.2f -> %.2f (%.0f%% of input)\n",
                static_cast<double>(in_size) / static_cast<double>(samples),
                static_cast<double>(out_size) / static_cast<double>(samples),
                100.0 * static_cast<double>(out_size) / static_cast<double>(in_size));
  }
  return 0;
}

int cmd_verify(const Command&, const Args& args) {
  bool all_ok = true;
  for (const auto& path : args.positionals()) {
    const auto fail = [&](const std::string& message) {
      std::fprintf(stderr, "%s: FAIL: %s\n", path.c_str(), message.c_str());
      all_ok = false;
    };
    // Full decode: validates every block, every sample field, the footer
    // count + MD5, (v2) that the block index describes exactly the blocks
    // on disk, and (when present) that the per-block metadata summaries
    // agree with the decoded samples.
    TraceReader reader(path);
    TraceSample s;
    std::uint64_t samples = 0;
    while (reader.next(s)) ++samples;
    if (!reader.ok()) {
      fail(reader.error());
      continue;
    }
    // The O(1)-ish structural probe must agree with the full decode - the
    // two share the corrupt-file test suite, so a divergence here is a bug.
    const auto probed = TraceReader::probe(path);
    if (!probed) {
      fail("full decode passed but probe rejected the file");
      continue;
    }
    if (probed->fingerprint != reader.info().fingerprint || probed->samples != samples) {
      fail("probe and full decode disagree on count/fingerprint");
      continue;
    }
    std::printf("%s: ok\n", path.c_str());
    std::printf("  version    : %u\n", reader.info().version);
    if (reader.info().version >= nmo::store::kTraceVersion2) {
      std::printf("  blocks     : %zu (index verified)\n", reader.block_index().size());
      std::printf("  metadata   : %s\n", reader.has_block_meta()
                                             ? "present (cross-checked against samples)"
                                             : "absent (pre-metadata v2 file)");
    }
    std::printf("  samples    : %" PRIu64 "\n", samples);
    std::printf("  fingerprint: %s\n", reader.info().fingerprint.c_str());
  }
  return all_ok ? 0 : 1;
}

int cmd_top(const Command& command, const Args& args) {
  const std::string& in_path = args.positionals()[0];
  const std::string by = args.str("by", "region");
  const auto top_n = static_cast<std::size_t>(args.uint("n", 10));
  if (top_n == 0) return command.usage_error(kTool, "-n must be positive");
  if (by != "region" && by != "level" && by != "core" && by != "latency") {
    return command.usage_error(kTool, "--by must be region, level, core or latency");
  }

  // The region sidecar (written by the session runner and by merge) turns
  // bare region indices into names; without it rows keep the index.
  std::vector<nmo::core::AddrRegion> region_names;
  if (by == "region") {
    if (const auto table = nmo::store::read_region_file(nmo::store::region_path_for(in_path))) {
      region_names = *table;
    }
  }

  TraceReader reader(in_path);
  TraceSample s;

  if (by == "latency") {
    // The N highest-latency samples (a bounded min-heap over the stream).
    const auto latency_gt = [](const TraceSample& a, const TraceSample& b) {
      return a.latency > b.latency;
    };
    std::vector<TraceSample> worst;
    while (reader.next(s)) {
      worst.push_back(s);
      std::push_heap(worst.begin(), worst.end(), latency_gt);
      if (worst.size() > top_n) {
        std::pop_heap(worst.begin(), worst.end(), latency_gt);
        worst.pop_back();
      }
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
      return 1;
    }
    std::sort(worst.begin(), worst.end(), latency_gt);
    std::printf("%-12s %-18s %-6s %-6s %-6s %s\n", "latency", "vaddr", "level", "core", "region",
                "time_ns");
    for (const auto& w : worst) {
      std::printf("%-12u 0x%-16" PRIx64 " %-6s %-6u %-6d %" PRIu64 "\n", w.latency, w.vaddr,
                  std::string(to_string(w.level)).c_str(), w.core, w.region, w.time_ns);
    }
    return 0;
  }

  struct Group {
    std::uint64_t count = 0;
    std::uint64_t latency_sum = 0;
    std::uint16_t latency_max = 0;
  };
  std::map<std::int64_t, Group> groups;
  std::uint64_t total = 0;
  while (reader.next(s)) {
    std::int64_t key = 0;
    if (by == "region") {
      key = s.region;
    } else if (by == "level") {
      key = static_cast<std::int64_t>(s.level);
    } else {
      key = static_cast<std::int64_t>(s.core);
    }
    auto& g = groups[key];
    ++g.count;
    g.latency_sum += s.latency;
    g.latency_max = std::max(g.latency_max, s.latency);
    ++total;
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(), reader.error().c_str());
    return 1;
  }

  std::vector<std::pair<std::int64_t, Group>> rows(groups.begin(), groups.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second.count > b.second.count; });
  if (rows.size() > top_n) rows.resize(top_n);

  std::printf("%-14s %-12s %-8s %-12s %s\n", by.c_str(), "samples", "share", "avg_lat",
              "max_lat");
  for (const auto& [key, g] : rows) {
    char label[64];
    if (by == "level") {
      std::snprintf(label, sizeof(label), "%s",
                    std::string(to_string(static_cast<nmo::MemLevel>(key))).c_str());
    } else if (by == "region" && key < 0) {
      std::snprintf(label, sizeof(label), "untagged");
    } else if (by == "region" && key >= 0 &&
               static_cast<std::size_t>(key) < region_names.size()) {
      std::snprintf(label, sizeof(label), "%s",
                    region_names[static_cast<std::size_t>(key)].name.c_str());
    } else {
      std::snprintf(label, sizeof(label), "%" PRId64, key);
    }
    std::printf("%-14s %-12" PRIu64 " %-8.2f %-12.1f %u\n", label, g.count,
                total > 0 ? 100.0 * static_cast<double>(g.count) / static_cast<double>(total)
                          : 0.0,
                g.count > 0 ? static_cast<double>(g.latency_sum) / static_cast<double>(g.count)
                            : 0.0,
                g.latency_max);
  }
  return 0;
}

/// Emits a metadata value with its natural JSON type: digits-only strings
/// (every counter session.meta/scheduler.meta records) as numbers,
/// anything else (names, states, fingerprints, errors) as strings.
void json_meta_value(nmo::JsonWriter& json, const std::string& value) {
  if (!value.empty() && value.size() <= 19 &&
      value.find_first_not_of("0123456789") == std::string::npos) {
    json.value(static_cast<std::uint64_t>(std::strtoull(value.c_str(), nullptr, 10)));
  } else {
    json.value(value);
  }
}

/// Collects session directories under a store root, including the
/// per-socket `node-<k>/` roots a topology-aware store writes into.
std::vector<std::filesystem::path> list_session_dirs(const std::string& root) {
  std::vector<std::filesystem::path> dirs;
  std::error_code ec;
  const auto scan = [&dirs](const std::filesystem::path& parent) {
    std::error_code scan_ec;
    for (const auto& entry : std::filesystem::directory_iterator(parent, scan_ec)) {
      if (entry.is_directory() &&
          entry.path().filename().string().rfind("session-", 0) == 0) {
        dirs.push_back(entry.path());
      }
    }
  };
  scan(root);
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("node-", 0) == 0) {
      scan(entry.path());
    }
  }
  std::sort(dirs.begin(), dirs.end(),
            [](const auto& a, const auto& b) {
              return a.filename().string() < b.filename().string();
            });
  return dirs;
}

int cmd_sessions(const Command&, const Args& args) {
  const std::string& root = args.positionals()[0];
  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec)) {
    std::fprintf(stderr, "%s: not a session store directory\n", root.c_str());
    return 1;
  }

  if (args.has("json")) {
    // Machine-readable view: every key of every metadata file, verbatim
    // (numbers as numbers), so scripts never re-parse the human table.
    nmo::JsonWriter json;
    json.begin_object();
    json.key("store").value(root);
    for (const char* which : {"scheduler", "collector"}) {
      const std::string file = std::string(which) + ".meta";
      if (const auto meta = nmo::store::read_metadata_file(root + "/" + file)) {
        json.key(which).begin_object();
        for (const auto& [key, value] : *meta) {
          // Per-tenant and per-node rows are re-emitted below as
          // structured arrays; keeping them out of the flat object spares
          // scripts the "tenant.<i>.<key>" / "node.<k>.admitted" surgery.
          if (key.rfind("tenant.", 0) == 0) continue;
          if (key.rfind("node.", 0) == 0) continue;
          json.key(key);
          json_meta_value(json, value);
        }
        json.end_object();
        const auto nodes_it = meta->find("topology.nodes");
        if (nodes_it != meta->end()) {
          const auto node_count = std::strtoull(nodes_it->second.c_str(), nullptr, 10);
          if (node_count > 1) {
            json.key(std::string(which) + "_nodes").begin_array();
            for (std::uint64_t k = 0; k < node_count; ++k) {
              const std::string key = "node." + std::to_string(k) + ".admitted";
              json.begin_object();
              json.key("node").value(k);
              json.key("admitted");
              const auto it = meta->find(key);
              json_meta_value(json, it != meta->end() ? it->second : "0");
              json.end_object();
            }
            json.end_array();
          }
        }
        const auto count_it = meta->find("tenants");
        if (count_it == meta->end()) continue;
        const auto tenant_count = std::strtoull(count_it->second.c_str(), nullptr, 10);
        if (tenant_count == 0) continue;
        json.key(std::string(which) + "_tenants").begin_array();
        for (std::uint64_t i = 0; i < tenant_count; ++i) {
          const std::string prefix = "tenant." + std::to_string(i) + ".";
          json.begin_object();
          for (auto it = meta->lower_bound(prefix);
               it != meta->end() && it->first.rfind(prefix, 0) == 0; ++it) {
            json.key(it->first.substr(prefix.size()));
            json_meta_value(json, it->second);
          }
          json.end_object();
        }
        json.end_array();
      }
    }
    const auto dirs = list_session_dirs(root);
    bool all_ok = true;
    json.key("sessions").begin_array();
    for (const auto& dir : dirs) {
      const auto meta = nmo::store::read_metadata_file(
          (dir / std::string(nmo::store::kSessionMetaFile)).string());
      json.begin_object();
      json.key("dir").value(dir.lexically_relative(root).string());
      if (meta) {
        for (const auto& [key, value] : *meta) {
          json.key(key);
          json_meta_value(json, value);
        }
        const auto it = meta->find("error");
        if (it != meta->end() && !it->second.empty()) all_ok = false;
      }
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("%s\n", json.str().c_str());
    return all_ok ? 0 : 1;
  }

  std::printf("store: %s\n", root.c_str());

  // The pool's aggregate ledger, written by run_sessions.
  const auto sched = nmo::store::read_metadata_file(
      root + "/" + std::string(nmo::store::kSchedulerMetaFile));
  if (sched) {
    const auto field = [&](const char* key) -> std::string {
      const auto it = sched->find(key);
      return it != sched->end() ? it->second : "?";
    };
    std::printf("scheduler: workers=%s queue_depth=%s policy=%s\n",
                field("workers").c_str(), field("queue_depth").c_str(),
                field("policy").c_str());
    std::printf("  submitted=%s admitted=%s rejected=%s shed=%s expired=%s requeued=%s "
                "completed=%s failed=%s\n",
                field("submitted").c_str(), field("admitted").c_str(),
                field("rejected").c_str(), field("shed").c_str(), field("expired").c_str(),
                field("requeued").c_str(), field("completed").c_str(),
                field("failed").c_str());
    std::printf("  peak_queue_depth=%s peak_occupancy=%s queue_wait_ns_total=%s "
                "queue_wait_ns_max=%s\n",
                field("peak_queue_depth").c_str(), field("peak_occupancy").c_str(),
                field("queue_wait_ns_total").c_str(), field("queue_wait_ns_max").c_str());
    // Topology placement ledger: only stores written by a multi-node
    // scheduler carry these keys, so a flat store prints nothing extra.
    const auto node_count =
        std::strtoull(field("topology.nodes").c_str(), nullptr, 10);  // "?" parses to 0
    if (node_count > 1) {
      std::printf("  placement: nodes=%s local=%s misses=%s", field("topology.nodes").c_str(),
                  field("placement_local").c_str(), field("placement_misses").c_str());
      for (std::uint64_t k = 0; k < node_count; ++k) {
        const std::string key = "node." + std::to_string(k) + ".admitted";
        std::printf(" node%" PRIu64 "=%s", k, field(key.c_str()).c_str());
      }
      std::printf("\n");
    }
    // The per-tenant fairness ledger: who submitted, who got a worker, who
    // was shed or expired, and how long each tenant's jobs waited - the
    // "who got starved and why" view of the weighted-fair scheduler.
    const auto tenant_count =
        std::strtoull(field("tenants").c_str(), nullptr, 10);  // "?" parses to 0
    if (tenant_count > 0) {
      std::printf("\n%-16s %-7s %-10s %-9s %-6s %-8s %-12s %-12s\n", "tenant", "weight",
                  "submitted", "admitted", "shed", "expired", "p50_wait_ms", "p99_wait_ms");
      for (std::uint64_t i = 0; i < tenant_count; ++i) {
        const std::string prefix = "tenant." + std::to_string(i) + ".";
        const auto tfield = [&](const char* key) -> std::string {
          const auto it = sched->find(prefix + key);
          return it != sched->end() ? it->second : "?";
        };
        const auto wait_ms = [&](const char* key) {
          return std::strtod(tfield(key).c_str(), nullptr) / 1e6;
        };
        std::printf("%-16s %-7s %-10s %-9s %-6s %-8s %-12.3f %-12.3f\n",
                    tfield("name").c_str(), tfield("weight").c_str(),
                    tfield("submitted").c_str(), tfield("admitted").c_str(),
                    tfield("shed").c_str(), tfield("expired").c_str(),
                    wait_ms("queue_wait_p50_ns"), wait_ms("queue_wait_p99_ns"));
      }
    }
  } else {
    std::printf("scheduler: no %s (store predates the scheduler or used the "
                "thread-per-session runner)\n",
                std::string(nmo::store::kSchedulerMetaFile).c_str());
  }

  const auto dirs = list_session_dirs(root);

  std::printf("\n%-6s %-16s %-9s %-7s %-5s %-12s %-10s %s\n", "id", "name", "state",
              "worker", "node", "wait_ms", "samples", "fingerprint");
  bool all_ok = true;
  for (const auto& dir : dirs) {
    const auto meta = nmo::store::read_metadata_file(
        (dir / std::string(nmo::store::kSessionMetaFile)).string());
    if (!meta) {
      // A store written before session.meta existed is still a valid
      // store (same stance as the missing-scheduler.meta note above);
      // only sessions that *recorded* an error flip the exit code.
      std::printf("%-6s %-16s %s\n", "?", dir.filename().string().c_str(),
                  "(no session.meta - pre-scheduler store or job never ran)");
      continue;
    }
    const auto field = [&](const char* key) -> std::string {
      const auto it = meta->find(key);
      return it != meta->end() ? it->second : "?";
    };
    double wait_ms = 0.0;
    try {
      wait_ms = std::stod(field("queue_wait_ns")) / 1e6;
    } catch (...) {
    }
    std::printf("%-6s %-16s %-9s %-7s %-5s %-12.3f %-10s %s\n", field("id").c_str(),
                field("name").c_str(), field("state").c_str(), field("worker").c_str(),
                field("node").c_str(), wait_ms, field("samples").c_str(),
                field("fingerprint").c_str());
    const std::string error = field("error");
    if (!error.empty() && error != "?") {
      std::printf("       error: %s\n", error.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

/// Maps a level name (L1/L2/SLC/DRAM, case-insensitive) to the enum.
bool parse_level(const std::string& text, nmo::MemLevel& out) {
  for (std::size_t l = 0; l < nmo::kNumMemLevels; ++l) {
    const auto level = static_cast<nmo::MemLevel>(l);
    const std::string name(to_string(level));
    if (text.size() == name.size() &&
        std::equal(text.begin(), text.end(), name.begin(), [](char a, char b) {
          return std::toupper(static_cast<unsigned char>(a)) ==
                 std::toupper(static_cast<unsigned char>(b));
        })) {
      out = level;
      return true;
    }
  }
  return false;
}

int cmd_query(const Command& command, const Args& args) {
  const std::string& path = args.positionals()[0];
  if (args.has("csv") && args.has("json")) {
    return command.usage_error(kTool, "--csv and --json are exclusive");
  }

  auto query = nmo::store::query(path);
  if (args.has("t0") || args.has("t1")) {
    query.time_between(args.uint("t0", 0), args.uint("t1", ~std::uint64_t{0}));
  }
  if (args.has("addr")) {
    const std::string range = args.str("addr");
    const auto colon = range.find(':');
    char* end_lo = nullptr;
    char* end_hi = nullptr;
    if (colon == std::string::npos) {
      return command.usage_error(kTool, "--addr wants LO:HI (hex with 0x or decimal)");
    }
    const std::string lo_text = range.substr(0, colon);
    const std::string hi_text = range.substr(colon + 1);
    const auto lo = std::strtoull(lo_text.c_str(), &end_lo, 0);
    const auto hi = std::strtoull(hi_text.c_str(), &end_hi, 0);
    if (lo_text.empty() || hi_text.empty() || end_lo != lo_text.c_str() + lo_text.size() ||
        end_hi != hi_text.c_str() + hi_text.size()) {
      return command.usage_error(kTool, "--addr wants LO:HI (hex with 0x or decimal)");
    }
    query.address_in(lo, hi);
  }
  for (const auto& text : args.all("region")) {
    query.region(static_cast<std::int32_t>(std::strtoll(text.c_str(), nullptr, 10)));
  }
  for (const auto& text : args.all("level")) {
    nmo::MemLevel level{};
    if (!parse_level(text, level)) {
      return command.usage_error(kTool, "--level must be L1, L2, SLC or DRAM");
    }
    query.level(level);
  }

  const auto threads = static_cast<unsigned>(args.uint("threads", 1));
  const auto result = query.run(threads == 0 ? 1 : threads);
  if (!result.ok) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), result.error.c_str());
    return 1;
  }

  if (args.has("json")) {
    nmo::JsonWriter json;
    json.begin_object();
    json.key("file").value(path);
    json.key("version").value(static_cast<std::uint64_t>(result.info.version));
    json.key("pushdown").value(result.stats.pushdown);
    json.key("blocks_total").value(result.stats.blocks_total);
    json.key("blocks_scanned").value(result.stats.blocks_scanned);
    json.key("blocks_skipped").value(result.stats.blocks_skipped);
    json.key("samples_scanned").value(result.stats.samples_scanned);
    json.key("samples_matched").value(result.stats.samples_matched);
    json.end_object();
    std::printf("%s\n", json.str().c_str());
    return 0;
  }
  if (args.has("csv")) {
    std::cout << nmo::core::kTraceCsvHeader;
    for (const auto& s : result.samples.samples()) nmo::core::write_csv_row(std::cout, s);
    std::cout.flush();
    return std::cout ? 0 : 1;
  }

  std::printf("%s (v%u)\n", path.c_str(), result.info.version);
  std::printf("  pushdown   : %s\n", result.stats.pushdown ? "yes (index metadata)"
                                                           : "no (full scan)");
  std::printf("  blocks     : %" PRIu64 " total, %" PRIu64 " scanned, %" PRIu64 " skipped\n",
              result.stats.blocks_total, result.stats.blocks_scanned,
              result.stats.blocks_skipped);
  std::printf("  samples    : %" PRIu64 " scanned, %" PRIu64 " matched\n",
              result.stats.samples_scanned, result.stats.samples_matched);
  return 0;
}

int cmd_diff(const Command&, const Args& args) {
  nmo::analysis::DiffOptions options;
  options.ks_threshold = args.number("ks-threshold", options.ks_threshold);
  options.level_threshold = args.number("level-threshold", options.level_threshold);
  options.phase_threshold = args.number("phase-threshold", options.phase_threshold);
  options.min_samples = args.uint("min-samples", options.min_samples);
  options.phase_bins = static_cast<std::size_t>(args.uint("bins", options.phase_bins));
  if (options.phase_bins == 0) options.phase_bins = 1;

  const std::string& path_a = args.positionals()[0];
  const std::string& path_b = args.positionals()[1];
  std::string error;
  const auto profile_a = nmo::analysis::profile_path(path_a, options, &error);
  if (!profile_a) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto profile_b = nmo::analysis::profile_path(path_b, options, &error);
  if (!profile_b) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto report = nmo::analysis::diff_profiles(*profile_a, *profile_b, options);

  if (args.has("json")) {
    nmo::JsonWriter json;
    json.begin_object();
    json.key("a").value(path_a);
    json.key("b").value(path_b);
    json.key("samples_a").value(report.samples_a);
    json.key("samples_b").value(report.samples_b);
    json.key("drift").value(report.drift);
    json.key("phase_distance").value(report.phase_distance);
    json.key("phase_drift").value(report.phase_drift);
    json.key("regions").begin_array();
    for (const auto& r : report.regions) {
      json.begin_object();
      json.key("name").value(r.name);
      json.key("samples_a").value(r.samples_a);
      json.key("samples_b").value(r.samples_b);
      json.key("ks_latency").value(r.ks_latency);
      json.key("level_distance").value(r.level_distance);
      json.key("judged").value(r.judged);
      json.key("drift").value(r.drift);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("%s\n", json.str().c_str());
    return report.drift ? 3 : 0;
  }

  std::printf("diff %s (%" PRIu64 " samples) vs %s (%" PRIu64 " samples)\n", path_a.c_str(),
              report.samples_a, path_b.c_str(), report.samples_b);
  std::printf("%-20s %-12s %-12s %-10s %-10s %s\n", "region", "samples_a", "samples_b",
              "ks_lat", "level_tv", "verdict");
  for (const auto& r : report.regions) {
    std::printf("%-20s %-12" PRIu64 " %-12" PRIu64 " %-10.4f %-10.4f %s\n", r.name.c_str(),
                r.samples_a, r.samples_b, r.ks_latency, r.level_distance,
                !r.judged ? "(too few)" : r.drift ? "DRIFT" : "ok");
  }
  std::printf("phases: distance=%.4f -> %s\n", report.phase_distance,
              report.phase_drift ? "DRIFT" : "ok");
  std::printf("verdict: %s\n", report.drift ? "DRIFT" : "no drift");
  return report.drift ? 3 : 0;
}

const std::vector<Command>& command_table() {
  static const std::vector<Command> kCommands = {
      {"info", "FILE...", "validate and summarize trace files", 1, std::size_t(-1), {},
       cmd_info},
      {"merge",
       "FILE...",
       "k-way merge into canonical order (unions region sidecars)",
       1,
       std::size_t(-1),
       {{"output", "o", Flag::Type::kString, "OUT", "merged trace path (required)"}},
       cmd_merge},
      {"export-csv",
       "FILE",
       "write the trace as CSV (stdout default)",
       1,
       1,
       {{"output", "o", Flag::Type::kString, "OUT", "CSV path (default: stdout)"}},
       cmd_export_csv},
      {"compress",
       "FILE",
       "rewrite into format v2 (self-contained blocks + codec + index)",
       1,
       1,
       {{"output", "o", Flag::Type::kString, "OUT", "rewritten trace path (required)"},
        {"raw", "", Flag::Type::kBool, "", "disable the block codec"},
        {"v1", "", Flag::Type::kBool, "", "pin the legacy v1 format"}},
       cmd_compress},
      {"verify", "FILE...", "full decode + MD5 + block index/metadata cross-check", 1,
       std::size_t(-1), {}, cmd_verify},
      {"top",
       "FILE",
       "hottest groups by region, level, core or latency",
       1,
       1,
       {{"by", "", Flag::Type::kString, "KEY", "group key: region|level|core|latency"},
        {"n", "n", Flag::Type::kUint, "N", "rows to print (default 10)"}},
       cmd_top},
      {"sessions",
       "ROOT",
       "session lifecycle + scheduler stats of a store",
       1,
       1,
       {{"json", "", Flag::Type::kBool, "",
         "emit every session/scheduler/collector metadata key as JSON"}},
       cmd_sessions},
      {"query",
       "FILE",
       "predicate-pushdown sample query over an indexed trace",
       1,
       1,
       {{"t0", "", Flag::Type::kUint, "NS", "keep samples with time >= NS"},
        {"t1", "", Flag::Type::kUint, "NS", "keep samples with time <= NS"},
        {"addr", "", Flag::Type::kString, "LO:HI", "keep samples with vaddr in [LO, HI]"},
        {"region", "", Flag::Type::kInt, "R", "keep this region id (-1 = untagged)", true},
        {"level", "", Flag::Type::kString, "NAME", "keep this level: L1|L2|SLC|DRAM", true},
        {"threads", "", Flag::Type::kUint, "N", "decode workers (default 1)"},
        {"csv", "", Flag::Type::kBool, "", "print matching samples as CSV"},
        {"json", "", Flag::Type::kBool, "", "print query stats as JSON"}},
       cmd_query},
      {"diff",
       "A B",
       "statistical drift verdict between two traces or session roots (exit 3 = drift)",
       2,
       2,
       {{"json", "", Flag::Type::kBool, "", "print the full report as JSON"},
        {"ks-threshold", "", Flag::Type::kDouble, "X", "per-region latency KS limit (0.15)"},
        {"level-threshold", "", Flag::Type::kDouble, "X", "per-region level-mix TV limit (0.10)"},
        {"phase-threshold", "", Flag::Type::kDouble, "X", "whole-run phase TV limit (0.25)"},
        {"min-samples", "", Flag::Type::kUint, "N", "smallest region worth judging (64)"},
        {"bins", "", Flag::Type::kUint, "N", "phase timeline bins (16)"}},
       cmd_diff},
  };
  return kCommands;
}

}  // namespace

int main(int argc, char** argv) {
  return nmo::cli::dispatch(kTool, command_table(), argc, argv);
}
