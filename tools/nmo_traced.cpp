// nmo-traced: the streaming-capture collector daemon.
//
// Listens for nmo streaming senders (net/block_sender.hpp), ingests each
// session stream into a per-session directory of a SessionStore root
// (net/collector.hpp), and merges scheduler.meta snapshots across senders
// into the fleet admission view at `<root>/scheduler.meta`.  Collected
// traces are normal verify-clean v2 artifacts - `nmo-trace verify/merge/
// sessions` work on the collected root exactly as on a local one.
//
// Deterministic lifecycle for scripts and CI: `--once N` exits after N
// session streams finalized (clean or truncated) with no stream still
// open, and `--port-file PATH` publishes the bound port (the daemon binds
// an ephemeral port when --port is 0/absent, so parallel CI jobs never
// collide).  SIGINT/SIGTERM drain gracefully: open streams finalize as
// valid truncated traces before exit.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "net/collector.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int cmd_serve(const nmo::cli::Command& command, const nmo::cli::Args& args) {
  nmo::net::CollectorConfig config;
  config.root = args.str("root", "collected-store");
  config.bind = args.str("bind", "127.0.0.1");
  const std::uint64_t port = args.uint("port", 0);
  if (port > 0xffff) return command.usage_error("nmo-traced", "--port out of range");
  config.port = static_cast<std::uint16_t>(port);
  config.once = static_cast<std::uint32_t>(args.uint("once", 0));
  config.verbose = args.has("verbose");
  const std::uint64_t linger_ms = args.uint("linger-ms", 200);

  nmo::net::Collector collector(config);
  std::string error;
  if (!collector.start(&error)) {
    std::fprintf(stderr, "nmo-traced: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "nmo-traced: listening on %s:%u, root %s\n", config.bind.c_str(),
               collector.port(), config.root.c_str());
  if (args.has("port-file")) {
    std::ofstream out(args.str("port-file"), std::ios::trunc);
    out << collector.port() << '\n';
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signal == 0) {
    if (config.once > 0 && collector.wait_done(200)) break;
    if (config.once == 0) std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  if (g_signal == 0 && linger_ms > 0) {
    // Quota met: give late control connections (scheduler.meta snapshots
    // arriving just after the last session finalized) a moment to land.
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  collector.stop();

  const auto stats = collector.stats();
  std::fprintf(stderr,
               "nmo-traced: served %llu connections, %llu sessions "
               "(%llu clean, %llu truncated, %llu failed), %llu blocks / %llu samples, "
               "%llu bytes, %llu protocol errors\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.sessions_started),
               static_cast<unsigned long long>(stats.sessions_clean),
               static_cast<unsigned long long>(stats.sessions_truncated),
               static_cast<unsigned long long>(stats.sessions_failed),
               static_cast<unsigned long long>(stats.blocks),
               static_cast<unsigned long long>(stats.samples),
               static_cast<unsigned long long>(stats.bytes),
               static_cast<unsigned long long>(stats.protocol_errors));
  return stats.protocol_errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const nmo::cli::Command serve{
      "serve",
      "",
      "collect streamed capture sessions into a session store",
      0,
      0,
      {
          {"root", "r", nmo::cli::Flag::Type::kString, "PATH",
           "session store root for collected traces (default collected-store)"},
          {"bind", "b", nmo::cli::Flag::Type::kString, "ADDR",
           "listen address (default 127.0.0.1)"},
          {"port", "p", nmo::cli::Flag::Type::kUint, "PORT",
           "listen port (default 0 = ephemeral; see --port-file)"},
          {"port-file", "", nmo::cli::Flag::Type::kString, "PATH",
           "write the bound port to PATH once listening"},
          {"once", "n", nmo::cli::Flag::Type::kUint, "N",
           "exit after N session streams finalized (default 0 = serve forever)"},
          {"linger-ms", "", nmo::cli::Flag::Type::kUint, "MS",
           "after --once is met, keep serving this long for late control "
           "connections (default 200)"},
          {"verbose", "v", nmo::cli::Flag::Type::kBool, "",
           "log per-connection lifecycle to stderr"},
      },
      cmd_serve,
  };
  // Single-purpose daemon: every invocation is the serve command, so the
  // subcommand word is optional ("nmo-traced --once 4" just works).
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) rest.emplace_back(argv[i]);
  if (!rest.empty() && rest.front() == "serve") rest.erase(rest.begin());
  return nmo::cli::run_command("nmo-traced", serve, rest);
}
