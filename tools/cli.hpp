// One option parser for every nmo tool subcommand: a declarative command
// table (name, positional usage, typed flags, handler) replaces the
// per-subcommand ad-hoc argv walking nmo-trace accumulated - so each new
// subcommand gets strict typed flag parsing, repeatable flags, arity
// checks and auto-generated --help for free instead of a new dialect.
//
// Parsing rules: flags and positionals may interleave; a valued flag
// consumes the next token verbatim (so "--region -1" works); values are
// validated against the flag's declared type at parse time (strict
// digits-only integers - "-n -1" is a usage error, not a 2^64 wrap);
// repeated non-repeatable flags keep the last value (shell-override
// idiom); "--help"/-h anywhere prints the subcommand's usage and exits 0.
// Usage errors print to stderr and return exit code 2.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace nmo::cli {

/// A typed option: "--name" (and optionally "-s") with 0 or 1 value.
struct Flag {
  enum class Type { kBool, kUint, kInt, kDouble, kString };

  std::string name;        ///< Long name without dashes ("json" -> --json).
  std::string short_name;  ///< Optional one-letter alias ("o" -> -o); may be empty.
  Type type = Type::kBool;
  std::string value_name;  ///< Placeholder in help ("PATH"); empty for kBool.
  std::string help;
  bool repeatable = false;  ///< Accumulate every occurrence (region/level filters).
};

/// Parsed arguments of one subcommand invocation.
class Args {
 public:
  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }

  [[nodiscard]] bool has(const std::string& flag) const {
    for (const auto& [name, value] : values_) {
      if (name == flag) return true;
    }
    return false;
  }
  /// Last occurrence's value (flags are last-wins), or `fallback`.
  [[nodiscard]] std::string str(const std::string& flag, std::string fallback = "") const {
    for (auto it = values_.rbegin(); it != values_.rend(); ++it) {
      if (it->first == flag) return it->second;
    }
    return fallback;
  }
  [[nodiscard]] std::uint64_t uint(const std::string& flag, std::uint64_t fallback = 0) const {
    const auto text = str(flag);
    return text.empty() ? fallback : std::strtoull(text.c_str(), nullptr, 10);
  }
  [[nodiscard]] std::int64_t integer(const std::string& flag, std::int64_t fallback = 0) const {
    const auto text = str(flag);
    return text.empty() ? fallback : std::strtoll(text.c_str(), nullptr, 10);
  }
  [[nodiscard]] double number(const std::string& flag, double fallback = 0.0) const {
    const auto text = str(flag);
    return text.empty() ? fallback : std::strtod(text.c_str(), nullptr);
  }
  /// Every occurrence's value, in order (for repeatable flags).
  [[nodiscard]] std::vector<std::string> all(const std::string& flag) const {
    std::vector<std::string> out;
    for (const auto& [name, value] : values_) {
      if (name == flag) out.push_back(value);
    }
    return out;
  }

  /// Parser-side appenders (run_command fills an Args as it walks argv).
  void add_positional(std::string value) { positionals_.push_back(std::move(value)); }
  void add_value(std::string flag, std::string value) {
    values_.emplace_back(std::move(flag), std::move(value));
  }

 private:
  std::vector<std::string> positionals_;
  std::vector<std::pair<std::string, std::string>> values_;  ///< (flag, value) in order.
};

/// One subcommand: its shape and its handler.
struct Command {
  std::string name;
  std::string args_usage;  ///< Positional part of the usage line ("FILE...").
  std::string summary;
  std::size_t min_args = 0;
  std::size_t max_args = std::size_t(-1);
  std::vector<Flag> flags;
  std::function<int(const Command&, const Args&)> handler;

  void print_usage(const char* tool) const {
    std::fprintf(stderr, "usage: %s %s %s%s\n", tool, name.c_str(), args_usage.c_str(),
                 flags.empty() ? "" : " [flags]");
    std::fprintf(stderr, "  %s\n", summary.c_str());
    if (!flags.empty()) std::fprintf(stderr, "  flags:\n");
    for (const auto& f : flags) {
      std::string spec = "--" + f.name;
      if (!f.short_name.empty()) spec += ", -" + f.short_name;
      if (f.type != Flag::Type::kBool) spec += " " + f.value_name;
      std::fprintf(stderr, "    %-24s %s%s\n", spec.c_str(), f.help.c_str(),
                   f.repeatable ? " (repeatable)" : "");
    }
  }

  /// Prints usage and returns the usage exit code - for handlers that find
  /// a semantic problem the parser cannot (missing required flag, bad enum
  /// value).
  int usage_error(const char* tool, const std::string& message) const {
    std::fprintf(stderr, "%s %s: %s\n", tool, name.c_str(), message.c_str());
    print_usage(tool);
    return 2;
  }
};

namespace detail {

inline bool valid_uint(const std::string& text) {
  return !text.empty() && text.find_first_not_of("0123456789") == std::string::npos;
}

inline bool valid_int(const std::string& text) {
  const std::size_t start = (!text.empty() && text[0] == '-') ? 1 : 0;
  return text.size() > start &&
         text.find_first_not_of("0123456789", start) == std::string::npos;
}

inline bool valid_double(const std::string& text) {
  if (text.empty()) return false;
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

inline bool valid_value(Flag::Type type, const std::string& text) {
  switch (type) {
    case Flag::Type::kUint:
      return valid_uint(text);
    case Flag::Type::kInt:
      return valid_int(text);
    case Flag::Type::kDouble:
      return valid_double(text);
    case Flag::Type::kString:
      return true;
    case Flag::Type::kBool:
      return false;  // bool flags carry no value
  }
  return false;
}

}  // namespace detail

/// Parses argv for `command`; on success runs the handler.  Returns the
/// handler's exit code, 2 on usage errors, 0 for --help.
inline int run_command(const char* tool, const Command& command,
                       const std::vector<std::string>& argv) {
  Args args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& token = argv[i];
    if (token == "--help" || token == "-h") {
      command.print_usage(tool);
      return 0;
    }
    const Flag* flag = nullptr;
    if (token.size() > 2 && token.rfind("--", 0) == 0) {
      for (const auto& f : command.flags) {
        if (token.compare(2, std::string::npos, f.name) == 0) flag = &f;
      }
    } else if (token.size() == 2 && token[0] == '-' && token != "-") {
      for (const auto& f : command.flags) {
        if (!f.short_name.empty() && token.compare(1, std::string::npos, f.short_name) == 0) {
          flag = &f;
        }
      }
    }
    if (flag == nullptr) {
      if (!token.empty() && token[0] == '-' && token != "-") {
        return command.usage_error(tool, "unknown flag " + token);
      }
      args.add_positional(token);
      continue;
    }
    if (flag->type == Flag::Type::kBool) {
      args.add_value(flag->name, "");
      continue;
    }
    if (i + 1 >= argv.size()) {
      return command.usage_error(tool, "--" + flag->name + " needs a value");
    }
    const std::string& value = argv[++i];
    if (!detail::valid_value(flag->type, value)) {
      return command.usage_error(tool, "bad value for --" + flag->name + ": " + value);
    }
    args.add_value(flag->name, value);
  }
  if (args.positionals().size() < command.min_args) {
    return command.usage_error(tool, "missing arguments");
  }
  if (args.positionals().size() > command.max_args) {
    return command.usage_error(tool, "too many arguments");
  }
  return command.handler(command, args);
}

/// Top-level dispatch: picks the subcommand from argv[1] and runs it.
/// "help", "--help" or no arguments print the command table.
inline int dispatch(const char* tool, const std::vector<Command>& commands, int argc,
                    char** argv) {
  const auto print_all = [&](std::FILE* out) {
    std::fprintf(out, "usage: %s <command> [args]\n\n", tool);
    for (const auto& c : commands) {
      std::string lead = c.name + " " + c.args_usage;
      std::fprintf(out, "  %-30s %s\n", lead.c_str(), c.summary.c_str());
    }
    std::fprintf(out, "\nrun '%s <command> --help' for that command's flags\n", tool);
  };
  if (argc < 2) {
    print_all(stderr);
    return 2;
  }
  const std::string name = argv[1];
  if (name == "help" || name == "--help" || name == "-h") {
    print_all(stdout);
    return 0;
  }
  for (const auto& c : commands) {
    if (c.name == name) {
      return run_command(tool, c, std::vector<std::string>(argv + 2, argv + argc));
    }
  }
  std::fprintf(stderr, "%s: unknown command '%s'\n", tool, name.c_str());
  print_all(stderr);
  return 2;
}

}  // namespace nmo::cli
