#!/usr/bin/env python3
"""nmo-lint: repo-invariant checks clang-tidy cannot express.

Each rule encodes a project-wide contract that has bitten (or would bite)
this codebase specifically; see README "Static analysis & concurrency
correctness" for the rationale.  Findings print as `path:line: rule:
message` and any finding fails the run, so CI can gate on exit status.

Suppression: append `// nmo-lint: allow(<rule>)` to the offending line with
a justification comment nearby.  Suppressions are per-line and per-rule on
purpose — a blanket opt-out would rot.

Usage:
  tools/nmo_lint.py [--repo DIR] [--compile-commands FILE] [--list-rules]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SUPPRESS_RE = re.compile(r"//\s*nmo-lint:\s*allow\(([a-z0-9_-]+)\)")
COMMENT_RE = re.compile(r"//.*$")


def code_of(line: str) -> str:
    """The line with any // comment stripped: code rules must not fire on
    prose that merely mentions std::mutex."""
    return COMMENT_RE.sub("", line)


def suppressed(line: str, rule: str) -> bool:
    m = SUPPRESS_RE.search(line)
    return bool(m) and m.group(1) == rule


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def iter_sources(repo: Path, dirs, suffixes):
    for d in dirs:
        base = repo / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path


# --- rule: naked-thread ------------------------------------------------------
#
# Every thread this project spawns must go through sys::named_thread so it
# shows up named in /proc, perf, and gdb.  An anonymous std::thread
# construction in src/ or tools/ is a worker nobody can identify in a
# profile.  (bench/ is exempt: harnesses spawn throwaway load generators.)

# Matches the temporary form (`std::thread(fn)`, args inline or continued
# on the next line) and the declaration form (`std::thread t(fn);`, which
# must end the statement so `std::thread` as a function's return type does
# not fire).  `std::thread t;` and `std::thread()` construct empty handles
# and spawn nothing.
THREAD_CTOR_RE = re.compile(
    r"std::thread\s*\(\s*[^)\s]"    # temporary with args
    r"|std::thread\s*\(\s*$"          # temporary, args on next line
    r"|std::thread\s+\w+\s*\(.*\)\s*;"  # declaration with args
    r"|std::thread\s+\w+\s*\(\s*$")      # declaration, args on next line


def rule_naked_thread(repo: Path):
    for path in iter_sources(repo, ["src", "tools"], {".cpp", ".hpp"}):
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if not THREAD_CTOR_RE.search(code_of(line)):
                continue
            if suppressed(line, "naked-thread"):
                continue
            yield Finding(
                path.relative_to(repo), i, "naked-thread",
                "spawn threads via sys::named_thread(name, fn, ...) so they "
                "are identifiable in profiles; see src/sys/topology.hpp")


# --- rule: raw-mutex ---------------------------------------------------------
#
# Locking in src/ and tools/ goes through core::Mutex / core::MutexLock /
# core::CondVar (common/thread_safety.hpp): that is what carries the Clang
# thread-safety annotations and feeds the lock-order validator.  A raw
# std::mutex is invisible to both.

RAW_LOCKING_RE = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock)\b")
RAW_MUTEX_EXEMPT = {
    Path("src/common/thread_safety.hpp"),  # the wrapper itself
    Path("src/common/lock_order.cpp"),     # must not recurse into core::Mutex
}


def rule_raw_mutex(repo: Path):
    for path in iter_sources(repo, ["src", "tools"], {".cpp", ".hpp"}):
        if path.relative_to(repo) in RAW_MUTEX_EXEMPT:
            continue
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if not RAW_LOCKING_RE.search(code_of(line)):
                continue
            if suppressed(line, "raw-mutex"):
                continue
            yield Finding(
                path.relative_to(repo), i, "raw-mutex",
                "use core::Mutex/MutexLock/CondVar (common/thread_safety.hpp); "
                "raw std locking bypasses thread-safety annotations and the "
                "lock-order validator")


# --- rule: wire-bounds -------------------------------------------------------
#
# Wire decoders parse attacker-shaped bytes.  Any function in net/wire.cpp
# that indexes the buffer through a cursor must bounds-check (mention
# .size()) inside that same function — a decoder with indexing but no size
# comparison is reading on faith.


def functions_with_bodies(text: str):
    """Yields (name, start_line, body_text) for top-level function bodies."""
    lines = text.splitlines()
    sig_re = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*\b([A-Za-z_]\w*)\s*\([^;]*$|"
                        r"^[A-Za-z_][\w:<>,&*\s]*\b([A-Za-z_]\w*)\s*\(.*\)\s*(const\s*)?\{")
    i = 0
    while i < len(lines):
        m = sig_re.match(lines[i])
        if not m:
            i += 1
            continue
        name = m.group(1) or m.group(2)
        # Find the opening brace, then consume the balanced body.
        depth = 0
        start = i
        body = []
        opened = False
        while i < len(lines):
            body.append(lines[i])
            depth += lines[i].count("{") - lines[i].count("}")
            if "{" in lines[i]:
                opened = True
            if opened and depth <= 0:
                break
            i += 1
        yield name, start + 1, "\n".join(body)
        i += 1


CURSOR_INDEX_RE = re.compile(r"\w+\[(pos|pos_)\b")


def rule_wire_bounds(repo: Path):
    wire = repo / "src" / "net" / "wire.cpp"
    if not wire.is_file():
        return
    text = wire.read_text()
    for name, line, body in functions_with_bodies(text):
        if not CURSOR_INDEX_RE.search(body):
            continue
        if ".size()" in body:
            continue
        first = body.splitlines()[0]
        if suppressed(first, "wire-bounds"):
            continue
        yield Finding(
            wire.relative_to(repo), line, "wire-bounds",
            f"decoder '{name}' indexes the buffer through a cursor but never "
            "compares against .size(); bounds-check before reading")


# --- rule: bench-json --------------------------------------------------------
#
# Every bench that gates (exits nonzero on a threshold) must also offer
# --json: a CI gate without a machine-readable artifact can fail without
# leaving numbers to compare against.  \bgate avoids matching "aggregate".

GATE_RE = re.compile(r"\bgate")


def rule_bench_json(repo: Path):
    for path in iter_sources(repo, ["bench"], {".cpp"}):
        text = path.read_text()
        m = GATE_RE.search(text)
        if not m:
            continue
        if "--json" in text:
            continue
        line = text.count("\n", 0, m.start()) + 1
        gate_line = text.splitlines()[line - 1]
        if suppressed(gate_line, "bench-json"):
            continue
        yield Finding(
            path.relative_to(repo), line, "bench-json",
            "bench declares a gate but offers no --json output; gates must "
            "leave a machine-readable artifact (see bench_common.hpp "
            "JsonWriter)")


# --- rule: using-namespace-header --------------------------------------------
#
# `using namespace` in a header leaks into every includer.

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s")


def rule_using_namespace_header(repo: Path):
    for path in iter_sources(repo, ["src", "bench", "tools"], {".hpp", ".h"}):
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if not USING_NAMESPACE_RE.match(code_of(line)):
                continue
            if suppressed(line, "using-namespace-header"):
                continue
            yield Finding(
                path.relative_to(repo), i, "using-namespace-header",
                "`using namespace` in a header injects the namespace into "
                "every includer; qualify names or alias instead")


RULES = {
    "naked-thread": rule_naked_thread,
    "raw-mutex": rule_raw_mutex,
    "wire-bounds": rule_wire_bounds,
    "bench-json": rule_bench_json,
    "using-namespace-header": rule_using_namespace_header,
}


def check_compile_commands(repo: Path, db_path: Path):
    """Cross-checks the compilation database covers every src/*.cpp: a file
    the GLOB missed is a file neither clang-tidy nor -Wthread-safety ever
    sees, which silently exempts it from both gates."""
    entries = json.loads(db_path.read_text())
    compiled = {Path(e["file"]).resolve() for e in entries}
    for path in iter_sources(repo, ["src"], {".cpp"}):
        if path.resolve() not in compiled:
            yield Finding(
                path.relative_to(repo), 1, "compile-commands",
                f"not in {db_path.name}: clang-tidy and -Wthread-safety "
                "never analyze this file (stale build dir? reconfigure)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's parent's parent)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json to cross-check src/ coverage against")
    parser.add_argument("--list-rules", action="store_true", help="print rule names and exit")
    args = parser.parse_args()

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    findings = []
    for rule in RULES.values():
        findings.extend(rule(args.repo))
    if args.compile_commands:
        findings.extend(check_compile_commands(args.repo, args.compile_commands))

    for f in findings:
        print(f)
    if findings:
        print(f"nmo-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("nmo-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
