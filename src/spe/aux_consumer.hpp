// Consumer-side draining of an SPE perf event: the record-processing loop
// that NMO runs when epoll reports a wakeup.
//
// For every PERF_RECORD_AUX in the data ring this reads the referenced aux
// bytes, splits them into 64-byte records and forwards them down one of two
// decode paths:
//
//  * serial (default): records are decoded inline with NMO's validation
//    rules (spe/packet.hpp) and valid ones are handed to the sink in
//    batches (spans of up to RecordBatch::kMaxRecords records);
//  * parallel: raw record bytes are fanned out to a spe::DecodePool, whose
//    worker shards decode them off the drain thread.  sync() is the
//    barrier that makes counts and sink state coherent again.
//
// Either way the consumer advances aux_tail so the device can reuse the
// space, and tallies the flags NMO's evaluation counts: COLLISION-flagged
// records (the paper's "sample collision" metric) and TRUNCATED ones.
//
// The drain is internally staged so the async drain pipeline
// (sim/drain_service.hpp) can split it across threads:
//
//   stage 1  drain_raw()     ring/aux consumption + flag tallies - the only
//                            part that touches device state, so it stays on
//                            the simulated timeline where drains are
//                            deterministic;
//   stage 2  decode_chunks() decode + sink (inline or pool fan-out), which
//                            may run on a dedicated consumer thread.
//
// drain() = drain_raw() + decode_chunks(), the classic one-call round.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "kernel/perf_event.hpp"
#include "spe/decode_pool.hpp"
#include "spe/packet.hpp"

namespace nmo::spe {

/// One AUX record's worth of drained-but-undecoded SPE bytes (stage-1
/// output; whole 64-byte records only, trailing partials are dropped at
/// drain time exactly as the inline path drops them).
struct RawChunk {
  CoreId core = 0;
  std::vector<std::byte> bytes;
};

class AuxConsumer {
 public:
  struct Counts {
    std::uint64_t records_ok = 0;       ///< Decoded, validated samples.
    std::uint64_t records_skipped = 0;  ///< Failed NMO's validation rules.
    std::uint64_t aux_records = 0;      ///< PERF_RECORD_AUX seen.
    std::uint64_t collision_flags = 0;  ///< AUX records with COLLISION flag.
    std::uint64_t truncated_flags = 0;  ///< AUX records with TRUNCATED flag.
    std::uint64_t throttle_records = 0;
    std::uint64_t lost_records = 0;     ///< PERF_RECORD_LOST events.
  };

  /// Batched sink: receives every valid sample of one AUX record as a span.
  using BatchSink = std::function<void(std::span<const Record>, CoreId core)>;
  /// Decode-progress observer: called with the cumulative records_ok tally
  /// whenever it advances (block-close granularity for the streaming
  /// layer's live heartbeats).  Always invoked on the thread that owns
  /// counts() - the timeline thread - never from pool workers.
  using ProgressHook = std::function<void(std::uint64_t records_ok)>;
  /// Legacy per-record sink, adapted onto the batched path.
  using Sink = std::function<void(const Record&, CoreId core)>;

  AuxConsumer() = default;
  explicit AuxConsumer(BatchSink sink) : batch_sink_(std::move(sink)) {}
  explicit AuxConsumer(Sink sink) {
    if (sink) {
      batch_sink_ = [s = std::move(sink)](std::span<const Record> records, CoreId core) {
        for (const Record& r : records) s(r, core);
      };
    }
  }
  /// Parallel mode: raw records are submitted to `pool` (not owned) instead
  /// of being decoded inline.  counts() is coherent only after sync().
  explicit AuxConsumer(DecodePool* pool) : pool_(pool) {}

  /// Drains all pending records of `ev`; returns the number of aux bytes
  /// consumed (what the monitor's timing model charges for).
  std::uint64_t drain(kern::PerfEvent& ev);

  /// Stage 1 only: consumes `ev`'s ring records and aux bytes, tallies the
  /// AUX flags, and appends the raw record bytes to `out` without decoding
  /// them.  Returns the aux bytes consumed.  Device-visible state (ring
  /// tail, aux tail, wakeup bookkeeping) advances exactly as drain() would.
  std::uint64_t drain_raw(kern::PerfEvent& ev, std::vector<RawChunk>& out);

  /// Stage 2 for one chunk on the *serial* path: decodes with the shared
  /// chunk loop and feeds the batch sink.  Returns the decode tallies
  /// WITHOUT touching counts(), so a consumer thread can accumulate its own
  /// tallies and fold them in later (add_decoded) with no data race against
  /// the timeline thread.
  DecodedChunk decode_raw(const RawChunk& chunk) const;

  /// Stage 2 dispatch: pool fan-out in parallel mode, decode_raw + counts()
  /// accumulation in serial mode.  drain() == drain_raw() + decode_chunks().
  void decode_chunks(std::span<const RawChunk> chunks);

  /// Folds decode tallies produced off-thread (sim::DrainService's serial
  /// consumer thread) into counts().  Caller must guarantee the producing
  /// thread is quiescent (the service's barrier does).
  void add_decoded(std::uint64_t ok, std::uint64_t skipped) {
    counts_.records_ok += ok;
    counts_.records_skipped += skipped;
    if (progress_ && ok > 0) progress_(counts_.records_ok);
  }

  /// Installs (or clears) the decode-progress observer.
  void set_progress_hook(ProgressHook hook) { progress_ = std::move(hook); }

  /// Barrier for the parallel path: waits for every in-flight batch, then
  /// folds the pool's decode tallies into counts().  No-op in serial mode.
  void sync();

  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }
  [[nodiscard]] const DecodePool* pool() const { return pool_; }

  [[nodiscard]] const Counts& counts() const { return counts_; }
  void reset_counts();

 private:
  BatchSink batch_sink_;
  DecodePool* pool_ = nullptr;
  Counts counts_;
  ProgressHook progress_;
};

}  // namespace nmo::spe
