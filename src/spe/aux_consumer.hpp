// Consumer-side draining of an SPE perf event: the record-processing loop
// that NMO runs when epoll reports a wakeup.
//
// For every PERF_RECORD_AUX in the data ring this reads the referenced aux
// bytes, splits them into 64-byte records and forwards them down one of two
// decode paths:
//
//  * serial (default): records are decoded inline with NMO's validation
//    rules (spe/packet.hpp) and valid ones are handed to the sink in
//    batches (spans of up to RecordBatch::kMaxRecords records);
//  * parallel: raw record bytes are fanned out to a spe::DecodePool, whose
//    worker shards decode them off the drain thread.  sync() is the
//    barrier that makes counts and sink state coherent again.
//
// Either way the consumer advances aux_tail so the device can reuse the
// space, and tallies the flags NMO's evaluation counts: COLLISION-flagged
// records (the paper's "sample collision" metric) and TRUNCATED ones.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "kernel/perf_event.hpp"
#include "spe/decode_pool.hpp"
#include "spe/packet.hpp"

namespace nmo::spe {

class AuxConsumer {
 public:
  struct Counts {
    std::uint64_t records_ok = 0;       ///< Decoded, validated samples.
    std::uint64_t records_skipped = 0;  ///< Failed NMO's validation rules.
    std::uint64_t aux_records = 0;      ///< PERF_RECORD_AUX seen.
    std::uint64_t collision_flags = 0;  ///< AUX records with COLLISION flag.
    std::uint64_t truncated_flags = 0;  ///< AUX records with TRUNCATED flag.
    std::uint64_t throttle_records = 0;
    std::uint64_t lost_records = 0;     ///< PERF_RECORD_LOST events.
  };

  /// Batched sink: receives every valid sample of one AUX record as a span.
  using BatchSink = std::function<void(std::span<const Record>, CoreId core)>;
  /// Legacy per-record sink, adapted onto the batched path.
  using Sink = std::function<void(const Record&, CoreId core)>;

  AuxConsumer() = default;
  explicit AuxConsumer(BatchSink sink) : batch_sink_(std::move(sink)) {}
  explicit AuxConsumer(Sink sink) {
    if (sink) {
      batch_sink_ = [s = std::move(sink)](std::span<const Record> records, CoreId core) {
        for (const Record& r : records) s(r, core);
      };
    }
  }
  /// Parallel mode: raw records are submitted to `pool` (not owned) instead
  /// of being decoded inline.  counts() is coherent only after sync().
  explicit AuxConsumer(DecodePool* pool) : pool_(pool) {}

  /// Drains all pending records of `ev`; returns the number of aux bytes
  /// consumed (what the monitor's timing model charges for).
  std::uint64_t drain(kern::PerfEvent& ev);

  /// Barrier for the parallel path: waits for every in-flight batch, then
  /// folds the pool's decode tallies into counts().  No-op in serial mode.
  void sync();

  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }
  [[nodiscard]] const DecodePool* pool() const { return pool_; }

  [[nodiscard]] const Counts& counts() const { return counts_; }
  void reset_counts();

 private:
  BatchSink batch_sink_;
  DecodePool* pool_ = nullptr;
  Counts counts_;
};

}  // namespace nmo::spe
