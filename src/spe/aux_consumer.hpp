// Consumer-side draining of an SPE perf event: the record-processing loop
// that NMO runs when epoll reports a wakeup.
//
// For every PERF_RECORD_AUX in the data ring this reads the referenced aux
// bytes, splits them into 64-byte records, decodes each with NMO's
// validation rules (spe/packet.hpp), forwards valid ones to a sink, and
// advances aux_tail so the device can reuse the space.  It also tallies the
// flags NMO's evaluation counts: COLLISION-flagged records (the paper's
// "sample collision" metric) and TRUNCATED ones.
#pragma once

#include <cstdint>
#include <functional>

#include "kernel/perf_event.hpp"
#include "spe/packet.hpp"

namespace nmo::spe {

class AuxConsumer {
 public:
  struct Counts {
    std::uint64_t records_ok = 0;       ///< Decoded, validated samples.
    std::uint64_t records_skipped = 0;  ///< Failed NMO's validation rules.
    std::uint64_t aux_records = 0;      ///< PERF_RECORD_AUX seen.
    std::uint64_t collision_flags = 0;  ///< AUX records with COLLISION flag.
    std::uint64_t truncated_flags = 0;  ///< AUX records with TRUNCATED flag.
    std::uint64_t throttle_records = 0;
    std::uint64_t lost_records = 0;     ///< PERF_RECORD_LOST events.
  };

  /// `sink` receives every valid sample (may be empty for counting runs).
  using Sink = std::function<void(const Record&, CoreId core)>;

  explicit AuxConsumer(Sink sink = {}) : sink_(std::move(sink)) {}

  /// Drains all pending records of `ev`; returns the number of aux bytes
  /// consumed (what the monitor's timing model charges for).
  std::uint64_t drain(kern::PerfEvent& ev);

  [[nodiscard]] const Counts& counts() const { return counts_; }
  void reset_counts() { counts_ = Counts{}; }

 private:
  Sink sink_;
  Counts counts_;
};

}  // namespace nmo::spe
