#include "spe/packet.hpp"

#include <cstring>

namespace nmo::spe {
namespace {

void put_u16(std::byte* at, std::uint16_t v) {
  at[0] = static_cast<std::byte>(v & 0xff);
  at[1] = static_cast<std::byte>(v >> 8);
}

std::uint16_t get_u16(const std::byte* at) {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(at[0]) |
                                    (static_cast<std::uint16_t>(static_cast<std::uint8_t>(at[1]))
                                     << 8));
}

void put_u64(std::byte* at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) at[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

std::uint64_t get_u64(const std::byte* at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(at[i]))
                                   << (8 * i);
  return v;
}

}  // namespace

void encode(const Record& rec, std::span<std::byte, kRecordSize> out) {
  std::memset(out.data(), 0, kRecordSize);
  std::byte* p = out.data();

  // [0]   PC packet.
  p[0] = static_cast<std::byte>(kHdrPc);
  put_u64(p + 1, rec.pc);
  // [9]   operation type packet: payload bit0 = store.
  p[9] = static_cast<std::byte>(kHdrOpType);
  p[10] = static_cast<std::byte>(rec.op == MemOp::kStore ? 0x01 : 0x00);
  // [11]  events packet (16-bit).
  p[11] = static_cast<std::byte>(kHdrEvents);
  put_u16(p + 12, rec.events);
  // [14]  total latency counter.
  p[14] = static_cast<std::byte>(kHdrLatTotal);
  put_u16(p + 15, rec.total_latency);
  // [17]  issue latency counter.
  p[17] = static_cast<std::byte>(kHdrLatIssue);
  put_u16(p + 18, rec.issue_latency);
  // [20]  translation latency counter.
  p[20] = static_cast<std::byte>(kHdrLatTranslation);
  put_u16(p + 21, rec.translation_latency);
  // [23]  data source packet (memory level).
  p[23] = static_cast<std::byte>(kHdrDataSource);
  p[24] = static_cast<std::byte>(static_cast<std::uint8_t>(rec.level));
  // [25..29] padding (zero).
  // [30]  data virtual address packet - the bytes NMO keys on.
  p[kAddrHeaderOffset] = static_cast<std::byte>(kHdrAddress);
  put_u64(p + kAddrOffset, rec.vaddr);
  // [39..54] padding (zero).
  // [55]  timestamp packet, 64-bit payload ends the record.
  p[kTsHeaderOffset] = static_cast<std::byte>(kHdrTimestamp);
  put_u64(p + kTsOffset, rec.timestamp);
}

DecodeResult decode(std::span<const std::byte> in) {
  if (in.size() < kRecordSize) {
    return {.record = std::nullopt, .error = DecodeError::kShortBuffer};
  }
  const std::byte* p = in.data();
  if (static_cast<std::uint8_t>(p[kAddrHeaderOffset]) != kHdrAddress) {
    return {.record = std::nullopt, .error = DecodeError::kBadAddressHeader};
  }
  if (static_cast<std::uint8_t>(p[kTsHeaderOffset]) != kHdrTimestamp) {
    return {.record = std::nullopt, .error = DecodeError::kBadTimestampHeader};
  }
  Record rec;
  rec.vaddr = get_u64(p + kAddrOffset);
  rec.timestamp = get_u64(p + kTsOffset);
  if (rec.vaddr == 0) {
    return {.record = std::nullopt, .error = DecodeError::kZeroAddress};
  }
  if (rec.timestamp == 0) {
    return {.record = std::nullopt, .error = DecodeError::kZeroTimestamp};
  }

  // Optional auxiliary packets; tolerate their absence so the decoder can
  // consume traces from other producers.
  if (static_cast<std::uint8_t>(p[0]) == kHdrPc) rec.pc = get_u64(p + 1);
  if (static_cast<std::uint8_t>(p[9]) == kHdrOpType) {
    rec.op = (static_cast<std::uint8_t>(p[10]) & 0x01) ? MemOp::kStore : MemOp::kLoad;
  }
  if (static_cast<std::uint8_t>(p[11]) == kHdrEvents) rec.events = get_u16(p + 12);
  if (static_cast<std::uint8_t>(p[14]) == kHdrLatTotal) rec.total_latency = get_u16(p + 15);
  if (static_cast<std::uint8_t>(p[17]) == kHdrLatIssue) rec.issue_latency = get_u16(p + 18);
  if (static_cast<std::uint8_t>(p[20]) == kHdrLatTranslation) {
    rec.translation_latency = get_u16(p + 21);
  }
  if (static_cast<std::uint8_t>(p[23]) == kHdrDataSource) {
    const auto lvl = static_cast<std::uint8_t>(p[24]);
    rec.level = lvl < kNumMemLevels ? static_cast<MemLevel>(lvl) : level_from_events(rec.events);
  } else {
    rec.level = level_from_events(rec.events);
  }
  return {.record = rec, .error = std::nullopt};
}

MemLevel level_from_events(std::uint16_t events) {
  if (events & kEvtLlcMiss) return MemLevel::kDRAM;
  if (events & kEvtLlcAccess) return MemLevel::kSLC;
  if (events & kEvtL1Refill) return MemLevel::kL2;
  return MemLevel::kL1;
}

std::uint16_t events_for_level(MemLevel level, bool tlb_miss) {
  std::uint16_t ev = kEvtRetired;
  switch (level) {
    case MemLevel::kL1:
      break;
    case MemLevel::kL2:
      ev |= kEvtL1Refill;
      break;
    case MemLevel::kSLC:
      ev |= kEvtL1Refill | kEvtLlcAccess;
      break;
    case MemLevel::kDRAM:
      ev |= kEvtL1Refill | kEvtLlcAccess | kEvtLlcMiss;
      break;
  }
  if (tlb_miss) ev |= kEvtTlbWalk;
  return ev;
}

}  // namespace nmo::spe
