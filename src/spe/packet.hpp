// ARM SPE sample record encoding and decoding.
//
// SPE emits each sample as a sequence of packets.  NMO relies on the
// concrete layout produced by the perf arm_spe driver on the paper's
// testbed: records are "64 bytes large and aligned", the data virtual
// address is "a 64-bit value at an offset of 31 bytes from the base of the
// packet" prefaced by the header byte 0xb2, and the timestamp is "at the
// end of the packet at a 56-byte offset from the base" prefaced by 0x71
// (section IV-A).  The encoder here produces exactly that layout; the
// decoder applies NMO's validation rules: a record is skipped if either
// header byte is wrong or if the address or timestamp is zero.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "common/types.hpp"

namespace nmo::spe {

/// Fixed record geometry (see file comment).
inline constexpr std::size_t kRecordSize = 64;
inline constexpr std::size_t kAddrHeaderOffset = 30;
inline constexpr std::size_t kAddrOffset = 31;
inline constexpr std::size_t kTsHeaderOffset = 55;
inline constexpr std::size_t kTsOffset = 56;

/// Packet header bytes.  kHdrAddress and kHdrTimestamp are the values NMO
/// checks (0xb2 / 0x71); the others follow the SPE packet family encodings
/// for the auxiliary packets the record carries.
inline constexpr std::uint8_t kHdrPc = 0xb0;           // instruction address packet
inline constexpr std::uint8_t kHdrAddress = 0xb2;      // data virtual address packet
inline constexpr std::uint8_t kHdrTimestamp = 0x71;    // timestamp packet
inline constexpr std::uint8_t kHdrEvents = 0x52;       // events packet (16-bit payload)
inline constexpr std::uint8_t kHdrOpType = 0x49;       // operation type: load/store
inline constexpr std::uint8_t kHdrLatTotal = 0x98;     // counter: total latency
inline constexpr std::uint8_t kHdrLatIssue = 0x99;     // counter: issue latency
inline constexpr std::uint8_t kHdrLatTranslation = 0x9a;  // counter: translation latency
inline constexpr std::uint8_t kHdrDataSource = 0x43;   // data source (memory level)
inline constexpr std::uint8_t kHdrPadding = 0x00;

/// Events packet bits (subset of the SPE events byte meanings).
enum EventBit : std::uint16_t {
  kEvtRetired = 1u << 1,        ///< Operation architecturally retired.
  kEvtL1Refill = 1u << 2,       ///< L1D refill (access missed L1).
  kEvtTlbWalk = 1u << 3,        ///< Translation walked the page table.
  kEvtNotTaken = 1u << 4,
  kEvtMispredict = 1u << 5,
  kEvtLlcAccess = 1u << 6,      ///< Reached the last-level cache.
  kEvtLlcMiss = 1u << 7,        ///< Missed the last-level cache (DRAM).
  kEvtRemote = 1u << 8,         ///< Serviced by a remote socket.
  kEvtCollision = 1u << 11,     ///< Sample collided in the profiling buffer.
};

/// Decoded (or to-be-encoded) sample record.
struct Record {
  Addr pc = 0;
  Addr vaddr = 0;
  std::uint64_t timestamp = 0;   ///< SPE timer cycles (pre-conversion).
  MemOp op = MemOp::kLoad;
  MemLevel level = MemLevel::kL1;
  std::uint16_t events = 0;      ///< EventBit mask.
  std::uint16_t total_latency = 0;
  std::uint16_t issue_latency = 0;
  std::uint16_t translation_latency = 0;
};

/// Serializes `rec` into the 64-byte wire layout.
void encode(const Record& rec, std::span<std::byte, kRecordSize> out);

/// Reasons a record fails NMO's validation (kept for diagnostics).
enum class DecodeError {
  kShortBuffer,
  kBadAddressHeader,
  kBadTimestampHeader,
  kZeroAddress,
  kZeroTimestamp,
};

/// Result of decoding: a record or the reason it was skipped.
struct DecodeResult {
  std::optional<Record> record;
  std::optional<DecodeError> error;

  [[nodiscard]] bool ok() const { return record.has_value(); }
};

/// Parses one record, applying NMO's skip rules (invalid packets "could be
/// caused by sample collision if it were sampled before the previous
/// sampled operation has not finished its execution pipeline").
DecodeResult decode(std::span<const std::byte> in);

/// Infers the MemLevel from the events mask alone; used when the data
/// source packet is absent (the decoder prefers the explicit packet).
[[nodiscard]] MemLevel level_from_events(std::uint16_t events);

/// Builds the events mask appropriate for an access serviced by `level`.
[[nodiscard]] std::uint16_t events_for_level(MemLevel level, bool tlb_miss);

}  // namespace nmo::spe
