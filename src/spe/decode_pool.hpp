// Parallel sharded decode pipeline for SPE aux data.
//
// The serial consumer (spe/aux_consumer.hpp) decodes every 64-byte record
// inline on the monitor thread; at production scale the monitor is bounded
// by decode throughput, which is exactly why the paper sweeps period and
// aux-buffer size (Figs. 7-9): whatever cannot be drained in time is lost.
// DecodePool decouples draining from decoding: the producer (the monitor
// loop) packs raw 64-byte records into fixed-size RecordBatches and fans
// them out to N worker shards, one lock-free SPSC batch queue per shard
// (same head/tail cursor discipline as kernel/ring_buffer.hpp, with atomics
// because the two sides really are different threads here).  Records are
// sharded by producing core, so each shard observes one or more cores'
// streams in order and a per-shard sink never needs a lock.
//
// Two completion disciplines are offered:
//  * sync() is the classic fork/join barrier: it waits until every
//    submitted batch has been decoded, so callers that sync at the end of
//    a drain round observe exactly the counts the serial path would have
//    produced, and per-shard traces can be merged deterministically at
//    finalize (core/trace.hpp sort_canonical);
//  * epoch tickets (mark_epoch / epoch_done / wait_epoch) let a staged
//    producer close one drain round as an *epoch* and later observe (or
//    wait for) just that epoch's retirement, without fencing batches
//    submitted afterwards.  This is what the async drain pipeline
//    (sim/drain_service.hpp) uses to overlap decode of round N with the
//    drain of round N+1.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "common/thread_safety.hpp"
#include "common/types.hpp"
#include "spe/packet.hpp"
#include "sys/topology.hpp"

namespace nmo::spe {

/// Where decode-shard workers run relative to the cores whose aux buffers
/// they consume.  Placement is strictly a host-thread concern: the
/// core -> shard mapping (shard_of) is identical under every policy, so
/// canonical CSV/MD5 output is byte-identical to an unpinned run.
enum class PlacementPolicy : std::uint8_t {
  kNone = 0,      ///< No pinning; the OS places workers (the default).
  /// Pack shard workers compactly onto the fewest nodes, filling node 0
  /// first: trace assembly stays socket-local at the cost of cross-socket
  /// aux reads from remote producers.
  kPackShards,
  /// Pin each shard to the node owning the majority of the cores it
  /// consumes (cores c with c % shards == shard), so aux bytes are decoded
  /// where they were produced.
  kNearProducer,
};

[[nodiscard]] std::string_view to_string(PlacementPolicy policy) noexcept;
/// Parses "none" / "pack" / "near-producer" (CLI and bench flags).
[[nodiscard]] std::optional<PlacementPolicy> parse_placement_policy(std::string_view text);

/// Placement configuration of a DecodePool (and the drain-service consumer
/// thread that feeds it).
struct PlacementOptions {
  PlacementPolicy policy = PlacementPolicy::kNone;
  /// Topology the policy maps shards onto.  Empty with a non-kNone policy
  /// discovers the host topology at pool construction; tests and the
  /// simulator inject sys::CpuTopology::synthetic instead.
  sys::CpuTopology topology;
};

/// Dense node index shard `shard` of `shards` is placed on under `policy`.
/// Pure and deterministic - the sim's remote-drain model and the host
/// pinning path share it, so the modeled and the real placement agree.
[[nodiscard]] std::uint32_t placement_node(PlacementPolicy policy,
                                           const sys::CpuTopology& topology,
                                           std::uint32_t shard, std::uint32_t shards);

/// A fixed-capacity batch of raw 64-byte SPE records from one core: the
/// unit of transport between the drain loop and a decode shard.
struct RecordBatch {
  /// Records per batch: 64 x 64 B = 4 KiB per queue slot, large enough to
  /// amortize the queue handoff, small enough to keep shards load-balanced.
  static constexpr std::size_t kMaxRecords = 64;

  CoreId core = 0;
  std::uint32_t records = 0;  ///< Occupied records in `bytes`.
  std::array<std::byte, kMaxRecords * kRecordSize> bytes;

  [[nodiscard]] std::span<const std::byte> payload() const {
    return std::span<const std::byte>(bytes.data(), records * kRecordSize);
  }
};

/// Lock-free single-producer/single-consumer ring of RecordBatches.  The
/// producer is the drain loop; the consumer is one shard worker.
class SpscBatchQueue {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpscBatchQueue(std::size_t capacity);

  /// Producer side; returns false when the ring is full.
  bool try_push(const RecordBatch& batch);
  /// Consumer side; returns false when the ring is empty.
  bool try_pop(RecordBatch& out);

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<RecordBatch> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< Next write slot (producer).
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< Next read slot (consumer).
};

/// Result of decoding one chunk of raw records.
struct DecodedChunk {
  std::uint32_t ok = 0;       ///< Valid records written to `out`.
  std::uint32_t skipped = 0;  ///< Records failing NMO's validation rules.
};

/// Decodes every whole 64-byte record in `raw` (at most out.size() of
/// them), writing valid ones to the front of `out`.  The single decode
/// loop shared by the serial inline consumer and the pool workers, so the
/// two paths cannot drift apart.
DecodedChunk decode_chunk(std::span<const std::byte> raw, std::span<Record> out);

class DecodePool {
 public:
  /// Decode tallies, aggregated across shards (valid after sync()).
  struct DecodeCounts {
    std::uint64_t records_ok = 0;
    std::uint64_t records_skipped = 0;
    /// Producer queue-full spins in submit(): each one is a failed push
    /// that cost the drain loop a yield - the backpressure signal that the
    /// decode shards (not the aux buffer) are the bottleneck.
    std::uint64_t producer_stalls = 0;
  };

  /// Receives every decoded batch on the shard's worker thread.  `shard` is
  /// the worker index, so a sink writing into per-shard storage needs no
  /// locking.  May be empty (counting-only runs).
  using BatchSink = std::function<void(std::span<const Record>, CoreId, std::uint32_t shard)>;

  /// Spawns `shards` worker threads, each owning one SPSC queue of
  /// `queue_capacity` batches.
  explicit DecodePool(std::uint32_t shards, BatchSink sink = {},
                      std::size_t queue_capacity = 256);
  /// Same, with a shard-placement policy: workers are named nmo-dec<N> and
  /// (policy != kNone) pinned to their placement_node's cpus.  Placement
  /// never changes shard_of(), so output stays byte-identical.
  DecodePool(std::uint32_t shards, BatchSink sink, std::size_t queue_capacity,
             PlacementOptions placement);
  ~DecodePool();

  DecodePool(const DecodePool&) = delete;
  DecodePool& operator=(const DecodePool&) = delete;

  /// Producer side (one thread): splits `raw` into RecordBatches and
  /// enqueues them on core's shard.  Blocks (spin + yield) while the shard
  /// queue is full - backpressure instead of loss, matching the semantics
  /// of the serial inline decode.  `raw.size()` must be a multiple of
  /// kRecordSize.
  void submit(std::span<const std::byte> raw, CoreId core);

  /// Barrier: returns once every submitted batch has been decoded and its
  /// sink call has returned.  Afterwards counts() and all per-shard sink
  /// state are coherent with the producer thread.
  void sync();

  /// Epoch completion ticket: a per-shard snapshot of the submission
  /// cursors.  The epoch it closes has retired once every shard's
  /// processed cursor has reached its snapshot.  Only the producer thread
  /// may take tickets (the snapshot must be stable with respect to its own
  /// submits); any thread may check or wait on one.
  struct EpochTicket {
    std::vector<std::uint64_t> targets;  ///< Per-shard submitted marks.
  };

  /// Closes the current epoch: everything submitted so far belongs to it.
  [[nodiscard]] EpochTicket mark_epoch() const;
  /// True once every batch of the ticket's epoch has been decoded and its
  /// sink call has returned.
  [[nodiscard]] bool epoch_done(const EpochTicket& ticket) const;
  /// Blocks until epoch_done(ticket); unlike sync() it does not fence
  /// batches submitted after the ticket was taken.
  void wait_epoch(const EpochTicket& ticket);

  [[nodiscard]] std::uint32_t shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  [[nodiscard]] std::uint32_t shard_of(CoreId core) const {
    return static_cast<std::uint32_t>(core % shards_.size());
  }

  /// Aggregated decode tallies; call sync() first.
  [[nodiscard]] DecodeCounts counts() const;
  /// Resets the tallies (between bench iterations); call sync() first.
  void reset_counts();

  [[nodiscard]] PlacementPolicy placement_policy() const { return placement_.policy; }
  [[nodiscard]] const sys::CpuTopology& topology() const { return placement_.topology; }
  /// Shard workers whose host affinity call succeeded (advisory telemetry;
  /// 0 under kNone or when the host rejects the synthetic cpu ids).
  [[nodiscard]] std::uint32_t pinned_shards() const {
    return pinned_shards_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}

    SpscBatchQueue queue;
    /// Batches handed to the queue / fully decoded; equality means idle.
    alignas(64) std::atomic<std::uint64_t> submitted{0};
    alignas(64) std::atomic<std::uint64_t> processed{0};
    std::uint64_t records_ok = 0;       ///< Worker-private until sync().
    std::uint64_t records_skipped = 0;  ///< Worker-private until sync().
    /// Guards nothing: taken empty by the producer purely to close the
    /// worker's predicate-check-then-block window (no lost wakeups).
    core::Mutex wake_mutex{"DecodePool::wake"};
    core::CondVar wake_cv;
    std::thread worker;
  };

  void worker_loop(Shard& shard, std::uint32_t index);

  BatchSink sink_;
  PlacementOptions placement_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint32_t> pinned_shards_{0};
  std::atomic<bool> stop_{false};
  /// Only the producer writes this; atomic so counts() can read it from
  /// any thread without a data race.
  alignas(64) std::atomic<std::uint64_t> producer_stalls_{0};
};

}  // namespace nmo::spe
