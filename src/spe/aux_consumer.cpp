#include "spe/aux_consumer.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

namespace nmo::spe {

std::uint64_t AuxConsumer::drain(kern::PerfEvent& ev) {
  std::uint64_t bytes = 0;
  std::array<Record, RecordBatch::kMaxRecords> decoded;
  while (auto rec = ev.read_record()) {
    switch (rec->header.type) {
      case kern::RecordType::kAux: {
        kern::AuxRecord aux{};
        if (rec->payload.size() < sizeof(aux)) break;
        std::memcpy(&aux, rec->payload.data(), sizeof(aux));
        ++counts_.aux_records;
        if (aux.flags & kern::kAuxFlagCollision) ++counts_.collision_flags;
        if (aux.flags & kern::kAuxFlagTruncated) ++counts_.truncated_flags;

        std::vector<std::byte> data(aux.aux_size);
        ev.read_aux(aux.aux_offset, data);
        const std::size_t whole = data.size() / kRecordSize * kRecordSize;
        if (pool_ != nullptr) {
          // Parallel path: hand the raw records to the shard queues; the
          // aux space can be recycled as soon as the bytes are copied out.
          pool_->submit(std::span<const std::byte>(data.data(), whole), ev.core());
        } else {
          // Serial path: decode inline with the same chunk loop the pool
          // workers use, flushing valid records to the sink in batches.
          constexpr std::size_t kChunkBytes = RecordBatch::kMaxRecords * kRecordSize;
          for (std::size_t off = 0; off < whole; off += kChunkBytes) {
            const std::size_t len = std::min(kChunkBytes, whole - off);
            const DecodedChunk chunk =
                decode_chunk(std::span<const std::byte>(data).subspan(off, len), decoded);
            counts_.records_ok += chunk.ok;
            counts_.records_skipped += chunk.skipped;
            if (batch_sink_ && chunk.ok > 0) {
              batch_sink_(std::span<const Record>(decoded.data(), chunk.ok), ev.core());
            }
          }
        }
        ev.consume_aux(aux.aux_offset + aux.aux_size);
        bytes += aux.aux_size;
        break;
      }
      case kern::RecordType::kThrottle:
        ++counts_.throttle_records;
        break;
      case kern::RecordType::kUnthrottle:
        break;
      case kern::RecordType::kLost: {
        kern::LostRecord lost{};
        if (rec->payload.size() >= sizeof(lost)) {
          std::memcpy(&lost, rec->payload.data(), sizeof(lost));
          counts_.lost_records += lost.lost;
        } else {
          ++counts_.lost_records;
        }
        break;
      }
      default:
        break;
    }
  }
  return bytes;
}

void AuxConsumer::sync() {
  if (pool_ == nullptr) return;
  pool_->sync();
  const auto decoded = pool_->counts();
  counts_.records_ok = decoded.records_ok;
  counts_.records_skipped = decoded.records_skipped;
}

void AuxConsumer::reset_counts() {
  counts_ = Counts{};
  if (pool_ != nullptr) {
    pool_->sync();
    pool_->reset_counts();
  }
}

}  // namespace nmo::spe
