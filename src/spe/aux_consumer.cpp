#include "spe/aux_consumer.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

namespace nmo::spe {

std::uint64_t AuxConsumer::drain(kern::PerfEvent& ev) {
  std::vector<RawChunk> chunks;
  const std::uint64_t bytes = drain_raw(ev, chunks);
  decode_chunks(chunks);
  return bytes;
}

std::uint64_t AuxConsumer::drain_raw(kern::PerfEvent& ev, std::vector<RawChunk>& out) {
  std::uint64_t bytes = 0;
  while (auto rec = ev.read_record()) {
    switch (rec->header.type) {
      case kern::RecordType::kAux: {
        kern::AuxRecord aux{};
        if (rec->payload.size() < sizeof(aux)) break;
        std::memcpy(&aux, rec->payload.data(), sizeof(aux));
        ++counts_.aux_records;
        if (aux.flags & kern::kAuxFlagCollision) ++counts_.collision_flags;
        if (aux.flags & kern::kAuxFlagTruncated) ++counts_.truncated_flags;

        RawChunk chunk;
        chunk.core = ev.core();
        chunk.bytes.resize(aux.aux_size);
        ev.read_aux(aux.aux_offset, chunk.bytes);
        // Trailing partial records are dropped here, exactly as the inline
        // decode ignored them; the aux space is recycled either way.
        chunk.bytes.resize(chunk.bytes.size() / kRecordSize * kRecordSize);
        if (!chunk.bytes.empty()) out.push_back(std::move(chunk));
        ev.consume_aux(aux.aux_offset + aux.aux_size);
        bytes += aux.aux_size;
        break;
      }
      case kern::RecordType::kThrottle:
        ++counts_.throttle_records;
        break;
      case kern::RecordType::kUnthrottle:
        break;
      case kern::RecordType::kLost: {
        kern::LostRecord lost{};
        if (rec->payload.size() >= sizeof(lost)) {
          std::memcpy(&lost, rec->payload.data(), sizeof(lost));
          counts_.lost_records += lost.lost;
        } else {
          ++counts_.lost_records;
        }
        break;
      }
      default:
        break;
    }
  }
  return bytes;
}

DecodedChunk AuxConsumer::decode_raw(const RawChunk& chunk) const {
  DecodedChunk total;
  std::array<Record, RecordBatch::kMaxRecords> decoded;
  // The same chunk loop the pool workers use, so the two paths cannot
  // drift apart: decode in RecordBatch-sized spans, flush valid records to
  // the sink per span.
  constexpr std::size_t kChunkBytes = RecordBatch::kMaxRecords * kRecordSize;
  const std::span<const std::byte> raw(chunk.bytes);
  for (std::size_t off = 0; off < raw.size(); off += kChunkBytes) {
    const std::size_t len = std::min(kChunkBytes, raw.size() - off);
    const DecodedChunk piece = decode_chunk(raw.subspan(off, len), decoded);
    total.ok += piece.ok;
    total.skipped += piece.skipped;
    if (batch_sink_ && piece.ok > 0) {
      batch_sink_(std::span<const Record>(decoded.data(), piece.ok), chunk.core);
    }
  }
  return total;
}

void AuxConsumer::decode_chunks(std::span<const RawChunk> chunks) {
  for (const RawChunk& chunk : chunks) {
    if (pool_ != nullptr) {
      // Parallel path: hand the raw records to the shard queues; the aux
      // space was already recycled when the bytes were copied out.
      pool_->submit(chunk.bytes, chunk.core);
    } else {
      const DecodedChunk decoded = decode_raw(chunk);
      counts_.records_ok += decoded.ok;
      counts_.records_skipped += decoded.skipped;
      if (progress_ && decoded.ok > 0) progress_(counts_.records_ok);
    }
  }
}

void AuxConsumer::sync() {
  if (pool_ == nullptr) return;
  pool_->sync();
  const auto decoded = pool_->counts();
  const bool advanced = decoded.records_ok > counts_.records_ok;
  counts_.records_ok = decoded.records_ok;
  counts_.records_skipped = decoded.records_skipped;
  if (progress_ && advanced) progress_(counts_.records_ok);
}

void AuxConsumer::reset_counts() {
  counts_ = Counts{};
  if (pool_ != nullptr) {
    pool_->sync();
    pool_->reset_counts();
  }
}

}  // namespace nmo::spe
