#include "spe/aux_consumer.hpp"

#include <cstring>
#include <vector>

namespace nmo::spe {

std::uint64_t AuxConsumer::drain(kern::PerfEvent& ev) {
  std::uint64_t bytes = 0;
  while (auto rec = ev.read_record()) {
    switch (rec->header.type) {
      case kern::RecordType::kAux: {
        kern::AuxRecord aux{};
        if (rec->payload.size() < sizeof(aux)) break;
        std::memcpy(&aux, rec->payload.data(), sizeof(aux));
        ++counts_.aux_records;
        if (aux.flags & kern::kAuxFlagCollision) ++counts_.collision_flags;
        if (aux.flags & kern::kAuxFlagTruncated) ++counts_.truncated_flags;

        std::vector<std::byte> data(aux.aux_size);
        ev.read_aux(aux.aux_offset, data);
        for (std::size_t off = 0; off + kRecordSize <= data.size(); off += kRecordSize) {
          const auto result = decode(std::span<const std::byte>(data).subspan(off, kRecordSize));
          if (result.ok()) {
            ++counts_.records_ok;
            if (sink_) sink_(*result.record, ev.core());
          } else {
            ++counts_.records_skipped;
          }
        }
        ev.consume_aux(aux.aux_offset + aux.aux_size);
        bytes += aux.aux_size;
        break;
      }
      case kern::RecordType::kThrottle:
        ++counts_.throttle_records;
        break;
      case kern::RecordType::kUnthrottle:
        break;
      case kern::RecordType::kLost: {
        kern::LostRecord lost{};
        if (rec->payload.size() >= sizeof(lost)) {
          std::memcpy(&lost, rec->payload.data(), sizeof(lost));
          counts_.lost_records += lost.lost;
        } else {
          ++counts_.lost_records;
        }
        break;
      }
      default:
        break;
    }
  }
  return bytes;
}

}  // namespace nmo::spe
