// The per-core ARM SPE sampling unit.
//
// Figure 1 of the paper describes the pipeline this class models:
//
//   1. the sampling interval counter is reset to the user-defined period
//      (plus random perturbation to avoid bias) and decremented after each
//      operation is decoded;
//   2. when it reaches zero, that operation is selected and tracked through
//      the execution pipeline, collecting timings, events, data address and
//      memory level;
//   3. if a new selection fires while the previous sampled operation is
//      still in flight the new one is dropped and a sample collision is
//      recorded ("SPE receives the next sampling command before it has
//      finished processing the previous one", section VII-A);
//   4. completed samples pass the programmable filter (operation type,
//      minimum latency) and surviving records are encoded as packets into
//      the aux buffer of the owning perf event.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kernel/perf_event.hpp"
#include "spe/packet.hpp"

namespace nmo::spe {

/// Classification of a decoded operation for filtering purposes.
enum class OpClass : std::uint8_t {
  kOther = 0,   ///< Non-memory, non-branch operation.
  kLoad = 1,
  kStore = 2,
  kBranch = 3,
};

/// Everything the device learns about a decoded operation.
struct OpInfo {
  OpClass cls = OpClass::kOther;
  Addr pc = 0;
  Addr vaddr = 0;
  MemLevel level = MemLevel::kL1;
  bool tlb_miss = false;
  Cycles latency = 1;           ///< Dispatch-to-complete occupancy in cycles.
  std::uint64_t now_cycles = 0; ///< Decode time on the SPE timer.
};

/// Filter programming decoded from perf_event_attr.config.
struct SampleFilter {
  bool loads = true;
  bool stores = true;
  bool branches = false;
  std::uint16_t min_latency = 0;

  static SampleFilter from_config(std::uint64_t config);

  [[nodiscard]] bool passes(OpClass cls, Cycles latency) const;
};

class Sampler {
 public:
  struct Stats {
    std::uint64_t selections = 0;    ///< Interval counter expiries.
    std::uint64_t collisions = 0;    ///< Selections dropped: pipeline busy.
    std::uint64_t filtered = 0;      ///< Completed samples failing the filter.
    std::uint64_t written = 0;       ///< Records written to the aux buffer.
    std::uint64_t write_failed = 0;  ///< Records lost: aux buffer full.
    std::uint64_t throttled = 0;     ///< Selections suppressed by throttling.
  };

  /// `event` must be an SPE-mode perf event; the sampler writes records
  /// through it and respects its enable/throttle state.  `jitter` enables
  /// the +-128 operation perturbation of the interval counter.
  Sampler(kern::PerfEvent* event, Rng rng);

  // -- exact mode (trace driver) --------------------------------------------
  /// Advances the interval counter over `n` non-memory operations decoded
  /// starting at `start_cycles`, each taking `cycles_per_op` cycles.
  /// Selections landing inside the gap sample short-lived ALU ops that the
  /// load/store filter will reject.
  void advance_other(std::uint64_t n, std::uint64_t start_cycles, double cycles_per_op);

  /// Feeds one decoded memory operation.
  void on_mem_op(const OpInfo& op);

  // -- shared core (also used by the statistical driver) ---------------------
  /// Draws the next interval: period with random perturbation.
  [[nodiscard]] std::uint64_t draw_interval();

  /// Handles one selection event (collision check + tracking start).
  void select(const OpInfo& op);

  /// Completes the pending sample if its pipeline finished by `now_cycles`.
  void finish_due(std::uint64_t now_cycles);

  /// Unconditionally completes any pending sample (end of run), then
  /// flushes any staged records to the aux buffer.
  void flush(std::uint64_t now_cycles);

  /// Write-combining: completed records are staged and flushed to the aux
  /// buffer in batches of `n` via kern::PerfEvent::aux_write_batch.  The
  /// default n == 1 flushes every record immediately - byte-identical to
  /// the per-record path - while larger batches remove the per-record call
  /// boundary on the producer side at the cost of deferring the records'
  /// visibility to the consumer until the batch fills (or flush_writes()).
  void set_write_batch(std::uint32_t n);
  /// Flushes staged records now; no-op when the stage is empty.
  void flush_writes();

  /// Remaining decoded operations until the next selection.
  [[nodiscard]] std::uint64_t counter() const { return counter_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SampleFilter& filter() const { return filter_; }
  [[nodiscard]] kern::PerfEvent& event() { return *event_; }

 private:
  void complete(const OpInfo& op, std::uint64_t completion_cycles);

  kern::PerfEvent* event_;
  Rng rng_;
  std::uint64_t period_;
  bool jitter_ = true;
  SampleFilter filter_;
  std::uint64_t counter_;

  /// The in-flight tracked operation, if any.
  struct Pending {
    OpInfo op;
    std::uint64_t complete_at = 0;
  };
  std::optional<Pending> pending_;
  Stats stats_;

  /// Write-combining stage (set_write_batch): encoded records and their
  /// per-record timestamps awaiting one aux_write_batch call.
  std::uint32_t write_batch_ = 1;
  std::vector<std::byte> staged_bytes_;
  std::vector<std::uint64_t> staged_ns_;
};

}  // namespace nmo::spe
