#include "spe/sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernel/perf_abi.hpp"

namespace nmo::spe {

SampleFilter SampleFilter::from_config(std::uint64_t config) {
  SampleFilter f;
  f.loads = (config & kern::kSpeLoadFilter) != 0;
  f.stores = (config & kern::kSpeStoreFilter) != 0;
  f.branches = (config & kern::kSpeBranchFilter) != 0;
  f.min_latency = static_cast<std::uint16_t>((config >> kern::kSpeMinLatencyShift) &
                                             kern::kSpeMinLatencyMask);
  return f;
}

bool SampleFilter::passes(OpClass cls, Cycles latency) const {
  switch (cls) {
    case OpClass::kLoad:
      if (!loads) return false;
      break;
    case OpClass::kStore:
      if (!stores) return false;
      break;
    case OpClass::kBranch:
      if (!branches) return false;
      break;
    case OpClass::kOther:
      // Plain ALU ops never match a load/store/branch filter; with no
      // filter bits set at all, SPE records every operation.
      if (loads || stores || branches) return false;
      break;
  }
  return latency >= min_latency;
}

Sampler::Sampler(kern::PerfEvent* event, Rng rng)
    : event_(event), rng_(rng) {
  if (event_ == nullptr || event_->attr().type != kern::kPerfTypeArmSpe) {
    throw std::invalid_argument("Sampler requires an SPE-mode perf event");
  }
  period_ = event_->attr().sample_period;
  jitter_ = (event_->attr().config & kern::kSpeJitter) != 0;
  filter_ = SampleFilter::from_config(event_->attr().config);
  counter_ = draw_interval();
}

std::uint64_t Sampler::draw_interval() {
  if (!jitter_) return period_ > 0 ? period_ : 1;
  // Symmetric perturbation of up to +-128 decoded operations, modelling
  // PMSIRR.RND without introducing a systematic rate bias.  For tiny
  // periods the range shrinks so the distribution stays symmetric
  // (and therefore unbiased) after clamping.
  const auto range = static_cast<std::int64_t>(std::min<std::uint64_t>(128, period_ / 2));
  const std::int64_t jitter = static_cast<std::int64_t>(rng_.uniform(
                                  static_cast<std::uint64_t>(2 * range + 1))) -
                              range;
  const std::int64_t v = static_cast<std::int64_t>(period_) + jitter;
  return v > 1 ? static_cast<std::uint64_t>(v) : 1;
}

void Sampler::advance_other(std::uint64_t n, std::uint64_t start_cycles, double cycles_per_op) {
  std::uint64_t used = 0;
  while (n >= counter_) {
    used += counter_;
    n -= counter_;
    const auto now =
        start_cycles + static_cast<std::uint64_t>(static_cast<double>(used) * cycles_per_op);
    OpInfo op;
    op.cls = OpClass::kOther;
    op.now_cycles = now;
    op.latency = 8;  // ALU retire occupancy: a handful of cycles.
    select(op);
    counter_ = draw_interval();
  }
  counter_ -= n;
}

void Sampler::on_mem_op(const OpInfo& op) {
  if (counter_ > 1) {
    --counter_;
    return;
  }
  select(op);
  counter_ = draw_interval();
}

void Sampler::select(const OpInfo& op) {
  if (!event_->enabled()) return;
  finish_due(op.now_cycles);
  const std::uint64_t now_ns = event_->time_conv().to_ns(op.now_cycles);
  if (event_->throttled(now_ns)) {
    ++stats_.throttled;
    return;
  }
  ++stats_.selections;
  if (pending_.has_value()) {
    // Previous sampled operation still in its execution pipeline: the new
    // selection is dropped and a collision recorded (section VII-A).
    ++stats_.collisions;
    event_->note_collision();
    return;
  }
  pending_ = Pending{.op = op, .complete_at = op.now_cycles + op.latency};
}

void Sampler::finish_due(std::uint64_t now_cycles) {
  if (pending_.has_value() && pending_->complete_at <= now_cycles) {
    const Pending p = *pending_;
    pending_.reset();
    complete(p.op, p.complete_at);
  }
}

void Sampler::flush([[maybe_unused]] std::uint64_t now_cycles) {
  if (pending_.has_value()) {
    const Pending p = *pending_;
    pending_.reset();
    // The record carries the operation's own completion time even when the
    // flush happens much later (the device timestamps at retirement).
    complete(p.op, p.complete_at);
  }
  flush_writes();
}

void Sampler::set_write_batch(std::uint32_t n) {
  flush_writes();
  write_batch_ = n > 0 ? n : 1;
  staged_bytes_.reserve(static_cast<std::size_t>(write_batch_) * kRecordSize);
  staged_ns_.reserve(write_batch_);
}

void Sampler::flush_writes() {
  if (staged_ns_.empty()) return;
  const std::size_t total = staged_ns_.size();
  const std::size_t accepted = event_->aux_write_batch(staged_bytes_, kRecordSize, staged_ns_);
  stats_.written += accepted;
  stats_.write_failed += total - accepted;
  staged_bytes_.clear();
  staged_ns_.clear();
}

void Sampler::complete(const OpInfo& op, std::uint64_t completion_cycles) {
  if (!filter_.passes(op.cls, op.latency)) {
    ++stats_.filtered;
    return;
  }
  const std::uint64_t now_ns = event_->time_conv().to_ns(completion_cycles);
  if (!event_->account_samples(now_ns, 1)) {
    ++stats_.throttled;
    return;
  }

  Record rec;
  rec.pc = op.pc;
  rec.vaddr = op.vaddr;
  rec.timestamp = completion_cycles;
  rec.op = op.cls == OpClass::kStore ? MemOp::kStore : MemOp::kLoad;
  rec.level = op.level;
  rec.events = events_for_level(op.level, op.tlb_miss);
  rec.total_latency =
      static_cast<std::uint16_t>(op.latency > 0xffff ? 0xffff : op.latency);
  rec.issue_latency = static_cast<std::uint16_t>(std::min<Cycles>(op.latency, 4));
  rec.translation_latency = op.tlb_miss ? 40 : 0;

  std::array<std::byte, kRecordSize> wire{};
  encode(rec, wire);
  staged_bytes_.insert(staged_bytes_.end(), wire.begin(), wire.end());
  staged_ns_.push_back(now_ns);
  if (staged_ns_.size() >= write_batch_) flush_writes();
}

}  // namespace nmo::spe
