#include "spe/decode_pool.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

namespace nmo::spe {

std::string_view to_string(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kNone:
      return "none";
    case PlacementPolicy::kPackShards:
      return "pack";
    case PlacementPolicy::kNearProducer:
      return "near-producer";
  }
  return "?";
}

std::optional<PlacementPolicy> parse_placement_policy(std::string_view text) {
  if (text == "none") return PlacementPolicy::kNone;
  if (text == "pack") return PlacementPolicy::kPackShards;
  if (text == "near-producer") return PlacementPolicy::kNearProducer;
  return std::nullopt;
}

std::uint32_t placement_node(PlacementPolicy policy, const sys::CpuTopology& topology,
                             std::uint32_t shard, std::uint32_t shards) {
  if (policy == PlacementPolicy::kNone || topology.num_nodes() <= 1 || shards == 0) return 0;
  if (policy == PlacementPolicy::kPackShards) {
    // Compact fill: shard slots consume node cpu capacity in node order,
    // wrapping once every cpu holds a shard (shards may outnumber cpus).
    const std::uint32_t total = std::max<std::uint32_t>(1, topology.num_cpus());
    std::uint32_t slot = shard % total;
    for (std::uint32_t n = 0; n < topology.num_nodes(); ++n) {
      const auto capacity = static_cast<std::uint32_t>(topology.nodes()[n].cpus.size());
      if (slot < capacity) return n;
      slot -= capacity;
    }
    return 0;
  }
  // kNearProducer: the node owning the majority of the cores this shard
  // consumes (cores c with c % shards == shard); ties to the lowest node.
  std::vector<std::uint32_t> votes(topology.num_nodes(), 0);
  for (const auto& node : topology.nodes()) {
    for (const auto cpu : node.cpus) {
      if (cpu % shards == shard) ++votes[topology.node_of(cpu)];
    }
  }
  std::uint32_t best = 0;
  for (std::uint32_t n = 1; n < votes.size(); ++n) {
    if (votes[n] > votes[best]) best = n;
  }
  return best;
}

DecodedChunk decode_chunk(std::span<const std::byte> raw, std::span<Record> out) {
  DecodedChunk chunk;
  for (std::size_t off = 0;
       off + kRecordSize <= raw.size() && chunk.ok < out.size(); off += kRecordSize) {
    const auto result = decode(raw.subspan(off, kRecordSize));
    if (result.ok()) {
      out[chunk.ok++] = *result.record;
    } else {
      ++chunk.skipped;
    }
  }
  return chunk;
}

SpscBatchQueue::SpscBatchQueue(std::size_t capacity)
    : slots_(std::bit_ceil(std::max<std::size_t>(2, capacity))), mask_(slots_.size() - 1) {}

bool SpscBatchQueue::try_push(const RecordBatch& batch) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) return false;
  slots_[head & mask_] = batch;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

bool SpscBatchQueue::try_pop(RecordBatch& out) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail == head) return false;
  out = slots_[tail & mask_];
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

DecodePool::DecodePool(std::uint32_t shards, BatchSink sink, std::size_t queue_capacity)
    : DecodePool(shards, std::move(sink), queue_capacity, PlacementOptions{}) {}

DecodePool::DecodePool(std::uint32_t shards, BatchSink sink, std::size_t queue_capacity,
                       PlacementOptions placement)
    : sink_(std::move(sink)), placement_(std::move(placement)) {
  if (shards == 0) throw std::invalid_argument("DecodePool needs at least one shard");
  if (placement_.policy != PlacementPolicy::kNone && placement_.topology.empty()) {
    placement_.topology = sys::CpuTopology::discover();
  }
  shards_.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(queue_capacity));
  }
  for (std::uint32_t i = 0; i < shards; ++i) {
    // /proc-visible identity for external profilers and `perf top`.
    shards_[i]->worker = sys::named_thread("nmo-dec" + std::to_string(i),
                                           [this, i] { worker_loop(*shards_[i], i); });
  }
}

DecodePool::~DecodePool() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      const core::MutexLock lock(shard->wake_mutex);
    }
    shard->wake_cv.notify_one();
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void DecodePool::submit(std::span<const std::byte> raw, CoreId core) {
  Shard& shard = *shards_[shard_of(core)];
  std::size_t off = 0;
  while (off < raw.size()) {
    RecordBatch batch;
    batch.core = core;
    const std::size_t records =
        std::min<std::size_t>(RecordBatch::kMaxRecords, (raw.size() - off) / kRecordSize);
    batch.records = static_cast<std::uint32_t>(records);
    std::memcpy(batch.bytes.data(), raw.data() + off, records * kRecordSize);
    off += records * kRecordSize;

    // Backpressure: the producer waits for queue space rather than dropping
    // (loss is the device model's job, not the decode pipeline's).  Each
    // failed push is counted as a stall so EngineStats/StatResult can show
    // when decode throughput, not aux capacity, bounds the drain loop.
    std::uint64_t spins = 0;
    while (!shard.queue.try_push(batch)) {
      ++spins;
      std::this_thread::yield();
    }
    if (spins > 0) producer_stalls_.fetch_add(spins, std::memory_order_relaxed);
    shard.submitted.fetch_add(1, std::memory_order_release);
    // Taking the mutex (even empty) orders this push against the worker's
    // predicate-check-then-block window, so the notify cannot be lost.
    {
      const core::MutexLock lock(shard.wake_mutex);
    }
    shard.wake_cv.notify_one();
  }
}

void DecodePool::sync() {
  for (auto& shard : shards_) {
    const std::uint64_t target = shard->submitted.load(std::memory_order_acquire);
    while (shard->processed.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
}

DecodePool::EpochTicket DecodePool::mark_epoch() const {
  EpochTicket ticket;
  ticket.targets.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ticket.targets.push_back(shard->submitted.load(std::memory_order_acquire));
  }
  return ticket;
}

bool DecodePool::epoch_done(const EpochTicket& ticket) const {
  for (std::size_t i = 0; i < ticket.targets.size() && i < shards_.size(); ++i) {
    if (shards_[i]->processed.load(std::memory_order_acquire) < ticket.targets[i]) {
      return false;
    }
  }
  return true;
}

void DecodePool::wait_epoch(const EpochTicket& ticket) {
  while (!epoch_done(ticket)) std::this_thread::yield();
}

DecodePool::DecodeCounts DecodePool::counts() const {
  DecodeCounts total;
  for (const auto& shard : shards_) {
    total.records_ok += shard->records_ok;
    total.records_skipped += shard->records_skipped;
  }
  total.producer_stalls = producer_stalls_.load(std::memory_order_relaxed);
  return total;
}

void DecodePool::reset_counts() {
  for (auto& shard : shards_) {
    shard->records_ok = 0;
    shard->records_skipped = 0;
  }
  producer_stalls_.store(0, std::memory_order_relaxed);
}

void DecodePool::worker_loop(Shard& shard, std::uint32_t index) {
  if (placement_.policy != PlacementPolicy::kNone && placement_.topology.multi_node()) {
    const std::uint32_t node =
        placement_node(placement_.policy, placement_.topology, index,
                       static_cast<std::uint32_t>(shards_.size()));
    if (sys::pin_current_thread(placement_.topology.nodes()[node].cpus)) {
      pinned_shards_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::array<Record, RecordBatch::kMaxRecords> decoded;
  RecordBatch batch;
  std::uint32_t idle_polls = 0;
  while (true) {
    if (!shard.queue.try_pop(batch)) {
      if (stop_.load(std::memory_order_acquire)) return;
      // Spin briefly (drain rounds arrive in bursts), then park on the
      // condvar so an idle pool costs nothing between rounds.
      if (++idle_polls < 1024) {
        std::this_thread::yield();
      } else {
        core::MutexLock lock(shard.wake_mutex);
        shard.wake_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
          return stop_.load(std::memory_order_acquire) || !shard.queue.empty();
        });
        idle_polls = 0;
      }
      continue;
    }
    idle_polls = 0;

    const DecodedChunk chunk = decode_chunk(batch.payload(), decoded);
    shard.records_ok += chunk.ok;
    shard.records_skipped += chunk.skipped;
    if (sink_ && chunk.ok > 0) {
      sink_(std::span<const Record>(decoded.data(), chunk.ok), batch.core, index);
    }
    shard.processed.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace nmo::spe
