#include "workloads/inmem_als.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/nmo.h"
#include "workloads/linalg.hpp"

namespace nmo::wl {

double InMemAnalytics::compute_rmse() const {
  const std::uint32_t k = config_.rank;
  double se = 0.0;
  std::uint64_t count = 0;
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    for (std::uint64_t e = user_offsets_[u]; e < user_offsets_[u + 1]; ++e) {
      const std::uint32_t m = user_movies_[e];
      double pred = 0.0;
      for (std::uint32_t f = 0; f < k; ++f) {
        pred += user_factors_[u * k + f] * movie_factors_[m * k + f];
      }
      const double err = pred - user_ratings_[e];
      se += err * err;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(se / static_cast<double>(count)) : 0.0;
}

void InMemAnalytics::run(Executor& exec) {
  const std::uint32_t users = config_.users, movies = config_.movies, k = config_.rank;

  // --- Ratings load ---------------------------------------------------------
  nmo_start("ratings-load");
  exec.serial("ratings-load", [&](MemRecorder& mem) {
    Rng rng(config_.seed, 31);
    // Synthetic ground-truth factors generate consistent ratings so ALS has
    // structure to recover.
    std::vector<double> true_u(static_cast<std::size_t>(users) * k);
    std::vector<double> true_m(static_cast<std::size_t>(movies) * k);
    for (auto& v : true_u) v = rng.normalish(0.0, 0.5);
    for (auto& v : true_m) v = rng.normalish(0.0, 0.5);

    user_offsets_.assign(users + 1, 0);
    std::vector<std::pair<std::uint32_t, double>> per_user_tmp;
    user_movies_.clear();
    user_ratings_.clear();
    for (std::uint32_t u = 0; u < users; ++u) {
      user_offsets_[u] = user_movies_.size();
      for (std::uint32_t r = 0; r < config_.ratings_per_user; ++r) {
        const auto m = static_cast<std::uint32_t>(rng.uniform(movies));
        double rating = 3.0;
        for (std::uint32_t f = 0; f < k; ++f) rating += true_u[u * k + f] * true_m[m * k + f];
        user_movies_.push_back(m);
        user_ratings_.push_back(rating);
        mem.alu(2 + 2 * k);
      }
    }
    user_offsets_[users] = user_movies_.size();

    // Transpose into by-movie CSR.
    movie_offsets_.assign(movies + 1, 0);
    for (auto m : user_movies_) ++movie_offsets_[m + 1];
    for (std::uint32_t m = 0; m < movies; ++m) movie_offsets_[m + 1] += movie_offsets_[m];
    movie_users_.resize(user_movies_.size());
    movie_ratings_.resize(user_movies_.size());
    std::vector<std::uint64_t> cursor(movie_offsets_.begin(), movie_offsets_.end() - 1);
    for (std::uint32_t u = 0; u < users; ++u) {
      for (std::uint64_t e = user_offsets_[u]; e < user_offsets_[u + 1]; ++e) {
        const std::uint32_t m = user_movies_[e];
        movie_users_[cursor[m]] = u;
        movie_ratings_[cursor[m]] = user_ratings_[e];
        ++cursor[m];
        mem.alu(5);
      }
    }

    // Random initial factors.
    user_factors_.assign(static_cast<std::size_t>(users) * k, 0.0);
    movie_factors_.assign(static_cast<std::size_t>(movies) * k, 0.0);
    for (auto& v : user_factors_) v = rng.normalish(0.3, 0.1);
    for (auto& v : movie_factors_) v = rng.normalish(0.3, 0.1);
  });

  const std::uint64_t nnz = user_movies_.size();
  const Addr uf_base = exec.alloc("user_factors", users * k * 8ull, config_.report_scale);
  const Addr mf_base = exec.alloc("movie_factors", movies * k * 8ull, config_.report_scale);
  // Ratings arrive in batches (the in-memory dataset load ramp of Figure 2,
  // left): allocate each segment and stream it in.
  constexpr std::uint32_t kBatches = 4;
  Addr ur_base = 0, mr_base = 0;
  for (std::uint32_t b = 0; b < kBatches; ++b) {
    const std::uint64_t lo = nnz * 12ull * b / kBatches;
    const std::uint64_t hi = nnz * 12ull * (b + 1) / kBatches;
    const Addr useg = exec.alloc("ratings_by_user_batch", hi - lo, config_.report_scale);
    const Addr mseg = exec.alloc("ratings_by_movie_batch", hi - lo, config_.report_scale);
    if (b == 0) {
      ur_base = useg;
      mr_base = mseg;
    }
    exec.serial("ratings_batch", [&](MemRecorder& mem) {
      for (std::uint64_t off = lo; off < hi; off += 48) {
        mem.store(ur_base + off, 24);
        mem.store(mr_base + off, 24);
        mem.alu(6);
      }
    });
  }
  nmo_tag_addr("user_factors", uf_base, uf_base + users * k * 8ull);
  nmo_tag_addr("movie_factors", mf_base, mf_base + movies * k * 8ull);
  nmo_stop();

  // --- ALS iterations ---------------------------------------------------------
  const double lambda = config_.lambda;
  rmse_.clear();

  // One half-step: solve (F^T F + lambda I) x = F^T r for each entity.
  auto half_step = [&](const char* kernel, std::uint32_t count,
                       const std::vector<std::uint64_t>& offsets,
                       const std::vector<std::uint32_t>& others,
                       const std::vector<double>& ratings, std::vector<double>& mine,
                       const std::vector<double>& theirs, Addr mine_base, Addr theirs_base,
                       Addr ratings_base) {
    exec.parallel_for(kernel, count, [&](ThreadId, std::size_t lo, std::size_t hi,
                                         MemRecorder& mem) {
      std::vector<double> ata(static_cast<std::size_t>(k) * k);
      std::vector<double> atb(k);
      for (std::size_t i = lo; i < hi; ++i) {
        std::fill(ata.begin(), ata.end(), 0.0);
        std::fill(atb.begin(), atb.end(), 0.0);
        for (std::uint32_t f = 0; f < k; ++f) ata[f * k + f] = lambda;
        mem.load(ratings_base + i * 8);
        for (std::uint64_t e = offsets[i]; e < offsets[i + 1]; ++e) {
          const std::uint32_t o = others[e];
          const double* fo = &theirs[static_cast<std::size_t>(o) * k];
          mem.load(ratings_base + e * 12, 12);
          mem.load(theirs_base + static_cast<Addr>(o) * k * 8,
                   static_cast<std::uint8_t>(std::min<std::uint32_t>(k * 8, 255)));
          for (std::uint32_t r = 0; r < k; ++r) {
            for (std::uint32_t c = 0; c <= r; ++c) ata[r * k + c] += fo[r] * fo[c];
            atb[r] += fo[r] * ratings[e];
          }
          mem.flop(k * k + 2 * k);
          mem.alu(k);
        }
        for (std::uint32_t r = 0; r < k; ++r) {
          for (std::uint32_t c = r + 1; c < k; ++c) ata[r * k + c] = ata[c * k + r];
        }
        DenseMatrix a{ata.data(), k};
        if (solve_spd(a, atb.data())) {
          for (std::uint32_t f = 0; f < k; ++f) mine[i * k + f] = atb[f];
        }
        mem.store(mine_base + i * k * 8,
                  static_cast<std::uint8_t>(std::min<std::uint32_t>(k * 8, 255)));
        mem.flop(k * k * k / 3 + k * k);
        mem.alu(2 * k);
      }
    });
  };

  nmo_start("als-iterations");
  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    half_step("als_update_users", users, user_offsets_, user_movies_, user_ratings_,
              user_factors_, movie_factors_, uf_base, mf_base, ur_base);
    half_step("als_update_movies", movies, movie_offsets_, movie_users_, movie_ratings_,
              movie_factors_, user_factors_, mf_base, uf_base, mr_base);
    rmse_.push_back(compute_rmse());
  }
  nmo_stop();
}

}  // namespace nmo::wl
