#include "workloads/bfs.hpp"

#include <atomic>
#include <deque>

#include "core/nmo.h"

namespace nmo::wl {

std::vector<std::int32_t> reference_bfs(const CsrGraph& graph, std::uint32_t source) {
  std::vector<std::int32_t> dist(graph.num_nodes, -1);
  std::deque<std::uint32_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    for (std::uint64_t e = graph.row_offsets[v]; e < graph.row_offsets[v + 1]; ++e) {
      const std::uint32_t w = graph.columns[e];
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

void Bfs::run(Executor& exec) {
  nmo_start("graph-load");
  exec.serial("graph-load", [&](MemRecorder& mem) {
    graph_ = make_uniform_graph(config_.nodes, config_.edges_per_node, config_.seed);
    // Model the generator's stores coarsely: one store per edge plus the
    // row-offset array.
    mem.alu(static_cast<std::uint32_t>(std::min<std::uint64_t>(graph_.num_edges(), 1u << 30)));
  });
  nmo_stop();

  const std::uint32_t n = graph_.num_nodes;
  const Addr rows_base = exec.alloc("row_offsets", (n + 1) * 8);
  const Addr cols_base = exec.alloc("columns", graph_.num_edges() * 4);
  const Addr cost_base = exec.alloc("cost", n * 4);
  const Addr mask_base = exec.alloc("mask", n);
  const Addr upd_base = exec.alloc("updating_mask", n);
  const Addr vis_base = exec.alloc("visited", n);
  nmo_tag_addr("row_offsets", rows_base, rows_base + (n + 1) * 8);
  nmo_tag_addr("columns", cols_base, cols_base + graph_.num_edges() * 4);
  nmo_tag_addr("cost", cost_base, cost_base + n * 4);

  cost_.assign(n, -1);
  std::vector<std::uint8_t> mask(n, 0), updating(n, 0), visited(n, 0);
  cost_[config_.source] = 0;
  mask[config_.source] = 1;
  visited[config_.source] = 1;

  levels_ = 0;
  bool frontier_nonempty = true;
  nmo_start("traversal");
  while (frontier_nonempty) {
    ++levels_;
    // Kernel 1: expand the frontier.
    exec.parallel_for("bfs_kernel1", n,
                      [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
                        for (std::size_t v = lo; v < hi; ++v) {
                          mem.load(mask_base + v, 1);
                          if (!mask[v]) {
                            mem.alu(1);
                            continue;
                          }
                          mask[v] = 0;
                          mem.store(mask_base + v, 1);
                          mem.load(rows_base + v * 8);
                          mem.load(rows_base + (v + 1) * 8);
                          for (std::uint64_t e = graph_.row_offsets[v];
                               e < graph_.row_offsets[v + 1]; ++e) {
                            const std::uint32_t w = graph_.columns[e];
                            mem.load(cols_base + e * 4, 4);
                            mem.load(vis_base + w, 1);
                            if (!visited[w]) {
                              cost_[w] = cost_[v] + 1;
                              updating[w] = 1;
                              mem.load(cost_base + v * 4, 4);
                              mem.store(cost_base + static_cast<Addr>(w) * 4, 4);
                              mem.store(upd_base + w, 1);
                            }
                            mem.alu(3);
                          }
                        }
                      });
    // Kernel 2: promote updated nodes into the next frontier.
    std::atomic<bool> any{false};
    exec.parallel_for("bfs_kernel2", n,
                      [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
                        bool local_any = false;
                        for (std::size_t v = lo; v < hi; ++v) {
                          mem.load(upd_base + v, 1);
                          if (updating[v]) {
                            mask[v] = 1;
                            visited[v] = 1;
                            updating[v] = 0;
                            local_any = true;
                            mem.store(mask_base + v, 1);
                            mem.store(vis_base + v, 1);
                            mem.store(upd_base + v, 1);
                          }
                          mem.alu(2);
                        }
                        if (local_any) any.store(true, std::memory_order_relaxed);
                      });
    frontier_nonempty = any.load();
  }
  nmo_stop();
}

}  // namespace nmo::wl
