#include "workloads/pagerank.hpp"

#include <cmath>

#include "core/nmo.h"

namespace nmo::wl {

double PageRank::rank_sum() const {
  double s = 0.0;
  for (double r : ranks_) s += r;
  return s;
}

void PageRank::run(Executor& exec) {
  // --- Ingest phase: build the graph, ramping the footprint ---------------
  nmo_start("ingest");
  Addr rows_base = 0, cols_base = 0, deg_base = 0, rank_base = 0, next_base = 0;
  exec.serial("ingest", [&](MemRecorder& mem) {
    // Forward graph, then transpose into in-edge CSR for pull iteration.
    const CsrGraph fwd =
        make_rmat_graph(config_.nodes_log2, config_.edges_per_node, config_.seed);
    const std::uint32_t n = fwd.num_nodes;
    out_degree_.assign(n, 0);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> rev;
    rev.reserve(fwd.num_edges());
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::uint64_t e = fwd.row_offsets[v]; e < fwd.row_offsets[v + 1]; ++e) {
        ++out_degree_[v];
        rev.emplace_back(fwd.columns[e], v);
        mem.alu(4);
      }
    }
    graph_.num_nodes = n;
    graph_.row_offsets.assign(n + 1, 0);
    for (const auto& [dst, src] : rev) {
      (void)src;
      ++graph_.row_offsets[dst + 1];
    }
    for (std::uint32_t v = 0; v < n; ++v) graph_.row_offsets[v + 1] += graph_.row_offsets[v];
    graph_.columns.resize(rev.size());
    std::vector<std::uint64_t> cursor(graph_.row_offsets.begin(), graph_.row_offsets.end() - 1);
    for (const auto& [dst, src] : rev) {
      graph_.columns[cursor[dst]++] = src;
      mem.alu(2);
    }
  });
  const std::uint32_t n = graph_.num_nodes;
  rows_base = exec.alloc("in_row_offsets", (n + 1) * 8, config_.report_scale);
  // The edge array dominates the footprint; ingest it in batches so the
  // capacity ramp of Figure 2 (right) is visible: each batch allocates its
  // segment and streams the data in.
  constexpr std::uint32_t kBatches = 8;
  const std::uint64_t edge_bytes = graph_.num_edges() * 4;
  cols_base = 0;
  for (std::uint32_t b = 0; b < kBatches; ++b) {
    const std::uint64_t lo = edge_bytes * b / kBatches;
    const std::uint64_t hi = edge_bytes * (b + 1) / kBatches;
    const Addr seg = exec.alloc("in_columns_batch", hi - lo, config_.report_scale);
    if (b == 0) cols_base = seg;
    exec.serial("ingest_batch", [&](MemRecorder& mem) {
      for (std::uint64_t off = lo; off < hi; off += 64) {
        mem.store(cols_base + off, 32);
        mem.alu(4);
      }
    });
  }
  deg_base = exec.alloc("out_degree", n * 4, config_.report_scale);
  rank_base = exec.alloc("ranks", n * 8, config_.report_scale);
  next_base = exec.alloc("next_ranks", n * 8, config_.report_scale);
  nmo_tag_addr("in_columns", cols_base, cols_base + graph_.num_edges() * 4);
  nmo_tag_addr("ranks", rank_base, rank_base + n * 8);

  ranks_.assign(n, 1.0 / n);
  next_.assign(n, 0.0);
  deltas_.clear();
  nmo_stop();

  // --- Rank iterations ------------------------------------------------------
  const double base_rank = (1.0 - config_.damping) / n;
  nmo_start("rank-iterations");
  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    exec.parallel_for(
        "pr_pull", n, [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
          for (std::size_t v = lo; v < hi; ++v) {
            double sum = 0.0;
            mem.load(rows_base + v * 8);
            mem.load(rows_base + (v + 1) * 8);
            for (std::uint64_t e = graph_.row_offsets[v]; e < graph_.row_offsets[v + 1]; ++e) {
              const std::uint32_t u = graph_.columns[e];
              mem.load(cols_base + e * 4, 4);
              mem.load(rank_base + static_cast<Addr>(u) * 8);
              mem.load(deg_base + static_cast<Addr>(u) * 4, 4);
              if (out_degree_[u] > 0) sum += ranks_[u] / out_degree_[u];
              mem.flop(2);
              mem.alu(3);
            }
            next_[v] = base_rank + config_.damping * sum;
            mem.store(next_base + v * 8);
            mem.flop(2);
          }
        });
    // Swap + convergence delta.
    double delta = 0.0;
    exec.serial("pr_swap", [&](MemRecorder& mem) {
      for (std::uint32_t v = 0; v < n; ++v) {
        delta += std::abs(next_[v] - ranks_[v]);
        mem.load(next_base + static_cast<Addr>(v) * 8);
        mem.load(rank_base + static_cast<Addr>(v) * 8);
        mem.flop(2);
      }
      ranks_.swap(next_);
      mem.alu(4);
    });
    // Dangling mass correction keeps the distribution normalised.
    double total = 0.0;
    for (double r : ranks_) total += r;
    const double fix = (1.0 - total) / n;
    exec.parallel_for("pr_normalize", n,
                      [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
                        for (std::size_t v = lo; v < hi; ++v) {
                          ranks_[v] += fix;
                          mem.load(rank_base + v * 8);
                          mem.store(rank_base + v * 8);
                          mem.flop(1);
                        }
                      });
    deltas_.push_back(delta);
  }
  nmo_stop();
}

}  // namespace nmo::wl
