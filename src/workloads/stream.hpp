// STREAM (McCalpin) - the synthetic sustainable-bandwidth benchmark.
//
// Copy/Scale/Add/Triad kernels over three arrays; the paper reports the
// Triad kernel (a[i] = b[i] + SCALAR * c[i]) and Figure 4 shows its tagged
// access scatter on 8 OpenMP threads with arrays a, b, c tagged.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.hpp"

namespace nmo::wl {

struct StreamConfig {
  std::size_t array_elems = 1 << 20;  ///< Doubles per array.
  std::uint32_t iterations = 5;
  double scalar = 3.0;
};

class Stream final : public Workload {
 public:
  explicit Stream(const StreamConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "stream"; }
  void run(Executor& exec) override;

  /// Verification: expected final element value after `iterations` rounds
  /// of copy/scale/add/triad starting from a=1, b=2, c=0.
  [[nodiscard]] static double expected_a(std::uint32_t iterations, double scalar);

  /// Final arrays (after run) for verification.
  [[nodiscard]] const std::vector<double>& a() const { return a_; }
  [[nodiscard]] const std::vector<double>& b() const { return b_; }
  [[nodiscard]] const std::vector<double>& c() const { return c_; }

  /// Virtual base addresses of the tagged arrays (valid after run).
  [[nodiscard]] Addr a_base() const { return a_base_; }
  [[nodiscard]] Addr b_base() const { return b_base_; }
  [[nodiscard]] Addr c_base() const { return c_base_; }

 private:
  StreamConfig config_;
  std::vector<double> a_, b_, c_;
  Addr a_base_ = 0, b_base_ = 0, c_base_ = 0;
};

}  // namespace nmo::wl
