// CloudSuite Graph Analytics: PageRank.
//
// The paper runs the Spark/Hadoop Graph Analytics benchmark; here PageRank
// is implemented directly (pull-based, damping 0.85) over an RMAT graph,
// with the CloudSuite phase structure preserved: a data-ingest phase that
// ramps the memory footprint to its plateau (Figure 2, right), then rank
// iterations whose bandwidth decays after the initial load (Figure 3,
// right).  report_scale maps the laptop-scale dataset onto the paper's
// ~124 GiB footprint for capacity reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/graph.hpp"
#include "workloads/workload.hpp"

namespace nmo::wl {

struct PageRankConfig {
  std::uint32_t nodes_log2 = 17;
  std::uint32_t edges_per_node = 12;
  std::uint32_t iterations = 10;
  double damping = 0.85;
  std::uint64_t seed = 11;
  /// Multiplier applied to reported allocation sizes (capacity figures).
  std::uint64_t report_scale = 4096;
};

class PageRank final : public Workload {
 public:
  explicit PageRank(const PageRankConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "pagerank"; }
  void run(Executor& exec) override;

  [[nodiscard]] const std::vector<double>& ranks() const { return ranks_; }
  [[nodiscard]] double rank_sum() const;
  [[nodiscard]] const std::vector<double>& iteration_deltas() const { return deltas_; }

 private:
  PageRankConfig config_;
  CsrGraph graph_;          ///< Transposed graph: in-edges for pull updates.
  std::vector<std::uint32_t> out_degree_;
  std::vector<double> ranks_;
  std::vector<double> next_;
  std::vector<double> deltas_;
};

}  // namespace nmo::wl
