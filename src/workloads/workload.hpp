// Workload abstraction for the exact trace driver.
//
// The five paper benchmarks (STREAM, Rodinia CFD and BFS, CloudSuite Page
// Rank and In-memory Analytics) are implemented as real algorithms that
// compute real results; every memory touch they make is reported through a
// MemRecorder so the machine simulator can replay the access stream against
// the cache hierarchy and the SPE device model.  The Executor interface is
// deliberately OpenMP-shaped: data-parallel kernels with static scheduling
// and an implicit barrier, which is exactly how the originals parallelise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace nmo::wl {

/// Per-thread recorder of the memory operations a kernel body performs.
/// Addresses are in the workload's *virtual* address space (handed out by
/// Executor::alloc), decoupled from the process's real heap.
class MemRecorder {
 public:
  virtual ~MemRecorder() = default;
  virtual void load(Addr addr, std::uint8_t size = 8) = 0;
  virtual void store(Addr addr, std::uint8_t size = 8) = 0;
  /// Non-memory (ALU/branch) operations executed since the last call.
  virtual void alu(std::uint32_t n) = 0;
  /// Floating-point operations (counted for arithmetic intensity and also
  /// decoded ops like alu()).
  virtual void flop(std::uint32_t n) = 0;
};

/// Execution substrate provided by the simulator (sim::TraceEngine) or by
/// lightweight test doubles.
class Executor {
 public:
  /// Body of a data-parallel kernel: called once per thread with the
  /// thread's [begin, end) slice of the iteration space.
  using KernelBody =
      std::function<void(ThreadId tid, std::size_t begin, std::size_t end, MemRecorder&)>;
  using SerialBody = std::function<void(MemRecorder&)>;

  virtual ~Executor() = default;

  [[nodiscard]] virtual std::uint32_t threads() const = 0;

  /// OpenMP-style `parallel for` with static scheduling and an implicit
  /// barrier at the end.
  virtual void parallel_for(std::string_view kernel, std::size_t n, const KernelBody& body) = 0;

  /// Runs `body` on thread 0 (serial section).
  virtual void serial(std::string_view kernel, const SerialBody& body) = 0;

  /// Allocates `bytes` of the workload's virtual address space under `tag`.
  /// `report_scale` multiplies the *reported* footprint (capacity tracking)
  /// without changing addressing - how GiB-scale CloudSuite datasets are
  /// represented by laptop-scale runs (DESIGN.md section 2).
  virtual Addr alloc(std::string_view tag, std::uint64_t bytes, std::uint64_t report_scale = 1) = 0;
  virtual void dealloc(Addr base) = 0;

  /// Current virtual time (for workloads that want phase timestamps).
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

/// A runnable benchmark.
class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Executes the benchmark on `exec`, annotating phases through the NMO C
  /// API (core/nmo.h) exactly as an instrumented application would.
  virtual void run(Executor& exec) = 0;
};

}  // namespace nmo::wl
