#include "workloads/linalg.hpp"

#include <cmath>

namespace nmo::wl {

bool cholesky_factor(DenseMatrix a) {
  const std::size_t n = a.n;
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = v / ljj;
    }
  }
  return true;
}

void cholesky_solve(const DenseMatrix& l, double* b) {
  const std::size_t n = l.n;
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l.at(i, k) * b[k];
    b[i] = v / l.at(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= l.at(k, i) * b[k];
    b[i] = v / l.at(i, i);
  }
}

bool solve_spd(DenseMatrix a, double* b) {
  if (!cholesky_factor(a)) return false;
  cholesky_solve(a, b);
  return true;
}

}  // namespace nmo::wl
