// Rodinia CFD (euler3d): unstructured-grid finite-volume solver for the 3D
// Euler equations of compressible flow.
//
// This is a faithful re-implementation of the euler3d kernel structure:
// five conserved variables per cell (density, 3 x momentum, energy), four
// neighbours per cell with face normals, and the iteration
//   compute_step_factor -> compute_flux -> time_step
// over a "computation loop" phase tag (Figures 5 and 6).  The mesh is a
// synthetic unstructured mesh: mostly-local neighbours with a fraction of
// far links, which produces the irregular gather pattern the paper's
// high-resolution trace shows at 32 threads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "workloads/workload.hpp"

namespace nmo::wl {

struct CfdConfig {
  std::size_t num_cells = 64 * 1024;
  std::uint32_t iterations = 20;  ///< Paper runs 20 iterations in the tag.
  std::uint64_t seed = 42;
  double far_link_fraction = 0.15;  ///< Fraction of non-local neighbours.
};

class Cfd final : public Workload {
 public:
  explicit Cfd(const CfdConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "cfd"; }
  void run(Executor& exec) override;

  /// Verification hooks: densities must stay finite and positive, and the
  /// total mass (sum of densities) should stay within a loose budget of the
  /// initial mass for this smoothing-style update.
  [[nodiscard]] const std::vector<double>& density() const { return density_; }
  [[nodiscard]] double total_mass() const;

 private:
  static constexpr std::size_t kNeighbors = 4;

  CfdConfig config_;
  std::vector<std::uint32_t> neighbors_;      // num_cells * 4
  std::vector<double> normals_;               // num_cells * 4 * 3
  std::vector<double> density_;
  std::vector<double> momentum_;              // num_cells * 3
  std::vector<double> energy_;
  std::vector<double> step_factor_;
  std::vector<double> flux_;                  // num_cells * 5
};

}  // namespace nmo::wl
