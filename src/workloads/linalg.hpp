// Tiny dense linear algebra for the ALS workload: Cholesky factorization
// and solve of small SPD systems (rank x rank normal equations).
#pragma once

#include <cstddef>
#include <vector>

namespace nmo::wl {

/// Row-major dense square matrix view over caller storage.
struct DenseMatrix {
  double* data = nullptr;
  std::size_t n = 0;

  double& at(std::size_t r, std::size_t c) { return data[r * n + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data[r * n + c]; }
};

/// In-place Cholesky factorization A = L * L^T (lower triangle).  Returns
/// false when the matrix is not positive definite.
bool cholesky_factor(DenseMatrix a);

/// Solves L * L^T x = b given the factor from cholesky_factor; x overwrites b.
void cholesky_solve(const DenseMatrix& l, double* b);

/// Convenience: solves A x = b for SPD A (A and b are overwritten; the
/// solution lands in b).  Returns false when factorization fails.
bool solve_spd(DenseMatrix a, double* b);

}  // namespace nmo::wl
