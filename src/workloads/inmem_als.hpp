// CloudSuite In-memory Analytics: alternating least squares (ALS)
// collaborative filtering on a user-movie rating matrix.
//
// The paper's benchmark runs Spark MLlib ALS in memory; this is the same
// algorithm implemented directly: rank-k factorization R ~= U * M^T where
// each ALS half-step solves a regularised normal-equation system per user
// (or per movie) via Cholesky.  The phase structure gives Figure 2/3's
// left panels: a ratings-load ramp, then per-iteration bandwidth waves
// (user sweep + movie sweep) repeating every iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.hpp"

namespace nmo::wl {

struct AlsConfig {
  std::uint32_t users = 12'000;
  std::uint32_t movies = 4'000;
  std::uint32_t ratings_per_user = 40;
  std::uint32_t rank = 12;          ///< Latent factor dimension.
  std::uint32_t iterations = 6;
  double lambda = 0.08;             ///< Ridge regularisation.
  std::uint64_t seed = 5;
  std::uint64_t report_scale = 2048;
};

class InMemAnalytics final : public Workload {
 public:
  explicit InMemAnalytics(const AlsConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "inmem-analytics"; }
  void run(Executor& exec) override;

  /// Root-mean-square error on the training ratings after each iteration;
  /// must be non-increasing (tests assert this).
  [[nodiscard]] const std::vector<double>& rmse_history() const { return rmse_; }

 private:
  double compute_rmse() const;

  AlsConfig config_;
  // Ratings in CSR-by-user and CSR-by-movie forms.
  std::vector<std::uint64_t> user_offsets_, movie_offsets_;
  std::vector<std::uint32_t> user_movies_, movie_users_;
  std::vector<double> user_ratings_, movie_ratings_;
  std::vector<double> user_factors_, movie_factors_;  // row-major (n x rank)
  std::vector<double> rmse_;
};

}  // namespace nmo::wl
