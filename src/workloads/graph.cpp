#include "workloads/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace nmo::wl {
namespace {

CsrGraph from_edge_list(std::uint32_t nodes,
                        std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  CsrGraph g;
  g.num_nodes = nodes;
  g.row_offsets.assign(nodes + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++g.row_offsets[src + 1];
  }
  for (std::uint32_t v = 0; v < nodes; ++v) g.row_offsets[v + 1] += g.row_offsets[v];
  g.columns.resize(edges.size());
  std::vector<std::uint64_t> cursor(g.row_offsets.begin(), g.row_offsets.end() - 1);
  for (const auto& [src, dst] : edges) g.columns[cursor[src]++] = dst;
  return g;
}

}  // namespace

CsrGraph make_uniform_graph(std::uint32_t nodes, std::uint32_t edges_per_node,
                            std::uint64_t seed) {
  if (nodes == 0) throw std::invalid_argument("graph needs at least one node");
  Rng rng(seed, 17);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(static_cast<std::size_t>(nodes) * edges_per_node);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    for (std::uint32_t e = 0; e < edges_per_node; ++e) {
      edges.emplace_back(v, static_cast<std::uint32_t>(rng.uniform(nodes)));
    }
  }
  return from_edge_list(nodes, edges);
}

CsrGraph make_rmat_graph(std::uint32_t nodes_log2, std::uint32_t edges_per_node,
                         std::uint64_t seed) {
  if (nodes_log2 == 0 || nodes_log2 > 30) throw std::invalid_argument("bad rmat size");
  const std::uint32_t nodes = 1u << nodes_log2;
  const std::uint64_t num_edges = static_cast<std::uint64_t>(nodes) * edges_per_node;
  Rng rng(seed, 23);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(num_edges);
  // RMAT quadrant probabilities.
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    std::uint32_t src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < nodes_log2; ++bit) {
      const double u = rng.uniform01();
      std::uint32_t sbit = 0, dbit = 0;
      if (u < kA) {
        // top-left: 0,0
      } else if (u < kA + kB) {
        dbit = 1;
      } else if (u < kA + kB + kC) {
        sbit = 1;
      } else {
        sbit = 1;
        dbit = 1;
      }
      src = (src << 1) | sbit;
      dst = (dst << 1) | dbit;
    }
    edges.emplace_back(src, dst);
  }
  return from_edge_list(nodes, edges);
}

}  // namespace nmo::wl
