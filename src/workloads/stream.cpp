#include "workloads/stream.hpp"

#include "core/nmo.h"

namespace nmo::wl {

double Stream::expected_a(std::uint32_t iterations, double scalar) {
  // Initial: a=1, b=2, c=0.  Each iteration: c=a; b=scalar*c; c=a+b;
  // a=b+scalar*c (classic STREAM kernel order).
  double a = 1.0, b = 2.0, c = 0.0;
  for (std::uint32_t i = 0; i < iterations; ++i) {
    c = a;
    b = scalar * c;
    c = a + b;
    a = b + scalar * c;
  }
  return a;
}

void Stream::run(Executor& exec) {
  const std::size_t n = config_.array_elems;
  a_.assign(n, 0.0);
  b_.assign(n, 0.0);
  c_.assign(n, 0.0);
  a_base_ = exec.alloc("a", n * sizeof(double));
  b_base_ = exec.alloc("b", n * sizeof(double));
  c_base_ = exec.alloc("c", n * sizeof(double));
  nmo_tag_addr("a", a_base_, a_base_ + n * sizeof(double));
  nmo_tag_addr("b", b_base_, b_base_ + n * sizeof(double));
  nmo_tag_addr("c", c_base_, c_base_ + n * sizeof(double));

  const double scalar = config_.scalar;

  nmo_start("init");
  exec.parallel_for("init", n, [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
    for (std::size_t i = lo; i < hi; ++i) {
      a_[i] = 1.0;
      b_[i] = 2.0;
      c_[i] = 0.0;
      mem.store(a_base_ + i * 8);
      mem.store(b_base_ + i * 8);
      mem.store(c_base_ + i * 8);
      mem.alu(3);
    }
  });
  nmo_stop();

  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    nmo_start("copy");
    exec.parallel_for("copy", n, [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
      for (std::size_t i = lo; i < hi; ++i) {
        c_[i] = a_[i];
        mem.load(a_base_ + i * 8);
        mem.store(c_base_ + i * 8);
        mem.alu(2);
      }
    });
    nmo_stop();

    nmo_start("scale");
    exec.parallel_for("scale", n, [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
      for (std::size_t i = lo; i < hi; ++i) {
        b_[i] = scalar * c_[i];
        mem.load(c_base_ + i * 8);
        mem.store(b_base_ + i * 8);
        mem.flop(1);
        mem.alu(2);
      }
    });
    nmo_stop();

    nmo_start("add");
    exec.parallel_for("add", n, [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
      for (std::size_t i = lo; i < hi; ++i) {
        c_[i] = a_[i] + b_[i];
        mem.load(a_base_ + i * 8);
        mem.load(b_base_ + i * 8);
        mem.store(c_base_ + i * 8);
        mem.flop(1);
        mem.alu(2);
      }
    });
    nmo_stop();

    nmo_start("triad");
    exec.parallel_for("triad", n, [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
      for (std::size_t i = lo; i < hi; ++i) {
        a_[i] = b_[i] + scalar * c_[i];
        mem.load(b_base_ + i * 8);
        mem.load(c_base_ + i * 8);
        mem.store(a_base_ + i * 8);
        mem.flop(2);
        mem.alu(2);
      }
    });
    nmo_stop();
  }
}

}  // namespace nmo::wl
