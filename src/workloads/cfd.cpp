#include "workloads/cfd.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/nmo.h"

namespace nmo::wl {

double Cfd::total_mass() const {
  double sum = 0.0;
  for (double d : density_) sum += d;
  return sum;
}

void Cfd::run(Executor& exec) {
  const std::size_t n = config_.num_cells;
  neighbors_.assign(n * kNeighbors, 0);
  normals_.assign(n * kNeighbors * 3, 0.0);
  density_.assign(n, 0.0);
  momentum_.assign(n * 3, 0.0);
  energy_.assign(n, 0.0);
  step_factor_.assign(n, 0.0);
  flux_.assign(n * 5, 0.0);

  const Addr nb_base = exec.alloc("elements_surrounding", n * kNeighbors * 4);
  const Addr nrm_base = exec.alloc("normals", n * kNeighbors * 3 * 8);
  const Addr rho_base = exec.alloc("density", n * 8);
  const Addr mom_base = exec.alloc("momentum", n * 3 * 8);
  const Addr en_base = exec.alloc("energy", n * 8);
  const Addr sf_base = exec.alloc("step_factor", n * 8);
  const Addr fl_base = exec.alloc("fluxes", n * 5 * 8);
  nmo_tag_addr("elements_surrounding", nb_base, nb_base + n * kNeighbors * 4);
  nmo_tag_addr("normals", nrm_base, nrm_base + n * kNeighbors * 3 * 8);
  nmo_tag_addr("density", rho_base, rho_base + n * 8);
  nmo_tag_addr("momentum", mom_base, mom_base + n * 3 * 8);
  nmo_tag_addr("energy", en_base, en_base + n * 8);
  nmo_tag_addr("step_factor", sf_base, sf_base + n * 8);
  nmo_tag_addr("fluxes", fl_base, fl_base + n * 5 * 8);

  // --- Mesh generation + initial conditions (serial load phase) -----------
  nmo_start("mesh-load");
  exec.serial("mesh-load", [&](MemRecorder& mem) {
    Rng rng(config_.seed, 3);
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t k = 0; k < kNeighbors; ++k) {
        std::size_t nb;
        if (rng.uniform01() < config_.far_link_fraction) {
          nb = rng.uniform(n);  // far link: irregular gather
        } else {
          // local link within a +-8 window (wrap-around)
          nb = (c + n + static_cast<std::size_t>(rng.range(-8, 8))) % n;
        }
        neighbors_[c * kNeighbors + k] = static_cast<std::uint32_t>(nb);
        for (int d = 0; d < 3; ++d) {
          normals_[(c * kNeighbors + k) * 3 + d] = rng.normalish(0.0, 0.5);
        }
        mem.store(nb_base + (c * kNeighbors + k) * 4, 4);
        mem.store(nrm_base + (c * kNeighbors + k) * 3 * 8, 8);
        mem.alu(6);
      }
      // Freestream initial conditions.
      density_[c] = 1.4;
      momentum_[c * 3 + 0] = 1.0;
      momentum_[c * 3 + 1] = 0.0;
      momentum_[c * 3 + 2] = 0.0;
      energy_[c] = 2.5;
      mem.store(rho_base + c * 8);
      mem.store(mom_base + c * 3 * 8);
      mem.store(en_base + c * 8);
      mem.alu(4);
    }
  });
  nmo_stop();

  // --- Computation loop (the paper's tagged phase) -------------------------
  constexpr double kGamma = 1.4;
  constexpr double kCfl = 0.1;

  nmo_start("computation loop");
  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    // compute_step_factor: local, per-cell.
    exec.parallel_for(
        "compute_step_factor", n,
        [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
          for (std::size_t c = lo; c < hi; ++c) {
            const double rho = density_[c];
            const double mx = momentum_[c * 3], my = momentum_[c * 3 + 1],
                         mz = momentum_[c * 3 + 2];
            const double e = energy_[c];
            const double v2 = (mx * mx + my * my + mz * mz) / (rho * rho);
            const double pressure = (kGamma - 1.0) * (e - 0.5 * rho * v2);
            const double speed_sound = std::sqrt(std::max(1e-9, kGamma * pressure / rho));
            step_factor_[c] = kCfl / (std::sqrt(v2) + speed_sound);
            mem.load(rho_base + c * 8);
            mem.load(mom_base + c * 3 * 8, 24);
            mem.load(en_base + c * 8);
            mem.store(sf_base + c * 8);
            mem.flop(14);
            mem.alu(4);
          }
        });

    // compute_flux: gather over the four neighbours (irregular).
    exec.parallel_for(
        "compute_flux", n, [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
          for (std::size_t c = lo; c < hi; ++c) {
            double f[5] = {0, 0, 0, 0, 0};
            const double rho_c = density_[c];
            mem.load(rho_base + c * 8);
            for (std::size_t k = 0; k < kNeighbors; ++k) {
              const std::uint32_t nb = neighbors_[c * kNeighbors + k];
              mem.load(nb_base + (c * kNeighbors + k) * 4, 4);
              const double rho_n = density_[nb];
              const double en_n = energy_[nb];
              mem.load(rho_base + static_cast<Addr>(nb) * 8);
              mem.load(en_base + static_cast<Addr>(nb) * 8);
              for (int d = 0; d < 3; ++d) {
                const double nrm = normals_[(c * kNeighbors + k) * 3 + d];
                const double mom_n = momentum_[static_cast<std::size_t>(nb) * 3 +
                                               static_cast<std::size_t>(d)];
                f[0] += nrm * (rho_n - rho_c) * 0.25;
                f[1 + d] += nrm * mom_n * 0.25;
                f[4] += nrm * (en_n - energy_[c]) * 0.25;
              }
              mem.load(nrm_base + (c * kNeighbors + k) * 3 * 8, 24);
              mem.load(mom_base + static_cast<Addr>(nb) * 3 * 8, 24);
              mem.flop(27);
              mem.alu(8);
            }
            for (int v = 0; v < 5; ++v) flux_[c * 5 + static_cast<std::size_t>(v)] = f[v];
            mem.store(fl_base + c * 5 * 8, 40);
            mem.load(en_base + c * 8);
          }
        });

    // time_step: apply fluxes.
    exec.parallel_for("time_step", n,
                      [&](ThreadId, std::size_t lo, std::size_t hi, MemRecorder& mem) {
                        for (std::size_t c = lo; c < hi; ++c) {
                          const double sf = step_factor_[c];
                          density_[c] += sf * flux_[c * 5];
                          momentum_[c * 3 + 0] += sf * flux_[c * 5 + 1];
                          momentum_[c * 3 + 1] += sf * flux_[c * 5 + 2];
                          momentum_[c * 3 + 2] += sf * flux_[c * 5 + 3];
                          energy_[c] += sf * flux_[c * 5 + 4];
                          mem.load(sf_base + c * 8);
                          mem.load(fl_base + c * 5 * 8, 40);
                          mem.load(rho_base + c * 8);
                          mem.store(rho_base + c * 8);
                          mem.load(mom_base + c * 3 * 8, 24);
                          mem.store(mom_base + c * 3 * 8, 24);
                          mem.load(en_base + c * 8);
                          mem.store(en_base + c * 8);
                          mem.flop(10);
                          mem.alu(3);
                        }
                      });
  }
  nmo_stop();
}

}  // namespace nmo::wl
