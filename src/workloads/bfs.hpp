// Rodinia BFS: level-synchronous breadth-first search with frontier masks.
//
// Mirrors the Rodinia OpenMP structure: kernel 1 expands the current
// frontier (mask array) into updating masks; kernel 2 promotes updated
// nodes into the next frontier, until no node was updated.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/graph.hpp"
#include "workloads/workload.hpp"

namespace nmo::wl {

struct BfsConfig {
  std::uint32_t nodes = 1 << 18;
  std::uint32_t edges_per_node = 8;
  std::uint32_t source = 0;
  std::uint64_t seed = 7;
};

class Bfs final : public Workload {
 public:
  explicit Bfs(const BfsConfig& config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "bfs"; }
  void run(Executor& exec) override;

  /// Distances from the source (-1 for unreachable), valid after run().
  [[nodiscard]] const std::vector<std::int32_t>& cost() const { return cost_; }
  [[nodiscard]] const CsrGraph& graph() const { return graph_; }
  [[nodiscard]] std::uint32_t levels() const { return levels_; }

 private:
  BfsConfig config_;
  CsrGraph graph_;
  std::vector<std::int32_t> cost_;
  std::uint32_t levels_ = 0;
};

/// Reference serial BFS used by tests to validate the parallel kernel.
std::vector<std::int32_t> reference_bfs(const CsrGraph& graph, std::uint32_t source);

}  // namespace nmo::wl
