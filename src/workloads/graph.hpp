// Deterministic graph generation (CSR) for BFS and PageRank.
//
// Rodinia's BFS inputs are uniform random graphs; CloudSuite's Graph
// Analytics runs on a social-network-like (power-law) graph, which the
// RMAT generator approximates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace nmo::wl {

/// Compressed-sparse-row directed graph.
struct CsrGraph {
  std::uint32_t num_nodes = 0;
  std::vector<std::uint64_t> row_offsets;  ///< size num_nodes + 1
  std::vector<std::uint32_t> columns;      ///< size num_edges

  [[nodiscard]] std::uint64_t num_edges() const { return columns.size(); }
  [[nodiscard]] std::uint64_t degree(std::uint32_t v) const {
    return row_offsets[v + 1] - row_offsets[v];
  }
};

/// Uniform random multigraph with `edges_per_node` average out-degree.
CsrGraph make_uniform_graph(std::uint32_t nodes, std::uint32_t edges_per_node,
                            std::uint64_t seed);

/// RMAT-style power-law graph (a=0.57, b=c=0.19, d=0.05), Graph500-like.
CsrGraph make_rmat_graph(std::uint32_t nodes_log2, std::uint32_t edges_per_node,
                         std::uint64_t seed);

}  // namespace nmo::wl
