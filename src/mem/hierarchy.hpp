// Multi-level memory hierarchy of the simulated ARM testbed (Table II):
// per-core L1d and L2, a shared system-level cache (SLC), and DDR4 DRAM.
//
// The hierarchy is the ground truth that the SPE device model observes: for
// every access it reports the level that serviced it, the load-to-use
// latency (including TLB walks), and it maintains the bus event counters
// that NMO's bandwidth estimator reads (paper section VI-B estimates
// bandwidth by "counting the event of the load and store access on the bus
// every second").
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/latency.hpp"
#include "mem/tlb.hpp"

namespace nmo::mem {

/// Geometry + timing of the whole hierarchy; defaults follow Table II of
/// the paper (Ampere Altra Max).
struct HierarchyConfig {
  std::uint32_t cores = 128;
  CacheConfig l1{.size_bytes = 64 * 1024, .associativity = 4, .line_size = 64};
  CacheConfig l2{.size_bytes = 1024 * 1024, .associativity = 8, .line_size = 64};
  CacheConfig slc{.size_bytes = 16 * 1024 * 1024, .associativity = 16, .line_size = 64};
  LatencyModel latency{};
  std::uint32_t tlb_entries = 48;
  std::uint64_t page_size = 64 * 1024;
  /// Peak DRAM bandwidth in bytes per cycle across the whole socket
  /// (200 GB/s at 3 GHz ~= 66.7 B/cycle).  Used by the contention model.
  double dram_bytes_per_cycle = 66.7;
};

/// Result of one hierarchy access.
struct AccessResult {
  MemLevel level = MemLevel::kL1;  ///< Level that serviced the access.
  Cycles latency = 0;              ///< Load-to-use latency incl. TLB walk.
  bool tlb_miss = false;
};

/// Counters read by NMO's bandwidth estimator: traffic that crossed the
/// memory bus (SLC<->DRAM), in line-sized units.
struct BusCounters {
  std::uint64_t read_lines = 0;       ///< Lines fetched from DRAM.
  std::uint64_t writeback_lines = 0;  ///< Dirty lines written to DRAM.

  [[nodiscard]] std::uint64_t total_bytes(std::uint32_t line_size) const {
    return (read_lines + writeback_lines) * line_size;
  }
};

/// Whole-machine hierarchy: one L1+L2+TLB per core, one shared SLC.
class Hierarchy {
 public:
  explicit Hierarchy(const HierarchyConfig& config);

  /// Simulates one access issued by `core`.  Accesses that straddle a line
  /// boundary touch only the first line (the second line's cost is noise at
  /// the granularity this model feeds).
  AccessResult access(CoreId core, const MemAccess& a);

  [[nodiscard]] const HierarchyConfig& config() const { return config_; }
  [[nodiscard]] const BusCounters& bus() const { return bus_; }

  /// Per-level service counts across all cores (how many accesses each
  /// level satisfied).  Indexed by MemLevel.
  [[nodiscard]] const std::array<std::uint64_t, kNumMemLevels>& level_counts() const {
    return level_counts_;
  }

  [[nodiscard]] const Cache& l1(CoreId core) const { return *l1_[core]; }
  [[nodiscard]] const Cache& l2(CoreId core) const { return *l2_[core]; }
  [[nodiscard]] const Cache& slc() const { return *slc_; }
  [[nodiscard]] const Tlb& tlb(CoreId core) const { return *tlb_[core]; }

  /// Clears cache contents and counters (new workload run).
  void reset();

 private:
  HierarchyConfig config_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;
  std::unique_ptr<Cache> slc_;
  std::vector<std::unique_ptr<Tlb>> tlb_;
  BusCounters bus_;
  std::array<std::uint64_t, kNumMemLevels> level_counts_{};
};

}  // namespace nmo::mem
