#include "mem/hierarchy.hpp"

#include <stdexcept>

namespace nmo::mem {

Hierarchy::Hierarchy(const HierarchyConfig& config) : config_(config) {
  if (config_.cores == 0) throw std::invalid_argument("hierarchy needs at least one core");
  l1_.reserve(config_.cores);
  l2_.reserve(config_.cores);
  tlb_.reserve(config_.cores);
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    l1_.push_back(std::make_unique<Cache>(config_.l1));
    l2_.push_back(std::make_unique<Cache>(config_.l2));
    tlb_.push_back(std::make_unique<Tlb>(config_.tlb_entries, config_.page_size));
  }
  slc_ = std::make_unique<Cache>(config_.slc);
}

AccessResult Hierarchy::access(CoreId core, const MemAccess& a) {
  if (core >= config_.cores) throw std::out_of_range("core id out of range");
  const bool is_store = a.op == MemOp::kStore;

  AccessResult result;
  result.tlb_miss = !tlb_[core]->access(a.addr);

  // Dirty victims are written back into the next level (write-back,
  // write-allocate at every level); an SLC dirty eviction reaches the bus.
  auto install_l2 = [&](Addr addr) {
    const auto out = l2_[core]->access(addr, /*is_store=*/true);
    if (out.writeback) {
      const auto slc_out = slc_->access(out.victim_addr, /*is_store=*/true);
      if (slc_out.writeback) ++bus_.writeback_lines;
    }
  };

  const auto l1_out = l1_[core]->access(a.addr, is_store);
  if (l1_out.writeback) install_l2(l1_out.victim_addr);
  if (l1_out.hit) {
    result.level = MemLevel::kL1;
  } else {
    const auto l2_out = l2_[core]->access(a.addr, /*is_store=*/false);
    if (l2_out.writeback) {
      const auto wb = slc_->access(l2_out.victim_addr, /*is_store=*/true);
      if (wb.writeback) ++bus_.writeback_lines;
    }
    if (l2_out.hit) {
      result.level = MemLevel::kL2;
    } else {
      const auto slc_out = slc_->access(a.addr, /*is_store=*/false);
      if (slc_out.writeback) ++bus_.writeback_lines;
      if (slc_out.hit) {
        result.level = MemLevel::kSLC;
      } else {
        result.level = MemLevel::kDRAM;
        ++bus_.read_lines;
      }
    }
  }

  ++level_counts_[static_cast<std::size_t>(result.level)];
  result.latency = config_.latency.for_level(result.level);
  if (result.tlb_miss) result.latency += config_.latency.tlb_miss;
  return result;
}

void Hierarchy::reset() {
  for (auto& c : l1_) c->invalidate_all();
  for (auto& c : l2_) c->invalidate_all();
  slc_->invalidate_all();
  for (auto& t : tlb_) t->flush();
  bus_ = BusCounters{};
  level_counts_.fill(0);
}

}  // namespace nmo::mem
