// Small fully-associative TLB model.
//
// SPE sample records carry TLB events; the hierarchy consults a per-core
// TLB so records can be flagged, and the page-walk penalty feeds the
// latency of the sampled operation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace nmo::mem {

class Tlb {
 public:
  /// `entries` translations of `page_size`-byte pages, LRU replacement.
  Tlb(std::uint32_t entries, std::uint64_t page_size)
      : page_size_(page_size), slots_(entries, kInvalid) {}

  /// Returns true on a TLB hit; on miss the translation is installed.
  bool access(Addr addr) {
    const Addr vpn = addr / page_size_;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] == vpn) {
        // Move to front (LRU).
        for (std::size_t j = i; j > 0; --j) slots_[j] = slots_[j - 1];
        slots_[0] = vpn;
        ++hits_;
        return true;
      }
    }
    for (std::size_t j = slots_.size() - 1; j > 0; --j) slots_[j] = slots_[j - 1];
    slots_[0] = vpn;
    ++misses_;
    return false;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  void flush() {
    for (auto& s : slots_) s = kInvalid;
  }

 private:
  static constexpr Addr kInvalid = ~Addr{0};
  std::uint64_t page_size_;
  std::vector<Addr> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nmo::mem
