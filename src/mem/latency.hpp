// Latency model for the simulated Ampere-like memory hierarchy.
//
// Values are load-to-use latencies in core cycles at 3.0 GHz, in the range
// published for Neoverse N1/V1 class cores.  Absolute values matter less
// than their ratios: SPE sample-collision behaviour depends on how long a
// sampled operation stays in flight relative to the sampling interval.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace nmo::mem {

struct LatencyModel {
  Cycles l1 = 4;
  Cycles l2 = 13;
  Cycles slc = 45;
  Cycles dram = 330;      ///< ~110 ns at 3 GHz.
  Cycles tlb_miss = 40;   ///< Page walk penalty added on a TLB miss.

  [[nodiscard]] Cycles for_level(MemLevel level) const noexcept {
    switch (level) {
      case MemLevel::kL1: return l1;
      case MemLevel::kL2: return l2;
      case MemLevel::kSLC: return slc;
      case MemLevel::kDRAM: return dram;
    }
    return dram;
  }
};

}  // namespace nmo::mem
