// Single-level set-associative cache model with LRU replacement.
//
// This is the building block of the Ampere-like hierarchy in
// mem/hierarchy.hpp.  The model is functional (hit/miss + dirty state), not
// timed; latency is assigned by the hierarchy from the level that services
// an access.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace nmo::mem {

/// Geometry of one cache.
struct CacheConfig {
  std::uint64_t size_bytes = 64 * 1024;
  std::uint32_t associativity = 4;
  std::uint32_t line_size = 64;

  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(associativity) * line_size);
  }
};

/// Hit/miss counters for one cache instance.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    const auto a = accesses();
    return a > 0 ? static_cast<double>(hits) / static_cast<double>(a) : 0.0;
  }
};

/// Set-associative LRU cache.  Write policy is write-back/write-allocate,
/// matching the Neoverse data caches.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Result of one lookup+fill.
  struct AccessOutcome {
    bool hit = false;
    bool writeback = false;  ///< A dirty victim was evicted.
    Addr victim_addr = 0;    ///< Line address of the dirty victim (when writeback).
  };

  /// Performs a lookup; on miss, allocates the line and evicts the LRU way.
  AccessOutcome access(Addr addr, bool is_store);

  /// Lookup without side effects (for tests and occupancy probes).
  [[nodiscard]] bool contains(Addr addr) const;

  /// Drops all lines (returns the number of dirty lines discarded).
  std::uint64_t invalidate_all();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint64_t set_index(Addr addr) const {
    return (addr / config_.line_size) & (num_sets_ - 1);
  }
  [[nodiscard]] Addr tag_of(Addr addr) const {
    return addr / config_.line_size / num_sets_;
  }

  CacheConfig config_;
  std::uint64_t num_sets_;
  // lines_[set * associativity + way]; recency_ tracks LRU order per set as
  // a permutation of way indices, MRU first.
  std::vector<Line> lines_;
  std::vector<std::uint8_t> recency_;
  CacheStats stats_;
};

}  // namespace nmo::mem
