#include "mem/cache.hpp"

#include <bit>
#include <stdexcept>

namespace nmo::mem {

Cache::Cache(const CacheConfig& config) : config_(config), num_sets_(0) {
  if (config_.line_size == 0 || (config_.line_size & (config_.line_size - 1)) != 0) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (config_.associativity == 0 || config_.associativity > 255) {
    throw std::invalid_argument("associativity must be in [1, 255]");
  }
  num_sets_ = config_.num_sets();
  if (num_sets_ == 0 || (num_sets_ & (num_sets_ - 1)) != 0) {
    throw std::invalid_argument("cache set count must be a nonzero power of two");
  }
  lines_.resize(num_sets_ * config_.associativity);
  recency_.resize(num_sets_ * config_.associativity);
  for (std::uint64_t s = 0; s < num_sets_; ++s) {
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
      recency_[s * config_.associativity + w] = static_cast<std::uint8_t>(w);
    }
  }
}

Cache::AccessOutcome Cache::access(Addr addr, bool is_store) {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  Line* set_lines = &lines_[set * config_.associativity];
  std::uint8_t* order = &recency_[set * config_.associativity];
  const std::uint32_t ways = config_.associativity;

  // Search recency order so a hit can be moved to front in the same pass.
  for (std::uint32_t pos = 0; pos < ways; ++pos) {
    const std::uint8_t way = order[pos];
    Line& line = set_lines[way];
    if (line.valid && line.tag == tag) {
      if (is_store) line.dirty = true;
      // Move-to-front: shift [0, pos) right by one.
      for (std::uint32_t i = pos; i > 0; --i) order[i] = order[i - 1];
      order[0] = way;
      ++stats_.hits;
      return {.hit = true, .writeback = false};
    }
  }

  // Miss: victim is the LRU way (last in recency order).
  const std::uint8_t victim = order[ways - 1];
  Line& line = set_lines[victim];
  AccessOutcome out{.hit = false, .writeback = false, .victim_addr = 0};
  if (line.valid) {
    ++stats_.evictions;
    if (line.dirty) {
      ++stats_.writebacks;
      out.writeback = true;
      out.victim_addr = (line.tag * num_sets_ + set) * config_.line_size;
    }
  }
  line.valid = true;
  line.tag = tag;
  line.dirty = is_store;
  for (std::uint32_t i = ways - 1; i > 0; --i) order[i] = order[i - 1];
  order[0] = victim;
  ++stats_.misses;
  return out;
}

bool Cache::contains(Addr addr) const {
  const std::uint64_t set = set_index(addr);
  const Addr tag = tag_of(addr);
  const Line* set_lines = &lines_[set * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (set_lines[w].valid && set_lines[w].tag == tag) return true;
  }
  return false;
}

std::uint64_t Cache::invalidate_all() {
  std::uint64_t dirty = 0;
  for (auto& line : lines_) {
    if (line.valid && line.dirty) ++dirty;
    line.valid = false;
    line.dirty = false;
  }
  return dirty;
}

}  // namespace nmo::mem
