// NMO runtime configuration - the environment-variable surface of Table I.
//
//   NMO_ENABLE       Enable profile collection            (default: off)
//   NMO_NAME         Base name of output files            (default: "nmo")
//   NMO_MODE         Profile collection mode              (default: none)
//   NMO_PERIOD       Sampling period                      (default: 0)
//   NMO_TRACK_RSS    Capture working set size             (default: off)
//   NMO_BUFSIZE      Ring buffer size [MiB]               (default: 1)
//   NMO_AUXBUFSIZE   Aux buffer size [MiB]                (default: 1)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.hpp"

namespace nmo::core {

/// What the profiler collects.  Modes compose; "all" enables everything.
enum class Mode : std::uint8_t {
  kNone = 0,
  kSample = 1 << 0,     ///< SPE load/store sampling (region profiling).
  kBandwidth = 1 << 1,  ///< Bus event counting per interval.
  kCapacity = 1 << 2,   ///< Temporal footprint tracking.
  kAll = kSample | kBandwidth | kCapacity,
};

constexpr Mode operator|(Mode a, Mode b) {
  return static_cast<Mode>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}
constexpr bool has_mode(Mode value, Mode flag) {
  return (static_cast<std::uint8_t>(value) & static_cast<std::uint8_t>(flag)) != 0;
}

struct NmoConfig {
  bool enable = false;
  std::string name = "nmo";
  Mode mode = Mode::kNone;
  std::uint64_t period = 0;
  bool track_rss = false;
  std::uint64_t bufsize_bytes = 1ull << 20;     ///< Data ring buffer.
  std::uint64_t auxbufsize_bytes = 1ull << 20;  ///< SPE aux buffer.

  /// Parses the Table I environment variables.  Unknown mode tokens are
  /// ignored (recorded in `parse_warnings`).
  static NmoConfig from_env(const Env& env);

  /// Parses a mode string: comma-separated tokens from
  /// {none, sample, bandwidth, capacity, all}.
  static Mode parse_mode(const std::string& text, std::vector<std::string>* warnings = nullptr);

  std::vector<std::string> parse_warnings;
};

}  // namespace nmo::core
