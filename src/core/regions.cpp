#include "core/regions.hpp"

namespace nmo::core {

void RegionTable::tag_addr(std::string_view name, Addr start, Addr end) {
  if (end < start) std::swap(start, end);
  regions_.push_back(AddrRegion{std::string(name), start, end});
}

void RegionTable::phase_start(std::string_view name, std::uint64_t now_ns) {
  PhaseSpan span;
  span.name = std::string(name);
  span.t_start_ns = now_ns;
  span.depth = static_cast<std::uint32_t>(open_stack_.size());
  open_stack_.push_back(phases_.size());
  phases_.push_back(std::move(span));
}

void RegionTable::phase_stop(std::uint64_t now_ns) {
  if (open_stack_.empty()) return;  // unmatched stop: ignored, like NMO
  phases_[open_stack_.back()].t_stop_ns = now_ns;
  open_stack_.pop_back();
}

std::optional<std::size_t> RegionTable::find_region(Addr addr) const {
  // Reverse order: the most recent tag wins on overlap.
  for (std::size_t i = regions_.size(); i > 0; --i) {
    if (regions_[i - 1].contains(addr)) return i - 1;
  }
  return std::nullopt;
}

std::optional<std::size_t> RegionTable::phase_at(std::uint64_t t_ns) const {
  std::optional<std::size_t> best;
  std::uint32_t best_depth = 0;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const auto& p = phases_[i];
    const bool open_covers = p.t_stop_ns == 0 && t_ns >= p.t_start_ns;
    const bool closed_covers = p.t_stop_ns != 0 && t_ns >= p.t_start_ns && t_ns < p.t_stop_ns;
    if ((open_covers || closed_covers) && (!best || p.depth >= best_depth)) {
      best = i;
      best_depth = p.depth;
    }
  }
  return best;
}

}  // namespace nmo::core
