// Temporal memory-capacity tracking (paper section VI-A, Figure 2).
//
// NMO samples the target's working-set size over time (NMO_TRACK_RSS);
// here allocations are reported by the Executor and the tracker samples
// the live footprint on the simulator's virtual-second ticks.
#pragma once

#include <cstdint>
#include <vector>

namespace nmo::core {

struct CapacityPoint {
  std::uint64_t time_ns = 0;
  std::uint64_t live_bytes = 0;
};

class CapacityTracker {
 public:
  void on_alloc(std::uint64_t bytes, std::uint64_t now_ns) {
    live_ += bytes;
    if (live_ > peak_) peak_ = live_;
    (void)now_ns;
  }
  void on_free(std::uint64_t bytes, std::uint64_t now_ns) {
    live_ = bytes > live_ ? 0 : live_ - bytes;
    (void)now_ns;
  }

  /// Records one RSS sample (called on tracker ticks).
  void sample(std::uint64_t now_ns) { series_.push_back({now_ns, live_}); }

  [[nodiscard]] std::uint64_t live_bytes() const { return live_; }
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_; }
  [[nodiscard]] const std::vector<CapacityPoint>& series() const { return series_; }

  /// Peak utilisation against a budget (the paper reports 20.4% / 48.4%
  /// of the reserved 256 GiB for the two CloudSuite workloads).
  [[nodiscard]] double peak_utilization(std::uint64_t budget_bytes) const {
    return budget_bytes > 0
               ? static_cast<double>(peak_) / static_cast<double>(budget_bytes)
               : 0.0;
  }

 private:
  std::uint64_t live_ = 0;
  std::uint64_t peak_ = 0;
  std::vector<CapacityPoint> series_;
};

}  // namespace nmo::core
