// Temporal memory-bandwidth estimation (paper section VI-B, Figure 3).
//
// "NMO can estimate memory bandwidth based on counting the event of the
// load and store access on the bus every second, and then dividing the
// event counter with the length of the interval."  The tracker is fed the
// cumulative bus byte counter on every tick and differentiates.  Optional
// FP-event feeds give arithmetic intensity (Roofline, section III-A).
#pragma once

#include <cstdint>
#include <vector>

namespace nmo::core {

struct BandwidthPoint {
  std::uint64_t time_ns = 0;
  double gib_per_s = 0.0;
};

class BandwidthEstimator {
 public:
  /// Feeds the cumulative bus-byte and FP-op counters at `now_ns`.
  void tick(std::uint64_t now_ns, std::uint64_t bus_bytes_cum, std::uint64_t fp_ops_cum = 0) {
    if (has_prev_) {
      const double dt_s = static_cast<double>(now_ns - prev_ns_) * 1e-9;
      if (dt_s > 0) {
        const double bytes = static_cast<double>(bus_bytes_cum - prev_bytes_);
        series_.push_back({now_ns, bytes / dt_s / (1024.0 * 1024.0 * 1024.0)});
      }
    }
    total_fp_ = fp_ops_cum;
    total_bytes_ = bus_bytes_cum;
    prev_ns_ = now_ns;
    prev_bytes_ = bus_bytes_cum;
    has_prev_ = true;
  }

  [[nodiscard]] const std::vector<BandwidthPoint>& series() const { return series_; }

  [[nodiscard]] double peak_gib_per_s() const {
    double peak = 0;
    for (const auto& p : series_) peak = std::max(peak, p.gib_per_s);
    return peak;
  }

  /// Arithmetic intensity over the whole run: FLOPs per DRAM byte.
  [[nodiscard]] double arithmetic_intensity() const {
    return total_bytes_ > 0 ? static_cast<double>(total_fp_) / static_cast<double>(total_bytes_)
                            : 0.0;
  }

  [[nodiscard]] std::uint64_t total_bus_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_fp_ops() const { return total_fp_; }

 private:
  bool has_prev_ = false;
  std::uint64_t prev_ns_ = 0;
  std::uint64_t prev_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_fp_ = 0;
  std::vector<BandwidthPoint> series_;
};

}  // namespace nmo::core
