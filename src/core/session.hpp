// ProfileSession: the highest-level entry point, tying a workload, the
// machine simulator and the NMO profiler together.
//
// This is what examples and figure benches use:
//
//   core::NmoConfig nmo = core::NmoConfig::from_env(env);
//   core::ProfileSession session(nmo, engine_config);
//   auto report = session.profile(workload);
//   report.accuracy(), session.profiler().trace(), ...
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/budget.hpp"
#include "core/config.hpp"
#include "core/profiler.hpp"
#include "sim/engine.hpp"
#include "workloads/workload.hpp"

namespace nmo::core {

/// Lifecycle of a session under the bounded scheduler
/// (store/scheduler.hpp): queued -> admitted -> running -> done/failed.
/// kRejected, kShed and kExpired are terminal admission-control outcomes -
/// the session never ran (kExpired: its deadline passed while it was still
/// waiting in the queue).  A ProfileSession driven directly (no scheduler)
/// reports kDone.
enum class SessionState : std::uint8_t {
  kQueued = 0,
  kAdmitted,
  kRunning,
  kDone,
  kFailed,
  kRejected,
  kShed,
  kExpired,
};

/// Stable lowercase names ("queued", "done", ...) used in session
/// metadata files and CLI output.
[[nodiscard]] std::string_view to_string(SessionState state) noexcept;

/// Summary of one profiled run (Eq. 1 inputs + diagnostics).
struct SessionReport {
  std::uint64_t mem_ops = 0;
  std::uint64_t mem_counted = 0;
  std::uint64_t processed_samples = 0;
  std::uint64_t skipped_records = 0;
  std::uint64_t period = 0;
  std::uint64_t baseline_ns = 0;
  std::uint64_t instrumented_ns = 0;
  std::uint64_t selections = 0;
  std::uint64_t collisions = 0;
  std::uint64_t collision_flags = 0;
  std::uint64_t dropped_full = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t decode_stalls = 0;  ///< Decode-pool backpressure (queue-full spins).
  // Async drain pipeline overlap telemetry (zero unless
  // sim::EngineConfig::async_drain was on).
  std::uint64_t overlapped_cycles = 0;  ///< Decode retired in the timeline's shadow.
  std::uint64_t retired_epochs = 0;     ///< Drain epochs whose decode retired.
  std::uint64_t peak_epoch_lag = 0;     ///< Max unretired epochs at a drain point.
  std::uint64_t epoch_wait_cycles = 0;  ///< Modeled consumer-thread backlog lag.

  // Topology placement telemetry (sim::EngineStats; zero on single-socket
  // machines).  Telemetry only: placement never changes the trace.
  std::uint64_t local_drain_bytes = 0;   ///< Drained bytes decoded node-locally.
  std::uint64_t remote_drain_bytes = 0;  ///< Drained bytes modeled cross-socket.
  std::uint64_t remote_drain_cycles = 0;  ///< Modeled cross-socket penalty.
  std::uint32_t placement_nodes = 0;     ///< Nodes of the placement topology.
  std::uint32_t pinned_shards = 0;  ///< Shard workers whose host pin succeeded.

  // Scheduler placement (filled by store::run_sessions when the session ran
  // under the bounded worker pool; a direct ProfileSession::profile call
  // leaves the defaults: kDone, no queue wait, worker 0).
  SessionState sched_state = SessionState::kDone;
  std::uint64_t sched_queue_wait_ns = 0;  ///< Time spent in the admission queue.
  std::uint32_t sched_worker = 0;         ///< Worker-pool slot that ran the session.
  std::uint32_t sched_node = 0;  ///< Topology node of that worker (0 without one).

  // Streaming-capture telemetry (filled by store::run_sessions when the
  // job teed its trace into a net::StreamingTraceSink; zero otherwise).
  std::uint64_t stream_blocks_sent = 0;
  std::uint64_t stream_blocks_dropped = 0;  ///< Drop-oldest ring evictions.
  /// Capture degraded to local-only (collector unreachable, or the stream
  /// failed mid-run).  The local on-disk trace is complete either way.
  bool stream_fallback = false;

  // Time-budget telemetry (zero unless sim::EngineConfig::budget pointed at
  // an armed core::BudgetToken).
  std::uint64_t budget_checkpoints = 0;  ///< Cooperative poll() visits.
  /// The budget tripped mid-replay: remaining work was skipped and the
  /// trace was finalized early (valid but truncated).
  bool budget_truncated = false;

  /// Eq. 1 of the paper.
  [[nodiscard]] double accuracy() const;
  /// Relative execution-time overhead (0 when no baseline was run).
  [[nodiscard]] double time_overhead() const;
};

class ProfileSession {
 public:
  ProfileSession(const NmoConfig& nmo_config, const sim::EngineConfig& engine_config);

  /// Runs the workload under the profiler; with `with_baseline` the
  /// workload is first executed uninstrumented on an identical machine to
  /// measure the baseline time (the paper's overhead methodology).
  SessionReport profile(wl::Workload& workload, bool with_baseline = true);

  [[nodiscard]] const Profiler& profiler() const { return *profiler_; }
  [[nodiscard]] Profiler& profiler() { return *profiler_; }
  /// The instrumented engine of the last profile() call (valid until the
  /// next call); exposes the machine for hierarchy statistics.
  [[nodiscard]] sim::TraceEngine* engine() { return engine_.get(); }

 private:
  NmoConfig nmo_config_;
  sim::EngineConfig engine_config_;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<sim::TraceEngine> engine_;
};

}  // namespace nmo::core
