// ProfileSession: the highest-level entry point, tying a workload, the
// machine simulator and the NMO profiler together.
//
// This is what examples and figure benches use:
//
//   core::NmoConfig nmo = core::NmoConfig::from_env(env);
//   core::ProfileSession session(nmo, engine_config);
//   auto report = session.profile(workload);
//   report.accuracy(), session.profiler().trace(), ...
#pragma once

#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "core/profiler.hpp"
#include "sim/engine.hpp"
#include "workloads/workload.hpp"

namespace nmo::core {

/// Summary of one profiled run (Eq. 1 inputs + diagnostics).
struct SessionReport {
  std::uint64_t mem_ops = 0;
  std::uint64_t mem_counted = 0;
  std::uint64_t processed_samples = 0;
  std::uint64_t skipped_records = 0;
  std::uint64_t period = 0;
  std::uint64_t baseline_ns = 0;
  std::uint64_t instrumented_ns = 0;
  std::uint64_t selections = 0;
  std::uint64_t collisions = 0;
  std::uint64_t collision_flags = 0;
  std::uint64_t dropped_full = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t decode_stalls = 0;  ///< Decode-pool backpressure (queue-full spins).

  /// Eq. 1 of the paper.
  [[nodiscard]] double accuracy() const;
  /// Relative execution-time overhead (0 when no baseline was run).
  [[nodiscard]] double time_overhead() const;
};

class ProfileSession {
 public:
  ProfileSession(const NmoConfig& nmo_config, const sim::EngineConfig& engine_config);

  /// Runs the workload under the profiler; with `with_baseline` the
  /// workload is first executed uninstrumented on an identical machine to
  /// measure the baseline time (the paper's overhead methodology).
  SessionReport profile(wl::Workload& workload, bool with_baseline = true);

  [[nodiscard]] const Profiler& profiler() const { return *profiler_; }
  [[nodiscard]] Profiler& profiler() { return *profiler_; }
  /// The instrumented engine of the last profile() call (valid until the
  /// next call); exposes the machine for hierarchy statistics.
  [[nodiscard]] sim::TraceEngine* engine() { return engine_.get(); }

 private:
  NmoConfig nmo_config_;
  sim::EngineConfig engine_config_;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<sim::TraceEngine> engine_;
};

}  // namespace nmo::core
