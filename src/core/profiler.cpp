#include "core/profiler.hpp"

namespace nmo::core {
namespace {
// Thread-local so N concurrent ProfileSessions (store/session_store.hpp)
// can each install their own profiler for the C annotation API without
// interfering.  Deliberately NO process-wide fallback: nullptr must mean
// "explicitly no profiler" (baseline runs install it to run
// uninstrumented), and a fallback would leak a concurrent session's
// profiler into those runs - an unsynchronized cross-thread write.  The
// contract is that annotations come from the thread running the session,
// which is where the engine replays every workload.
thread_local Profiler* g_active = nullptr;
}  // namespace

Profiler* set_active_profiler(Profiler* profiler) {
  Profiler* prev = g_active;
  g_active = profiler;
  return prev;
}

Profiler* active_profiler() { return g_active; }

core::TraceSample Profiler::convert(const spe::Record& rec, CoreId core) const {
  TraceSample s;
  s.time_ns = time_conv_.to_ns(rec.timestamp);
  s.vaddr = rec.vaddr;
  s.pc = rec.pc;
  s.op = rec.op;
  s.level = rec.level;
  s.latency = rec.total_latency;
  s.core = core;
  const auto region = regions_.find_region(rec.vaddr);
  s.region = region ? static_cast<std::int32_t>(*region) : -1;
  return s;
}

void Profiler::on_sample(const spe::Record& rec, CoreId core) {
  if (!has_mode(config_.mode, Mode::kSample)) return;
  trace_.add(convert(rec, core));
}

void Profiler::on_sample_batch(std::span<const spe::Record> records, CoreId core) {
  if (!has_mode(config_.mode, Mode::kSample)) return;
  for (const spe::Record& rec : records) trace_.add(convert(rec, core));
}

void Profiler::bind_trace_shards(std::uint32_t n) {
  trace_shards_.assign(n, SampleTrace{});
}

spe::DecodePool::BatchSink Profiler::make_shard_sink() {
  return [this](std::span<const spe::Record> records, CoreId core, std::uint32_t shard) {
    if (!has_mode(config_.mode, Mode::kSample)) return;
    SampleTrace& out = trace_shards_[shard];
    for (const spe::Record& rec : records) out.add(convert(rec, core));
  };
}

void Profiler::finalize_trace() {
  for (auto& shard : trace_shards_) {
    trace_.append(shard);
    shard.clear();
  }
  trace_.sort_canonical();
}

void Profiler::tick(std::uint64_t now_ns, std::uint64_t bus_bytes_cum,
                    std::uint64_t fp_ops_cum) {
  if (has_mode(config_.mode, Mode::kBandwidth)) {
    bandwidth_.tick(now_ns, bus_bytes_cum, fp_ops_cum);
  }
  if (has_mode(config_.mode, Mode::kCapacity)) {
    capacity_.sample(now_ns);
  }
}

}  // namespace nmo::core
