#include "core/profiler.hpp"

namespace nmo::core {
namespace {
Profiler* g_active = nullptr;
}  // namespace

Profiler* set_active_profiler(Profiler* profiler) {
  Profiler* prev = g_active;
  g_active = profiler;
  return prev;
}

Profiler* active_profiler() { return g_active; }

void Profiler::on_sample(const spe::Record& rec, CoreId core) {
  if (!has_mode(config_.mode, Mode::kSample)) return;
  TraceSample s;
  s.time_ns = time_conv_.to_ns(rec.timestamp);
  s.vaddr = rec.vaddr;
  s.pc = rec.pc;
  s.op = rec.op;
  s.level = rec.level;
  s.latency = rec.total_latency;
  s.core = core;
  const auto region = regions_.find_region(rec.vaddr);
  s.region = region ? static_cast<std::int32_t>(*region) : -1;
  trace_.add(s);
}

void Profiler::tick(std::uint64_t now_ns, std::uint64_t bus_bytes_cum,
                    std::uint64_t fp_ops_cum) {
  if (has_mode(config_.mode, Mode::kBandwidth)) {
    bandwidth_.tick(now_ns, bus_bytes_cum, fp_ops_cum);
  }
  if (has_mode(config_.mode, Mode::kCapacity)) {
    capacity_.sample(now_ns);
  }
}

}  // namespace nmo::core
