// Cooperative preemption token for per-job time budgets.
//
// A BudgetToken is armed with a wall-clock budget (steady_clock based) and
// polled at cooperative checkpoints - the monitor drain-round loop and the
// engine replay loop.  Once the budget is exceeded (or the token is
// cancelled externally) the token trips permanently; the session then stops
// replaying further work and finalizes a *valid truncated* trace, reusing
// the normal finalize path, so `nmo-trace verify` stays clean.
//
// This is a leaf header on purpose: core/session.hpp includes
// sim/engine.hpp which includes sim/monitor.hpp, so the token shared by all
// three layers cannot live in session.hpp without creating an include
// cycle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace nmo::core {

/// Shared cancellation/budget token.  arm()/cancel() from the controlling
/// thread; poll() from the worker at checkpoints.  All transitions are
/// one-way (a tripped token stays tripped), which keeps the memory ordering
/// requirements trivial.
class BudgetToken {
 public:
  BudgetToken() = default;
  BudgetToken(const BudgetToken&) = delete;
  BudgetToken& operator=(const BudgetToken&) = delete;

  /// Starts the clock now with the given wall-clock budget.  budget_ns == 0
  /// leaves the token unarmed (poll() never trips on time).
  void arm(std::uint64_t budget_ns) {
    if (budget_ns == 0) return;
    // Both stores happen-before the armed_ release, so a poll() that
    // observes armed_ acquires a coherent (start, budget) pair even when
    // arm() races a checkpoint on the worker thread.
    start_ns_.store(now_ns(), std::memory_order_relaxed);
    budget_ns_.store(budget_ns, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// External cancellation (tenant shed, shutdown).  Trips the token at the
  /// next checkpoint regardless of elapsed time.
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Cooperative checkpoint: records the visit and trips the token when the
  /// budget is exhausted or the token was cancelled.  Returns tripped().
  bool poll() {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    if (tripped_.load(std::memory_order_acquire)) return true;
    if (cancelled_.load(std::memory_order_acquire)) {
      tripped_.store(true, std::memory_order_release);
      return true;
    }
    if (armed_.load(std::memory_order_acquire) &&
        elapsed_ns() > budget_ns_.load(std::memory_order_relaxed)) {
      tripped_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Cheap read for hot loops; only poll() advances the tripped state on
  /// time, so at least one checkpoint must poll.
  [[nodiscard]] bool tripped() const { return tripped_.load(std::memory_order_acquire); }

  [[nodiscard]] bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Number of checkpoint visits (diagnostic: proves the cooperative hook
  /// actually ran).
  [[nodiscard]] std::uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t budget_ns() const {
    return budget_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    if (!armed_.load(std::memory_order_acquire)) return 0;
    const std::uint64_t start = start_ns_.load(std::memory_order_relaxed);
    const std::uint64_t now = now_ns();
    return now > start ? now - start : 0;
  }

  /// Why the token tripped: "" (not tripped), "cancelled", or "budget".
  [[nodiscard]] const char* reason() const {
    if (!tripped()) return "";
    return cancelled_.load(std::memory_order_acquire) ? "cancelled" : "budget";
  }

 private:
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
  }

  std::atomic<bool> armed_{false};
  std::atomic<bool> tripped_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> checkpoints_{0};
  // Plain fields here were a data race: arm() on the controlling thread
  // wrote them while poll()/elapsed_ns() read them from the worker
  // (flagged by -Wthread-safety review of this header; see CHANGES.md).
  std::atomic<std::uint64_t> budget_ns_{0};
  std::atomic<std::uint64_t> start_ns_{0};
};

}  // namespace nmo::core
