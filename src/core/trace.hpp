// The sample trace: decoded SPE samples with timescale-converted
// timestamps, region attribution, CSV output and an MD5 fingerprint
// (upstream NMO hashes traces with OpenSSL MD5; we use common/md5.hpp).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/md5.hpp"
#include "common/types.hpp"

namespace nmo::core {

/// One processed sample as NMO's post-processing scripts see it.
struct TraceSample {
  std::uint64_t time_ns = 0;  ///< perf-clock time (after conversion).
  Addr vaddr = 0;
  Addr pc = 0;
  MemOp op = MemOp::kLoad;
  MemLevel level = MemLevel::kL1;
  std::uint16_t latency = 0;
  CoreId core = 0;
  std::int32_t region = -1;  ///< Index into RegionTable::regions(), -1 = untagged.
};

/// The canonical total order over samples: timestamp, then core, then the
/// remaining fields as tie-breakers.  Shared by SampleTrace::sort_canonical
/// and the on-disk store's k-way merger (store/trace_merger.hpp), so the
/// two can never order traces differently.
[[nodiscard]] bool canonical_less(const TraceSample& a, const TraceSample& b) noexcept;

/// Absorbs one sample into `hasher` exactly as SampleTrace::fingerprint
/// does; store::TraceWriter uses the same routine for its footer digest.
void fingerprint_update(Md5& hasher, const TraceSample& s);

/// Writes one sample as a CSV row (no header).  SampleTrace::write_csv and
/// the nmo-trace export-csv streaming path share this formatter, keeping
/// their output byte-identical.
void write_csv_row(std::ostream& out, const TraceSample& s);

/// The CSV column header line (with trailing newline).
inline constexpr std::string_view kTraceCsvHeader =
    "time_ns,vaddr,pc,op,level,latency,core,region\n";

class SampleTrace {
 public:
  void add(const TraceSample& s) { samples_.push_back(s); }

  /// Appends every sample of `other` (shard merge at finalize).  Appending
  /// a trace to itself duplicates its samples.
  void append(const SampleTrace& other);

  /// Sorts into the canonical order: timestamp, then core, then the
  /// remaining fields as tie-breakers.  The comparator is a total order
  /// over the full sample content, so any two traces holding the same
  /// multiset of samples - e.g. the serial decode path and the sharded
  /// parallel one - canonicalize to byte-identical CSV/fingerprint output
  /// regardless of arrival order.
  void sort_canonical();

  [[nodiscard]] const std::vector<TraceSample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// MD5 fingerprint over the binary sample stream (stable across runs
  /// with the same seed - the identity check NMO's scripts perform).
  [[nodiscard]] std::string fingerprint() const;

  /// Writes the trace as CSV: time_ns,vaddr,pc,op,level,latency,core,region.
  void write_csv(std::ostream& out) const;

  void clear() { samples_.clear(); }

 private:
  std::vector<TraceSample> samples_;
};

}  // namespace nmo::core
