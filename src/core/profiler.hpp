// The NMO profiler object: owns all collection state for one profiled run.
//
// The runtime component described in section III: it consumes decoded SPE
// samples (region profiling), bus event counters (bandwidth), allocation
// reports (capacity), and the annotation API calls (tags/phases).  The
// machine substrate - real hardware upstream, sim::TraceEngine here -
// pushes data in; post-processing reads the accumulated trace and series.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/bandwidth.hpp"
#include "core/capacity.hpp"
#include "core/config.hpp"
#include "core/regions.hpp"
#include "core/trace.hpp"
#include "kernel/timeconv.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/decode_pool.hpp"

namespace nmo::core {

class Profiler {
 public:
  explicit Profiler(NmoConfig config) : config_(std::move(config)) {}

  // -- wiring (done by the engine/session) -----------------------------------
  /// Supplies the virtual-time source used to stamp annotations.
  void set_time_source(std::function<std::uint64_t()> now_ns) { now_ns_ = std::move(now_ns); }
  /// Supplies the SPE-timer -> perf-clock conversion (from the ring buffer
  /// metadata page, section IV-A).
  void set_time_conv(const kern::TimeConv& conv) { time_conv_ = conv; }

  /// Installed by the async drain pipeline (sim/drain_service.hpp): called
  /// before any region-table mutation so in-flight decode - which reads
  /// the table for attribution, possibly on another thread - retires
  /// first.  This keeps async region attribution byte-identical to the
  /// synchronous path, where decode always completes inside the drain
  /// round that preceded the mutation.
  void set_quiesce(std::function<void()> quiesce) { quiesce_ = std::move(quiesce); }

  /// Sink logic for spe::AuxConsumer: converts timestamps, attributes
  /// regions, appends to the trace.
  void on_sample(const spe::Record& rec, CoreId core);

  /// Batched variant of on_sample: one call per decoded record batch.
  void on_sample_batch(std::span<const spe::Record> records, CoreId core);
  [[nodiscard]] spe::AuxConsumer::BatchSink make_batch_sink() {
    return [this](std::span<const spe::Record> r, CoreId c) { on_sample_batch(r, c); };
  }

  // -- sharded collection (parallel decode pipeline) --------------------------
  /// Creates `n` per-shard traces for a spe::DecodePool with `n` shards.
  void bind_trace_shards(std::uint32_t n);
  /// Sink for spe::DecodePool workers: each shard appends only to its own
  /// trace, so no locking is needed.  Requires bind_trace_shards(n) first.
  [[nodiscard]] spe::DecodePool::BatchSink make_shard_sink();
  [[nodiscard]] bool sharded() const { return !trace_shards_.empty(); }

  /// Finalizes the trace: merges any shard traces into the main one and
  /// sorts into the canonical order (core/trace.hpp), so the serial and the
  /// sharded decode paths emit byte-identical CSV and MD5 fingerprints.
  void finalize_trace();

  /// Periodic tick with cumulative machine counters.
  void tick(std::uint64_t now_ns, std::uint64_t bus_bytes_cum, std::uint64_t fp_ops_cum);

  // -- annotation API (routed from core/nmo.h) --------------------------------
  void tag_addr(std::string_view name, Addr start, Addr end) {
    quiesce();
    regions_.tag_addr(name, start, end);
  }
  void phase_start(std::string_view name) {
    quiesce();
    regions_.phase_start(name, now());
  }
  void phase_stop() {
    quiesce();
    regions_.phase_stop(now());
  }
  void note_alloc(std::uint64_t bytes) {
    if (has_mode(config_.mode, Mode::kCapacity)) capacity_.on_alloc(bytes, now());
  }
  void note_free(std::uint64_t bytes) {
    if (has_mode(config_.mode, Mode::kCapacity)) capacity_.on_free(bytes, now());
  }

  // -- results ----------------------------------------------------------------
  [[nodiscard]] const NmoConfig& config() const { return config_; }
  [[nodiscard]] const SampleTrace& trace() const { return trace_; }
  [[nodiscard]] const RegionTable& regions() const { return regions_; }
  [[nodiscard]] RegionTable& regions() { return regions_; }
  [[nodiscard]] const CapacityTracker& capacity() const { return capacity_; }
  [[nodiscard]] const BandwidthEstimator& bandwidth() const { return bandwidth_; }
  [[nodiscard]] std::uint64_t now() const { return now_ns_ ? now_ns_() : 0; }

 private:
  [[nodiscard]] TraceSample convert(const spe::Record& rec, CoreId core) const;

  void quiesce() {
    if (quiesce_) quiesce_();
  }

  NmoConfig config_;
  std::function<std::uint64_t()> now_ns_;
  std::function<void()> quiesce_;
  kern::TimeConv time_conv_ = kern::TimeConv::from_frequency(1e9);
  RegionTable regions_;
  SampleTrace trace_;
  std::vector<SampleTrace> trace_shards_;  ///< One per decode-pool shard.
  CapacityTracker capacity_;
  BandwidthEstimator bandwidth_;
};

/// Installs/clears the profiler the C API (core/nmo.h) routes to on the
/// calling thread.  The binding is strictly thread-local: concurrent
/// sessions cannot interfere, and installing nullptr (the baseline run)
/// reliably means "no profiler" on this thread.  Annotations must
/// therefore come from the session's own thread - which is where the
/// engine replays every workload.  Returns the previous binding so
/// callers can restore it.
Profiler* set_active_profiler(Profiler* profiler);
[[nodiscard]] Profiler* active_profiler();

/// RAII form of set_active_profiler: installs `profiler` (which may be
/// nullptr for baseline runs) and restores the previous binding on scope
/// exit - including exceptional exit.  This is what keeps a pooled worker
/// thread (store/scheduler.hpp) safe to reuse across sessions: even if a
/// profiled workload throws, the worker's thread-local binding can never
/// leak one session's profiler into the next session scheduled onto the
/// same worker.
class ActiveProfilerScope {
 public:
  explicit ActiveProfilerScope(Profiler* profiler) : prev_(set_active_profiler(profiler)) {}
  ~ActiveProfilerScope() { set_active_profiler(prev_); }

  ActiveProfilerScope(const ActiveProfilerScope&) = delete;
  ActiveProfilerScope& operator=(const ActiveProfilerScope&) = delete;

 private:
  Profiler* prev_;
};

}  // namespace nmo::core
