#include "core/trace.hpp"

#include <algorithm>
#include <array>
#include <tuple>

namespace nmo::core {

bool canonical_less(const TraceSample& a, const TraceSample& b) noexcept {
  return std::tie(a.time_ns, a.core, a.vaddr, a.pc, a.op, a.level, a.latency, a.region) <
         std::tie(b.time_ns, b.core, b.vaddr, b.pc, b.op, b.level, b.latency, b.region);
}

void fingerprint_update(Md5& hasher, const TraceSample& s) {
  // Every field participates, so the digest certifies the full CSV content
  // (including region) - the property the trace store's footer check and
  // the merge-parity acceptance rely on.  The words are serialized
  // explicitly little-endian (matching the .nmot wire format) so the
  // digest is identical across host endianness.
  const std::array<std::uint64_t, 5> words{
      s.time_ns, s.vaddr, s.pc,
      static_cast<std::uint64_t>(s.latency) | (static_cast<std::uint64_t>(s.core) << 16) |
          (static_cast<std::uint64_t>(s.op) << 48) |
          (static_cast<std::uint64_t>(s.level) << 56),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(s.region))};
  std::array<std::byte, sizeof(words)> bytes;
  std::size_t off = 0;
  for (std::uint64_t w : words) {
    for (int i = 0; i < 8; ++i) bytes[off++] = static_cast<std::byte>((w >> (8 * i)) & 0xff);
  }
  hasher.update(bytes);
}

void write_csv_row(std::ostream& out, const TraceSample& s) {
  out << s.time_ns << ',' << s.vaddr << ',' << s.pc << ',' << to_string(s.op) << ','
      << to_string(s.level) << ',' << s.latency << ',' << s.core << ',' << s.region << '\n';
}

void SampleTrace::append(const SampleTrace& other) {
  if (&other == this) {
    // Self-append: insert() from a container into itself invalidates the
    // source iterators on reallocation, so duplicate by index instead.
    const std::size_t n = samples_.size();
    samples_.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) samples_.push_back(samples_[i]);
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

void SampleTrace::sort_canonical() {
  std::sort(samples_.begin(), samples_.end(), canonical_less);
}

std::string SampleTrace::fingerprint() const {
  Md5 hasher;
  for (const auto& s : samples_) fingerprint_update(hasher, s);
  return hasher.hex_digest();
}

void SampleTrace::write_csv(std::ostream& out) const {
  out << kTraceCsvHeader;
  for (const auto& s : samples_) write_csv_row(out, s);
}

}  // namespace nmo::core
