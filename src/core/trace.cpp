#include "core/trace.hpp"

#include <array>

namespace nmo::core {

std::string SampleTrace::fingerprint() const {
  Md5 hasher;
  for (const auto& s : samples_) {
    std::array<std::uint64_t, 4> words{
        s.time_ns, s.vaddr, s.pc,
        static_cast<std::uint64_t>(s.latency) | (static_cast<std::uint64_t>(s.core) << 16) |
            (static_cast<std::uint64_t>(s.op) << 48) |
            (static_cast<std::uint64_t>(s.level) << 56)};
    hasher.update(std::span<const std::byte>(reinterpret_cast<const std::byte*>(words.data()),
                                             sizeof(words)));
  }
  return hasher.hex_digest();
}

void SampleTrace::write_csv(std::ostream& out) const {
  out << "time_ns,vaddr,pc,op,level,latency,core,region\n";
  for (const auto& s : samples_) {
    out << s.time_ns << ',' << s.vaddr << ',' << s.pc << ',' << to_string(s.op) << ','
        << to_string(s.level) << ',' << s.latency << ',' << s.core << ',' << s.region << '\n';
  }
}

}  // namespace nmo::core
