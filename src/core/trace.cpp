#include "core/trace.hpp"

#include <algorithm>
#include <array>
#include <tuple>

namespace nmo::core {

void SampleTrace::sort_canonical() {
  std::sort(samples_.begin(), samples_.end(), [](const TraceSample& a, const TraceSample& b) {
    return std::tie(a.time_ns, a.core, a.vaddr, a.pc, a.op, a.level, a.latency, a.region) <
           std::tie(b.time_ns, b.core, b.vaddr, b.pc, b.op, b.level, b.latency, b.region);
  });
}

std::string SampleTrace::fingerprint() const {
  Md5 hasher;
  for (const auto& s : samples_) {
    std::array<std::uint64_t, 4> words{
        s.time_ns, s.vaddr, s.pc,
        static_cast<std::uint64_t>(s.latency) | (static_cast<std::uint64_t>(s.core) << 16) |
            (static_cast<std::uint64_t>(s.op) << 48) |
            (static_cast<std::uint64_t>(s.level) << 56)};
    hasher.update(std::span<const std::byte>(reinterpret_cast<const std::byte*>(words.data()),
                                             sizeof(words)));
  }
  return hasher.hex_digest();
}

void SampleTrace::write_csv(std::ostream& out) const {
  out << "time_ns,vaddr,pc,op,level,latency,core,region\n";
  for (const auto& s : samples_) {
    out << s.time_ns << ',' << s.vaddr << ',' << s.pc << ',' << to_string(s.op) << ','
        << to_string(s.level) << ',' << s.latency << ',' << s.core << ',' << s.region << '\n';
  }
}

}  // namespace nmo::core
