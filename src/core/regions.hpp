// Tagged memory regions and execution phases (the annotation model of
// section III-B: nmo_tag_addr / nmo_start / nmo_stop).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace nmo::core {

/// A named address range ("data_a" -> [start, end)).
struct AddrRegion {
  std::string name;
  Addr start = 0;
  Addr end = 0;

  [[nodiscard]] bool contains(Addr a) const { return a >= start && a < end; }
};

/// A named execution phase with its time window.
struct PhaseSpan {
  std::string name;
  std::uint64_t t_start_ns = 0;
  std::uint64_t t_stop_ns = 0;  ///< 0 while still open.
  std::uint32_t depth = 0;      ///< Nesting depth at open time.
};

class RegionTable {
 public:
  /// Registers (or re-registers) a tagged address range.
  void tag_addr(std::string_view name, Addr start, Addr end);

  /// Opens/closes phases; phases nest (stack discipline).
  void phase_start(std::string_view name, std::uint64_t now_ns);
  void phase_stop(std::uint64_t now_ns);

  /// Region index containing `addr`, or nullopt.  Later tags win when
  /// ranges overlap (re-tagging semantics).
  [[nodiscard]] std::optional<std::size_t> find_region(Addr addr) const;
  [[nodiscard]] const std::vector<AddrRegion>& regions() const { return regions_; }

  /// All phase spans recorded so far (closed or open).
  [[nodiscard]] const std::vector<PhaseSpan>& phases() const { return phases_; }

  /// Innermost phase open at time `t_ns`, if any.
  [[nodiscard]] std::optional<std::size_t> phase_at(std::uint64_t t_ns) const;

  /// Number of still-open phases.
  [[nodiscard]] std::size_t open_phases() const { return open_stack_.size(); }

 private:
  std::vector<AddrRegion> regions_;
  std::vector<PhaseSpan> phases_;
  std::vector<std::size_t> open_stack_;
};

}  // namespace nmo::core
