// C API shims (core/nmo.h) routing to the active profiler.
//
// The annotations are no-ops when no profiler is attached or collection is
// disabled, so instrumented applications run unmodified without NMO - the
// transparency property of section III-B.
#include "core/nmo.h"

#include "core/profiler.hpp"

extern "C" {

int nmo_enabled(void) {
  auto* p = nmo::core::active_profiler();
  return (p != nullptr && p->config().enable) ? 1 : 0;
}

void nmo_tag_addr(const char* name, uint64_t start, uint64_t end) {
  auto* p = nmo::core::active_profiler();
  if (p == nullptr || name == nullptr) return;
  p->tag_addr(name, start, end);
}

void nmo_start(const char* tag) {
  auto* p = nmo::core::active_profiler();
  if (p == nullptr || tag == nullptr) return;
  p->phase_start(tag);
}

void nmo_stop(void) {
  auto* p = nmo::core::active_profiler();
  if (p == nullptr) return;
  p->phase_stop();
}

void nmo_note_alloc(uint64_t bytes) {
  auto* p = nmo::core::active_profiler();
  if (p == nullptr) return;
  p->note_alloc(bytes);
}

void nmo_note_free(uint64_t bytes) {
  auto* p = nmo::core::active_profiler();
  if (p == nullptr) return;
  p->note_free(bytes);
}

}  // extern "C"
