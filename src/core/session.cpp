#include "core/session.hpp"

#include "analysis/accuracy.hpp"

namespace nmo::core {

std::string_view to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kAdmitted:
      return "admitted";
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kFailed:
      return "failed";
    case SessionState::kRejected:
      return "rejected";
    case SessionState::kShed:
      return "shed";
    case SessionState::kExpired:
      return "expired";
  }
  return "?";
}

double SessionReport::accuracy() const {
  return analysis::accuracy(mem_counted, processed_samples, period);
}

double SessionReport::time_overhead() const {
  return baseline_ns > 0 ? analysis::time_overhead(baseline_ns, instrumented_ns) : 0.0;
}

ProfileSession::ProfileSession(const NmoConfig& nmo_config,
                               const sim::EngineConfig& engine_config)
    : nmo_config_(nmo_config), engine_config_(engine_config) {}

SessionReport ProfileSession::profile(wl::Workload& workload, bool with_baseline) {
  SessionReport report;
  report.period = nmo_config_.period;

  if (with_baseline) {
    // Uninstrumented timing run on an identical, independent machine.  The
    // RAII scope restores the previous binding even if the workload
    // throws, so a pooled worker thread stays clean for its next session.
    ActiveProfilerScope scope(nullptr);
    sim::TraceEngine baseline(engine_config_, nullptr);
    workload.run(baseline);
    baseline.finalize();
    report.baseline_ns = baseline.stats().instrumented_ns;
  }

  profiler_ = std::make_unique<Profiler>(nmo_config_);
  engine_ = std::make_unique<sim::TraceEngine>(engine_config_, profiler_.get());
  {
    ActiveProfilerScope scope(profiler_.get());
    workload.run(*engine_);
    engine_->finalize();
  }

  const auto stats = engine_->stats();
  report.mem_ops = stats.mem_ops;
  report.mem_counted = stats.mem_counted;
  report.instrumented_ns = stats.instrumented_ns;
  report.selections = stats.selections;
  report.collisions = stats.collisions;
  report.dropped_full = stats.dropped_full;
  report.wakeups = stats.wakeups;
  report.decode_stalls = stats.decode_stalls;
  report.overlapped_cycles = stats.overlapped_cycles;
  report.retired_epochs = stats.retired_epochs;
  report.peak_epoch_lag = stats.peak_epoch_lag;
  report.epoch_wait_cycles = stats.epoch_wait_cycles;
  report.local_drain_bytes = stats.local_drain_bytes;
  report.remote_drain_bytes = stats.remote_drain_bytes;
  report.remote_drain_cycles = stats.remote_drain_cycles;
  report.placement_nodes = stats.placement_nodes;
  report.pinned_shards = stats.pinned_shards;
  report.budget_checkpoints = stats.budget_checkpoints;
  report.budget_truncated = stats.budget_truncated;
  report.processed_samples = profiler_->trace().size();
  if (const auto* consumer = engine_->consumer()) {
    report.skipped_records = consumer->counts().records_skipped;
    report.collision_flags = consumer->counts().collision_flags;
  }
  return report;
}

}  // namespace nmo::core
