/*
 * NMO public C API - architecture-agnostic source annotations.
 *
 * This mirrors the interface of section III-B / Listing 1 of the paper:
 * applications (or runtimes preloading NMO) tag memory regions and
 * execution phases; everything else is configured through environment
 * variables (Table I).  The C surface keeps the annotations usable from
 * any language runtime.
 *
 *   nmo_tag_addr("data_a", a_start, a_end);
 *   nmo_start("kernel0");
 *   ... parallel region ...
 *   nmo_stop();
 */
#ifndef NMO_CORE_NMO_H_
#define NMO_CORE_NMO_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Returns 1 when a profiler is attached and collection is enabled. */
int nmo_enabled(void);

/* Tags the address range [start, end) with a human-readable name so that
 * sampled accesses can be attributed to the object. */
void nmo_tag_addr(const char* name, uint64_t start, uint64_t end);

/* Opens a named execution phase; phases may nest. */
void nmo_start(const char* tag);

/* Closes the innermost open phase. */
void nmo_stop(void);

/* Reports an allocation/free to the capacity tracker (used by runtimes
 * that interpose allocators; the simulator's Executor calls these). */
void nmo_note_alloc(uint64_t bytes);
void nmo_note_free(uint64_t bytes);

#ifdef __cplusplus
}
#endif

#endif /* NMO_CORE_NMO_H_ */
