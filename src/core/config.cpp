#include "core/config.hpp"

#include <sstream>

#include "common/units.hpp"

namespace nmo::core {

Mode NmoConfig::parse_mode(const std::string& text, std::vector<std::string>* warnings) {
  Mode mode = Mode::kNone;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    // Trim whitespace and lowercase.
    std::string t;
    for (char c : token) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      }
    }
    if (t.empty() || t == "none") continue;
    if (t == "sample") {
      mode = mode | Mode::kSample;
    } else if (t == "bandwidth") {
      mode = mode | Mode::kBandwidth;
    } else if (t == "capacity") {
      mode = mode | Mode::kCapacity;
    } else if (t == "all") {
      mode = Mode::kAll;
    } else if (warnings != nullptr) {
      warnings->push_back("unknown NMO_MODE token: " + t);
    }
  }
  return mode;
}

NmoConfig NmoConfig::from_env(const Env& env) {
  NmoConfig cfg;
  cfg.enable = env.get_bool("NMO_ENABLE", false);
  cfg.name = env.get_string("NMO_NAME", "nmo");
  cfg.mode = parse_mode(env.get_string("NMO_MODE", "none"), &cfg.parse_warnings);
  cfg.period = env.get_u64("NMO_PERIOD", 0);
  cfg.track_rss = env.get_bool("NMO_TRACK_RSS", false);
  cfg.bufsize_bytes = env.get_size("NMO_BUFSIZE", 1 * kMiB, kMiB);
  cfg.auxbufsize_bytes = env.get_size("NMO_AUXBUFSIZE", 1 * kMiB, kMiB);
  if (cfg.track_rss) cfg.mode = cfg.mode | Mode::kCapacity;
  return cfg;
}

}  // namespace nmo::core
