// The dedicated consumer thread of the async drain pipeline.
//
// The synchronous monitor (sim/monitor.hpp) ends every drain round with
// AuxConsumer::sync() - a fork/join barrier that parks the timeline thread
// until the decode pool has chewed through the whole round.  DrainService
// removes that barrier by modelling what the real NMO runtime would do with
// a second thread: the monitor's round handler only performs stage 1 of the
// drain (ring/aux consumption, which must stay on the timeline so drains
// remain deterministic), closes the drained chunks into an *epoch*, and
// hands the epoch to this service's wakeup queue.  The service thread pulls
// epochs in FIFO order and runs stage 2 continuously:
//
//   timeline thread            service thread              decode shards
//   ---------------            --------------              -------------
//   drain_raw (stage 1)  --->  pop epoch from queue
//   submit_epoch               serial: decode_raw + sink
//   ...keeps simulating...     pool:   DecodePool::submit   decode + sink
//                              retire via epoch tickets <---processed++
//
// Epoch-based completion replaces the fork/join: decode of round N overlaps
// the drain of round N+1, and the timeline only waits when it explicitly
// observes an epoch that has not retired - barrier() at finalize, or the
// profiler's quiesce hook before a region-table mutation (which keeps
// region attribution identical to the synchronous path).
#pragma once

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/thread_safety.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/decode_pool.hpp"

namespace nmo::sim {

class DrainService {
 public:
  /// Host-side pipeline statistics; coherent after barrier().
  struct Stats {
    std::uint64_t epochs_submitted = 0;
    std::uint64_t epochs_retired = 0;
    /// Max epochs simultaneously in flight (queued + decoding), the
    /// host-side analogue of the monitor's modeled epoch lag.
    std::uint64_t peak_epoch_lag = 0;
    std::uint64_t chunks = 0;  ///< RawChunks pulled off the wakeup queue.
  };

  /// `consumer` supplies stage-2 decode for the serial path and receives
  /// the folded tallies; `pool` (may be null) selects the fan-out path.
  /// Neither is owned.  The service thread starts immediately, named
  /// nmo-drain; a non-kNone `placement` pins it to the node the policy
  /// assigns to shard 0 (where trace assembly concentrates).
  DrainService(spe::AuxConsumer* consumer, spe::DecodePool* pool,
               spe::PlacementOptions placement = {});
  ~DrainService();

  DrainService(const DrainService&) = delete;
  DrainService& operator=(const DrainService&) = delete;

  /// Timeline side: hands one closed drain round to the consumer thread.
  /// Returns the epoch id (0-based, FIFO order).
  std::uint64_t submit_epoch(std::vector<spe::RawChunk> chunks);

  /// Waits until every submitted epoch has retired - the wakeup queue is
  /// empty, the service thread is idle, and (pool path) every submitted
  /// batch has decoded - then folds the serial decode tallies into the
  /// consumer's counts().  Timeline-thread only; idempotent.
  void barrier();

  [[nodiscard]] Stats stats() const;

 private:
  struct Epoch {
    std::uint64_t id = 0;
    std::vector<spe::RawChunk> chunks;
  };

  void service_loop();
  /// Sweeps pool epoch tickets whose batches have all decoded.
  void sweep_retired() NMO_REQUIRES(mutex_);

  spe::AuxConsumer* consumer_;
  spe::DecodePool* pool_;
  spe::PlacementOptions placement_;

  mutable core::Mutex mutex_{"DrainService"};
  core::CondVar wake_cv_;  ///< Signals the service thread.
  core::CondVar idle_cv_;  ///< Signals barrier() waiters.
  std::deque<Epoch> queue_ NMO_GUARDED_BY(mutex_);
  /// Service thread is inside stage 2 of an epoch.
  bool busy_ NMO_GUARDED_BY(mutex_) = false;
  bool stop_ NMO_GUARDED_BY(mutex_) = false;
  std::uint64_t next_epoch_ NMO_GUARDED_BY(mutex_) = 0;
  /// Pool epochs submitted but not yet observed retired (service thread).
  std::deque<spe::DecodePool::EpochTicket> inflight_ NMO_GUARDED_BY(mutex_);
  /// Serial-path decode tallies pending a fold into the consumer.
  std::uint64_t pending_ok_ NMO_GUARDED_BY(mutex_) = 0;
  std::uint64_t pending_skipped_ NMO_GUARDED_BY(mutex_) = 0;
  Stats stats_ NMO_GUARDED_BY(mutex_);

  std::thread worker_;
};

}  // namespace nmo::sim
