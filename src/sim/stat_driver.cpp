#include "sim/stat_driver.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/drain_service.hpp"
#include "sim/monitor.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/decode_pool.hpp"
#include "spe/sampler.hpp"

namespace nmo::sim {
namespace {

/// Machine-dependent execution parameters of one phase.
struct PhaseExec {
  double cycles_per_mem = 1.0;  ///< Execution time per memory op (throughput view).
  double ops_per_mem = 3.0;     ///< Decoded ops per memory op.
  double mem_frac = 1.0 / 3.0;  ///< P(decoded op is a memory op).
  double oversub = 0.0;         ///< Raw DRAM demand / socket peak (can be > 1).
  double dram_lat_eff = 330.0;  ///< Loaded DRAM dispatch-to-complete latency.
};

PhaseExec derive_phase(const PhaseProfile& ph, const MachineConfig& mc,
                       std::uint32_t active_threads) {
  const auto& lat = mc.hierarchy.latency;
  const CostModel& cost = mc.cost;

  PhaseExec e;
  e.ops_per_mem = 1.0 + ph.nonmem_per_mem;
  e.mem_frac = 1.0 / e.ops_per_mem;

  const double lats[kNumMemLevels] = {
      static_cast<double>(lat.l1), static_cast<double>(lat.l2),
      static_cast<double>(lat.slc), static_cast<double>(lat.dram)};
  double mean_latency = 0.0;
  for (std::size_t l = 0; l < kNumMemLevels; ++l) mean_latency += ph.level_mix[l] * lats[l];

  const double load_frac = 1.0 - ph.store_frac;
  const double exposed =
      mean_latency * (load_frac / cost.mlp + ph.store_frac * cost.store_visibility);
  e.cycles_per_mem = e.ops_per_mem * cost.issue_cpi + exposed +
                     ph.tlb_miss_rate * static_cast<double>(lat.tlb_miss);

  // Aggregate DRAM demand vs. the socket peak: once oversubscribed, every
  // thread's throughput is scaled back and the loaded latency balloons.
  const double bytes_per_mem =
      ph.level_mix[3] * static_cast<double>(mc.hierarchy.l1.line_size) * cost.writeback_factor;
  const double per_thread_rate = mc.freq_hz() / e.cycles_per_mem;  // mem ops/s
  const double demand = per_thread_rate * bytes_per_mem * active_threads;
  const double peak = mc.hierarchy.dram_bytes_per_cycle * mc.freq_hz();
  e.oversub = peak > 0 ? demand / peak : 0.0;
  if (e.oversub > 1.0) e.cycles_per_mem *= e.oversub;
  const double util = std::min(e.oversub, cost.max_utilization);
  e.dram_lat_eff = static_cast<double>(lat.dram) / (1.0 - util);
  return e;
}

enum EventKind : std::uint32_t { kSelection = 0, kMonitorDone = 1 };

struct Ev {
  std::uint64_t cycles;
  std::uint32_t kind;
  std::uint32_t idx;
  std::uint64_t seq;
  bool operator>(const Ev& o) const {
    return cycles != o.cycles ? cycles > o.cycles : seq > o.seq;
  }
};

struct ThreadState {
  Cycles clock = 0;
  double mem_done = 0.0;
  double gap_mem = 0.0;       ///< Mem ops consumed when the pending selection fires.
  bool waiting_event = false; ///< A selection event for this thread is in the heap.
  spe::Sampler* sampler = nullptr;
  kern::PerfEvent* event = nullptr;
  Rng op_rng{0, 0};
  std::uint64_t last_wakeups = 0;
  std::uint64_t last_written = 0;
};

MemLevel draw_level(Rng& rng, const std::array<double, kNumMemLevels>& mix) {
  double u = rng.uniform01();
  for (std::size_t l = 0; l < kNumMemLevels; ++l) {
    if (u < mix[l]) return static_cast<MemLevel>(l);
    u -= mix[l];
  }
  return MemLevel::kDRAM;
}

}  // namespace

StatResult run_statistical(const WorkloadProfile& profile, const MachineConfig& machine_config,
                           const SweepConfig& cfg) {
  Machine machine(machine_config);
  const CostModel& cost = machine.cost();
  auto& mem_counter = machine.open_counter(kern::CountEvent::kMemAccess);

  StatResult result;
  result.period = cfg.period;

  const std::uint32_t threads = std::max<std::uint32_t>(1, cfg.threads);
  std::vector<ThreadState> ts(threads);
  std::vector<std::unique_ptr<spe::Sampler>> samplers;
  std::vector<kern::PerfEvent*> events;

  if (cfg.spe_enabled) {
    kern::PerfEventAttr attr;
    attr.type = kern::kPerfTypeArmSpe;
    attr.config = kern::kSpeConfigLoadsAndStores | (cfg.jitter ? kern::kSpeJitter : 0);
    attr.sample_period = cfg.period;
    attr.aux_watermark = cfg.aux_watermark;
    attr.disabled = false;
    for (std::uint32_t t = 0; t < threads; ++t) {
      auto& ev = machine.open_spe(attr, t % machine_config.hierarchy.cores, cfg.ring_pages,
                                  cfg.aux_bytes);
      samplers.push_back(std::make_unique<spe::Sampler>(&ev, Rng(cfg.seed, 1000 + t)));
      samplers.back()->set_write_batch(cfg.write_batch);
      events.push_back(&ev);
      ts[t].sampler = samplers.back().get();
      ts[t].event = &ev;
    }
  }
  for (std::uint32_t t = 0; t < threads; ++t) ts[t].op_rng = Rng(cfg.seed, 2000 + t);

  std::unique_ptr<spe::DecodePool> decode_pool;
  if (cfg.decode_shards > 1) {
    decode_pool = std::make_unique<spe::DecodePool>(cfg.decode_shards);
  }
  spe::AuxConsumer consumer =
      decode_pool ? spe::AuxConsumer(decode_pool.get()) : spe::AuxConsumer();
  std::unique_ptr<DrainService> drain_service;
  if (cfg.async_drain && cfg.spe_enabled) {
    drain_service = std::make_unique<DrainService>(&consumer, decode_pool.get());
  }
  CostModel monitor_cost = cost;
  if (cfg.monitor_round_interval_cycles != 0) {
    monitor_cost.monitor_round_interval_cycles = cfg.monitor_round_interval_cycles;
  }
  Monitor monitor(monitor_cost, &consumer, events, drain_service.get());

  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> heap;
  std::uint64_t seq = 0;

  Cycles phase_start = 0;
  std::uint64_t accounted_wakeups = 0;
  const auto& lat = machine_config.hierarchy.latency;

  for (const auto& phase : profile.phases) {
    const std::uint32_t active = phase.parallel ? threads : 1;
    const PhaseExec exec = derive_phase(phase, machine_config, active);

    // PMU mem_access baseline count (includes the unsampleable population).
    mem_counter.add_count(static_cast<std::uint64_t>(
        std::llround(static_cast<double>(phase.mem_ops) * (1.0 + cfg.pmu_overcount))));

    for (auto& s : ts) {
      s.clock = phase_start;
      s.mem_done = 0.0;
      s.gap_mem = 0.0;
      s.waiting_event = false;
    }
    const double quota = static_cast<double>(phase.mem_ops) / active;

    if (!cfg.spe_enabled) {
      for (std::uint32_t t = 0; t < active; ++t) {
        ts[t].clock += static_cast<Cycles>(quota * exec.cycles_per_mem);
      }
      phase_start = std::max_element(ts.begin(), ts.end(), [](const auto& a, const auto& b) {
                      return a.clock < b.clock;
                    })->clock;
      continue;
    }

    std::uint32_t remaining = active;
    auto schedule_next = [&](std::uint32_t t) {
      ThreadState& s = ts[t];
      const std::uint64_t gap_ops = s.sampler->draw_interval();
      const double gap_mem = static_cast<double>(gap_ops) * exec.mem_frac;
      if (s.mem_done + gap_mem >= quota) {
        const double left = quota - s.mem_done;
        s.clock += static_cast<Cycles>(left * exec.cycles_per_mem);
        s.mem_done = quota;
        s.waiting_event = false;
        --remaining;
        return;
      }
      s.gap_mem = gap_mem;
      s.waiting_event = true;
      const Cycles when = s.clock + static_cast<Cycles>(gap_mem * exec.cycles_per_mem);
      heap.push(Ev{when, kSelection, t, seq++});
    };

    for (std::uint32_t t = 0; t < active; ++t) schedule_next(t);

    while (remaining > 0) {
      const Ev ev = heap.top();
      heap.pop();
      if (ev.kind == kMonitorDone) {
        if (auto next = monitor.on_round_done(ev.cycles)) {
          heap.push(Ev{*next, kMonitorDone, 0, seq++});
        }
        continue;
      }
      ThreadState& s = ts[ev.idx];
      s.clock = ev.cycles;
      s.mem_done += s.gap_mem;
      s.waiting_event = false;

      // Build the selected operation.
      spe::OpInfo op;
      op.now_cycles = s.clock;
      if (s.op_rng.uniform01() < exec.mem_frac) {
        op.cls = s.op_rng.uniform01() < phase.store_frac ? spe::OpClass::kStore
                                                         : spe::OpClass::kLoad;
        op.level = draw_level(s.op_rng, phase.level_mix);
        op.tlb_miss = s.op_rng.bernoulli(phase.tlb_miss_rate);
        double latency;
        switch (op.level) {
          case MemLevel::kL1: latency = static_cast<double>(lat.l1); break;
          case MemLevel::kL2: latency = static_cast<double>(lat.l2); break;
          case MemLevel::kSLC: latency = static_cast<double>(lat.slc); break;
          case MemLevel::kDRAM:
          default: {
            // Loaded latency with a heavy tail that deepens quadratically
            // under oversubscription: queueing variance grows faster than
            // the mean as more requestors contend, which is what makes
            // collisions keep growing with thread count (Fig. 11).
            latency = exec.dram_lat_eff;
            const double tail = std::max(0.0, exec.oversub - 0.5);
            if (tail > 0.0) latency *= 1.0 + 0.3 * tail * tail * s.op_rng.exponential();
            break;
          }
        }
        if (op.tlb_miss) latency += static_cast<double>(lat.tlb_miss);
        op.latency = static_cast<Cycles>(latency);
        op.vaddr = profile.addr_base + (s.op_rng.uniform(profile.addr_span / 8) * 8);
        op.pc = 0x400000 + s.op_rng.uniform(0x10000);
      } else {
        op.cls = spe::OpClass::kOther;
        op.latency = 8;
        op.pc = 0x400000 + s.op_rng.uniform(0x10000);
      }
      s.sampler->select(op);

      // Charge profiling overhead to this thread: IRQ entry per wakeup and
      // tracking cost per written record.
      const auto& est = s.event->stats();
      while (s.last_wakeups < est.wakeups) {
        ++s.last_wakeups;
        s.clock += cost.irq_cycles;
        if (auto done = monitor.on_wakeup(ev.cycles)) {
          heap.push(Ev{*done, kMonitorDone, 0, seq++});
        }
      }
      const std::uint64_t written = s.sampler->stats().written;
      if (written > s.last_written) {
        s.clock += (written - s.last_written) * cost.sample_cost_cycles;
        s.last_written = written;
      }

      schedule_next(ev.idx);
    }

    phase_start = std::max_element(ts.begin(), ts.end(), [](const auto& a, const auto& b) {
                    return a.clock < b.clock;
                  })->clock;

    // Socket-wide wakeup interference: every wakeup in this phase disturbed
    // all active cores in proportion to socket occupancy (see CostModel).
    std::uint64_t total_wakeups = 0;
    for (const auto* ev : events) total_wakeups += ev->stats().wakeups;
    const std::uint64_t new_wakeups = total_wakeups - accounted_wakeups;
    accounted_wakeups = total_wakeups;
    phase_start += static_cast<Cycles>(
        static_cast<double>(new_wakeups) * static_cast<double>(cost.irq_broadcast_cycles) *
        static_cast<double>(active) / static_cast<double>(machine_config.hierarchy.cores));
  }

  const Cycles final_clock = phase_start;
  result.instrumented_ns = machine.ns_of(final_clock);

  if (cfg.spe_enabled) {
    // Drain any in-flight monitor services (they happened during the run).
    while (!heap.empty()) {
      const Ev ev = heap.top();
      heap.pop();
      if (ev.kind != kMonitorDone) continue;
      if (auto next = monitor.on_round_done(ev.cycles)) {
        heap.push(Ev{*next, kMonitorDone, 0, seq++});
      }
    }
    // Final drain after program exit (outside the timing window).
    for (std::uint32_t t = 0; t < threads; ++t) {
      ts[t].sampler->flush(final_clock);
      ts[t].event->flush_aux(machine.ns_of(final_clock));
    }
    monitor.drain_all();

    for (std::uint32_t t = 0; t < threads; ++t) {
      const auto& ss = ts[t].sampler->stats();
      result.selections += ss.selections;
      result.hw_collisions += ss.collisions;
      result.written += ss.written;
      result.dropped_full += ss.write_failed;
      result.filtered += ss.filtered;
      result.throttled += ss.throttled;
      const auto& es = ts[t].event->stats();
      result.wakeups += es.wakeups;
      result.aux_records += es.aux_records;
    }
    const auto& cc = consumer.counts();
    result.processed_samples = cc.records_ok;
    result.skipped_records = cc.records_skipped;
    result.collision_flags = cc.collision_flags;
    result.truncated_flags = cc.truncated_flags;
    result.throttle_events = machine.throttler().throttle_events();
    result.monitor_services = monitor.rounds();
    if (decode_pool != nullptr) {
      result.decode_stalls = decode_pool->counts().producer_stalls;
    }
    const MonitorOverlap& overlap = monitor.overlap();
    result.overlapped_cycles = overlap.overlapped_cycles;
    result.retired_epochs = overlap.retired_epochs;
    result.peak_epoch_lag = overlap.peak_epoch_lag;
    result.epoch_wait_cycles = overlap.epoch_wait_cycles;
  }

  result.mem_counted = mem_counter.read_count();
  return result;
}

StatResult run_with_baseline(const WorkloadProfile& profile, const MachineConfig& machine_config,
                             const SweepConfig& cfg) {
  SweepConfig base_cfg = cfg;
  base_cfg.spe_enabled = false;
  const StatResult base = run_statistical(profile, machine_config, base_cfg);
  StatResult result = run_statistical(profile, machine_config, cfg);
  result.baseline_ns = base.instrumented_ns;
  return result;
}

}  // namespace nmo::sim
