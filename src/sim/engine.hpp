// The exact trace driver: executes real workloads access-by-access against
// the cache hierarchy and the SPE device model.
//
// TraceEngine implements wl::Executor.  Each parallel_for kernel runs in
// two phases: first every virtual thread executes its slice of the real
// algorithm, recording each memory touch; then the engine replays the
// per-thread access streams in global virtual-time order (min-heap over
// thread clocks) against the shared hierarchy, feeding each decoded
// operation to the per-core SPE sampler, charging profiling overhead, and
// firing monitor drain rounds and per-tick profiler callbacks exactly as
// the statistical driver does.  Region figures (4-6), the CloudSuite
// capacity/bandwidth figures (2-3) and the integration tests run on this
// engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/budget.hpp"
#include "core/profiler.hpp"
#include "sim/drain_service.hpp"
#include "sim/machine.hpp"
#include "sim/monitor.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/decode_pool.hpp"
#include "spe/sampler.hpp"
#include "workloads/workload.hpp"

namespace nmo::sim {

struct EngineConfig {
  MachineConfig machine{};
  std::uint32_t threads = 8;
  std::uint64_t seed = 1;
  /// Profiler tick interval in virtual nanoseconds (capacity/bandwidth
  /// sampling; the paper samples per second at testbed scale).
  std::uint64_t tick_interval_ns = 10'000'000;
  /// Same PMU population mismatch as the statistical driver.
  double pmu_overcount = 0.015;
  /// Decode shards for the parallel SPE decode pipeline (spe/decode_pool).
  /// <= 1 selects the serial inline decode path.  Any value produces
  /// byte-identical traces: shard traces are merged canonically at
  /// finalize (core/trace.hpp sort_canonical).
  std::uint32_t decode_shards = 1;
  /// Write-combining batch for Sampler aux writes (Sampler::set_write_batch).
  /// A conservative default keeps wakeup timing close to per-record writes
  /// while removing most of the per-record call boundary; 1 restores the
  /// exact per-record path.
  std::uint32_t write_batch = 8;
  /// Decode-shard placement policy (spe/decode_pool.hpp).  Placement pins
  /// host worker threads and drives the remote-drain telemetry; it never
  /// changes the core -> shard mapping, so canonical CSV/MD5 output is
  /// byte-identical to an unpinned run under every policy.
  spe::PlacementPolicy decode_placement = spe::PlacementPolicy::kNone;
  /// Topology the placement policy (and remote-drain model) maps onto.
  /// Empty (default) uses the machine's synthetic socket model
  /// (MachineConfig::sockets) - deterministic, host-independent.  Pass
  /// sys::CpuTopology::discover() to pin by the real host topology on
  /// multi-node machines.
  sys::CpuTopology topology;
  /// Decode-progress observer installed on the run's AuxConsumer: called
  /// on the timeline thread with the cumulative decoded-sample tally as it
  /// advances.  The streaming-capture layer (net/block_sender.hpp) feeds
  /// its live heartbeats from this; empty costs nothing.
  std::function<void(std::uint64_t records_ok)> decode_progress;
  /// Staged async drain pipeline (sim/drain_service.hpp): the monitor's
  /// per-round decode runs on a dedicated consumer thread with epoch-based
  /// completion instead of the round-end AuxConsumer::sync() fork/join, so
  /// decode of round N overlaps the drain of round N+1.  The drain
  /// schedule is mode-invariant, so the emitted trace is byte-identical to
  /// the synchronous default; overlap telemetry lands in EngineStats.
  bool async_drain = false;
  /// Cooperative preemption token (core/budget.hpp), or nullptr for an
  /// unlimited run.  The monitor polls it every drain round and the replay
  /// loop checks it between accesses; once tripped, the engine stops
  /// replaying, skips the bodies of any subsequent kernels, and finalize()
  /// emits a *valid truncated* trace.  Must outlive the engine.
  core::BudgetToken* budget = nullptr;
};

/// Aggregated sampling statistics of one engine run.
struct EngineStats {
  std::uint64_t mem_ops = 0;        ///< Exact memory operations executed.
  std::uint64_t mem_counted = 0;    ///< PMU mem_access events (with overcount).
  std::uint64_t fp_ops = 0;
  std::uint64_t selections = 0;
  std::uint64_t collisions = 0;
  std::uint64_t written = 0;
  std::uint64_t dropped_full = 0;
  std::uint64_t filtered = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t instrumented_ns = 0;
  /// Producer queue-full spins in the decode pool (0 on the serial path):
  /// the backpressure signal that decode shards bound the drain loop.
  std::uint64_t decode_stalls = 0;
  // Async drain pipeline overlap telemetry (sim/monitor.hpp MonitorOverlap;
  // all zero when async_drain is off).
  /// Decode cycles retired on the consumer thread in the timeline's shadow.
  std::uint64_t overlapped_cycles = 0;
  /// Drain epochs whose decode retired.
  std::uint64_t retired_epochs = 0;
  /// Max drained-but-unretired epochs observed at any drain point.
  std::uint64_t peak_epoch_lag = 0;
  /// Cycles the modeled consumer thread lagged new epochs (its backlog had
  /// not retired when the next round's chunks landed).
  std::uint64_t epoch_wait_cycles = 0;
  // Streaming-capture telemetry (filled by store::run_sessions when the
  // job teed into a net::StreamingTraceSink; all zero/false otherwise).
  std::uint64_t stream_blocks_sent = 0;
  std::uint64_t stream_blocks_dropped = 0;  ///< Drop-oldest ring evictions.
  /// Capture degraded to local-only: the collector was unreachable or the
  /// stream failed mid-run.  The on-disk trace is complete either way.
  bool stream_fallback = false;
  // Time-budget telemetry (zero unless EngineConfig::budget was set).
  std::uint64_t budget_checkpoints = 0;  ///< Cooperative poll() visits.
  bool budget_truncated = false;  ///< The run stopped early on a tripped budget.
  // Topology placement telemetry (sim/monitor.hpp MonitorPlacement; all
  // zero on single-socket machines).  Telemetry only - the remote-drain
  // model never feeds the timeline, so placement cannot change the trace.
  std::uint64_t local_drain_bytes = 0;   ///< Drained bytes decoded node-locally.
  std::uint64_t remote_drain_bytes = 0;  ///< Drained bytes modeled cross-socket.
  std::uint64_t remote_drain_cycles = 0;  ///< Modeled cross-socket penalty.
  std::uint32_t placement_nodes = 0;   ///< Nodes of the placement topology.
  std::uint32_t pinned_shards = 0;  ///< Shard workers whose host pin succeeded.
};

class TraceEngine final : public wl::Executor {
 public:
  /// `profiler` may be null (pure timing run).  When the profiler's config
  /// enables sampling (mode has kSample and period > 0) the engine opens
  /// one SPE event per virtual thread.
  TraceEngine(const EngineConfig& config, core::Profiler* profiler);
  ~TraceEngine() override;

  // wl::Executor ------------------------------------------------------------
  [[nodiscard]] std::uint32_t threads() const override { return config_.threads; }
  void parallel_for(std::string_view kernel, std::size_t n,
                    const wl::Executor::KernelBody& body) override;
  void serial(std::string_view kernel, const wl::Executor::SerialBody& body) override;
  Addr alloc(std::string_view tag, std::uint64_t bytes, std::uint64_t report_scale) override;
  void dealloc(Addr base) override;
  [[nodiscard]] std::uint64_t now_ns() const override;

  /// Finalizes the run: flushes samplers and aux buffers and performs the
  /// final monitor drain (outside the timing window).  Must be called once
  /// after the workload returns.
  void finalize();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] bool sampling_enabled() const { return !samplers_.empty(); }
  /// Consumer-side decode counters (null when sampling is disabled).
  [[nodiscard]] const spe::AuxConsumer* consumer() const { return consumer_.get(); }

 private:
  struct RecordedAccess {
    Addr addr;
    std::uint16_t alu_before;
    std::uint8_t size;
    std::uint8_t is_store;
  };

  class Recorder;  // MemRecorder capturing into a RecordedAccess vector

  void replay(std::vector<std::vector<RecordedAccess>>& streams, Cycles start);
  void process_monitor_until(Cycles t);
  void maybe_tick(Cycles t);
  /// True once the budget token tripped; latches budget_stopped_ so every
  /// later kernel is skipped without re-reading the token.
  bool budget_stopped();

  EngineConfig config_;
  core::Profiler* profiler_;
  std::unique_ptr<Machine> machine_;
  kern::PerfEvent* mem_counter_ = nullptr;
  kern::PerfEvent* fp_counter_ = nullptr;

  std::vector<std::unique_ptr<spe::Sampler>> samplers_;
  std::vector<kern::PerfEvent*> events_;
  std::unique_ptr<spe::DecodePool> decode_pool_;  ///< Non-null when decode_shards > 1.
  std::unique_ptr<spe::AuxConsumer> consumer_;
  std::unique_ptr<DrainService> drain_service_;  ///< Non-null when async_drain.
  /// Topology the placement model classifies against (the monitor keeps a
  /// pointer into it for the lifetime of the run).
  sys::CpuTopology placement_topology_;
  std::unique_ptr<Monitor> monitor_;
  std::optional<Cycles> monitor_due_;

  std::vector<Cycles> clocks_;
  Cycles barrier_ = 0;
  std::uint64_t next_tick_ns_ = 0;
  double carry_overcount_ = 0.0;

  // Virtual allocator.
  struct Allocation {
    std::uint64_t bytes = 0;
    std::uint64_t reported = 0;
  };
  Addr next_addr_ = 0x10'0000;  // skip the null page
  std::vector<std::pair<Addr, Allocation>> allocations_;

  // Loaded-latency feedback: rolling utilization estimate.
  std::uint64_t util_window_lines_ = 0;
  Cycles util_window_start_ = 0;
  double utilization_ = 0.0;

  std::uint64_t total_mem_ops_ = 0;
  std::uint64_t total_fp_ops_ = 0;
  bool budget_stopped_ = false;
  std::uint32_t accesses_since_poll_ = 0;
  std::vector<std::uint64_t> last_wakeups_;
  std::vector<std::uint64_t> last_written_;
  bool finalized_ = false;
};

}  // namespace nmo::sim
