// The statistical sweep driver behind Figures 7-11.
//
// Simulating every access of a 10^9-operation run is unnecessary for the
// sensitivity studies: between two sample selections the SPE device state
// only depends on the number of decoded operations, so this driver jumps
// from selection event to selection event.  Everything that shapes the
// paper's curves is simulated faithfully:
//
//  * per-thread virtual clocks, phase barriers, bandwidth-capped execution
//    throughput (per-thread rates fall once aggregate DRAM demand exceeds
//    the socket peak);
//  * loaded memory latency: the dispatch-to-complete occupancy of a DRAM
//    access inflates with utilization and develops a heavy tail under
//    oversubscription - the mechanism behind sample collisions at small
//    periods and their growth with thread count;
//  * the full SPE/perf machinery (samplers, aux buffers, watermark AUX
//    records, flags, throttling) - the very same classes the exact trace
//    driver uses;
//  * the NMO monitor with wake latency, queueing and finite drain
//    throughput - the mechanism behind aux-size truncation loss;
//  * overhead charging: interrupt entry per wakeup and per-sample tracking
//    cost, so time overhead = instrumented/baseline - 1 emerges.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"

namespace nmo::sim {

/// Configuration of one statistical profiling run.
struct SweepConfig {
  std::uint32_t threads = 8;
  std::uint64_t period = 4096;
  std::size_t ring_pages = 16;          ///< Data ring: NMO_BUFSIZE default 1 MiB.
  std::size_t aux_bytes = 1 * kMiB;     ///< NMO_AUXBUFSIZE default 1 MiB.
  std::uint64_t aux_watermark = 0;      ///< 0 = half the aux buffer.
  std::uint64_t seed = 1;
  bool jitter = true;
  bool spe_enabled = true;              ///< false = baseline timing run.
  /// The PMU mem_access event counts a slightly larger population than the
  /// operations SPE can sample (hardware prefetch and page-walker accesses
  /// retire as mem_access but are not sampleable ops); this models the
  /// small persistent accuracy deficit of Figure 8a's plateau.
  double pmu_overcount = 0.015;
  /// Override for the monitor's drain-round cadence (0 = CostModel
  /// default).  Counting-style runs (Figures 7-8) keep the monitor
  /// responsive; full-trace runs with RSS tracking and tagged regions
  /// (Figures 9-11) load the monitor loop and stretch its rounds.
  Cycles monitor_round_interval_cycles = 0;
  /// Decode shards for the parallel SPE decode pipeline (spe/decode_pool);
  /// <= 1 keeps the serial inline decode.  All StatResult tallies are
  /// identical either way - the monitor syncs the pool at every round.
  std::uint32_t decode_shards = 1;
  /// Write-combining batch for Sampler aux writes (Sampler::set_write_batch);
  /// 1 restores the exact per-record write path.
  std::uint32_t write_batch = 8;
  /// Staged async drain pipeline (sim/drain_service.hpp): per-round decode
  /// retires on a dedicated consumer thread with epoch tracking instead of
  /// the round-end fork/join.  All StatResult tallies are identical either
  /// way (the drain schedule is mode-invariant); the overlap telemetry
  /// fields report what the consumer thread absorbed.
  bool async_drain = false;
};

/// Aggregated outcome of a run; analysis/accuracy.hpp turns this into the
/// paper's metrics.
struct StatResult {
  // Accuracy inputs (paper Eq. 1).
  std::uint64_t mem_counted = 0;        ///< perf-stat style mem_access count.
  std::uint64_t processed_samples = 0;  ///< Samples NMO decoded and accepted.
  std::uint64_t period = 0;

  // Timing.
  std::uint64_t baseline_ns = 0;        ///< Filled by the caller (spe_enabled=false run).
  std::uint64_t instrumented_ns = 0;

  // Diagnostics.
  std::uint64_t skipped_records = 0;
  std::uint64_t collision_flags = 0;    ///< AUX records flagged COLLISION (Fig 8c metric).
  std::uint64_t hw_collisions = 0;      ///< Raw pipeline collision events.
  std::uint64_t selections = 0;
  std::uint64_t written = 0;
  std::uint64_t dropped_full = 0;       ///< Samples lost to full aux buffers.
  std::uint64_t filtered = 0;
  std::uint64_t throttled = 0;          ///< Selections suppressed while throttled.
  std::uint64_t throttle_events = 0;    ///< Throttle episodes (Fig 11 metric).
  std::uint64_t wakeups = 0;
  std::uint64_t aux_records = 0;
  std::uint64_t truncated_flags = 0;
  std::uint64_t monitor_services = 0;
  std::uint64_t decode_stalls = 0;      ///< Producer queue-full spins (parallel decode).
  // Async drain overlap telemetry (zero when async_drain is off).
  std::uint64_t overlapped_cycles = 0;  ///< Decode retired in the timeline's shadow.
  std::uint64_t retired_epochs = 0;     ///< Drain epochs whose decode retired.
  std::uint64_t peak_epoch_lag = 0;     ///< Max unretired epochs at a drain point.
  std::uint64_t epoch_wait_cycles = 0;  ///< Modeled consumer-thread backlog lag.
};

/// Executes one statistical run.  With cfg.spe_enabled == false only the
/// virtual clocks advance: the result carries the baseline time in
/// instrumented_ns and zero sampling activity.
StatResult run_statistical(const WorkloadProfile& profile, const MachineConfig& machine_config,
                           const SweepConfig& cfg);

/// Convenience: runs baseline + instrumented with the same seed and returns
/// the instrumented result with baseline_ns filled in.
StatResult run_with_baseline(const WorkloadProfile& profile, const MachineConfig& machine_config,
                             const SweepConfig& cfg);

}  // namespace nmo::sim
