// Timing model of the NMO monitor process.
//
// On real hardware the NMO runtime spawns a monitoring loop that waits in
// epoll on the per-core SPE file descriptors and drains aux data as wakeups
// arrive.  Draining is not free - each record is decoded, MD5-fingerprinted
// and appended to the output trace, and the loop interleaves other work
// (capacity sampling, file flushing) - so in practice the monitor services
// fds in *batched rounds*: a wakeup arms a round, the round drains every
// ready descriptor, and rounds are separated by at least round_interval.
//
// The monitor's round latency is what turns aux-buffer sizing into the
// accuracy/overhead trade-off of Figure 9 and thread count into the
// accuracy dome of Figure 10: while a round is pending the devices keep
// producing, and any buffer that cannot absorb fill_rate x round_latency
// bytes drops samples (TRUNCATED).  Fewer threads push the same sample
// volume through fewer buffers - "effectively reducing the buffer size" as
// the paper puts it.
//
// Monitor is passive with respect to time: drivers call on_wakeup /
// on_round_done and schedule the returned completion times on their own
// event queues, so the same model serves both the statistical and the
// exact trace driver.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "kernel/perf_event.hpp"
#include "sim/cost_model.hpp"
#include "spe/aux_consumer.hpp"

namespace nmo::sim {

class Monitor {
 public:
  /// `events` is the full set of SPE events the monitor watches (the fds in
  /// its epoll set).
  Monitor(const CostModel& cost, spe::AuxConsumer* consumer,
          std::vector<kern::PerfEvent*> events)
      : cost_(cost), consumer_(consumer), events_(std::move(events)) {}

  /// A wakeup fired at `now_cycles`.  If no round is armed, one is armed
  /// and the returned value is its completion time (wake latency + drain
  /// estimate, but no earlier than round_interval after the last round).
  std::optional<Cycles> on_wakeup(Cycles now_cycles) {
    if (round_armed_) return std::nullopt;
    round_armed_ = true;
    const Cycles earliest = last_round_end_ + cost_.monitor_round_interval_cycles;
    const Cycles start = std::max(now_cycles + cost_.monitor_wake_cycles, earliest);
    return start + round_cost();
  }

  /// The armed round completed: drain every ready descriptor.  Returns the
  /// completion time of a follow-up round if data is still pending (a
  /// buffer went full while this round was queued and can no longer raise
  /// wakeups).
  std::optional<Cycles> on_round_done(Cycles now_cycles) {
    for (auto* ev : events_) {
      bytes_drained_ += consumer_->drain(*ev);
      while (ev->pending_wakeups() > 0) ev->ack_wakeup();
    }
    // Fork/join barrier of the parallel decode path: shard workers decode
    // the whole round concurrently while the round is still "open", so the
    // simulated timeline never observes a half-decoded buffer.  (No-op for
    // the serial inline consumer.)
    consumer_->sync();
    ++rounds_;
    last_round_end_ = now_cycles;
    round_armed_ = false;
    for (auto* ev : events_) {
      if (ev->aux().used() >= ev->effective_watermark()) {
        round_armed_ = true;
        return last_round_end_ + cost_.monitor_round_interval_cycles + round_cost();
      }
    }
    return std::nullopt;
  }

  /// Synchronous end-of-run drain (after the timing window, matching the
  /// paper's note that the final buffer drain happens after program exit).
  void drain_all() {
    for (auto* ev : events_) bytes_drained_ += consumer_->drain(*ev);
    consumer_->sync();
    round_armed_ = false;
  }

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t bytes_drained() const { return bytes_drained_; }
  [[nodiscard]] bool round_armed() const { return round_armed_; }
  [[nodiscard]] const std::vector<kern::PerfEvent*>& events() const { return events_; }

 private:
  /// Estimated cost of one drain round: fixed setup plus per-byte
  /// processing of everything currently buffered.
  [[nodiscard]] Cycles round_cost() const {
    std::uint64_t bytes = 0;
    for (const auto* ev : events_) bytes += ev->aux().used();
    return cost_.monitor_service_base_cycles +
           static_cast<Cycles>(static_cast<double>(bytes) * cost_.monitor_cycles_per_byte);
  }

  CostModel cost_;
  spe::AuxConsumer* consumer_;
  std::vector<kern::PerfEvent*> events_;
  bool round_armed_ = false;
  Cycles last_round_end_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t bytes_drained_ = 0;
};

}  // namespace nmo::sim
