// Timing model of the NMO monitor process.
//
// On real hardware the NMO runtime spawns a monitoring loop that waits in
// epoll on the per-core SPE file descriptors and drains aux data as wakeups
// arrive.  Draining is not free - each record is decoded, MD5-fingerprinted
// and appended to the output trace, and the loop interleaves other work
// (capacity sampling, file flushing) - so in practice the monitor services
// fds in *batched rounds*: a wakeup arms a round, the round drains every
// ready descriptor, and rounds are separated by at least round_interval.
//
// The monitor's round latency is what turns aux-buffer sizing into the
// accuracy/overhead trade-off of Figure 9 and thread count into the
// accuracy dome of Figure 10: while a round is pending the devices keep
// producing, and any buffer that cannot absorb fill_rate x round_latency
// bytes drops samples (TRUNCATED).  Fewer threads push the same sample
// volume through fewer buffers - "effectively reducing the buffer size" as
// the paper puts it.
//
// Monitor is passive with respect to time: drivers call on_wakeup /
// on_round_done and schedule the returned completion times on their own
// event queues, so the same model serves both the statistical and the
// exact trace driver.
//
// Two execution disciplines for the record-processing stage:
//
//  * synchronous (default, drain_service == nullptr): each round drains
//    and decodes inline, ending with AuxConsumer::sync() - the fork/join
//    barrier that parks the host thread until the decode pool retires the
//    whole round;
//  * asynchronous (a sim::DrainService is attached): each round performs
//    only stage 1 (drain_raw - the deterministic device interaction) and
//    closes the drained chunks into an epoch on the service's wakeup
//    queue; the dedicated consumer thread runs stage 2 continuously, so
//    decode of round N overlaps the drain of round N+1 and the host
//    timeline only blocks when it observes an unretired epoch (finalize,
//    or a region-table mutation's quiesce).
//
// The drain *schedule* - which simulated cycle each buffer is drained at -
// is identical in both disciplines.  That invariant is what makes the two
// paths emit byte-identical canonical traces (the repo's parity oracle);
// what the async path changes is host-side execution, plus an overlap
// model (CostModel::drain_wake_cycles / epoch_retire_cycles) quantifying
// how much decode work retires in the timeline's shadow.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/budget.hpp"
#include "kernel/perf_event.hpp"
#include "kernel/poller.hpp"
#include "sim/cost_model.hpp"
#include "spe/aux_consumer.hpp"
#include "spe/decode_pool.hpp"
#include "sys/topology.hpp"

namespace nmo::sim {

class DrainService;

/// Overlap telemetry of the async drain pipeline, in simulated cycles
/// (all zero when running synchronously).
struct MonitorOverlap {
  /// Decode work retired on the consumer thread while the timeline kept
  /// running - in sync mode these cycles serialize inside the round.
  std::uint64_t overlapped_cycles = 0;
  /// Epochs whose modeled retirement completed.
  std::uint64_t retired_epochs = 0;
  /// Max epochs in flight (drained, not yet retired) at any drain point.
  std::uint64_t peak_epoch_lag = 0;
  /// Cycles the consumer-thread model lagged a new epoch's arrival (its
  /// backlog had not retired when the next round's chunks landed).
  std::uint64_t epoch_wait_cycles = 0;
};

/// Topology placement telemetry of the drain/decode pipeline, in bytes and
/// modeled cycles (all zero on single-node machines or without a placement
/// model attached).  Telemetry only, like MonitorOverlap: the remote-drain
/// penalty never feeds round_cost() or the drain schedule, so every
/// placement policy emits byte-identical traces - the model quantifies
/// what the policy saves, it does not perturb what it measures.
struct MonitorPlacement {
  /// Aux bytes drained whose decode shard is modeled on the producer
  /// core's own node.
  std::uint64_t local_bytes = 0;
  /// Aux bytes modeled as crossing a socket boundary to reach their
  /// decode shard.
  std::uint64_t remote_bytes = 0;
  /// Modeled cross-socket drain penalty:
  /// remote_bytes x CostModel::remote_drain_cycles_per_byte.
  std::uint64_t remote_drain_cycles = 0;
};

class Monitor {
 public:
  /// `events` is the full set of SPE events the monitor watches (the fds
  /// in its epoll set).  With a non-null `drain_service` the monitor runs
  /// the asynchronous staged pipeline described above; the service must
  /// outlive the monitor.
  Monitor(const CostModel& cost, spe::AuxConsumer* consumer,
          std::vector<kern::PerfEvent*> events, DrainService* drain_service = nullptr);

  /// A wakeup fired at `now_cycles`.  If no round is armed, one is armed
  /// and the returned value is its completion time (wake latency + drain
  /// estimate, but no earlier than round_interval after the last round).
  std::optional<Cycles> on_wakeup(Cycles now_cycles);

  /// The armed round completed: drain every ready descriptor.  Returns the
  /// completion time of a follow-up round if data is still pending (a
  /// buffer went full while this round was queued and can no longer raise
  /// wakeups).
  std::optional<Cycles> on_round_done(Cycles now_cycles);

  /// Synchronous end-of-run drain (after the timing window, matching the
  /// paper's note that the final buffer drain happens after program exit).
  /// Retires every outstanding epoch (async) and acknowledges any wakeups
  /// still pending, so the poller set is quiescent afterwards.
  void drain_all();

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t bytes_drained() const { return bytes_drained_; }
  /// Wakeups consumed through the poller's take_ready handoff (rounds and
  /// the end-of-run drain both ack in batches).
  [[nodiscard]] std::uint64_t wakeups_acked() const { return wakeups_acked_; }
  [[nodiscard]] bool round_armed() const { return round_armed_; }
  [[nodiscard]] const std::vector<kern::PerfEvent*>& events() const { return poller_.events(); }
  [[nodiscard]] bool async() const { return drain_service_ != nullptr; }
  [[nodiscard]] const MonitorOverlap& overlap() const { return overlap_; }
  [[nodiscard]] const MonitorPlacement& placement() const { return placement_; }

  /// Attaches the topology placement model: per-core drained bytes are
  /// classified local/remote against where `policy` places the consuming
  /// shard (kNone models OS placement as uniformly random across nodes).
  /// `topology` must outlive the monitor; nullptr (default) disables the
  /// model.  Deterministic and telemetry-only.
  void set_placement_model(const sys::CpuTopology* topology, spe::PlacementPolicy policy,
                           std::uint32_t shards);

  /// Attaches a cooperative preemption token: every drain round polls it
  /// (the round loop is the official per-job budget checkpoint - it runs at
  /// a bounded simulated-time interval, so overrun detection latency is one
  /// round).  The token must outlive the monitor; nullptr detaches.
  void set_budget(core::BudgetToken* budget) { budget_ = budget; }
  [[nodiscard]] core::BudgetToken* budget() const { return budget_; }

 private:
  /// Estimated cost of one drain round: fixed setup plus per-byte
  /// processing of everything currently buffered.  Mode-invariant (see the
  /// header comment: the drain schedule is what both paths share).
  [[nodiscard]] Cycles round_cost() const;

  /// Stage 1 for every fd + the wakeup-ack handoff; returns the bytes
  /// drained this round with the chunks appended to `chunks_scratch_`.
  std::uint64_t drain_round();

  /// Classifies `bytes` drained from `core` against the placement model.
  void note_drain_placement(CoreId core, std::uint64_t bytes);

  /// Advances the overlap model for one epoch of `bytes` closed at `now`.
  void note_epoch(Cycles now, std::uint64_t bytes);
  /// Retires modeled epochs whose retirement time has passed.
  void retire_until(Cycles now);

  CostModel cost_;
  spe::AuxConsumer* consumer_;
  core::BudgetToken* budget_ = nullptr;
  kern::Poller poller_;
  DrainService* drain_service_;
  bool round_armed_ = false;
  Cycles last_round_end_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t bytes_drained_ = 0;
  std::uint64_t wakeups_acked_ = 0;

  // Async-path state.
  std::vector<spe::RawChunk> chunks_scratch_;
  std::deque<Cycles> inflight_retires_;  ///< Modeled epoch retirement times.
  Cycles model_last_retire_ = 0;
  MonitorOverlap overlap_;

  // Placement-model state (set_placement_model).
  const sys::CpuTopology* placement_topology_ = nullptr;
  spe::PlacementPolicy placement_policy_ = spe::PlacementPolicy::kNone;
  std::uint32_t placement_shards_ = 1;
  MonitorPlacement placement_;
};

}  // namespace nmo::sim
