// Statistical workload profiles.
//
// The sensitivity sweeps of Figures 7-11 cover up to ~10^10 operations per
// configuration; simulating them access-by-access is wasteful because the
// SPE behaviour between two sample selections depends only on aggregate
// workload statistics.  A WorkloadProfile captures those statistics per
// execution phase - operation counts, instruction mix, memory-level mix -
// and the statistical driver (stat_driver.hpp) jumps from selection to
// selection.  Profiles can be written by hand or extracted from an exact
// cache-simulated run (sim/profile_extractor.hpp), which is how the bench
// profiles were produced.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nmo::sim {

struct PhaseProfile {
  std::string name;
  /// Total memory operations in this phase, summed over all threads.
  std::uint64_t mem_ops = 0;
  /// Decoded non-memory operations per memory operation (instruction mix).
  double nonmem_per_mem = 2.0;
  /// Probability that an access is serviced by L1/L2/SLC/DRAM.
  std::array<double, kNumMemLevels> level_mix{0.90, 0.05, 0.03, 0.02};
  double store_frac = 0.30;
  double tlb_miss_rate = 0.001;
  /// False for serial phases that run on a single thread.
  bool parallel = true;
};

struct WorkloadProfile {
  std::string name;
  std::vector<PhaseProfile> phases;
  /// Address range sampled records draw from (region figures only).
  Addr addr_base = 0x4000'0000;
  std::uint64_t addr_span = 1ull << 30;

  [[nodiscard]] std::uint64_t total_mem_ops() const {
    std::uint64_t total = 0;
    for (const auto& p : phases) total += p.mem_ops;
    return total;
  }

  /// Uniformly scales all phase op counts (sweeps use this to trade run
  /// time for statistical resolution).
  void scale_ops(double factor) {
    for (auto& p : phases) {
      p.mem_ops = static_cast<std::uint64_t>(static_cast<double>(p.mem_ops) * factor);
    }
  }
};

/// Built-in calibrated profiles for the five paper workloads.  Op counts
/// are ~10x below the paper's testbed runs so that a full figure sweep
/// completes in seconds; every trend is preserved (DESIGN.md section 6).
namespace profiles {
WorkloadProfile stream();           ///< STREAM triad: bandwidth-bound.
WorkloadProfile cfd();              ///< Rodinia CFD: bandwidth-bound, irregular.
WorkloadProfile bfs();              ///< Rodinia BFS: cache-resident, high IPC.
WorkloadProfile pagerank();         ///< CloudSuite Graph Analytics (Page Rank).
WorkloadProfile inmem_analytics();  ///< CloudSuite In-memory Analytics (ALS).
}  // namespace profiles

}  // namespace nmo::sim
