// The simulated ARM machine: cache hierarchy, clock, perf subsystem glue.
//
// Machine ties together the pieces a profiling run needs: the memory
// hierarchy (Table II geometry), the timer/clock conversion, the global
// interrupt throttler, and the set of counting-mode perf events that the
// workload drivers feed (mem_access for the accuracy baseline, bus events
// for bandwidth estimation).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "kernel/perf_abi.hpp"
#include "kernel/perf_event.hpp"
#include "kernel/throttle.hpp"
#include "kernel/timeconv.hpp"
#include "mem/hierarchy.hpp"
#include "sim/cost_model.hpp"
#include "sys/topology.hpp"

namespace nmo::sim {

struct MachineConfig {
  mem::HierarchyConfig hierarchy{};
  double freq_ghz = 3.0;  ///< Table II: 3.0 GHz cores.
  std::uint64_t page_size = 64 * 1024;
  kern::ThrottleConfig throttle{};
  CostModel cost{};
  /// NUMA sockets of the modeled machine.  Cores are split contiguously
  /// and as evenly as possible across sockets (sys::CpuTopology::
  /// synthetic); the placement policies and the remote-drain telemetry
  /// read this.  1 keeps the single-socket model exactly.
  std::uint32_t sockets = 1;
  /// Per-socket peak DRAM bandwidth in bytes per cycle for the
  /// loaded-latency model.  0 (default) keeps the machine-wide
  /// hierarchy.dram_bytes_per_cycle peak of the single-socket model, so
  /// existing configs are bit-identical.
  double socket_peak_bytes_per_cycle = 0.0;

  [[nodiscard]] double freq_hz() const { return freq_ghz * 1e9; }
  /// Machine-wide peak DRAM bandwidth: the sum of socket peaks when a
  /// per-socket peak is configured, the legacy hierarchy peak otherwise.
  [[nodiscard]] double total_peak_bytes_per_cycle() const {
    return socket_peak_bytes_per_cycle > 0.0
               ? socket_peak_bytes_per_cycle * static_cast<double>(std::max(1u, sockets))
               : hierarchy.dram_bytes_per_cycle;
  }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config)
      : config_(config),
        hierarchy_(std::make_unique<mem::Hierarchy>(config.hierarchy)),
        throttler_(config.throttle),
        time_conv_(kern::TimeConv::from_frequency(config.freq_hz())),
        topology_(sys::CpuTopology::synthetic(std::max(1u, config.sockets),
                                              config.hierarchy.cores)) {}

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] mem::Hierarchy& hierarchy() { return *hierarchy_; }
  [[nodiscard]] const mem::Hierarchy& hierarchy() const { return *hierarchy_; }
  [[nodiscard]] kern::Throttler& throttler() { return throttler_; }
  [[nodiscard]] const kern::TimeConv& time_conv() const { return time_conv_; }
  [[nodiscard]] const CostModel& cost() const { return config_.cost; }
  /// The modeled core -> socket map (synthetic, deterministic): what the
  /// placement policies and the remote-drain telemetry key off in
  /// simulation, independent of the host machine.
  [[nodiscard]] const sys::CpuTopology& topology() const { return topology_; }

  [[nodiscard]] std::uint64_t ns_of(Cycles cycles) const { return time_conv_.to_ns(cycles); }
  [[nodiscard]] Cycles cycles_of_ns(std::uint64_t ns) const { return time_conv_.to_cycles(ns); }

  /// Opens a counting-mode event bound to this machine; the returned event
  /// is owned by the machine and fed through count().
  kern::PerfEvent& open_counter(kern::CountEvent which) {
    kern::PerfEventAttr attr;
    attr.type = kern::kPerfTypeHardware;
    attr.count_event = which;
    attr.disabled = false;
    counters_.push_back(kern::open_event(attr, /*core=*/0, /*ring_pages=*/0, config_.page_size,
                                         /*aux_bytes=*/0, time_conv_, &throttler_));
    return *counters_.back();
  }

  /// Opens an SPE sampling event on `core`; owned by the machine.
  kern::PerfEvent& open_spe(const kern::PerfEventAttr& attr, CoreId core,
                            std::size_t ring_pages, std::size_t aux_bytes) {
    spe_events_.push_back(kern::open_event(attr, core, ring_pages, config_.page_size, aux_bytes,
                                           time_conv_, &throttler_));
    return *spe_events_.back();
  }

  /// Increments every registered counter listening to `which` by `n`.
  void count(kern::CountEvent which, std::uint64_t n) {
    for (auto& c : counters_) {
      if (c->attr().count_event == which) c->add_count(n);
    }
  }

  [[nodiscard]] const std::vector<std::unique_ptr<kern::PerfEvent>>& spe_events() const {
    return spe_events_;
  }

 private:
  MachineConfig config_;
  std::unique_ptr<mem::Hierarchy> hierarchy_;
  kern::Throttler throttler_;
  kern::TimeConv time_conv_;
  sys::CpuTopology topology_;
  std::vector<std::unique_ptr<kern::PerfEvent>> counters_;
  std::vector<std::unique_ptr<kern::PerfEvent>> spe_events_;
};

}  // namespace nmo::sim
