#include "sim/engine.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace nmo::sim {

/// Captures a kernel body's memory touches into a flat stream.
class TraceEngine::Recorder final : public wl::MemRecorder {
 public:
  explicit Recorder(std::vector<RecordedAccess>* out) : out_(out) {}

  void load(Addr addr, std::uint8_t size) override { push(addr, size, 0); }
  void store(Addr addr, std::uint8_t size) override { push(addr, size, 1); }
  void alu(std::uint32_t n) override { pending_alu_ += n; }
  void flop(std::uint32_t n) override {
    pending_alu_ += n;
    flops_ += n;
  }

  [[nodiscard]] std::uint64_t flops() const { return flops_; }
  [[nodiscard]] std::uint32_t trailing_alu() const { return pending_alu_; }

 private:
  void push(Addr addr, std::uint8_t size, std::uint8_t is_store) {
    out_->push_back(RecordedAccess{
        addr,
        static_cast<std::uint16_t>(std::min<std::uint32_t>(pending_alu_, 0xffff)), size,
        is_store});
    pending_alu_ = 0;
  }

  std::vector<RecordedAccess>* out_;
  std::uint32_t pending_alu_ = 0;
  std::uint64_t flops_ = 0;
};

TraceEngine::TraceEngine(const EngineConfig& config, core::Profiler* profiler)
    : config_(config), profiler_(profiler), machine_(std::make_unique<Machine>(config.machine)) {
  if (config_.threads == 0) throw std::invalid_argument("engine needs at least one thread");
  clocks_.assign(config_.threads, 0);

  mem_counter_ = &machine_->open_counter(kern::CountEvent::kMemAccess);
  fp_counter_ = &machine_->open_counter(kern::CountEvent::kFpOps);

  const bool sample = profiler_ != nullptr &&
                      core::has_mode(profiler_->config().mode, core::Mode::kSample) &&
                      profiler_->config().period > 0;
  if (sample) {
    kern::PerfEventAttr attr;
    attr.type = kern::kPerfTypeArmSpe;
    attr.config = kern::kSpeConfigLoadsAndStores | kern::kSpeJitter;
    attr.sample_period = profiler_->config().period;
    attr.disabled = false;
    const std::size_t ring_pages =
        std::max<std::size_t>(1, profiler_->config().bufsize_bytes / config_.machine.page_size);
    for (std::uint32_t t = 0; t < config_.threads; ++t) {
      auto& ev = machine_->open_spe(attr, t % config_.machine.hierarchy.cores, ring_pages,
                                    profiler_->config().auxbufsize_bytes);
      samplers_.push_back(std::make_unique<spe::Sampler>(&ev, Rng(config_.seed, 900 + t)));
      samplers_.back()->set_write_batch(config_.write_batch);
      events_.push_back(&ev);
    }
    // Placement: the policy maps shards onto the machine's synthetic
    // socket model by default (deterministic); an explicit
    // EngineConfig::topology (e.g. discover()) overrides it for real
    // multi-node hosts.  Pinning is advisory; the same topology also
    // drives the monitor's remote-drain telemetry below.
    spe::PlacementOptions placement;
    placement.policy = config_.decode_placement;
    placement.topology = config_.topology.empty() ? machine_->topology() : config_.topology;
    if (config_.decode_shards > 1) {
      // Parallel decode pipeline: raw record batches fan out to shard
      // workers that decode into per-shard traces, merged canonically at
      // finalize.
      profiler_->bind_trace_shards(config_.decode_shards);
      decode_pool_ = std::make_unique<spe::DecodePool>(
          config_.decode_shards, profiler_->make_shard_sink(), 256, placement);
      consumer_ = std::make_unique<spe::AuxConsumer>(decode_pool_.get());
    } else {
      consumer_ = std::make_unique<spe::AuxConsumer>(profiler_->make_batch_sink());
    }
    if (config_.decode_progress) consumer_->set_progress_hook(config_.decode_progress);
    if (config_.async_drain) {
      // Staged pipeline: the dedicated consumer thread runs stage-2 decode
      // so rounds no longer end in a fork/join barrier.  Region-table
      // mutations quiesce the service first, so decode-time region
      // attribution is identical to the synchronous path.
      drain_service_ =
          std::make_unique<DrainService>(consumer_.get(), decode_pool_.get(), placement);
      profiler_->set_quiesce([service = drain_service_.get()] { service->barrier(); });
    }
    monitor_ = std::make_unique<Monitor>(machine_->cost(), consumer_.get(), events_,
                                         drain_service_.get());
    monitor_->set_budget(config_.budget);
    placement_topology_ = std::move(placement.topology);
    monitor_->set_placement_model(&placement_topology_, config_.decode_placement,
                                  std::max(1u, config_.decode_shards));
    profiler_->set_time_conv(machine_->time_conv());
  }
  if (profiler_ != nullptr) {
    profiler_->set_time_source([this] { return now_ns(); });
  }
  last_wakeups_.assign(config_.threads, 0);
  last_written_.assign(config_.threads, 0);
  next_tick_ns_ = config_.tick_interval_ns;
}

TraceEngine::~TraceEngine() {
  if (!finalized_) finalize();
}

std::uint64_t TraceEngine::now_ns() const { return machine_->ns_of(barrier_); }

Addr TraceEngine::alloc(std::string_view tag, std::uint64_t bytes, std::uint64_t report_scale) {
  (void)tag;
  const Addr base = next_addr_;
  // 64 KiB alignment keeps allocations page-distinct (the testbed's pages).
  const std::uint64_t aligned = (bytes + config_.machine.page_size - 1) /
                                config_.machine.page_size * config_.machine.page_size;
  next_addr_ += aligned + config_.machine.page_size;
  const std::uint64_t reported = bytes * report_scale;
  allocations_.emplace_back(base, Allocation{bytes, reported});
  if (profiler_ != nullptr) profiler_->note_alloc(reported);
  return base;
}

void TraceEngine::dealloc(Addr base) {
  for (auto& [addr, a] : allocations_) {
    if (addr == base && a.bytes != 0) {
      if (profiler_ != nullptr) profiler_->note_free(a.reported);
      a.bytes = 0;
      a.reported = 0;
      return;
    }
  }
}

bool TraceEngine::budget_stopped() {
  if (budget_stopped_) return true;
  if (config_.budget != nullptr && config_.budget->tripped()) budget_stopped_ = true;
  return budget_stopped_;
}

void TraceEngine::parallel_for(std::string_view kernel, std::size_t n,
                               const wl::Executor::KernelBody& body) {
  (void)kernel;
  // Cooperative preemption: a tripped budget skips the kernel body
  // entirely (the workload keeps issuing kernels, the engine stops paying
  // for them), so the run winds down at the next kernel boundary.
  if (budget_stopped()) return;
  const std::uint32_t nt = config_.threads;
  std::vector<std::vector<RecordedAccess>> streams(nt);
  std::uint64_t kernel_flops = 0;
  const std::size_t chunk = (n + nt - 1) / nt;
  for (std::uint32_t t = 0; t < nt; ++t) {
    const std::size_t lo = std::min<std::size_t>(t * chunk, n);
    const std::size_t hi = std::min<std::size_t>(lo + chunk, n);
    Recorder rec(&streams[t]);
    if (lo < hi) body(t, lo, hi, rec);
    kernel_flops += rec.flops();
  }
  total_fp_ops_ += kernel_flops;
  fp_counter_->add_count(kernel_flops);
  replay(streams, barrier_);
}

void TraceEngine::serial(std::string_view kernel, const wl::Executor::SerialBody& body) {
  (void)kernel;
  if (budget_stopped()) return;
  std::vector<std::vector<RecordedAccess>> streams(config_.threads);
  Recorder rec(&streams[0]);
  body(rec);
  total_fp_ops_ += rec.flops();
  fp_counter_->add_count(rec.flops());
  replay(streams, barrier_);
}

void TraceEngine::process_monitor_until(Cycles t) {
  while (monitor_ && monitor_due_ && *monitor_due_ <= t) {
    const Cycles due = *monitor_due_;
    monitor_due_.reset();
    if (auto next = monitor_->on_round_done(due)) monitor_due_ = *next;
  }
}

void TraceEngine::maybe_tick(Cycles t) {
  if (profiler_ == nullptr || config_.tick_interval_ns == 0) return;
  const std::uint64_t t_ns = machine_->ns_of(t);
  while (t_ns >= next_tick_ns_) {
    const auto& bus = machine_->hierarchy().bus();
    profiler_->tick(next_tick_ns_,
                    bus.total_bytes(config_.machine.hierarchy.l1.line_size),
                    total_fp_ops_);
    next_tick_ns_ += config_.tick_interval_ns;
  }
}

void TraceEngine::replay(std::vector<std::vector<RecordedAccess>>& streams, Cycles start) {
  const CostModel& cost = machine_->cost();
  const auto& lat = config_.machine.hierarchy.latency;
  const double peak_bpc = config_.machine.total_peak_bytes_per_cycle();

  std::uint64_t kernel_mem = 0;
  for (const auto& s : streams) kernel_mem += s.size();
  total_mem_ops_ += kernel_mem;
  // PMU mem_access population includes non-sampleable accesses; carry the
  // fractional part across kernels so the total stays consistent.
  carry_overcount_ += static_cast<double>(kernel_mem) * (1.0 + config_.pmu_overcount);
  const auto counted = static_cast<std::uint64_t>(carry_overcount_);
  carry_overcount_ -= static_cast<double>(counted);
  mem_counter_->add_count(counted);

  struct HeapEntry {
    Cycles clock;
    std::uint32_t tid;
    bool operator>(const HeapEntry& o) const {
      return clock != o.clock ? clock > o.clock : tid > o.tid;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  std::vector<std::size_t> cursor(config_.threads, 0);
  for (std::uint32_t t = 0; t < config_.threads; ++t) {
    clocks_[t] = start;
    if (!streams[t].empty()) heap.push(HeapEntry{start, t});
  }

  if (util_window_start_ == 0) util_window_start_ = start;

  while (!heap.empty()) {
    const auto [clk, tid] = heap.top();
    heap.pop();
    process_monitor_until(clk);

    if (config_.budget != nullptr) {
      // Sampling runs hit the checkpoint through the monitor's round loop;
      // polling here as well (amortized over a stride of accesses) bounds
      // the detection latency of runs that never arm a drain round.
      if (++accesses_since_poll_ >= 4096) {
        accesses_since_poll_ = 0;
        config_.budget->poll();
      }
      if (config_.budget->tripped()) {
        // Stop feeding work mid-kernel: everything already drained/decoded
        // stays, the rest of the recorded streams is abandoned, and
        // finalize() closes a valid truncated trace.
        budget_stopped_ = true;
        break;
      }
    }

    const RecordedAccess& acc = streams[tid][cursor[tid]++];
    Cycles& clock = clocks_[tid];

    const MemAccess ma{acc.addr, acc.is_store ? MemOp::kStore : MemOp::kLoad, acc.size};
    const auto& bus_before = machine_->hierarchy().bus();
    const std::uint64_t lines_before = bus_before.read_lines + bus_before.writeback_lines;
    const auto result =
        machine_->hierarchy().access(tid % config_.machine.hierarchy.cores, ma);
    const auto& bus_after = machine_->hierarchy().bus();
    const std::uint64_t bus_lines =
        bus_after.read_lines + bus_after.writeback_lines - lines_before;

    // Execution time: issue the preceding ALU ops plus the exposed part of
    // the memory latency.  DRAM accesses additionally pay a bandwidth-share
    // cost so that aggregate DRAM traffic cannot exceed the socket peak
    // (the trace-driver analogue of the statistical driver's oversub
    // throughput scaling).
    const double exposed =
        acc.is_store ? static_cast<double>(result.latency) * cost.store_visibility
                     : static_cast<double>(result.latency) / cost.mlp;
    double cycles = static_cast<double>(acc.alu_before + 1) * cost.issue_cpi + exposed;
    if (bus_lines > 0) {
      // Each line this access moved on the bus (fill or writeback) claims
      // this thread's 1/threads share of the socket bandwidth.
      const double line_cost = static_cast<double>(bus_lines) * 64.0 *
                               static_cast<double>(config_.threads) / peak_bpc;
      cycles = std::max(cycles, line_cost);
    }
    clock += static_cast<Cycles>(cycles);

    // Rolling DRAM utilization estimate for the loaded-latency model.
    if (result.level == MemLevel::kDRAM) ++util_window_lines_;
    if (clock - util_window_start_ > 1'000'000) {  // ~0.33 ms windows
      const double bytes = static_cast<double>(util_window_lines_) * 64.0 *
                           cost.writeback_factor;
      utilization_ =
          bytes / (static_cast<double>(clock - util_window_start_) * peak_bpc);
      util_window_lines_ = 0;
      util_window_start_ = clock;
    }

    if (!samplers_.empty()) {
      auto& sampler = *samplers_[tid];
      sampler.advance_other(acc.alu_before, clock, cost.issue_cpi);
      spe::OpInfo op;
      op.cls = acc.is_store ? spe::OpClass::kStore : spe::OpClass::kLoad;
      op.vaddr = acc.addr;
      op.pc = 0x400000 + (acc.addr & 0xfff);
      op.level = result.level;
      op.tlb_miss = result.tlb_miss;
      // Dispatch-to-complete occupancy: loaded latency under utilization.
      double tracked = static_cast<double>(result.latency);
      if (result.level == MemLevel::kDRAM) {
        tracked = static_cast<double>(lat.dram) /
                  (1.0 - std::min(utilization_, cost.max_utilization));
      }
      op.latency = static_cast<Cycles>(tracked);
      op.now_cycles = clock;
      sampler.on_mem_op(op);

      // Charge profiling overhead, mirroring the statistical driver.
      auto& ev = sampler.event();
      while (last_wakeups_[tid] < ev.stats().wakeups) {
        ++last_wakeups_[tid];
        clock += cost.irq_cycles;
        if (monitor_ && !monitor_due_) {
          if (auto due = monitor_->on_wakeup(clock)) monitor_due_ = *due;
        }
      }
      const std::uint64_t written = sampler.stats().written;
      if (written > last_written_[tid]) {
        clock += (written - last_written_[tid]) * cost.sample_cost_cycles;
        last_written_[tid] = written;
      }
    }

    maybe_tick(clock);
    if (cursor[tid] < streams[tid].size()) heap.push(HeapEntry{clock, tid});
  }

  // Implicit barrier: everyone waits for the slowest thread.
  barrier_ = *std::max_element(clocks_.begin(), clocks_.end());
  process_monitor_until(barrier_);
  maybe_tick(barrier_);
}

void TraceEngine::finalize() {
  finalized_ = true;
  for (std::uint32_t t = 0; t < static_cast<std::uint32_t>(samplers_.size()); ++t) {
    samplers_[t]->flush(barrier_);
    events_[t]->flush_aux(machine_->ns_of(barrier_));
  }
  if (monitor_) {
    process_monitor_until(~Cycles{0} >> 1);
    monitor_->drain_all();
  }
  if (profiler_ != nullptr && drain_service_ != nullptr) {
    // The service is quiescent after drain_all; drop the quiesce hook so
    // the profiler can outlive this engine safely.
    profiler_->set_quiesce({});
  }
  if (profiler_ != nullptr && consumer_ != nullptr) {
    // Merge shard traces (parallel path) and canonicalize the order so the
    // serial and parallel pipelines emit byte-identical CSV/fingerprints.
    profiler_->finalize_trace();
  }
  if (profiler_ != nullptr && config_.tick_interval_ns != 0) {
    const auto& bus = machine_->hierarchy().bus();
    profiler_->tick(machine_->ns_of(barrier_),
                    bus.total_bytes(config_.machine.hierarchy.l1.line_size), total_fp_ops_);
  }
}

EngineStats TraceEngine::stats() const {
  EngineStats s;
  s.mem_ops = total_mem_ops_;
  s.mem_counted = mem_counter_->read_count();
  s.fp_ops = total_fp_ops_;
  s.instrumented_ns = machine_->ns_of(barrier_);
  for (const auto& sampler : samplers_) {
    const auto& ss = sampler->stats();
    s.selections += ss.selections;
    s.collisions += ss.collisions;
    s.written += ss.written;
    s.dropped_full += ss.write_failed;
    s.filtered += ss.filtered;
  }
  for (const auto* ev : events_) s.wakeups += ev->stats().wakeups;
  if (decode_pool_ != nullptr) {
    s.decode_stalls = decode_pool_->counts().producer_stalls;
    s.pinned_shards = decode_pool_->pinned_shards();
  }
  if (monitor_) {
    const MonitorOverlap& overlap = monitor_->overlap();
    s.overlapped_cycles = overlap.overlapped_cycles;
    s.retired_epochs = overlap.retired_epochs;
    s.peak_epoch_lag = overlap.peak_epoch_lag;
    s.epoch_wait_cycles = overlap.epoch_wait_cycles;
    const MonitorPlacement& placement = monitor_->placement();
    s.local_drain_bytes = placement.local_bytes;
    s.remote_drain_bytes = placement.remote_bytes;
    s.remote_drain_cycles = placement.remote_drain_cycles;
    s.placement_nodes = placement_topology_.num_nodes();
  }
  if (config_.budget != nullptr) {
    s.budget_checkpoints = config_.budget->checkpoints();
    s.budget_truncated = budget_stopped_ || config_.budget->tripped();
  }
  return s;
}

}  // namespace nmo::sim
