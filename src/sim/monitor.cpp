#include "sim/monitor.hpp"

#include <algorithm>
#include <utility>

#include "sim/drain_service.hpp"

namespace nmo::sim {

Monitor::Monitor(const CostModel& cost, spe::AuxConsumer* consumer,
                 std::vector<kern::PerfEvent*> events, DrainService* drain_service)
    : cost_(cost), consumer_(consumer), drain_service_(drain_service) {
  for (auto* ev : events) poller_.add(ev);
}

std::optional<Cycles> Monitor::on_wakeup(Cycles now_cycles) {
  if (round_armed_) return std::nullopt;
  round_armed_ = true;
  const Cycles earliest = last_round_end_ + cost_.monitor_round_interval_cycles;
  const Cycles start = std::max(now_cycles + cost_.monitor_wake_cycles, earliest);
  return start + round_cost();
}

std::uint64_t Monitor::drain_round() {
  // Ready-queue handoff: acknowledge every wakeup this round consumes in
  // one batch, then drain every fd (the monitor services its whole epoll
  // set per round - batched servicing is the round model's premise, and
  // it also picks up ring records like THROTTLE that never raise a
  // wakeup, which is why it does not restrict itself to the ready list).
  wakeups_acked_ += poller_.ack_ready();
  std::uint64_t bytes = 0;
  for (auto* ev : poller_.events()) {
    const std::uint64_t ev_bytes = consumer_->drain_raw(*ev, chunks_scratch_);
    note_drain_placement(ev->core(), ev_bytes);
    bytes += ev_bytes;
  }
  bytes_drained_ += bytes;
  return bytes;
}

void Monitor::set_placement_model(const sys::CpuTopology* topology,
                                  spe::PlacementPolicy policy, std::uint32_t shards) {
  placement_topology_ = topology;
  placement_policy_ = policy;
  placement_shards_ = std::max(1u, shards);
}

void Monitor::note_drain_placement(CoreId core, std::uint64_t bytes) {
  if (bytes == 0 || placement_topology_ == nullptr || !placement_topology_->multi_node()) {
    placement_.local_bytes += bytes;
    return;
  }
  const auto& topo = *placement_topology_;
  std::uint64_t remote = 0;
  if (placement_policy_ == spe::PlacementPolicy::kNone) {
    // Unpinned workers: the OS places them anywhere, so in expectation
    // (nodes-1)/nodes of every drained byte crosses a socket.  Integer
    // math keeps the model exactly reproducible.
    remote = bytes * (topo.num_nodes() - 1) / topo.num_nodes();
  } else {
    // Pinned workers sit on a known node; a byte is remote iff its
    // producer core lives elsewhere.
    const std::uint32_t shard = core % placement_shards_;
    const std::uint32_t shard_node =
        spe::placement_node(placement_policy_, topo, shard, placement_shards_);
    remote = topo.node_of(core) == shard_node ? 0 : bytes;
  }
  placement_.remote_bytes += remote;
  placement_.local_bytes += bytes - remote;
  placement_.remote_drain_cycles += static_cast<std::uint64_t>(
      static_cast<double>(remote) * cost_.remote_drain_cycles_per_byte);
}

std::optional<Cycles> Monitor::on_round_done(Cycles now_cycles) {
  // Cooperative preemption checkpoint: the round loop is where a per-job
  // time budget is enforced.  The round itself still completes (drained
  // records are never discarded) - the *engine* observes the tripped token
  // and stops feeding new work, then finalizes a valid truncated trace.
  if (budget_ != nullptr) budget_->poll();
  chunks_scratch_.clear();
  const std::uint64_t round_bytes = drain_round();
  if (drain_service_ != nullptr) {
    // Staged pipeline: close the round as an epoch on the consumer
    // thread's wakeup queue and keep the timeline moving.
    retire_until(now_cycles);
    if (!chunks_scratch_.empty()) {
      drain_service_->submit_epoch(std::move(chunks_scratch_));
      chunks_scratch_ = {};
      note_epoch(now_cycles, round_bytes);
    }
  } else {
    // Fork/join barrier of the parallel decode path: shard workers decode
    // the whole round concurrently while the round is still "open", so the
    // simulated timeline never observes a half-decoded buffer.  (No-op for
    // the serial inline consumer.)
    consumer_->decode_chunks(chunks_scratch_);
    consumer_->sync();
  }
  ++rounds_;
  last_round_end_ = now_cycles;
  round_armed_ = false;
  for (auto* ev : poller_.events()) {
    if (ev->aux().used() >= ev->effective_watermark()) {
      round_armed_ = true;
      return last_round_end_ + cost_.monitor_round_interval_cycles + round_cost();
    }
  }
  return std::nullopt;
}

void Monitor::drain_all() {
  chunks_scratch_.clear();
  drain_round();
  if (drain_service_ != nullptr) {
    // The end-of-run drain happens after program exit (the paper's final
    // drain), so every in-window epoch has retired by now - sweep them
    // before accounting the final flush epoch, which is outside the
    // timing window and not charged to the overlap model.
    overlap_.retired_epochs += inflight_retires_.size();
    inflight_retires_.clear();
    if (!chunks_scratch_.empty()) {
      drain_service_->submit_epoch(std::move(chunks_scratch_));
      chunks_scratch_ = {};
      ++overlap_.retired_epochs;  // retires at the barrier below
    }
    // The timeline now explicitly waits for every epoch to retire.
    drain_service_->barrier();
    if (consumer_->parallel()) consumer_->sync();
  } else {
    consumer_->decode_chunks(chunks_scratch_);
    consumer_->sync();
  }
  round_armed_ = false;
}

Cycles Monitor::round_cost() const {
  std::uint64_t bytes = 0;
  for (const auto* ev : poller_.events()) bytes += ev->aux().used();
  return cost_.monitor_service_base_cycles +
         static_cast<Cycles>(static_cast<double>(bytes) * cost_.monitor_cycles_per_byte);
}

void Monitor::retire_until(Cycles now) {
  while (!inflight_retires_.empty() && inflight_retires_.front() <= now) {
    inflight_retires_.pop_front();
    ++overlap_.retired_epochs;
  }
}

void Monitor::note_epoch(Cycles now, std::uint64_t bytes) {
  // The consumer thread picks the epoch up after its wake latency, but no
  // earlier than the retirement of its backlog; decoding costs the same
  // per-byte work the sync path charges inside the round, plus the
  // epoch-retirement bookkeeping.
  const Cycles ready = now + cost_.drain_wake_cycles;
  const Cycles start = std::max(ready, model_last_retire_);
  if (model_last_retire_ > ready) overlap_.epoch_wait_cycles += model_last_retire_ - ready;
  const Cycles retire =
      start + static_cast<Cycles>(static_cast<double>(bytes) * cost_.monitor_cycles_per_byte) +
      cost_.epoch_retire_cycles;
  overlap_.overlapped_cycles += retire - now;
  model_last_retire_ = retire;
  inflight_retires_.push_back(retire);
  overlap_.peak_epoch_lag =
      std::max<std::uint64_t>(overlap_.peak_epoch_lag, inflight_retires_.size());
}

}  // namespace nmo::sim
