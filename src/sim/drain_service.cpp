#include "sim/drain_service.hpp"

#include <algorithm>
#include <utility>

#include "sys/topology.hpp"

namespace nmo::sim {

DrainService::DrainService(spe::AuxConsumer* consumer, spe::DecodePool* pool,
                           spe::PlacementOptions placement)
    : consumer_(consumer), pool_(pool), placement_(std::move(placement)) {
  worker_ = sys::named_thread("nmo-drain", [this] { service_loop(); });
}

DrainService::~DrainService() {
  {
    const core::MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_one();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t DrainService::submit_epoch(std::vector<spe::RawChunk> chunks) {
  std::uint64_t id;
  {
    const core::MutexLock lock(mutex_);
    // Retire pool epochs that already decoded while the service was idle,
    // so the lag high-water mark counts only genuinely in-flight epochs.
    sweep_retired();
    id = next_epoch_++;
    queue_.push_back(Epoch{id, std::move(chunks)});
    ++stats_.epochs_submitted;
    const std::uint64_t lag = queue_.size() + inflight_.size() + (busy_ ? 1 : 0);
    stats_.peak_epoch_lag = std::max(stats_.peak_epoch_lag, lag);
  }
  wake_cv_.notify_one();
  return id;
}

void DrainService::barrier() {
  {
    core::MutexLock lock(mutex_);
    idle_cv_.wait(lock, [this]() NMO_REQUIRES(mutex_) { return queue_.empty() && !busy_; });
  }
  // The service thread is idle and nothing else submits, so the pool's
  // submission cursors are final: one full barrier retires every epoch.
  if (pool_ != nullptr) pool_->sync();
  const core::MutexLock lock(mutex_);
  stats_.epochs_retired += inflight_.size();
  inflight_.clear();
  if (pending_ok_ != 0 || pending_skipped_ != 0) {
    consumer_->add_decoded(pending_ok_, pending_skipped_);
    pending_ok_ = 0;
    pending_skipped_ = 0;
  }
}

DrainService::Stats DrainService::stats() const {
  const core::MutexLock lock(mutex_);
  return stats_;
}

void DrainService::sweep_retired() {
  while (!inflight_.empty() && pool_->epoch_done(inflight_.front())) {
    inflight_.pop_front();
    ++stats_.epochs_retired;
  }
}

void DrainService::service_loop() {
  if (placement_.policy != spe::PlacementPolicy::kNone && placement_.topology.multi_node()) {
    // The consumer thread feeds shard 0's node: under kPackShards that is
    // where trace assembly is packed, under kNearProducer the node owning
    // the plurality of producer cores.  Advisory like every pin.
    const std::uint32_t node = spe::placement_node(
        placement_.policy, placement_.topology, 0,
        pool_ != nullptr ? pool_->shards() : 1);
    sys::pin_current_thread(placement_.topology.nodes()[node].cpus);
  }
  for (;;) {
    Epoch epoch;
    {
      core::MutexLock lock(mutex_);
      wake_cv_.wait(lock, [this]() NMO_REQUIRES(mutex_) { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      epoch = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }

    std::uint64_t ok = 0;
    std::uint64_t skipped = 0;
    for (const spe::RawChunk& chunk : epoch.chunks) {
      if (pool_ != nullptr) {
        pool_->submit(chunk.bytes, chunk.core);
      } else {
        const spe::DecodedChunk decoded = consumer_->decode_raw(chunk);
        ok += decoded.ok;
        skipped += decoded.skipped;
      }
    }
    spe::DecodePool::EpochTicket ticket;
    if (pool_ != nullptr) ticket = pool_->mark_epoch();

    bool idle;
    {
      const core::MutexLock lock(mutex_);
      stats_.chunks += epoch.chunks.size();
      if (pool_ != nullptr) {
        inflight_.push_back(std::move(ticket));
        sweep_retired();
      } else {
        ++stats_.epochs_retired;
        pending_ok_ += ok;
        pending_skipped_ += skipped;
      }
      busy_ = false;
      idle = queue_.empty();
    }
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace nmo::sim
