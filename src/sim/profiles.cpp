// Built-in statistical profiles for the five paper workloads.
//
// Op counts are scaled ~10x below the paper's testbed runs (DESIGN.md
// section 6).  Instruction mixes and memory-level mixes were calibrated
// against exact cache-simulated runs of the workload implementations in
// src/workloads (see sim/profile_extractor.hpp and the calibration test in
// tests/test_profile_extractor.cpp):
//
//  * STREAM triad streams three arrays; at 64-byte lines and 8-byte
//    elements one access in eight per array misses all caches, so the
//    DRAM fraction is ~1/8 and everything else hits L1.
//  * CFD (euler3d) streams large unstructured-mesh arrays with indirect
//    neighbour gathers: higher DRAM fraction and more non-memory FP work.
//  * BFS is frontier-based on a CSR graph that largely fits in L2+SLC:
//    cache-resident, high memory-op throughput, almost no DRAM traffic -
//    which is exactly why the paper sees high overhead but almost no
//    collisions for BFS.
//  * PageRank and In-memory Analytics (ALS) model the CloudSuite phase
//    structure: a load/ingest phase followed by iterative compute.
#include "sim/profile.hpp"

namespace nmo::sim::profiles {

WorkloadProfile stream() {
  WorkloadProfile p;
  p.name = "stream";
  p.addr_base = 0x4000'0000;
  p.addr_span = 3ull << 30;  // three 1 GiB arrays
  p.phases = {
      PhaseProfile{
          .name = "init",
          .mem_ops = 150'000'000,
          .nonmem_per_mem = 1.0,
          .level_mix = {0.875, 0.0, 0.0, 0.125},
          .store_frac = 1.0,
          .tlb_miss_rate = 0.002,
          .parallel = true,
      },
      PhaseProfile{
          .name = "triad",
          .mem_ops = 1'700'000'000,
          .nonmem_per_mem = 1.5,
          .level_mix = {0.875, 0.0, 0.0, 0.125},
          .store_frac = 1.0 / 3.0,
          .tlb_miss_rate = 0.002,
          .parallel = true,
      },
  };
  return p;
}

WorkloadProfile cfd() {
  WorkloadProfile p;
  p.name = "cfd";
  p.addr_base = 0x8000'0000;
  p.addr_span = 2ull << 30;
  p.phases = {
      PhaseProfile{
          .name = "mesh-load",
          .mem_ops = 200'000'000,
          .nonmem_per_mem = 1.5,
          .level_mix = {0.82, 0.04, 0.02, 0.12},
          .store_frac = 0.60,
          .tlb_miss_rate = 0.004,
          .parallel = false,
      },
      PhaseProfile{
          .name = "compute-loop",
          .mem_ops = 3'400'000'000,
          .nonmem_per_mem = 3.0,
          .level_mix = {0.80, 0.06, 0.02, 0.12},
          .store_frac = 0.25,
          .tlb_miss_rate = 0.004,
          .parallel = true,
      },
  };
  return p;
}

WorkloadProfile bfs() {
  WorkloadProfile p;
  p.name = "bfs";
  p.addr_base = 0xc000'0000;
  p.addr_span = 512ull << 20;
  p.phases = {
      PhaseProfile{
          .name = "graph-load",
          .mem_ops = 40'000'000,
          .nonmem_per_mem = 1.5,
          .level_mix = {0.86, 0.08, 0.04, 0.02},
          .store_frac = 0.70,
          .tlb_miss_rate = 0.002,
          .parallel = false,
      },
      PhaseProfile{
          .name = "traversal",
          .mem_ops = 360'000'000,
          .nonmem_per_mem = 2.0,
          .level_mix = {0.88, 0.09, 0.02, 0.01},
          .store_frac = 0.15,
          .tlb_miss_rate = 0.001,
          .parallel = true,
      },
  };
  return p;
}

WorkloadProfile pagerank() {
  WorkloadProfile p;
  p.name = "pagerank";
  p.addr_base = 0x10'0000'0000;
  p.addr_span = 124ull << 30;
  p.phases = {
      PhaseProfile{
          .name = "ingest",
          .mem_ops = 900'000'000,
          .nonmem_per_mem = 2.5,
          .level_mix = {0.80, 0.05, 0.03, 0.12},
          .store_frac = 0.65,
          .tlb_miss_rate = 0.01,
          .parallel = true,
      },
      PhaseProfile{
          .name = "rank-iterations",
          .mem_ops = 2'600'000'000,
          .nonmem_per_mem = 2.0,
          .level_mix = {0.78, 0.08, 0.04, 0.10},
          .store_frac = 0.20,
          .tlb_miss_rate = 0.008,
          .parallel = true,
      },
  };
  return p;
}

WorkloadProfile inmem_analytics() {
  WorkloadProfile p;
  p.name = "inmem-analytics";
  p.addr_base = 0x20'0000'0000;
  p.addr_span = 52ull << 30;
  p.phases = {
      PhaseProfile{
          .name = "ratings-load",
          .mem_ops = 500'000'000,
          .nonmem_per_mem = 2.0,
          .level_mix = {0.82, 0.05, 0.03, 0.10},
          .store_frac = 0.60,
          .tlb_miss_rate = 0.006,
          .parallel = true,
      },
      PhaseProfile{
          .name = "als-iterations",
          .mem_ops = 2'000'000'000,
          .nonmem_per_mem = 3.5,
          .level_mix = {0.84, 0.07, 0.03, 0.06},
          .store_frac = 0.25,
          .tlb_miss_rate = 0.004,
          .parallel = true,
      },
  };
  return p;
}

}  // namespace nmo::sim::profiles
