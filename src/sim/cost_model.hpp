// Timing cost model of the simulated machine.
//
// All virtual-time accounting flows through these constants.  They are
// calibrated so that the *relative* behaviour of the paper's evaluation
// (overhead percentages, collision onsets, truncation knees) is reproduced;
// see DESIGN.md section 5 and EXPERIMENTS.md for the calibration notes.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace nmo::sim {

struct CostModel {
  // -- application execution -------------------------------------------------
  /// Cycles per decoded operation when the pipeline is not stalled
  /// (4-wide decode on Neoverse-class cores).
  double issue_cpi = 0.3;
  /// Memory-level parallelism: the fraction of a load's latency that is
  /// exposed to execution time is latency / mlp.  Streaming workloads with
  /// hardware prefetch sustain deep overlap on Neoverse-class cores.
  double mlp = 12.0;
  /// Stores retire through the store buffer; only this fraction of their
  /// latency is exposed.
  double store_visibility = 0.05;

  // -- profiling overhead (charged to the application thread) ---------------
  /// Interrupt entry/exit + perf bookkeeping per aux-buffer wakeup.
  Cycles irq_cycles = 9000;  // ~3 us at 3 GHz
  /// Core-local cost of tracking and writing out one sample record
  /// (SPE pipeline tracking resources + uncached aux writes).
  Cycles sample_cost_cycles = 150;
  /// Socket-wide interference per aux wakeup: the interrupt and the
  /// monitor's drain bounce ring-buffer cachelines and steal interconnect
  /// bandwidth from every active core, so the per-wakeup cost felt by each
  /// thread scales with how much of the socket is busy
  /// (broadcast_cycles * active_threads / cores).  This is what makes the
  /// measured overhead grow with thread count in Figure 10.
  Cycles irq_broadcast_cycles = 60000;

  // -- NMO monitor process ---------------------------------------------------
  /// epoll wakeup + context switch before the monitor reacts.
  Cycles monitor_wake_cycles = 45000;  // ~15 us
  /// Fixed per-round cost (syscalls, record iteration setup).
  Cycles monitor_service_base_cycles = 9000;
  /// Per-byte record processing cost: decode + MD5 fingerprint + trace
  /// append; ~1 GB/s sustained at 3 GHz.
  double monitor_cycles_per_byte = 3.0;
  /// Minimum spacing between drain rounds.  The monitor loop batches fd
  /// servicing with its other duties (capacity sampling, file flushing), so
  /// a buffer must absorb fill_rate x this interval between drains - the
  /// mechanism behind Figure 9's aux-size accuracy curve and Figure 10's
  /// thread dome.
  Cycles monitor_round_interval_cycles = 300'000'000;  // ~100 ms at 3 GHz

  // -- async drain pipeline (sim/drain_service.hpp) --------------------------
  // Overlap parameters of the staged producer/consumer monitor: with
  // EngineConfig/SweepConfig::async_drain the per-round decode work retires
  // on a dedicated consumer thread instead of serializing the round.  The
  // drain *schedule* (and therefore every device-visible drain time) is
  // deliberately mode-invariant - that is what keeps the sync and async
  // paths byte-identical - so these parameters feed the overlap telemetry
  // (overlapped cycles, epoch lag, retirement) rather than the timeline.
  /// Consumer-thread wake latency: queue handoff + futex wake before the
  /// drain service starts decoding an epoch.
  Cycles drain_wake_cycles = 15'000;  // ~5 us
  /// Per-epoch retirement cost: completion-cursor publication and counts
  /// folding once an epoch's last batch decodes.
  Cycles epoch_retire_cycles = 3'000;

  // -- topology / remote drain (multi-socket model) --------------------------
  // Placement parameters of the multi-socket machine (MachineConfig::
  // sockets).  Like the async-drain overlap costs above, the remote-drain
  // penalty is *telemetry only*: it quantifies the cross-socket traffic a
  // given DecodePool placement policy would cost (sim/monitor.hpp
  // MonitorPlacement) but never feeds the drain schedule or the timeline -
  // that invariant is what keeps pinned and unpinned runs byte-identical.
  /// Extra per-byte cost of consuming aux data whose producer core lives
  /// on a different socket than the decode shard draining it (interconnect
  /// hop + remote DRAM read; roughly 2x the local per-byte decode cost).
  double remote_drain_cycles_per_byte = 6.0;

  // -- memory system loading --------------------------------------------------
  /// Utilization cap in the loaded-latency model: effective DRAM latency is
  /// base / (1 - min(utilization, max_utilization)).  Under bandwidth
  /// saturation, dispatch-to-complete latency of DRAM loads balloons to the
  /// microsecond range (memory-controller queueing), which is what makes
  /// small sampling periods collide (section VII-A).
  double max_utilization = 0.94;
  /// Write-allocate traffic amplification on the DRAM bus (reads for
  /// ownership + writebacks).
  double writeback_factor = 1.30;
};

}  // namespace nmo::sim
