// Streaming-capture wire protocol: a framed stream of v2 trace blocks.
//
// The ROADMAP's continuous-profiling daemon needs live data flowing off
// the host while capture runs; the v2 trace block (store/trace_file.hpp)
// is already the perfect wire unit - self-contained (per-block core table
// with delta bases), compressed, strictly bounded - so the protocol is
// framing + control around blocks shipped *verbatim*.  A sender
// (net/block_sender.hpp) opens a TCP connection to the collector
// (net/collector.hpp), sends one handshake frame, then streams:
//
//   frame    u8 type | u32 length (LE) | u32 crc32(payload) | payload
//
//   kHello      magic "NMOW" | u16 protocol | u16 trace version
//               | u8 flags (bit0 compress, bit1 index_meta)
//               | u8 kind (0 session stream, 1 control/meta-only)
//               | u64 nonce | u16 name length | name bytes
//   kBlock      one v2 block, byte-for-byte as TraceWriter flushed it
//               (marker 0xB7 through the last payload byte)
//   kRegions    region-table delta: varint first index | varint count
//               | per region: varint start | varint end-start
//               | varint name length | name bytes
//   kSchedMeta  scheduler.meta snapshot, verbatim key=value text
//   kEnd        u64 sample count | 16-byte MD5 | u8 clean
//   kHeartbeat  u64 decode progress (samples decoded so far, live)
//
// The protocol is one-way (collector never writes back), so a sender is a
// pure producer and the collector a pure consumer - gator's daemon split.
// Every frame is strictly bounds-checked on decode, reusing the
// corrupt-input discipline the v2 reader established: lengths are capped,
// CRCs verified before a payload is interpreted, varints reject overflow,
// string lengths are validated against the remaining payload, and a
// malformed frame is a terminal parse error, never UB.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/regions.hpp"

namespace nmo::net {

/// First payload field of a kHello frame ("NMOW" little-endian): rejects
/// non-protocol peers before anything else is interpreted.
inline constexpr std::uint32_t kWireMagic = 0x574F4D4E;
/// Breaking-change counter of this frame layout.
inline constexpr std::uint16_t kProtocolVersion = 1;
/// type + length + crc.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;
/// Hard payload bound: the largest legitimate frame is a v2 block (< 64
/// KiB by construction); 16 MiB leaves room for absurdly large region
/// tables while keeping a corrupt length from demanding a silly buffer.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;
/// Longest session name a hello may carry (matches the store's sanitized
/// path-component discipline; anything longer is a protocol error).
inline constexpr std::size_t kMaxSessionName = 256;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kBlock = 2,
  kRegions = 3,
  kSchedMeta = 4,
  kEnd = 5,
  kHeartbeat = 6,
};

/// What a kHello declares about the stream that follows.
struct Hello {
  std::uint16_t protocol = kProtocolVersion;
  /// TraceWriter::Options the sender writes with - the collector ingests
  /// with the same options so the collected artifact is byte-identical to
  /// the sender's local capture.
  std::uint16_t trace_version = 2;
  bool compress = true;
  bool index_meta = true;
  /// 0 = session stream (blocks follow), 1 = control (meta frames only).
  std::uint8_t kind = 0;
  /// Sender-chosen id tying collector logs to the sender's session.
  std::uint64_t nonce = 0;
  std::string name = "job";
};

inline constexpr std::uint8_t kHelloKindSession = 0;
inline constexpr std::uint8_t kHelloKindControl = 1;

/// A region-table delta: entries [first, first + regions.size()) of the
/// sender's table.  Senders send each entry exactly once, in index order;
/// the collector appends (a gap or overlap is a protocol error).
struct RegionDelta {
  std::uint32_t first = 0;
  std::vector<core::AddrRegion> regions;
};

/// The stream's final frame: what the sender's TraceWriter footer declared.
struct SessionEnd {
  std::uint64_t samples = 0;
  std::array<std::uint8_t, 16> digest{};
  /// False when the sender is ending early (error path) and the declared
  /// count/digest cover only what was actually streamed.
  bool clean = true;
};

/// IEEE CRC-32 (reflected, poly 0xEDB88320) over `n` bytes - the per-frame
/// payload checksum.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n) noexcept;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::byte> payload;
};

/// Appends a complete frame (header + payload) to `out`.
void append_frame(std::vector<std::byte>& out, FrameType type,
                  std::span<const std::byte> payload);

/// Incremental frame decoder: feed() arbitrary byte chunks as they arrive,
/// then drain next() until it reports kNeedMore.  Any malformation (bad
/// type, oversized length, CRC mismatch) is terminal: error() is set and
/// every later call reports kError.
class FrameParser {
 public:
  enum class Result { kFrame, kNeedMore, kError };

  void feed(const std::byte* data, std::size_t n);
  Result next(Frame& out);

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  ///< Consumed prefix of buf_ (compacted lazily).
  std::string error_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

// --- control-frame payload codecs -------------------------------------------
// encode_* produce the frame payload (not the frame header); parse_* apply
// the full bounds discipline and return false with a message on anything a
// conforming sender could not have produced.

[[nodiscard]] std::vector<std::byte> encode_hello(const Hello& hello);
bool parse_hello(std::span<const std::byte> payload, Hello& out, std::string& error);

[[nodiscard]] std::vector<std::byte> encode_region_delta(const RegionDelta& delta);
bool parse_region_delta(std::span<const std::byte> payload, RegionDelta& out,
                        std::string& error);

[[nodiscard]] std::vector<std::byte> encode_session_end(const SessionEnd& end);
bool parse_session_end(std::span<const std::byte> payload, SessionEnd& out,
                       std::string& error);

[[nodiscard]] std::vector<std::byte> encode_heartbeat(std::uint64_t progress);
bool parse_heartbeat(std::span<const std::byte> payload, std::uint64_t& progress,
                     std::string& error);

/// Lowercase MD5 hex of a SessionEnd digest (what session.meta records).
[[nodiscard]] std::string fingerprint_hex(const std::array<std::uint8_t, 16>& digest);

/// Inverse of fingerprint_hex: parses the 32-hex-char fingerprint a
/// TraceWriter reports into the raw digest a SessionEnd frame carries.
/// False when `hex` is not exactly 32 hex digits.
bool fingerprint_digest(std::string_view hex, std::array<std::uint8_t, 16>& out);

}  // namespace nmo::net
