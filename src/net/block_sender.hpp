// Sender side of the streaming-capture subsystem: nonblocking socket
// writes behind a bounded ring of closed v2 trace blocks.
//
// A BlockSender owns one TCP connection to an nmo-traced collector and a
// dedicated writer thread.  Producers (the TraceWriter block observer, on
// the session's worker thread) enqueue frames; the writer thread drains
// the queue with nonblocking send() + poll(), and emits a heartbeat frame
// carrying the live decode progress whenever the stream has been idle for
// a configured interval.  Block frames ride a bounded ring with an
// explicit backpressure policy:
//
//   kBlock       the producer waits for ring space - lossless, the
//                session's trace write stalls with the network (default);
//   kDropOldest  the oldest queued block is dropped and counted - the
//                stream stays live at the cost of holes the collector
//                finalizes around (the trace it writes stays verify-clean,
//                it just holds fewer samples than the sender's local copy).
//
// Control frames (hello, region deltas, scheduler.meta, session end) are
// never dropped: they are tiny and the collector needs them to finalize.
//
// StreamingTraceSink is the tee the session runner uses: it binds a
// BlockSender to a TraceWriter's block observer, forwards the region
// table as deltas, and closes the stream with the writer's footer count +
// digest.  Its contract is fail-soft by construction: the TraceWriter
// keeps writing the normal on-disk SessionStore artifact no matter what
// the network does, so a dead collector degrades capture to exactly the
// local path (fallback() reports it; nothing is lost).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/regions.hpp"
#include "net/wire.hpp"
#include "store/trace_file.hpp"

namespace nmo::net {

/// Where and how a session streams its closed blocks.
struct StreamConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t connect_timeout_ms = 1000;
  /// Closed blocks the ring may hold before the backpressure policy kicks
  /// in (the "watermark" of the stream bench).
  std::uint32_t ring_capacity = 64;
  enum class Backpressure : std::uint8_t { kBlock, kDropOldest };
  Backpressure policy = Backpressure::kBlock;
  /// Idle interval after which the writer thread sends a heartbeat frame
  /// (0 disables heartbeats).
  std::uint32_t heartbeat_interval_ms = 500;
  /// Longest a finish() waits for the queue to drain before declaring the
  /// stream failed (the local artifact is complete either way).
  std::uint32_t drain_timeout_ms = 10'000;
  /// SO_SNDBUF override for the connection; 0 keeps the kernel default.
  /// (Mostly a test/bench knob: a tiny send buffer makes backpressure
  /// reproducible on loopback.)
  std::uint32_t send_buffer_bytes = 0;
};

[[nodiscard]] std::string_view to_string(StreamConfig::Backpressure policy) noexcept;

/// One stream's outcome counters (monotone while the stream runs; final
/// after finish()/abort()).
struct StreamStats {
  std::uint64_t blocks_enqueued = 0;
  std::uint64_t blocks_sent = 0;
  std::uint64_t blocks_dropped = 0;  ///< kDropOldest evictions.
  std::uint64_t frames_sent = 0;     ///< Every frame type, heartbeats included.
  std::uint64_t bytes_sent = 0;
  std::uint64_t heartbeats = 0;
  bool connected = false;  ///< Handshake reached the wire.
  bool failed = false;     ///< Connection or drain error after connect.
  std::string error;
};

class BlockSender {
 public:
  explicit BlockSender(StreamConfig config);
  ~BlockSender();

  BlockSender(const BlockSender&) = delete;
  BlockSender& operator=(const BlockSender&) = delete;

  /// Connects (bounded by connect_timeout_ms), queues the handshake frame
  /// and starts the writer thread.  False - with *error - when the
  /// collector is unreachable; the sender is then inert (every later call
  /// is a no-op), which is the local-capture fallback.
  bool connect(const Hello& hello, std::string* error = nullptr);

  /// Enqueues one closed block (frame-encoded inside).  Applies the ring's
  /// backpressure policy; returns false when the block was dropped (policy
  /// kDropOldest counts the evicted block, not this one) or the stream is
  /// not active.
  bool send_block(std::span<const std::byte> block_bytes);

  /// Enqueues a control frame (never dropped, not ring-bounded).
  void send_control(FrameType type, std::vector<std::byte> payload);

  /// Publishes the live decode progress the next heartbeat carries.
  void set_progress(std::uint64_t samples_decoded);

  /// Queues the end frame, waits for the queue to drain (bounded by
  /// drain_timeout_ms) and closes.  Returns true when everything reached
  /// the socket.
  bool finish(const SessionEnd& end);

  /// Drops everything queued and closes immediately - the forced
  /// mid-stream disconnect path.
  void abort();

  /// Connected, not failed, not closed.
  [[nodiscard]] bool active() const;
  [[nodiscard]] StreamStats stats() const;
  [[nodiscard]] const StreamConfig& config() const { return config_; }

 private:
  struct Impl;
  StreamConfig config_;
  std::unique_ptr<Impl> impl_;
};

/// The tee a profiled session streams through: TraceWriter block observer
/// in, wire frames out, with the local on-disk trace untouched as the
/// source of truth.
class StreamingTraceSink {
 public:
  StreamingTraceSink(StreamConfig config, std::string session_name,
                     store::TraceWriter::Options trace_options, std::uint64_t nonce = 0);

  /// Connects + handshakes.  False = collector unreachable: the sink is in
  /// fallback mode and every later call is a cheap no-op while the local
  /// capture proceeds normally.
  bool connect();

  /// Installs this sink as `writer`'s block observer.  The writer must
  /// outlive the sink's finish()/abort().
  void attach(store::TraceWriter& writer);

  /// Live decode progress (spe::AuxConsumer hook) for heartbeat frames.
  void note_progress(std::uint64_t samples_decoded);

  /// Streams the not-yet-sent suffix of `regions` as a delta frame.
  void send_regions(const std::vector<core::AddrRegion>& regions);

  /// Streams a scheduler.meta snapshot (key=value text) for the
  /// collector's fleet merge.
  void send_scheduler_meta(const std::string& text);

  /// Ends the stream with the writer's footer declaration and drains.
  /// Returns true when the collector got everything.
  bool finish(std::uint64_t samples, const std::string& fingerprint_hex, bool clean = true);

  /// Forced disconnect without an end frame (tests the collector's
  /// truncated-finalize path; also the destructor's stance for a sink that
  /// was never finished).
  void abort();

  /// Connected and healthy: blocks are reaching the wire.
  [[nodiscard]] bool streaming() const { return sender_.active(); }
  /// True when capture degraded to local-only (never connected, or failed
  /// mid-stream).
  [[nodiscard]] bool fallback() const;
  [[nodiscard]] StreamStats stats() const { return sender_.stats(); }

 private:
  std::string name_;
  store::TraceWriter::Options options_;
  std::uint64_t nonce_ = 0;
  BlockSender sender_;
  bool connect_attempted_ = false;
  std::size_t regions_sent_ = 0;
};

/// One-shot control stream: connects with a control-kind hello, ships one
/// scheduler.meta snapshot (key=value text) for the collector's fleet
/// merge, and drains.  False when the collector was unreachable or the
/// send failed - callers treat that exactly like the session fallback
/// (the local scheduler.meta is the source of truth).
bool stream_scheduler_meta(const StreamConfig& config, const std::string& text,
                           const std::string& name = "scheduler");

}  // namespace nmo::net
