#include "net/wire.hpp"

#include <cstring>

#include "common/md5.hpp"

namespace nmo::net {
namespace {

// --- little-endian fixed-width + LEB128 varint helpers ----------------------
// (Same codec family as store/trace_file.cpp; duplicated span-side because
// the store keeps its helpers file-local.  test_net pins the two against
// each other through block round-trips.)

void put_fixed(std::vector<std::byte>& out, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::byte>(v & 0xff));
    v >>= 8;
  }
}

bool take_fixed(std::span<const std::byte> buf, std::size_t& pos, std::uint64_t& v,
                std::size_t n) {
  // Check pos first: with pos past the end, `buf.size() - pos` underflows
  // to a huge value and the length check would wave the read through.
  if (pos > buf.size() || n > buf.size() - pos) return false;
  v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= std::to_integer<std::uint64_t>(buf[pos + i]) << (8 * i);
  }
  pos += n;
  return true;
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

/// Strict varint: rejects truncation AND overlong encodings that overflow
/// 64 bits (the store reader's discipline).
bool take_varint(std::span<const std::byte> buf, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= buf.size()) return false;
    const auto c = std::to_integer<unsigned>(buf[pos++]);
    const auto bits = static_cast<std::uint64_t>(c & 0x7f);
    if (shift == 63 && bits > 1) return false;
    v |= bits << shift;
    if ((c & 0x80) == 0) return true;
  }
  return false;
}

struct Crc32Table {
  std::uint32_t entries[256];
  constexpr Crc32Table() : entries() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[i] = c;
    }
  }
};
constexpr Crc32Table kCrcTable;

bool valid_frame_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kHeartbeat);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kCrcTable.entries[(c ^ bytes[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void append_frame(std::vector<std::byte>& out, FrameType type,
                  std::span<const std::byte> payload) {
  out.push_back(static_cast<std::byte>(type));
  put_fixed(out, payload.size(), 4);
  put_fixed(out, crc32(payload.data(), payload.size()), 4);
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameParser::feed(const std::byte* data, std::size_t n) {
  // Compact the consumed prefix before it dominates the buffer, so a
  // long-lived connection does not grow memory with its history.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
  bytes_ += n;
}

FrameParser::Result FrameParser::next(Frame& out) {
  if (!ok()) return Result::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Result::kNeedMore;
  std::size_t pos = pos_;
  const auto type = std::to_integer<std::uint8_t>(buf_[pos++]);
  std::uint64_t length = 0, declared_crc = 0;
  take_fixed(buf_, pos, length, 4);
  take_fixed(buf_, pos, declared_crc, 4);
  // Validate the header before waiting for the payload: a corrupt length
  // must fail now, not stall the connection "needing" 4 GiB more.
  if (!valid_frame_type(type)) {
    error_ = "unknown frame type " + std::to_string(type);
    return Result::kError;
  }
  if (length > kMaxFramePayload) {
    error_ = "frame payload length " + std::to_string(length) + " exceeds the protocol bound";
    return Result::kError;
  }
  if (buf_.size() - pos < length) return Result::kNeedMore;
  const std::uint32_t actual =
      crc32(buf_.data() + pos, static_cast<std::size_t>(length));
  if (actual != declared_crc) {
    error_ = "frame CRC mismatch";
    return Result::kError;
  }
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos),
                     buf_.begin() + static_cast<std::ptrdiff_t>(pos + length));
  pos_ = pos + static_cast<std::size_t>(length);
  ++frames_;
  return Result::kFrame;
}

// --- hello -------------------------------------------------------------------

std::vector<std::byte> encode_hello(const Hello& hello) {
  std::vector<std::byte> out;
  put_fixed(out, kWireMagic, 4);
  put_fixed(out, hello.protocol, 2);
  put_fixed(out, hello.trace_version, 2);
  const std::uint8_t flags = static_cast<std::uint8_t>((hello.compress ? 1u : 0u) |
                                                       (hello.index_meta ? 2u : 0u));
  out.push_back(static_cast<std::byte>(flags));
  out.push_back(static_cast<std::byte>(hello.kind));
  put_fixed(out, hello.nonce, 8);
  const std::size_t name_len = std::min(hello.name.size(), kMaxSessionName);
  put_fixed(out, name_len, 2);
  for (std::size_t i = 0; i < name_len; ++i) {
    out.push_back(static_cast<std::byte>(hello.name[i]));
  }
  return out;
}

bool parse_hello(std::span<const std::byte> payload, Hello& out, std::string& error) {
  std::size_t pos = 0;
  std::uint64_t magic = 0, protocol = 0, trace_version = 0, nonce = 0, name_len = 0;
  if (!take_fixed(payload, pos, magic, 4)) {
    error = "truncated hello";
    return false;
  }
  if (magic != kWireMagic) {
    error = "bad hello magic: not an nmo stream";
    return false;
  }
  if (!take_fixed(payload, pos, protocol, 2) || !take_fixed(payload, pos, trace_version, 2)) {
    error = "truncated hello";
    return false;
  }
  if (protocol != kProtocolVersion) {
    error = "unsupported protocol version " + std::to_string(protocol);
    return false;
  }
  if (pos + 2 > payload.size()) {
    error = "truncated hello";
    return false;
  }
  const auto flags = std::to_integer<std::uint8_t>(payload[pos++]);
  const auto kind = std::to_integer<std::uint8_t>(payload[pos++]);
  if ((flags & ~0x3u) != 0) {
    error = "unknown hello flags";
    return false;
  }
  if (kind != kHelloKindSession && kind != kHelloKindControl) {
    error = "unknown hello kind " + std::to_string(kind);
    return false;
  }
  if (!take_fixed(payload, pos, nonce, 8) || !take_fixed(payload, pos, name_len, 2)) {
    error = "truncated hello";
    return false;
  }
  if (name_len > kMaxSessionName) {
    error = "hello session name too long";
    return false;
  }
  if (name_len != payload.size() - pos) {
    error = "hello name length disagrees with the payload";
    return false;
  }
  out.protocol = static_cast<std::uint16_t>(protocol);
  out.trace_version = static_cast<std::uint16_t>(trace_version);
  out.compress = (flags & 1u) != 0;
  out.index_meta = (flags & 2u) != 0;
  out.kind = kind;
  out.nonce = nonce;
  out.name.assign(reinterpret_cast<const char*>(payload.data() + pos),
                  static_cast<std::size_t>(name_len));
  return true;
}

// --- region delta ------------------------------------------------------------

std::vector<std::byte> encode_region_delta(const RegionDelta& delta) {
  std::vector<std::byte> out;
  put_varint(out, delta.first);
  put_varint(out, delta.regions.size());
  for (const auto& r : delta.regions) {
    put_varint(out, r.start);
    put_varint(out, r.end - r.start);
    put_varint(out, r.name.size());
    for (const char c : r.name) out.push_back(static_cast<std::byte>(c));
  }
  return out;
}

bool parse_region_delta(std::span<const std::byte> payload, RegionDelta& out,
                        std::string& error) {
  std::size_t pos = 0;
  std::uint64_t first = 0, count = 0;
  if (!take_varint(payload, pos, first) || !take_varint(payload, pos, count)) {
    error = "truncated region delta";
    return false;
  }
  // A region table is tiny (tags are hand-placed); a huge declared count is
  // a corrupt frame, not a big table.
  if (first > 0xffffffffu || count > 0xffff) {
    error = "corrupt region delta: implausible entry count";
    return false;
  }
  out.first = static_cast<std::uint32_t>(first);
  out.regions.clear();
  out.regions.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t start = 0, span = 0, name_len = 0;
    if (!take_varint(payload, pos, start) || !take_varint(payload, pos, span) ||
        !take_varint(payload, pos, name_len)) {
      error = "truncated region delta";
      return false;
    }
    if (span > ~std::uint64_t{0} - start) {
      error = "corrupt region delta: range overflow";
      return false;
    }
    if (name_len > payload.size() - pos) {
      error = "truncated region delta";
      return false;
    }
    core::AddrRegion region;
    region.start = start;
    region.end = start + span;
    region.name.assign(reinterpret_cast<const char*>(payload.data() + pos),
                       static_cast<std::size_t>(name_len));
    pos += static_cast<std::size_t>(name_len);
    out.regions.push_back(std::move(region));
  }
  if (pos != payload.size()) {
    error = "corrupt region delta: trailing bytes";
    return false;
  }
  return true;
}

// --- session end -------------------------------------------------------------

std::vector<std::byte> encode_session_end(const SessionEnd& end) {
  std::vector<std::byte> out;
  put_fixed(out, end.samples, 8);
  for (const std::uint8_t b : end.digest) out.push_back(static_cast<std::byte>(b));
  out.push_back(static_cast<std::byte>(end.clean ? 1 : 0));
  return out;
}

bool parse_session_end(std::span<const std::byte> payload, SessionEnd& out,
                       std::string& error) {
  if (payload.size() != 8 + 16 + 1) {
    error = "corrupt session end: wrong size";
    return false;
  }
  std::size_t pos = 0;
  take_fixed(payload, pos, out.samples, 8);
  for (auto& b : out.digest) b = std::to_integer<std::uint8_t>(payload[pos++]);
  const auto clean = std::to_integer<std::uint8_t>(payload[pos]);
  if (clean > 1) {
    error = "corrupt session end: bad clean flag";
    return false;
  }
  out.clean = clean == 1;
  return true;
}

// --- heartbeat ---------------------------------------------------------------

std::vector<std::byte> encode_heartbeat(std::uint64_t progress) {
  std::vector<std::byte> out;
  put_fixed(out, progress, 8);
  return out;
}

bool parse_heartbeat(std::span<const std::byte> payload, std::uint64_t& progress,
                     std::string& error) {
  if (payload.size() != 8) {
    error = "corrupt heartbeat: wrong size";
    return false;
  }
  std::size_t pos = 0;
  take_fixed(payload, pos, progress, 8);
  return true;
}

std::string fingerprint_hex(const std::array<std::uint8_t, 16>& digest) {
  return Md5::to_hex(digest);
}

bool fingerprint_digest(std::string_view hex, std::array<std::uint8_t, 16>& out) {
  if (hex.size() != 32) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < 16; ++i) {
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

}  // namespace nmo::net
