#include "net/block_sender.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "common/errno_util.hpp"
#include "common/thread_safety.hpp"
#include "sys/topology.hpp"

namespace nmo::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Numeric-host TCP connect bounded by `timeout_ms` (nonblocking connect +
/// poll + SO_ERROR).  Returns the connected fd (left nonblocking) or -1
/// with *error.
int connect_with_timeout(const std::string& host, std::uint16_t port,
                         std::uint32_t timeout_ms, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return -1;
  };
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    // Not a numeric address: resolve it (collector hostnames in a fleet).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (getaddrinfo(node.c_str(), nullptr, &hints, &found) != 0 || found == nullptr) {
      return fail("cannot resolve collector host " + host);
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    freeaddrinfo(found);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket: " + errno_message(errno));
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return fail("connect: " + errno_message(errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return fail(ready == 0 ? "connect timed out" : "poll: " + errno_message(errno));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 || so_error != 0) {
      ::close(fd);
      return fail("connect: " + errno_message(so_error != 0 ? so_error : errno));
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

std::string_view to_string(StreamConfig::Backpressure policy) noexcept {
  switch (policy) {
    case StreamConfig::Backpressure::kBlock:
      return "block";
    case StreamConfig::Backpressure::kDropOldest:
      return "drop-oldest";
  }
  return "?";
}

struct BlockSender::Impl {
  explicit Impl(const StreamConfig& stream_config) : config(stream_config) {}

  struct Item {
    bool is_block = false;
    std::vector<std::byte> frame;  ///< Complete frame: header + payload.
  };

  const StreamConfig& config;
  int fd = -1;
  std::thread worker;

  mutable core::Mutex mutex{"BlockSender"};
  core::CondVar space_cv;  ///< Ring space freed (kBlock producers).
  core::CondVar work_cv;   ///< Work queued / drain progressed / stop.
  std::deque<Item> queue NMO_GUARDED_BY(mutex);
  std::size_t blocks_queued NMO_GUARDED_BY(mutex) = 0;
  /// Worker must exit once the queue is drained.
  bool stop NMO_GUARDED_BY(mutex) = false;
  /// Worker must exit immediately, dropping the queue.
  bool abandoned NMO_GUARDED_BY(mutex) = false;
  /// Worker is mid-frame (drain must wait for it).
  bool writing NMO_GUARDED_BY(mutex) = false;
  StreamStats stats NMO_GUARDED_BY(mutex);
  std::atomic<std::uint64_t> progress{0};

  void fail_locked(std::string message) NMO_REQUIRES(mutex) {
    if (!stats.failed) {
      stats.failed = true;
      stats.error = std::move(message);
    }
    // A failed stream never blocks the capture path again: drop the
    // backlog and release any producer waiting for ring space.
    queue.clear();
    blocks_queued = 0;
    space_cv.notify_all();
    work_cv.notify_all();
  }

  /// Writes one whole frame with nonblocking send + poll.  Returns false
  /// on connection failure (recorded under the lock by the caller).
  bool write_frame(const std::vector<std::byte>& frame, std::string& error) {
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, 100);
        const core::MutexLock lock(mutex);
        if (abandoned) {
          error = "stream aborted";
          return false;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      error = "send: " + errno_message(n < 0 ? errno : EPIPE);
      return false;
    }
    return true;
  }

  void run() {
    const auto heartbeat_interval = std::chrono::milliseconds(config.heartbeat_interval_ms);
    auto next_heartbeat = Clock::now() + heartbeat_interval;
    std::uint64_t heartbeats_sent = 0;
    for (;;) {
      Item item;
      bool have_item = false;
      bool send_heartbeat = false;
      {
        core::MutexLock lock(mutex);
        for (;;) {
          if (abandoned || stats.failed) return;
          if (!queue.empty()) {
            item = std::move(queue.front());
            queue.pop_front();
            if (item.is_block) {
              --blocks_queued;
              space_cv.notify_one();
            }
            have_item = true;
            writing = true;
            break;
          }
          if (stop) return;  // drained: finish() owns the close
          if (config.heartbeat_interval_ms == 0) {
            work_cv.wait(lock);
            continue;
          }
          if (Clock::now() >= next_heartbeat) {
            send_heartbeat = true;
            writing = true;
            break;
          }
          work_cv.wait_until(lock, next_heartbeat);
        }
      }
      std::vector<std::byte> heartbeat_frame;
      if (send_heartbeat) {
        append_frame(heartbeat_frame, FrameType::kHeartbeat,
                     encode_heartbeat(progress.load(std::memory_order_relaxed)));
      }
      const std::vector<std::byte>& frame = have_item ? item.frame : heartbeat_frame;
      std::string error;
      const bool sent = write_frame(frame, error);
      {
        const core::MutexLock lock(mutex);
        writing = false;
        if (!sent) {
          fail_locked(std::move(error));
          return;
        }
        stats.frames_sent += 1;
        stats.bytes_sent += frame.size();
        if (have_item && item.is_block) stats.blocks_sent += 1;
        if (send_heartbeat) {
          stats.heartbeats = ++heartbeats_sent;
          next_heartbeat = Clock::now() + heartbeat_interval;
        } else {
          next_heartbeat = Clock::now() + heartbeat_interval;
        }
        work_cv.notify_all();  // finish() waits on queue-empty + !writing
      }
    }
  }
};

BlockSender::BlockSender(StreamConfig config)
    : config_(std::move(config)), impl_(std::make_unique<Impl>(config_)) {}

BlockSender::~BlockSender() { abort(); }

bool BlockSender::connect(const Hello& hello, std::string* error) {
  if (impl_->fd >= 0) return true;
  const int fd =
      connect_with_timeout(config_.host, config_.port, config_.connect_timeout_ms, error);
  if (fd < 0) return false;
  if (config_.send_buffer_bytes > 0) {
    const int size = static_cast<int>(config_.send_buffer_bytes);
    if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &size, sizeof(size)) != 0) {
      // Non-fatal: the stream works with the kernel's default buffer, just
      // with less slack under bursts.  Surface the refusal in the sender's
      // error state (failed stays false; a real failure later overwrites).
      const core::MutexLock lock(impl_->mutex);
      if (impl_->stats.error.empty()) {
        impl_->stats.error = "setsockopt(SO_SNDBUF): " + errno_message(errno);
      }
    }
  }
  impl_->fd = fd;
  {
    const core::MutexLock lock(impl_->mutex);
    impl_->stats.connected = true;
    Impl::Item item;
    append_frame(item.frame, FrameType::kHello, encode_hello(hello));
    impl_->queue.push_back(std::move(item));
  }
  impl_->worker = sys::named_thread("nmo-send", [this] { impl_->run(); });
  return true;
}

bool BlockSender::send_block(std::span<const std::byte> block_bytes) {
  core::MutexLock lock(impl_->mutex);
  if (impl_->fd < 0 || impl_->stats.failed || impl_->stop || impl_->abandoned) return false;
  if (impl_->blocks_queued >= config_.ring_capacity) {
    if (config_.policy == StreamConfig::Backpressure::kBlock) {
      impl_->space_cv.wait(lock, [&]() NMO_REQUIRES(impl_->mutex) {
        return impl_->blocks_queued < config_.ring_capacity || impl_->stats.failed ||
               impl_->abandoned;
      });
      if (impl_->stats.failed || impl_->abandoned) return false;
    } else {
      // Evict the oldest queued *block* (control frames are sacred).
      for (auto it = impl_->queue.begin(); it != impl_->queue.end(); ++it) {
        if (it->is_block) {
          impl_->queue.erase(it);
          --impl_->blocks_queued;
          impl_->stats.blocks_dropped += 1;
          break;
        }
      }
    }
  }
  Impl::Item item;
  item.is_block = true;
  append_frame(item.frame, FrameType::kBlock, block_bytes);
  impl_->queue.push_back(std::move(item));
  ++impl_->blocks_queued;
  impl_->stats.blocks_enqueued += 1;
  impl_->work_cv.notify_one();
  return true;
}

void BlockSender::send_control(FrameType type, std::vector<std::byte> payload) {
  const core::MutexLock lock(impl_->mutex);
  if (impl_->fd < 0 || impl_->stats.failed || impl_->stop || impl_->abandoned) return;
  Impl::Item item;
  append_frame(item.frame, type, payload);
  impl_->queue.push_back(std::move(item));
  impl_->work_cv.notify_one();
}

void BlockSender::set_progress(std::uint64_t samples_decoded) {
  impl_->progress.store(samples_decoded, std::memory_order_relaxed);
}

bool BlockSender::finish(const SessionEnd& end) {
  if (impl_->fd < 0) return false;
  {
    core::MutexLock lock(impl_->mutex);
    if (!impl_->stats.failed && !impl_->abandoned) {
      Impl::Item item;
      append_frame(item.frame, FrameType::kEnd, encode_session_end(end));
      impl_->queue.push_back(std::move(item));
    }
    impl_->stop = true;
    impl_->work_cv.notify_all();
    const auto deadline = Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
    const bool drained =
        impl_->work_cv.wait_until(lock, deadline, [&]() NMO_REQUIRES(impl_->mutex) {
          return (impl_->queue.empty() && !impl_->writing) || impl_->stats.failed ||
                 impl_->abandoned;
        });
    if (!drained) {
      impl_->fail_locked("stream drain timed out");
    }
  }
  abort();  // join + close (the queue is already drained or condemned)
  const core::MutexLock lock(impl_->mutex);
  return !impl_->stats.failed;
}

void BlockSender::abort() {
  {
    const core::MutexLock lock(impl_->mutex);
    if (impl_->fd < 0 && !impl_->worker.joinable()) return;
    // A drained finish() lands here with stop set and the queue empty -
    // then this is a plain join + close.  Anything else is a condemnation:
    // drop the backlog and make the worker exit mid-frame if need be.
    if (!impl_->stop || !impl_->queue.empty() || impl_->writing) {
      impl_->abandoned = true;
      impl_->queue.clear();
      impl_->blocks_queued = 0;
    }
    impl_->stop = true;
    impl_->space_cv.notify_all();
    impl_->work_cv.notify_all();
  }
  if (impl_->worker.joinable()) impl_->worker.join();
  if (impl_->fd >= 0) {
    ::close(impl_->fd);
    impl_->fd = -1;
  }
}

bool BlockSender::active() const {
  const core::MutexLock lock(impl_->mutex);
  return impl_->fd >= 0 && impl_->stats.connected && !impl_->stats.failed &&
         !impl_->abandoned;
}

StreamStats BlockSender::stats() const {
  const core::MutexLock lock(impl_->mutex);
  return impl_->stats;
}

// --- StreamingTraceSink ------------------------------------------------------

StreamingTraceSink::StreamingTraceSink(StreamConfig config, std::string session_name,
                                       store::TraceWriter::Options trace_options,
                                       std::uint64_t nonce)
    : name_(std::move(session_name)),
      options_(trace_options),
      nonce_(nonce),
      sender_(std::move(config)) {}

bool StreamingTraceSink::connect() {
  connect_attempted_ = true;
  Hello hello;
  hello.trace_version = options_.version;
  hello.compress = options_.compress;
  hello.index_meta = options_.index_meta;
  hello.kind = kHelloKindSession;
  hello.nonce = nonce_;
  hello.name = name_;
  std::string error;
  return sender_.connect(hello, &error);
}

void StreamingTraceSink::attach(store::TraceWriter& writer) {
  if (!sender_.active()) return;
  writer.set_block_observer(
      [this](std::span<const std::byte> block_bytes, std::uint32_t, CoreId) {
        sender_.send_block(block_bytes);
      });
}

void StreamingTraceSink::note_progress(std::uint64_t samples_decoded) {
  sender_.set_progress(samples_decoded);
}

void StreamingTraceSink::send_regions(const std::vector<core::AddrRegion>& regions) {
  if (!sender_.active() || regions.size() <= regions_sent_) return;
  RegionDelta delta;
  delta.first = static_cast<std::uint32_t>(regions_sent_);
  delta.regions.assign(regions.begin() + static_cast<std::ptrdiff_t>(regions_sent_),
                       regions.end());
  sender_.send_control(FrameType::kRegions, encode_region_delta(delta));
  regions_sent_ = regions.size();
}

void StreamingTraceSink::send_scheduler_meta(const std::string& text) {
  if (!sender_.active()) return;
  std::vector<std::byte> payload(text.size());
  std::memcpy(payload.data(), text.data(), text.size());
  sender_.send_control(FrameType::kSchedMeta, std::move(payload));
}

bool StreamingTraceSink::finish(std::uint64_t samples, const std::string& fingerprint_hex,
                                bool clean) {
  if (!sender_.stats().connected) return false;
  SessionEnd end;
  end.samples = samples;
  end.clean = clean;
  if (!fingerprint_digest(fingerprint_hex, end.digest)) end.clean = false;
  return sender_.finish(end);
}

void StreamingTraceSink::abort() { sender_.abort(); }

bool stream_scheduler_meta(const StreamConfig& config, const std::string& text,
                           const std::string& name) {
  BlockSender sender(config);
  Hello hello;
  hello.kind = kHelloKindControl;
  hello.name = name;
  if (!sender.connect(hello)) return false;
  std::vector<std::byte> payload(text.size());
  if (!text.empty()) std::memcpy(payload.data(), text.data(), text.size());
  sender.send_control(FrameType::kSchedMeta, std::move(payload));
  SessionEnd end;
  end.clean = true;
  return sender.finish(end);
}

bool StreamingTraceSink::fallback() const {
  if (!connect_attempted_) return false;
  const auto s = sender_.stats();
  return !s.connected || s.failed;
}

}  // namespace nmo::net
