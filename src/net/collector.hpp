// Collector side of the streaming-capture subsystem: the engine behind
// the nmo-traced daemon (tools/nmo_traced.cpp).
//
// One poll-loop thread serves many concurrent senders.  Each connection
// runs a small state machine - hello, then blocks/control frames, then an
// end frame - behind a FrameParser, and ingests its stream into a
// per-session directory of a SessionStore: block frames are decoded
// (store::decode_v2_block, full corrupt-input discipline) and re-added
// through a TraceWriter configured from the hello's trace options.
// Because a v2 writer flushes purely on block fullness, re-adding the
// exact sample sequence reproduces the sender's block boundaries - the
// collected trace is byte-identical to the sender's local capture, with
// the index, block metadata and MD5 recomputed (not trusted) at ingest.
//
// A connection that drops before its end frame is finalized as a *valid
// truncated trace*: the writer closes normally over the blocks that
// arrived, session.meta records stream_state=truncated, and nmo-trace
// verify passes on the artifact.  Capture robustness cuts both ways: the
// sender never loses data to a dead collector (local tee), and the
// collector never writes an unverifiable file because a sender died.
//
// Control streams (hello kind 1) carry scheduler.meta snapshots that the
// collector merges across every sender into a fleet-level admission view
// at `<root>/scheduler.meta` (sums for counters, maxima for peaks,
// last-wins for labels), beside a `collector.meta` with ingest totals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace nmo::net {

/// How the daemon listens and where collected sessions land.
struct CollectorConfig {
  std::string bind = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the real one.
  std::uint16_t port = 0;
  /// SessionStore root the collected sessions are written into.
  std::string root = "collected-store";
  /// Stop serving once this many session streams have been finalized
  /// (clean or truncated) and no session connection remains open; 0 runs
  /// until stop().  The deterministic-lifecycle knob CI relies on.
  std::uint32_t once = 0;
  /// Log per-connection lifecycle lines to stderr.
  bool verbose = false;
};

/// Ingest totals (monotone; a snapshot is safe to read while serving).
struct CollectorStats {
  std::uint64_t connections = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_clean = 0;      ///< End frame matched the ingest.
  std::uint64_t sessions_truncated = 0;  ///< Disconnect before the end frame.
  std::uint64_t sessions_failed = 0;     ///< Protocol error / count / digest mismatch.
  std::uint64_t blocks = 0;
  std::uint64_t samples = 0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t meta_snapshots = 0;  ///< scheduler.meta frames merged.
  std::uint64_t protocol_errors = 0;
};

class Collector {
 public:
  explicit Collector(CollectorConfig config);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Binds, listens and starts the poll-loop thread.  False - with
  /// *error - when the address cannot be bound.
  bool start(std::string* error = nullptr);

  /// The bound port (resolves an ephemeral bind); 0 before start().
  [[nodiscard]] std::uint16_t port() const;

  /// Blocks until the `once` quota is met (finalized sessions >= once and
  /// no session connection open).  Bounded by `timeout_ms` when non-zero.
  /// Returns immediately-false when once == 0 and the collector is still
  /// serving (there is nothing to wait for).
  bool wait_done(std::uint32_t timeout_ms = 0);

  /// Stops serving: wakes the poll loop, finalizes every open session
  /// stream as truncated, writes the merged scheduler.meta and
  /// collector.meta, joins.  Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] CollectorStats stats() const;
  [[nodiscard]] const CollectorConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nmo::net
