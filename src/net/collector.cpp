#include "net/collector.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/errno_util.hpp"
#include "common/thread_safety.hpp"
#include "core/trace.hpp"
#include "net/wire.hpp"
#include "store/region_file.hpp"
#include "store/session_store.hpp"
#include "store/trace_file.hpp"
#include "sys/topology.hpp"

namespace nmo::net {
namespace {

bool is_number(const std::string& text) {
  return !text.empty() && text.find_first_not_of("0123456789") == std::string::npos;
}

/// Fleet-merge rule for one scheduler.meta key: peaks take the max,
/// counters sum, anything non-numeric is last-wins (policy labels).
void merge_meta_value(std::map<std::string, std::string>& merged, const std::string& key,
                      const std::string& value) {
  auto it = merged.find(key);
  if (it == merged.end()) {
    merged[key] = value;
    return;
  }
  if (!is_number(value) || !is_number(it->second)) {
    it->second = value;
    return;
  }
  const std::uint64_t lhs = std::strtoull(it->second.c_str(), nullptr, 10);
  const std::uint64_t rhs = std::strtoull(value.c_str(), nullptr, 10);
  const bool take_max = key.size() > 4 && key.compare(key.size() - 4, 4, "_max") == 0;
  const bool is_peak = key.rfind("peak_", 0) == 0;
  it->second = std::to_string(take_max || is_peak ? std::max(lhs, rhs) : lhs + rhs);
}

/// key=value text -> ordered pairs (duplicates preserved in order so the
/// merge folds every occurrence).
std::vector<std::pair<std::string, std::string>> parse_meta_text(const std::string& text) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    pairs.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return pairs;
}

}  // namespace

struct Collector::Impl {
  explicit Impl(CollectorConfig collector_config) : config(std::move(collector_config)) {}

  /// One sender's connection: parser + ingest state machine.
  struct Connection {
    int fd = -1;
    FrameParser parser;
    bool got_hello = false;
    Hello hello;
    // Session-stream ingest (hello kind 0):
    std::unique_ptr<store::TraceWriter> writer;
    store::SessionInfo info;
    std::vector<core::AddrRegion> regions;
    std::uint64_t blocks = 0;
    std::uint64_t progress = 0;  ///< Last heartbeat's decode progress.
    bool finalized = false;
    std::string error;  ///< First ingest/protocol error (terminal).
  };

  CollectorConfig config;
  int listen_fd = -1;
  int wake_fd[2] = {-1, -1};  ///< Self-pipe: stop() wakes the poll loop.
  std::uint16_t bound_port = 0;
  std::thread thread;
  std::unique_ptr<store::SessionStore> store;

  mutable core::Mutex mutex{"Collector"};
  core::CondVar done_cv;
  CollectorStats stats NMO_GUARDED_BY(mutex);
  std::map<std::string, std::string> merged_meta NMO_GUARDED_BY(mutex);
  std::uint64_t meta_senders NMO_GUARDED_BY(mutex) = 0;
  bool done NMO_GUARDED_BY(mutex) = false;  ///< `once` quota met.
  bool stopping NMO_GUARDED_BY(mutex) = false;

  void log(const Connection& conn, const char* what, const std::string& detail = "") {
    if (!config.verbose) return;
    std::fprintf(stderr, "nmo-traced: [%s#%llu] %s%s%s\n",
                 conn.got_hello ? conn.hello.name.c_str() : "?",
                 static_cast<unsigned long long>(conn.hello.nonce), what,
                 detail.empty() ? "" : ": ", detail.c_str());
  }

  /// Applies one frame to the connection's state machine.  Returns false
  /// when the connection must be closed (end frame or protocol error).
  bool handle_frame(Connection& conn, Frame& frame) {
    {
      const core::MutexLock lock(mutex);
      stats.frames += 1;
    }
    if (!conn.got_hello) {
      if (frame.type != FrameType::kHello) {
        conn.error = "first frame is not a hello";
        return false;
      }
      std::string error;
      if (!parse_hello(frame.payload, conn.hello, error)) {
        conn.error = error;
        return false;
      }
      if (conn.hello.trace_version != store::kTraceVersion2) {
        conn.error = "stream declares unsupported trace version " +
                     std::to_string(conn.hello.trace_version);
        return false;
      }
      conn.got_hello = true;
      if (conn.hello.kind == kHelloKindSession) {
        conn.info = store->create_session(conn.hello.name);
        store::TraceWriter::Options options;
        options.version = conn.hello.trace_version;
        options.compress = conn.hello.compress;
        options.index_meta = conn.hello.index_meta;
        conn.writer = std::make_unique<store::TraceWriter>(conn.info.trace_path, options);
        if (!conn.writer->ok()) {
          conn.error = conn.writer->error();
          return false;
        }
        const core::MutexLock lock(mutex);
        stats.sessions_started += 1;
      }
      log(conn, conn.hello.kind == kHelloKindSession ? "session stream opened"
                                                     : "control stream opened");
      return true;
    }
    switch (frame.type) {
      case FrameType::kHello:
        conn.error = "duplicate hello";
        return false;
      case FrameType::kBlock: {
        if (!conn.writer) {
          conn.error = "block frame on a control stream";
          return false;
        }
        std::vector<core::TraceSample> samples;
        std::string error;
        if (!store::decode_v2_block(frame.payload, samples, &error)) {
          conn.error = "bad block: " + error;
          return false;
        }
        for (const auto& s : samples) conn.writer->add(s);
        if (!conn.writer->ok()) {
          conn.error = conn.writer->error();
          return false;
        }
        conn.blocks += 1;
        const core::MutexLock lock(mutex);
        stats.blocks += 1;
        stats.samples += samples.size();
        return true;
      }
      case FrameType::kRegions: {
        if (!conn.writer) {
          conn.error = "region frame on a control stream";
          return false;
        }
        RegionDelta delta;
        std::string error;
        if (!parse_region_delta(frame.payload, delta, error)) {
          conn.error = "bad region delta: " + error;
          return false;
        }
        if (delta.first != conn.regions.size()) {
          conn.error = "region delta gap: expected first index " +
                       std::to_string(conn.regions.size()) + ", got " +
                       std::to_string(delta.first);
          return false;
        }
        conn.regions.insert(conn.regions.end(), delta.regions.begin(), delta.regions.end());
        return true;
      }
      case FrameType::kSchedMeta: {
        std::string text(reinterpret_cast<const char*>(frame.payload.data()),
                         frame.payload.size());
        const core::MutexLock lock(mutex);
        stats.meta_snapshots += 1;
        meta_senders += 1;
        for (const auto& [key, value] : parse_meta_text(text)) {
          merge_meta_value(merged_meta, key, value);
        }
        return true;
      }
      case FrameType::kEnd: {
        SessionEnd end;
        std::string error;
        if (!parse_session_end(frame.payload, end, error)) {
          conn.error = "bad end frame: " + error;
          return false;
        }
        finalize(conn, &end);
        return false;  // stream complete; close the connection
      }
      case FrameType::kHeartbeat: {
        std::uint64_t progress = 0;
        std::string error;
        if (!parse_heartbeat(frame.payload, progress, error)) {
          conn.error = "bad heartbeat: " + error;
          return false;
        }
        conn.progress = progress;
        const core::MutexLock lock(mutex);
        stats.heartbeats += 1;
        return true;
      }
    }
    conn.error = "unreachable frame type";  // FrameParser validated the type
    return false;
  }

  /// Closes the ingest writer and persists the session artifacts.  `end`
  /// is the sender's declaration, or nullptr when the stream died first
  /// (the truncated path).  The written trace is verify-clean either way;
  /// stream_state records which way it ended.
  void finalize(Connection& conn, const SessionEnd* end) {
    if (conn.finalized || !conn.writer) {
      conn.finalized = true;
      return;
    }
    conn.finalized = true;
    const bool closed = conn.writer->close();
    const std::uint64_t samples = conn.writer->samples_written();
    const std::string fingerprint = conn.writer->fingerprint();

    std::string stream_state;
    std::string error = conn.error;
    if (!closed) {
      stream_state = "failed";
      if (error.empty()) error = conn.writer->error();
    } else if (end == nullptr) {
      stream_state = "truncated";
      if (error.empty()) error = "stream ended before its end frame";
    } else if (end->samples != samples ||
               fingerprint_hex(end->digest) != fingerprint) {
      // The sender declared more (or different) data than arrived - e.g.
      // a drop-oldest stream with evictions.  The artifact is still a
      // valid trace of what DID arrive.
      stream_state = end->clean && end->samples >= samples ? "partial" : "mismatch";
      error = "sender declared " + std::to_string(end->samples) + " samples / " +
              fingerprint_hex(end->digest) + ", ingested " + std::to_string(samples) +
              " / " + fingerprint;
    } else {
      stream_state = end->clean ? "clean" : "partial";
    }
    const bool clean = stream_state == "clean";

    std::string region_error;
    if (!conn.regions.empty() &&
        !store::write_region_file(store::region_path_for(conn.info.trace_path), conn.regions,
                                  &region_error)) {
      if (error.empty()) error = region_error;
    }

    std::ofstream meta(conn.info.dir + "/" + std::string(store::kSessionMetaFile),
                       std::ios::trunc);
    if (meta) {
      std::string safe_error = error;
      for (char& c : safe_error) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      meta << "id=" << conn.info.id << '\n';
      meta << "name=" << conn.info.name << '\n';
      meta << "state=" << (clean ? "done" : "failed") << '\n';
      meta << "samples=" << samples << '\n';
      meta << "fingerprint=" << fingerprint << '\n';
      meta << "error=" << safe_error << '\n';
      meta << "streamed=1\n";
      meta << "stream_state=" << stream_state << '\n';
      meta << "stream_nonce=" << conn.hello.nonce << '\n';
      meta << "stream_blocks=" << conn.blocks << '\n';
      meta << "stream_progress=" << conn.progress << '\n';
    }

    {
      const core::MutexLock lock(mutex);
      if (clean) {
        stats.sessions_clean += 1;
      } else if (stream_state == "truncated") {
        stats.sessions_truncated += 1;
      } else {
        stats.sessions_failed += 1;
      }
    }
    log(conn, "finalized", stream_state + ", " + std::to_string(samples) + " samples, " +
                               fingerprint);
  }

  /// Counts finalized session streams and checks the `once` quota.
  void check_done(const std::vector<std::unique_ptr<Connection>>& conns) {
    if (config.once == 0) return;
    const core::MutexLock lock(mutex);
    const std::uint64_t finalized =
        stats.sessions_clean + stats.sessions_truncated + stats.sessions_failed;
    if (finalized < config.once) return;
    for (const auto& conn : conns) {
      if (conn->writer && !conn->finalized) return;  // a stream is still open
    }
    if (!done) {
      done = true;
      done_cv.notify_all();
    }
  }

  void close_connection(std::vector<std::unique_ptr<Connection>>& conns, std::size_t i) {
    Connection& conn = *conns[i];
    if (!conn.error.empty()) {
      const core::MutexLock lock(mutex);
      stats.protocol_errors += 1;
    }
    if (!conn.finalized && conn.writer) {
      log(conn, "disconnected mid-stream", conn.error);
      finalize(conn, nullptr);
    } else if (!conn.error.empty()) {
      log(conn, "closed with error", conn.error);
    }
    ::close(conn.fd);
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
  }

  void run() {
    std::vector<std::unique_ptr<Connection>> conns;
    std::vector<std::byte> buf(64 * 1024);
    for (;;) {
      {
        const core::MutexLock lock(mutex);
        if (stopping) break;
      }
      std::vector<pollfd> fds;
      fds.push_back({listen_fd, POLLIN, 0});
      fds.push_back({wake_fd[0], POLLIN, 0});
      for (const auto& conn : conns) fds.push_back({conn->fd, POLLIN, 0});
      // Connections accepted below are appended past this count and have
      // no pollfd this round; they are served next iteration.
      const std::size_t polled = conns.size();
      if (::poll(fds.data(), fds.size(), 1000) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if ((fds[1].revents & POLLIN) != 0) {
        char drain[64];
        while (::read(wake_fd[0], drain, sizeof(drain)) > 0) {
        }
      }
      if ((fds[0].revents & POLLIN) != 0) {
        for (;;) {
          const int fd = ::accept(listen_fd, nullptr, nullptr);
          if (fd < 0) break;
          ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
          auto conn = std::make_unique<Connection>();
          conn->fd = fd;
          conns.push_back(std::move(conn));
          const core::MutexLock lock(mutex);
          stats.connections += 1;
        }
      }
      // Walk forward so frames merge in accept order even when several
      // connections turn readable in the same poll round - "last-wins"
      // metadata keys must follow arrival order, not iteration accident.
      // Closes are deferred: erasing mid-walk would shift the conn <->
      // pollfd index mapping.
      std::vector<std::size_t> closing;
      for (std::size_t i = 0; i < polled; ++i) {
        const auto& pfd = fds[2 + i];
        if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Connection& conn = *conns[i];
        bool close_now = false;
        for (;;) {
          const ssize_t n = ::recv(conn.fd, buf.data(), buf.size(), 0);
          if (n > 0) {
            {
              const core::MutexLock lock(mutex);
              stats.bytes += static_cast<std::uint64_t>(n);
            }
            conn.parser.feed(buf.data(), static_cast<std::size_t>(n));
            Frame frame;
            FrameParser::Result result;
            while ((result = conn.parser.next(frame)) == FrameParser::Result::kFrame) {
              if (!handle_frame(conn, frame)) {
                close_now = true;
                break;
              }
            }
            if (result == FrameParser::Result::kError) {
              if (conn.error.empty()) conn.error = conn.parser.error();
              close_now = true;
            }
            if (close_now) break;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          close_now = true;  // peer closed (0) or hard error
          break;
        }
        if (close_now) closing.push_back(i);
      }
      for (std::size_t j = closing.size(); j-- > 0;) close_connection(conns, closing[j]);
      check_done(conns);
    }
    // Stopping: every still-open stream finalizes as truncated, so a
    // daemon shutdown never leaves an unverifiable partial trace behind.
    for (std::size_t i = conns.size(); i-- > 0;) close_connection(conns, i);
    write_root_meta();
  }

  /// Persists the fleet view: the merged scheduler.meta plus this
  /// collector's own ingest totals.
  void write_root_meta() {
    if (!store) return;
    CollectorStats snapshot;
    std::map<std::string, std::string> merged;
    std::uint64_t senders = 0;
    {
      const core::MutexLock lock(mutex);
      snapshot = stats;
      merged = merged_meta;
      senders = meta_senders;
    }
    if (!merged.empty()) {
      std::ofstream out(store->root() + "/" + std::string(store::kSchedulerMetaFile),
                        std::ios::trunc);
      if (out) {
        for (const auto& [key, value] : merged) out << key << '=' << value << '\n';
      }
    }
    std::ofstream out(store->root() + "/collector.meta", std::ios::trunc);
    if (!out) return;
    out << "connections=" << snapshot.connections << '\n';
    out << "sessions_started=" << snapshot.sessions_started << '\n';
    out << "sessions_clean=" << snapshot.sessions_clean << '\n';
    out << "sessions_truncated=" << snapshot.sessions_truncated << '\n';
    out << "sessions_failed=" << snapshot.sessions_failed << '\n';
    out << "blocks=" << snapshot.blocks << '\n';
    out << "samples=" << snapshot.samples << '\n';
    out << "frames=" << snapshot.frames << '\n';
    out << "bytes=" << snapshot.bytes << '\n';
    out << "heartbeats=" << snapshot.heartbeats << '\n';
    out << "meta_snapshots=" << snapshot.meta_snapshots << '\n';
    out << "meta_senders=" << senders << '\n';
    out << "protocol_errors=" << snapshot.protocol_errors << '\n';
  }
};

Collector::Collector(CollectorConfig config) : impl_(std::make_unique<Impl>(std::move(config))) {}

Collector::~Collector() { stop(); }

bool Collector::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    if (impl_->listen_fd >= 0) {
      ::close(impl_->listen_fd);
      impl_->listen_fd = -1;
    }
    return false;
  };
  if (impl_->thread.joinable()) return true;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl_->config.port);
  const std::string& bind_host = impl_->config.bind;
  if (inet_pton(AF_INET, bind_host == "localhost" ? "127.0.0.1" : bind_host.c_str(),
                &addr.sin_addr) != 1) {
    return fail("bad bind address " + bind_host);
  }
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) return fail("socket: " + errno_message(errno));
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind: " + errno_message(errno));
  }
  if (::listen(impl_->listen_fd, 64) != 0) {
    return fail("listen: " + errno_message(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    impl_->bound_port = ntohs(bound.sin_port);
  }
  ::fcntl(impl_->listen_fd, F_SETFL, ::fcntl(impl_->listen_fd, F_GETFL, 0) | O_NONBLOCK);
  if (::pipe(impl_->wake_fd) != 0) return fail("pipe: " + errno_message(errno));
  ::fcntl(impl_->wake_fd[0], F_SETFL, ::fcntl(impl_->wake_fd[0], F_GETFL, 0) | O_NONBLOCK);
  impl_->store = std::make_unique<store::SessionStore>(impl_->config.root);
  {
    const core::MutexLock lock(impl_->mutex);
    impl_->stopping = false;
  }
  impl_->thread = sys::named_thread("nmo-coll", [this] { impl_->run(); });
  return true;
}

std::uint16_t Collector::port() const { return impl_->bound_port; }

bool Collector::wait_done(std::uint32_t timeout_ms) {
  core::MutexLock lock(impl_->mutex);
  if (impl_->config.once == 0) return impl_->done;
  const auto ready = [&]() NMO_REQUIRES(impl_->mutex) { return impl_->done || impl_->stopping; };
  if (timeout_ms == 0) {
    impl_->done_cv.wait(lock, ready);
  } else if (!impl_->done_cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
    return false;
  }
  return impl_->done;
}

void Collector::stop() {
  {
    const core::MutexLock lock(impl_->mutex);
    if (!impl_->thread.joinable()) return;
    impl_->stopping = true;
    impl_->done_cv.notify_all();
  }
  if (impl_->wake_fd[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(impl_->wake_fd[1], &byte, 1);
  }
  impl_->thread.join();
  for (int& fd : impl_->wake_fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
}

CollectorStats Collector::stats() const {
  const core::MutexLock lock(impl_->mutex);
  return impl_->stats;
}

const CollectorConfig& Collector::config() const { return impl_->config; }

}  // namespace nmo::net
