#include "analysis/pattern.hpp"

#include <algorithm>
#include <cstdlib>

namespace nmo::analysis {

std::vector<RegionStats> region_breakdown(const core::SampleTrace& trace,
                                          const core::RegionTable& regions) {
  std::vector<RegionStats> stats(regions.regions().size() + 1);
  for (std::size_t i = 0; i < regions.regions().size(); ++i) {
    stats[i].name = regions.regions()[i].name;
  }
  stats.back().name = "(untagged)";

  for (const auto& s : trace.samples()) {
    const std::size_t idx =
        s.region >= 0 ? static_cast<std::size_t>(s.region) : stats.size() - 1;
    auto& r = stats[idx];
    ++r.samples;
    if (s.op == MemOp::kLoad) {
      ++r.loads;
    } else {
      ++r.stores;
    }
    r.min_addr = std::min(r.min_addr, s.vaddr);
    r.max_addr = std::max(r.max_addr, s.vaddr);
  }
  return stats;
}

std::vector<core::TraceSample> samples_in_phase(const core::SampleTrace& trace,
                                                const core::RegionTable& regions,
                                                std::string_view phase) {
  std::vector<core::TraceSample> out;
  for (const auto& s : trace.samples()) {
    for (const auto& span : regions.phases()) {
      if (span.name != phase) continue;
      const std::uint64_t stop = span.t_stop_ns == 0 ? ~std::uint64_t{0} : span.t_stop_ns;
      if (s.time_ns >= span.t_start_ns && s.time_ns < stop) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

double stride_regularity(const std::vector<core::TraceSample>& samples) {
  // Per-core consecutive deltas; find the dominant one.
  std::map<CoreId, Addr> last;
  std::map<std::int64_t, std::uint64_t> deltas;
  std::uint64_t total = 0;
  for (const auto& s : samples) {
    auto it = last.find(s.core);
    if (it != last.end()) {
      const auto delta = static_cast<std::int64_t>(s.vaddr) -
                         static_cast<std::int64_t>(it->second);
      ++deltas[delta];
      ++total;
      it->second = s.vaddr;
    } else {
      last.emplace(s.core, s.vaddr);
    }
  }
  if (total == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& [delta, count] : deltas) {
    (void)delta;
    best = std::max(best, count);
  }
  return static_cast<double>(best) / static_cast<double>(total);
}

double locality_fraction(const std::vector<core::TraceSample>& samples, std::uint64_t window) {
  std::map<CoreId, Addr> last;
  std::uint64_t local = 0, total = 0;
  for (const auto& s : samples) {
    auto it = last.find(s.core);
    if (it != last.end()) {
      const auto delta = s.vaddr > it->second ? s.vaddr - it->second : it->second - s.vaddr;
      if (delta <= window) ++local;
      ++total;
      it->second = s.vaddr;
    } else {
      last.emplace(s.core, s.vaddr);
    }
  }
  return total > 0 ? static_cast<double>(local) / static_cast<double>(total) : 0.0;
}

}  // namespace nmo::analysis
