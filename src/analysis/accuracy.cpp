#include "analysis/accuracy.hpp"

#include <cmath>

namespace nmo::analysis {

double accuracy(std::uint64_t mem_counted, std::uint64_t samples, std::uint64_t period) {
  if (mem_counted == 0) return 0.0;
  const double counted = static_cast<double>(mem_counted);
  const double reconstructed = static_cast<double>(samples) * static_cast<double>(period);
  return 1.0 - std::abs(counted - reconstructed) / counted;
}

double time_overhead(std::uint64_t baseline_ns, std::uint64_t instrumented_ns) {
  if (baseline_ns == 0) return 0.0;
  return static_cast<double>(instrumented_ns) / static_cast<double>(baseline_ns) - 1.0;
}

double accuracy(const sim::StatResult& r) {
  return accuracy(r.mem_counted, r.processed_samples, r.period);
}

double time_overhead(const sim::StatResult& r) {
  return time_overhead(r.baseline_ns, r.instrumented_ns);
}

}  // namespace nmo::analysis
