#include "analysis/trace_diff.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "analysis/pattern.hpp"
#include "store/region_file.hpp"
#include "store/trace_query.hpp"

namespace nmo::analysis {
namespace {

namespace fs = std::filesystem;

std::string region_name(std::int32_t region, const std::vector<core::AddrRegion>& regions) {
  if (region < 0) return "(untagged)";
  const auto idx = static_cast<std::size_t>(region);
  if (idx < regions.size() && !regions[idx].name.empty()) return regions[idx].name;
  return "region " + std::to_string(region);
}

/// Folds one trace's samples into an existing profile accumulator
/// (session roots fold several traces into one).
struct ProfileAccumulator {
  std::vector<core::TraceSample> samples;

  void add(const std::vector<core::TraceSample>& trace_samples,
           const std::vector<core::AddrRegion>& regions, TraceProfile& profile) {
    for (const auto& s : trace_samples) {
      auto& region = profile.regions[region_name(s.region, regions)];
      ++region.samples;
      ++region.latency_hist[s.latency];
      ++region.level_samples[static_cast<std::size_t>(s.level)];
      if (profile.samples == 0) {
        profile.time_min = profile.time_max = s.time_ns;
      } else {
        profile.time_min = std::min(profile.time_min, s.time_ns);
        profile.time_max = std::max(profile.time_max, s.time_ns);
      }
      ++profile.samples;
      samples.push_back(s);
    }
  }
};

void build_phases(const std::vector<core::TraceSample>& samples, TraceProfile& profile,
                  const DiffOptions& options) {
  const std::size_t bins = std::max<std::size_t>(1, options.phase_bins);
  profile.phases.assign(bins, PhaseSegment{});
  if (samples.empty()) return;
  const double span =
      static_cast<double>(profile.time_max - profile.time_min) + 1.0;  // never 0
  std::vector<std::vector<core::TraceSample>> by_bin(bins);
  for (const auto& s : samples) {
    auto bin = static_cast<std::size_t>(static_cast<double>(s.time_ns - profile.time_min) /
                                        span * static_cast<double>(bins));
    bin = std::min(bin, bins - 1);
    by_bin[bin].push_back(s);
  }
  for (std::size_t b = 0; b < bins; ++b) {
    profile.phases[b].samples = by_bin[b].size();
    profile.phases[b].share =
        static_cast<double>(by_bin[b].size()) / static_cast<double>(samples.size());
    profile.phases[b].stride_regularity = stride_regularity(by_bin[b]);
  }
}

double level_tv_distance(const RegionProfile& a, const RegionProfile& b) {
  double distance = 0.0;
  for (std::size_t l = 0; l < kNumMemLevels; ++l) {
    const double fa =
        a.samples ? static_cast<double>(a.level_samples[l]) / static_cast<double>(a.samples) : 0.0;
    const double fb =
        b.samples ? static_cast<double>(b.level_samples[l]) / static_cast<double>(b.samples) : 0.0;
    distance += std::abs(fa - fb);
  }
  return distance / 2.0;
}

}  // namespace

double ks_distance(const std::map<std::uint16_t, std::uint64_t>& a,
                   const std::map<std::uint16_t, std::uint64_t>& b) {
  std::uint64_t total_a = 0, total_b = 0;
  for (const auto& [value, count] : a) total_a += count;
  for (const auto& [value, count] : b) total_b += count;
  if (total_a == 0 && total_b == 0) return 0.0;
  if (total_a == 0 || total_b == 0) return 1.0;
  // Merge-walk the two sorted histograms, tracking both empirical CDFs; the
  // KS statistic is the largest gap between them at any latency value.
  double ks = 0.0;
  std::uint64_t seen_a = 0, seen_b = 0;
  auto it_a = a.begin();
  auto it_b = b.begin();
  while (it_a != a.end() || it_b != b.end()) {
    std::uint16_t value = 0;
    if (it_a == a.end()) {
      value = it_b->first;
    } else if (it_b == b.end()) {
      value = it_a->first;
    } else {
      value = std::min(it_a->first, it_b->first);
    }
    if (it_a != a.end() && it_a->first == value) seen_a += (it_a++)->second;
    if (it_b != b.end() && it_b->first == value) seen_b += (it_b++)->second;
    const double gap = std::abs(static_cast<double>(seen_a) / static_cast<double>(total_a) -
                                static_cast<double>(seen_b) / static_cast<double>(total_b));
    ks = std::max(ks, gap);
  }
  return ks;
}

TraceProfile build_profile(const std::vector<core::TraceSample>& samples,
                           const std::vector<core::AddrRegion>& regions,
                           const DiffOptions& options) {
  TraceProfile profile;
  ProfileAccumulator acc;
  acc.add(samples, regions, profile);
  build_phases(acc.samples, profile, options);
  return profile;
}

std::optional<TraceProfile> profile_path(const std::string& path, const DiffOptions& options,
                                         std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return std::nullopt;
  };

  std::vector<std::string> trace_paths;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    // A session-store root: every session's trace folds into one profile.
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (!entry.is_directory()) continue;
      if (entry.path().filename().string().rfind("session-", 0) != 0) continue;
      const auto trace = entry.path() / "trace.nmot";
      if (fs::exists(trace)) trace_paths.push_back(trace.string());
    }
    if (trace_paths.empty()) {
      return fail(path + ": no session-*/trace.nmot under this directory");
    }
    std::sort(trace_paths.begin(), trace_paths.end());
  } else {
    trace_paths.push_back(path);
  }

  TraceProfile profile;
  ProfileAccumulator acc;
  for (const auto& trace_path : trace_paths) {
    auto result = store::query(trace_path).run();
    if (!result.ok) return fail(trace_path + ": " + result.error);
    std::vector<core::AddrRegion> regions;
    if (auto sidecar = store::read_region_file(store::region_path_for(trace_path))) {
      regions = std::move(*sidecar);
    }
    acc.add(result.samples.samples(), regions, profile);
  }
  build_phases(acc.samples, profile, options);
  return profile;
}

DiffReport diff_profiles(const TraceProfile& a, const TraceProfile& b,
                         const DiffOptions& options) {
  DiffReport report;
  report.samples_a = a.samples;
  report.samples_b = b.samples;

  static const RegionProfile kEmpty;
  // Walk the union of region names (both maps are name-sorted already).
  std::vector<std::string> names;
  for (const auto& [name, profile] : a.regions) names.push_back(name);
  for (const auto& [name, profile] : b.regions) {
    if (a.regions.find(name) == a.regions.end()) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    const auto it_a = a.regions.find(name);
    const auto it_b = b.regions.find(name);
    const RegionProfile& ra = it_a != a.regions.end() ? it_a->second : kEmpty;
    const RegionProfile& rb = it_b != b.regions.end() ? it_b->second : kEmpty;
    RegionDiff rd;
    rd.name = name;
    rd.samples_a = ra.samples;
    rd.samples_b = rb.samples;
    rd.ks_latency = ks_distance(ra.latency_hist, rb.latency_hist);
    rd.level_distance = level_tv_distance(ra, rb);
    rd.judged = std::max(ra.samples, rb.samples) >= options.min_samples;
    rd.drift = rd.judged && (rd.ks_latency > options.ks_threshold ||
                             rd.level_distance > options.level_threshold);
    if (rd.drift) report.drift = true;
    report.regions.push_back(std::move(rd));
  }

  const std::size_t bins = std::max(a.phases.size(), b.phases.size());
  double distance = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double sa = i < a.phases.size() ? a.phases[i].share : 0.0;
    const double sb = i < b.phases.size() ? b.phases[i].share : 0.0;
    distance += std::abs(sa - sb);
  }
  report.phase_distance = distance / 2.0;
  report.phase_drift = report.phase_distance > options.phase_threshold;
  if (report.phase_drift) report.drift = true;
  return report;
}

}  // namespace nmo::analysis
