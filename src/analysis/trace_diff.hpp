// Statistical trace diffing: did memory behavior drift between two runs?
//
// The regression-detection use case (hyperscale fleets re-profile a
// workload after every roll-out and want a machine verdict, not a human
// staring at scatter plots): summarize each trace into per-region latency
// and level distributions plus a coarse phase timeline, then compare the
// summaries with distribution distances -
//
//   - per region, a Kolmogorov-Smirnov distance between the two empirical
//     latency CDFs (exact, computed from full histograms - not binned),
//   - per region, a total-variation distance between the level mixes
//     (what fraction of accesses hit L1/L2/SLC/DRAM),
//   - across the run, a total-variation distance between time-binned
//     sample shares (did the phase structure move?), with per-bin stride
//     regularity (analysis/pattern.hpp) reported for context.
//
// A region drifts when either distance crosses its threshold and the
// region is populous enough to judge (min_samples); the trace drifts when
// any region does, or the phase timeline does.  A trace diffed against
// itself is exactly zero everywhere by construction.
//
// Inputs are .nmot files or session-store roots (every session-*/trace.nmot
// under the root folds into one profile).  Region indices are translated
// to names via the .nmor sidecar when present, so two traces whose
// sidecars order regions differently still compare region-to-region.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/regions.hpp"
#include "core/trace.hpp"

namespace nmo::analysis {

/// Thresholds and sizing for profile building + comparison.
struct DiffOptions {
  double ks_threshold = 0.15;     ///< Per-region latency KS distance above = drift.
  double level_threshold = 0.10;  ///< Per-region level-mix TV distance above = drift.
  double phase_threshold = 0.25;  ///< Whole-run phase TV distance above = drift.
  std::uint64_t min_samples = 64;  ///< Regions smaller than this (both sides) are not judged.
  std::size_t phase_bins = 16;     ///< Equal time bins for the phase timeline.
};

/// One region's distributions within a trace.
struct RegionProfile {
  std::uint64_t samples = 0;
  std::map<std::uint16_t, std::uint64_t> latency_hist;  ///< Exact latency counts.
  std::uint64_t level_samples[kNumMemLevels] = {};
};

/// One time bin of the phase timeline.
struct PhaseSegment {
  std::uint64_t samples = 0;
  double share = 0.0;              ///< Fraction of the trace's samples.
  double stride_regularity = 0.0;  ///< analysis::stride_regularity of the bin.
};

/// Everything diff() needs to know about one trace (or one merged set of
/// session traces).
struct TraceProfile {
  std::uint64_t samples = 0;
  std::uint64_t time_min = 0;
  std::uint64_t time_max = 0;
  std::map<std::string, RegionProfile> regions;  ///< Keyed by region name.
  std::vector<PhaseSegment> phases;              ///< DiffOptions::phase_bins entries.
};

/// Builds a profile from samples + the region table naming their indices
/// (indices without a table entry become "region N"; -1 is "(untagged)").
TraceProfile build_profile(const std::vector<core::TraceSample>& samples,
                           const std::vector<core::AddrRegion>& regions,
                           const DiffOptions& options);

/// Profiles a .nmot file (region sidecar honored when present) or a
/// session-store root (every session-*/trace.nmot under it folds into one
/// profile).  nullopt + *error on unreadable input.
std::optional<TraceProfile> profile_path(const std::string& path, const DiffOptions& options,
                                         std::string* error = nullptr);

/// One region's comparison across the two traces.
struct RegionDiff {
  std::string name;
  std::uint64_t samples_a = 0;
  std::uint64_t samples_b = 0;
  double ks_latency = 0.0;      ///< KS distance; 1 when the region exists on one side only.
  double level_distance = 0.0;  ///< Total-variation distance of level mixes.
  bool judged = false;          ///< Populous enough (min_samples) to count toward drift.
  bool drift = false;
};

/// The verdict.
struct DiffReport {
  bool drift = false;  ///< Any judged region drifted, or the phase timeline did.
  std::vector<RegionDiff> regions;  ///< Sorted by name (union of both sides).
  double phase_distance = 0.0;      ///< TV distance between per-bin sample shares.
  bool phase_drift = false;
  std::uint64_t samples_a = 0;
  std::uint64_t samples_b = 0;
};

/// Compares two profiles built with the same DiffOptions.
DiffReport diff_profiles(const TraceProfile& a, const TraceProfile& b,
                         const DiffOptions& options);

/// Kolmogorov-Smirnov distance between two empirical distributions given
/// as exact count histograms.  Both empty = 0; exactly one empty = 1.
double ks_distance(const std::map<std::uint16_t, std::uint64_t>& a,
                   const std::map<std::uint16_t, std::uint64_t>& b);

}  // namespace nmo::analysis
