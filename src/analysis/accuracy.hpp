// The paper's evaluation metrics.
//
// Accuracy (Eq. 1 of section VII):
//     accuracy = 1 - | mem_counted - samples * period | / mem_counted
// where mem_counted comes from a counting-mode `mem_access` run (perf
// stat), samples is the number of processed SPE samples and period the
// sampling interval.  Time overhead is the relative execution-time increase
// of the instrumented run over the uninstrumented baseline.
#pragma once

#include <cstdint>

#include "sim/stat_driver.hpp"

namespace nmo::analysis {

/// Eq. 1.  Returns a value in [0, 1]; 1 means samples * period exactly
/// reconstructs the counted memory accesses.
[[nodiscard]] double accuracy(std::uint64_t mem_counted, std::uint64_t samples,
                              std::uint64_t period);

/// Relative time overhead: instrumented / baseline - 1 (>= 0 in practice;
/// negative values from measurement noise are preserved, as in the paper's
/// error bars).
[[nodiscard]] double time_overhead(std::uint64_t baseline_ns, std::uint64_t instrumented_ns);

/// Convenience accessors over a statistical run result.
[[nodiscard]] double accuracy(const sim::StatResult& r);
[[nodiscard]] double time_overhead(const sim::StatResult& r);

}  // namespace nmo::analysis
