// Access-pattern analysis over sample traces - the post-processing behind
// the region figures (4-6).
//
// The paper's Python scripts turn the (time, address) scatter into
// qualitative statements: STREAM's threads form "regular incremental small
// line segments" while CFD at 32 threads shows irregular gathers.  These
// helpers quantify that: per-region access counts, stride regularity and a
// time-binned footprint.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/regions.hpp"
#include "core/trace.hpp"

namespace nmo::analysis {

/// Per-region sample statistics (which objects are hot - section III-A's
/// "which memory objects are the most accessed inside a certain function?").
struct RegionStats {
  std::string name;
  std::uint64_t samples = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  Addr min_addr = ~Addr{0};
  Addr max_addr = 0;
};

/// Aggregates samples per tagged region; untagged samples land in a
/// synthetic "(untagged)" entry.
std::vector<RegionStats> region_breakdown(const core::SampleTrace& trace,
                                          const core::RegionTable& regions);

/// Restricts a trace to samples whose timestamp falls inside a named phase
/// (any span with that name).
std::vector<core::TraceSample> samples_in_phase(const core::SampleTrace& trace,
                                                const core::RegionTable& regions,
                                                std::string_view phase);

/// Stride regularity of a sample sequence in [0, 1]: the fraction of
/// consecutive same-thread (here: same-core) address deltas equal to the
/// dominant stride.  Sequential sweeps score near 1; irregular gathers
/// score low.
double stride_regularity(const std::vector<core::TraceSample>& samples);

/// Fraction of samples whose address is within `window` bytes of the
/// previous same-core sample (spatial locality proxy).
double locality_fraction(const std::vector<core::TraceSample>& samples, std::uint64_t window);

}  // namespace nmo::analysis
