#include "common/csv.hpp"

#include <cstdio>

namespace nmo {

void CsvWriter::write_field(std::string_view field, bool first) {
  auto& os = stream();
  if (!first) os << ',';
  const bool needs_quote = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) {
    os << field;
    return;
  }
  os << '"';
  for (char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void CsvWriter::end_row() { stream() << '\n'; }

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    write_field(f, first);
    first = false;
  }
  end_row();
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    write_field(f, first);
    first = false;
  }
  end_row();
}

void CsvWriter::numeric_row(std::string_view label, const std::vector<double>& values,
                            int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.emplace_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    fields.emplace_back(buf);
  }
  row(fields);
}

void CsvWriter::flush() {
  if (!to_string_) out_.flush();
}

}  // namespace nmo
