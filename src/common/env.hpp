// Environment-variable access with an injectable source.
//
// NMO is configured through environment variables (Table I of the paper).
// Production code reads the process environment; tests inject a map so
// configuration parsing is testable without mutating global state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nmo {

/// Source of environment variables.  The default reads ::getenv; tests can
/// construct one from a map.
class Env {
 public:
  using Lookup = std::function<std::optional<std::string>(const std::string&)>;

  /// Process environment.
  Env();

  /// Fixed map environment (for tests and embedding).
  explicit Env(std::map<std::string, std::string> values);

  /// Custom lookup function.
  explicit Env(Lookup lookup) : lookup_(std::move(lookup)) {}

  /// Raw lookup; nullopt when unset.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// String with default.
  [[nodiscard]] std::string get_string(const std::string& key, std::string_view def) const;

  /// Unsigned integer; returns `def` when unset, nullopt-behaviour on parse
  /// error is to also return `def` but record the key in parse_errors().
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;

  /// Boolean: unset -> def; "1", "true", "yes", "on" -> true (case
  /// insensitive); "0", "false", "no", "off" -> false; other -> def.
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Size with optional K/M/G suffix; plain numbers are interpreted with
  /// `plain_unit` (NMO_BUFSIZE is documented in MiB, so plain "4" = 4 MiB).
  [[nodiscard]] std::uint64_t get_size(const std::string& key, std::uint64_t def,
                                       std::uint64_t plain_unit) const;

  /// Keys whose values failed to parse (kept for diagnostics).
  [[nodiscard]] const std::vector<std::string>& parse_errors() const { return errors_; }

 private:
  Lookup lookup_;
  mutable std::vector<std::string> errors_;
};

}  // namespace nmo
