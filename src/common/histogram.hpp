// Fixed-bucket histogram used by latency and stride analyses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nmo {

/// Linear-bucket histogram over [lo, hi); values outside are clamped into
/// the first/last bucket so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets > 0 ? buckets : 1, 0) {}

  void add(double v, std::uint64_t weight = 1) noexcept {
    const auto b = bucket_of(v);
    counts_[b] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t b) const noexcept { return counts_[b]; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Lower edge of bucket b.
  [[nodiscard]] double edge(std::size_t b) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
  }

  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (total_ == 0) return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cum = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      const double next = cum + static_cast<double>(counts_[b]);
      if (next >= target && counts_[b] > 0) {
        const double frac = (target - cum) / static_cast<double>(counts_[b]);
        const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
        return edge(b) + frac * width;
      }
      cum = next;
    }
    return hi_;
  }

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const noexcept {
    if (v < lo_) return 0;
    if (v >= hi_) return counts_.size() - 1;
    const double rel = (v - lo_) / (hi_ - lo_);
    auto b = static_cast<std::size_t>(rel * static_cast<double>(counts_.size()));
    return std::min(b, counts_.size() - 1);
  }

  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace nmo
