// Clang Thread Safety Analysis surface for the whole codebase.
//
// Two things live here:
//
//   1. The NMO_* annotation macros wrapping Clang's capability attributes
//      (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).  Under
//      Clang with -Wthread-safety these make locking contracts
//      compiler-checked; under GCC/MSVC they expand to nothing, so the
//      annotations are free documentation.
//   2. Annotated lock primitives — core::Mutex, core::MutexLock,
//      core::CondVar — that every locking class in src/ uses instead of
//      naked std::mutex/std::condition_variable.  Besides carrying the
//      capability attributes, core::Mutex feeds the debug lock-order
//      validator (common/lock_order.hpp), so lock-hierarchy inversions
//      abort in Debug/sanitizer builds even on runs that never deadlock.
//
// Build knob: -Werror=thread-safety is enabled by the NMO_THREAD_SAFETY
// CMake option (default ON under Clang).  The macros themselves are
// always active under any Clang; the knob only controls warning severity.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NMO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NMO_THREAD_ANNOTATION
#define NMO_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define NMO_CAPABILITY(x) NMO_THREAD_ANNOTATION(capability(x))
#define NMO_SCOPED_CAPABILITY NMO_THREAD_ANNOTATION(scoped_lockable)
#define NMO_GUARDED_BY(x) NMO_THREAD_ANNOTATION(guarded_by(x))
#define NMO_PT_GUARDED_BY(x) NMO_THREAD_ANNOTATION(pt_guarded_by(x))
#define NMO_ACQUIRE(...) NMO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NMO_RELEASE(...) NMO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NMO_TRY_ACQUIRE(...) NMO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define NMO_REQUIRES(...) NMO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NMO_EXCLUDES(...) NMO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NMO_ACQUIRED_BEFORE(...) NMO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define NMO_ACQUIRED_AFTER(...) NMO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define NMO_RETURN_CAPABILITY(x) NMO_THREAD_ANNOTATION(lock_returned(x))
#define NMO_ASSERT_CAPABILITY(x) NMO_THREAD_ANNOTATION(assert_capability(x))
#define NMO_NO_THREAD_SAFETY_ANALYSIS NMO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nmo::core {

/// std::mutex with a capability attribute, a name (for lock-order cycle
/// reports), and lock-order instrumentation.  BasicLockable, so
/// std::condition_variable_any can wait on it directly — which routes the
/// condvar's internal unlock/relock through the validator too.
class NMO_CAPABILITY("mutex") Mutex {
 public:
  /// `name` labels this mutex in lock-order cycle reports; use a string
  /// literal naming the owning class ("DecodePool::wake").
  explicit Mutex(const char* name = "mutex") : name_(name) { lockorder::on_create(this, name); }
  ~Mutex() { lockorder::on_destroy(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NMO_ACQUIRE() {
    lockorder::pre_lock(this);
    mutex_.lock();
    lockorder::post_lock(this);
  }
  void unlock() NMO_RELEASE() {
    lockorder::pre_unlock(this);
    mutex_.unlock();
  }
  bool try_lock() NMO_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
    // try_lock can't deadlock, so it records the hold without adding
    // order edges: try-lock backoff schemes are legitimate inversions.
    lockorder::post_try_lock(this);
    return true;
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::mutex mutex_;
  const char* name_;
};

/// RAII scoped lock over core::Mutex, relockable (condvar-style usage:
/// construct → wait → unlock around long work → lock again).  Annotated as
/// a scoped capability so Clang tracks the held/released state through
/// explicit unlock()/lock() calls.
class NMO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) NMO_ACQUIRE(mutex) : mutex_(mutex), held_(true) {
    mutex_.lock();
  }
  ~MutexLock() NMO_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drops the lock (e.g. around a blocking callback).
  void unlock() NMO_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }
  /// Re-acquires after unlock().
  void lock() NMO_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

  [[nodiscard]] bool owns_lock() const { return held_; }
  [[nodiscard]] Mutex& mutex() { return mutex_; }

 private:
  Mutex& mutex_;
  bool held_;
};

/// Condition variable paired with core::Mutex.  Waits take the MutexLock
/// (not a std::unique_lock), so guarded-field access inside wait
/// predicates stays visible to the analysis, and the wait's unlock/relock
/// goes through the instrumented Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  // The analysis can't model a wait's unlock/relock cycle; the capability
  // is held on entry and on exit, which is all callers can rely on.
  void wait(MutexLock& lock) NMO_REQUIRES(lock.mutex()) NMO_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.mutex());
  }

  template <typename Predicate>
  void wait(MutexLock& lock, Predicate pred) NMO_REQUIRES(lock.mutex())
      NMO_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.mutex(), std::move(pred));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) NMO_REQUIRES(lock.mutex()) NMO_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(lock.mutex(), timeout, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      NMO_REQUIRES(lock.mutex()) NMO_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(lock.mutex(), deadline);
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(MutexLock& lock, const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) NMO_REQUIRES(lock.mutex()) NMO_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(lock.mutex(), deadline, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace nmo::core
