// Debug-build lock-order (deadlock-potential) validator.
//
// Every core::Mutex acquisition feeds a process-global directed graph of
// "A was held while B was acquired" edges.  A cycle in that graph is a
// lock-hierarchy inversion — two threads interleaving those chains can
// deadlock — so the validator aborts on the acquisition that closes the
// cycle and prints the acquisition stack recorded for both edges, even if
// this particular run never actually deadlocked.  That turns ABBA bugs
// from a rare hang under contention into a deterministic failure on any
// code path that merely *exercises* both orders.
//
// Enabled (NMO_LOCK_ORDER == 1) in Debug and sanitizer builds, compiled
// out to empty inlines in Release: pre/post hooks below become no-ops and
// lock_order.cpp contributes nothing, so core::Mutex::lock() is exactly a
// std::mutex::lock() plus a dead branch the optimizer deletes.
//
// Rules encoded here:
//   - lock() inserts edges from every currently-held mutex to the new one
//     and runs a DFS cycle check; a cycle aborts with both stacks.
//   - try_lock() records the hold but adds NO edges: try-lock-with-backoff
//     is a legitimate way to acquire against the hierarchy.
//   - Mutex destruction removes its node and edges, so a reused address
//     (heap churn) can't resurrect stale ordering constraints.
#pragma once

#include <cstddef>

#ifndef NMO_LOCK_ORDER
#ifdef NDEBUG
#define NMO_LOCK_ORDER 0
#else
#define NMO_LOCK_ORDER 1
#endif
#endif

namespace nmo::core {
class Mutex;
}  // namespace nmo::core

namespace nmo::lockorder {

#if NMO_LOCK_ORDER

/// True when the validator is compiled in (used by tests to assert the
/// Release build really pays nothing).
inline constexpr bool kEnabled = true;

void on_create(const core::Mutex* mutex, const char* name);
void on_destroy(const core::Mutex* mutex);
/// Called before the underlying mutex blocks: records order edges from
/// all held mutexes and aborts if one closes a cycle.
void pre_lock(const core::Mutex* mutex);
/// Called once the lock is held: pushes it on this thread's held stack.
void post_lock(const core::Mutex* mutex);
/// Successful try_lock: held-stack push only, no order edges.
void post_try_lock(const core::Mutex* mutex);
void pre_unlock(const core::Mutex* mutex);

/// Number of distinct ordered pairs observed so far (test observability).
std::size_t edge_count();

#else

inline constexpr bool kEnabled = false;

inline void on_create(const core::Mutex*, const char*) {}
inline void on_destroy(const core::Mutex*) {}
inline void pre_lock(const core::Mutex*) {}
inline void post_lock(const core::Mutex*) {}
inline void post_try_lock(const core::Mutex*) {}
inline void pre_unlock(const core::Mutex*) {}
inline std::size_t edge_count() { return 0; }

#endif  // NMO_LOCK_ORDER

}  // namespace nmo::lockorder
