// Self-contained MD5 (RFC 1321).
//
// The upstream NMO uses OpenSSL MD5 to fingerprint sample traces so that
// post-processing scripts can detect that they are looking at the trace they
// expect.  This container has no OpenSSL, so we carry our own implementation;
// digests are byte-identical with any conformant MD5.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace nmo {

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5() noexcept { reset(); }

  /// Resets to the initial state.
  void reset() noexcept;

  /// Absorbs `data`.
  void update(std::span<const std::byte> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalizes and returns the 16-byte digest.  The hasher must be reset()
  /// before reuse.
  [[nodiscard]] std::array<std::uint8_t, 16> digest() noexcept;

  /// Finalizes and returns the lowercase hex string of the digest.
  [[nodiscard]] std::string hex_digest() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static std::string hex(std::string_view text);

  /// Formats a raw 16-byte digest as the lowercase hex string hex_digest()
  /// produces (shared with consumers that store raw digests on disk).
  [[nodiscard]] static std::string to_hex(const std::array<std::uint8_t, 16>& digest);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t a_, b_, c_, d_;
  std::uint64_t length_ = 0;              // total bytes absorbed
  std::array<std::uint8_t, 64> buffer_{}; // partial block
  std::size_t buffered_ = 0;
};

}  // namespace nmo
