// Lock-order graph behind core::Mutex (see lock_order.hpp for the model).
// Compiled out entirely when NMO_LOCK_ORDER == 0.
#include "common/lock_order.hpp"

#if NMO_LOCK_ORDER

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define NMO_LOCK_ORDER_BACKTRACE 1
#endif
#endif
#ifndef NMO_LOCK_ORDER_BACKTRACE
#define NMO_LOCK_ORDER_BACKTRACE 0
#endif

namespace nmo::lockorder {
namespace {

constexpr int kMaxFrames = 16;

struct Stack {
  void* frames[kMaxFrames];
  int depth = 0;

  static Stack capture() {
    Stack s;
#if NMO_LOCK_ORDER_BACKTRACE
    s.depth = backtrace(s.frames, kMaxFrames);
#endif
    return s;
  }

  void print(const char* indent) const {
#if NMO_LOCK_ORDER_BACKTRACE
    char** symbols = backtrace_symbols(frames, depth);
    for (int i = 0; i < depth; ++i) {
      std::fprintf(stderr, "%s#%d %s\n", indent, i, symbols ? symbols[i] : "?");
    }
    std::free(symbols);
#else
    std::fprintf(stderr, "%s(backtrace unavailable on this platform)\n", indent);
#endif
  }
};

/// First-observed acquisition of `to` while `from` was held.
struct Edge {
  Stack stack;
};

struct Node {
  const char* name = "mutex";
  std::unordered_map<const core::Mutex*, Edge> out;
};

// The registry's own lock is a raw std::mutex on purpose: a core::Mutex
// here would recurse into the hooks.  nmo-lint: allow(raw-mutex)
struct Registry {
  std::mutex mutex;
  std::unordered_map<const core::Mutex*, Node> graph;
};

Registry& registry() {
  // Leaked so mutexes destroyed during static teardown can still
  // deregister safely.
  static Registry* r = new Registry;
  return *r;
}

std::vector<const core::Mutex*>& held_stack() {
  thread_local std::vector<const core::Mutex*> held;
  return held;
}

const char* node_name(const Registry& reg, const core::Mutex* m) {
  const auto it = reg.graph.find(m);
  return it == reg.graph.end() ? "?" : it->second.name;
}

/// DFS for a path `from` -> ... -> `to`; fills `path` with the nodes
/// visited (inclusive of both endpoints) when found.
bool find_path(const Registry& reg, const core::Mutex* from, const core::Mutex* to,
               std::vector<const core::Mutex*>& path,
               std::unordered_map<const core::Mutex*, bool>& visited) {
  if (visited[from]) return false;
  visited[from] = true;
  path.push_back(from);
  if (from == to) return true;
  const auto it = reg.graph.find(from);
  if (it != reg.graph.end()) {
    for (const auto& edge : it->second.out) {
      if (find_path(reg, edge.first, to, path, visited)) return true;
    }
  }
  path.pop_back();
  return false;
}

[[noreturn]] void report_cycle(Registry& reg, const core::Mutex* held, const core::Mutex* acquiring,
                               const std::vector<const core::Mutex*>& prior_path) {
  std::fprintf(stderr,
               "\nnmo lock-order: cycle detected (potential deadlock)\n"
               "  this thread is acquiring \"%s\" (%p) while holding \"%s\" (%p),\n"
               "  but the opposite order was observed earlier:\n    ",
               node_name(reg, acquiring), static_cast<const void*>(acquiring),
               node_name(reg, held), static_cast<const void*>(held));
  for (std::size_t i = 0; i < prior_path.size(); ++i) {
    std::fprintf(stderr, "%s\"%s\"", i ? " -> " : "", node_name(reg, prior_path[i]));
  }
  std::fprintf(stderr, "\n  acquisition of \"%s\" while holding \"%s\" (this thread, now):\n",
               node_name(reg, acquiring), node_name(reg, held));
  Stack::capture().print("    ");
  for (std::size_t i = 0; i + 1 < prior_path.size(); ++i) {
    const auto node_it = reg.graph.find(prior_path[i]);
    if (node_it == reg.graph.end()) continue;
    const auto edge_it = node_it->second.out.find(prior_path[i + 1]);
    if (edge_it == node_it->second.out.end()) continue;
    std::fprintf(stderr, "  prior acquisition of \"%s\" while holding \"%s\" at:\n",
                 node_name(reg, prior_path[i + 1]), node_name(reg, prior_path[i]));
    edge_it->second.stack.print("    ");
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void on_create(const core::Mutex* mutex, const char* name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mutex);
  // Overwrite any stale node: a reused address must start clean.
  reg.graph[mutex] = Node{name, {}};
}

void on_destroy(const core::Mutex* mutex) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mutex);
  reg.graph.erase(mutex);
  for (auto& node : reg.graph) node.second.out.erase(mutex);
}

void pre_lock(const core::Mutex* mutex) {
  const auto& held = held_stack();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mutex);
  for (const core::Mutex* h : held) {
    if (h == mutex) {
      std::fprintf(stderr,
                   "\nnmo lock-order: recursive lock of non-recursive mutex \"%s\" (%p)\n",
                   node_name(reg, mutex), static_cast<const void*>(mutex));
      Stack::capture().print("    ");
      std::fflush(stderr);
      std::abort();
    }
    auto& node = reg.graph[h];
    if (node.out.contains(mutex)) continue;  // order already on record
    // Would edge h -> mutex close a cycle?  I.e. does mutex already
    // reach h through recorded orders?
    std::vector<const core::Mutex*> path;
    std::unordered_map<const core::Mutex*, bool> visited;
    if (find_path(reg, mutex, h, path, visited)) report_cycle(reg, h, mutex, path);
    node.out.emplace(mutex, Edge{Stack::capture()});
  }
}

void post_lock(const core::Mutex* mutex) { held_stack().push_back(mutex); }

void post_try_lock(const core::Mutex* mutex) { held_stack().push_back(mutex); }

void pre_unlock(const core::Mutex* mutex) {
  auto& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == mutex) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t edge_count() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mutex);
  std::size_t n = 0;
  for (const auto& node : reg.graph) n += node.second.out.size();
  return n;
}

}  // namespace nmo::lockorder

#endif  // NMO_LOCK_ORDER
