// Minimal CSV writing used by the trace and figure outputs.
//
// The paper's post-processing is Python scripting over CSV-ish dumps; the
// benches in this repository print the same series to stdout and can
// optionally persist them with this writer.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace nmo {

/// Streaming CSV writer.  Values containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing; check ok() before use.
  explicit CsvWriter(const std::string& path) : out_(path) {}

  /// In-memory variant (for tests): writes into an internal string.
  CsvWriter() : to_string_(true) {}

  [[nodiscard]] bool ok() const { return to_string_ || out_.good(); }

  /// Writes one row from string fields.
  void row(std::initializer_list<std::string_view> fields);
  void row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with `precision` significant
  /// digits after a leading label.
  void numeric_row(std::string_view label, const std::vector<double>& values, int precision = 6);

  /// Returns accumulated text (in-memory mode only).
  [[nodiscard]] std::string str() const { return buffer_.str(); }

  /// Flushes the file stream.
  void flush();

 private:
  void write_field(std::string_view field, bool first);
  void end_row();
  std::ostream& stream() { return to_string_ ? static_cast<std::ostream&>(buffer_) : out_; }

  std::ofstream out_;
  std::ostringstream buffer_;
  bool to_string_ = false;
};

}  // namespace nmo
