#include "common/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <string>

namespace nmo {

std::optional<std::uint64_t> parse_size(std::string_view text) {
  // Trim surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return std::nullopt;

  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;

  // Optional decimal fraction ("1.5M", and format_size round-trips like
  // "4.0 KiB").
  double fraction = 0.0;
  if (ptr != end && *ptr == '.') {
    ++ptr;
    double scale = 0.1;
    const char* frac_start = ptr;
    while (ptr != end && std::isdigit(static_cast<unsigned char>(*ptr))) {
      fraction += scale * (*ptr - '0');
      scale *= 0.1;
      ++ptr;
    }
    if (ptr == frac_start) return std::nullopt;  // "4." with no digits
  }

  std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  // Accept "", "B", "K", "KB", "KiB", "M", ... case-insensitively.
  auto lower = [](char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); };
  std::string norm;
  norm.reserve(suffix.size());
  for (char c : suffix) {
    if (!std::isspace(static_cast<unsigned char>(c))) norm.push_back(lower(c));
  }
  std::uint64_t mult = 1;
  if (norm.empty() || norm == "b") {
    mult = 1;
  } else if (norm == "k" || norm == "kb" || norm == "kib") {
    mult = kKiB;
  } else if (norm == "m" || norm == "mb" || norm == "mib") {
    mult = kMiB;
  } else if (norm == "g" || norm == "gb" || norm == "gib") {
    mult = kGiB;
  } else {
    return std::nullopt;
  }
  // Reject overflow.
  if (mult != 0 && value > UINT64_MAX / mult) return std::nullopt;
  const std::uint64_t whole = value * mult;
  const auto frac_bytes =
      static_cast<std::uint64_t>(fraction * static_cast<double>(mult) + 0.5);
  if (whole > UINT64_MAX - frac_bytes) return std::nullopt;
  return whole + frac_bytes;
}

std::string format_size(std::uint64_t bytes) {
  struct Unit {
    std::uint64_t factor;
    const char* name;
  };
  static constexpr std::array<Unit, 4> kUnits{{
      {kGiB, "GiB"}, {kMiB, "MiB"}, {kKiB, "KiB"}, {1, "B"}}};
  for (const auto& u : kUnits) {
    if (bytes >= u.factor) {
      const double v = static_cast<double>(bytes) / static_cast<double>(u.factor);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f %s", v, u.name);
      return buf;
    }
  }
  return "0 B";
}

}  // namespace nmo
