#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/units.hpp"

namespace nmo {

Env::Env()
    : lookup_([](const std::string& key) -> std::optional<std::string> {
        // Read-only environment access during configuration; nothing in
        // libnmo calls setenv, so there is no writer to race with.
        const char* v = std::getenv(key.c_str());  // NOLINT(concurrency-mt-unsafe)
        if (v == nullptr) return std::nullopt;
        return std::string(v);
      }) {}

Env::Env(std::map<std::string, std::string> values)
    : lookup_([values = std::move(values)](const std::string& key) -> std::optional<std::string> {
        auto it = values.find(key);
        if (it == values.end()) return std::nullopt;
        return it->second;
      }) {}

std::optional<std::string> Env::get(const std::string& key) const { return lookup_(key); }

std::string Env::get_string(const std::string& key, std::string_view def) const {
  auto v = get(key);
  return v ? *v : std::string(def);
}

std::uint64_t Env::get_u64(const std::string& key, std::uint64_t def) const {
  auto v = get(key);
  if (!v) return def;
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    errors_.push_back(key);
    return def;
  }
  return out;
}

bool Env::get_bool(const std::string& key, bool def) const {
  auto v = get(key);
  if (!v) return def;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  errors_.push_back(key);
  return def;
}

std::uint64_t Env::get_size(const std::string& key, std::uint64_t def,
                            std::uint64_t plain_unit) const {
  auto v = get(key);
  if (!v) return def;
  // Plain integer -> scaled by plain_unit (Table I sizes are in MiB).
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec == std::errc{} && ptr == v->data() + v->size()) {
    return out * plain_unit;
  }
  auto parsed = parse_size(*v);
  if (!parsed) {
    errors_.push_back(key);
    return def;
  }
  return *parsed;
}

}  // namespace nmo
