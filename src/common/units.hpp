// Byte-size and time units plus parsing helpers used by the configuration
// layer (NMO_BUFSIZE / NMO_AUXBUFSIZE are specified in MiB, Table I).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace nmo {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// Page size of the simulated ARM testbed.  The paper's machine uses 64 KB
/// pages; aux buffer sizes in Fig. 9 are expressed in these pages.
inline constexpr std::uint64_t kSimPageSize = 64 * kKiB;

/// Parses a human-readable size such as "16", "64K", "1M", "2G" (case
/// insensitive, optional trailing "iB"/"B").  Plain numbers are bytes.
/// Returns std::nullopt on malformed input.
std::optional<std::uint64_t> parse_size(std::string_view text);

/// Formats a byte count as a short human-readable string ("1.5 GiB").
/// Used by report tables; rounds to one decimal.
[[nodiscard]] std::string format_size(std::uint64_t bytes);

}  // namespace nmo
