#include "common/md5.hpp"

#include <cstring>

namespace nmo {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int c) noexcept {
  return (x << c) | (x >> (32 - c));
}

// Per-round shift amounts and sine-derived constants from RFC 1321.
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

}  // namespace

void Md5::reset() noexcept {
  a_ = 0x67452301;
  b_ = 0xefcdab89;
  c_ = 0x98badcfe;
  d_ = 0x10325476;
  length_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }
  std::uint32_t a = a_, b = b_, c = c_, d = d_;
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  a_ += a;
  b_ += b;
  c_ += c;
  d_ += d;
}

void Md5::update(std::span<const std::byte> data) noexcept {
  length_ += data.size();
  std::size_t offset = 0;
  // Fill a partial block first.
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(reinterpret_cast<const std::uint8_t*>(data.data()) + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

void Md5::update(std::string_view text) noexcept {
  update(std::span<const std::byte>(reinterpret_cast<const std::byte*>(text.data()), text.size()));
}

std::array<std::uint8_t, 16> Md5::digest() noexcept {
  // Padding: 0x80, zeros, then 64-bit little-endian bit length.
  const std::uint64_t bit_len = length_ * 8;
  const std::byte pad_one{0x80};
  update(std::span<const std::byte>(&pad_one, 1));
  const std::byte zero{0};
  while (buffered_ != 56) {
    update(std::span<const std::byte>(&zero, 1));
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  update(std::span<const std::byte>(reinterpret_cast<const std::byte*>(len_bytes), 8));

  std::array<std::uint8_t, 16> out{};
  const std::uint32_t words[4] = {a_, b_, c_, d_};
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 4; ++i) {
      out[static_cast<std::size_t>(w * 4 + i)] = static_cast<std::uint8_t>(words[w] >> (8 * i));
    }
  }
  return out;
}

std::string Md5::hex_digest() noexcept { return to_hex(digest()); }

std::string Md5::to_hex(const std::array<std::uint8_t, 16>& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

std::string Md5::hex(std::string_view text) {
  Md5 h;
  h.update(text);
  return h.hex_digest();
}

}  // namespace nmo
