// Core value types shared by every nmo subsystem.
//
// The simulator models an ARM machine, so the vocabulary here mirrors the
// terms of the ARM SPE documentation and of the paper: virtual addresses,
// cycles of the CPU clock, memory operations and the memory level that
// serviced them.
#pragma once

#include <cstdint>
#include <string_view>

namespace nmo {

/// Virtual address in the simulated process address space.
using Addr = std::uint64_t;

/// CPU cycles of the simulated core clock (Table II: 3.0 GHz).
using Cycles = std::uint64_t;

/// Wall-clock nanoseconds (after timescale conversion, see kern::TimeConv).
using Nanos = std::uint64_t;

/// Identifier of a virtual hardware thread / core in the machine model.
using CoreId = std::uint32_t;

/// Identifier of a virtual software thread (OpenMP thread id).
using ThreadId = std::uint32_t;

/// Kind of a sampled/issued memory operation.
enum class MemOp : std::uint8_t {
  kLoad = 0,
  kStore = 1,
};

/// Returns "load"/"store"; stable strings used in traces and CSV output.
constexpr std::string_view to_string(MemOp op) noexcept {
  return op == MemOp::kLoad ? "load" : "store";
}

/// Memory hierarchy level that serviced an access.  Order matters: deeper
/// levels compare greater, which analysis code relies on.
enum class MemLevel : std::uint8_t {
  kL1 = 0,   ///< 64 KB per-core L1 data cache.
  kL2 = 1,   ///< 1 MB per-core L2 cache.
  kSLC = 2,  ///< 16 MB system-level (shared last-level) cache.
  kDRAM = 3, ///< DDR4 main memory.
};

constexpr std::string_view to_string(MemLevel level) noexcept {
  switch (level) {
    case MemLevel::kL1: return "L1";
    case MemLevel::kL2: return "L2";
    case MemLevel::kSLC: return "SLC";
    case MemLevel::kDRAM: return "DRAM";
  }
  return "?";
}

/// Number of distinct MemLevel values; sized for per-level stat arrays.
inline constexpr std::size_t kNumMemLevels = 4;

/// One memory access as emitted by a workload: what, where, how wide.
struct MemAccess {
  Addr addr = 0;
  MemOp op = MemOp::kLoad;
  std::uint8_t size = 8;  ///< Access width in bytes (1..64).
};

}  // namespace nmo
